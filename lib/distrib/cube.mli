(** Cube generation for cube-and-conquer k-colorability (DESIGN.md §17).

    A cube is a conjunction of color assumptions [(vertex, color)] laid
    down in a fixed prefix order. The splitter branches the vertices a
    DSATUR-style lookahead ranks hardest first — a greedy clique (mutually
    adjacent, so every branch prunes maximally), then descending degree —
    and [check_cover] lets a verifier confirm, structurally and without
    trusting the splitter, that a set of cubes covers the whole search
    space. *)

type t = (int * int) list
(** Assumptions in split order: [(v, c)] assumes vertex [v] gets color
    [c]. The empty cube is the root (no assumptions). *)

val to_string : t -> string

val split_order : Colib_graph.Graph.t -> int list
(** Deterministic branching order: greedy-clique vertices first, then the
    rest by descending degree, ties by index. *)

val split : Colib_graph.Graph.t -> k:int -> depth:int -> t list
(** The [k^depth] cubes assigning every combination of [k] colors to the
    first [depth] vertices of {!split_order}. [depth <= 0] yields the
    root cube alone. *)

val refine : Colib_graph.Graph.t -> k:int -> t -> t list option
(** Split a straggler cube one level deeper: extend it with all [k]
    colors of the next unused {!split_order} vertex. [None] when every
    vertex is already assumed. *)

val unit_lits : Colib_encode.Encoding.t -> t -> Colib_sat.Lit.t list
(** The positive indicator literals [x_{v,c}] of the cube's assumptions
    under an encoding of the same graph and [k]. *)

val check_cover : k:int -> t list -> (int list, string) result
(** Structurally verify that the cubes tile the search space: recursively,
    sibling cubes must all branch on the same vertex with colors exactly
    [0..k-1], each color group recursing on the remaining suffixes. On
    success returns the split vertices; a verifier then only needs each
    vertex's at-least-one clause to be entailed by the base formula
    (which {!Conquer.replay_tree} checks by RUP) for the cover to be
    exhaustive. *)
