(** Fault-tolerant cube-and-conquer with certified tree proofs
    (DESIGN.md §17).

    [decide g ~k] splits the k-colorability question into cubes
    ({!Cube.split}), races them across a supervised worker pool
    ({!Colib_portfolio.Portfolio.run_pool} — full process isolation,
    watchdogs, chaos injection, learned-clause relay) fed from a
    lease-based queue ({!Lease}), and accepts nothing on faith:

    - a SAT answer counts only once the parent decodes the model against
      its own encoding and re-checks the coloring on the graph;
    - an UNSAT answer counts only once the parent replays the worker's
      RUP trace against its own rebuild of that cube's formula;
    - the final [Not_colorable] verdict is claimed only after the whole
      stitched tree derivation — cube cover, per-split-vertex ALO
      entailment, and every leaf refutation — replays through
      {!Colib_check.Rup} ({!replay_tree}).

    Workers are expendable: a SIGKILLed, hung, or OOM-killed worker's
    cube is released (or its lease expires) and re-run, warm-resumed from
    its checkpoint when one validates; cubes that keep failing are split
    adaptively into smaller cubes. Duplicate results from zombie workers
    are absorbed by the lease queue's exactly-once accounting. *)

type reply =
  | R_unsat of Colib_sat.Proof.step list
  | R_sat of bool array
  | R_unknown of string

val cube_formula :
  Colib_graph.Graph.t -> k:int -> Cube.t -> Colib_encode.Encoding.t
(** The k-coloring encoding extended with one unit clause per cube
    assumption. *)

val cube_digest : Colib_graph.Graph.t -> k:int -> Cube.t -> string
(** Digest of the cube formula (WITH its units), the checkpoint identity
    of the cube — a snapshot of one cube can never resume another. *)

val root_digest : Colib_graph.Graph.t -> k:int -> string

val solve_cube :
  ?checkpoint:Colib_solver.Checkpoint.config ->
  ?share:Colib_solver.Types.share ->
  engine:Colib_solver.Types.engine ->
  deadline:float ->
  Colib_graph.Graph.t ->
  k:int ->
  id:int ->
  Cube.t ->
  reply
(** One cube's worker body (runs inside a forked pool worker). Always
    proof-logged; with [checkpoint] it snapshots at conflict boundaries
    and warm-resumes a validated snapshot, stitching new steps onto the
    snapshot's proof prefix. *)

val replay_tree :
  Colib_graph.Graph.t ->
  k:int ->
  (Cube.t * Colib_sat.Proof.step list) list ->
  (unit, string) result
(** Replay a stitched tree derivation: verify the cube cover
    ({!Cube.check_cover}), RUP-check each split vertex's at-least-one
    clause against the base formula, and replay each leaf's trace against
    the base formula plus that cube's units. [Ok ()] proves the graph is
    not k-colorable without trusting any worker. *)

type verdict =
  | Colorable of int array  (** a parent-certified proper k-coloring *)
  | Not_colorable           (** the tree proof replayed successfully *)
  | Undecided of string

type decision = {
  verdict : verdict;
  cubes_solved : int;
  proofs : (Cube.t * Colib_sat.Proof.step list) list;
      (** the stitched tree proof, one leaf per final cube *)
  replay_failures : int;  (** worker answers the parent refused *)
  releases : int;         (** leases returned on observed worker death *)
  expiries : int;         (** leases reclaimed by the deadline sweep *)
  dup_results : int;      (** zombie verdicts absorbed (exactly-once) *)
  splits : int;           (** straggler cubes split adaptively *)
  wall : float;
}

val decide :
  ?jobs:int ->
  ?engine:Colib_solver.Types.engine ->
  ?lease_secs:float ->
  ?grace:float ->
  ?split_after:int ->
  ?max_depth:int ->
  ?depth:int ->
  ?timeout:float ->
  ?chaos:Colib_check.Chaos.process_plan ->
  ?journal:Colib_portfolio.Journal.t ->
  ?checkpoint:Colib_solver.Checkpoint.config ->
  ?should_stop:(unit -> bool) ->
  Colib_graph.Graph.t ->
  k:int ->
  unit ->
  decision
(** Decide k-colorability. Defaults: [jobs] 2, [engine] Pbs2,
    [lease_secs] 30 with [grace] 2 of watchdog slack, split a cube after
    [split_after] (2) failed attempts down to [max_depth] (3), initial
    [depth] sized so the cube count is at least [max 4 (2*jobs)]. [chaos]
    injects process faults by spawn index (tests); [journal] audits every
    lease transition; [checkpoint] enables warm resume of killed cubes.
    Never raises on worker misbehaviour. *)

type chi_result = {
  chi : int option;       (** proven exactly when certified *)
  best : int array;       (** best proper coloring found (certified) *)
  best_colors : int;
  lower_bound : int;      (** size of a verified clique *)
  certified_unsat_k : int option;
      (** k proven uncolorable by a replayed tree proof *)
  steps : (int * verdict) list;  (** per-k decisions, latest first *)
}

val chi :
  ?jobs:int ->
  ?engine:Colib_solver.Types.engine ->
  ?lease_secs:float ->
  ?grace:float ->
  ?split_after:int ->
  ?max_depth:int ->
  ?depth:int ->
  ?timeout:float ->
  ?chaos:Colib_check.Chaos.process_plan ->
  ?journal:Colib_portfolio.Journal.t ->
  ?checkpoint:Colib_solver.Checkpoint.config ->
  ?should_stop:(unit -> bool) ->
  Colib_graph.Graph.t ->
  unit ->
  chi_result
(** Exact chromatic number by descending [decide] steps: start from a
    certified DSATUR upper bound and a verified-clique lower bound, and
    prove [chi] when a tree proof certifies [best_colors - 1] infeasible
    (or the bound meets the clique). A budget that runs out mid-descent
    leaves [chi = None] with the certified bounds intact. *)
