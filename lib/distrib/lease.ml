module Journal = Colib_portfolio.Journal
module Mclock = Colib_clock.Mclock

type verdict = V_unsat | V_sat

type state =
  | Pending
  | Leased of { worker : int; deadline : float }
  | Done of verdict

type entry = {
  id : int;
  cube : Cube.t;
  mutable state : state;
  mutable attempts : int;  (* leases granted so far *)
  depth : int;             (* split generations behind this cube *)
}

type t = {
  digest8 : string;
  lease_secs : float;
  journal : Journal.t option;
  mutable entries : entry list;  (* stable order: lease scan is FIFO-ish *)
  mutable next_id : int;
  mutable releases : int;
  mutable expiries : int;
  mutable dup_results : int;
  mutable splits : int;
}

let key t e = Printf.sprintf "cube-%s-%d" t.digest8 e.id

let record t e event extra =
  match t.journal with
  | None -> ()
  | Some j -> (
    try
      Journal.append j
        ([
           ("key", key t e);
           ("event", event);
           ("cube", Cube.to_string e.cube);
           ("depth", string_of_int e.depth);
           ("attempts", string_of_int e.attempts);
         ]
        @ extra)
    with Unix.Unix_error _ -> ())

let add t cube depth =
  let e = { id = t.next_id; cube; state = Pending; attempts = 0; depth } in
  t.next_id <- t.next_id + 1;
  t.entries <- t.entries @ [ e ];
  record t e "queued" [];
  e

let create ?journal ~digest ~lease_secs cubes =
  let digest8 =
    if String.length digest >= 8 then String.sub digest 0 8 else digest
  in
  let t =
    {
      digest8;
      lease_secs;
      journal;
      entries = [];
      next_id = 0;
      releases = 0;
      expiries = 0;
      dup_results = 0;
      splits = 0;
    }
  in
  List.iter (fun c -> ignore (add t c 0)) cubes;
  t

(* Reclaim cubes whose holder has been silent past its deadline — the holder
   may be SIGKILLed, hung, or merely slow; either way the cube goes back to
   [Pending] and a later duplicate result from the zombie is absorbed by
   [complete]'s exactly-once check. *)
let expire t =
  let now = Mclock.now () in
  List.iter
    (fun e ->
      match e.state with
      | Leased { deadline; _ } when now > deadline ->
        e.state <- Pending;
        t.expiries <- t.expiries + 1;
        record t e "lease-expired" []
      | _ -> ())
    t.entries

let lease t ~worker =
  expire t;
  match
    List.find_opt (fun e -> e.state = Pending) t.entries
  with
  | None -> None
  | Some e ->
    let deadline = Mclock.now () +. t.lease_secs in
    e.state <- Leased { worker; deadline };
    e.attempts <- e.attempts + 1;
    record t e "leased" [ ("worker", string_of_int worker) ];
    Some e

(* A worker observed dead (crash, OOM, watchdog kill) releases its cube
   immediately instead of waiting out the lease clock. *)
let release t ~worker =
  List.iter
    (fun e ->
      match e.state with
      | Leased { worker = w; _ } when w = worker ->
        e.state <- Pending;
        t.releases <- t.releases + 1;
        record t e "released" [ ("worker", string_of_int worker) ]
      | _ -> ())
    t.entries

(* Exactly-once result accounting: the first verdict for a cube id wins;
   anything later (a zombie whose lease expired and whose cube was re-run)
   is counted and dropped. Returns whether the verdict was accepted. *)
let complete t e verdict =
  match e.state with
  | Done _ ->
    t.dup_results <- t.dup_results + 1;
    record t e "duplicate-result" [];
    false
  | Pending | Leased _ ->
    e.state <- Done verdict;
    record t e "done"
      [ ("verdict", match verdict with V_unsat -> "unsat" | V_sat -> "sat") ];
    true

(* Adaptive straggler split: replace a cube with its refinements, each a
   fresh entry with its own id (so results for the parent cube can no
   longer be accepted — its entry is gone). *)
let split t e children =
  t.entries <- List.filter (fun e' -> e'.id <> e.id) t.entries;
  t.splits <- t.splits + 1;
  record t e "split" [ ("children", string_of_int (List.length children)) ];
  List.map (fun c -> add t c (e.depth + 1)) children

let find t id = List.find_opt (fun e -> e.id = id) t.entries

let all_done t = List.for_all (fun e -> match e.state with Done _ -> true | _ -> false) t.entries
let pending t = List.length (List.filter (fun e -> e.state = Pending) t.entries)
let outstanding t =
  List.length
    (List.filter (fun e -> match e.state with Done _ -> false | _ -> true) t.entries)

let entries t = t.entries
let releases t = t.releases
let expiries t = t.expiries
let dup_results t = t.dup_results
let splits t = t.splits
