module Graph = Colib_graph.Graph
module Dsatur = Colib_graph.Dsatur
module Clique = Colib_graph.Clique
module Encoding = Colib_encode.Encoding
module Formula = Colib_sat.Formula
module Lit = Colib_sat.Lit
module Proof = Colib_sat.Proof
module Output = Colib_sat.Output
module Types = Colib_solver.Types
module Engine = Colib_solver.Engine
module Checkpoint = Colib_solver.Checkpoint
module Rup = Colib_check.Rup
module Chaos = Colib_check.Chaos
module Portfolio = Colib_portfolio.Portfolio
module Journal = Colib_portfolio.Journal
module Mclock = Colib_clock.Mclock

(* ------------------------------------------------------------------ *)
(* Cube formulas and digests                                           *)

(* The decision formula of one cube: the k-coloring encoding plus one unit
   clause per cube assumption. The digest is taken over the formula WITH
   the units, so a checkpoint written under one cube can never validate
   against a resume of a different cube, even if their lease ids collide
   across splits. *)
let cube_formula g ~k cube =
  let enc = Encoding.encode g ~k in
  List.iter
    (fun l -> Formula.add_clause enc.Encoding.formula [ l ])
    (Cube.unit_lits enc cube);
  enc

let formula_digest f = Digest.to_hex (Digest.string (Output.opb_string f))

let cube_digest g ~k cube =
  formula_digest (cube_formula g ~k cube).Encoding.formula

let root_digest g ~k = cube_digest g ~k []

(* ------------------------------------------------------------------ *)
(* The per-cube worker                                                 *)

type reply =
  | R_unsat of Proof.step list  (** replayable against the cube formula *)
  | R_sat of bool array         (** a model of the cube formula *)
  | R_unknown of string

let cube_label id = Printf.sprintf "cube-%d" id

(* Runs in a forked pool worker. Always proof-logged: an UNSAT answer is
   worthless to the parent without a trace it can replay itself. With a
   checkpoint config the worker snapshots at conflict boundaries and, when
   a previous life of this cube left a snapshot that reads back AND
   validates against this cube's own digest, warm-resumes it — stitching
   its new steps onto the snapshot's proof prefix so the final trace is
   one continuous derivation. *)
let solve_cube ?checkpoint ?share ~engine ~deadline g ~k ~id cube =
  let enc = cube_formula g ~k cube in
  let nvars = Formula.num_vars enc.Encoding.formula in
  let digest = formula_digest enc.Encoding.formula in
  let label = cube_label id in
  let ename = Types.engine_name engine in
  let ck_path, resume =
    match checkpoint with
    | None -> (None, None)
    | Some ck ->
      Checkpoint.ensure_dir ck.Checkpoint.dir;
      let path =
        Checkpoint.snapshot_path ~dir:ck.Checkpoint.dir ~label ~engine:ename
          ~k
      in
      let sn =
        if not ck.Checkpoint.resume then None
        else
          match Checkpoint.read path with
          | Error _ -> None
          | Ok sn -> (
            match
              Checkpoint.validate sn ~label ~k ~digest ~engine ~nvars
            with
            | Error _ -> None
            | Ok () -> Some sn)
      in
      (Some (path, ck), sn)
  in
  let trace =
    match resume with
    | Some sn -> Proof.of_steps sn.Checkpoint.sn_proof
    | None -> Proof.create ()
  in
  let eng = Engine.create ~proof:trace engine nvars in
  Option.iter (Engine.set_share eng) share;
  Engine.add_formula eng enc.Encoding.formula;
  Option.iter (fun sn -> Engine.restore eng sn.Checkpoint.sn_engine) resume;
  let emitter =
    Option.map
      (fun (path, ck) ->
        Checkpoint.emitter ~label ~k ~digest ~path
          ~interval:ck.Checkpoint.interval ())
      ck_path
  in
  let hook =
    Option.map
      (fun em () ->
        Checkpoint.maybe_emit em (fun () ->
            Checkpoint.make em ~engine:(Engine.capture eng) ~incumbent:None
              ~proof:(Proof.steps trace)))
      emitter
  in
  let budget =
    { Types.no_budget with deadline = Some deadline; checkpoint = hook }
  in
  match Engine.solve eng budget with
  | Types.Sat m -> R_sat m
  | Types.Unsat -> R_unsat (Proof.steps trace)
  | Types.Unknown r -> R_unknown (Types.stop_reason_name r)

(* ------------------------------------------------------------------ *)
(* Tree-proof replay                                                   *)

(* Replay a stitched tree derivation: the cube set must cover the search
   space exactly (every branch point splits one vertex over colors
   0..k-1), each split vertex's at-least-one clause must be RUP-entailed
   by the BASE formula (it follows by propagation from the vertex's
   [sum_j x_{v,j} = 1] row, so the branches are exhaustive without
   trusting the splitter), and each leaf's trace must refute the base
   formula extended with that cube's unit clauses. A success proves the
   root formula unsatisfiable without trusting any worker. *)
let replay_tree g ~k proofs =
  let cubes = List.map fst proofs in
  match Cube.check_cover ~k cubes with
  | Error m -> Error (Printf.sprintf "cube cover: %s" m)
  | Ok split_vertices -> (
    let base = Encoding.encode g ~k in
    let alo_bad =
      List.find_map
        (fun v ->
          let alo =
            List.init k (fun c -> Lit.pos base.Encoding.x.(v).(c))
          in
          match Rup.check base.Encoding.formula [ Proof.Learn alo ] with
          | Ok _ -> None
          | Error f ->
            Some
              (Printf.sprintf "ALO of split vertex %d not entailed: %s" v
                 (Rup.failure_to_string f)))
        split_vertices
    in
    match alo_bad with
    | Some m -> Error m
    | None ->
      let leaf_bad =
        List.find_map
          (fun (cube, steps) ->
            let enc = cube_formula g ~k cube in
            match
              Rup.check_claim enc.Encoding.formula Proof.Unsat_claim steps
            with
            | Ok _ -> None
            | Error f ->
              Some
                (Printf.sprintf "leaf %s: %s" (Cube.to_string cube)
                   (Rup.failure_to_string f)))
          proofs
      in
      (match leaf_bad with Some m -> Error m | None -> Ok ()))

(* ------------------------------------------------------------------ *)
(* The parent driver: decide k-colorability over a leased cube queue    *)

type verdict =
  | Colorable of int array
  | Not_colorable
  | Undecided of string

type decision = {
  verdict : verdict;
  cubes_solved : int;
  proofs : (Cube.t * Proof.step list) list;
  replay_failures : int;  (* per-cube traces the parent refused *)
  releases : int;
  expiries : int;
  dup_results : int;
  splits : int;
  wall : float;
}

let default_depth ~k ~jobs ~max_depth n =
  let target = max 4 (2 * jobs) in
  let rec go d cells =
    if cells >= target || d >= max_depth || d >= n then d
    else go (d + 1) (cells * k)
  in
  go 0 1 |> max 1

let decide ?(jobs = 2) ?(engine = Types.Pbs2) ?(lease_secs = 30.) ?(grace = 2.)
    ?(split_after = 2) ?(max_depth = 3) ?depth ?timeout ?chaos ?journal
    ?checkpoint ?(should_stop = fun () -> false) g ~k () =
  let t0 = Mclock.now () in
  let overall = Option.map (fun s -> t0 +. s) timeout in
  let past_deadline () =
    match overall with Some d -> Mclock.now () > d | None -> false
  in
  let n = Graph.num_vertices g in
  if k < 1 then
    {
      verdict =
        (if n = 0 then Colorable [||] else Not_colorable);
      cubes_solved = 0;
      proofs = [];
      replay_failures = 0;
      releases = 0;
      expiries = 0;
      dup_results = 0;
      splits = 0;
      wall = Mclock.now () -. t0;
    }
  else begin
    let depth =
      match depth with
      | Some d -> max 1 d
      | None -> default_depth ~k ~jobs ~max_depth n
    in
    let cubes = Cube.split g ~k ~depth in
    let lq =
      Lease.create ?journal ~digest:(root_digest g ~k) ~lease_secs cubes
    in
    let spawn = ref 0 in
    let owner = Hashtbl.create 16 in
    (* spawn key -> entry id *)
    let proofs = Hashtbl.create 16 in
    (* entry id -> (cube, steps) *)
    let sat_model = ref None in
    let replay_failures = ref 0 in
    let solved = ref 0 in
    let fail_reason = ref None in
    let parent_enc = lazy (Encoding.encode g ~k) in
    let stop () =
      !sat_model <> None || past_deadline () || should_stop ()
    in
    let next ~now:_ =
      if stop () then `Done
      else
        match Lease.lease lq ~worker:!spawn with
        | Some e ->
          let key = !spawn in
          incr spawn;
          Hashtbl.replace owner key e.Lease.id;
          let id = e.Lease.id
          and cube = e.Lease.cube in
          let lease_deadline = Mclock.now () +. lease_secs in
          let deadline =
            match overall with
            | Some d -> Float.min d lease_deadline
            | None -> lease_deadline
          in
          `Task
            {
              Portfolio.key;
              thunk =
                (fun ~share ->
                  solve_cube ?checkpoint ?share ~engine ~deadline g ~k ~id
                    cube);
              watchdog = lease_secs +. grace;
              fault =
                Option.bind chaos (fun p -> Chaos.process_fault_for p key);
              seed = Portfolio.worker_seed ~run_seed:0 ~index:key;
              mem_limit_mb = None;
              wants_share = true;
            }
        | None -> if Lease.all_done lq then `Done else `Wait 0.05
    in
    let maybe_split e =
      if
        e.Lease.attempts >= split_after
        && e.Lease.depth < max_depth
      then
        match Cube.refine g ~k e.Lease.cube with
        | Some children -> ignore (Lease.split lq e children)
        | None -> ()
    in
    let on_done (task : reply Portfolio.task) completion ~wall:_ =
      let entry =
        Option.bind (Hashtbl.find_opt owner task.Portfolio.key)
          (Lease.find lq)
      in
      (match (entry, completion) with
      | None, _ -> ()  (* entry was split away; drop the zombie's result *)
      | Some e, Portfolio.C_value (R_unsat steps) -> (
        (* the parent replays the cube's trace against its OWN rebuild of
           the cube formula before the verdict can count — a forged or
           truncated trace releases the cube instead of poisoning the
           tree *)
        let enc = cube_formula g ~k e.Lease.cube in
        match
          Rup.check_claim enc.Encoding.formula Proof.Unsat_claim steps
        with
        | Ok _ ->
          if Lease.complete lq e Lease.V_unsat then begin
            incr solved;
            Hashtbl.replace proofs e.Lease.id (e.Lease.cube, steps)
          end
        | Error _ ->
          incr replay_failures;
          Lease.release lq ~worker:task.Portfolio.key)
      | Some e, Portfolio.C_value (R_sat m) -> (
        let enc = Lazy.force parent_enc in
        let col = try Some (Encoding.decode enc m) with _ -> None in
        match col with
        | Some col
          when Graph.is_proper_coloring g col
               && Graph.count_colors col <= k ->
          ignore (Lease.complete lq e Lease.V_sat);
          incr solved;
          sat_model := Some col
        | _ ->
          incr replay_failures;
          Lease.release lq ~worker:task.Portfolio.key)
      | Some e, Portfolio.C_value (R_unknown _) ->
        Lease.release lq ~worker:task.Portfolio.key;
        maybe_split e
      | Some _, Portfolio.C_cancelled -> ()
      | Some e, _ ->
        (* crash / OOM / watchdog / garbled: the lease comes straight back
           instead of waiting out the clock; a straggler that keeps dying
           or timing out is split into smaller cubes *)
        Lease.release lq ~worker:task.Portfolio.key;
        maybe_split e);
      if !sat_model <> None then `Stop_all else `Continue
    in
    Portfolio.run_pool ~jobs ~should_stop:stop ~next ~on_done ();
    let verdict =
      match !sat_model with
      | Some col -> Colorable col
      | None ->
        if past_deadline () || should_stop () then
          Undecided "budget exhausted before the cube tree settled"
        else if not (Lease.all_done lq) then
          Undecided "cube queue did not settle"
        else begin
          (* claim nothing before the stitched tree derivation replays *)
          let tree =
            List.filter_map
              (fun e -> Hashtbl.find_opt proofs e.Lease.id)
              (Lease.entries lq)
          in
          match replay_tree g ~k tree with
          | Ok () -> Not_colorable
          | Error m ->
            fail_reason := Some m;
            Undecided (Printf.sprintf "tree replay failed: %s" m)
        end
    in
    ignore !fail_reason;
    {
      verdict;
      cubes_solved = !solved;
      proofs =
        List.filter_map
          (fun e -> Hashtbl.find_opt proofs e.Lease.id)
          (Lease.entries lq);
      replay_failures = !replay_failures;
      releases = Lease.releases lq;
      expiries = Lease.expiries lq;
      dup_results = Lease.dup_results lq;
      splits = Lease.splits lq;
      wall = Mclock.now () -. t0;
    }
  end

(* ------------------------------------------------------------------ *)
(* The chromatic-number driver                                         *)

type chi_result = {
  chi : int option;  (** proven exactly when certified *)
  best : int array;  (** best proper coloring found (always certified) *)
  best_colors : int;
  lower_bound : int;      (** from a verified clique *)
  certified_unsat_k : int option;
      (** largest k proven uncolorable by a replayed tree proof *)
  steps : (int * verdict) list;  (** (k, verdict) per decision, latest first *)
}

let chi ?jobs ?engine ?lease_secs ?grace ?split_after ?max_depth ?depth
    ?timeout ?chaos ?journal ?checkpoint ?(should_stop = fun () -> false) g ()
    =
  let t0 = Mclock.now () in
  let overall = Option.map (fun s -> t0 +. s) timeout in
  let past_deadline () =
    match overall with Some d -> Mclock.now () > d | None -> false
  in
  let n = Graph.num_vertices g in
  if n = 0 then
    {
      chi = Some 0;
      best = [||];
      best_colors = 0;
      lower_bound = 0;
      certified_unsat_k = None;
      steps = [];
    }
  else begin
    (* certified upper bound: DSATUR's coloring, checked against the graph *)
    let ub_col = Dsatur.dsatur g in
    if not (Graph.is_proper_coloring g ub_col) then
      invalid_arg "Conquer.chi: DSATUR produced an improper coloring";
    (* certified lower bound: a greedy clique, verified pairwise-adjacent *)
    let cl = Clique.greedy g in
    let lb = if Clique.is_clique g cl then max 1 (Array.length cl) else 1 in
    let best = ref ub_col in
    let best_colors = ref (Graph.count_colors ub_col) in
    let certified = ref None in
    let steps = ref [] in
    let k = ref (!best_colors - 1) in
    let continue = ref true in
    while !continue && !k >= lb && not (past_deadline ()) do
      let remaining = Option.map (fun d -> d -. Mclock.now ()) overall in
      let d =
        decide ?jobs ?engine ?lease_secs ?grace ?split_after ?max_depth
          ?depth ?timeout:remaining ?chaos ?journal ?checkpoint ~should_stop
          g ~k:!k ()
      in
      steps := (!k, d.verdict) :: !steps;
      (match d.verdict with
      | Colorable col ->
        let c = Graph.count_colors col in
        if c < !best_colors then begin
          best := col;
          best_colors := c
        end;
        k := c - 1
      | Not_colorable ->
        certified := Some !k;
        continue := false
      | Undecided _ -> continue := false)
    done;
    let chi =
      if !best_colors = lb then Some !best_colors
      else if !certified = Some (!best_colors - 1) then Some !best_colors
      else None
    in
    {
      chi;
      best = !best;
      best_colors = !best_colors;
      lower_bound = lb;
      certified_unsat_k = !certified;
      steps = !steps;
    }
  end
