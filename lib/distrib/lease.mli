(** Lease-based cube queue with journaled transitions and exactly-once
    result accounting (DESIGN.md §17).

    Every cube is leased to at most one worker at a time, with a
    monotonic-clock deadline. A SIGKILLed, hung, or OOM-killed worker
    never strands its cube: either the supervisor observes the death and
    {!release}s the lease immediately, or the lease {!expire}s on its own
    and the cube returns to the pending pool. Because the reclaimed cube
    may then be solved twice (the original holder could be merely slow,
    not dead), {!complete} accepts only the FIRST verdict per cube id and
    counts later duplicates — results are exactly-once even though
    execution is at-least-once.

    Every transition is appended to the optional journal as a
    self-contained record keyed [cube-<digest8>-<id>] (digest of the root
    formula, so records from different instances can share a journal), in
    the same latest-record-wins style the coloring daemon uses; journal
    I/O failures are absorbed — the queue is authoritative in memory, the
    journal is an audit trail. *)

type verdict = V_unsat | V_sat

type state =
  | Pending
  | Leased of { worker : int; deadline : float }
  | Done of verdict

type entry = {
  id : int;                 (** stable identity for result accounting *)
  cube : Cube.t;
  mutable state : state;
  mutable attempts : int;   (** leases granted so far *)
  depth : int;              (** split generations behind this cube *)
}

type t

val create :
  ?journal:Colib_portfolio.Journal.t ->
  digest:string ->
  lease_secs:float ->
  Cube.t list ->
  t
(** A fresh queue with every cube pending at depth 0. *)

val lease : t -> worker:int -> entry option
(** Expire overdue leases, then grant the first pending cube to [worker]
    with a [lease_secs] deadline. [None] when nothing is pending. *)

val release : t -> worker:int -> unit
(** Return every cube leased to [worker] to the pending pool — the
    supervisor observed the worker die. *)

val expire : t -> unit
(** Reclaim cubes whose lease deadline has passed. *)

val complete : t -> entry -> verdict -> bool
(** Record a verdict. [false] if the entry was already [Done] (a
    duplicate from a zombie whose lease had been reclaimed) — the caller
    must not count the result again. *)

val split : t -> entry -> Cube.t list -> entry list
(** Replace a straggler with fresh child entries one depth deeper. The
    parent's id leaves the queue, so its late results are dropped by
    {!find}-guarded callers. *)

val find : t -> int -> entry option
val all_done : t -> bool
val pending : t -> int
val outstanding : t -> int
val entries : t -> entry list

val releases : t -> int
val expiries : t -> int
val dup_results : t -> int
val splits : t -> int
