module Graph = Colib_graph.Graph
module Clique = Colib_graph.Clique
module Encoding = Colib_encode.Encoding
module Lit = Colib_sat.Lit

type t = (int * int) list

let to_string cube =
  if cube = [] then "(root)"
  else
    String.concat "&"
      (List.map (fun (v, c) -> Printf.sprintf "x%d=%d" v c) cube)

(* Deterministic split-vertex order: the vertices of a greedy clique first —
   they are mutually adjacent, so fixing their colors prunes every branch
   hardest (DSATUR's own seeding rule) — then the remaining vertices by
   descending degree (the static DSATUR tie-break), ties by index. *)
let split_order g =
  let n = Graph.num_vertices g in
  let cl = Clique.greedy g in
  let in_clique = Array.make n false in
  Array.iter (fun v -> in_clique.(v) <- true) cl;
  let rest =
    List.sort
      (fun a b ->
        match compare (Graph.degree g b) (Graph.degree g a) with
        | 0 -> compare a b
        | c -> c)
      (List.filter (fun v -> not in_clique.(v)) (List.init n Fun.id))
  in
  Array.to_list cl @ rest

let branch ~k cube v = List.init k (fun c -> cube @ [ (v, c) ])

let refine g ~k cube =
  let used = List.map fst cube in
  match List.find_opt (fun v -> not (List.mem v used)) (split_order g) with
  | None -> None
  | Some v -> Some (branch ~k cube v)

let split g ~k ~depth =
  let order = split_order g in
  let rec go d vs cubes =
    match vs with
    | v :: vs when d > 0 -> go (d - 1) vs (List.concat_map (fun c -> branch ~k c v) cubes)
    | _ -> cubes
  in
  go (max 0 depth) order [ [] ]

let unit_lits enc cube =
  List.map (fun (v, c) -> Lit.pos enc.Encoding.x.(v).(c)) cube

let check_cover ~k cubes =
  let vertices = ref [] in
  let rec go cubes =
    match cubes with
    | [] -> Error "no cubes at a branch point"
    | [ [] ] -> Ok ()
    | _ ->
      if List.exists (fun c -> c = []) cubes then
        Error "an exhausted cube next to unexhausted siblings"
      else begin
        let v = fst (List.hd (List.hd cubes)) in
        if not (List.for_all (fun c -> fst (List.hd c) = v) cubes) then
          Error
            (Printf.sprintf "sibling cubes split on different vertices at %d" v)
        else begin
          vertices := v :: !vertices;
          let groups = Array.make k [] in
          let bad = ref None in
          List.iter
            (fun c ->
              match c with
              | (_, col) :: rest ->
                if col < 0 || col >= k then
                  bad := Some (Printf.sprintf "color %d out of range on vertex %d" col v)
                else groups.(col) <- rest :: groups.(col)
              | [] -> ())
            cubes;
          match !bad with
          | Some m -> Error m
          | None ->
            let rec all c =
              if c >= k then Ok ()
              else if groups.(c) = [] then
                Error
                  (Printf.sprintf "vertex %d has no branch for color %d" v c)
              else
                match go (List.rev groups.(c)) with
                | Ok () -> all (c + 1)
                | Error _ as e -> e
            in
            all 0
        end
      end
  in
  match go cubes with
  | Ok () -> Ok (List.sort_uniq compare !vertices)
  | Error _ as e -> e
