(** Long-lived incremental coloring sessions (DESIGN.md §18).

    A session holds ONE solver over a pre-allocated variable universe and
    answers a stream of chromatic-number queries interleaved with graph
    edits — edge add/remove and vertex add — without ever rebuilding the
    formula. The trick is the paper's own observation turned into an
    encoding discipline: everything instance-dependent is {e guarded} by
    an activation literal and switched on per query through solver
    assumptions, while everything instance-independent (the SBP clauses)
    is asserted unconditionally:

    - vertex [v]'s at-least-one-color clause is guarded by an activation
      variable [a_v]: [(¬a_v ∨ x_{v,0} ∨ … ∨ x_{v,H-1})];
    - edge [e = (u,v)]'s difference clauses are guarded by a selector
      [s_e]: [(¬s_e ∨ ¬x_{u,c} ∨ ¬x_{v,c})] per color — removing the edge
      is an assumption flip, not a formula edit, and re-adding it needs no
      un-elimination because its clauses never left the database;
    - color-usage guards [u_c] with [(¬x_{v,c} ∨ u_c)] turn "χ ≤ k" into
      the assumption set [{¬u_c | c ≥ k}];
    - the instance-independent SBPs — usage monotonicity [(¬u_c ∨
      u_{c-1})] and the prefix precedence units [(¬x_{v,c})] for [c > v]
      — depend only on the slot ordering, never the edge set, so they are
      sound for {e every} graph the session can reach (the renumbering
      argument tolerates inactive slots: an inactive vertex has no
      at-least-one obligation and color 0 is always within its prefix).

    Soundness of retained state across edits: assumptions enter the
    search as decisions and never as reasons, so every learned clause is
    a consequence of the (monotonically growing) clause database alone
    and survives any edit. An unsatisfiable query yields a failed core —
    a subset of the current assumptions — whose negation is proof-logged
    as a RUP step; certification therefore needs no knowledge of the edit
    history, only the formula and the trace. *)

type capacity = {
  max_vertices : int;  (** pre-allocated vertex slots *)
  max_colors : int;    (** color palette bound H; χ beyond it is an error *)
  max_edges : int;     (** distinct vertex pairs ever carrying an edge *)
}

type t

type edit =
  | Add_vertex
  | Add_edge of int * int
  | Remove_edge of int * int

val edit_to_string : edit -> string
val edit_of_string : string -> (edit, string) result
(** Compact wire/journal form: ["v"], ["e U V"], ["d U V"]. *)

val create :
  ?proof:bool -> ?engine:Colib_solver.Types.engine -> ?inprocess:bool ->
  capacity -> t
(** Fresh session over an empty graph. [proof] (default [true]) logs a
    RUP trace covering every learned clause and every failed core.
    [engine] defaults to [Pbs2]; CDCL engines only. *)

val capacity : t -> capacity

(** active vertices *)
val num_vertices : t -> int

(** active edges *)
val num_edges : t -> int

(** the current active graph *)
val graph : t -> Colib_graph.Graph.t

(** edits applied so far *)
val edits : t -> int

val apply : t -> edit -> (unit, string) result
(** Apply one edit. Adding an existing edge or removing an absent one is
    an idempotent no-op; exceeding a capacity bound or naming an inactive
    vertex is an error and leaves the session unchanged. *)

type answer = {
  chi : int;                   (** chromatic number of the active graph *)
  coloring : int array;        (** a proper χ-coloring of the active graph *)
  certified : bool;            (** [Certify.coloring] accepted it *)
  core : Colib_sat.Lit.t list;
      (** failed core refuting χ-1 colors ([] iff χ = 0: nothing to refute) *)
  core_ok : bool;              (** every core literal was an assumption of
                                   the refuted query — the refutation is
                                   about the *current* activation set *)
  incremental : bool;          (** served by the warm engine of a previous
                                   query (false on the session's first
                                   query or right after a warm restore) *)
  conflicts : int;             (** solver conflicts spent on this query *)
  time : float;                (** wall seconds *)
}

val query :
  ?budget:Colib_solver.Types.budget -> t -> (answer, string) result
(** Compute χ of the active graph with a model certificate at χ and a
    failed-core certificate at χ-1, descending from the best known upper
    bound (the previous answer when still proper, else DSATUR). The
    default budget is 60 s. Errors: budget exhaustion, or χ exceeding
    [max_colors]. *)

val check_proof : t -> (int, string) result
(** Replay the session's whole accumulated trace — every learned clause
    and failed core since creation (or the last warm restore) — through
    the independent RUP checker against the current formula. Returns the
    number of steps checked. The independent gate tests call this after
    edit scripts; it is too slow for the per-query path. *)

val formula : t -> Colib_sat.Formula.t
val proof_steps : t -> Colib_sat.Proof.step list
val digest : t -> string
(** Digest of the formula's OPB text — the snapshot identity. Grows only
    when an edit first materializes a new edge slot, so a snapshot taken
    at edit [n] validates against a session that replayed exactly the
    first [n] edits. *)

val nvars : t -> int
val engine_kind : t -> Colib_solver.Types.engine

val capture : t -> Colib_solver.Types.saved_engine * Colib_sat.Proof.step list
(** Warm state for a checkpoint: the engine's durable search state plus
    the proof prefix that accounts for it. *)

val restore_warm :
  t ->
  Colib_solver.Types.saved_engine ->
  Colib_sat.Proof.step list ->
  (unit, string) result
(** Re-install captured warm state into a session whose edit history
    matches the capture point (callers validate via {!digest} and
    {!Colib_solver.Checkpoint.validate}). On mismatch the session is left
    cold but correct. *)
