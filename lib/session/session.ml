(* Incremental coloring sessions over a guarded encoding: one engine, one
   monotonically growing formula, edits as assumption flips. See
   session.mli and DESIGN.md §18 for the soundness story. *)

module Lit = Colib_sat.Lit
module Formula = Colib_sat.Formula
module Proof = Colib_sat.Proof
module Output = Colib_sat.Output
module Graph = Colib_graph.Graph
module Dsatur = Colib_graph.Dsatur
module Types = Colib_solver.Types
module Engine = Colib_solver.Engine
module Certify = Colib_check.Certify
module Rup = Colib_check.Rup
module Mclock = Colib_clock.Mclock

type capacity = { max_vertices : int; max_colors : int; max_edges : int }

type edit =
  | Add_vertex
  | Add_edge of int * int
  | Remove_edge of int * int

let edit_to_string = function
  | Add_vertex -> "v"
  | Add_edge (u, v) -> Printf.sprintf "e %d %d" u v
  | Remove_edge (u, v) -> Printf.sprintf "d %d %d" u v

let edit_of_string s =
  match String.split_on_char ' ' (String.trim s) with
  | [ "v" ] -> Ok Add_vertex
  | [ "e"; u; v ] | [ "d"; u; v ] as toks -> (
    match (int_of_string_opt u, int_of_string_opt v) with
    | Some u, Some v ->
      if List.hd toks = "e" then Ok (Add_edge (u, v)) else Ok (Remove_edge (u, v))
    | _ -> Error (Printf.sprintf "bad edit %S" s))
  | _ -> Error (Printf.sprintf "bad edit %S" s)

type slot = { sl_sel : int; mutable sl_active : bool }

type t = {
  cap : capacity;
  kind : Types.engine;
  inprocess : bool;
  proof_on : bool;
  formula : Formula.t;
  x : int array array;   (* x.(v).(c): vertex slot v takes color c *)
  act : int array;       (* a_v: vertex slot v is active *)
  use : int array;       (* u_c: color c is in use *)
  sel : int array;       (* selector pool, bound to edges on demand *)
  edges : (int * int, slot) Hashtbl.t;  (* normalized (min,max) pairs *)
  mutable nsel : int;    (* bound selectors *)
  mutable nv : int;      (* active vertices: slots 0 .. nv-1 *)
  mutable eng : Engine.t;
  mutable engine_queries : int;  (* queries served by THIS engine value *)
  mutable incumbent : int array option;
  mutable nedits : int;
}

type answer = {
  chi : int;
  coloring : int array;
  certified : bool;
  core : Lit.t list;
  core_ok : bool;
  incremental : bool;
  conflicts : int;
  time : float;
}

let frozen t =
  Array.to_list t.act @ Array.to_list t.use @ Array.to_list t.sel

let make_engine t steps =
  let proof =
    if t.proof_on then
      Some (match steps with [] -> Proof.create () | s -> Proof.of_steps s)
    else None
  in
  let eng =
    Engine.create ?proof ~inprocess:t.inprocess t.kind
      (Formula.num_vars t.formula)
  in
  Engine.add_formula eng t.formula;
  Engine.freeze eng (frozen t);
  eng

let create ?(proof = true) ?(engine = Types.Pbs2) ?(inprocess = true) cap =
  if cap.max_vertices < 1 || cap.max_colors < 1 || cap.max_edges < 0 then
    invalid_arg "Session.create: capacities must be positive";
  let f = Formula.create () in
  let n = cap.max_vertices and h = cap.max_colors in
  let x =
    Array.init n (fun v ->
        Array.init h (fun c ->
            Formula.fresh_var ~name:(Printf.sprintf "x%d_%d" v c) f))
  in
  let act =
    Array.init n (fun v -> Formula.fresh_var ~name:(Printf.sprintf "a%d" v) f)
  in
  let use =
    Array.init h (fun c -> Formula.fresh_var ~name:(Printf.sprintf "u%d" c) f)
  in
  let sel =
    Array.init cap.max_edges (fun i ->
        Formula.fresh_var ~name:(Printf.sprintf "s%d" i) f)
  in
  for v = 0 to n - 1 do
    (* guarded at-least-one-color *)
    Formula.add_clause f
      (Lit.neg act.(v) :: List.init h (fun c -> Lit.pos x.(v).(c)));
    for c = 0 to h - 1 do
      Formula.add_clause f [ Lit.neg x.(v).(c); Lit.pos use.(c) ]
    done;
    (* instance-independent prefix precedence: slot v uses colors <= v *)
    for c = v + 1 to h - 1 do
      Formula.add_clause f [ Lit.neg x.(v).(c) ]
    done
  done;
  (* instance-independent usage monotonicity *)
  for c = 1 to h - 1 do
    Formula.add_clause f [ Lit.neg use.(c); Lit.pos use.(c - 1) ]
  done;
  let t =
    {
      cap;
      kind = engine;
      inprocess;
      proof_on = proof;
      formula = f;
      x;
      act;
      use;
      sel;
      edges = Hashtbl.create 64;
      nsel = 0;
      nv = 0;
      eng = Engine.create engine 0 (* replaced just below *);
      engine_queries = 0;
      incumbent = None;
      nedits = 0;
    }
  in
  t.eng <- make_engine t [];
  t

let capacity t = t.cap
let num_vertices t = t.nv

let num_edges t =
  Hashtbl.fold (fun _ s n -> if s.sl_active then n + 1 else n) t.edges 0

let active_edges t =
  Hashtbl.fold (fun e s acc -> if s.sl_active then e :: acc else acc) t.edges []

let graph t = Graph.of_edges t.nv (active_edges t)
let edits t = t.nedits

(* Bind a fresh selector to the pair (u,v) and materialize its guarded
   difference clauses — only for colors both endpoints can take under the
   prefix SBP, so the formula (and its digest) stays a deterministic
   function of the edit history. *)
let bind_slot t u v =
  let s = { sl_sel = t.sel.(t.nsel); sl_active = true } in
  t.nsel <- t.nsel + 1;
  Hashtbl.replace t.edges (u, v) s;
  for c = 0 to min (min u v) (t.cap.max_colors - 1) do
    let cls =
      [ Lit.neg s.sl_sel; Lit.neg t.x.(u).(c); Lit.neg t.x.(v).(c) ]
    in
    Formula.add_clause t.formula cls;
    Engine.add_clause t.eng cls
  done

let apply t edit =
  let r =
    match edit with
    | Add_vertex ->
      if t.nv >= t.cap.max_vertices then Error "vertex capacity exhausted"
      else begin
        t.nv <- t.nv + 1;
        Ok ()
      end
    | Add_edge (u, v) | Remove_edge (u, v) when u = v || u < 0 || v < 0 ->
      Error (Printf.sprintf "bad edge (%d,%d)" u v)
    | Add_edge (u, v) | Remove_edge (u, v)
      when max u v >= t.nv ->
      Error
        (Printf.sprintf "edge (%d,%d) names an inactive vertex (have %d)" u v
           t.nv)
    | Add_edge (u, v) -> (
      let e = (min u v, max u v) in
      match Hashtbl.find_opt t.edges e with
      | Some s ->
        s.sl_active <- true;
        Ok ()
      | None ->
        if t.nsel >= t.cap.max_edges then Error "edge capacity exhausted"
        else begin
          bind_slot t (fst e) (snd e);
          Ok ()
        end)
    | Remove_edge (u, v) -> (
      let e = (min u v, max u v) in
      match Hashtbl.find_opt t.edges e with
      | Some s ->
        s.sl_active <- false;
        Ok ()
      | None -> Ok ())
  in
  (match r with Ok () -> t.nedits <- t.nedits + 1 | Error _ -> ());
  r

let stats_conflicts t = (Engine.stats t.eng).Types.conflicts

let query ?(budget = Types.within_seconds 60.0) t =
  let t0 = Mclock.now () in
  (* resolve the relative limit once, so the whole descent shares one
     absolute deadline *)
  let budget = Types.started budget in
  let g = graph t in
  let n = t.nv in
  if n = 0 then
    Ok
      {
        chi = 0;
        coloring = [||];
        certified = true;
        core = [];
        core_ok = true;
        incremental = true;
        conflicts = 0;
        time = Mclock.now () -. t0;
      }
  else begin
    let h = t.cap.max_colors in
    let base =
      List.init n (fun v -> Lit.pos t.act.(v))
      @ Hashtbl.fold
          (fun _ s acc -> if s.sl_active then Lit.pos s.sl_sel :: acc else acc)
          t.edges []
    in
    let assume_k k =
      base @ List.init (h - k) (fun i -> Lit.neg t.use.(k + i))
    in
    let extract m =
      Array.init n (fun v ->
          let rec go c =
            if c >= h then -1 else if m.(t.x.(v).(c)) then c else go (c + 1)
          in
          go 0)
    in
    let conflicts0 = stats_conflicts t in
    let finish best core refuted_k =
      let chi = Graph.count_colors best in
      let assumed = Hashtbl.create 64 in
      List.iter
        (fun l -> Hashtbl.replace assumed (Lit.to_index l) ())
        (assume_k refuted_k);
      let core_ok =
        core <> []
        && List.for_all (fun l -> Hashtbl.mem assumed (Lit.to_index l)) core
      in
      let certified =
        match Certify.coloring g ~k:chi ~claimed:chi best with
        | Ok () -> true
        | Error _ -> false
      in
      t.incumbent <- Some (Array.copy best);
      let incremental = t.engine_queries > 0 in
      t.engine_queries <- t.engine_queries + 1;
      Ok
        {
          chi;
          coloring = best;
          certified;
          core;
          core_ok;
          incremental;
          conflicts = stats_conflicts t - conflicts0;
          time = Mclock.now () -. t0;
        }
    in
    let rec descend k best =
      (* invariant: [best] is a proper coloring using exactly k+1 colors *)
      match Engine.solve_assuming t.eng budget (assume_k k) with
      | Types.A_sat m -> (
        let col = extract m in
        if Array.exists (fun c -> c < 0) col then
          Error "internal: model leaves a vertex uncolored"
        else descend (Graph.count_colors col - 1) col)
      | Types.A_unsat_core core -> finish best core k
      | Types.A_unsat -> Error "internal: session formula unsatisfiable"
      | Types.A_unknown r ->
        Error ("budget exhausted: " ^ Types.stop_reason_name r)
    in
    let ds = Dsatur.dsatur g in
    let cand =
      match t.incumbent with
      | Some col
        when Array.length col = n
             && Graph.is_proper_coloring g col
             && Graph.count_colors col <= Graph.count_colors ds ->
        col
      | _ -> ds
    in
    let ub = Graph.count_colors cand in
    if ub <= h then descend (ub - 1) cand
    else begin
      (* the heuristic exceeded the palette: ask the solver at k = H *)
      match Engine.solve_assuming t.eng budget (assume_k h) with
      | Types.A_sat m -> (
        let col = extract m in
        if Array.exists (fun c -> c < 0) col then
          Error "internal: model leaves a vertex uncolored"
        else descend (Graph.count_colors col - 1) col)
      | Types.A_unsat_core _ ->
        Error "chromatic number exceeds session color capacity"
      | Types.A_unsat -> Error "internal: session formula unsatisfiable"
      | Types.A_unknown r ->
        Error ("budget exhausted: " ^ Types.stop_reason_name r)
    end
  end

let formula t = t.formula

let proof_steps t =
  match Engine.proof t.eng with Some p -> Proof.steps p | None -> []

let check_proof t =
  match Rup.check t.formula (proof_steps t) with
  | Ok v -> Ok v.Rup.steps_checked
  | Error f -> Error (Rup.failure_to_string f)

let digest t = Digest.to_hex (Digest.string (Output.opb_string t.formula))
let nvars t = Formula.num_vars t.formula
let engine_kind t = t.kind
let capture t = (Engine.capture t.eng, proof_steps t)

let restore_warm t sv steps =
  match
    let eng = make_engine t steps in
    Engine.restore eng sv;
    eng
  with
  | eng ->
    t.eng <- eng;
    t.engine_queries <- 0;
    Ok ()
  | exception Invalid_argument m -> Error m
