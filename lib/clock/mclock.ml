external now : unit -> float = "colib_monotonic_now"
