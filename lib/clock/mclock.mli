(** Monotonic clock for deadline, watchdog and backoff arithmetic.

    {!now} reads [CLOCK_MONOTONIC]: an arbitrary-epoch clock that only ever
    advances, immune to NTP steps and manual wall-clock changes. Every
    absolute deadline in the solver stack ([Types.budget.deadline], the
    portfolio watchdogs and retry backoff, [Exact_dsatur]'s cutoff) is a
    timestamp on this clock — never mix it with [Unix.gettimeofday]
    values. *)

val now : unit -> float
(** Seconds since an arbitrary fixed point, strictly non-decreasing within
    a process. Comparable across fork (parent and child share the epoch),
    not across machines or reboots. *)
