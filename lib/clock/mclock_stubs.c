/* Monotonic wall clock for deadlines, watchdogs and retry backoff.
 *
 * Unix.gettimeofday is the wall clock NTP steps and manual clock changes
 * move, in either direction; a deadline computed against it can fire hours
 * early or never.  CLOCK_MONOTONIC only ever advances, so every piece of
 * "has this duration elapsed" arithmetic in the solver stack goes through
 * this stub instead. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>

#ifdef _WIN32

#include <time.h>

CAMLprim value colib_monotonic_now(value unit)
{
  (void)unit;
  /* no CLOCK_MONOTONIC; clock() is at least steady within a process */
  return caml_copy_double((double)clock() / (double)CLOCKS_PER_SEC);
}

#else

#include <time.h>
#include <sys/time.h>

CAMLprim value colib_monotonic_now(value unit)
{
  struct timespec ts;
  (void)unit;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec / 1e9);
  else {
    /* clock_gettime can only fail on an unsupported clock id; degrade to
     * the non-monotonic clock rather than crash the solve */
    struct timeval tv;
    gettimeofday(&tv, NULL);
    return caml_copy_double((double)tv.tv_sec + (double)tv.tv_usec / 1e6);
  }
}

#endif
