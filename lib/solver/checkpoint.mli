(** Crash-recoverable search state: versioned, CRC-checksummed, atomically
    written snapshots of a running solve.

    A snapshot captures everything a warm restart needs — the optimizer
    incumbent (best model + cost, which re-implies the strengthening bound
    [objective <= cost - 1]), the live learned-clause DB, restart/Luby
    pacing, VSIDS activities and saved phases, the PRNG state of the run
    that produced it, and the proof-trace prefix logged so far — plus the
    identity of the solve it belongs to (label, color count, engine kind,
    and a digest of the encoded formula), so a resume can never be fed a
    snapshot from a different instance.

    Durability and integrity rules (DESIGN.md §11, §14):
    - writes go through {!Colib_io.Durable.write_file_atomic} — staged to
      [path ^ ".tmp"], fsynced, renamed over [path], parent directory
      fsynced — so a crash leaves either the old snapshot or the new one,
      never a torn file, and the ambient {!Colib_io.Fault} plan can inject
      disk-full/I/O errors on this exact path;
    - the on-disk format is [magic | version | length | crc32 | payload];
      a reader rejects wrong magic, unknown versions, short files and
      checksum mismatches {e before} decoding the payload, and classifies
      the failure so supervisors can journal it;
    - a structurally valid snapshot must additionally pass {!validate}
      against the resuming solve's own identity (digest computed from its
      independently rebuilt formula) before it is trusted. Corruption at
      any layer degrades to a cold start — never to a wrong answer, since
      the certification and proof-replay layers above re-check everything
      a resumed run claims. *)

type snapshot = {
  sn_label : string;        (** instance/cell identity chosen by the caller *)
  sn_k : int;               (** the color-count step this solve decides *)
  sn_digest : string;       (** [Digest] of the encoded formula's OPB text *)
  sn_incumbent : (bool array * int) option;
      (** best model + cost; implies the strengthening bound on resume *)
  sn_engine : Types.saved_engine;  (** learned DB, heuristics, counters *)
  sn_proof : Colib_sat.Proof.step list;
      (** proof-trace prefix at capture time ([] when logging is off) *)
  sn_prng : int64 option;   (** PRNG state of the producing run, if any *)
}

(** {1 On-disk format} *)

val format_version : int

type read_error =
  | Missing              (** no file at that path *)
  | Truncated            (** shorter than its header claims *)
  | Bad_magic            (** not a checkpoint file *)
  | Bad_version of int   (** written by an incompatible format version *)
  | Bad_crc              (** payload checksum mismatch *)
  | Bad_payload of string  (** checksummed payload failed to decode *)

val read_error_to_string : read_error -> string

val write : string -> snapshot -> unit
(** Atomic + durable: tmp file, fsync, rename, fsync of the parent
    directory. Raises [Unix.Unix_error] on I/O failure. *)

val read : string -> (snapshot, read_error) result
(** Structural validation only (magic/version/length/CRC/decode); callers
    must still {!validate} the snapshot against the solve at hand. *)

val validate :
  snapshot ->
  label:string ->
  k:int ->
  digest:string ->
  engine:Types.engine ->
  nvars:int ->
  (unit, string) result
(** Reject snapshots that structurally decode but belong to a different
    solve: wrong label, color count, engine kind, variable count, or a
    formula digest mismatch (a stale snapshot from an older encoding). *)

(** {1 Caller-facing configuration} *)

type config = {
  dir : string;        (** directory the snapshot files live in *)
  interval : float;    (** seconds between snapshot writes (0 = every poll) *)
  resume : bool;       (** attempt to load an existing snapshot first *)
  seed : int64 option; (** PRNG state to stamp into emitted snapshots *)
}

val config :
  ?interval:float -> ?resume:bool -> ?seed:int64 -> dir:string -> unit -> config
(** Defaults: interval 5.0, resume false, no seed. *)

val ensure_dir : string -> unit
(** [mkdir -p] for the snapshot directory. *)

val snapshot_path : dir:string -> label:string -> engine:string -> k:int -> string
(** Canonical per-solve file name under [dir]; [label] and [engine] are
    sanitized to filesystem-safe tokens. Deterministic, so the portfolio
    parent and its workers agree on where a strategy's snapshot lives. *)

val reap_label : dir:string -> label:string -> int
(** Delete every snapshot of [label] (any engine, any [k]) under [dir];
    returns how many files were removed. Errors are absorbed — snapshots
    of a finished solve are garbage, and reaping garbage must never take
    anything down. The coloring daemon calls this when a job reaches a
    terminal state, and at startup for jobs its journal already shows as
    terminal, so per-job checkpoints cannot accumulate. *)

(** {1 Rate-limited emission} *)

type emitter
(** Carries the target path, the interval, and the solve identity stamped
    into every snapshot. *)

val emitter :
  ?prng:int64 ->
  label:string ->
  k:int ->
  digest:string ->
  path:string ->
  interval:float ->
  unit ->
  emitter

val make :
  emitter ->
  engine:Types.saved_engine ->
  incumbent:(bool array * int) option ->
  proof:Colib_sat.Proof.step list ->
  snapshot
(** Assemble a snapshot carrying the emitter's identity fields. *)

val maybe_emit : emitter -> (unit -> snapshot) -> unit
(** Write a snapshot if at least [max interval (9 * last write cost)]
    seconds (monotonic) have passed since the previous write completed (or
    since the emitter's creation). The cost-adaptive floor keeps snapshot
    overhead at or below ~10% of wall time even as the learned DB and
    proof prefix — and with them the price of one capture + durable write
    — grow over a long solve; an aggressive (even zero) [interval] bounds
    snapshot staleness early in the run without ever starving the search.
    The thunk is only forced when a write actually happens.

    I/O failures do NOT propagate: a checkpoint is an optimization, so a
    disk-full or I/O error mid-solve is absorbed — recorded in
    {!last_error}/{!write_failures}, penalized with a capped doubling
    back-off on top of the normal gap — and the emitter re-arms on the
    first write that succeeds again. *)

val writes : emitter -> int
(** How many snapshots this emitter has written. *)

val write_failures : emitter -> int
(** How many snapshot writes failed with an I/O error. *)

val last_error : emitter -> string option
(** The most recent write failure, cleared by the next successful write. *)
