(** The backtrack-search core shared by all engines.

    A mutable solver state over a fixed number of variables. Constraints
    (clauses and normalized pseudo-Boolean [>=] constraints) can be added
    incrementally between calls to {!solve}; learned clauses are kept across
    calls, which makes the objective-strengthening loop of {!Optimize}
    incremental (every added bound constraint only tightens the problem, so
    previous learned clauses remain valid — Section 2.3 context).

    Two search procedures share the same propagation machinery:
    CDCL (conflict-driven clause learning with 1-UIP analysis, VSIDS,
    restarts and clause-database reduction — the specialized 0-1 ILP solver
    family) and a learning-free chronological branch & bound (the generic
    ILP baseline). The engine identity given at creation selects the
    procedure and its policies. *)

type t

val create :
  ?proof:Colib_sat.Proof.t -> ?inprocess:bool -> Types.engine -> int -> t
(** [create engine nvars] makes a solver for variables [0 .. nvars-1].
    When [proof] is given, the search appends a RUP proof trace to it:
    learned clauses and database deletions for the CDCL engines,
    decision-negation clauses for the branch & bound engine, inprocessing
    steps ([Substitute], [Eliminate] and the Learn/Delete traffic of the
    simplifier ladder), and a [Contradiction] step whenever the solver
    establishes unsatisfiability. The trace can be replayed against the
    loaded constraints by [Colib_check.Rup] without trusting the search.

    [inprocess] (default [true]) enables the {!Colib_sat.Simplify} ladder —
    subsumption, bounded variable elimination, failed-literal probing and
    equivalent-literal substitution — before the initial search and at
    restart boundaries, gated on conflict progress. *)

val engine : t -> Types.engine

val freeze : t -> int list -> unit
(** Mark variables the simplifier must never eliminate or substitute away
    (objective variables; PB-constraint variables are frozen
    automatically). Call before {!solve}. *)

val num_vars : t -> int
val stats : t -> Types.stats

val proof : t -> Colib_sat.Proof.t option
(** The trace given at creation, if any. *)

val add_clause : t -> Colib_sat.Lit.t list -> unit
(** Add a clause (root level). The clause is stored verbatim — deletions
    are proof-logged under the full literal list, so stored clauses must
    match the checker's database — but conflicting or effectively-unit
    additions update the trail immediately; the solver may become
    trivially unsatisfiable. *)

val add_pb : t -> Colib_sat.Pbc.t -> unit
(** Add a normalized PB constraint (root level). *)

val add_formula : t -> Colib_sat.Formula.t -> unit
(** Load every constraint of a formula. The formula must have been built over
    at most [num_vars] variables. *)

val solve : t -> Types.budget -> Types.outcome
(** Run the search. On [Sat m], [m.(v)] is the value of variable [v]. The
    solver can be reused (more constraints added, [solve] called again) after
    any outcome except that after [Unsat] it will keep answering [Unsat]. *)

val solve_assuming :
  t -> Types.budget -> Colib_sat.Lit.t list -> Types.assuming
(** Run the search with the given literals held as the first decisions
    (MiniSat-style assumptions), the substrate of incremental sessions:
    constraints guarded by activation literals are switched on and off per
    call, with the learned-clause database, activities and phases retained
    throughout — sound because assumptions are decisions and never reasons,
    so every learned clause is a consequence of the clause database alone
    and survives any change of activation set (DESIGN.md §18).

    On [A_sat m] the model satisfies every assumption. On [A_unsat_core
    core], [core] is a subset of the assumptions whose conjunction the
    formula refutes; the clause negating the core is appended to the proof
    trace as a [Learn] step, replayable by the independent checker with no
    reference to assumptions. [A_unsat] means the formula itself is
    unsatisfiable. Assumption variables are frozen (and un-eliminated if
    the inprocessor had removed them) as a side effect.

    Raises [Invalid_argument] for the learning-free B&B engine. *)

val value_in : bool array -> Colib_sat.Lit.t -> bool
(** Evaluate a literal in a model returned by {!solve}. *)

(** {1 Learned-clause exchange}

    Distributed/portfolio solving support (DESIGN.md §17). The engine
    exports short learned clauses (at most {!share_max_len} literals)
    through a bounded newest-wins ring buffer and polls for peer clauses,
    both only at root-level safe points: solve entry and restart
    boundaries. An imported clause is admitted only after this engine's own
    root-level RUP test re-derives it — assume the negation of its
    undefined literals on a scratch decision level, propagate, and require
    a conflict — and is then proof-logged as an ordinary [Learn] step, so
    the final trace replays with no reference to the sender. Clauses that
    fail the test are quarantined (dropped, counted in
    [stats.quarantined]); malformed ones (out-of-range or
    BVE-eliminated variables, tautologies, over-long) are rejected
    outright. A forged frame can therefore never poison the receiver. *)

val share_max_len : int
(** Maximum exported/imported clause length (8). *)

val set_share : t -> Types.share -> unit
(** Install exchange hooks. Without this call the exchange machinery is
    fully inert (one physical-equality test per learned clause). *)

type import =
  | Imported             (** RUP-admitted, proof-logged, in the database *)
  | Quarantined of string   (** structurally fine but not re-derivable *)
  | Import_rejected of string  (** malformed; never reached the RUP test *)

val import_clause : t -> Colib_sat.Lit.t list -> import
(** Run one candidate clause through the admission gate. Must be called at
    decision level 0 (it is, from the exchange points). Exposed for the
    quarantine tests. *)

val capture : t -> Types.saved_engine
(** Snapshot the durable search state — root-level facts, the live
    learned-clause DB with activities, VSIDS activities, saved phases,
    decay increments and statistics (which carry the restart schedule).
    Safe at any conflict boundary; does not perturb the running search.
    Plain marshal-safe data for {!Checkpoint} to persist. *)

val restore : t -> Types.saved_engine -> unit
(** Re-install a captured state into a freshly created engine that already
    holds the original formula. Re-adds root facts and learned clauses
    through the root-level add path {e without} proof logging (the proof
    prefix saved with a snapshot already lists them), then restores
    heuristic state and statistics so the restart schedule and DB-reduction
    pacing continue where the snapshot left off.

    Raises [Invalid_argument] if the snapshot's engine kind or variable
    count does not match, or if the engine is mid-search. *)
