module Lit = Colib_sat.Lit
module Pbc = Colib_sat.Pbc
module Formula = Colib_sat.Formula
module Proof = Colib_sat.Proof

type result =
  | Optimal of bool array * int
  | Satisfiable of bool array * int * Types.stop_reason
  | Unsatisfiable
  | Timeout of Types.stop_reason

let cost_of objective model =
  List.fold_left
    (fun acc (c, l) -> if Engine.value_in model l then acc + c else acc)
    0 objective

let minimize ?checkpoint ?resume eng objective budget =
  (* resolve the relative time limit once: every decision solve of the
     strengthening loop shares one absolute deadline *)
  let budget = Types.started budget in
  (* objective variables must survive inprocessing: the strengthening
     bounds and the Improve steps reference them *)
  Engine.freeze eng (List.map (fun (_, l) -> Lit.var l) objective);
  let best = ref None in
  (* a resumed run re-enters with the snapshot's incumbent and search
     state. Re-adding the bound [objective <= cost - 1] (not logged — the
     proof prefix's Improve step already implies it for the checker)
     restores the strengthening loop's invariant: every learned clause in
     the snapshot is implied by formula + latest bound, so the warm engine
     is exactly as constrained as the one that died. *)
  let resumed_floor = ref false in
  (match resume with
  | None -> ()
  | Some sn ->
    Engine.restore eng sn.Checkpoint.sn_engine;
    (match sn.Checkpoint.sn_incumbent with
    | None -> ()
    | Some (m, c) ->
      best := Some (Array.copy m, c);
      if c <= 0 then resumed_floor := true
      else (
        match Pbc.make_le objective (c - 1) with
        | Pbc.True -> ()
        | Pbc.False -> resumed_floor := true
        | Pbc.Clause lits -> Engine.add_clause eng lits
        | Pbc.Pb p -> Engine.add_pb eng p)));
  let budget =
    match checkpoint with
    | None -> budget
    | Some em ->
      let hook () =
        Checkpoint.maybe_emit em (fun () ->
            Checkpoint.make em ~engine:(Engine.capture eng)
              ~incumbent:(Option.map (fun (m, c) -> (Array.copy m, c)) !best)
              ~proof:
                (match Engine.proof eng with
                | Some p -> Proof.steps p
                | None -> []))
      in
      { budget with Types.checkpoint = Some hook }
  in
  let rec loop () =
    match Engine.solve eng budget with
    | Types.Unsat -> (
      match !best with
      | None -> Unsatisfiable
      | Some (m, c) -> Optimal (m, c))
    | Types.Unknown reason -> (
      match !best with
      | None -> Timeout reason
      | Some (m, c) -> Satisfiable (m, c, reason))
    | Types.Sat model ->
      let cost = cost_of objective model in
      (* the Improve step records the model and implies the bound constraint
         added below, so the checker can mirror the strengthening loop *)
      (match Engine.proof eng with
      | Some p -> Proof.add p (Proof.Improve { model = Array.copy model; cost })
      | None -> ());
      best := Some (model, cost);
      (* forbid this cost and anything worse.  [False] means the tighter
         bound is unsatisfiable outright — the objective's floor (positive
         whenever negated literals carry constants through normalization)
         has been reached — so the model in hand is optimal.  The checker
         mirrors the same bound after the Improve step and flips straight
         to contradiction, so no further proof steps are needed. *)
      let floor_hit =
        match Pbc.make_le objective (cost - 1) with
        | Pbc.True -> false (* unreachable: the model at hand violates it *)
        | Pbc.False -> true
        | Pbc.Clause lits ->
          Engine.add_clause eng lits;
          false
        | Pbc.Pb p ->
          Engine.add_pb eng p;
          false
      in
      if floor_hit || cost <= 0 then Optimal (model, cost) else loop ()
  in
  match (!resumed_floor, !best) with
  | true, Some (m, c) -> Optimal (m, c)
  | _ -> loop ()

let solve_formula ?proof ?inprocess kind f budget =
  if Formula.trivially_unsat f then Unsatisfiable
  else begin
    let eng = Engine.create ?proof ?inprocess kind (Formula.num_vars f) in
    Engine.add_formula eng f;
    match Formula.objective f with
    | Some obj -> minimize eng obj budget
    | None -> (
      match Engine.solve eng budget with
      | Types.Sat m -> Optimal (m, 0)
      | Types.Unsat -> Unsatisfiable
      | Types.Unknown reason -> Timeout reason)
  end

let pp_result ppf = function
  | Optimal (_, c) -> Format.fprintf ppf "optimal(%d)" c
  | Satisfiable (_, c, r) ->
    Format.fprintf ppf "satisfiable(%d, unproven: %s)" c
      (Types.stop_reason_name r)
  | Unsatisfiable -> Format.fprintf ppf "unsatisfiable"
  | Timeout r -> Format.fprintf ppf "timeout(%s)" (Types.stop_reason_name r)
