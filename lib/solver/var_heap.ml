type t = {
  heap : int array;          (* heap of variables *)
  pos : int array;           (* position in heap, -1 if absent *)
  act : float array;
  mutable size : int;
}

let create n =
  {
    heap = Array.init n (fun i -> i);
    pos = Array.init n (fun i -> i);
    act = Array.make n 0.0;
    size = n;
  }

let mem h v = h.pos.(v) >= 0
let is_empty h = h.size = 0
let activity h v = h.act.(v)
let lt h a b = h.act.(a) > h.act.(b) (* max-heap: "less" means higher activity *)

let swap h i j =
  let a = h.heap.(i) and b = h.heap.(j) in
  h.heap.(i) <- b;
  h.heap.(j) <- a;
  h.pos.(b) <- i;
  h.pos.(a) <- j

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt h h.heap.(i) h.heap.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < h.size && lt h h.heap.(l) h.heap.(!best) then best := l;
  if r < h.size && lt h h.heap.(r) h.heap.(!best) then best := r;
  if !best <> i then begin
    swap h i !best;
    sift_down h !best
  end

let pop_max h =
  if h.size = 0 then invalid_arg "Var_heap.pop_max: empty";
  let top = h.heap.(0) in
  h.size <- h.size - 1;
  if h.size > 0 then begin
    let lastv = h.heap.(h.size) in
    h.heap.(0) <- lastv;
    h.pos.(lastv) <- 0;
    sift_down h 0
  end;
  h.pos.(top) <- -1;
  top

let insert h v =
  if h.pos.(v) < 0 then begin
    h.heap.(h.size) <- v;
    h.pos.(v) <- h.size;
    h.size <- h.size + 1;
    sift_up h h.pos.(v)
  end

let bump h v inc =
  h.act.(v) <- h.act.(v) +. inc;
  if h.pos.(v) >= 0 then sift_up h h.pos.(v)

let rescale h factor =
  for v = 0 to Array.length h.act - 1 do
    h.act.(v) <- h.act.(v) *. factor
  done

let set_activities h act =
  if Array.length act <> Array.length h.act then
    invalid_arg "Var_heap.set_activities: length mismatch";
  Array.blit act 0 h.act 0 (Array.length act);
  (* restore the heap property over the members currently in the heap *)
  for i = (h.size / 2) - 1 downto 0 do
    sift_down h i
  done
