(** Linear objective strengthening on top of {!Engine}.

    0-1 ILP solvers answer the optimization version of a problem by repeated
    decision solving: find any model, then add the pseudo-Boolean constraint
    [objective <= cost - 1] and search again, until unsatisfiability proves
    the last model optimal (the linear-search strategy of PBS and Galena,
    Section 2.3). Every added bound only tightens the problem, so the engine
    keeps its learned clauses across iterations. *)

type result =
  | Optimal of bool array * int   (** model and proven-minimal cost *)
  | Satisfiable of bool array * int * Types.stop_reason
      (** search stopped: best model found and its cost, optimality unproven,
          plus why the strengthening loop stopped *)
  | Unsatisfiable
  | Timeout of Types.stop_reason  (** search stopped before any model *)

val minimize :
  ?checkpoint:Checkpoint.emitter ->
  ?resume:Checkpoint.snapshot ->
  Engine.t -> (int * Colib_sat.Lit.t) list -> Types.budget -> result
(** [minimize eng objective budget] minimizes [sum objective] subject to the
    constraints already loaded in [eng]. When the engine carries a proof
    trace, every improving model is logged as an [Improve] step (implying
    the [objective <= cost - 1] bound the loop adds), so an [Optimal] or
    [Unsatisfiable] answer leaves a complete optimality certificate.

    [checkpoint] installs a conflict-boundary snapshot hook into the budget:
    at most every [interval] seconds the emitter writes the engine's
    {!Engine.capture}, the current incumbent, and the proof prefix.

    [resume] warm-starts from a snapshot the caller has already structurally
    read and {!Checkpoint.validate}d: the engine state is {!Engine.restore}d,
    the incumbent becomes the starting [best], and its strengthening bound
    [objective <= cost - 1] is re-added (unlogged — the snapshot's proof
    prefix already carries the [Improve] step that implies it). If the
    resumed bound is already infeasible the incumbent is returned as
    [Optimal] without searching. *)

val solve_formula :
  ?proof:Colib_sat.Proof.t ->
  ?inprocess:bool ->
  Types.engine -> Colib_sat.Formula.t -> Types.budget -> result
(** Load a formula into a fresh engine of the given kind and minimize its
    objective (or just decide satisfiability when it has none, reporting the
    model with cost 0). [proof] and [inprocess] are passed to
    {!Engine.create}. *)

val pp_result : Format.formatter -> result -> unit
