module Proof = Colib_sat.Proof
module Mclock = Colib_clock.Mclock

type snapshot = {
  sn_label : string;
  sn_k : int;
  sn_digest : string;
  sn_incumbent : (bool array * int) option;
  sn_engine : Types.saved_engine;
  sn_proof : Proof.step list;
  sn_prng : int64 option;
}

(* ---------- on-disk format ---------- *)

let magic = "CKP1"

(* version 2: [Types.saved_engine] gained the inprocessing state (pinned
   flags in sv_learnts, elimination stack, dead-clause keys, counters) —
   the Marshal layout changed, so version-1 snapshots must be rejected as
   [Bad_version] and those runs restart cold *)
let format_version = 2

(* header: magic (4) | version (1) | payload length (8, BE) | crc32 (4, BE) *)
let header_len = 17

type read_error =
  | Missing
  | Truncated
  | Bad_magic
  | Bad_version of int
  | Bad_crc
  | Bad_payload of string

let read_error_to_string = function
  | Missing -> "no snapshot file"
  | Truncated -> "snapshot truncated"
  | Bad_magic -> "not a checkpoint file (bad magic)"
  | Bad_version v ->
    Printf.sprintf "unsupported snapshot version %d (expected %d)" v
      format_version
  | Bad_crc -> "snapshot checksum mismatch"
  | Bad_payload m -> "snapshot payload undecodable: " ^ m

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let t = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := t.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

let be_bytes value n =
  String.init n (fun i ->
      Char.chr (Int64.to_int
                  (Int64.logand
                     (Int64.shift_right_logical value (8 * (n - 1 - i)))
                     0xFFL)))

let be_decode s off n =
  let v = ref 0L in
  for i = 0 to n - 1 do
    v := Int64.logor (Int64.shift_left !v 8)
           (Int64.of_int (Char.code s.[off + i]))
  done;
  !v

let encode sn =
  let payload = Marshal.to_string sn [] in
  String.concat ""
    [
      magic;
      String.make 1 (Char.chr format_version);
      be_bytes (Int64.of_int (String.length payload)) 8;
      be_bytes (Int64.of_int (crc32 payload)) 4;
      payload;
    ]

let decode data =
  let n = String.length data in
  if n < header_len then Error Truncated
  else if String.sub data 0 4 <> magic then Error Bad_magic
  else begin
    let version = Char.code data.[4] in
    if version <> format_version then Error (Bad_version version)
    else begin
      let plen = Int64.to_int (be_decode data 5 8) in
      let crc = Int64.to_int (be_decode data 13 4) in
      if plen < 0 || n < header_len + plen then Error Truncated
      else begin
        let payload = String.sub data header_len plen in
        if crc32 payload <> crc then Error Bad_crc
        else
          match (Marshal.from_string payload 0 : snapshot) with
          | sn -> Ok sn
          | exception e -> Error (Bad_payload (Printexc.to_string e))
      end
    end
  end

(* ---------- durable file I/O ---------- *)

(* the full tmp + fsync + rename + dir-fsync discipline, through the
   fault-injectable durable layer *)
let write path sn = Colib_io.Durable.write_file_atomic ~path (encode sn)

let read path =
  match
    In_channel.with_open_bin path (fun ic ->
        really_input_string ic (In_channel.length ic |> Int64.to_int))
  with
  | data -> decode data
  | exception Sys_error _ -> Error Missing
  | exception End_of_file -> Error Truncated

let validate sn ~label ~k ~digest ~engine ~nvars =
  if sn.sn_label <> label then
    Error (Printf.sprintf "label mismatch (%S vs %S)" sn.sn_label label)
  else if sn.sn_k <> k then
    Error (Printf.sprintf "color-count mismatch (k=%d vs k=%d)" sn.sn_k k)
  else if sn.sn_engine.Types.sv_engine <> engine then
    Error
      (Printf.sprintf "engine mismatch (%s vs %s)"
         (Types.engine_name sn.sn_engine.Types.sv_engine)
         (Types.engine_name engine))
  else if sn.sn_engine.Types.sv_nvars <> nvars then
    Error
      (Printf.sprintf "variable-count mismatch (%d vs %d)"
         sn.sn_engine.Types.sv_nvars nvars)
  else if sn.sn_digest <> digest then
    Error "formula digest mismatch (stale snapshot for a different encoding)"
  else Ok ()

(* ---------- caller-facing configuration ---------- *)

type config = {
  dir : string;
  interval : float;
  resume : bool;
  seed : int64 option;
}

let config ?(interval = 5.0) ?(resume = false) ?seed ~dir () =
  { dir; interval; resume; seed }

let rec ensure_dir dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir)
  then begin
    ensure_dir (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let sanitize s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '-' | '_' -> c
      | _ -> '_')
    s

let snapshot_path ~dir ~label ~engine ~k =
  Filename.concat dir
    (Printf.sprintf "%s.%s.k%d.ckpt" (sanitize label) (sanitize engine) k)

(* every snapshot of [label] matches "<sanitize label>.<engine>.k<K>.ckpt",
   so the prefix + suffix test below reaps exactly that label's files *)
let reap_label ~dir ~label =
  let prefix = sanitize label ^ "." in
  let plen = String.length prefix in
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | entries ->
      Array.fold_left
        (fun n entry ->
          if
            String.length entry > plen
            && String.sub entry 0 plen = prefix
            && Filename.check_suffix entry ".ckpt"
          then (
            Colib_io.Durable.unlink_quiet (Filename.concat dir entry);
            n + 1)
          else n)
        0 entries

(* ---------- rate-limited emission ---------- *)

type emitter = {
  em_path : string;
  em_interval : float;
  em_label : string;
  em_k : int;
  em_digest : string;
  em_prng : int64 option;
  mutable em_last : float;
  mutable em_cost : float;  (** duration of the last capture + write *)
  mutable em_writes : int;
  mutable em_failures : int;
  mutable em_last_error : string option;
  mutable em_penalty : float;  (** extra gap after a failed write *)
}

let emitter ?prng ~label ~k ~digest ~path ~interval () =
  {
    em_path = path;
    em_interval = interval;
    em_label = label;
    em_k = k;
    em_digest = digest;
    em_prng = prng;
    em_last = Mclock.now ();
    em_cost = 0.0;
    em_writes = 0;
    em_failures = 0;
    em_last_error = None;
    em_penalty = 0.0;
  }

let make em ~engine ~incumbent ~proof =
  {
    sn_label = em.em_label;
    sn_k = em.em_k;
    sn_digest = em.em_digest;
    sn_incumbent = incumbent;
    sn_engine = engine;
    sn_proof = proof;
    sn_prng = em.em_prng;
  }

(* Snapshot cost grows with the search: a young run's learned DB marshals
   in microseconds, an hours-old one can take a sizable fraction of a
   second per write (capture copies the live DB, the proof prefix grows
   without bound). A fixed interval would let checkpointing starve the
   solver it protects, so the gap between writes also adapts to the
   measured cost of the previous write, keeping checkpoint overhead at or
   below ~10% of wall time no matter what interval the caller asked for. *)
let overhead_factor = 9.0

(* A failed write (disk full, transient EIO) must never kill the solve it
   is protecting: checkpoints are an optimization, losing one degrades a
   future restart to a colder start, nothing more. So I/O errors are
   absorbed here — recorded for the health report, penalized with a capped
   doubling back-off so a full disk is not hammered every poll — and the
   emitter re-arms automatically: the first successful write clears the
   penalty. *)
let failure_penalty_base = 1.0
let failure_penalty_cap = 30.0

let maybe_emit em f =
  let now = Mclock.now () in
  let gap =
    Float.max em.em_interval (overhead_factor *. em.em_cost) +. em.em_penalty
  in
  if now -. em.em_last >= gap then begin
    match write em.em_path (f ()) with
    | () ->
      let after = Mclock.now () in
      (* [em_last] is the write's completion, so the gap measures solver
         time between writes, not time swallowed by the writes themselves *)
      em.em_last <- after;
      em.em_cost <- after -. now;
      em.em_writes <- em.em_writes + 1;
      em.em_penalty <- 0.0;
      em.em_last_error <- None
    | exception Unix.Unix_error (err, fn, _) ->
      em.em_last <- Mclock.now ();
      em.em_failures <- em.em_failures + 1;
      em.em_last_error <- Some (Printf.sprintf "%s: %s" fn (Unix.error_message err));
      em.em_penalty <-
        (if em.em_penalty = 0.0 then failure_penalty_base
         else Float.min failure_penalty_cap (2.0 *. em.em_penalty))
  end

let writes em = em.em_writes
let write_failures em = em.em_failures
let last_error em = em.em_last_error
