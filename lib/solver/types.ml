(** Shared solver types: engine identities, budgets, outcomes, statistics. *)

(** The solver engines compared in the paper's experiments. The first four
    are CDCL-style specialized 0-1 ILP solvers and a generic-ILP stand-in;
    [Pbs1] is the retired original PBS used only in the appendix (Table 5). *)
type engine =
  | Pbs2    (** CDCL, 1-UIP learning, geometric restarts, phase saving *)
  | Galena  (** CDCL, 1-UIP learning, very lazy restarts, no phase saving *)
  | Pueblo  (** CDCL, 1-UIP learning, Luby restarts, aggressive DB cleanup *)
  | Cplex   (** learning-free branch & bound: the generic-ILP baseline *)
  | Pbs1    (** legacy: slow decay, no phase saving, geometric restarts *)

let engine_name = function
  | Pbs2 -> "PBS II"
  | Galena -> "Galena"
  | Pueblo -> "Pueblo"
  | Cplex -> "CPLEX*"
  | Pbs1 -> "PBS"

let all_engines = [ Pbs2; Cplex; Galena; Pueblo ]

(** Why a search stopped before producing an answer. Every resource limit in
    {!budget} maps to exactly one constructor, so callers can distinguish a
    wall-clock timeout from a conflict cap or an external cancellation and
    degrade accordingly. *)
type stop_reason =
  | Deadline           (** wall-clock budget exhausted *)
  | Conflict_limit     (** conflict cap reached *)
  | Propagation_limit  (** propagation cap reached *)
  | Memory_limit       (** major-heap word cap exceeded *)
  | Cancelled          (** the cooperative cancellation hook fired *)

let stop_reason_name = function
  | Deadline -> "deadline"
  | Conflict_limit -> "conflict limit"
  | Propagation_limit -> "propagation limit"
  | Memory_limit -> "memory limit"
  | Cancelled -> "cancelled"

(** A resource envelope for one solve. [time_limit] is relative and is
    resolved against the clock when the search actually starts (see
    {!started}), so time spent encoding or detecting symmetries before the
    solver runs is not silently charged to the solving budget. [deadline] is
    absolute, for callers that coordinate several stages against one
    wall-clock cutoff. [cancel] is a cooperative cancellation hook polled at
    the same batched points as the deadline; returning [true] stops the
    search with {!Cancelled}. *)
type budget = {
  time_limit : float option;       (** seconds, counted from solve start *)
  deadline : float option;
      (** absolute deadline on the monotonic clock ({!Colib_clock.Mclock}) *)
  max_conflicts : int option;
  max_propagations : int option;
  max_memory_words : int option;   (** cap on [Gc] major-heap words *)
  cancel : (unit -> bool) option;  (** cooperative cancellation hook *)
  checkpoint : (unit -> unit) option;
      (** snapshot-emission hook, polled at every conflict; the hook itself
          rate-limits and writes (see [Checkpoint.maybe_emit]), so the search
          only pays a closure call plus a clock read per conflict *)
}

let no_budget =
  {
    time_limit = None;
    deadline = None;
    max_conflicts = None;
    max_propagations = None;
    max_memory_words = None;
    cancel = None;
    checkpoint = None;
  }

let within_seconds s = { no_budget with time_limit = Some s }
let with_deadline d = { no_budget with deadline = Some d }
let with_conflicts n = { no_budget with max_conflicts = Some n }

(* Resolve the relative time limit against the clock at solve start. Called
   once at the entry of [Engine.solve] / [Optimize.minimize]; the resolved
   budget has [time_limit = None], so nested solve calls (the objective
   strengthening loop) share one absolute deadline instead of each restarting
   the clock. *)
let started b =
  match b.time_limit with
  | None -> b
  | Some s ->
    let d = Colib_clock.Mclock.now () +. s in
    let deadline =
      match b.deadline with None -> d | Some d0 -> Float.min d0 d
    in
    { b with time_limit = None; deadline = Some deadline }

type outcome =
  | Sat of bool array       (** a model, indexed by variable *)
  | Unsat
  | Unknown of stop_reason  (** budget exhausted or search cancelled *)

(** Outcome of a solve under assumptions ([Engine.solve_assuming]).
    [A_unsat_core] carries a subset of the given assumptions whose
    conjunction the formula refutes; the clause negating the core is
    proof-logged as an ordinary [Learn] step, so it replays by unit
    propagation against the clause database alone. [A_unsat] means the
    formula itself is unsatisfiable — no activation set can revive it. *)
type assuming =
  | A_sat of bool array
  | A_unsat_core of Colib_sat.Lit.t list
  | A_unsat
  | A_unknown of stop_reason

(** Learned-clause exchange hooks ([Engine.set_share]). The engine drains
    its bounded export ring through [sh_export] and polls [sh_import] for
    candidate clauses at root-level safe points (solve start and restart
    boundaries). Imported clauses are NEVER trusted: each one is admitted
    only after the receiving engine's own RUP test re-derives it (and is
    then proof-logged like any learned clause), otherwise it is quarantined
    — so a forged or cross-cube clause can change search speed, never an
    answer. Both hooks must be cheap and non-blocking; they run on the
    search path. *)
type share = {
  sh_export : Colib_sat.Lit.t list list -> unit;
      (** called with freshly learned short clauses to publish *)
  sh_import : unit -> Colib_sat.Lit.t list list;
      (** polled for candidate clauses from peers; [[]] when idle *)
}

type stats = {
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable learned : int;
  mutable restarts : int;
  mutable removed : int;  (** learned clauses deleted by DB reduction *)
  (* inprocessing counters, accumulated across simplifier runs *)
  mutable subsumed : int;     (** clauses deleted by (self-)subsumption *)
  mutable eliminated : int;   (** variables eliminated by BVE *)
  mutable probed : int;       (** root units found by failed-literal probing *)
  mutable substituted : int;  (** literals collapsed by equivalence reasoning *)
  (* clause-exchange counters (zero unless [Engine.set_share] was called) *)
  mutable shared_out : int;   (** short learned clauses exported to peers *)
  mutable shared_in : int;    (** imported clauses admitted by the RUP gate *)
  mutable quarantined : int;  (** imported clauses the RUP gate refused *)
}

let fresh_stats () =
  { conflicts = 0; decisions = 0; propagations = 0; learned = 0; restarts = 0;
    removed = 0; subsumed = 0; eliminated = 0; probed = 0; substituted = 0;
    shared_out = 0; shared_in = 0; quarantined = 0 }

(** The durable part of an engine's search state, as captured by
    [Engine.capture] and re-installed by [Engine.restore]: everything a
    warm restart needs (root-level implied literals, the live learned-clause
    DB with activities, branching heuristics, restart pacing) and nothing
    tied to a live search position (no trail above root, no watch-list
    scheduling state — a resumed run re-propagates from root, so its answer
    is identical even though its low-level trajectory may not be). Plain
    data, marshal-safe: [Checkpoint] persists it verbatim. *)
type saved_engine = {
  sv_engine : engine;
  sv_nvars : int;
  sv_root_units : int array;
      (** root-level trail literals (raw [Lit.to_index] ints): formula units
          plus every learned/propagated root fact *)
  sv_learnts : (int array * float * bool) array;
      (** live learned clauses (raw literal ints) with their activities and
          pinned flag — pinned clauses are inprocessing products (BVE
          resolvents, substitution binaries, strengthened clauses) that
          model soundness depends on, so DB reduction never drops them *)
  sv_activities : float array;     (** VSIDS activity per variable *)
  sv_polarity : bool array;        (** saved phases *)
  sv_var_inc : float;
  sv_cla_inc : float;
  sv_max_learnts : float;
  sv_conflicts : int;
  sv_decisions : int;
  sv_propagations : int;
  sv_learned : int;
  sv_restarts : int;
  sv_removed : int;
  sv_subsumed : int;
  sv_eliminated : int;
  sv_probed : int;
  sv_substituted : int;
  sv_elim : Colib_sat.Simplify.elim array;
      (** elimination stack, most recent first, re-installed so resumed
          models reconstruct identically and un-elimination keeps working *)
  sv_dead : int array array;
      (** literal arrays of non-learnt clauses the simplifier deleted (and
          proof-logged as [Delete]); [Engine.restore] re-marks them dead so
          a resumed run never re-deletes a clause the stitched proof's
          prefix already removed from the checker's database *)
  sv_next_simplify : int;
      (** conflict count at which the next inprocessing run is due *)
}
