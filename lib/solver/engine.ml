module Lit = Colib_sat.Lit
module Pbc = Colib_sat.Pbc
module Clause = Colib_sat.Clause
module Formula = Colib_sat.Formula
module Proof = Colib_sat.Proof
module Simplify = Colib_sat.Simplify
module Mclock = Colib_clock.Mclock

(* Literals are manipulated as raw ints (Lit.to_index) inside the engine. *)
let lvar l = l lsr 1
let lneg l = l lxor 1

type cls = {
  mutable lits : int array;
  learnt : bool;
  mutable activity : float;
  mutable deleted : bool;
  pinned : bool;
      (* inprocessing product (resolvent, substitution binary, strengthened
         clause): model soundness depends on it, DB reduction must keep it *)
}

type pb = {
  coefs : int array;
  plits : int array;
  bound : int;
  mutable slack : int;  (* sum of coefs over non-false literals, minus bound *)
}

type reason = No_reason | R_clause of cls | R_pb of pb

type confl = C_none | C_clause of cls | C_pb of pb

type occ = { o_pb : pb; o_coef : int }

exception Stop of Types.stop_reason

type t = {
  eng : Types.engine;
  nvars : int;
  assigns : int array;            (* -1 undef / 0 false / 1 true, by var *)
  level : int array;              (* by var *)
  reason : reason array;          (* by var *)
  pos_in_trail : int array;       (* by var *)
  trail : int array;
  mutable trail_size : int;
  trail_lim : int Vec.t;          (* trail size at each decision level *)
  mutable qhead : int;
  watches : cls Vec.t array;      (* by literal: clauses watching that literal *)
  pb_occ : occ Vec.t array;       (* by literal: PB constraints containing it *)
  clauses : cls Vec.t;
  learnts : cls Vec.t;
  pbs : pb Vec.t;
  heap : Var_heap.t;
  polarity : bool array;          (* saved phase, by var *)
  seen : bool array;              (* scratch for analyze, by var *)
  mutable ok : bool;
  mutable var_inc : float;
  mutable cla_inc : float;
  stats : Types.stats;
  proof : Proof.t option;
  (* inprocessing state *)
  inprocess : bool;               (* run the simplifier ladder at all? *)
  frozen : bool array;            (* objective vars: never eliminate *)
  eliminated : bool array;        (* BVE victims: never branch on them *)
  mutable elim : Simplify.elim list;  (* most recent first *)
  mutable dead_orig : int array list;
      (* non-learnt clauses the simplifier Delete-logged, for snapshots *)
  mutable next_simplify : int;    (* conflict count of the next run *)
  (* policies, fixed per engine *)
  var_decay : float;
  phase_saving : bool;
  learning : bool;                (* false for the B&B baseline *)
  restart_luby : bool;
  restart_first : int;            (* 0 = no restarts *)
  db_growth : float;
  mutable max_learnts : float;
  (* learned-clause exchange (DESIGN.md §17): a bounded ring of short
     learned clauses awaiting export, drained at root-level safe points.
     [share = None] keeps the hot path untouched: one physical-equality
     test per learned clause. *)
  mutable share : Types.share option;
  share_ring : int array array;   (* slots; [||] = empty *)
  mutable share_head : int;       (* next slot to overwrite *)
  mutable share_len : int;        (* live entries, <= capacity *)
  (* incremental solving under assumptions: literals placed as the first
     decisions of the search (MiniSat-style), so activation selectors can
     switch constraints on and off without touching the clause database *)
  mutable assumps : int array;    (* packed literals; [||] outside solve_assuming *)
  mutable last_core : int list option;  (* failed assumptions of the last search *)
}

let dummy_cls =
  { lits = [||]; learnt = false; activity = 0.0; deleted = true;
    pinned = false }
let dummy_pb = { coefs = [||]; plits = [||]; bound = 0; slack = 0 }
let dummy_occ = { o_pb = dummy_pb; o_coef = 0 }

let create ?proof ?(inprocess = true) eng nvars =
  let var_decay, phase_saving, learning, restart_luby, restart_first, db_growth =
    match eng with
    | Types.Pbs2 -> (0.95, true, true, false, 100, 1.2)
    | Types.Galena -> (0.99, false, true, false, 4000, 1.2)
    | Types.Pueblo -> (0.95, true, true, true, 32, 1.05)
    | Types.Cplex -> (1.0, false, false, false, 0, 1.0)
    | Types.Pbs1 -> (0.999, false, true, false, 100, 1.3)
  in
  {
    eng;
    nvars;
    assigns = Array.make nvars (-1);
    level = Array.make nvars 0;
    reason = Array.make nvars No_reason;
    pos_in_trail = Array.make nvars 0;
    trail = Array.make (max nvars 1) 0;
    trail_size = 0;
    trail_lim = Vec.create ~dummy:0 ();
    qhead = 0;
    watches = Array.init (2 * max nvars 1) (fun _ -> Vec.create ~dummy:dummy_cls ());
    pb_occ = Array.init (2 * max nvars 1) (fun _ -> Vec.create ~dummy:dummy_occ ());
    clauses = Vec.create ~dummy:dummy_cls ();
    learnts = Vec.create ~dummy:dummy_cls ();
    pbs = Vec.create ~dummy:dummy_pb ();
    heap = Var_heap.create nvars;
    polarity = Array.make nvars false;
    seen = Array.make nvars false;
    ok = true;
    var_inc = 1.0;
    cla_inc = 1.0;
    stats = Types.fresh_stats ();
    proof;
    inprocess;
    frozen = Array.make (max nvars 1) false;
    eliminated = Array.make (max nvars 1) false;
    elim = [];
    dead_orig = [];
    next_simplify = 0;
    var_decay;
    phase_saving;
    learning;
    restart_luby;
    restart_first;
    db_growth;
    max_learnts = 10000.0;
    share = None;
    share_ring = Array.make 64 [||];
    share_head = 0;
    share_len = 0;
    assumps = [||];
    last_core = None;
  }

let engine s = s.eng

let freeze s vars =
  List.iter (fun v -> if v >= 0 && v < s.nvars then s.frozen.(v) <- true) vars

let num_vars s = s.nvars
let stats s = s.stats
let proof s = s.proof
let decision_level s = Vec.size s.trail_lim

let log_step s step =
  match s.proof with None -> () | Some p -> Proof.add p step

let log_learn_raw s lits =
  match s.proof with
  | None -> ()
  | Some p -> Proof.add p (Proof.Learn (List.map Lit.of_index lits))

(* every transition to the trivially-unsatisfiable state is a point where
   the empty clause became RUP-derivable: record it exactly once *)
let mark_unsat s =
  if s.ok then begin
    s.ok <- false;
    log_step s Proof.Contradiction
  end

(* literal value: -1 undef, 0 false, 1 true *)
let lit_value s l =
  let a = s.assigns.(lvar l) in
  if a < 0 then -1 else a lxor (l land 1)

let enqueue s l r =
  let v = lvar l in
  s.assigns.(v) <- 1 lxor (l land 1);
  s.level.(v) <- decision_level s;
  s.reason.(v) <- r;
  s.pos_in_trail.(v) <- s.trail_size;
  s.trail.(s.trail_size) <- l;
  s.trail_size <- s.trail_size + 1;
  (* the complement literal becomes false: constraints containing it lose
     slack *)
  let occs = s.pb_occ.(lneg l) in
  for i = 0 to Vec.size occs - 1 do
    let o = Vec.get occs i in
    o.o_pb.slack <- o.o_pb.slack - o.o_coef
  done

let cancel_until s lvl =
  if decision_level s > lvl then begin
    let target = Vec.get s.trail_lim lvl in
    for i = s.trail_size - 1 downto target do
      let l = s.trail.(i) in
      let v = lvar l in
      let occs = s.pb_occ.(lneg l) in
      for k = 0 to Vec.size occs - 1 do
        let o = Vec.get occs k in
        o.o_pb.slack <- o.o_pb.slack + o.o_coef
      done;
      if s.phase_saving then s.polarity.(v) <- s.assigns.(v) = 1;
      s.assigns.(v) <- -1;
      s.reason.(v) <- No_reason;
      Var_heap.insert s.heap v
    done;
    s.trail_size <- target;
    s.qhead <- target;
    Vec.shrink s.trail_lim lvl
  end

let var_bump s v =
  Var_heap.bump s.heap v s.var_inc;
  if Var_heap.activity s.heap v > 1e100 then begin
    Var_heap.rescale s.heap 1e-100;
    s.var_inc <- s.var_inc *. 1e-100
  end

let var_decay_all s = s.var_inc <- s.var_inc /. s.var_decay

let cla_bump s c =
  c.activity <- c.activity +. s.cla_inc;
  if c.activity > 1e20 then begin
    Vec.iter (fun c -> c.activity <- c.activity *. 1e-20) s.learnts;
    s.cla_inc <- s.cla_inc *. 1e-20
  end

let cla_decay_all s = s.cla_inc <- s.cla_inc /. 0.999

(* Attach a clause with >= 2 literals; lits.(0) and lits.(1) are watched. *)
let attach s c =
  Vec.push s.watches.(c.lits.(0)) c;
  Vec.push s.watches.(c.lits.(1)) c

(* Install a clause of >= 2 literals, storing the literal array VERBATIM:
   the proof checker indexes deletions by the clause's full literal list,
   so the engine must never strip false literals from a stored clause (a
   stripped copy would make a later [Delete] step unmatchable). Two
   currently-non-false literals are moved into the watch slots so the
   two-watched invariant holds even when the clause is added after the
   propagation queue has drained. *)
let attach_verbatim s arr ~learnt ~activity ~pinned =
  let n = Array.length arr in
  let place slot =
    let k = ref slot in
    while !k < n && lit_value s arr.(!k) = 0 do
      incr k
    done;
    if !k < n then begin
      let tmp = arr.(slot) in
      arr.(slot) <- arr.(!k);
      arr.(!k) <- tmp
    end
  in
  place 0;
  place 1;
  let c = { lits = arr; learnt; activity; deleted = false; pinned } in
  (if learnt then Vec.push s.learnts c else Vec.push s.clauses c);
  attach s c;
  c

(* Un-eliminate variables an incremental caller is about to constrain
   again. BVE removed every clause of the variable and models re-derive its
   value from the witness stack — both unsound against constraints added
   later. The cure: pop the elimination stack down to (and including) the
   deepest re-touched entry, re-adding each popped entry's removed clauses.
   This needs no proof steps — BVE removals are never [Delete]-logged, so
   the checker still holds every one of them — and it must pop the whole
   prefix because a popped entry's clauses may mention variables eliminated
   after it, whose witness rule never accounted for those clauses coming
   back. Popped variables are frozen against re-elimination, and re-added
   clauses come back pinned so DB reduction and snapshots keep them. *)
let reintroduce s vars =
  if s.elim <> []
     && List.exists (fun v -> v < s.nvars && s.eliminated.(v)) vars
  then begin
    let deepest = ref (-1) in
    List.iteri
      (fun i e ->
        if List.mem (lvar e.Simplify.e_pivot) vars then deepest := i)
      s.elim;
    let rec split i acc rest =
      if i > !deepest then (List.rev acc, rest)
      else
        match rest with
        | [] -> (List.rev acc, [])
        | e :: tl -> split (i + 1) (e :: acc) tl
    in
    let popped, remain = split 0 [] s.elim in
    s.elim <- remain;
    List.iter
      (fun e ->
        let v = lvar e.Simplify.e_pivot in
        s.eliminated.(v) <- false;
        s.frozen.(v) <- true;
        Var_heap.insert s.heap v)
      popped;
    List.iter
      (fun e ->
        Array.iter
          (fun lits ->
            if s.ok then begin
              let arr = Array.copy lits in
              let sat = ref false and nonfalse = ref 0 and u = ref (-1) in
              Array.iter
                (fun l ->
                  match lit_value s l with
                  | 1 ->
                    sat := true;
                    incr nonfalse
                  | -1 ->
                    incr nonfalse;
                    u := l
                  | _ -> ())
                arr;
              if !nonfalse = 0 then mark_unsat s
              else begin
                ignore
                  (attach_verbatim s arr ~learnt:true ~activity:0.0
                     ~pinned:true);
                if (not !sat) && !nonfalse = 1 then enqueue s !u No_reason
              end
            end)
          e.Simplify.e_removed)
      popped;
    (* the re-added clauses may force literals: re-propagate everything *)
    s.qhead <- 0
  end

(* Add a clause at root level. The stored clause keeps every literal (see
   [attach_verbatim]); only genuinely conflicting or effectively-unit
   additions touch the trail here. *)
let add_clause_raw s lits =
  if s.ok then begin
    assert (decision_level s = 0);
    reintroduce s (List.map lvar lits);
    let arr = Array.of_list lits in
    let sat = ref false and nonfalse = ref 0 and u = ref (-1) in
    Array.iter
      (fun l ->
        match lit_value s l with
        | 1 ->
          sat := true;
          incr nonfalse
        | -1 ->
          incr nonfalse;
          u := l
        | _ -> ())
      arr;
    if !nonfalse = 0 then mark_unsat s
    else if Array.length arr = 1 then begin
      if not !sat then enqueue s arr.(0) No_reason
    end
    else begin
      ignore (attach_verbatim s arr ~learnt:false ~activity:0.0 ~pinned:false);
      if (not !sat) && !nonfalse = 1 then enqueue s !u No_reason
    end
  end

let add_clause s lits =
  add_clause_raw s (List.map Lit.to_index lits)

(* Add a PB constraint at root level, simplifying against the root
   assignment: true literals reduce the bound, false literals disappear. *)
let add_pb s (pbc : Pbc.t) =
  if s.ok then begin
    assert (decision_level s = 0);
    reintroduce s
      (Array.to_list (Array.map (fun l -> Lit.var l) pbc.Pbc.lits));
    let terms = ref [] and bound = ref pbc.Pbc.bound in
    Array.iteri
      (fun i l ->
        let li = Lit.to_index l in
        match lit_value s li with
        | 1 -> bound := !bound - pbc.Pbc.coefs.(i)
        | 0 -> ()
        | _ -> terms := (pbc.Pbc.coefs.(i), l) :: !terms)
      pbc.Pbc.lits;
    match Pbc.make_ge !terms !bound with
    | Pbc.True -> ()
    | Pbc.False -> mark_unsat s
    | Pbc.Clause ls -> add_clause s ls
    | Pbc.Pb p ->
      let plits = Array.map Lit.to_index p.Pbc.lits in
      let c =
        { coefs = p.Pbc.coefs; plits; bound = p.Pbc.bound;
          slack = Pbc.slack_full p }
      in
      Vec.push s.pbs c;
      Array.iteri
        (fun i l -> Vec.push s.pb_occ.(l) { o_pb = c; o_coef = c.coefs.(i) })
        plits;
      (* initial propagation opportunities are found by the next propagate
         call via the enqueue of future literals; but a freshly added
         constraint may already force literals at root *)
      Array.iteri
        (fun i l ->
          if c.coefs.(i) > c.slack && lit_value s l < 0 then
            enqueue s l (R_pb c))
        plits
  end

let add_formula s f =
  if Formula.trivially_unsat f then mark_unsat s
  else begin
    Formula.iter_clauses (fun c -> add_clause s (Clause.to_list c)) f;
    Formula.iter_pbs (fun p -> add_pb s p) f
  end

(* Unit propagation over clauses (two-watched-literal scheme) and PB
   constraints (slack counters; slacks are maintained by enqueue/cancel). *)
let propagate s =
  let conflict = ref C_none in
  while !conflict = C_none && s.qhead < s.trail_size do
    let p = s.trail.(s.qhead) in
    s.qhead <- s.qhead + 1;
    s.stats.propagations <- s.stats.propagations + 1;
    let false_lit = lneg p in
    (* clause watches *)
    let ws = s.watches.(false_lit) in
    let i = ref 0 and j = ref 0 in
    let n = Vec.size ws in
    while !i < n do
      let c = Vec.get ws !i in
      incr i;
      if c.deleted then () (* drop from watch list *)
      else if !conflict <> C_none then begin
        Vec.set ws !j c;
        incr j
      end
      else begin
        let lits = c.lits in
        if lits.(0) = false_lit then begin
          lits.(0) <- lits.(1);
          lits.(1) <- false_lit
        end;
        if lit_value s lits.(0) = 1 then begin
          Vec.set ws !j c;
          incr j
        end
        else begin
          (* look for a non-false literal to watch instead *)
          let len = Array.length lits in
          let k = ref 2 in
          while !k < len && lit_value s lits.(!k) = 0 do
            incr k
          done;
          if !k < len then begin
            lits.(1) <- lits.(!k);
            lits.(!k) <- false_lit;
            Vec.push s.watches.(lits.(1)) c
          end
          else begin
            Vec.set ws !j c;
            incr j;
            if lit_value s lits.(0) = 0 then conflict := C_clause c
            else enqueue s lits.(0) (R_clause c)
          end
        end
      end
    done;
    Vec.shrink ws !j;
    (* PB constraints containing false_lit: slack already updated at enqueue
       time; detect conflicts and implications *)
    if !conflict = C_none then begin
      let occs = s.pb_occ.(false_lit) in
      let oi = ref 0 in
      let on = Vec.size occs in
      while !conflict = C_none && !oi < on do
        let c = (Vec.get occs !oi).o_pb in
        incr oi;
        if c.slack < 0 then conflict := C_pb c
        else begin
          let len = Array.length c.plits in
          for k = 0 to len - 1 do
            if c.coefs.(k) > c.slack && lit_value s c.plits.(k) < 0 then
              enqueue s c.plits.(k) (R_pb c)
          done
        end
      done
    end
  done;
  !conflict

(* Literals explaining why [l] was implied (or why the conflict holds when
   [l < 0]): for clause reasons, the clause's other literals; for PB reasons,
   the literals of the constraint that were already false. All returned
   literals are currently false. *)
let iter_reason_lits s r ~skip f =
  match r with
  | No_reason -> assert false
  | R_clause c ->
    Array.iter (fun q -> if q <> skip then f q) c.lits;
    if c.learnt then cla_bump s c
  | R_pb pb ->
    let skip_pos =
      if skip < 0 then max_int else s.pos_in_trail.(lvar skip)
    in
    Array.iter
      (fun q ->
        if q <> skip && lit_value s q = 0
           && s.pos_in_trail.(lvar q) < skip_pos
        then f q)
      pb.plits

(* First-UIP conflict analysis. Returns the learnt clause (asserting literal
   first) and the backtrack level. *)
let analyze s confl =
  let learnt = ref [] in
  let path_count = ref 0 in
  let p = ref (-1) in
  let index = ref (s.trail_size - 1) in
  let to_clear = ref [] in
  let current = decision_level s in
  let absorb q =
    let v = lvar q in
    if (not s.seen.(v)) && s.level.(v) > 0 then begin
      s.seen.(v) <- true;
      to_clear := v :: !to_clear;
      var_bump s v;
      if s.level.(v) >= current then incr path_count
      else learnt := q :: !learnt
    end
  in
  let expand_conflict = function
    | C_none -> assert false
    | C_clause c ->
      Array.iter absorb c.lits;
      if c.learnt then cla_bump s c
    | C_pb pb ->
      Array.iter (fun q -> if lit_value s q = 0 then absorb q) pb.plits
  in
  expand_conflict confl;
  let continue_loop = ref true in
  while !continue_loop do
    (* find the next marked literal on the trail *)
    while not s.seen.(lvar s.trail.(!index)) do
      decr index
    done;
    p := s.trail.(!index);
    decr index;
    s.seen.(lvar !p) <- false;
    decr path_count;
    if !path_count = 0 then continue_loop := false
    else iter_reason_lits s s.reason.(lvar !p) ~skip:!p absorb
  done;
  (* Conflict-clause minimization (local self-subsumption): a literal q of
     the learnt clause is redundant when every literal of its reason is
     already in the clause (or at level 0) — removing it yields a clause
     subsumed-resolvable from the original. One cheap pass, no recursion. *)
  let in_clause = Hashtbl.create 16 in
  List.iter (fun q -> Hashtbl.replace in_clause (lvar q) ()) !learnt;
  let redundant q =
    match s.reason.(lvar q) with
    | No_reason -> false
    | r ->
      let ok = ref true in
      iter_reason_lits s r ~skip:(lneg q) (fun other ->
          if s.level.(lvar other) > 0 && not (Hashtbl.mem in_clause (lvar other))
          then ok := false);
      !ok
  in
  let rest = List.filter (fun q -> not (redundant q)) !learnt in
  List.iter (fun v -> s.seen.(v) <- false) !to_clear;
  let asserting = lneg !p in
  (* backtrack level = max level among the non-asserting literals *)
  let bt =
    List.fold_left (fun acc q -> max acc (s.level.(lvar q))) 0 rest
  in
  (asserting :: rest, bt)

(* Final-conflict analysis under assumptions (MiniSat's analyze_final).
   Called when the next assumption [p] is already false on the trail: walk
   the implication graph backwards from ¬p, collecting the assumption
   decisions that support the refutation. Returns the failed core as the
   assumed literals themselves ([p] included). The clause negating the
   core is RUP against the live clause database — asserting the core
   literals replays exactly the propagations recorded on the trail (every
   reason is a database clause; assumptions are decisions and never appear
   as reasons) and falsifies [p] — so the caller can log it as an ordinary
   [Learn] step and the checker re-derives it with no knowledge of
   assumptions. *)
let analyze_final s p =
  let core = ref [ p ] in
  if decision_level s > 0 then begin
    let to_clear = ref [] in
    let mark v =
      if (not s.seen.(v)) && s.level.(v) > 0 then begin
        s.seen.(v) <- true;
        to_clear := v :: !to_clear
      end
    in
    mark (lvar p);
    let bottom = Vec.get s.trail_lim 0 in
    for i = s.trail_size - 1 downto bottom do
      let q = s.trail.(i) in
      let v = lvar q in
      if s.seen.(v) then (
        match s.reason.(v) with
        | No_reason -> if q <> p then core := q :: !core
        | r -> iter_reason_lits s r ~skip:q (fun other -> mark (lvar other)))
    done;
    List.iter (fun v -> s.seen.(v) <- false) !to_clear
  end;
  !core

(* ------------------------------------------------------------------ *)
(* Learned-clause exchange (DESIGN.md §17). Export side: short learned
   clauses are copied into a bounded ring (newest-wins overwrite) as they
   are recorded; the ring is drained through the share hook at root-level
   safe points only, so the search never blocks on a peer. Import side:
   candidate clauses from peers are structurally validated and then put
   through the receiver's OWN root-level RUP test — assume the negation of
   every undefined literal at a scratch decision level and propagate; only
   a propagation conflict admits the clause, which is then proof-logged as
   an ordinary [Learn] step (so the final trace still replays against the
   receiver's formula with no reference to the sender). Anything else is
   quarantined. A forged clause therefore either IS a consequence the
   receiver can re-derive (harmless lemma) or it never enters the
   database: peers can change each other's speed, never their answers. *)

let share_max_len = 8

let set_share s sh = s.share <- Some sh

let share_push s lits =
  let n = List.length lits in
  if n > 0 && n <= share_max_len then begin
    let cap = Array.length s.share_ring in
    s.share_ring.(s.share_head) <- Array.of_list lits;
    s.share_head <- (s.share_head + 1) mod cap;
    if s.share_len < cap then s.share_len <- s.share_len + 1
  end

let share_drain s =
  let cap = Array.length s.share_ring in
  let out = ref [] in
  for i = s.share_len downto 1 do
    let slot = (s.share_head - i + (2 * cap)) mod cap in
    out := s.share_ring.(slot) :: !out;
    s.share_ring.(slot) <- [||]
  done;
  s.share_len <- 0;
  (* oldest-first export order *)
  List.rev !out

type import =
  | Imported
  | Quarantined of string
  | Import_rejected of string

(* [lits] are raw literal indexes; caller guarantees decision level 0. *)
let import_clause_raw s lits : import =
  if not s.ok then Import_rejected "engine already unsatisfiable"
  else if decision_level s <> 0 then Import_rejected "engine mid-search"
  else begin
    let n = List.length lits in
    if n = 0 || n > share_max_len then
      Import_rejected (Printf.sprintf "bad clause length %d" n)
    else if
      List.exists (fun l -> l < 0 || lvar l >= s.nvars) lits
    then Import_rejected "literal out of range"
    else if List.exists (fun l -> s.eliminated.(lvar l)) lits then
      (* a clause over BVE-eliminated variables would break witness-based
         model reconstruction: those variables are re-derived from the
         witness stack, which never accounted for constraints added later *)
      Import_rejected "touches an eliminated variable"
    else begin
      let sorted = List.sort_uniq compare lits in
      if List.exists (fun l -> List.mem (lneg l) sorted) sorted then
        Import_rejected "tautology"
      else begin
        (* the RUP test wants a propagated root fixpoint *)
        match propagate s with
        | C_clause _ | C_pb _ ->
          mark_unsat s;
          Import_rejected "root propagation conflict"
        | C_none ->
          let quarantine why =
            s.stats.quarantined <- s.stats.quarantined + 1;
            Quarantined why
          in
          if List.exists (fun l -> lit_value s l = 1) sorted then
            quarantine "already satisfied at root"
          else begin
            let undef =
              List.filter (fun l -> lit_value s l = -1) sorted
            in
            if undef = [] then
              (* every literal false at a conflict-free root: the clause
                 contradicts the root assignment, and assuming its negation
                 assumes nothing new — by construction not RUP here *)
              quarantine "falsified at root and not RUP"
            else begin
              Vec.push s.trail_lim s.trail_size;
              List.iter (fun l -> enqueue s (lneg l) No_reason) undef;
              let confl = propagate s in
              cancel_until s 0;
              match confl with
              | C_none -> quarantine "not RUP in the receiving engine"
              | C_clause _ | C_pb _ ->
                log_learn_raw s sorted;
                s.stats.shared_in <- s.stats.shared_in + 1;
                (match sorted with
                | [ l ] -> (
                  match lit_value s l with
                  | -1 -> enqueue s l No_reason
                  | 0 -> mark_unsat s
                  | _ -> ())
                | _ ->
                  ignore
                    (attach_verbatim s (Array.of_list sorted) ~learnt:true
                       ~activity:0.0 ~pinned:false));
                Imported
            end
          end
      end
    end
  end

let import_clause s lits =
  import_clause_raw s (List.map Lit.to_index lits)

(* Drain the export ring to the peer hook and pull pending imports through
   the RUP gate. Root-level safe points only (solve entry, restart
   boundaries). *)
let do_exchange s =
  match s.share with
  | None -> ()
  | Some sh ->
    (match share_drain s with
    | [] -> ()
    | out ->
      s.stats.shared_out <- s.stats.shared_out + List.length out;
      sh.Types.sh_export
        (List.map
           (fun arr -> Array.to_list (Array.map Lit.of_index arr))
           out));
    List.iter
      (fun c -> ignore (import_clause s c : import))
      (sh.Types.sh_import ())

(* Install a learnt clause after backtracking: watch the asserting literal
   and one literal from the backtrack level. *)
let record_learnt s lits =
  log_learn_raw s lits;
  if s.share != None then share_push s lits;
  match lits with
  | [] -> assert false
  | [ l ] ->
    cancel_until s 0;
    enqueue s l No_reason
  | l :: _ ->
    let arr = Array.of_list lits in
    (* move a literal of maximal level to slot 1 *)
    let best = ref 1 in
    for k = 2 to Array.length arr - 1 do
      if s.level.(lvar arr.(k)) > s.level.(lvar arr.(!best)) then best := k
    done;
    let tmp = arr.(1) in
    arr.(1) <- arr.(!best);
    arr.(!best) <- tmp;
    let c =
      { lits = arr; learnt = true; activity = 0.0; deleted = false;
        pinned = false }
    in
    Vec.push s.learnts c;
    s.stats.learned <- s.stats.learned + 1;
    cla_bump s c;
    attach s c;
    enqueue s l (R_clause c)

let locked s c =
  Array.length c.lits > 0
  &&
  match s.reason.(lvar c.lits.(0)) with
  | R_clause c' -> c' == c && lit_value s c.lits.(0) = 1
  | _ -> false

(* Delete the least active half of the learnt clauses. *)
let reduce_db s =
  Vec.sort_in_place (fun a b -> compare b.activity a.activity) s.learnts;
  let keep = Vec.size s.learnts / 2 in
  let kept = ref 0 in
  let removed = ref 0 in
  Vec.filter_in_place
    (fun c ->
      if !kept < keep || c.pinned || locked s c || Array.length c.lits <= 2
      then begin
        incr kept;
        true
      end
      else begin
        (match s.proof with
        | None -> ()
        | Some p ->
          Proof.add p
            (Proof.Delete (Array.to_list (Array.map Lit.of_index c.lits))));
        c.deleted <- true;
        incr removed;
        false
      end)
    s.learnts;
  s.stats.removed <- s.stats.removed + !removed

(* Luby restart sequence 1 1 2 1 1 2 4 1 1 2 ... scaled by y. *)
let luby y i =
  let size = ref 1 and seq = ref 0 and x = ref i in
  while !size < i + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  y *. (2.0 ** float_of_int !seq)

(* Called at batched points only (every N conflicts / decisions), so the
   robustness checks — clock reads, the cancellation hook, Gc polling — stay
   off the propagation hot path. *)
(* The integer caps are plain comparisons, cheap enough to poll exactly at
   every conflict — a [max_conflicts = 1] budget must stop after one
   conflict, not at the next batch boundary. *)
let check_caps s (budget : Types.budget) =
  (* the checkpoint hook shares the per-conflict poll: a snapshot boundary
     is always a conflict boundary, so a resumed run re-enters at a state
     the uninterrupted run actually passed through *)
  (match budget.checkpoint with Some hook -> hook () | None -> ());
  (match budget.max_conflicts with
  | Some m when s.stats.conflicts >= m -> raise (Stop Types.Conflict_limit)
  | _ -> ());
  match budget.max_propagations with
  | Some m when s.stats.propagations >= m ->
    raise (Stop Types.Propagation_limit)
  | _ -> ()

let check_budget s (budget : Types.budget) =
  (match budget.cancel with
  | Some hook when hook () -> raise (Stop Types.Cancelled)
  | _ -> ());
  check_caps s budget;
  (match budget.deadline with
  (* >= — a deadline equal to "now" (timeout 0.0 smoke runs) must fire *)
  | Some d when Mclock.now () >= d -> raise (Stop Types.Deadline)
  | _ -> ());
  match budget.max_memory_words with
  | Some m when (Gc.quick_stat ()).Gc.heap_words > m ->
    raise (Stop Types.Memory_limit)
  | _ -> ()

let pick_branch s =
  let rec go () =
    if Var_heap.is_empty s.heap then -1
    else begin
      let v = Var_heap.pop_max s.heap in
      if s.assigns.(v) < 0 && not s.eliminated.(v) then v else go ()
    end
  in
  go ()

let model_of s =
  let m = Array.map (fun a -> a = 1) s.assigns in
  (match s.elim with
  | [] -> ()
  | elim ->
    (* eliminated variables are unassigned: re-extend them through the
       witness stack so the model satisfies the ORIGINAL formula *)
    Simplify.extend_model elim m);
  m

(* ------------------------------------------------------------------ *)
(* Inprocessing: run the proof-logged simplifier ladder over the clause
   database at a root-level fixpoint, then rebuild clauses, watches and the
   elimination bookkeeping from its result. *)

let simplify_interval = 3000

(* Learnt clauses longer than this are withheld from the simplifier — they
   are poor subsumers, expensive to index, and sound to keep untouched
   (every learnt clause is implied by the formula, so a model of the
   simplified database extended through the witness stack satisfies them
   too). They stay in the engine's DB verbatim. *)
let simplify_max_learnt_len = 20

let simplify_now s =
  let frozen = Array.copy s.frozen in
  (* PB constraints are not simplified, so their variables must survive;
     previously eliminated variables must not be re-processed *)
  Vec.iter
    (fun p -> Array.iter (fun l -> frozen.(lvar l) <- true) p.plits)
    s.pbs;
  for v = 0 to s.nvars - 1 do
    if s.eliminated.(v) then frozen.(v) <- true
  done;
  let cls = ref [] in
  Vec.iter
    (fun c ->
      if not c.deleted then
        cls :=
          { Simplify.sc_lits = c.lits; sc_learnt = false; sc_act = 0.0;
            sc_pinned = c.pinned }
          :: !cls)
    s.clauses;
  let withheld = ref [] in
  Vec.iter
    (fun c ->
      if not c.deleted then begin
        if Array.length c.lits <= simplify_max_learnt_len then
          cls :=
            { Simplify.sc_lits = c.lits; sc_learnt = true;
              sc_act = c.activity; sc_pinned = c.pinned }
            :: !cls
        else withheld := c :: !withheld
      end)
    s.learnts;
  let res =
    Simplify.run ?proof:s.proof ~nvars:s.nvars ~frozen ~assigned:s.assigns
      (List.rev !cls)
  in
  let rs = res.Simplify.r_stats in
  s.stats.subsumed <- s.stats.subsumed + rs.Simplify.subsumed;
  s.stats.eliminated <- s.stats.eliminated + rs.Simplify.eliminated;
  s.stats.probed <- s.stats.probed + rs.Simplify.probed;
  s.stats.substituted <- s.stats.substituted + rs.Simplify.substituted;
  s.dead_orig <- res.Simplify.r_dead @ s.dead_orig;
  if res.Simplify.r_unsat then mark_unsat s
  else begin
    Array.iter (fun w -> Vec.shrink w 0) s.watches;
    Vec.shrink s.clauses 0;
    Vec.shrink s.learnts 0;
    List.iter
      (fun { Simplify.sc_lits; sc_learnt; sc_act; sc_pinned } ->
        ignore
          (attach_verbatim s sc_lits ~learnt:sc_learnt ~activity:sc_act
             ~pinned:sc_pinned))
      res.Simplify.r_clauses;
    (* withheld long learnts come back verbatim (they may now mention
       eliminated variables — harmless, any model extension satisfies
       implied clauses) *)
    List.iter
      (fun c ->
        ignore
          (attach_verbatim s c.lits ~learnt:true ~activity:c.activity
             ~pinned:c.pinned))
      !withheld;
    List.iter
      (fun l ->
        match lit_value s l with
        | -1 -> enqueue s l No_reason
        | 0 -> mark_unsat s
        | _ -> ())
      res.Simplify.r_units;
    List.iter
      (fun e -> s.eliminated.(lvar e.Simplify.e_pivot) <- true)
      res.Simplify.r_elim;
    s.elim <- res.Simplify.r_elim @ s.elim;
    (* re-run propagation over the whole trail: the rebuilt watches settle
       and any unit consequences of the new clauses surface *)
    s.qhead <- 0
  end

let maybe_simplify s =
  if s.inprocess && s.ok && decision_level s = 0
     && s.stats.conflicts >= s.next_simplify
  then begin
    (* the simplifier wants a propagated fixpoint as its root state *)
    (match propagate s with
    | C_none -> simplify_now s
    | C_clause _ | C_pb _ -> mark_unsat s);
    (* geometric re-simplification gap: each run costs time proportional
       to the clause DB, so a fixed cadence would let the ladder dominate
       long searches — doubling the gap keeps total inprocessing time a
       bounded fraction of the search *)
    s.next_simplify <-
      s.stats.conflicts + max simplify_interval s.stats.conflicts
  end

(* Restart threshold after [n] restarts: the Luby or geometric schedule.
   Derived from the persistent restart counter in [stats] (not a
   per-[solve] ref), so a warm-restarted or strengthening-loop solve
   continues the schedule where the previous search left it. *)
let restart_threshold s n =
  if s.restart_luby then
    int_of_float (luby (float_of_int s.restart_first) n)
  else
    int_of_float (float_of_int s.restart_first *. (1.5 ** float_of_int n))

(* CDCL main loop. *)
let search_cdcl s budget =
  let restart_count = ref s.stats.conflicts in
  let next_restart =
    ref (if s.restart_first > 0 then restart_threshold s s.stats.restarts
         else 0)
  in
  let result = ref None in
  (try
     (* an already-exhausted or pre-cancelled budget must surface as Unknown
        before any search effort is spent *)
     check_budget s budget;
     while !result = None do
       match propagate s with
       | C_clause _ | C_pb _ when decision_level s = 0 ->
         mark_unsat s;
         result := Some Types.Unsat
       | (C_clause _ | C_pb _) as confl ->
         s.stats.conflicts <- s.stats.conflicts + 1;
         let learnt, bt = analyze s confl in
         cancel_until s bt;
         record_learnt s learnt;
         var_decay_all s;
         cla_decay_all s;
         check_caps s budget;
         if s.stats.conflicts land 255 = 0 then check_budget s budget;
         if s.restart_first > 0
            && s.stats.conflicts - !restart_count >= !next_restart
         then begin
           restart_count := s.stats.conflicts;
           s.stats.restarts <- s.stats.restarts + 1;
           next_restart := restart_threshold s s.stats.restarts;
           cancel_until s 0;
           (* restart boundary: the inprocessing ladder runs here, gated on
              conflict progress since its last run, and the clause-exchange
              hooks drain/poll — the one place a peer's lemmas enter, each
              behind the RUP import gate *)
           maybe_simplify s;
           do_exchange s;
           if not s.ok then result := Some Types.Unsat
         end
       | C_none ->
         if float_of_int (Vec.size s.learnts) > s.max_learnts then begin
           reduce_db s;
           s.max_learnts <- s.max_learnts *. s.db_growth
         end;
         (* assumptions occupy the first decision levels, re-placed after
            every backjump or restart that unwound them. A satisfied
            assumption still gets a (empty) level of its own, so free
            decisions never sit below an unplaced assumption — the
            invariant analyze_final needs: every decision supporting a
            failed assumption is itself an assumption. *)
         if decision_level s < Array.length s.assumps then begin
           let p = s.assumps.(decision_level s) in
           match lit_value s p with
           | 1 -> Vec.push s.trail_lim s.trail_size
           | 0 ->
             s.last_core <- Some (analyze_final s p);
             result := Some Types.Unsat
           | _ ->
             s.stats.decisions <- s.stats.decisions + 1;
             Vec.push s.trail_lim s.trail_size;
             enqueue s p No_reason
         end
         else begin
           let v = pick_branch s in
           if v < 0 then begin
             result := Some (Types.Sat (model_of s))
           end
           else begin
             s.stats.decisions <- s.stats.decisions + 1;
             if s.stats.decisions land 1023 = 0 then check_budget s budget;
             Vec.push s.trail_lim s.trail_size;
             let l = if s.polarity.(v) then 2 * v else (2 * v) + 1 in
             enqueue s l No_reason
           end
         end
     done;
     Option.get !result
   with Stop r -> Types.Unknown r)

(* Learning-free chronological branch & bound: the generic-ILP baseline.
   Decision literals are flipped in place on conflict; a decision whose both
   phases failed propagates the failure one level up. *)

(* Proof logging for B&B: the negation of the current decision stack. Logged
   at every conflict and at every fully-explored (flipped) level pop, these
   clauses are RUP in sequence — when level [j] is popped, both phase
   clauses ¬(d1..d_{j-1}, d_j) and ¬(d1..d_{j-1}, ¬d_j) have been logged, so
   assuming d1..d_{j-1} unit-propagates both phases of d_j into conflict.
   The cascade terminates in an empty decision stack, where the same
   argument makes the empty clause RUP (the [Contradiction] step). *)
let log_negated_decisions s =
  match s.proof with
  | None -> ()
  | Some _ ->
    let dl = decision_level s in
    if dl > 0 then
      log_learn_raw s
        (List.init dl (fun i -> lneg s.trail.(Vec.get s.trail_lim i)))

let search_bnb s budget =
  (* flipped.(d) = the decision at level d+1 has already been tried both
     ways *)
  let flipped = Vec.create ~dummy:false () in
  let decide v =
    s.stats.decisions <- s.stats.decisions + 1;
    Vec.push s.trail_lim s.trail_size;
    Vec.push flipped false;
    let l = if s.polarity.(v) then 2 * v else (2 * v) + 1 in
    enqueue s l No_reason
  in
  let result = ref None in
  (try
     check_budget s budget;
     while !result = None do
       match propagate s with
       | C_clause _ | C_pb _ ->
         s.stats.conflicts <- s.stats.conflicts + 1;
         log_negated_decisions s;
         check_caps s budget;
         if s.stats.conflicts land 255 = 0 then check_budget s budget;
         (* pop decisions whose both phases were explored *)
         let rec unwind () =
           if decision_level s = 0 then begin
             mark_unsat s;
             result := Some Types.Unsat
           end
           else if Vec.last flipped then begin
             ignore (Vec.pop flipped);
             cancel_until s (decision_level s - 1);
             log_negated_decisions s;
             unwind ()
           end
           else begin
             let lvl = decision_level s in
             let d = s.trail.(Vec.get s.trail_lim (lvl - 1)) in
             cancel_until s (lvl - 1);
             (* re-enter the level with the flipped phase *)
             Vec.push s.trail_lim s.trail_size;
             Vec.set flipped (lvl - 1) true;
             enqueue s (lneg d) No_reason
           end
         in
         unwind ()
       | C_none ->
         let v = pick_branch s in
         if v < 0 then result := Some (Types.Sat (model_of s))
         else begin
           if s.stats.decisions land 1023 = 0 then check_budget s budget;
           decide v
         end
     done;
     Option.get !result
   with Stop r -> Types.Unknown r)

let solve s budget =
  (* resolve a relative time limit against the clock now, at solve start *)
  let budget = Types.started budget in
  if not s.ok then Types.Unsat
  else begin
    cancel_until s 0;
    (* simplify before the initial search and before every re-entry of the
       objective-strengthening loop (conflict-gap gated); then exchange, so
       a re-entering strengthening iteration starts from the freshest peer
       lemmas *)
    maybe_simplify s;
    do_exchange s;
    if not s.ok then Types.Unsat
    else begin
    s.max_learnts <-
      Float.max s.max_learnts (float_of_int (Vec.size s.clauses) /. 3.0);
    (* seed static activities for the B&B engine: occurrence counts *)
    if (not s.learning) && s.stats.decisions = 0 then begin
      let occ = Array.make s.nvars 0 in
      Vec.iter
        (fun c -> Array.iter (fun l -> occ.(lvar l) <- occ.(lvar l) + 1) c.lits)
        s.clauses;
      Vec.iter
        (fun p ->
          Array.iter (fun l -> occ.(lvar l) <- occ.(lvar l) + 1) p.plits)
        s.pbs;
      for v = 0 to s.nvars - 1 do
        Var_heap.bump s.heap v (float_of_int occ.(v))
      done
    end;
    let out =
      if s.learning then search_cdcl s budget else search_bnb s budget
    in
    (match out with
    | Types.Sat _ | Types.Unknown _ -> cancel_until s 0
    | Types.Unsat -> ());
    out
    end
  end

(* Solve under assumptions: the given literals are placed as the first
   decisions of the search, so they hold in any model found, and a
   refutation yields a failed core (a subset of the assumptions) instead
   of killing the solver. Learned clauses are consequences of the clause
   database alone — assumptions are decisions, never reasons — so the
   learned DB, activities and phases all remain valid for the next call,
   whatever its activation set. *)
let solve_assuming s budget lits =
  if not s.learning then
    invalid_arg "Engine.solve_assuming: CDCL engines only";
  let packed = List.map Lit.to_index lits in
  let vars = List.map lvar packed in
  (* assumption variables must stay decidable: freeze them against future
     eliminations and un-eliminate any the simplifier already removed *)
  freeze s vars;
  cancel_until s 0;
  reintroduce s vars;
  s.assumps <- Array.of_list packed;
  s.last_core <- None;
  let out = solve s budget in
  s.assumps <- [||];
  match s.last_core with
  | Some core ->
    s.last_core <- None;
    cancel_until s 0;
    log_learn_raw s (List.map lneg core);
    Types.A_unsat_core (List.map Lit.of_index core)
  | None -> (
    match out with
    | Types.Sat m -> Types.A_sat m
    | Types.Unsat -> Types.A_unsat
    | Types.Unknown r -> Types.A_unknown r)

let value_in model l = if Lit.sign l then model.(Lit.var l) else not model.(Lit.var l)

(* ------------------------------------------------------------------ *)
(* Warm-restart state capture.

   [capture] may run at any conflict boundary, including deep in the search:
   everything it reads (root trail prefix, the learned-clause vector,
   activity/phase arrays) is level-independent, so no backtracking is needed
   and the running search is not perturbed.  [restore] is the mirror: it
   re-seeds a freshly created engine (formula already loaded) through the
   ordinary root-level add path, WITHOUT proof logging — the proof prefix
   stored alongside the snapshot already carries one Learn step per clause
   re-added here, and the stitched trace must list each exactly once. *)

let capture s =
  let root =
    if decision_level s = 0 then s.trail_size else Vec.get s.trail_lim 0
  in
  let learnts = ref [] in
  Vec.iter
    (fun c ->
      if not c.deleted then
        learnts := (Array.copy c.lits, c.activity, c.pinned) :: !learnts)
    s.learnts;
  {
    Types.sv_engine = s.eng;
    sv_nvars = s.nvars;
    sv_root_units = Array.sub s.trail 0 root;
    sv_learnts = Array.of_list (List.rev !learnts);
    sv_activities = Array.init s.nvars (fun v -> Var_heap.activity s.heap v);
    sv_polarity = Array.copy s.polarity;
    sv_var_inc = s.var_inc;
    sv_cla_inc = s.cla_inc;
    sv_max_learnts = s.max_learnts;
    sv_conflicts = s.stats.conflicts;
    sv_decisions = s.stats.decisions;
    sv_propagations = s.stats.propagations;
    sv_learned = s.stats.learned;
    sv_restarts = s.stats.restarts;
    sv_removed = s.stats.removed;
    sv_subsumed = s.stats.subsumed;
    sv_eliminated = s.stats.eliminated;
    sv_probed = s.stats.probed;
    sv_substituted = s.stats.substituted;
    sv_elim = Array.of_list s.elim;
    sv_dead = Array.of_list s.dead_orig;
    sv_next_simplify = s.next_simplify;
  }

let restore s (sv : Types.saved_engine) =
  if sv.Types.sv_engine <> s.eng then
    invalid_arg "Engine.restore: snapshot from a different engine kind";
  if sv.Types.sv_nvars <> s.nvars then
    invalid_arg "Engine.restore: snapshot over a different variable count";
  if decision_level s <> 0 then
    invalid_arg "Engine.restore: engine is mid-search";
  (* root facts first: learned units and every propagated root literal.
     Each is unit-derivable from the formula + the snapshot's live clause
     DB + the proof prefix, so re-asserting them keeps the stitched trace
     replayable (see DESIGN.md §11). *)
  Array.iter (fun l -> add_clause_raw s [ l ]) sv.Types.sv_root_units;
  (* clauses the simplifier deleted pre-snapshot: the proof prefix already
     carries their [Delete] steps, so the checker's copies are dead — mark
     the freshly re-added originals dead too, or a resumed simplification
     would re-delete them and the stitched trace would be rejected *)
  if Array.length sv.Types.sv_dead > 0 then begin
    let key lits = List.sort_uniq compare (Array.to_list lits) in
    let index = Hashtbl.create 64 in
    Vec.iter
      (fun c ->
        if not c.deleted then begin
          let k = key c.lits in
          let prev = Option.value ~default:[] (Hashtbl.find_opt index k) in
          Hashtbl.replace index k (c :: prev)
        end)
      s.clauses;
    Array.iter
      (fun lits ->
        let k = key lits in
        match Hashtbl.find_opt index k with
        | Some (c :: rest) ->
          c.deleted <- true;
          Hashtbl.replace index k rest
        | _ ->
          (* absent clauses (e.g. a superseded objective bound that the
             resume path does not re-add) have nothing to mark *)
          ())
      sv.Types.sv_dead;
    s.dead_orig <- Array.to_list sv.Types.sv_dead
  end;
  Array.iter
    (fun (lits, act, pinned) ->
      if s.ok then begin
        let arr = Array.copy lits in
        let sat = ref false and nonfalse = ref 0 and u = ref (-1) in
        Array.iter
          (fun l ->
            match lit_value s l with
            | 1 ->
              sat := true;
              incr nonfalse
            | -1 ->
              incr nonfalse;
              u := l
            | _ -> ())
          arr;
        if !nonfalse = 0 then mark_unsat s
        else if Array.length arr = 1 then begin
          if not !sat then enqueue s arr.(0) No_reason
        end
        else begin
          ignore (attach_verbatim s arr ~learnt:true ~activity:act ~pinned);
          if (not !sat) && !nonfalse = 1 then enqueue s !u No_reason
        end
      end)
    sv.Types.sv_learnts;
  s.elim <- Array.to_list sv.Types.sv_elim;
  List.iter
    (fun e -> s.eliminated.(lvar e.Simplify.e_pivot) <- true)
    s.elim;
  s.next_simplify <- sv.Types.sv_next_simplify;
  Var_heap.set_activities s.heap sv.Types.sv_activities;
  Array.blit sv.Types.sv_polarity 0 s.polarity 0 s.nvars;
  s.var_inc <- sv.Types.sv_var_inc;
  s.cla_inc <- sv.Types.sv_cla_inc;
  s.max_learnts <- Float.max s.max_learnts sv.Types.sv_max_learnts;
  s.stats.conflicts <- sv.Types.sv_conflicts;
  s.stats.decisions <- sv.Types.sv_decisions;
  s.stats.propagations <- sv.Types.sv_propagations;
  s.stats.learned <- sv.Types.sv_learned;
  s.stats.restarts <- sv.Types.sv_restarts;
  s.stats.removed <- sv.Types.sv_removed;
  s.stats.subsumed <- sv.Types.sv_subsumed;
  s.stats.eliminated <- sv.Types.sv_eliminated;
  s.stats.probed <- sv.Types.sv_probed;
  s.stats.substituted <- sv.Types.sv_substituted
