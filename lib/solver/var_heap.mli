(** Max-heap of variables ordered by activity — the VSIDS decision queue.

    Supports the three operations CDCL needs: pop the most active variable,
    re-insert a variable on backtrack, and sift a variable up when its
    activity increases. *)

type t

val create : int -> t
(** [create n] covers variables [0 .. n-1], all initially in the heap with
    activity 0. *)

val mem : t -> int -> bool
val is_empty : t -> bool
val activity : t -> int -> float

val pop_max : t -> int
(** Remove and return the variable with maximal activity.
    Raises [Invalid_argument] when empty. *)

val insert : t -> int -> unit
(** Re-insert a variable (no-op if already present). *)

val bump : t -> int -> float -> unit
(** [bump h v inc] adds [inc] to [v]'s activity and restores heap order. *)

val rescale : t -> float -> unit
(** Multiply all activities by a factor (used to avoid float overflow). *)

val set_activities : t -> float array -> unit
(** Overwrite every variable's activity and re-heapify — warm-restart
    seeding. The array length must match the heap's variable count. *)
