(** Self-healing wrapper for the coloring daemon.

    [run cfg ~start] forks a child that executes [start ()] (normally
    {!Server.run}) and restarts it whenever it dies abnormally — a crash,
    a SIGKILL, a nonzero exit. Because the daemon is crash-only, a restart
    is always safe: the journal replay recovers every in-flight job.

    The wrapper is deliberately boring and bounded:
    - restarts are paced with capped exponential backoff, reset once a
      child survives a full [window];
    - a circuit breaker counts crashes inside a sliding [window]; more
      than [max_restarts] of them means the daemon is crash-looping (bad
      config, poisoned state) and restarting is harm, not healing — the
      wrapper gives up with {!breaker_exit_code} so an outer orchestrator
      sees a loud, typed failure instead of an infinite flap;
    - SIGTERM/SIGINT are forwarded to the child and the wrapper exits with
      the child's own exit status (0 for a graceful drain) — supervision
      never masks an operator-requested shutdown;
    - a clean child exit (code 0) ends supervision: the daemon drained on
      purpose (max-jobs smoke runs, operator signal delivered directly);
    - [pid_file], when set, always holds the pid of the {e current} child,
      so harnesses and operators can target the daemon itself (e.g. a
      [kill -9] chaos probe) without guessing. *)

type config = {
  backoff : float;       (** base restart delay, seconds *)
  backoff_cap : float;   (** ceiling for the doubled delay *)
  max_restarts : int;    (** crashes tolerated within [window] *)
  window : float;        (** sliding breaker window, seconds *)
  pid_file : string option;
  verbose : bool;
}

val config :
  ?backoff:float ->
  ?backoff_cap:float ->
  ?max_restarts:int ->
  ?window:float ->
  ?pid_file:string ->
  ?verbose:bool ->
  unit ->
  config
(** Defaults: [backoff] 0.2 s, [backoff_cap] 5 s, [max_restarts] 5,
    [window] 30 s, no pid file, quiet. *)

val breaker_exit_code : int
(** 10 — the wrapper's own exit code when the circuit breaker trips. *)

val run : config -> start:(unit -> int) -> int
(** Supervise [start] until it exits cleanly, an operator signal stops it,
    or the breaker trips; returns the exit code to propagate. *)
