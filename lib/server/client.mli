(** Client side of the coloring service.

    [submit] performs the whole exchange — connect, submit, wait for the
    result — with a retry loop that treats failure classes distinctly:

    - {!Unreachable}, {!Disconnected}, {!Protocol}: transient. A daemon
      mid-restart after a crash looks exactly like this; retry with capped
      exponential backoff. Because job ids are idempotency keys, a retry
      that lands after the daemon already accepted (or even finished) the
      job re-attaches / re-delivers instead of re-running the solve.
    - {!Overloaded}: transient but informed — the daemon shed the job
      before accepting it, so a resubmit is safe; retry with backoff.
    - {!Unavailable}: transient but informed — the daemon's durability is
      degraded (disk full, I/O errors) and it refused to admit the job
      because it could not journal the acceptance; a resubmit is safe and
      succeeds once the daemon re-arms. Retry with backoff.
    - {!Rejected}: permanent — the request itself is malformed; the loop
      stops immediately.

    Backoff delay for attempt [i] is
    [min backoff_cap (backoff * 2^i) * (0.5 + u)] with [u] uniform in
    [0, 1) from a PRNG seeded by [jitter_seed] and the job id, so
    simultaneous clients decorrelate while tests stay deterministic. *)

type failure =
  | Unreachable of string   (** connect failed: daemon down or socket gone *)
  | Disconnected of string  (** the connection died mid-exchange *)
  | Protocol of string      (** garbage, truncated, or misdirected frames *)
  | Overloaded of { queued : int; capacity : int }
  | Unavailable of string
      (** durability degraded: the daemon shed the job at admission *)
  | Rejected of { job_id : string; reason : string }
  | Session_expired of string
      (** permanent: the session's lease lapsed and the daemon reaped its
          state; retrying cannot help — open a fresh session and replay
          your own edit history *)
  | Session_evicted of string
      (** permanent: the session was LRU-shed to bound daemon memory; same
          recovery as {!Session_expired} *)

val failure_to_string : failure -> string

val transient : failure -> bool
(** Whether the retry loop keeps going after this failure. *)

type give_up = {
  attempts : int;           (** how many attempts were made *)
  last : failure;           (** the failure of the final attempt *)
}

type sleeper = float -> unit

val submit :
  ?retries:int ->
  ?backoff:float ->
  ?backoff_cap:float ->
  ?jitter_seed:int ->
  ?reply_slack:float ->
  ?chaos:Colib_check.Chaos.net_plan ->
  ?sleep:sleeper ->
  ?on_attempt:(int -> unit) ->
  socket:string ->
  Colib_portfolio.Frame.job ->
  (Colib_portfolio.Frame.job_result, give_up) result
(** Submit a job and wait for its result. Defaults: [retries] 4 (so up to
    5 attempts), [backoff] 0.1 s base, [backoff_cap] 2.0 s, [jitter_seed]
    0, [reply_slack] 30 s past the job deadline for the result read,
    [sleep] = [Unix.sleepf] (tests inject a recording no-op).

    [chaos] maps attempt indices to {!Colib_check.Chaos.net_fault}s: a
    scripted attempt performs the fault against the daemon instead of the
    real exchange (and counts as a transient failure), so fault-injection
    tests drive the daemon's network error paths through this exact code.

    [on_attempt] fires before each attempt with its 0-based index. *)

val ping :
  ?timeout:float -> socket:string -> unit -> (unit, failure) result
(** Liveness probe: one [Ping]/[Pong] exchange, no retries. *)

val health :
  ?timeout:float ->
  socket:string ->
  unit ->
  (Colib_portfolio.Frame.health, failure) result
(** Operational snapshot: one [Health]/[Health_report] exchange, no
    retries — queue depth, durability state, restart count, last I/O
    error. *)

(** {1 Incremental sessions}

    Each call is one session frame under the same retry discipline as
    {!submit} (capped exponential backoff with deterministic jitter,
    keyed by the session id). Frames are idempotent server-side by
    sequence number, so an at-least-once retry that lands after a daemon
    crash or a dropped reply is answered from the journal-backed session
    state with [replayed = true] instead of being re-applied.
    {!Session_expired} and {!Session_evicted} are permanent: the retry
    loop stops immediately and the caller must open a fresh session. *)

type sess_ack = {
  ack_seq : int;        (** the daemon's highest consumed sequence number *)
  ack_replayed : bool;  (** this frame was a duplicate of one already applied *)
}

val sess_open :
  ?retries:int -> ?backoff:float -> ?backoff_cap:float -> ?jitter_seed:int ->
  ?sleep:sleeper -> ?timeout:float -> ?lease:float ->
  socket:string -> sid:string -> vertices:int -> colors:int -> edges:int ->
  unit -> (sess_ack, give_up) result
(** Open (or idempotently re-open, refreshing the lease of) a session.
    [lease] 0 (the default) means the server's default lease. *)

val sess_edit :
  ?retries:int -> ?backoff:float -> ?backoff_cap:float -> ?jitter_seed:int ->
  ?sleep:sleeper -> ?timeout:float ->
  socket:string -> sid:string -> seq:int ->
  Colib_session.Session.edit -> (sess_ack, give_up) result
(** Apply one graph edit. [seq] must be strictly greater than every
    sequence number this session has consumed; duplicates ack with
    [ack_replayed = true]. *)

val sess_query :
  ?retries:int -> ?backoff:float -> ?backoff_cap:float -> ?jitter_seed:int ->
  ?sleep:sleeper -> ?reply_slack:float -> ?budget:float ->
  socket:string -> sid:string -> seq:int ->
  unit -> (Colib_portfolio.Frame.session_answer, give_up) result
(** Ask for the chromatic number of the session's current graph. [budget]
    0 (the default) means the server default (30 s); the reply read waits
    budget + [reply_slack] seconds. *)

val sess_close :
  ?retries:int -> ?backoff:float -> ?backoff_cap:float -> ?jitter_seed:int ->
  ?sleep:sleeper -> ?timeout:float ->
  socket:string -> sid:string -> unit -> (sess_ack, give_up) result
(** Close a session (idempotent). *)
