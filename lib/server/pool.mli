(** Resident warm worker pool for the coloring daemon.

    The crash-only daemon of DESIGN.md §13 forked a fresh runner per job —
    correct, but cold-start-per-request. This pool pre-forks [size]
    resident workers that idle on a socketpair waiting for work orders, so
    the serve path pays fork + runtime warm-up once per worker life
    instead of once per request.

    Lifecycle (every slot is always in exactly one state):

    {v
             spawn                dispatch
      Down ---------> Idle -----------------> Busy
        ^              ^                        |
        |  recycle     |     report delivered   |
        |<-------------+<-----------------------+
        |              |
        |   crash / hang / watchdog kill        |
        +<--------------------------------------+
    v}

    - {b Dispatch}: a work order (job + remaining budget) is written to an
      idle worker as one checksummed frame; the worker solves through the
      same supervised portfolio path as a cold runner and replies with one
      report frame, then idles for the next order.
    - {b Recycling}: after a worker has served [recycle_jobs] orders, or
      its resident set exceeds [recycle_rss_mb], it is retired at the next
      idle moment and the slot respawns fresh — leaks and allocator bloat
      are bounded by construction. [Portfolio.set_memory_limit_mb]
      additionally arms a hard address-space rlimit in each worker as the
      backstop behind the soft RSS bound.
    - {b Self-healing}: a worker that dies (crash, OOM-kill), wedges
      (detected by the daemon's per-job watchdog), or garbles its reply is
      SIGKILLed, reaped, and its slot respawned with capped exponential
      backoff. Crashes inside a sliding window beyond a bound open a
      circuit breaker: the pool stops respawning for a cooldown (the
      daemon falls back to cold per-job forks meanwhile, so service
      continues), then closes it and tries again.
    - {b Never lose a job}: the pool itself never finalizes job state. A
      worker that dies holding a job surfaces a typed {!event} and the
      daemon requeues the job warm (checkpoints intact) exactly as it does
      for a dead cold runner.

    Chaos hooks ({!Colib_check.Chaos.worker_plan}) kill or SIGSTOP a
    worker right after a dispatch lands on it, keyed by the dispatch's
    0-based index, so worker-lifecycle faults replay deterministically. *)

module Frame = Colib_portfolio.Frame

(** A work order, marshalled inside one frame on the worker socketpair. *)
type order = {
  o_job : Frame.job;
  o_resume : bool;     (** warm-resume from the job's checkpoints *)
  o_remaining : float; (** seconds of solve budget left *)
}

(** What a worker (or a cold runner) reports back, marshalled inside one
    frame. The daemon re-certifies any claimed coloring before trusting
    it. *)
type report = {
  rp_outcome : string; (** optimal | best | unsat | timeout | failed *)
  rp_colors : int option;
  rp_coloring : int array option;
  rp_winner : string option;
  rp_detail : string;
  rp_time : float;
  rp_rss_kb : int;     (** worker resident set after the solve; 0 unknown *)
}

type config = {
  size : int;                (** resident workers; 0 disables the pool *)
  recycle_jobs : int;        (** retire a worker after this many jobs; 0 = never *)
  recycle_rss_kb : int;      (** retire past this resident set; 0 = never *)
  mem_limit_mb : int option; (** hard RLIMIT_AS backstop inside each worker *)
  respawn_backoff : float;   (** base respawn delay after a crash (doubles) *)
  respawn_backoff_cap : float;
  breaker_crashes : int;     (** crashes in the window beyond this open the breaker *)
  breaker_window : float;    (** sliding crash-count window, seconds *)
  breaker_cooldown : float;  (** how long an open breaker blocks respawns *)
  chaos : Colib_check.Chaos.worker_plan option;
}

val config :
  ?recycle_jobs:int ->
  ?recycle_rss_mb:int ->
  ?respawn_backoff:float ->
  ?respawn_backoff_cap:float ->
  ?breaker_crashes:int ->
  ?breaker_window:float ->
  ?breaker_cooldown:float ->
  ?chaos:Colib_check.Chaos.worker_plan ->
  size:int ->
  unit ->
  config
(** Defaults: recycle after 64 jobs or 512 MiB RSS (hard rlimit backstop at
    4x the RSS bound), respawn backoff 0.1 s doubling to 2 s, breaker past
    5 crashes in 10 s with a 5 s cooldown, no chaos. *)

type t

(** What the daemon must react to. The pool never touches job state
    itself. *)
type event =
  | Job_report of string * report
      (** the worker holding this job delivered a report and is idle (or
          being recycled) again *)
  | Job_lost of string * string
      (** the worker holding this job died or garbled its reply (reason
          attached); the slot is respawning — requeue the job *)

val create :
  config ->
  exec:(order -> report) ->
  on_child:(unit -> unit) ->
  log:(string -> unit) ->
  t
(** [exec] runs one order to a report inside the worker (it must not
    raise); [on_child] runs in each freshly forked worker before its loop
    — the daemon closes its listener, connections, and cold-runner fds
    there. No worker is forked yet; the first {!tick} spawns them. *)

val fds : t -> Unix.file_descr list
(** Daemon-side fds of live workers, for the select set. *)

val has_idle : t -> bool
val breaker_open : t -> bool

val dispatch : t -> order -> [ `Dispatched | `No_worker ]
(** Hand the order to an idle worker (applying any scheduled chaos fault
    to it). [`No_worker] if none is idle or every dispatch write failed
    (failed slots respawn under the crash discipline). *)

val handle_readable : t -> Unix.file_descr -> event option
(** Drain a readable worker fd: a complete report, a garbled frame, or
    worker death (EOF). Unknown fds are ignored ([None]). *)

val tick : t -> unit
(** Respawn slots whose backoff expired, close the breaker after its
    cooldown. Call once per event-loop iteration. *)

val kill_job : t -> string -> bool
(** Watchdog entry point: SIGKILL the worker holding this job (counts as a
    worker restart, not a breaker crash — budget enforcement is not
    sickness). The caller finalizes the job itself. [false] if no worker
    holds the job. *)

type stats = {
  warm : int;        (** idle workers ready for a job *)
  busy : int;
  recycling : int;   (** slots down awaiting respawn *)
  restarts : int;    (** respawns after crash / hang / watchdog kill *)
  recycles : int;    (** planned retirements (job-count or RSS bound) *)
  is_breaker_open : bool;
}

val stats : t -> stats

val close_fds_in_child : t -> unit
(** Close every daemon-side worker fd — for forked children (cold runners)
    that must not hold pool descriptors open. *)

val shutdown : t -> unit
(** Kill and reap every worker. Idempotent; for daemon exit. *)
