(** Client-side balancer over a fleet of coloring daemons.

    [submit] round-robins jobs across the configured daemon sockets. A
    daemon whose exchange fails (unreachable, disconnected, overloaded,
    durability-degraded, protocol garbage) is {e ejected} from the
    rotation with capped exponential backoff — each consecutive failure
    doubles its sit-out window up to a cap — and the job is immediately
    {e re-dispatched} to the next daemon, so one dead daemon costs a
    failed exchange, not a failed job. The first successful exchange
    readmits the daemon.

    Because job ids are idempotency keys across the whole fleet's
    journals, re-dispatching a job that a dying daemon had already
    accepted is safe: at worst two daemons solve it, both re-certify
    their own answers, and the client takes whichever result arrives.
    [Rejected] is the one permanent failure — the request itself is bad —
    and is returned immediately without ejecting the daemon.

    When every daemon is banned the balancer degrades to waiting out the
    nearest ban and probing, never to an early give-up; a fleet that is
    entirely down surfaces as the final dispatch's failure after
    [dispatches] rounds. *)

type t

val create :
  ?eject_base:float -> ?eject_cap:float -> ?sleep:(float -> unit) ->
  string list -> t
(** [create sockets] builds a balancer over the daemon socket specs (as
    accepted by {!Server.sockaddr_of_spec}). [eject_base] (0.5 s) and
    [eject_cap] (30 s) bound the ejection backoff; [sleep] is injectable
    for tests. Raises [Invalid_argument] on an empty list. *)

val sockets : t -> string list

val submit :
  ?dispatches:int ->
  ?retries:int ->
  ?backoff:float ->
  ?backoff_cap:float ->
  ?jitter_seed:int ->
  ?reply_slack:float ->
  ?chaos:Colib_check.Chaos.net_plan ->
  ?on_dispatch:(int -> string -> unit) ->
  t ->
  Colib_portfolio.Frame.job ->
  (Colib_portfolio.Frame.job_result, Client.give_up) result
(** Submit through the fleet: up to [dispatches] (6) daemon selections,
    each an inner {!Client.submit} with [retries] (1) quick retries.
    [on_dispatch] fires with the dispatch index and the chosen socket.
    Other parameters are forwarded to {!Client.submit}. *)

val probe : ?timeout:float -> t -> unit
(** Ping every daemon once: successes readmit, failures eject. *)

val health :
  ?timeout:float ->
  t ->
  (string * (Colib_portfolio.Frame.health, Client.failure) result) list
(** Per-daemon health snapshot, in configuration order. *)

type stats = {
  s_socket : string;
  s_dispatched : int;  (** jobs sent to this daemon *)
  s_completed : int;   (** jobs it answered successfully *)
  s_ejections : int;   (** times it was ejected from the rotation *)
  s_banned : bool;     (** currently sitting out a ban window *)
}

val stats : t -> stats list
