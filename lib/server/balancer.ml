module Frame = Colib_portfolio.Frame
module Mclock = Colib_clock.Mclock

type daemon = {
  socket : string;
  mutable failures : int;      (* consecutive failures since last success *)
  mutable banned_until : float;  (* monotonic; 0 = healthy *)
  mutable dispatched : int;
  mutable completed : int;
  mutable ejections : int;
}

type t = {
  daemons : daemon array;
  mutable rr : int;          (* round-robin cursor *)
  eject_base : float;
  eject_cap : float;
  sleep : float -> unit;
}

let create ?(eject_base = 0.5) ?(eject_cap = 30.0) ?(sleep = Unix.sleepf)
    sockets =
  if sockets = [] then invalid_arg "Balancer.create: no daemons";
  {
    daemons =
      Array.of_list
        (List.map
           (fun socket ->
             {
               socket;
               failures = 0;
               banned_until = 0.;
               dispatched = 0;
               completed = 0;
               ejections = 0;
             })
           sockets);
    rr = 0;
    eject_base;
    eject_cap;
    sleep;
  }

let sockets t = Array.to_list (Array.map (fun d -> d.socket) t.daemons)

let healthy d = Mclock.now () >= d.banned_until

(* Capped-backoff ejection: each consecutive failure doubles the time the
   daemon sits out of the rotation, so a dead daemon costs one probe per
   ban window instead of one per job, and a daemon that comes back is
   readmitted by the first success. *)
let eject t d =
  d.failures <- d.failures + 1;
  d.ejections <- d.ejections + 1;
  let ban =
    Float.min t.eject_cap
      (t.eject_base *. (2.0 ** float_of_int (min 16 (d.failures - 1))))
  in
  d.banned_until <- Mclock.now () +. ban

let readmit d =
  d.failures <- 0;
  d.banned_until <- 0.

(* The next daemon to try: round-robin over healthy daemons; when every
   daemon is banned, the one whose ban expires soonest (a fleet that is
   entirely down degrades to probing, never to giving up early). *)
let pick t =
  let n = Array.length t.daemons in
  let start = t.rr in
  let rec go i =
    if i >= n then
      let best = ref t.daemons.(0) in
      Array.iter
        (fun d -> if d.banned_until < !best.banned_until then best := d)
        t.daemons;
      !best
    else
      let d = t.daemons.((start + i) mod n) in
      if healthy d then begin
        t.rr <- (start + i + 1) mod n;
        d
      end
      else go (i + 1)
  in
  go 0

let probe ?(timeout = 5.0) t =
  Array.iter
    (fun d ->
      match Client.ping ~timeout ~socket:d.socket () with
      | Ok () -> readmit d
      | Error _ -> eject t d)
    t.daemons

let health ?(timeout = 5.0) t =
  Array.to_list
    (Array.map
       (fun d -> (d.socket, Client.health ~timeout ~socket:d.socket ()))
       t.daemons)

type stats = {
  s_socket : string;
  s_dispatched : int;
  s_completed : int;
  s_ejections : int;
  s_banned : bool;
}

let stats t =
  Array.to_list
    (Array.map
       (fun d ->
         {
           s_socket = d.socket;
           s_dispatched = d.dispatched;
           s_completed = d.completed;
           s_ejections = d.ejections;
           s_banned = not (healthy d);
         })
       t.daemons)

(* Submit through the fleet. Each per-daemon attempt uses a short inner
   retry (the daemon may be restarting); a daemon that still fails is
   ejected with capped backoff and the job is re-dispatched on the next
   daemon in the rotation. Job ids are idempotency keys end to end, so a
   job stranded on a daemon that died after accepting it is safely
   resubmitted elsewhere — at worst two daemons solve it and both answers
   are certified; the client takes the first to arrive. [Rejected] is
   permanent and returns immediately without ejecting anyone (the request
   is bad, not the daemon). *)
let submit ?(dispatches = 6) ?(retries = 1) ?backoff ?backoff_cap
    ?jitter_seed ?reply_slack ?chaos ?on_dispatch t (job : Frame.job) =
  let sleep = t.sleep in
  let rec go i last =
    if i >= dispatches then
      Error { Client.attempts = i; last }
    else begin
      let d = pick t in
      (match on_dispatch with Some f -> f i d.socket | None -> ());
      if not (healthy d) then
        (* whole fleet banned: wait out the nearest ban before probing *)
        sleep (Float.max 0.01 (d.banned_until -. Mclock.now ()));
      d.dispatched <- d.dispatched + 1;
      match
        Client.submit ~retries ?backoff ?backoff_cap ?jitter_seed
          ?reply_slack ?chaos ~sleep ~socket:d.socket job
      with
      | Ok r ->
        readmit d;
        d.completed <- d.completed + 1;
        Ok r
      | Error { Client.last = Client.Rejected _ as f; attempts } ->
        Error { Client.attempts = i * (retries + 1) + attempts; last = f }
      | Error { Client.last = f; _ } ->
        eject t d;
        go (i + 1) f
    end
  in
  go 0 (Client.Unreachable "no dispatch made")
