module Mclock = Colib_clock.Mclock

type config = {
  backoff : float;
  backoff_cap : float;
  max_restarts : int;
  window : float;
  pid_file : string option;
  verbose : bool;
}

let config ?(backoff = 0.2) ?(backoff_cap = 5.0) ?(max_restarts = 5)
    ?(window = 30.0) ?pid_file ?(verbose = false) () =
  {
    backoff = Float.max 0.0 backoff;
    backoff_cap = Float.max backoff backoff_cap;
    max_restarts = max 1 max_restarts;
    window = Float.max 0.1 window;
    pid_file;
    verbose;
  }

let breaker_exit_code = 10

let log cfg fmt =
  Printf.ksprintf
    (fun s -> if cfg.verbose then Printf.eprintf "supervise: %s\n%!" s)
    fmt

let loud fmt =
  Printf.ksprintf (fun s -> Printf.eprintf "supervise: %s\n%!" s) fmt

let write_pid_file cfg pid =
  match cfg.pid_file with
  | None -> ()
  | Some path -> (
    try Colib_io.Durable.write_file_atomic ~fsync_parent:false ~path
          (string_of_int pid ^ "\n")
    with Unix.Unix_error _ | Sys_error _ -> ())

let remove_pid_file cfg =
  match cfg.pid_file with
  | None -> ()
  | Some path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())

let signal_name s =
  if s = Sys.sigkill then "SIGKILL"
  else if s = Sys.sigterm then "SIGTERM"
  else if s = Sys.sigint then "SIGINT"
  else if s = Sys.sigsegv then "SIGSEGV"
  else if s = Sys.sigabrt then "SIGABRT"
  else Printf.sprintf "signal %d" s

let run cfg ~start =
  Colib_portfolio.Frame.ignore_sigpipe ();
  let child = ref (-1) in
  let stopping = ref false in
  (* operator signals pass through to the child; the daemon's own graceful
     drain then ends supervision with the child's exit status *)
  let forward signal =
    stopping := true;
    if !child > 0 then
      try Unix.kill !child signal with Unix.Unix_error _ -> ()
  in
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle forward) with _ -> ());
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle forward) with _ -> ());
  let rec wait pid =
    match Unix.waitpid [] pid with
    | _, st -> st
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait pid
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> Unix.WEXITED 0
  in
  (* crash instants (monotonic) inside the sliding breaker window *)
  let crashes = ref [] in
  let consecutive = ref 0 in
  let rec supervise () =
    let pid =
      match Unix.fork () with
      | 0 -> (
        (* the child installs its own handlers (Server.run does); reset
           ours so a signal racing the exec window stays default *)
        (try Sys.set_signal Sys.sigterm Sys.Signal_default with _ -> ());
        (try Sys.set_signal Sys.sigint Sys.Signal_default with _ -> ());
        match start () with
        | code -> Unix._exit code
        | exception e ->
          prerr_endline ("supervise child: " ^ Printexc.to_string e);
          Unix._exit 70)
      | pid -> pid
    in
    child := pid;
    write_pid_file cfg pid;
    log cfg "daemon started (pid %d)" pid;
    let born = Mclock.now () in
    let status = wait pid in
    child := -1;
    let uptime = Mclock.now () -. born in
    match status with
    | _ when !stopping ->
      let code = match status with Unix.WEXITED c -> c | _ -> 0 in
      log cfg "daemon stopped by operator (exit %d)" code;
      remove_pid_file cfg;
      code
    | Unix.WEXITED 0 ->
      log cfg "daemon drained cleanly; supervision done";
      remove_pid_file cfg;
      0
    | status ->
      let why =
        match status with
        | Unix.WEXITED c -> Printf.sprintf "exit %d" c
        | Unix.WSIGNALED s -> signal_name s
        | Unix.WSTOPPED s -> "stopped by " ^ signal_name s
      in
      let now = Mclock.now () in
      crashes :=
        now :: List.filter (fun at -> now -. at <= cfg.window) !crashes;
      if List.length !crashes > cfg.max_restarts then begin
        loud
          "circuit breaker: %d crashes in %.0fs (last: %s after %.2fs) — \
           crash loop, giving up"
          (List.length !crashes) cfg.window why uptime;
        remove_pid_file cfg;
        breaker_exit_code
      end
      else begin
        (* a child that survived a whole window earned a fresh backoff *)
        if uptime >= cfg.window then consecutive := 0;
        let delay =
          Float.min cfg.backoff_cap
            (cfg.backoff *. (2.0 ** float_of_int !consecutive))
        in
        incr consecutive;
        loud "daemon died (%s after %.2fs); restarting in %.2fs" why uptime
          delay;
        if delay > 0.0 then (try Unix.sleepf delay with Unix.Unix_error _ -> ());
        if !stopping then begin
          remove_pid_file cfg;
          0
        end
        else supervise ()
      end
  in
  let code = supervise () in
  code
