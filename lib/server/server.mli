(** The crash-only coloring daemon.

    [run cfg] binds the configured socket, accepts {!Colib_portfolio.Frame}
    job requests, and races each job through the supervised portfolio in a
    forked runner with per-job checkpointing. The daemon is {e crash-only}:
    there is no clean-start/recovery distinction. Startup always loads the
    journal (possibly empty), replays it, warm-resumes any job that was
    accepted or running when the previous life died, and caches finished
    results so resubmitting a finished job id re-delivers the journaled
    answer with [r_replayed = true] instead of recomputing it.

    Job state machine (every transition journaled as a self-contained
    record, so the latest record per job id alone reconstructs the state —
    exactly what journal rotation keeps):

    {v
      accepted --> running --> done | failed
          \
           '--> (shed at admission: Overloaded reply, nothing queued)
    v}

    Guarantees under fault injection ({!Colib_check.Chaos} net faults):
    - an accepted job always ends journaled as [done] or [failed], across
      any number of SIGKILL/restart cycles — never silently lost;
    - any delivered coloring was re-certified by the daemon itself against
      its own parse of the instance, so a forked runner cannot forge an
      answer;
    - deadlines are wall-clock from [accepted_at] (journaled), so the
      budget keeps draining across a crash; an exhausted deadline yields a
      typed [timeout] result, not a hang;
    - admission is bounded: past [max_queue] waiting jobs the daemon sheds
      with a typed [Overloaded of {queued; capacity}] reply;
    - connections that stall mid-frame (slow-loris) or idle without a job
      are closed after [io_timeout]; garbage and misdirected frames get a
      typed [Rejected] reply;
    - SIGTERM/SIGINT drains: the listener closes, running jobs get
      [drain_grace] seconds to finish (checkpointing all along), stragglers
      are SIGKILLed with their [running] journal record intact for the next
      life to resume, and the daemon exits 0. A second signal skips the
      grace.

    Resource-exhaustion ladder (DESIGN.md §14):
    - a journal write failure (disk full, I/O error — real or injected via
      {!Colib_io.Fault}) flips the daemon into a loud [Degraded] state:
      new submissions are shed with the typed [Unavailable] reply (their
      acceptance could not be journaled, so admitting them would break the
      crash-recovery contract), while already-admitted jobs run to
      completion, are re-certified, and have their transitions buffered in
      memory and flushed with capped-backoff retries; the daemon re-arms
      automatically on the first write that sticks;
    - [EMFILE]/[ENFILE] from [accept] is an incident, not an invisible
      outage: it is logged loudly, the oldest idle connection is shed, and
      a reserved fd is burned to accept-and-close one backlog entry so the
      listen queue keeps draining;
    - stale [*.tmp] staging files in the journal and checkpoint
      directories are reaped at startup (and again on entering the
      degraded state), so atomic-write debris cannot accumulate;
    - the [Health] request answers with queue depth, durability state,
      lifetime restart count (journal generations), the last I/O error,
      the number of buffered journal records, and the warm-pool / cache
      counters below.

    Warm serve path (DESIGN.md §15):
    - with [pool_size > 0] the daemon pre-forks a resident {!Pool} of
      workers; queued jobs dispatch to idle workers instead of paying a
      fork per request. Workers are recycled after [recycle_jobs] orders
      or past [recycle_rss_mb] resident set; crashed workers respawn with
      capped backoff behind a circuit breaker, and while the breaker is
      open the daemon falls back to cold per-job forks, so service never
      stops. A worker that dies holding a job surfaces the same
      requeue-warm-then-typed-failure path as a dead cold runner;
    - certified-[optimal] results are cached by a digest of the full solve
      parameters (instance, k, strategies, SBP, seed — not the job id or
      deadline) and journaled as [__cache__] records, so the cache
      survives SIGKILL via replay. A hit is re-certified against the
      daemon's own parse before delivery — a tampered or stale entry is
      dropped loudly and the job re-solves, so cache corruption degrades
      to a cold solve, never a forged result;
    - duplicate in-flight submissions (same parameter digest, different
      job ids) coalesce: one solve, N independently journaled certified
      replies. If the representative fails or times out, the duplicates
      are requeued independently rather than inheriting its verdict;
    - per-job checkpoint snapshots ([job-<id>.*.ckpt]) are reaped when the
      job reaches a terminal state and, for already-terminal jobs, at
      startup.

    Incremental sessions (DESIGN.md §18):
    - a [Sess_open] frame creates a durable {!Colib_session.Session}: a
      warm assumption-based solver whose graph the client edits with
      [Sess_edit] frames and re-queries with [Sess_query], paying
      incremental (learned-clause-retaining) re-solves instead of cold
      starts;
    - every edit is write-ahead journaled under [__sess__<sid>#<seq>]
      before it is applied, and duplicates (client retries) are answered
      idempotently by sequence number without re-applying. Warm engine
      snapshots are written through {!Colib_solver.Checkpoint} after each
      query and every [session_snap_edits] edits;
    - kill -9 recovery rebuilds every open session: replay the edit log up
      to the snapshot's covered sequence number, verify the formula
      digest, re-install the warm engine, then apply the edit-log suffix.
      Any snapshot problem degrades to a cold replay of the full log —
      never to wrong state;
    - sessions are leased: idle past [session_lease] they expire, and past
      [max_sessions] the least-recently-used is evicted. Late frames get
      the typed, permanent [Sess_expired] / [Sess_evicted] replies, and
      journal rotation garbage-collects dead sessions' record streams. *)

type config = {
  socket : string;       (** a path ([ADDR_UNIX]) or ["tcp:PORT"] loopback *)
  journal_path : string;
  ckpt_dir : string;
  max_queue : int;       (** waiting jobs beyond this are shed *)
  max_running : int;     (** concurrent runner processes *)
  io_timeout : float;    (** per-connection I/O inactivity deadline, seconds *)
  drain_grace : float;   (** seconds a drain waits before killing runners *)
  grace : float;         (** watchdog slack past a job's deadline *)
  rotate_bytes : int;    (** journal rotation threshold *)
  default_strategies : Colib_portfolio.Portfolio.strategy list;
  max_jobs : int option; (** drain after completing this many (tests/smoke) *)
  hold : float;          (** chaos hook: runner sleeps this long pre-solve *)
  crash_after : float option;
      (** chaos hook: the daemon SIGKILLs itself this many (monotonic)
          seconds after startup — a deterministic crash for supervisor
          tests *)
  pool_size : int;       (** resident warm workers; 0 = cold forks only *)
  recycle_jobs : int;    (** retire a worker after this many jobs; 0 = never *)
  recycle_rss_mb : int;  (** retire a worker past this resident set; 0 = never *)
  cache : bool;          (** serve certified-optimal results from the cache *)
  pool_faults : Colib_check.Chaos.worker_plan option;
      (** chaos hook: kill/SIGSTOP pool workers by dispatch index *)
  verbose : bool;
  peers : string list;
      (** socket specs of the other daemons in this fleet ([serve --peers]);
          advertised in health reports so a balancer can discover the
          topology from any one daemon *)
  max_sessions : int;
      (** open incremental sessions beyond this LRU-evict (typed
          [Sess_evicted] for late frames) *)
  session_lease : float;
      (** default idle seconds before a session expires *)
  session_snap_edits : int;
      (** snapshot a session's warm engine every this many edits (queries
          always snapshot) *)
}

val config :
  ?max_queue:int ->
  ?max_running:int ->
  ?io_timeout:float ->
  ?drain_grace:float ->
  ?grace:float ->
  ?rotate_bytes:int ->
  ?default_strategies:Colib_portfolio.Portfolio.strategy list ->
  ?max_jobs:int ->
  ?hold:float ->
  ?crash_after:float ->
  ?pool_size:int ->
  ?recycle_jobs:int ->
  ?recycle_rss_mb:int ->
  ?cache:bool ->
  ?pool_faults:Colib_check.Chaos.worker_plan ->
  ?verbose:bool ->
  ?peers:string list ->
  ?max_sessions:int ->
  ?session_lease:float ->
  ?session_snap_edits:int ->
  socket:string ->
  journal_path:string ->
  ckpt_dir:string ->
  unit ->
  config
(** Defaults: [max_queue] 16, [max_running] 2, [io_timeout] 10 s,
    [drain_grace] 10 s, [grace] 5 s, [rotate_bytes] 1 MiB, strategies
    [pbs2,dsatur], no [max_jobs] cap, no [hold], [pool_size] =
    [max_running], recycle after 64 jobs or 512 MiB RSS, cache on, quiet,
    [max_sessions] 8, [session_lease] 300 s, [session_snap_edits] 16. *)

val sockaddr_of_spec : string -> Unix.sockaddr
(** ["tcp:PORT"] is loopback TCP; anything else is a Unix-domain socket
    path. Raises [Invalid_argument] on a malformed TCP port. *)

val run : config -> int
(** Serve until drained (SIGTERM/SIGINT or [max_jobs]); returns the exit
    code (0 on a graceful drain). Installs its own SIGTERM/SIGINT handlers
    and ignores SIGPIPE process-wide. *)
