(** The crash-only coloring daemon.

    [run cfg] binds the configured socket, accepts {!Colib_portfolio.Frame}
    job requests, and races each job through the supervised portfolio in a
    forked runner with per-job checkpointing. The daemon is {e crash-only}:
    there is no clean-start/recovery distinction. Startup always loads the
    journal (possibly empty), replays it, warm-resumes any job that was
    accepted or running when the previous life died, and caches finished
    results so resubmitting a finished job id re-delivers the journaled
    answer with [r_replayed = true] instead of recomputing it.

    Job state machine (every transition journaled as a self-contained
    record, so the latest record per job id alone reconstructs the state —
    exactly what journal rotation keeps):

    {v
      accepted --> running --> done | failed
          \
           '--> (shed at admission: Overloaded reply, nothing queued)
    v}

    Guarantees under fault injection ({!Colib_check.Chaos} net faults):
    - an accepted job always ends journaled as [done] or [failed], across
      any number of SIGKILL/restart cycles — never silently lost;
    - any delivered coloring was re-certified by the daemon itself against
      its own parse of the instance, so a forked runner cannot forge an
      answer;
    - deadlines are wall-clock from [accepted_at] (journaled), so the
      budget keeps draining across a crash; an exhausted deadline yields a
      typed [timeout] result, not a hang;
    - admission is bounded: past [max_queue] waiting jobs the daemon sheds
      with a typed [Overloaded of {queued; capacity}] reply;
    - connections that stall mid-frame (slow-loris) or idle without a job
      are closed after [io_timeout]; garbage and misdirected frames get a
      typed [Rejected] reply;
    - SIGTERM/SIGINT drains: the listener closes, running jobs get
      [drain_grace] seconds to finish (checkpointing all along), stragglers
      are SIGKILLed with their [running] journal record intact for the next
      life to resume, and the daemon exits 0. A second signal skips the
      grace.

    Resource-exhaustion ladder (DESIGN.md §14):
    - a journal write failure (disk full, I/O error — real or injected via
      {!Colib_io.Fault}) flips the daemon into a loud [Degraded] state:
      new submissions are shed with the typed [Unavailable] reply (their
      acceptance could not be journaled, so admitting them would break the
      crash-recovery contract), while already-admitted jobs run to
      completion, are re-certified, and have their transitions buffered in
      memory and flushed with capped-backoff retries; the daemon re-arms
      automatically on the first write that sticks;
    - [EMFILE]/[ENFILE] from [accept] is an incident, not an invisible
      outage: it is logged loudly, the oldest idle connection is shed, and
      a reserved fd is burned to accept-and-close one backlog entry so the
      listen queue keeps draining;
    - stale [*.tmp] staging files in the journal and checkpoint
      directories are reaped at startup (and again on entering the
      degraded state), so atomic-write debris cannot accumulate;
    - the [Health] request answers with queue depth, durability state,
      lifetime restart count (journal generations), the last I/O error,
      and the number of buffered journal records. *)

type config = {
  socket : string;       (** a path ([ADDR_UNIX]) or ["tcp:PORT"] loopback *)
  journal_path : string;
  ckpt_dir : string;
  max_queue : int;       (** waiting jobs beyond this are shed *)
  max_running : int;     (** concurrent runner processes *)
  io_timeout : float;    (** per-connection I/O inactivity deadline, seconds *)
  drain_grace : float;   (** seconds a drain waits before killing runners *)
  grace : float;         (** watchdog slack past a job's deadline *)
  rotate_bytes : int;    (** journal rotation threshold *)
  default_strategies : Colib_portfolio.Portfolio.strategy list;
  max_jobs : int option; (** drain after completing this many (tests/smoke) *)
  hold : float;          (** chaos hook: runner sleeps this long pre-solve *)
  crash_after : float option;
      (** chaos hook: the daemon SIGKILLs itself this many (monotonic)
          seconds after startup — a deterministic crash for supervisor
          tests *)
  verbose : bool;
}

val config :
  ?max_queue:int ->
  ?max_running:int ->
  ?io_timeout:float ->
  ?drain_grace:float ->
  ?grace:float ->
  ?rotate_bytes:int ->
  ?default_strategies:Colib_portfolio.Portfolio.strategy list ->
  ?max_jobs:int ->
  ?hold:float ->
  ?crash_after:float ->
  ?verbose:bool ->
  socket:string ->
  journal_path:string ->
  ckpt_dir:string ->
  unit ->
  config
(** Defaults: [max_queue] 16, [max_running] 2, [io_timeout] 10 s,
    [drain_grace] 10 s, [grace] 5 s, [rotate_bytes] 1 MiB, strategies
    [pbs2,dsatur], no [max_jobs] cap, no [hold], quiet. *)

val sockaddr_of_spec : string -> Unix.sockaddr
(** ["tcp:PORT"] is loopback TCP; anything else is a Unix-domain socket
    path. Raises [Invalid_argument] on a malformed TCP port. *)

val run : config -> int
(** Serve until drained (SIGTERM/SIGINT or [max_jobs]); returns the exit
    code (0 on a graceful drain). Installs its own SIGTERM/SIGINT handlers
    and ignores SIGPIPE process-wide. *)
