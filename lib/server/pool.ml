module Frame = Colib_portfolio.Frame
module Portfolio = Colib_portfolio.Portfolio
module Mclock = Colib_clock.Mclock
module Durable = Colib_io.Durable
module Chaos = Colib_check.Chaos

type order = {
  o_job : Frame.job;
  o_resume : bool;
  o_remaining : float;
}

type report = {
  rp_outcome : string;
  rp_colors : int option;
  rp_coloring : int array option;
  rp_winner : string option;
  rp_detail : string;
  rp_time : float;
  rp_rss_kb : int;
}

type config = {
  size : int;
  recycle_jobs : int;
  recycle_rss_kb : int;
  mem_limit_mb : int option;
  respawn_backoff : float;
  respawn_backoff_cap : float;
  breaker_crashes : int;
  breaker_window : float;
  breaker_cooldown : float;
  chaos : Chaos.worker_plan option;
}

let config ?(recycle_jobs = 64) ?(recycle_rss_mb = 512)
    ?(respawn_backoff = 0.1) ?(respawn_backoff_cap = 2.0)
    ?(breaker_crashes = 5) ?(breaker_window = 10.0) ?(breaker_cooldown = 5.0)
    ?chaos ~size () =
  {
    size = max 0 size;
    recycle_jobs = max 0 recycle_jobs;
    recycle_rss_kb = max 0 recycle_rss_mb * 1024;
    mem_limit_mb =
      (if recycle_rss_mb > 0 then Some (4 * recycle_rss_mb) else None);
    respawn_backoff;
    respawn_backoff_cap;
    breaker_crashes;
    breaker_window;
    breaker_cooldown;
    chaos;
  }

type slot_state =
  | Idle
  | Busy of string (* job id the worker is solving *)
  | Down of float (* monotonic respawn-at *)

type slot = {
  mutable pid : int;
  mutable fd : Unix.file_descr option; (* daemon side, nonblocking *)
  mutable dec : Frame.decoder;
  mutable st : slot_state;
  mutable jobs_done : int;
  mutable eof : bool;
}

type event =
  | Job_report of string * report
  | Job_lost of string * string

type t = {
  cfg : config;
  exec : order -> report;
  on_child : unit -> unit;
  log : string -> unit;
  slots : slot array;
  mutable crashes : float list; (* breaker sliding window, monotonic *)
  mutable consecutive : int; (* doubling counter for respawn backoff *)
  mutable breaker_until : float; (* 0.0 = closed *)
  mutable restarts : int;
  mutable recycles : int;
  mutable dispatches : int; (* total dispatches = chaos plan index *)
  mutable dead : bool;
}

let create cfg ~exec ~on_child ~log =
  {
    cfg;
    exec;
    on_child;
    log;
    slots =
      Array.init cfg.size (fun _ ->
          {
            pid = 0;
            fd = None;
            dec = Frame.decoder ();
            st = Down 0.0;
            jobs_done = 0;
            eof = false;
          });
    crashes = [];
    consecutive = 0;
    breaker_until = 0.0;
    restarts = 0;
    recycles = 0;
    dispatches = 0;
    dead = false;
  }

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()
let kill_quiet pid signal = try Unix.kill pid signal with Unix.Unix_error _ -> ()

let reap_quiet pid =
  if pid > 0 then
    try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

(* ---- the worker process ------------------------------------------------ *)

(* One resident worker: block on the socketpair for an order frame, solve it
   through [exec] (the same supervised portfolio path a cold runner takes),
   reply with one report frame, repeat. EOF on the socketpair (the daemon
   closed our slot) is the normal retirement signal. Anything unexpected
   exits nonzero and lets the daemon-side crash discipline respawn us. *)
let worker_loop t wfd : unit =
  Frame.ignore_sigpipe ();
  (try Sys.set_signal Sys.sigint Sys.Signal_default with _ -> ());
  (try Sys.set_signal Sys.sigterm Sys.Signal_default with _ -> ());
  (match t.cfg.mem_limit_mb with
  | Some mb when mb > 0 -> ignore (Portfolio.set_memory_limit_mb mb : bool)
  | _ -> ());
  let rec loop () =
    match Frame.read_frame wfd with
    | Error _ -> Unix._exit 0
    | Ok payload -> (
        let order =
          match (Marshal.from_string payload 0 : order) with
          | o -> Some o
          | exception _ -> None
        in
        match order with
        | None -> Unix._exit 1
        | Some o ->
            let rep =
              match t.exec o with
              | rep -> rep
              | exception e ->
                  {
                    rp_outcome = "failed";
                    rp_colors = None;
                    rp_coloring = None;
                    rp_winner = None;
                    rp_detail = "pool worker exception: " ^ Printexc.to_string e;
                    rp_time = 0.0;
                    rp_rss_kb = 0;
                  }
            in
            let rep =
              {
                rep with
                rp_rss_kb =
                  Option.value ~default:0
                    (Durable.rss_kb ~pid:(Unix.getpid ()));
              }
            in
            (match Frame.write_frame wfd (Marshal.to_string rep []) with
            | Ok () -> loop ()
            | Error _ -> Unix._exit 0))
  in
  loop ()

let spawn t slot =
  let dfd, wfd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.fork () with
  | 0 ->
      close_quiet dfd;
      Array.iter
        (fun s -> match s.fd with Some fd -> close_quiet fd | None -> ())
        t.slots;
      t.on_child ();
      worker_loop t wfd;
      Unix._exit 0
  | pid ->
      close_quiet wfd;
      Unix.set_nonblock dfd;
      slot.pid <- pid;
      slot.fd <- Some dfd;
      slot.dec <- Frame.decoder ();
      slot.st <- Idle;
      slot.jobs_done <- 0;
      slot.eof <- false;
      t.log (Printf.sprintf "pool: worker %d spawned" pid)

(* ---- daemon-side slot discipline --------------------------------------- *)

let retire slot ~respawn_at =
  (match slot.fd with Some fd -> close_quiet fd | None -> ());
  slot.fd <- None;
  kill_quiet slot.pid Sys.sigkill;
  reap_quiet slot.pid;
  slot.pid <- 0;
  slot.eof <- false;
  slot.st <- Down respawn_at

(* A worker died, hung, or garbled its reply: respawn with capped doubling
   backoff, and past [breaker_crashes] crashes inside the sliding window
   open the breaker — stop respawning for a cooldown so a poisoned
   environment cannot melt the daemon in a fork loop (cold fallback keeps
   serving meanwhile). Mirrors the process-level supervise.ml discipline. *)
let crash_slot t slot ~now ~reason =
  let held = match slot.st with Busy id -> Some id | _ -> None in
  t.restarts <- t.restarts + 1;
  t.consecutive <- t.consecutive + 1;
  t.crashes <-
    now :: List.filter (fun c -> now -. c <= t.cfg.breaker_window) t.crashes;
  let delay =
    Float.min t.cfg.respawn_backoff_cap
      (t.cfg.respawn_backoff *. (2.0 ** float_of_int (t.consecutive - 1)))
  in
  t.log
    (Printf.sprintf "pool: worker %d lost (%s); respawn in %.2fs" slot.pid
       reason delay);
  retire slot ~respawn_at:(now +. delay);
  if
    List.length t.crashes > t.cfg.breaker_crashes
    && t.breaker_until <= now
  then begin
    t.breaker_until <- now +. t.cfg.breaker_cooldown;
    Printf.eprintf
      "colord: [pool] circuit breaker open: %d worker crashes in %.0fs; \
       cold-forking for %.0fs\n\
       %!"
      (List.length t.crashes) t.cfg.breaker_window t.cfg.breaker_cooldown
  end;
  held

let breaker_open t = t.breaker_until > Mclock.now ()

let tick t =
  if not t.dead then begin
    let now = Mclock.now () in
    if t.breaker_until > 0.0 && now >= t.breaker_until then begin
      t.breaker_until <- 0.0;
      t.crashes <- [];
      t.consecutive <- 0;
      Printf.eprintf "colord: [pool] circuit breaker closed; respawning\n%!"
    end;
    if t.breaker_until <= 0.0 then
      Array.iter
        (fun slot ->
          match slot.st with
          | Down at when at <= now -> spawn t slot
          | _ -> ())
        t.slots
  end

let fds t =
  Array.fold_left
    (fun acc slot -> match slot.fd with Some fd -> fd :: acc | None -> acc)
    [] t.slots

let has_idle t =
  Array.exists (fun s -> s.st = Idle && s.fd <> None) t.slots

let find_slot t fd =
  Array.fold_left
    (fun acc slot ->
      match (acc, slot.fd) with
      | None, Some f when f = fd -> Some slot
      | _ -> acc)
    None t.slots

let dispatch t order =
  let job_id = order.o_job.Frame.job_id in
  let payload = Marshal.to_string order [] in
  let rec try_slots i =
    if i >= Array.length t.slots then `No_worker
    else
      let slot = t.slots.(i) in
      match (slot.st, slot.fd) with
      | Idle, Some fd -> (
          match
            Frame.write_frame ~deadline:(Mclock.now () +. 5.0) fd payload
          with
          | Ok () ->
              slot.st <- Busy job_id;
              let index = t.dispatches in
              t.dispatches <- index + 1;
              (match t.cfg.chaos with
              | None -> ()
              | Some plan -> (
                  match Chaos.worker_fault_for plan index with
                  | None -> ()
                  | Some fault ->
                      t.log
                        (Printf.sprintf "pool: chaos dispatch #%d: %s" index
                           (Chaos.worker_fault_name fault));
                      kill_quiet slot.pid
                        (match fault with
                        | Chaos.Worker_kill -> Sys.sigkill
                        | Chaos.Worker_hang -> Sys.sigstop)));
              `Dispatched
          | Error e ->
              (* the write itself failed: this worker is sick; job was never
                 handed over, so no Job_lost — just respawn the slot and try
                 the next one *)
              ignore
                (crash_slot t slot ~now:(Mclock.now ())
                   ~reason:
                     ("dispatch write failed: " ^ Frame.io_error_to_string e)
                  : string option);
              try_slots (i + 1))
      | _ -> try_slots (i + 1)
  in
  try_slots 0

let handle_readable t fd =
  match find_slot t fd with
  | None -> None
  | Some slot -> (
      let buf = Bytes.create 65536 in
      let rec drain () =
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> slot.eof <- true
        | n -> (
            Frame.feed slot.dec buf n;
            match Frame.state slot.dec with Frame.Awaiting -> drain () | _ -> ())
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
        | exception Unix.Unix_error _ -> slot.eof <- true
      in
      drain ();
      let now = Mclock.now () in
      let crash reason =
        match crash_slot t slot ~now ~reason with
        | Some job_id -> Some (Job_lost (job_id, reason))
        | None -> None
      in
      match Frame.state slot.dec with
      | Frame.Got payload -> (
          match (Marshal.from_string payload 0 : report) with
          | exception _ -> crash "undecodable report payload"
          | rep -> (
              let held = match slot.st with Busy id -> Some id | _ -> None in
              slot.jobs_done <- slot.jobs_done + 1;
              t.consecutive <- 0;
              Frame.reset slot.dec;
              slot.st <- Idle;
              (* planned recycling: retire at the idle moment the job-count
                 or RSS bound is crossed, so leaks stay bounded *)
              let rss_kb =
                if rep.rp_rss_kb > 0 then rep.rp_rss_kb
                else Option.value ~default:0 (Durable.rss_kb ~pid:slot.pid)
              in
              let why =
                if t.cfg.recycle_jobs > 0 && slot.jobs_done >= t.cfg.recycle_jobs
                then Some (Printf.sprintf "served %d jobs" slot.jobs_done)
                else if t.cfg.recycle_rss_kb > 0 && rss_kb >= t.cfg.recycle_rss_kb
                then Some (Printf.sprintf "RSS %d KiB" rss_kb)
                else None
              in
              (match why with
              | Some why ->
                  t.recycles <- t.recycles + 1;
                  t.log
                    (Printf.sprintf "pool: recycling worker %d (%s)" slot.pid
                       why);
                  retire slot ~respawn_at:now
              | None -> ());
              match held with
              | Some job_id -> Some (Job_report (job_id, rep))
              | None -> None))
      | Frame.Failed e -> crash ("garbled report: " ^ Frame.error_to_string e)
      | Frame.Awaiting ->
          if slot.eof then
            crash
              (if Frame.bytes_received slot.dec = 0 then "worker died"
               else "worker died mid-report")
          else None)

let kill_job t job_id =
  let now = Mclock.now () in
  Array.exists
    (fun slot ->
      match slot.st with
      | Busy id when String.equal id job_id ->
          t.restarts <- t.restarts + 1;
          t.log
            (Printf.sprintf "pool: watchdog killing worker %d (job %s)"
               slot.pid job_id);
          retire slot ~respawn_at:(now +. t.cfg.respawn_backoff);
          true
      | _ -> false)
    t.slots

type stats = {
  warm : int;
  busy : int;
  recycling : int;
  restarts : int;
  recycles : int;
  is_breaker_open : bool;
}

let stats t =
  let warm = ref 0 and busy = ref 0 and recycling = ref 0 in
  Array.iter
    (fun slot ->
      match slot.st with
      | Idle -> incr warm
      | Busy _ -> incr busy
      | Down _ -> incr recycling)
    t.slots;
  {
    warm = !warm;
    busy = !busy;
    recycling = !recycling;
    restarts = t.restarts;
    recycles = t.recycles;
    is_breaker_open = breaker_open t;
  }

let close_fds_in_child t =
  Array.iter
    (fun slot -> match slot.fd with Some fd -> close_quiet fd | None -> ())
    t.slots

let shutdown t =
  if not t.dead then begin
    t.dead <- true;
    Array.iter (fun slot -> retire slot ~respawn_at:infinity) t.slots
  end
