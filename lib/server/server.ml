module Graph = Colib_graph.Graph
module Dimacs_col = Colib_graph.Dimacs_col
module Dsatur = Colib_graph.Dsatur
module Sbp = Colib_encode.Sbp
module Checkpoint = Colib_solver.Checkpoint
module Certify = Colib_check.Certify
module Chaos = Colib_check.Chaos
module Flow = Colib_core.Flow
module Frame = Colib_portfolio.Frame
module Journal = Colib_portfolio.Journal
module Portfolio = Colib_portfolio.Portfolio
module Mclock = Colib_clock.Mclock
module Durable = Colib_io.Durable
module Session = Colib_session.Session
module Types = Colib_solver.Types

(* ------------------------------------------------------------------ *)
(* Configuration *)

type config = {
  socket : string;
  journal_path : string;
  ckpt_dir : string;
  max_queue : int;
  max_running : int;
  io_timeout : float;
  drain_grace : float;
  grace : float;
  rotate_bytes : int;
  default_strategies : Portfolio.strategy list;
  max_jobs : int option;
  hold : float;
  crash_after : float option;
  pool_size : int;
  recycle_jobs : int;
  recycle_rss_mb : int;
  cache : bool;
  pool_faults : Chaos.worker_plan option;
  verbose : bool;
  peers : string list;
  max_sessions : int;
  session_lease : float;
  session_snap_edits : int;
}

let config ?(max_queue = 16) ?(max_running = 2) ?(io_timeout = 10.0)
    ?(drain_grace = 10.0) ?(grace = 5.0) ?(rotate_bytes = 1 lsl 20)
    ?(default_strategies = [ Portfolio.Engine_strategy Colib_solver.Types.Pbs2;
                             Portfolio.Dsatur_strategy ])
    ?max_jobs ?(hold = 0.0) ?crash_after ?pool_size ?(recycle_jobs = 64)
    ?(recycle_rss_mb = 512) ?(cache = true) ?pool_faults ?(verbose = false)
    ?(peers = []) ?(max_sessions = 8) ?(session_lease = 300.0)
    ?(session_snap_edits = 16) ~socket ~journal_path ~ckpt_dir () =
  let max_running = max 1 max_running in
  {
    socket;
    journal_path;
    ckpt_dir;
    max_queue = max 0 max_queue;
    max_running;
    io_timeout;
    drain_grace;
    grace;
    rotate_bytes;
    default_strategies;
    max_jobs;
    hold;
    crash_after;
    pool_size =
      (match pool_size with Some n -> max 0 n | None -> max_running);
    recycle_jobs = max 0 recycle_jobs;
    recycle_rss_mb = max 0 recycle_rss_mb;
    cache;
    pool_faults;
    verbose;
    peers;
    max_sessions = max 1 max_sessions;
    session_lease = Float.max 1.0 session_lease;
    session_snap_edits = max 1 session_snap_edits;
  }

let sockaddr_of_spec spec =
  let tcp = "tcp:" in
  let n = String.length tcp in
  if String.length spec > n && String.sub spec 0 n = tcp then
    match int_of_string_opt (String.sub spec n (String.length spec - n)) with
    | Some port when port > 0 && port < 65536 ->
      Unix.ADDR_INET (Unix.inet_addr_loopback, port)
    | _ -> invalid_arg (Printf.sprintf "bad TCP socket spec %S" spec)
  else Unix.ADDR_UNIX spec

(* ------------------------------------------------------------------ *)
(* Job state machine: accepted -> running -> done/failed (or shed at
   admission). Every transition is journaled as a SELF-CONTAINED record
   (accepted/running records carry the whole request, done/failed records
   the whole result), so the latest record per job id alone reconstructs
   the daemon's state — which is exactly what journal rotation keeps.

   A job runs either COLD (its own forked runner, the original path) or
   WARM (dispatched to a resident {!Pool} worker). Duplicate in-flight
   work coalesces: a job whose parameter digest matches one already
   dispatched attaches to that representative instead of solving again
   ([Coalesced] is an in-memory state only — the journal keeps the job at
   [accepted], so a crash replays it independently and it re-coalesces
   naturally). *)

type runner = {
  rn_pid : int;
  rn_fd : Unix.file_descr;
  rn_dec : Frame.decoder;
  rn_kill_at : float; (* monotonic *)
  mutable rn_eof : bool;
}

type exec =
  | Cold of runner
  | Warm of { w_kill_at : float } (* the pool tracks which worker *)

type job_state =
  | Queued
  | Coalesced of string (* representative job id solving on our behalf *)
  | Running of exec
  | Finished of Frame.job_result

type jstate = {
  job : Frame.job;
  accepted_at : float; (* Unix wall clock: must survive a daemon restart *)
  mutable state : job_state;
  mutable resume : bool;  (* warm-resume from checkpoints on next spawn *)
  mutable attempts : int;
  mutable waiters : Unix.file_descr list;
  mutable co_ids : string list; (* jobs coalesced onto this one *)
}

type conn = {
  c_fd : Unix.file_descr;
  c_dec : Frame.decoder;
  mutable c_last : float;        (* monotonic, last *complete* frame (or
                                    accept); partial bytes do not refresh
                                    it, so a slow-loris drip still times
                                    out io_timeout after its frame began *)
  mutable c_job : string option; (* the job this connection awaits *)
}

(* ---------- durability degradation ladder ---------- *)

(* When journaling fails persistently (disk full, I/O errors) the daemon
   does not die and does not lie: it enters a loud [Degraded] state. New
   submissions are shed with a typed [Unavailable] reply — accepting a job
   whose acceptance cannot be journaled would break the crash-recovery
   contract. In-flight jobs keep running to completion and re-certify as
   usual; their state transitions are buffered in memory and flushed with
   capped-backoff retries, so the moment the disk recovers the journal
   catches up and admission re-arms automatically. *)

type degraded_reason = Disk_full | Io_error

let reason_name = function
  | Disk_full -> "disk-full"
  | Io_error -> "io-error"

let classify_errno = function
  | Unix.ENOSPC -> Disk_full
  | _ -> Io_error

type durability = Durable | Degraded of degraded_reason

(* certified-optimal results keyed by parameter digest; re-certified again
   at every delivery, so a tampered or stale entry can never forge one *)
type cache_entry = {
  ce_colors : int;
  ce_coloring : int array;
  ce_winner : string option;
  ce_time : float;
}

(* ---------- incremental sessions (DESIGN.md §18) ---------- *)

(* One durable coloring session: a warm [Session.t] plus the bookkeeping
   that makes it survive kill -9 — a write-ahead edit log in the job
   journal (one self-contained record per edit, keyed [__sess__<sid>#<seq>]
   so replay is idempotent by sequence number), periodic engine snapshots
   through {!Checkpoint}, and a lease that bounds how long an abandoned
   session can pin memory. *)
type sess = {
  ss_sid : string;
  ss_s : Session.t;
  ss_lease : float;            (* idle seconds before expiry *)
  mutable ss_expires : float;  (* Unix wall clock: must survive a restart *)
  mutable ss_last_seq : int;   (* highest client sequence number consumed *)
  mutable ss_last_answer : Frame.session_answer option;
  mutable ss_since_snap : int; (* edits since the last snapshot *)
  mutable ss_touched : float;  (* monotonic; the LRU eviction order *)
}

(* why a vanished session is gone, so late frames get the right taxonomy *)
type sess_fate = Sess_closed | Sess_expired_f | Sess_evicted_f

type t = {
  cfg : config;
  journal : Journal.t;
  jobs : (string, jstate) Hashtbl.t;
  queue : string Queue.t;
  mutable conns : conn list;
  mutable listen_fd : Unix.file_descr option;
  mutable draining : bool;
  mutable drain_started : float;
  mutable completed : int;
  started_at : float; (* monotonic *)
  mutable durability : durability;
  mutable degraded_since : float; (* monotonic, meaningful when degraded *)
  mutable pending : (string * string) list list; (* unflushed records, oldest first *)
  mutable retry_at : float;      (* monotonic: next journal retry *)
  mutable retry_backoff : float;
  mutable last_io_error : string;
  mutable lives : int;           (* journal generations, incl. this one *)
  mutable reserve_fd : Unix.file_descr option; (* EMFILE drain reserve *)
  mutable pool : Pool.t option;
  cache_tbl : (string, cache_entry) Hashtbl.t; (* digest -> entry *)
  inflight : (string, string) Hashtbl.t; (* digest -> representative job *)
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable coalesced : int;
  sessions : (string, sess) Hashtbl.t;
  sess_gone : (string, sess_fate) Hashtbl.t;
  mutable sess_evicted : int;
  mutable sess_expired : int;
  mutable sess_replayed : int;
  mutable sess_recovered : int;
}

let log t fmt =
  Printf.ksprintf
    (fun s -> if t.cfg.verbose then Printf.eprintf "serve: %s\n%!" s)
    fmt

(* degradation transitions are operational incidents: always loud,
   regardless of [verbose] *)
let loud fmt = Printf.ksprintf (fun s -> Printf.eprintf "serve: %s\n%!" s) fmt

let retry_backoff_base = 0.25
let retry_backoff_cap = 5.0

(* a *.tmp younger than this is presumed to be a live writer's in-flight
   staging file (supervisor pid-file rename, sibling daemon checkpoint),
   not crash debris; a genuine leftover that is still fresh at one sweep
   is caught by the next startup or degraded-mode sweep *)
let tmp_reap_min_age_s = 1.0

(* internal journal keys ([__rotation__], [__life__], [__durability__],
   [__cache__<digest>]) carry daemon metadata, not job state; replay skips
   them *)
let internal_key k =
  String.length k >= 2 && k.[0] = '_' && k.[1] = '_'

let cache_key_prefix = "__cache__"

let enter_degraded t err fn =
  t.last_io_error <- Printf.sprintf "%s: %s" fn (Unix.error_message err);
  let reason = classify_errno err in
  match t.durability with
  | Degraded r ->
    if r <> reason then t.durability <- Degraded reason
  | Durable ->
    t.durability <- Degraded reason;
    t.degraded_since <- Mclock.now ();
    t.retry_backoff <- retry_backoff_base;
    t.retry_at <- Mclock.now () +. retry_backoff_base;
    loud "DEGRADED (%s): %s — shedding new submissions, buffering journal"
      (reason_name reason) t.last_io_error;
    (* a full disk must not ratchet fuller: drop atomic-write debris now *)
    let reaped =
      Durable.reap_tmp ~min_age_s:tmp_reap_min_age_s
        (Filename.dirname t.cfg.journal_path)
      + Durable.reap_tmp ~min_age_s:tmp_reap_min_age_s t.cfg.ckpt_dir
    in
    if reaped > 0 then loud "reaped %d stale .tmp file(s)" reaped

(* buffered commit: the write path for transitions of jobs that are already
   admitted (running/done/failed/shed). Never raises — a failure flips the
   daemon into the degraded ladder and the record waits in memory. *)
let commit t fields =
  match t.durability with
  | Degraded _ -> t.pending <- t.pending @ [ fields ]
  | Durable -> (
    match Journal.append t.journal fields with
    | () -> ()
    | exception Unix.Unix_error (err, fn, _) ->
      enter_degraded t err fn;
      t.pending <- t.pending @ [ fields ])

(* capped-backoff retry; flips back to [Durable] as soon as a write sticks *)
let try_rearm t =
  match t.durability with
  | Durable -> ()
  | Degraded _ ->
    let now = Mclock.now () in
    if now >= t.retry_at then begin
      let outcome =
        let rec flush () =
          match t.pending with
          | [] -> Ok ()
          | fields :: rest -> (
            match Journal.append t.journal fields with
            | () ->
              t.pending <- rest;
              flush ()
            | exception Unix.Unix_error (err, fn, _) -> Error (err, fn))
        in
        if t.pending = [] then
          (* nothing buffered: probe with a metadata record so recovery is
             detected even on an idle daemon *)
          match
            Journal.append t.journal
              [ ("key", "__durability__"); ("state", "probe") ]
          with
          | () -> Ok ()
          | exception Unix.Unix_error (err, fn, _) -> Error (err, fn)
        else flush ()
      in
      match outcome with
      | Ok () ->
        loud "durability restored after %.1fs (journal flushed, %s)"
          (now -. t.degraded_since)
          (match t.last_io_error with "" -> "no error" | e -> "last: " ^ e);
        t.durability <- Durable
      | Error (err, fn) ->
        t.last_io_error <-
          Printf.sprintf "%s: %s" fn (Unix.error_message err);
        t.retry_backoff <-
          Float.min retry_backoff_cap (2.0 *. t.retry_backoff);
        t.retry_at <- Mclock.now () +. t.retry_backoff
    end

let durability_string t =
  match t.durability with
  | Durable -> "ok"
  | Degraded r -> "degraded:" ^ reason_name r

(* ---------- journal records ---------- *)

let coloring_to_string col =
  String.concat " " (Array.to_list (Array.map string_of_int col))

let coloring_of_string s =
  match String.split_on_char ' ' (String.trim s) with
  | [ "" ] | [] -> None
  | toks -> (
    try Some (Array.of_list (List.map int_of_string toks))
    with Failure _ -> None)

let job_fields (j : Frame.job) ~accepted_at ~attempts =
  [
    ("accepted_at", Printf.sprintf "%.3f" accepted_at);
    ("deadline", Printf.sprintf "%.3f" j.Frame.deadline);
    ("k", match j.Frame.j_k with Some k -> string_of_int k | None -> "");
    ("strategies", j.Frame.strategies);
    ("sbp", j.Frame.sbp);
    ("isd", string_of_bool j.Frame.instance_dependent);
    ("seed", string_of_int j.Frame.j_seed);
    ("attempts", string_of_int attempts);
    ("dimacs", j.Frame.dimacs);
  ]

let job_record js state =
  ("key", js.job.Frame.job_id) :: ("state", state)
  :: job_fields js.job ~accepted_at:js.accepted_at ~attempts:js.attempts

(* in-flight transitions go through the buffered [commit]: a job that is
   already admitted must reach its terminal state even while the disk is
   refusing writes *)
let journal_job t js state = commit t (job_record js state)

(* admission is the one strict write: if the acceptance record cannot be
   journaled the job is NOT admitted (raises the [Unix_error]) — otherwise
   a crash would silently lose a job the client was told we accepted *)
let journal_accept_strict t js =
  Journal.append t.journal (job_record js "accepted")

let journal_result t js (r : Frame.job_result) =
  let state = if r.Frame.r_outcome = "failed" then "failed" else "done" in
  commit t
    [
      ("key", js.job.Frame.job_id);
      ("state", state);
      ("outcome", r.Frame.r_outcome);
      ("colors",
       match r.Frame.r_colors with Some c -> string_of_int c | None -> "");
      ("coloring",
       match r.Frame.r_coloring with
       | Some col -> coloring_to_string col
       | None -> "");
      ("winner", match r.Frame.r_winner with Some w -> w | None -> "");
      ("certified", string_of_bool r.Frame.r_certified);
      ("detail", r.Frame.r_detail);
      ("time", Printf.sprintf "%.6f" r.Frame.r_time);
      ("accepted_at", Printf.sprintf "%.3f" js.accepted_at);
      ("deadline", Printf.sprintf "%.3f" js.job.Frame.deadline);
    ]

let journal_shed t job_id =
  commit t [ ("key", job_id); ("state", "shed") ]

(* ---------- the result cache ---------- *)

(* Cache identity is the full parameter set of the solve — instance text,
   color limit, strategy list, SBP construction, instance-dependence flag,
   seed — and deliberately NOT the job id or deadline: two clients asking
   the same question under different names or budgets deserve the same
   (deadline-independent) certified answer.

   Only certified-[optimal] results are cached. [best]/[timeout] are
   budget-dependent, and an [unsat] verdict cannot be re-validated from the
   entry alone (its evidence is the RUP trace the runner replayed, which is
   not stored), so caching it would mean trusting bytes on disk — exactly
   what this daemon never does. An optimal entry, by contrast, carries its
   own proof of feasibility (the coloring, re-certified at every delivery);
   its optimality rests on the journal being writable only by the daemon
   that certified the original solve, and a corrupted entry fails
   re-certification and is dropped + re-solved rather than served. *)

let digest_of_job (j : Frame.job) =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [
            j.Frame.dimacs;
            (match j.Frame.j_k with Some k -> string_of_int k | None -> "");
            j.Frame.strategies;
            j.Frame.sbp;
            string_of_bool j.Frame.instance_dependent;
            string_of_int j.Frame.j_seed;
          ]))

let cache_drop t digest =
  Hashtbl.remove t.cache_tbl digest;
  commit t [ ("key", cache_key_prefix ^ digest); ("state", "dropped") ]

let cache_store t js (r : Frame.job_result) =
  if t.cfg.cache && r.Frame.r_outcome = "optimal" && r.Frame.r_certified then
    match (r.Frame.r_colors, r.Frame.r_coloring) with
    | Some c, Some col ->
      let digest = digest_of_job js.job in
      if not (Hashtbl.mem t.cache_tbl digest) then begin
        Hashtbl.replace t.cache_tbl digest
          {
            ce_colors = c;
            ce_coloring = Array.copy col;
            ce_winner = r.Frame.r_winner;
            ce_time = r.Frame.r_time;
          };
        commit t
          [
            ("key", cache_key_prefix ^ digest);
            ("state", "entry");
            ("colors", string_of_int c);
            ("coloring", coloring_to_string col);
            ("winner", Option.value ~default:"" r.Frame.r_winner);
            ("time", Printf.sprintf "%.6f" r.Frame.r_time);
          ]
      end
    | _ -> ()

(* a hit is only served after re-certifying the stored coloring against
   this daemon's own parse of the submitted instance — an entry that fails
   (tampered journal, stale format) is dropped loudly and the job solves
   normally, so cache corruption degrades to a cold solve, never to a
   forged result *)
let cache_lookup t (job : Frame.job) digest =
  if not t.cfg.cache then None
  else
    match Hashtbl.find_opt t.cache_tbl digest with
    | None -> None
    | Some ce -> (
      match Dimacs_col.parse_result job.Frame.dimacs with
      | Error _ ->
        cache_drop t digest;
        None
      | Ok g -> (
        match
          Certify.coloring g ~k:ce.ce_colors ~claimed:ce.ce_colors
            ce.ce_coloring
        with
        | Ok () ->
          t.cache_hits <- t.cache_hits + 1;
          Some
            {
              Frame.r_job_id = job.Frame.job_id;
              r_outcome = "optimal";
              r_colors = Some ce.ce_colors;
              r_coloring = Some (Array.copy ce.ce_coloring);
              r_winner = ce.ce_winner;
              r_certified = true;
              r_detail = "served from the result cache (re-certified)";
              r_time = ce.ce_time;
              r_replayed = false;
            }
        | Error f ->
          loud "cache entry %s REJECTED (%s): dropped, re-solving" digest
            (Certify.failure_to_string f);
          cache_drop t digest;
          None))

(* cache entries ride in the job journal with [__cache__]-prefixed keys:
   they inherit its durability ladder and crash-replay for free, and
   rotation's latest-record-per-key compaction preserves them *)
let cache_load t =
  if t.cfg.cache then begin
    let plen = String.length cache_key_prefix in
    List.iter
      (fun r ->
        match List.assoc_opt "key" r with
        | Some k
          when String.length k > plen && String.sub k 0 plen = cache_key_prefix
          -> (
          let digest = String.sub k plen (String.length k - plen) in
          let field name =
            Option.value ~default:"" (List.assoc_opt name r)
          in
          match field "state" with
          | "entry" -> (
            match
              (int_of_string_opt (field "colors"),
               coloring_of_string (field "coloring"))
            with
            | Some c, Some col ->
              Hashtbl.replace t.cache_tbl digest
                {
                  ce_colors = c;
                  ce_coloring = col;
                  ce_winner =
                    (match field "winner" with "" -> None | w -> Some w);
                  ce_time =
                    Option.value ~default:0.0
                      (float_of_string_opt (field "time"));
                }
            | _ -> Hashtbl.remove t.cache_tbl digest)
          | _ -> Hashtbl.remove t.cache_tbl digest)
        | _ -> ())
      (Journal.records t.journal);
    if Hashtbl.length t.cache_tbl > 0 then
      log t "cache: loaded %d entr%s from the journal"
        (Hashtbl.length t.cache_tbl)
        (if Hashtbl.length t.cache_tbl = 1 then "y" else "ies")
  end

(* ---------- journal replay (daemon restart) ---------- *)

let field r name = Option.value ~default:"" (List.assoc_opt name r)

let float_field r name d =
  match float_of_string_opt (field r name) with Some f -> f | None -> d

let int_opt_field r name = int_of_string_opt (field r name)

let job_of_fields job_id r : Frame.job =
  {
    Frame.job_id;
    dimacs = field r "dimacs";
    j_k = int_opt_field r "k";
    deadline = float_field r "deadline" 0.0;
    strategies = field r "strategies";
    sbp = field r "sbp";
    instance_dependent = field r "isd" <> "false";
    j_seed = Option.value ~default:0 (int_opt_field r "seed");
  }

let result_of_fields job_id r : Frame.job_result =
  {
    Frame.r_job_id = job_id;
    r_outcome = (match field r "outcome" with "" -> "failed" | o -> o);
    r_colors = int_opt_field r "colors";
    r_coloring = coloring_of_string (field r "coloring");
    r_winner = (match field r "winner" with "" -> None | w -> Some w);
    r_certified = field r "certified" = "true";
    r_detail = field r "detail";
    r_time = float_field r "time" 0.0;
    r_replayed = true;
  }

let replay t =
  (* keys in order of first appearance, so the requeue order of a restarted
     daemon matches the order the jobs were originally accepted *)
  let seen = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun r ->
      match List.assoc_opt "key" r with
      | Some k when (not (internal_key k)) && not (Hashtbl.mem seen k) ->
        Hashtbl.add seen k ();
        order := k :: !order
      | _ -> ())
    (Journal.records t.journal);
  List.iter
    (fun key ->
      match Journal.find t.journal key with
      | None -> ()
      | Some r -> (
        match field r "state" with
        | "done" | "failed" ->
          Hashtbl.replace t.jobs key
            {
              job = job_of_fields key r;
              accepted_at = float_field r "accepted_at" 0.0;
              state = Finished (result_of_fields key r);
              resume = false;
              attempts = 0;
              waiters = [];
              co_ids = [];
            }
        | "accepted" | "running" ->
          (* an accepted job the dead daemon never finished: requeue it,
             warm (its checkpoints may hold the search progress) *)
          Hashtbl.replace t.jobs key
            {
              job = job_of_fields key r;
              accepted_at = float_field r "accepted_at" (Unix.gettimeofday ());
              state = Queued;
              resume = true;
              attempts =
                Option.value ~default:0 (int_opt_field r "attempts");
              waiters = [];
              co_ids = [];
            };
          Queue.add key t.queue;
          log t "replay: requeued in-flight job %s" key
        | _ -> ()))
    (List.rev !order)

(* ---------- incremental-session persistence ---------- *)

(* Journal layout: one latest-wins control record per session under
   [__sess__<sid>] (open, with the capacities and the wall-clock lease
   expiry; or closed/expired/evicted as a tombstone), plus one append-only
   record per edit under [__sess__<sid>#<seq>]. Edit keys are distinct per
   sequence number, so rotation's per-key compaction keeps each of them —
   and the journal's [retain] classifier drops a dead session's whole
   stream (control record and edits alike) at the next rotation, instead
   of letting tombstoned streams accumulate forever. *)

let sess_key_prefix = "__sess__"

let sess_ctrl_key sid = sess_key_prefix ^ sid
let sess_edit_key sid seq = Printf.sprintf "%s%s#%d" sess_key_prefix sid seq

(* [Some (sid, None)] for a control key, [Some (sid, Some seq)] for an edit
   key, [None] for keys outside the session namespace *)
let sess_sid_of_key k =
  let pl = String.length sess_key_prefix in
  if String.length k > pl && String.sub k 0 pl = sess_key_prefix then
    let rest = String.sub k pl (String.length k - pl) in
    match String.index_opt rest '#' with
    | None -> Some (rest, None)
    | Some i ->
      let sid = String.sub rest 0 i in
      let seq = String.sub rest (i + 1) (String.length rest - i - 1) in
      Some (sid, Some (Option.value ~default:(-1) (int_of_string_opt seq)))
  else None

let sess_label sid = "sess-" ^ sid

let sess_open_record ss =
  let cap = Session.capacity ss.ss_s in
  [
    ("key", sess_ctrl_key ss.ss_sid);
    ("state", "open");
    ("vertices", string_of_int cap.Session.max_vertices);
    ("colors", string_of_int cap.Session.max_colors);
    ("edges", string_of_int cap.Session.max_edges);
    ("lease", Printf.sprintf "%.3f" ss.ss_lease);
    ("expires", Printf.sprintf "%.3f" ss.ss_expires);
  ]

let sess_tombstone_record sid fate =
  [
    ("key", sess_ctrl_key sid);
    ("state",
     match fate with
     | Sess_closed -> "closed"
     | Sess_expired_f -> "expired"
     | Sess_evicted_f -> "evicted");
  ]

let sess_snapshot_path t ss =
  Checkpoint.snapshot_path ~dir:t.cfg.ckpt_dir ~label:(sess_label ss.ss_sid)
    ~engine:(Types.engine_name (Session.engine_kind ss.ss_s))
    ~k:0 (* one file per session; [sn_k] carries the covered seq *)

(* Snapshot = warm engine state + the proof prefix that accounts for it,
   stamped with the formula digest and the sequence number it covers.
   Recovery replays the edit log up to [sn_k], checks the digest matches,
   and only then re-installs the warm state — a snapshot is an
   optimization, so any failure here (I/O or mismatch) degrades to a cold
   replay, never to wrong state. *)
let sess_snapshot t ss =
  let sv, steps = Session.capture ss.ss_s in
  let sn =
    {
      Checkpoint.sn_label = sess_label ss.ss_sid;
      sn_k = ss.ss_last_seq;
      sn_digest = Session.digest ss.ss_s;
      sn_incumbent = None;
      sn_engine = sv;
      sn_proof = steps;
      sn_prng = None;
    }
  in
  ss.ss_since_snap <- 0;
  match Checkpoint.write (sess_snapshot_path t ss) sn with
  | () -> ()
  | exception Unix.Unix_error (err, fn, _) ->
    log t "session %s: snapshot failed (%s: %s)" ss.ss_sid fn
      (Unix.error_message err)

let sess_reap_snapshots t sid =
  ignore
    (Checkpoint.reap_label ~dir:t.cfg.ckpt_dir ~label:(sess_label sid) : int)

(* retire a session with a journaled tombstone; the next rotation GCs its
   whole record stream via the retain classifier *)
let sess_retire t ss fate =
  commit t (sess_tombstone_record ss.ss_sid fate);
  Hashtbl.remove t.sessions ss.ss_sid;
  Hashtbl.replace t.sess_gone ss.ss_sid fate;
  sess_reap_snapshots t ss.ss_sid;
  (match fate with
  | Sess_closed -> ()
  | Sess_expired_f -> t.sess_expired <- t.sess_expired + 1
  | Sess_evicted_f -> t.sess_evicted <- t.sess_evicted + 1);
  log t "session %s %s (%d open)" ss.ss_sid
    (match fate with
    | Sess_closed -> "closed"
    | Sess_expired_f -> "expired"
    | Sess_evicted_f -> "evicted")
    (Hashtbl.length t.sessions)

(* lease sweep: sessions idle past their wall-clock expiry are reaped with
   a typed tombstone, so a client that went away cannot pin a warm engine
   (and its learned-clause DB) forever *)
let sweep_sessions t =
  let now = Unix.gettimeofday () in
  let expired =
    Hashtbl.fold
      (fun _ ss acc -> if ss.ss_expires <= now then ss :: acc else acc)
      t.sessions []
  in
  List.iter (fun ss -> sess_retire t ss Sess_expired_f) expired

(* bounded session count: shedding the least-recently-touched session is
   the session tier of the degradation ladder — admission capacity returns
   immediately, at the price of one client's warm state *)
let sess_evict_lru t =
  let victim =
    Hashtbl.fold
      (fun _ ss acc ->
        match acc with
        | Some best when best.ss_touched <= ss.ss_touched -> acc
        | _ -> Some ss)
      t.sessions None
  in
  match victim with
  | Some ss -> sess_retire t ss Sess_evicted_f
  | None -> ()

let sess_touch _t ss =
  ss.ss_touched <- Mclock.now ();
  ss.ss_expires <- Unix.gettimeofday () +. ss.ss_lease

(* ---------- session recovery (daemon restart) ---------- *)

(* Rebuild every open session from the journal: create a fresh session
   with the journaled capacities and replay its edit records in sequence
   order. If a snapshot exists, replay pauses at the sequence number the
   snapshot covers, verifies the formula digest, re-installs the warm
   engine (learned clauses, activities, proof prefix), and only then
   applies the edit-log suffix — so a restarted daemon answers its first
   re-query from warm state. Any snapshot problem degrades to the cold
   replay already in hand. *)
let recover_sessions t =
  let ctrl = Hashtbl.create 8 in
  let edit_log = Hashtbl.create 8 in
  List.iter
    (fun r ->
      match List.assoc_opt "key" r with
      | Some k -> (
        match sess_sid_of_key k with
        | Some (sid, None) -> Hashtbl.replace ctrl sid r
        | Some (sid, Some seq) when seq >= 0 ->
          let prev =
            Option.value ~default:[] (Hashtbl.find_opt edit_log sid)
          in
          Hashtbl.replace edit_log sid ((seq, field r "op") :: prev)
        | _ -> ())
      | None -> ())
    (Journal.records t.journal);
  let now = Unix.gettimeofday () in
  Hashtbl.iter
    (fun sid r ->
      match field r "state" with
      | "closed" -> Hashtbl.replace t.sess_gone sid Sess_closed
      | "expired" -> Hashtbl.replace t.sess_gone sid Sess_expired_f
      | "evicted" -> Hashtbl.replace t.sess_gone sid Sess_evicted_f
      | "open" -> (
        let expires = float_field r "expires" 0.0 in
        if expires <= now then begin
          (* the lease lapsed while we were dead: same outcome as a live
             sweep, journaled so the fate survives the next restart too *)
          commit t (sess_tombstone_record sid Sess_expired_f);
          Hashtbl.replace t.sess_gone sid Sess_expired_f;
          t.sess_expired <- t.sess_expired + 1;
          sess_reap_snapshots t sid;
          log t "session %s: lease lapsed during downtime" sid
        end
        else
          match
            ( int_of_string_opt (field r "vertices"),
              int_of_string_opt (field r "colors"),
              int_of_string_opt (field r "edges") )
          with
          | Some nv, Some nc, Some ne -> (
            match
              Session.create ~proof:true
                {
                  Session.max_vertices = nv;
                  max_colors = nc;
                  max_edges = ne;
                }
            with
            | s ->
              let edits =
                List.sort_uniq
                  (fun (a, _) (b, _) -> compare a b)
                  (Option.value ~default:[] (Hashtbl.find_opt edit_log sid))
              in
              let apply_one (seq, op) =
                match Session.edit_of_string op with
                | Ok e ->
                  (* a rejected edit re-rejects deterministically: replay
                     reaches the same state the live daemon had *)
                  ignore (Session.apply s e : (unit, string) result)
                | Error _ -> log t "session %s: bad journaled op #%d" sid seq
              in
              let last_seq =
                List.fold_left (fun acc (seq, _) -> max acc seq) 0 edits
              in
              let warm =
                match
                  Checkpoint.read
                    (Checkpoint.snapshot_path ~dir:t.cfg.ckpt_dir
                       ~label:(sess_label sid)
                       ~engine:(Types.engine_name (Session.engine_kind s))
                       ~k:0)
                with
                | Error _ ->
                  (* no (or unreadable) snapshot: cold replay of the log *)
                  List.iter apply_one edits;
                  false
                | Ok sn -> (
                  let covered, rest =
                    List.partition (fun (seq, _) -> seq <= sn.Checkpoint.sn_k)
                      edits
                  in
                  List.iter apply_one covered;
                  match
                    Checkpoint.validate sn ~label:(sess_label sid)
                      ~k:sn.Checkpoint.sn_k ~digest:(Session.digest s)
                      ~engine:(Session.engine_kind s)
                      ~nvars:(Session.nvars s)
                  with
                  | Error m ->
                    log t "session %s: stale snapshot (%s); cold replay" sid m;
                    List.iter apply_one rest;
                    false
                  | Ok () -> (
                    match
                      Session.restore_warm s sn.Checkpoint.sn_engine
                        sn.Checkpoint.sn_proof
                    with
                    | Ok () ->
                      List.iter apply_one rest;
                      true
                    | Error m ->
                      log t "session %s: warm restore failed (%s)" sid m;
                      List.iter apply_one rest;
                      false))
              in
              Hashtbl.replace t.sessions sid
                {
                  ss_sid = sid;
                  ss_s = s;
                  ss_lease = float_field r "lease" t.cfg.session_lease;
                  ss_expires = expires;
                  ss_last_seq = last_seq;
                  ss_last_answer = None;
                  ss_since_snap = 0;
                  ss_touched = Mclock.now ();
                };
              t.sess_recovered <- t.sess_recovered + 1;
              log t "session %s: recovered (%d edits replayed%s)" sid
                (List.length edits)
                (if warm then ", warm" else "")
            | exception Invalid_argument m ->
              log t "session %s: unrecoverable capacities (%s)" sid m)
          | _ -> log t "session %s: malformed open record; dropped" sid)
      | _ -> ())
    ctrl

(* ---------- executing one job (shared by pool workers and cold runners) *)

let exec_order cfg (o : Pool.order) : Pool.report =
  let job = o.Pool.o_job in
  let fail detail =
    {
      Pool.rp_outcome = "failed";
      rp_colors = None;
      rp_coloring = None;
      rp_winner = None;
      rp_detail = detail;
      rp_time = 0.0;
      rp_rss_kb = 0;
    }
  in
  match Dimacs_col.parse_result job.Frame.dimacs with
  | Error e ->
    fail
      (Printf.sprintf "malformed instance (line %d): %s" e.Dimacs_col.line
         e.Dimacs_col.message)
  | Ok g -> (
    (* chaos/test hook: pretend the solve is slow, so tests can fill the
       admission queue and open deterministic kill windows *)
    if cfg.hold > 0.0 then Unix.sleepf cfg.hold;
    let k =
      match job.Frame.j_k with Some k -> k | None -> Dsatur.upper_bound g
    in
    let sbp =
      if job.Frame.sbp = "" then Sbp.No_sbp
      else try Sbp.of_name job.Frame.sbp with Invalid_argument _ -> Sbp.No_sbp
    in
    let strategies =
      if job.Frame.strategies = "" then cfg.default_strategies
      else
        match Portfolio.strategies_of_string job.Frame.strategies with
        | Ok l -> l
        | Error _ -> cfg.default_strategies
    in
    Checkpoint.ensure_dir cfg.ckpt_dir;
    let checkpoint =
      Checkpoint.config ~interval:0.5 ~resume:o.Pool.o_resume ~dir:cfg.ckpt_dir
        ()
    in
    match
      Portfolio.solve ~seed:job.Frame.j_seed ~sbp
        ~instance_dependent:job.Frame.instance_dependent
        ~timeout:o.Pool.o_remaining ~checkpoint
        ~checkpoint_label:("job-" ^ job.Frame.job_id) g ~k strategies
    with
    | r ->
      let rp_outcome, rp_colors, rp_coloring =
        match r.Portfolio.outcome with
        | Flow.Optimal c -> ("optimal", Some c, r.Portfolio.coloring)
        | Flow.Best c -> ("best", Some c, r.Portfolio.coloring)
        | Flow.No_coloring -> ("unsat", None, None)
        | Flow.Timed_out -> ("timeout", None, None)
      in
      {
        Pool.rp_outcome;
        rp_colors;
        rp_coloring;
        rp_winner = r.Portfolio.winner;
        rp_detail = "";
        rp_time = r.Portfolio.total_time;
        rp_rss_kb = 0;
      }
    | exception e -> fail ("runner exception: " ^ Printexc.to_string e))

(* the cold path: a single-shot forked runner that executes one order and
   reports over its pipe *)
let runner_child cfg (job : Frame.job) ~resume ~remaining wfd : 'a =
  Frame.ignore_sigpipe ();
  (try Sys.set_signal Sys.sigint Sys.Signal_default with _ -> ());
  (try Sys.set_signal Sys.sigterm Sys.Signal_default with _ -> ());
  let rep =
    exec_order cfg { Pool.o_job = job; o_resume = resume; o_remaining = remaining }
  in
  ignore
    (Frame.write_frame wfd (Marshal.to_string rep [])
      : (unit, Frame.io_error) result);
  Unix._exit 0

(* ---------- daemon-side result construction ---------- *)

(* The runner already supervises and certifies its workers, but the daemon
   trusts no forked process: any claimed coloring is re-certified here,
   against the daemon's own parse of the instance, before the result is
   journaled or delivered. *)
let result_of_report js (rep : Pool.report) : Frame.job_result =
  let mk ~outcome ~colors ~coloring ~certified ~detail =
    {
      Frame.r_job_id = js.job.Frame.job_id;
      r_outcome = outcome;
      r_colors = colors;
      r_coloring = coloring;
      r_winner = rep.Pool.rp_winner;
      r_certified = certified;
      r_detail = detail;
      r_time = rep.Pool.rp_time;
      r_replayed = false;
    }
  in
  let failed detail =
    mk ~outcome:"failed" ~colors:None ~coloring:None ~certified:false ~detail
  in
  match rep.Pool.rp_outcome with
  | ("optimal" | "best") as o -> (
    match (rep.Pool.rp_colors, rep.Pool.rp_coloring) with
    | Some c, Some col -> (
      match Dimacs_col.parse_result js.job.Frame.dimacs with
      | Error _ -> failed "instance no longer parses at certification time"
      | Ok g -> (
        match Certify.coloring g ~k:c ~claimed:c col with
        | Ok () ->
          mk ~outcome:o ~colors:(Some c) ~coloring:(Some col) ~certified:true
            ~detail:""
        | Error f ->
          failed
            ("daemon re-certification failed: " ^ Certify.failure_to_string f)))
    | _ -> failed "runner claimed a coloring it did not return")
  | "unsat" ->
    mk ~outcome:"unsat" ~colors:None ~coloring:None ~certified:true
      ~detail:"refutation replayed by the job supervisor"
  | "timeout" ->
    mk ~outcome:"timeout" ~colors:None ~coloring:None ~certified:false
      ~detail:"solve budget exhausted"
  | "failed" -> failed rep.Pool.rp_detail
  | o -> failed ("runner reported unknown outcome " ^ o)

let timeout_result js detail =
  {
    Frame.r_job_id = js.job.Frame.job_id;
    r_outcome = "timeout";
    r_colors = None;
    r_coloring = None;
    r_winner = None;
    r_certified = false;
    r_detail = detail;
    r_time = js.job.Frame.deadline;
    r_replayed = false;
  }

(* ---------- connection plumbing ---------- *)

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let close_conn t c =
  t.conns <- List.filter (fun x -> x.c_fd != c.c_fd) t.conns;
  (match c.c_job with
  | Some id -> (
    match Hashtbl.find_opt t.jobs id with
    | Some js ->
      js.waiters <- List.filter (fun fd -> fd != c.c_fd) js.waiters
    | None -> ())
  | None -> ());
  close_quiet c.c_fd

let send_response t c resp =
  let deadline = Mclock.now () +. t.cfg.io_timeout in
  match Frame.write_frame ~deadline c.c_fd (Frame.encode_response resp) with
  | Ok () -> true
  | Error e ->
    log t "dropping connection: %s" (Frame.io_error_to_string e);
    close_conn t c;
    false

(* deliver a finished result to everyone waiting on the job *)
let deliver t js result =
  let waiting = js.waiters in
  js.waiters <- [];
  List.iter
    (fun fd ->
      match List.find_opt (fun c -> c.c_fd == fd) t.conns with
      | Some c ->
        c.c_job <- None;
        ignore (send_response t c (Frame.Result result) : bool)
      | None -> ())
    waiting

let start_drain t reason =
  if not t.draining then begin
    t.draining <- true;
    t.drain_started <- Mclock.now ();
    log t "draining (%s)" reason;
    (match t.listen_fd with
    | Some fd ->
      close_quiet fd;
      t.listen_fd <- None;
      (match sockaddr_of_spec t.cfg.socket with
      | Unix.ADDR_UNIX path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
      | _ -> ())
    | None -> ())
  end

let rec finalize t js result =
  let id = js.job.Frame.job_id in
  journal_result t js result;
  js.state <- Finished result;
  deliver t js result;
  t.completed <- t.completed + 1;
  cache_store t js result;
  (* the job is terminal: its snapshots are garbage now — reap them so
     per-job checkpoints cannot accumulate across daemon lives *)
  ignore (Checkpoint.reap_label ~dir:t.cfg.ckpt_dir ~label:("job-" ^ id) : int);
  log t "job %s: %s%s" id result.Frame.r_outcome
    (match result.Frame.r_colors with
    | Some c -> Printf.sprintf " (%d colors)" c
    | None -> "");
  let digest = digest_of_job js.job in
  (match Hashtbl.find_opt t.inflight digest with
  | Some id' when String.equal id' id -> Hashtbl.remove t.inflight digest
  | _ -> ());
  (* settle the duplicates that coalesced onto this solve *)
  let cos = List.rev js.co_ids (* oldest first *) in
  js.co_ids <- [];
  (match result.Frame.r_outcome with
  | "optimal" | "best" | "unsat" ->
    (* one solve, N certified replies: each duplicate gets the same result
       under its own id, journaled terminally under its own key *)
    List.iter
      (fun co_id ->
        match Hashtbl.find_opt t.jobs co_id with
        | Some ({ state = Coalesced _; _ } as co_js) ->
          finalize t co_js { result with Frame.r_job_id = co_id }
        | _ -> ())
      cos
  | _ ->
    (* the representative failed or timed out under ITS budget; the
       duplicates may still have budget of their own — requeue them
       independently (the first one dispatched becomes the new
       representative and the rest re-coalesce onto it) *)
    List.iter
      (fun co_id ->
        match Hashtbl.find_opt t.jobs co_id with
        | Some ({ state = Coalesced _; _ } as co_js) ->
          co_js.state <- Queued;
          Queue.add co_id t.queue;
          log t "job %s: representative %s did not finish (%s); requeued"
            co_id id result.Frame.r_outcome
        | _ -> ())
      cos);
  match t.cfg.max_jobs with
  | Some n when t.completed >= n -> start_drain t "max jobs reached"
  | _ -> ()

(* ---------- admission ---------- *)

let queued_count t =
  Hashtbl.fold
    (fun _ js n -> match js.state with Queued -> n + 1 | _ -> n)
    t.jobs 0

let running_jobs t =
  Hashtbl.fold
    (fun _ js acc -> match js.state with Running _ -> js :: acc | _ -> acc)
    t.jobs []

let validate_job (job : Frame.job) =
  if job.Frame.job_id = "" then Error "empty job id"
  else if String.length job.Frame.job_id > 200 then Error "job id too long"
  else
    match Dimacs_col.parse_result job.Frame.dimacs with
    | Error e ->
      Error
        (Printf.sprintf "malformed instance (line %d): %s" e.Dimacs_col.line
           e.Dimacs_col.message)
    | Ok _ -> (
      (if job.Frame.sbp = "" then Ok ()
       else
         match Sbp.of_name job.Frame.sbp with
         | _ -> Ok ()
         | exception Invalid_argument m -> Error m)
      |> function
      | Error _ as e -> e
      | Ok () ->
        if job.Frame.strategies = "" then Ok ()
        else
          Result.map (fun _ -> ())
            (Portfolio.strategies_of_string job.Frame.strategies))

let handle_submit t c (job : Frame.job) =
  let id = job.Frame.job_id in
  match Hashtbl.find_opt t.jobs id with
  | Some { state = Finished r; _ } ->
    (* idempotent re-delivery: same job id, same journaled answer. Counts
       toward max_jobs like a fresh completion, so a restarted smoke-test
       daemon still drains after serving its quota. *)
    ignore (send_response t c (Frame.Result { r with Frame.r_replayed = true })
             : bool);
    t.completed <- t.completed + 1;
    (match t.cfg.max_jobs with
    | Some n when t.completed >= n -> start_drain t "max jobs reached"
    | _ -> ())
  | Some js ->
    (* already accepted (possibly by a previous life of the daemon, possibly
       coalesced onto another solve): attach this connection as a waiter *)
    if send_response t c (Frame.Accepted id) then begin
      c.c_job <- Some id;
      js.waiters <- c.c_fd :: js.waiters
    end
  | None -> (
    match validate_job job with
    | Error reason ->
      ignore (send_response t c (Frame.Rejected { rj_job_id = id; reason })
               : bool)
    | Ok () -> (
      match t.durability with
      | Degraded reason ->
        (* cannot journal an acceptance -> cannot honor the crash-recovery
           contract -> shed at admission, typed and loud-but-bounded *)
        log t "job %s shed: durability degraded (%s)" id (reason_name reason);
        ignore
          (send_response t c
             (Frame.Unavailable
                {
                  u_reason =
                    Printf.sprintf "durability degraded (%s): %s"
                      (reason_name reason) t.last_io_error;
                })
            : bool)
      | Durable ->
        let queued = queued_count t in
        if queued >= t.cfg.max_queue then begin
          (* bounded admission: shed, never queue unboundedly *)
          journal_shed t id;
          log t "job %s shed (queue %d/%d)" id queued t.cfg.max_queue;
          ignore
            (send_response t c
               (Frame.Overloaded { queued; capacity = t.cfg.max_queue })
              : bool)
        end
        else begin
          let js =
            {
              job;
              accepted_at = Unix.gettimeofday ();
              state = Queued;
              resume = false;
              attempts = 0;
              waiters = [];
              co_ids = [];
            }
          in
          match journal_accept_strict t js with
          | () ->
            Hashtbl.replace t.jobs id js;
            Queue.add id t.queue;
            log t "job %s accepted (deadline %.1fs, queue %d/%d)" id
              job.Frame.deadline (queued + 1) t.cfg.max_queue;
            if send_response t c (Frame.Accepted id) then begin
              c.c_job <- Some id;
              js.waiters <- c.c_fd :: js.waiters
            end
          | exception Unix.Unix_error (err, fn, _) ->
            (* the job was never admitted: roll back (nothing was queued)
               and answer with the typed degradation. The failed append may
               still have LANDED (write ok, fsync refused), so buffer a
               compensating shed record — otherwise the journal could
               resolve this key to a permanent, in-flight-looking
               "accepted" for a job we told the client we refused *)
            enter_degraded t err fn;
            journal_shed t id;
            ignore
              (send_response t c
                 (Frame.Unavailable
                    {
                      u_reason =
                        Printf.sprintf "durability degraded (%s): %s"
                          (reason_name (classify_errno err))
                          t.last_io_error;
                    })
                : bool)
        end))

(* ---------- session frame handlers ---------- *)

(* the variable universe is allocated up front, so unvalidated capacities
   would be a memory bomb; bound the x-grid and the edge pool *)
let sess_max_grid = 1 lsl 20
let sess_max_edge_slots = 1 lsl 20

let validate_sess_open ~sid ~vertices ~colors ~edges =
  if sid = "" then Error "empty session id"
  else if String.length sid > 200 then Error "session id too long"
  else if String.contains sid '#' then Error "session id may not contain '#'"
  else if vertices < 1 || colors < 1 || edges < 0 then
    Error "capacities must be positive"
  else if vertices * colors > sess_max_grid then
    Error
      (Printf.sprintf "vertex*color capacity %d exceeds the %d bound"
         (vertices * colors) sess_max_grid)
  else if edges > sess_max_edge_slots then
    Error (Printf.sprintf "edge capacity exceeds the %d bound"
             sess_max_edge_slots)
  else Ok ()

(* a frame for a session we no longer hold: answer with the reason it is
   gone, so clients can distinguish "open a fresh session and replay" (the
   permanent Sess_expired / Sess_evicted) from a plain bad request *)
let sess_gone_response t sid =
  match Hashtbl.find_opt t.sess_gone sid with
  | Some Sess_expired_f -> Frame.Sess_expired { sx_sid = sid }
  | Some Sess_evicted_f -> Frame.Sess_evicted { sv_sid = sid }
  | Some Sess_closed ->
    Frame.Rejected { rj_job_id = sid; reason = "session closed" }
  | None -> Frame.Rejected { rj_job_id = sid; reason = "unknown session" }

let unavailable t reason_txt =
  Frame.Unavailable
    {
      u_reason =
        Printf.sprintf "durability degraded (%s): %s" reason_txt
          t.last_io_error;
    }

let handle_sess_open t c ~sid ~vertices ~colors ~edges ~lease =
  match Hashtbl.find_opt t.sessions sid with
  | Some ss ->
    (* idempotent reopen: refresh the lease, report where the stream is *)
    sess_touch t ss;
    t.sess_replayed <- t.sess_replayed + 1;
    ignore
      (send_response t c
         (Frame.Sess_ok
            { sk_sid = sid; sk_seq = ss.ss_last_seq; sk_replayed = true })
        : bool)
  | None -> (
    match validate_sess_open ~sid ~vertices ~colors ~edges with
    | Error reason ->
      ignore
        (send_response t c (Frame.Rejected { rj_job_id = sid; reason })
          : bool)
    | Ok () -> (
      match t.durability with
      | Degraded reason ->
        (* an open whose journal record cannot land would vanish at the
           next crash while the client believes it exists: shed, typed *)
        ignore (send_response t c (unavailable t (reason_name reason)) : bool)
      | Durable ->
        while Hashtbl.length t.sessions >= t.cfg.max_sessions do
          sess_evict_lru t
        done;
        let lease =
          if lease > 0.0 then Float.min lease 3600.0 else t.cfg.session_lease
        in
        let ss =
          {
            ss_sid = sid;
            ss_s =
              Session.create ~proof:true
                {
                  Session.max_vertices = vertices;
                  max_colors = colors;
                  max_edges = edges;
                };
            ss_lease = lease;
            ss_expires = Unix.gettimeofday () +. lease;
            ss_last_seq = 0;
            ss_last_answer = None;
            ss_since_snap = 0;
            ss_touched = Mclock.now ();
          }
        in
        (* WAL before state: strict append, like job admission *)
        (match Journal.append t.journal (sess_open_record ss) with
        | () ->
          Hashtbl.replace t.sessions sid ss;
          Hashtbl.remove t.sess_gone sid;
          log t "session %s opened (%dv x %dc, %d edge slots, lease %.0fs)"
            sid vertices colors edges lease;
          ignore
            (send_response t c
               (Frame.Sess_ok { sk_sid = sid; sk_seq = 0; sk_replayed = false })
              : bool)
        | exception Unix.Unix_error (err, fn, _) ->
          enter_degraded t err fn;
          (* the append may have LANDED despite the error: buffer a
             compensating tombstone so a replay cannot resurrect a session
             the client was told we refused *)
          commit t (sess_tombstone_record sid Sess_closed);
          ignore
            (send_response t c (unavailable t (reason_name (classify_errno err)))
              : bool))))

let handle_sess_edit t c (e : Frame.session_edit) =
  let sid = e.Frame.se_sid in
  match Hashtbl.find_opt t.sessions sid with
  | None -> ignore (send_response t c (sess_gone_response t sid) : bool)
  | Some ss -> (
    sess_touch t ss;
    if e.Frame.se_seq <= ss.ss_last_seq then begin
      (* an at-least-once retry of a frame we already consumed: answer
         idempotently, do not re-apply *)
      t.sess_replayed <- t.sess_replayed + 1;
      ignore
        (send_response t c
           (Frame.Sess_ok
              { sk_sid = sid; sk_seq = e.Frame.se_seq; sk_replayed = true })
          : bool)
    end
    else
      match Session.edit_of_string e.Frame.se_op with
      | Error reason ->
        ignore
          (send_response t c (Frame.Rejected { rj_job_id = sid; reason })
            : bool)
      | Ok edit -> (
        match t.durability with
        | Degraded reason ->
          (* WAL discipline: an edit that cannot be journaled is not
             applied — otherwise a crash would silently lose it *)
          ignore
            (send_response t c (unavailable t (reason_name reason)) : bool)
        | Durable -> (
          match
            Journal.append t.journal
              [
                ("key", sess_edit_key sid e.Frame.se_seq);
                ("state", "edit");
                ("op", e.Frame.se_op);
              ]
          with
          | exception Unix.Unix_error (err, fn, _) ->
            enter_degraded t err fn;
            ignore
              (send_response t c
                 (unavailable t (reason_name (classify_errno err)))
                : bool)
          | () -> (
            ss.ss_last_seq <- e.Frame.se_seq;
            match Session.apply ss.ss_s edit with
            | Ok () ->
              ss.ss_since_snap <- ss.ss_since_snap + 1;
              if ss.ss_since_snap >= t.cfg.session_snap_edits then
                sess_snapshot t ss;
              ignore
                (send_response t c
                   (Frame.Sess_ok
                      {
                        sk_sid = sid;
                        sk_seq = e.Frame.se_seq;
                        sk_replayed = false;
                      })
                  : bool)
            | Error reason ->
              (* journaled but rejected: replay re-rejects this record
                 deterministically, so recovered state still matches *)
              ignore
                (send_response t c (Frame.Rejected { rj_job_id = sid; reason })
                  : bool)))))

let handle_sess_query t c (q : Frame.session_query) =
  let sid = q.Frame.sq_sid in
  match Hashtbl.find_opt t.sessions sid with
  | None -> ignore (send_response t c (sess_gone_response t sid) : bool)
  | Some ss -> (
    sess_touch t ss;
    match ss.ss_last_answer with
    | Some a when q.Frame.sq_seq <= ss.ss_last_seq && a.Frame.sa_seq = q.Frame.sq_seq ->
      (* duplicate of the answered query: re-deliver, do not re-solve *)
      t.sess_replayed <- t.sess_replayed + 1;
      ignore
        (send_response t c
           (Frame.Sess_answer { a with Frame.sa_replayed = true })
          : bool)
    | _ -> (
      let seconds =
        if q.Frame.sq_budget > 0.0 then Float.min q.Frame.sq_budget 600.0
        else 30.0
      in
      (* NOTE: the solve runs synchronously in the select loop — queued
         connections wait. Sessions trade this for warm-engine latency;
         the budget above bounds the stall. *)
      match
        Session.query ~budget:(Types.within_seconds seconds) ss.ss_s
      with
      | Error reason ->
        ignore
          (send_response t c (Frame.Rejected { rj_job_id = sid; reason })
            : bool)
      | Ok ans ->
        ss.ss_last_seq <- max ss.ss_last_seq q.Frame.sq_seq;
        let sa =
          {
            Frame.sa_sid = sid;
            sa_seq = q.Frame.sq_seq;
            sa_chi = ans.Session.chi;
            sa_coloring = ans.Session.coloring;
            sa_certified = ans.Session.certified && ans.Session.core_ok;
            sa_incremental = ans.Session.incremental;
            sa_time = ans.Session.time;
            sa_replayed = false;
          }
        in
        ss.ss_last_answer <- Some sa;
        (* queries are where warm state accrues (learned clauses, proof
           prefix): snapshot now so a crash right after still recovers
           warm *)
        sess_snapshot t ss;
        log t "session %s: chi=%d (%s, %.3fs)" sid ans.Session.chi
          (if ans.Session.incremental then "incremental" else "cold")
          ans.Session.time;
        ignore (send_response t c (Frame.Sess_answer sa) : bool)))

let handle_sess_close t c sid =
  match Hashtbl.find_opt t.sessions sid with
  | Some ss ->
    let seq = ss.ss_last_seq in
    sess_retire t ss Sess_closed;
    ignore
      (send_response t c
         (Frame.Sess_ok { sk_sid = sid; sk_seq = seq; sk_replayed = false })
        : bool)
  | None ->
    (* idempotent: closing an already-gone session succeeds (still typed
       for expiry/eviction so the client learns why its state is gone) *)
    let resp =
      match Hashtbl.find_opt t.sess_gone sid with
      | Some Sess_expired_f -> Frame.Sess_expired { sx_sid = sid }
      | Some Sess_evicted_f -> Frame.Sess_evicted { sv_sid = sid }
      | Some Sess_closed | None ->
        Frame.Sess_ok { sk_sid = sid; sk_seq = 0; sk_replayed = true }
    in
    ignore (send_response t c resp : bool)

let health_report t =
  let ps =
    match t.pool with
    | Some p -> Pool.stats p
    | None ->
      {
        Pool.warm = 0;
        busy = 0;
        recycling = 0;
        restarts = 0;
        recycles = 0;
        is_breaker_open = false;
      }
  in
  {
    Frame.h_queued = queued_count t;
    h_running = List.length (running_jobs t);
    h_completed = t.completed;
    h_uptime = Mclock.now () -. t.started_at;
    h_durability = durability_string t;
    h_restarts = max 0 (t.lives - 1);
    h_last_io_error = t.last_io_error;
    h_pending_journal = List.length t.pending;
    h_pool_warm = ps.Pool.warm;
    h_pool_busy = ps.Pool.busy;
    h_pool_recycling = ps.Pool.recycling;
    h_pool_restarts = ps.Pool.restarts;
    h_pool_recycles = ps.Pool.recycles;
    h_cache_hits = t.cache_hits;
    h_cache_misses = t.cache_misses;
    h_coalesced = t.coalesced;
    h_peers = t.cfg.peers;
    h_sess_open = Hashtbl.length t.sessions;
    h_sess_evicted = t.sess_evicted;
    h_sess_expired = t.sess_expired;
    h_sess_replayed = t.sess_replayed;
    h_sess_recovered = t.sess_recovered;
  }

let handle_payload t c payload =
  match Frame.decode_request payload with
  | Ok (Frame.Submit job) -> handle_submit t c job
  | Ok Frame.Ping -> ignore (send_response t c Frame.Pong : bool)
  | Ok Frame.Health ->
    ignore (send_response t c (Frame.Health_report (health_report t)) : bool)
  | Ok (Frame.Sess_open { so_sid; so_vertices; so_colors; so_edges; so_lease })
    ->
    handle_sess_open t c ~sid:so_sid ~vertices:so_vertices ~colors:so_colors
      ~edges:so_edges ~lease:so_lease
  | Ok (Frame.Sess_edit e) -> handle_sess_edit t c e
  | Ok (Frame.Sess_query q) -> handle_sess_query t c q
  | Ok (Frame.Sess_close { sc_sid }) -> handle_sess_close t c sc_sid
  | Error e ->
    (* a checksummed frame carrying the wrong or an unknown message: tell
       the peer (best-effort) and drop it *)
    ignore
      (send_response t c
         (Frame.Rejected
            {
              rj_job_id = "";
              reason = "bad request: " ^ Frame.error_to_string e;
            })
        : bool);
    close_conn t c

let handle_conn_readable t c =
  let buf = Bytes.create 65536 in
  let rec rd () =
    match Unix.read c.c_fd buf 0 (Bytes.length buf) with
    | 0 -> `Eof
    | n ->
      Frame.feed c.c_dec buf n;
      (match Frame.state c.c_dec with Frame.Awaiting -> rd () | _ -> `Go)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      `Go
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> rd ()
    | exception Unix.Unix_error (_, _, _) -> `Eof
  in
  match rd () with
  | `Eof ->
    (* client disconnect: mid-frame it never submitted anything; after a
       submit the job lives on, journaled, for an idempotent re-fetch *)
    close_conn t c
  | `Go -> (
    match Frame.state c.c_dec with
    | Frame.Awaiting -> ()
    | Frame.Got payload ->
      Frame.reset c.c_dec;
      c.c_last <- Mclock.now ();
      handle_payload t c payload
    | Frame.Failed e ->
      log t "garbage from client: %s" (Frame.error_to_string e);
      ignore
        (send_response t c
           (Frame.Rejected
              {
                rj_job_id = "";
                reason = "garbage frame: " ^ Frame.error_to_string e;
              })
          : bool);
      (* close_conn may already have run inside a failed send *)
      if List.exists (fun x -> x.c_fd == c.c_fd) t.conns then close_conn t c)

(* ---------- runner supervision ---------- *)

let reap pid =
  let rec go () =
    match Unix.waitpid [] pid with
    | _, st -> st
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> Unix.WEXITED 0
  in
  go ()

let kill_quiet pid = try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()

(* the execution vehicle died under the job (cold runner crash, pool worker
   crash/garble): requeue once, warm — then a typed failure *)
let job_failed t js reason =
  match js.state with
  | Running e ->
    (match e with Cold rn -> close_quiet rn.rn_fd | Warm _ -> ());
    if js.attempts <= 2 then begin
      js.resume <- true;
      js.state <- Queued;
      journal_job t js "accepted";
      Queue.add js.job.Frame.job_id t.queue;
      log t "job %s: runner failed (%s); requeued warm" js.job.Frame.job_id
        reason
    end
    else
      finalize t js
        {
          Frame.r_job_id = js.job.Frame.job_id;
          r_outcome = "failed";
          r_colors = None;
          r_coloring = None;
          r_winner = None;
          r_certified = false;
          r_detail = "job runner failed repeatedly: " ^ reason;
          r_time = 0.0;
          r_replayed = false;
        }
  | _ -> ()

let spawn_cold t js ~remaining ~kill_at =
  let r, w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
    close_quiet r;
    (match t.listen_fd with Some fd -> close_quiet fd | None -> ());
    (match t.pool with Some p -> Pool.close_fds_in_child p | None -> ());
    List.iter (fun c -> close_quiet c.c_fd) t.conns;
    List.iter
      (fun js' ->
        match js'.state with
        | Running (Cold rn) -> close_quiet rn.rn_fd
        | _ -> ())
      (running_jobs t);
    runner_child t.cfg js.job ~resume:js.resume ~remaining w
  | pid ->
    close_quiet w;
    Unix.set_nonblock r;
    js.state <-
      Running
        (Cold
           {
             rn_pid = pid;
             rn_fd = r;
             rn_dec = Frame.decoder ();
             rn_kill_at = kill_at;
             rn_eof = false;
           });
    log t "job %s running cold (pid %d, %.1fs remaining%s)"
      js.job.Frame.job_id pid remaining
      (if js.resume then ", warm resume" else "")

(* Route one queued job: typed timeout if its budget is spent, a certified
   cache hit if the digest is cached, coalesce onto an identical in-flight
   solve, else dispatch — warm through the pool when it has an idle worker,
   cold-forked when the pool is disabled or its breaker is open.
   [`No_capacity] leaves the job at the queue head (the pool is saturated
   or respawning; capacity returns within a backoff). *)
let rec start_job t js =
  let id = js.job.Frame.job_id in
  let now_wall = Unix.gettimeofday () in
  let remaining = js.job.Frame.deadline -. (now_wall -. js.accepted_at) in
  if remaining <= 0.0 then begin
    (* deadline already spent (a zero deadline, or wall time consumed
       across a crash): typed timeout, no dispatch *)
    finalize t js
      (timeout_result js "deadline exhausted before the solve could start");
    `Started
  end
  else
    let digest = digest_of_job js.job in
    match cache_lookup t js.job digest with
    | Some result ->
      log t "job %s: cache hit (%s)" id digest;
      finalize t js result;
      `Started
    | None -> (
      match Hashtbl.find_opt t.inflight digest with
      | Some rep_id when not (String.equal rep_id id) -> (
        match Hashtbl.find_opt t.jobs rep_id with
        | Some ({ state = Queued | Running _; _ } as rep) ->
          (* an identical solve is already in flight: one solve, N replies *)
          rep.co_ids <- id :: rep.co_ids;
          js.state <- Coalesced rep_id;
          t.coalesced <- t.coalesced + 1;
          log t "job %s coalesced onto %s" id rep_id;
          `Started
        | _ ->
          (* stale index entry: reclaim it and dispatch below *)
          Hashtbl.remove t.inflight digest;
          dispatch_job t js ~digest ~remaining
        )
      | _ -> dispatch_job t js ~digest ~remaining)

and dispatch_job t js ~digest ~remaining =
  let id = js.job.Frame.job_id in
  let kill_at = Mclock.now () +. remaining +. t.cfg.grace +. t.cfg.hold in
  let order =
    { Pool.o_job = js.job; o_resume = js.resume; o_remaining = remaining }
  in
  let admit () =
    js.attempts <- js.attempts + 1;
    if t.cfg.cache && js.attempts = 1 then
      t.cache_misses <- t.cache_misses + 1;
    journal_job t js "running";
    Hashtbl.replace t.inflight digest id
  in
  match t.pool with
  | Some p when not (Pool.breaker_open p) ->
    if Pool.has_idle p then (
      match Pool.dispatch p order with
      | `Dispatched ->
        admit ();
        js.state <- Running (Warm { w_kill_at = kill_at });
        log t "job %s running warm (%.1fs remaining%s)" id remaining
          (if js.resume then ", warm resume" else "");
        `Started
      | `No_worker -> `No_capacity)
    else `No_capacity
  | _ ->
    (* no pool, or its breaker is open: the cold path keeps serving *)
    admit ();
    spawn_cold t js ~remaining ~kill_at;
    `Started

let try_spawn t =
  let rec go () =
    if
      (not t.draining)
      && List.length (running_jobs t) < t.cfg.max_running
      && not (Queue.is_empty t.queue)
    then begin
      let id = Queue.peek t.queue in
      match Hashtbl.find_opt t.jobs id with
      | Some ({ state = Queued; _ } as js) -> (
        match start_job t js with
        | `Started ->
          ignore (Queue.pop t.queue : string);
          go ()
        | `No_capacity -> () (* leave at the head; capacity returns soon *))
      | _ ->
        ignore (Queue.pop t.queue : string);
        go ()
    end
  in
  go ()

let handle_runner_readable t js rn =
  let buf = Bytes.create 65536 in
  let rec rd () =
    match Unix.read rn.rn_fd buf 0 (Bytes.length buf) with
    | 0 -> rn.rn_eof <- true
    | n -> (
      Frame.feed rn.rn_dec buf n;
      match Frame.state rn.rn_dec with Frame.Awaiting -> rd () | _ -> ())
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> rd ()
    | exception Unix.Unix_error (_, _, _) -> rn.rn_eof <- true
  in
  rd ();
  match Frame.state rn.rn_dec with
  | Frame.Got payload -> (
    kill_quiet rn.rn_pid;
    ignore (reap rn.rn_pid : Unix.process_status);
    close_quiet rn.rn_fd;
    match (Marshal.from_string payload 0 : Pool.report) with
    | rep -> finalize t js (result_of_report js rep)
    | exception e ->
      js.state <- Running (Cold rn);
      job_failed t js ("unmarshal: " ^ Printexc.to_string e))
  | Frame.Failed e ->
    kill_quiet rn.rn_pid;
    ignore (reap rn.rn_pid : Unix.process_status);
    job_failed t js ("garbled report: " ^ Frame.error_to_string e)
  | Frame.Awaiting ->
    if rn.rn_eof then begin
      let st = reap rn.rn_pid in
      let reason =
        match st with
        | Unix.WSIGNALED s -> "killed by " ^ Portfolio.signal_name s
        | _ -> "exited without a report"
      in
      job_failed t js reason
    end

(* a pool event concerns the job the worker was holding; the pool has
   already handled the worker lifecycle (idle again, recycling, or
   respawning) — here we only settle the job *)
let handle_pool_event t ev =
  match ev with
  | Pool.Job_report (id, rep) -> (
    match Hashtbl.find_opt t.jobs id with
    | Some ({ state = Running (Warm _); _ } as js) ->
      finalize t js (result_of_report js rep)
    | _ -> log t "pool report for job %s in unexpected state; dropped" id)
  | Pool.Job_lost (id, reason) -> (
    match Hashtbl.find_opt t.jobs id with
    | Some ({ state = Running (Warm _); _ } as js) -> job_failed t js reason
    | _ -> ())

(* ---------- the event loop ---------- *)

let mkdir_p dir =
  let rec go d =
    if d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with
      | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let setup_listener cfg =
  let addr = sockaddr_of_spec cfg.socket in
  (match addr with
  | Unix.ADDR_UNIX path ->
    (* crash-only: a stale socket file from a SIGKILLed daemon is expected;
       remove it and rebind *)
    (try Unix.unlink path with Unix.Unix_error _ -> ())
  | _ -> ());
  let domain = Unix.domain_of_sockaddr addr in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match addr with
  | Unix.ADDR_INET _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
  | _ -> ());
  Unix.bind fd addr;
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  fd

(* keep one fd in reserve so fd exhaustion can still be *drained*: closing
   the reserve frees exactly one slot, enough to accept-and-close a backlog
   entry instead of letting the listen queue wedge the select loop *)
let open_reserve t =
  if t.reserve_fd = None then
    t.reserve_fd <-
      (try Some (Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0)
       with Unix.Unix_error _ -> None)

let shed_oldest_idle t =
  match List.filter (fun c -> c.c_job = None) t.conns with
  | [] -> false
  | first :: rest ->
    let oldest =
      List.fold_left (fun a c -> if c.c_last < a.c_last then c else a) first
        rest
    in
    loud "fd exhaustion: shedding oldest idle connection";
    close_conn t oldest;
    true

(* drop one backlog entry through the reserve slot: the peer observes an
   immediate close (a transient Disconnected, which clients retry) rather
   than an unbounded connect hang *)
let drain_one_via_reserve t lfd =
  match t.reserve_fd with
  | None -> ()
  | Some rfd ->
    close_quiet rfd;
    t.reserve_fd <- None;
    (match Unix.accept ~cloexec:true lfd with
    | fd, _ -> close_quiet fd
    | exception Unix.Unix_error _ -> ());
    open_reserve t

let accept_pending t =
  match t.listen_fd with
  | None -> ()
  | Some lfd ->
    let rec go () =
      match Durable.accept lfd with
      | fd, _ ->
        Unix.set_nonblock fd;
        t.conns <-
          { c_fd = fd; c_dec = Frame.decoder (); c_last = Mclock.now ();
            c_job = None }
          :: t.conns;
        go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception
          Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE) as err, fn, _) ->
        (* fd exhaustion must be an incident, never an invisible outage *)
        t.last_io_error <-
          Printf.sprintf "%s: %s" fn (Unix.error_message err);
        loud "accept failed (%s): %d conns, %d running"
          (Unix.error_message err)
          (List.length t.conns)
          (List.length (running_jobs t));
        let shed = shed_oldest_idle t in
        drain_one_via_reserve t lfd;
        (* a freed slot means the next accept can succeed; without one,
           stop — select will call back, and the reserve drain keeps the
           backlog moving meanwhile *)
        if shed then go ()
      | exception Unix.Unix_error (_, _, _) -> ()
    in
    go ()

(* shed connections that are neither awaiting a result nor making progress:
   a slow-loris writer (stalled partial frame) or an idle socket that never
   submitted — both would otherwise pin daemon state forever *)
let shed_stalled_conns t =
  let now = Mclock.now () in
  let stalled, live =
    List.partition
      (fun c ->
        c.c_job = None && now -. c.c_last > t.cfg.io_timeout)
      t.conns
  in
  t.conns <- live;
  List.iter
    (fun c ->
      log t "shedding stalled connection (%d bytes pending)"
        (Frame.bytes_received c.c_dec);
      close_quiet c.c_fd)
    stalled

let enforce_watchdogs t =
  let now = Mclock.now () in
  List.iter
    (fun js ->
      match js.state with
      | Running (Cold rn) when rn.rn_kill_at <= now ->
        kill_quiet rn.rn_pid;
        ignore (reap rn.rn_pid : Unix.process_status);
        close_quiet rn.rn_fd;
        finalize t js
          (timeout_result js "deadline exceeded; runner killed by the watchdog")
      | Running (Warm { w_kill_at }) when w_kill_at <= now ->
        (match t.pool with
        | Some p -> ignore (Pool.kill_job p js.job.Frame.job_id : bool)
        | None -> ());
        finalize t js
          (timeout_result js
             "deadline exceeded; pool worker killed by the watchdog")
      | _ -> ())
    (running_jobs t)

let drain_requested = ref false
let hard_stop = ref false

let install_signals () =
  let request _ =
    if !drain_requested then hard_stop := true else drain_requested := true
  in
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle request) with _ -> ());
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle request) with _ -> ())

let run cfg =
  Frame.ignore_sigpipe ();
  drain_requested := false;
  hard_stop := false;
  install_signals ();
  mkdir_p (Filename.dirname cfg.journal_path);
  mkdir_p cfg.ckpt_dir;
  (* crash debris from atomic writes interrupted mid-stage would otherwise
     leak forever — and on a full disk, ratchet it fuller. Age-gated: the
     supervisor that just forked us may be mid-rename on its own staging
     file (the pid file) in the journal directory *)
  let reaped =
    Durable.reap_tmp ~min_age_s:tmp_reap_min_age_s
      (Filename.dirname cfg.journal_path)
    + Durable.reap_tmp ~min_age_s:tmp_reap_min_age_s cfg.ckpt_dir
  in
  (* crash-only startup: there is no "clean start" mode — always load
     whatever journal exists (possibly empty) and replay it *)
  (* rotation keeps a live session's whole record stream (its per-seq edit
     keys are distinct, so `All and `Latest coincide; `All states the
     intent) and GCs a dead session's stream outright. The classifier
     closes over the session table via a knot-tying ref because the
     journal is built before [t]. *)
  let sess_live = ref (fun (_ : string) -> false) in
  let retain key =
    match sess_sid_of_key key with
    | None -> `Latest
    | Some (sid, _) -> if !sess_live sid then `All else `Drop
  in
  let journal =
    Journal.load ~rotate_bytes:cfg.rotate_bytes ~retain cfg.journal_path
  in
  let t =
    {
      cfg;
      journal;
      jobs = Hashtbl.create 64;
      queue = Queue.create ();
      conns = [];
      listen_fd = None;
      draining = false;
      drain_started = 0.0;
      completed = 0;
      started_at = Mclock.now ();
      durability = Durable;
      degraded_since = 0.0;
      pending = [];
      retry_at = 0.0;
      retry_backoff = retry_backoff_base;
      last_io_error = "";
      lives = 1;
      reserve_fd = None;
      pool = None;
      cache_tbl = Hashtbl.create 64;
      inflight = Hashtbl.create 16;
      cache_hits = 0;
      cache_misses = 0;
      coalesced = 0;
      sessions = Hashtbl.create 8;
      sess_gone = Hashtbl.create 8;
      sess_evicted = 0;
      sess_expired = 0;
      sess_replayed = 0;
      sess_recovered = 0;
    }
  in
  sess_live := (fun sid -> Hashtbl.mem t.sessions sid);
  if reaped > 0 then log t "startup: reaped %d stale .tmp file(s)" reaped;
  (* count journal generations so [health] can report lifetime restarts *)
  let prev_lives =
    match Journal.find journal "__life__" with
    | Some r ->
      Option.value ~default:0 (int_of_string_opt (field r "lives"))
    | None -> 0
  in
  t.lives <- prev_lives + 1;
  (match
     Journal.append journal
       [
         ("key", "__life__");
         ("state", "alive");
         ("lives", string_of_int t.lives);
       ]
   with
  | () -> ()
  | exception Unix.Unix_error (err, fn, _) -> enter_degraded t err fn);
  replay t;
  cache_load t;
  recover_sessions t;
  (* snapshots of jobs the journal already shows as terminal are garbage a
     dead daemon left behind: reap them before serving *)
  let stale_ckpts =
    Hashtbl.fold
      (fun id js n ->
        match js.state with
        | Finished _ ->
          n + Checkpoint.reap_label ~dir:cfg.ckpt_dir ~label:("job-" ^ id)
        | _ -> n)
      t.jobs 0
  in
  if stale_ckpts > 0 then
    log t "startup: reaped %d stale checkpoint(s) of terminal jobs"
      stale_ckpts;
  if cfg.pool_size > 0 then begin
    let pcfg =
      Pool.config ~recycle_jobs:cfg.recycle_jobs
        ~recycle_rss_mb:cfg.recycle_rss_mb ?chaos:cfg.pool_faults
        ~size:cfg.pool_size ()
    in
    t.pool <-
      Some
        (Pool.create pcfg ~exec:(exec_order cfg)
           ~on_child:(fun () ->
             (match t.listen_fd with Some fd -> close_quiet fd | None -> ());
             (match t.reserve_fd with Some fd -> close_quiet fd | None -> ());
             List.iter (fun c -> close_quiet c.c_fd) t.conns;
             List.iter
               (fun js ->
                 match js.state with
                 | Running (Cold rn) -> close_quiet rn.rn_fd
                 | _ -> ())
               (running_jobs t))
           ~log:(fun s -> log t "%s" s))
  end;
  open_reserve t;
  t.listen_fd <- Some (setup_listener cfg);
  let crash_at =
    Option.map (fun s -> Mclock.now () +. s) cfg.crash_after
  in
  log t "listening on %s (journal %s, %d jobs replayed, life %d, pool %d)"
    cfg.socket cfg.journal_path (Hashtbl.length t.jobs) t.lives cfg.pool_size;
  let rec loop () =
    if !drain_requested then start_drain t "signal";
    if t.draining then begin
      (* graceful drain: no accepts, no new runners; finish what runs.
         In-flight runners checkpoint continuously, so if the grace runs
         out we SIGKILL them and the journal's `running` records plus the
         snapshots let the next daemon warm-resume them. *)
      let running = running_jobs t in
      if running = [] then ()
      else if
        !hard_stop || Mclock.now () -. t.drain_started > t.cfg.drain_grace
      then begin
        List.iter
          (fun js ->
            match js.state with
            | Running (Cold rn) ->
              log t "drain grace over: killing runner for %s (will resume)"
                js.job.Frame.job_id;
              kill_quiet rn.rn_pid;
              ignore (reap rn.rn_pid : Unix.process_status);
              close_quiet rn.rn_fd
            | Running (Warm _) ->
              log t
                "drain grace over: killing pool worker for %s (will resume)"
                js.job.Frame.job_id;
              (match t.pool with
              | Some p ->
                ignore (Pool.kill_job p js.job.Frame.job_id : bool)
              | None -> ())
            | _ -> ())
          running
      end
      else step ()
    end
    else step ()
  and step () =
    (* scripted self-crash: a deterministic stand-in for a segfaulting
       daemon, used by the supervisor's crash-loop tests *)
    (match crash_at with
    | Some at when Mclock.now () >= at ->
      Unix.kill (Unix.getpid ()) Sys.sigkill
    | _ -> ());
    try_rearm t;
    (match t.pool with Some p -> Pool.tick p | None -> ());
    try_spawn t;
    let conn_fds = List.map (fun c -> c.c_fd) t.conns in
    let runner_fds =
      List.filter_map
        (fun js ->
          match js.state with
          | Running (Cold rn) -> Some rn.rn_fd
          | _ -> None)
        (running_jobs t)
    in
    let pool_fds = match t.pool with Some p -> Pool.fds p | None -> [] in
    let listen_fds = match t.listen_fd with Some fd -> [ fd ] | None -> [] in
    let readable, _, _ =
      try
        Unix.select (listen_fds @ conn_fds @ runner_fds @ pool_fds) [] [] 0.1
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    if List.exists (fun fd -> List.mem fd listen_fds) readable then
      accept_pending t;
    List.iter
      (fun c -> if List.mem c.c_fd readable then handle_conn_readable t c)
      (List.filter (fun c -> List.exists (fun x -> x.c_fd == c.c_fd) t.conns)
         t.conns);
    List.iter
      (fun js ->
        match js.state with
        | Running (Cold rn) when List.mem rn.rn_fd readable ->
          handle_runner_readable t js rn
        | _ -> ())
      (running_jobs t);
    (match t.pool with
    | Some p ->
      List.iter
        (fun fd ->
          if List.mem fd readable then
            match Pool.handle_readable p fd with
            | Some ev -> handle_pool_event t ev
            | None -> ())
        pool_fds
    | None -> ());
    enforce_watchdogs t;
    shed_stalled_conns t;
    sweep_sessions t;
    loop ()
  in
  loop ();
  List.iter (fun c -> close_quiet c.c_fd) t.conns;
  (match t.pool with Some p -> Pool.shutdown p | None -> ());
  (match t.listen_fd with
  | Some fd ->
    close_quiet fd;
    (match sockaddr_of_spec cfg.socket with
    | Unix.ADDR_UNIX path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | _ -> ())
  | None -> ());
  (* last chance to land buffered records before exit; failures leave the
     (idempotent) journal one life behind — the next replay re-runs those
     jobs rather than losing them *)
  if t.pending <> [] then begin
    t.retry_at <- 0.0;
    try_rearm t;
    match t.durability with
    | Durable -> ()
    | Degraded _ ->
      loud "exiting degraded with %d unflushed journal record(s)"
        (List.length t.pending)
  end;
  (match t.reserve_fd with Some fd -> close_quiet fd | None -> ());
  Journal.close t.journal;
  log t "drained; %d jobs completed this life" t.completed;
  0
