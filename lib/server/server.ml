module Graph = Colib_graph.Graph
module Dimacs_col = Colib_graph.Dimacs_col
module Dsatur = Colib_graph.Dsatur
module Sbp = Colib_encode.Sbp
module Checkpoint = Colib_solver.Checkpoint
module Certify = Colib_check.Certify
module Flow = Colib_core.Flow
module Frame = Colib_portfolio.Frame
module Journal = Colib_portfolio.Journal
module Portfolio = Colib_portfolio.Portfolio
module Mclock = Colib_clock.Mclock
module Durable = Colib_io.Durable

(* ------------------------------------------------------------------ *)
(* Configuration *)

type config = {
  socket : string;
  journal_path : string;
  ckpt_dir : string;
  max_queue : int;
  max_running : int;
  io_timeout : float;
  drain_grace : float;
  grace : float;
  rotate_bytes : int;
  default_strategies : Portfolio.strategy list;
  max_jobs : int option;
  hold : float;
  crash_after : float option;
  verbose : bool;
}

let config ?(max_queue = 16) ?(max_running = 2) ?(io_timeout = 10.0)
    ?(drain_grace = 10.0) ?(grace = 5.0) ?(rotate_bytes = 1 lsl 20)
    ?(default_strategies = [ Portfolio.Engine_strategy Colib_solver.Types.Pbs2;
                             Portfolio.Dsatur_strategy ])
    ?max_jobs ?(hold = 0.0) ?crash_after ?(verbose = false) ~socket
    ~journal_path ~ckpt_dir () =
  {
    socket;
    journal_path;
    ckpt_dir;
    max_queue = max 0 max_queue;
    max_running = max 1 max_running;
    io_timeout;
    drain_grace;
    grace;
    rotate_bytes;
    default_strategies;
    max_jobs;
    hold;
    crash_after;
    verbose;
  }

let sockaddr_of_spec spec =
  let tcp = "tcp:" in
  let n = String.length tcp in
  if String.length spec > n && String.sub spec 0 n = tcp then
    match int_of_string_opt (String.sub spec n (String.length spec - n)) with
    | Some port when port > 0 && port < 65536 ->
      Unix.ADDR_INET (Unix.inet_addr_loopback, port)
    | _ -> invalid_arg (Printf.sprintf "bad TCP socket spec %S" spec)
  else Unix.ADDR_UNIX spec

(* ------------------------------------------------------------------ *)
(* Job state machine: accepted -> running -> done/failed (or shed at
   admission). Every transition is journaled as a SELF-CONTAINED record
   (accepted/running records carry the whole request, done/failed records
   the whole result), so the latest record per job id alone reconstructs
   the daemon's state — which is exactly what journal rotation keeps. *)

type runner = {
  rn_pid : int;
  rn_fd : Unix.file_descr;
  rn_dec : Frame.decoder;
  rn_kill_at : float; (* monotonic *)
  mutable rn_eof : bool;
}

type job_state =
  | Queued
  | Running of runner
  | Finished of Frame.job_result

type jstate = {
  job : Frame.job;
  accepted_at : float; (* Unix wall clock: must survive a daemon restart *)
  mutable state : job_state;
  mutable resume : bool;  (* warm-resume from checkpoints on next spawn *)
  mutable attempts : int;
  mutable waiters : Unix.file_descr list;
}

type conn = {
  c_fd : Unix.file_descr;
  c_dec : Frame.decoder;
  mutable c_last : float;        (* monotonic, last *complete* frame (or
                                    accept); partial bytes do not refresh
                                    it, so a slow-loris drip still times
                                    out io_timeout after its frame began *)
  mutable c_job : string option; (* the job this connection awaits *)
}

(* what a runner child reports back, marshalled inside one frame *)
type report = {
  rp_outcome : string; (* optimal | best | unsat | timeout | failed *)
  rp_colors : int option;
  rp_coloring : int array option;
  rp_winner : string option;
  rp_detail : string;
  rp_time : float;
}

(* ---------- durability degradation ladder ---------- *)

(* When journaling fails persistently (disk full, I/O errors) the daemon
   does not die and does not lie: it enters a loud [Degraded] state. New
   submissions are shed with a typed [Unavailable] reply — accepting a job
   whose acceptance cannot be journaled would break the crash-recovery
   contract. In-flight jobs keep running to completion and re-certify as
   usual; their state transitions are buffered in memory and flushed with
   capped-backoff retries, so the moment the disk recovers the journal
   catches up and admission re-arms automatically. *)

type degraded_reason = Disk_full | Io_error

let reason_name = function
  | Disk_full -> "disk-full"
  | Io_error -> "io-error"

let classify_errno = function
  | Unix.ENOSPC -> Disk_full
  | _ -> Io_error

type durability = Durable | Degraded of degraded_reason

type t = {
  cfg : config;
  journal : Journal.t;
  jobs : (string, jstate) Hashtbl.t;
  queue : string Queue.t;
  mutable conns : conn list;
  mutable listen_fd : Unix.file_descr option;
  mutable draining : bool;
  mutable drain_started : float;
  mutable completed : int;
  started_at : float; (* monotonic *)
  mutable durability : durability;
  mutable degraded_since : float; (* monotonic, meaningful when degraded *)
  mutable pending : (string * string) list list; (* unflushed records, oldest first *)
  mutable retry_at : float;      (* monotonic: next journal retry *)
  mutable retry_backoff : float;
  mutable last_io_error : string;
  mutable lives : int;           (* journal generations, incl. this one *)
  mutable reserve_fd : Unix.file_descr option; (* EMFILE drain reserve *)
}

let log t fmt =
  Printf.ksprintf
    (fun s -> if t.cfg.verbose then Printf.eprintf "serve: %s\n%!" s)
    fmt

(* degradation transitions are operational incidents: always loud,
   regardless of [verbose] *)
let loud fmt = Printf.ksprintf (fun s -> Printf.eprintf "serve: %s\n%!" s) fmt

let retry_backoff_base = 0.25
let retry_backoff_cap = 5.0

(* internal journal keys ([__rotation__], [__life__], [__durability__])
   carry daemon metadata, not job state; replay skips them *)
let internal_key k =
  String.length k >= 2 && k.[0] = '_' && k.[1] = '_'

let enter_degraded t err fn =
  t.last_io_error <- Printf.sprintf "%s: %s" fn (Unix.error_message err);
  let reason = classify_errno err in
  match t.durability with
  | Degraded r ->
    if r <> reason then t.durability <- Degraded reason
  | Durable ->
    t.durability <- Degraded reason;
    t.degraded_since <- Mclock.now ();
    t.retry_backoff <- retry_backoff_base;
    t.retry_at <- Mclock.now () +. retry_backoff_base;
    loud "DEGRADED (%s): %s — shedding new submissions, buffering journal"
      (reason_name reason) t.last_io_error;
    (* a full disk must not ratchet fuller: drop atomic-write debris now *)
    let reaped =
      Durable.reap_tmp (Filename.dirname t.cfg.journal_path)
      + Durable.reap_tmp t.cfg.ckpt_dir
    in
    if reaped > 0 then loud "reaped %d stale .tmp file(s)" reaped

(* buffered commit: the write path for transitions of jobs that are already
   admitted (running/done/failed/shed). Never raises — a failure flips the
   daemon into the degraded ladder and the record waits in memory. *)
let commit t fields =
  match t.durability with
  | Degraded _ -> t.pending <- t.pending @ [ fields ]
  | Durable -> (
    match Journal.append t.journal fields with
    | () -> ()
    | exception Unix.Unix_error (err, fn, _) ->
      enter_degraded t err fn;
      t.pending <- t.pending @ [ fields ])

(* capped-backoff retry; flips back to [Durable] as soon as a write sticks *)
let try_rearm t =
  match t.durability with
  | Durable -> ()
  | Degraded _ ->
    let now = Mclock.now () in
    if now >= t.retry_at then begin
      let outcome =
        let rec flush () =
          match t.pending with
          | [] -> Ok ()
          | fields :: rest -> (
            match Journal.append t.journal fields with
            | () ->
              t.pending <- rest;
              flush ()
            | exception Unix.Unix_error (err, fn, _) -> Error (err, fn))
        in
        if t.pending = [] then
          (* nothing buffered: probe with a metadata record so recovery is
             detected even on an idle daemon *)
          match
            Journal.append t.journal
              [ ("key", "__durability__"); ("state", "probe") ]
          with
          | () -> Ok ()
          | exception Unix.Unix_error (err, fn, _) -> Error (err, fn)
        else flush ()
      in
      match outcome with
      | Ok () ->
        loud "durability restored after %.1fs (journal flushed, %s)"
          (now -. t.degraded_since)
          (match t.last_io_error with "" -> "no error" | e -> "last: " ^ e);
        t.durability <- Durable
      | Error (err, fn) ->
        t.last_io_error <-
          Printf.sprintf "%s: %s" fn (Unix.error_message err);
        t.retry_backoff <-
          Float.min retry_backoff_cap (2.0 *. t.retry_backoff);
        t.retry_at <- Mclock.now () +. t.retry_backoff
    end

let durability_string t =
  match t.durability with
  | Durable -> "ok"
  | Degraded r -> "degraded:" ^ reason_name r

(* ---------- journal records ---------- *)

let coloring_to_string col =
  String.concat " " (Array.to_list (Array.map string_of_int col))

let coloring_of_string s =
  match String.split_on_char ' ' (String.trim s) with
  | [ "" ] | [] -> None
  | toks -> (
    try Some (Array.of_list (List.map int_of_string toks))
    with Failure _ -> None)

let job_fields (j : Frame.job) ~accepted_at ~attempts =
  [
    ("accepted_at", Printf.sprintf "%.3f" accepted_at);
    ("deadline", Printf.sprintf "%.3f" j.Frame.deadline);
    ("k", match j.Frame.j_k with Some k -> string_of_int k | None -> "");
    ("strategies", j.Frame.strategies);
    ("sbp", j.Frame.sbp);
    ("isd", string_of_bool j.Frame.instance_dependent);
    ("seed", string_of_int j.Frame.j_seed);
    ("attempts", string_of_int attempts);
    ("dimacs", j.Frame.dimacs);
  ]

let job_record js state =
  ("key", js.job.Frame.job_id) :: ("state", state)
  :: job_fields js.job ~accepted_at:js.accepted_at ~attempts:js.attempts

(* in-flight transitions go through the buffered [commit]: a job that is
   already admitted must reach its terminal state even while the disk is
   refusing writes *)
let journal_job t js state = commit t (job_record js state)

(* admission is the one strict write: if the acceptance record cannot be
   journaled the job is NOT admitted (raises the [Unix_error]) — otherwise
   a crash would silently lose a job the client was told we accepted *)
let journal_accept_strict t js =
  Journal.append t.journal (job_record js "accepted")

let journal_result t js (r : Frame.job_result) =
  let state = if r.Frame.r_outcome = "failed" then "failed" else "done" in
  commit t
    [
      ("key", js.job.Frame.job_id);
      ("state", state);
      ("outcome", r.Frame.r_outcome);
      ("colors",
       match r.Frame.r_colors with Some c -> string_of_int c | None -> "");
      ("coloring",
       match r.Frame.r_coloring with
       | Some col -> coloring_to_string col
       | None -> "");
      ("winner", match r.Frame.r_winner with Some w -> w | None -> "");
      ("certified", string_of_bool r.Frame.r_certified);
      ("detail", r.Frame.r_detail);
      ("time", Printf.sprintf "%.6f" r.Frame.r_time);
      ("accepted_at", Printf.sprintf "%.3f" js.accepted_at);
      ("deadline", Printf.sprintf "%.3f" js.job.Frame.deadline);
    ]

let journal_shed t job_id =
  commit t [ ("key", job_id); ("state", "shed") ]

(* ---------- journal replay (daemon restart) ---------- *)

let field r name = Option.value ~default:"" (List.assoc_opt name r)

let float_field r name d =
  match float_of_string_opt (field r name) with Some f -> f | None -> d

let int_opt_field r name = int_of_string_opt (field r name)

let job_of_fields job_id r : Frame.job =
  {
    Frame.job_id;
    dimacs = field r "dimacs";
    j_k = int_opt_field r "k";
    deadline = float_field r "deadline" 0.0;
    strategies = field r "strategies";
    sbp = field r "sbp";
    instance_dependent = field r "isd" <> "false";
    j_seed = Option.value ~default:0 (int_opt_field r "seed");
  }

let result_of_fields job_id r : Frame.job_result =
  {
    Frame.r_job_id = job_id;
    r_outcome = (match field r "outcome" with "" -> "failed" | o -> o);
    r_colors = int_opt_field r "colors";
    r_coloring = coloring_of_string (field r "coloring");
    r_winner = (match field r "winner" with "" -> None | w -> Some w);
    r_certified = field r "certified" = "true";
    r_detail = field r "detail";
    r_time = float_field r "time" 0.0;
    r_replayed = true;
  }

let replay t =
  (* keys in order of first appearance, so the requeue order of a restarted
     daemon matches the order the jobs were originally accepted *)
  let seen = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun r ->
      match List.assoc_opt "key" r with
      | Some k when (not (internal_key k)) && not (Hashtbl.mem seen k) ->
        Hashtbl.add seen k ();
        order := k :: !order
      | _ -> ())
    (Journal.records t.journal);
  List.iter
    (fun key ->
      match Journal.find t.journal key with
      | None -> ()
      | Some r -> (
        match field r "state" with
        | "done" | "failed" ->
          Hashtbl.replace t.jobs key
            {
              job = job_of_fields key r;
              accepted_at = float_field r "accepted_at" 0.0;
              state = Finished (result_of_fields key r);
              resume = false;
              attempts = 0;
              waiters = [];
            }
        | "accepted" | "running" ->
          (* an accepted job the dead daemon never finished: requeue it,
             warm (its checkpoints may hold the search progress) *)
          Hashtbl.replace t.jobs key
            {
              job = job_of_fields key r;
              accepted_at = float_field r "accepted_at" (Unix.gettimeofday ());
              state = Queued;
              resume = true;
              attempts =
                Option.value ~default:0 (int_opt_field r "attempts");
              waiters = [];
            };
          Queue.add key t.queue;
          log t "replay: requeued in-flight job %s" key
        | _ -> ()))
    (List.rev !order)

(* ---------- the runner child ---------- *)

let runner_child cfg (job : Frame.job) ~resume ~remaining wfd : 'a =
  Frame.ignore_sigpipe ();
  (try Sys.set_signal Sys.sigint Sys.Signal_default with _ -> ());
  (try Sys.set_signal Sys.sigterm Sys.Signal_default with _ -> ());
  let send (rep : report) =
    ignore
      (Frame.write_frame wfd (Marshal.to_string rep [])
        : (unit, Frame.io_error) result)
  in
  let fail detail =
    send
      {
        rp_outcome = "failed";
        rp_colors = None;
        rp_coloring = None;
        rp_winner = None;
        rp_detail = detail;
        rp_time = 0.0;
      }
  in
  (match Dimacs_col.parse_result job.Frame.dimacs with
  | Error e ->
    fail
      (Printf.sprintf "malformed instance (line %d): %s" e.Dimacs_col.line
         e.Dimacs_col.message)
  | Ok g -> (
    (* chaos/test hook: pretend the solve is slow, so tests can fill the
       admission queue and open deterministic kill windows *)
    if cfg.hold > 0.0 then Unix.sleepf cfg.hold;
    let k =
      match job.Frame.j_k with Some k -> k | None -> Dsatur.upper_bound g
    in
    let sbp =
      if job.Frame.sbp = "" then Sbp.No_sbp
      else try Sbp.of_name job.Frame.sbp with Invalid_argument _ -> Sbp.No_sbp
    in
    let strategies =
      if job.Frame.strategies = "" then cfg.default_strategies
      else
        match Portfolio.strategies_of_string job.Frame.strategies with
        | Ok l -> l
        | Error _ -> cfg.default_strategies
    in
    Checkpoint.ensure_dir cfg.ckpt_dir;
    let checkpoint =
      Checkpoint.config ~interval:0.5 ~resume ~dir:cfg.ckpt_dir ()
    in
    match
      Portfolio.solve ~seed:job.Frame.j_seed ~sbp
        ~instance_dependent:job.Frame.instance_dependent ~timeout:remaining
        ~checkpoint ~checkpoint_label:("job-" ^ job.Frame.job_id) g ~k
        strategies
    with
    | r ->
      let rp_outcome, rp_colors, rp_coloring =
        match r.Portfolio.outcome with
        | Flow.Optimal c -> ("optimal", Some c, r.Portfolio.coloring)
        | Flow.Best c -> ("best", Some c, r.Portfolio.coloring)
        | Flow.No_coloring -> ("unsat", None, None)
        | Flow.Timed_out -> ("timeout", None, None)
      in
      send
        {
          rp_outcome;
          rp_colors;
          rp_coloring;
          rp_winner = r.Portfolio.winner;
          rp_detail = "";
          rp_time = r.Portfolio.total_time;
        }
    | exception e -> fail ("runner exception: " ^ Printexc.to_string e)));
  Unix._exit 0

(* ---------- daemon-side result construction ---------- *)

(* The runner already supervises and certifies its workers, but the daemon
   trusts no forked process: any claimed coloring is re-certified here,
   against the daemon's own parse of the instance, before the result is
   journaled or delivered. *)
let result_of_report js (rep : report) : Frame.job_result =
  let mk ~outcome ~colors ~coloring ~certified ~detail =
    {
      Frame.r_job_id = js.job.Frame.job_id;
      r_outcome = outcome;
      r_colors = colors;
      r_coloring = coloring;
      r_winner = rep.rp_winner;
      r_certified = certified;
      r_detail = detail;
      r_time = rep.rp_time;
      r_replayed = false;
    }
  in
  let failed detail =
    mk ~outcome:"failed" ~colors:None ~coloring:None ~certified:false ~detail
  in
  match rep.rp_outcome with
  | ("optimal" | "best") as o -> (
    match (rep.rp_colors, rep.rp_coloring) with
    | Some c, Some col -> (
      match Dimacs_col.parse_result js.job.Frame.dimacs with
      | Error _ -> failed "instance no longer parses at certification time"
      | Ok g -> (
        match Certify.coloring g ~k:c ~claimed:c col with
        | Ok () ->
          mk ~outcome:o ~colors:(Some c) ~coloring:(Some col) ~certified:true
            ~detail:""
        | Error f ->
          failed
            ("daemon re-certification failed: " ^ Certify.failure_to_string f)))
    | _ -> failed "runner claimed a coloring it did not return")
  | "unsat" ->
    mk ~outcome:"unsat" ~colors:None ~coloring:None ~certified:true
      ~detail:"refutation replayed by the job supervisor"
  | "timeout" ->
    mk ~outcome:"timeout" ~colors:None ~coloring:None ~certified:false
      ~detail:"solve budget exhausted"
  | "failed" -> failed rep.rp_detail
  | o -> failed ("runner reported unknown outcome " ^ o)

(* ---------- connection plumbing ---------- *)

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let close_conn t c =
  t.conns <- List.filter (fun x -> x.c_fd != c.c_fd) t.conns;
  (match c.c_job with
  | Some id -> (
    match Hashtbl.find_opt t.jobs id with
    | Some js ->
      js.waiters <- List.filter (fun fd -> fd != c.c_fd) js.waiters
    | None -> ())
  | None -> ());
  close_quiet c.c_fd

let send_response t c resp =
  let deadline = Mclock.now () +. t.cfg.io_timeout in
  match Frame.write_frame ~deadline c.c_fd (Frame.encode_response resp) with
  | Ok () -> true
  | Error e ->
    log t "dropping connection: %s" (Frame.io_error_to_string e);
    close_conn t c;
    false

(* deliver a finished result to everyone waiting on the job *)
let deliver t js result =
  let waiting = js.waiters in
  js.waiters <- [];
  List.iter
    (fun fd ->
      match List.find_opt (fun c -> c.c_fd == fd) t.conns with
      | Some c ->
        c.c_job <- None;
        ignore (send_response t c (Frame.Result result) : bool)
      | None -> ())
    waiting

let start_drain t reason =
  if not t.draining then begin
    t.draining <- true;
    t.drain_started <- Mclock.now ();
    log t "draining (%s)" reason;
    (match t.listen_fd with
    | Some fd ->
      close_quiet fd;
      t.listen_fd <- None;
      (match sockaddr_of_spec t.cfg.socket with
      | Unix.ADDR_UNIX path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
      | _ -> ())
    | None -> ())
  end

let finalize t js result =
  journal_result t js result;
  js.state <- Finished result;
  deliver t js result;
  t.completed <- t.completed + 1;
  log t "job %s: %s%s" js.job.Frame.job_id result.Frame.r_outcome
    (match result.Frame.r_colors with
    | Some c -> Printf.sprintf " (%d colors)" c
    | None -> "");
  match t.cfg.max_jobs with
  | Some n when t.completed >= n -> start_drain t "max jobs reached"
  | _ -> ()

(* ---------- admission ---------- *)

let queued_count t =
  Hashtbl.fold
    (fun _ js n -> match js.state with Queued -> n + 1 | _ -> n)
    t.jobs 0

let running_jobs t =
  Hashtbl.fold
    (fun _ js acc -> match js.state with Running _ -> js :: acc | _ -> acc)
    t.jobs []

let validate_job (job : Frame.job) =
  if job.Frame.job_id = "" then Error "empty job id"
  else if String.length job.Frame.job_id > 200 then Error "job id too long"
  else
    match Dimacs_col.parse_result job.Frame.dimacs with
    | Error e ->
      Error
        (Printf.sprintf "malformed instance (line %d): %s" e.Dimacs_col.line
           e.Dimacs_col.message)
    | Ok _ -> (
      (if job.Frame.sbp = "" then Ok ()
       else
         match Sbp.of_name job.Frame.sbp with
         | _ -> Ok ()
         | exception Invalid_argument m -> Error m)
      |> function
      | Error _ as e -> e
      | Ok () ->
        if job.Frame.strategies = "" then Ok ()
        else
          Result.map (fun _ -> ())
            (Portfolio.strategies_of_string job.Frame.strategies))

let handle_submit t c (job : Frame.job) =
  let id = job.Frame.job_id in
  match Hashtbl.find_opt t.jobs id with
  | Some { state = Finished r; _ } ->
    (* idempotent re-delivery: same job id, same journaled answer. Counts
       toward max_jobs like a fresh completion, so a restarted smoke-test
       daemon still drains after serving its quota. *)
    ignore (send_response t c (Frame.Result { r with Frame.r_replayed = true })
             : bool);
    t.completed <- t.completed + 1;
    (match t.cfg.max_jobs with
    | Some n when t.completed >= n -> start_drain t "max jobs reached"
    | _ -> ())
  | Some js ->
    (* already accepted (possibly by a previous life of the daemon): attach
       this connection as a waiter *)
    if send_response t c (Frame.Accepted id) then begin
      c.c_job <- Some id;
      js.waiters <- c.c_fd :: js.waiters
    end
  | None -> (
    match validate_job job with
    | Error reason ->
      ignore (send_response t c (Frame.Rejected { rj_job_id = id; reason })
               : bool)
    | Ok () -> (
      match t.durability with
      | Degraded reason ->
        (* cannot journal an acceptance -> cannot honor the crash-recovery
           contract -> shed at admission, typed and loud-but-bounded *)
        log t "job %s shed: durability degraded (%s)" id (reason_name reason);
        ignore
          (send_response t c
             (Frame.Unavailable
                {
                  u_reason =
                    Printf.sprintf "durability degraded (%s): %s"
                      (reason_name reason) t.last_io_error;
                })
            : bool)
      | Durable ->
        let queued = queued_count t in
        if queued >= t.cfg.max_queue then begin
          (* bounded admission: shed, never queue unboundedly *)
          journal_shed t id;
          log t "job %s shed (queue %d/%d)" id queued t.cfg.max_queue;
          ignore
            (send_response t c
               (Frame.Overloaded { queued; capacity = t.cfg.max_queue })
              : bool)
        end
        else begin
          let js =
            {
              job;
              accepted_at = Unix.gettimeofday ();
              state = Queued;
              resume = false;
              attempts = 0;
              waiters = [];
            }
          in
          match journal_accept_strict t js with
          | () ->
            Hashtbl.replace t.jobs id js;
            Queue.add id t.queue;
            log t "job %s accepted (deadline %.1fs, queue %d/%d)" id
              job.Frame.deadline (queued + 1) t.cfg.max_queue;
            if send_response t c (Frame.Accepted id) then begin
              c.c_job <- Some id;
              js.waiters <- c.c_fd :: js.waiters
            end
          | exception Unix.Unix_error (err, fn, _) ->
            (* the job was never admitted: roll back (nothing was queued)
               and answer with the typed degradation *)
            enter_degraded t err fn;
            ignore
              (send_response t c
                 (Frame.Unavailable
                    {
                      u_reason =
                        Printf.sprintf "durability degraded (%s): %s"
                          (reason_name (classify_errno err))
                          t.last_io_error;
                    })
                : bool)
        end))

let health_report t =
  {
    Frame.h_queued = queued_count t;
    h_running = List.length (running_jobs t);
    h_completed = t.completed;
    h_uptime = Mclock.now () -. t.started_at;
    h_durability = durability_string t;
    h_restarts = max 0 (t.lives - 1);
    h_last_io_error = t.last_io_error;
    h_pending_journal = List.length t.pending;
  }

let handle_payload t c payload =
  match Frame.decode_request payload with
  | Ok (Frame.Submit job) -> handle_submit t c job
  | Ok Frame.Ping -> ignore (send_response t c Frame.Pong : bool)
  | Ok Frame.Health ->
    ignore (send_response t c (Frame.Health_report (health_report t)) : bool)
  | Error e ->
    (* a checksummed frame carrying the wrong or an unknown message: tell
       the peer (best-effort) and drop it *)
    ignore
      (send_response t c
         (Frame.Rejected
            {
              rj_job_id = "";
              reason = "bad request: " ^ Frame.error_to_string e;
            })
        : bool);
    close_conn t c

let handle_conn_readable t c =
  let buf = Bytes.create 65536 in
  let rec rd () =
    match Unix.read c.c_fd buf 0 (Bytes.length buf) with
    | 0 -> `Eof
    | n ->
      Frame.feed c.c_dec buf n;
      (match Frame.state c.c_dec with Frame.Awaiting -> rd () | _ -> `Go)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      `Go
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> rd ()
    | exception Unix.Unix_error (_, _, _) -> `Eof
  in
  match rd () with
  | `Eof ->
    (* client disconnect: mid-frame it never submitted anything; after a
       submit the job lives on, journaled, for an idempotent re-fetch *)
    close_conn t c
  | `Go -> (
    match Frame.state c.c_dec with
    | Frame.Awaiting -> ()
    | Frame.Got payload ->
      Frame.reset c.c_dec;
      c.c_last <- Mclock.now ();
      handle_payload t c payload
    | Frame.Failed e ->
      log t "garbage from client: %s" (Frame.error_to_string e);
      ignore
        (send_response t c
           (Frame.Rejected
              {
                rj_job_id = "";
                reason = "garbage frame: " ^ Frame.error_to_string e;
              })
          : bool);
      (* close_conn may already have run inside a failed send *)
      if List.exists (fun x -> x.c_fd == c.c_fd) t.conns then close_conn t c)

(* ---------- runner supervision ---------- *)

let reap pid =
  let rec go () =
    match Unix.waitpid [] pid with
    | _, st -> st
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> Unix.WEXITED 0
  in
  go ()

let kill_quiet pid = try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()

let spawn_runner t js =
  let now_wall = Unix.gettimeofday () in
  let remaining = js.job.Frame.deadline -. (now_wall -. js.accepted_at) in
  if remaining <= 0.0 then
    (* deadline already spent (a zero deadline, or wall time consumed
       across a crash): typed timeout, no runner *)
    finalize t js
      {
        Frame.r_job_id = js.job.Frame.job_id;
        r_outcome = "timeout";
        r_colors = None;
        r_coloring = None;
        r_winner = None;
        r_certified = false;
        r_detail = "deadline exhausted before the solve could start";
        r_time = 0.0;
        r_replayed = false;
      }
  else begin
    js.attempts <- js.attempts + 1;
    journal_job t js "running";
    let r, w = Unix.pipe () in
    match Unix.fork () with
    | 0 ->
      close_quiet r;
      (match t.listen_fd with Some fd -> close_quiet fd | None -> ());
      List.iter (fun c -> close_quiet c.c_fd) t.conns;
      List.iter
        (fun js' ->
          match js'.state with
          | Running rn -> close_quiet rn.rn_fd
          | _ -> ())
        (running_jobs t);
      runner_child t.cfg js.job ~resume:js.resume ~remaining w
    | pid ->
      close_quiet w;
      Unix.set_nonblock r;
      js.state <-
        Running
          {
            rn_pid = pid;
            rn_fd = r;
            rn_dec = Frame.decoder ();
            rn_kill_at =
              Mclock.now () +. remaining +. t.cfg.grace +. t.cfg.hold;
            rn_eof = false;
          };
      log t "job %s running (pid %d, %.1fs remaining%s)" js.job.Frame.job_id
        pid remaining
        (if js.resume then ", warm resume" else "")
  end

let try_spawn t =
  let rec go () =
    if
      (not t.draining)
      && List.length (running_jobs t) < t.cfg.max_running
      && not (Queue.is_empty t.queue)
    then begin
      let id = Queue.pop t.queue in
      (match Hashtbl.find_opt t.jobs id with
      | Some ({ state = Queued; _ } as js) -> spawn_runner t js
      | _ -> ());
      go ()
    end
  in
  go ()

let runner_failed t js reason =
  match js.state with
  | Running rn ->
    close_quiet rn.rn_fd;
    if js.attempts <= 2 then begin
      (* the runner itself died (not the solve: the runner supervises its
         own workers) — requeue once, warm *)
      js.resume <- true;
      js.state <- Queued;
      journal_job t js "accepted";
      Queue.add js.job.Frame.job_id t.queue;
      log t "job %s: runner failed (%s); requeued warm" js.job.Frame.job_id
        reason
    end
    else
      finalize t js
        {
          Frame.r_job_id = js.job.Frame.job_id;
          r_outcome = "failed";
          r_colors = None;
          r_coloring = None;
          r_winner = None;
          r_certified = false;
          r_detail = "job runner failed repeatedly: " ^ reason;
          r_time = 0.0;
          r_replayed = false;
        }
  | _ -> ()

let handle_runner_readable t js rn =
  let buf = Bytes.create 65536 in
  let rec rd () =
    match Unix.read rn.rn_fd buf 0 (Bytes.length buf) with
    | 0 -> rn.rn_eof <- true
    | n -> (
      Frame.feed rn.rn_dec buf n;
      match Frame.state rn.rn_dec with Frame.Awaiting -> rd () | _ -> ())
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> rd ()
    | exception Unix.Unix_error (_, _, _) -> rn.rn_eof <- true
  in
  rd ();
  match Frame.state rn.rn_dec with
  | Frame.Got payload -> (
    kill_quiet rn.rn_pid;
    ignore (reap rn.rn_pid : Unix.process_status);
    close_quiet rn.rn_fd;
    match (Marshal.from_string payload 0 : report) with
    | rep -> finalize t js (result_of_report js rep)
    | exception e ->
      js.state <- Running rn;
      runner_failed t js ("unmarshal: " ^ Printexc.to_string e))
  | Frame.Failed e ->
    kill_quiet rn.rn_pid;
    ignore (reap rn.rn_pid : Unix.process_status);
    runner_failed t js ("garbled report: " ^ Frame.error_to_string e)
  | Frame.Awaiting ->
    if rn.rn_eof then begin
      let st = reap rn.rn_pid in
      let reason =
        match st with
        | Unix.WSIGNALED s -> "killed by " ^ Portfolio.signal_name s
        | _ -> "exited without a report"
      in
      runner_failed t js reason
    end

(* ---------- the event loop ---------- *)

let mkdir_p dir =
  let rec go d =
    if d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with
      | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let setup_listener cfg =
  let addr = sockaddr_of_spec cfg.socket in
  (match addr with
  | Unix.ADDR_UNIX path ->
    (* crash-only: a stale socket file from a SIGKILLed daemon is expected;
       remove it and rebind *)
    (try Unix.unlink path with Unix.Unix_error _ -> ())
  | _ -> ());
  let domain = Unix.domain_of_sockaddr addr in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match addr with
  | Unix.ADDR_INET _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
  | _ -> ());
  Unix.bind fd addr;
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  fd

(* keep one fd in reserve so fd exhaustion can still be *drained*: closing
   the reserve frees exactly one slot, enough to accept-and-close a backlog
   entry instead of letting the listen queue wedge the select loop *)
let open_reserve t =
  if t.reserve_fd = None then
    t.reserve_fd <-
      (try Some (Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0)
       with Unix.Unix_error _ -> None)

let shed_oldest_idle t =
  match List.filter (fun c -> c.c_job = None) t.conns with
  | [] -> false
  | first :: rest ->
    let oldest =
      List.fold_left (fun a c -> if c.c_last < a.c_last then c else a) first
        rest
    in
    loud "fd exhaustion: shedding oldest idle connection";
    close_conn t oldest;
    true

(* drop one backlog entry through the reserve slot: the peer observes an
   immediate close (a transient Disconnected, which clients retry) rather
   than an unbounded connect hang *)
let drain_one_via_reserve t lfd =
  match t.reserve_fd with
  | None -> ()
  | Some rfd ->
    close_quiet rfd;
    t.reserve_fd <- None;
    (match Unix.accept ~cloexec:true lfd with
    | fd, _ -> close_quiet fd
    | exception Unix.Unix_error _ -> ());
    open_reserve t

let accept_pending t =
  match t.listen_fd with
  | None -> ()
  | Some lfd ->
    let rec go () =
      match Durable.accept lfd with
      | fd, _ ->
        Unix.set_nonblock fd;
        t.conns <-
          { c_fd = fd; c_dec = Frame.decoder (); c_last = Mclock.now ();
            c_job = None }
          :: t.conns;
        go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception
          Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE) as err, fn, _) ->
        (* fd exhaustion must be an incident, never an invisible outage *)
        t.last_io_error <-
          Printf.sprintf "%s: %s" fn (Unix.error_message err);
        loud "accept failed (%s): %d conns, %d running"
          (Unix.error_message err)
          (List.length t.conns)
          (List.length (running_jobs t));
        let shed = shed_oldest_idle t in
        drain_one_via_reserve t lfd;
        (* a freed slot means the next accept can succeed; without one,
           stop — select will call back, and the reserve drain keeps the
           backlog moving meanwhile *)
        if shed then go ()
      | exception Unix.Unix_error (_, _, _) -> ()
    in
    go ()

(* shed connections that are neither awaiting a result nor making progress:
   a slow-loris writer (stalled partial frame) or an idle socket that never
   submitted — both would otherwise pin daemon state forever *)
let shed_stalled_conns t =
  let now = Mclock.now () in
  let stalled, live =
    List.partition
      (fun c ->
        c.c_job = None && now -. c.c_last > t.cfg.io_timeout)
      t.conns
  in
  t.conns <- live;
  List.iter
    (fun c ->
      log t "shedding stalled connection (%d bytes pending)"
        (Frame.bytes_received c.c_dec);
      close_quiet c.c_fd)
    stalled

let enforce_watchdogs t =
  let now = Mclock.now () in
  List.iter
    (fun js ->
      match js.state with
      | Running rn when rn.rn_kill_at <= now ->
        kill_quiet rn.rn_pid;
        ignore (reap rn.rn_pid : Unix.process_status);
        close_quiet rn.rn_fd;
        finalize t js
          {
            Frame.r_job_id = js.job.Frame.job_id;
            r_outcome = "timeout";
            r_colors = None;
            r_coloring = None;
            r_winner = None;
            r_certified = false;
            r_detail = "deadline exceeded; runner killed by the watchdog";
            r_time = js.job.Frame.deadline;
            r_replayed = false;
          }
      | _ -> ())
    (running_jobs t)

let drain_requested = ref false
let hard_stop = ref false

let install_signals () =
  let request _ =
    if !drain_requested then hard_stop := true else drain_requested := true
  in
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle request) with _ -> ());
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle request) with _ -> ())

let run cfg =
  Frame.ignore_sigpipe ();
  drain_requested := false;
  hard_stop := false;
  install_signals ();
  mkdir_p (Filename.dirname cfg.journal_path);
  mkdir_p cfg.ckpt_dir;
  (* crash debris from atomic writes interrupted mid-stage would otherwise
     leak forever — and on a full disk, ratchet it fuller *)
  let reaped =
    Durable.reap_tmp (Filename.dirname cfg.journal_path)
    + Durable.reap_tmp cfg.ckpt_dir
  in
  (* crash-only startup: there is no "clean start" mode — always load
     whatever journal exists (possibly empty) and replay it *)
  let journal = Journal.load ~rotate_bytes:cfg.rotate_bytes cfg.journal_path in
  let t =
    {
      cfg;
      journal;
      jobs = Hashtbl.create 64;
      queue = Queue.create ();
      conns = [];
      listen_fd = None;
      draining = false;
      drain_started = 0.0;
      completed = 0;
      started_at = Mclock.now ();
      durability = Durable;
      degraded_since = 0.0;
      pending = [];
      retry_at = 0.0;
      retry_backoff = retry_backoff_base;
      last_io_error = "";
      lives = 1;
      reserve_fd = None;
    }
  in
  if reaped > 0 then log t "startup: reaped %d stale .tmp file(s)" reaped;
  (* count journal generations so [health] can report lifetime restarts *)
  let prev_lives =
    match Journal.find journal "__life__" with
    | Some r ->
      Option.value ~default:0 (int_of_string_opt (field r "lives"))
    | None -> 0
  in
  t.lives <- prev_lives + 1;
  (match
     Journal.append journal
       [
         ("key", "__life__");
         ("state", "alive");
         ("lives", string_of_int t.lives);
       ]
   with
  | () -> ()
  | exception Unix.Unix_error (err, fn, _) -> enter_degraded t err fn);
  replay t;
  open_reserve t;
  t.listen_fd <- Some (setup_listener cfg);
  let crash_at =
    Option.map (fun s -> Mclock.now () +. s) cfg.crash_after
  in
  log t "listening on %s (journal %s, %d jobs replayed, life %d)" cfg.socket
    cfg.journal_path (Hashtbl.length t.jobs) t.lives;
  let rec loop () =
    if !drain_requested then start_drain t "signal";
    if t.draining then begin
      (* graceful drain: no accepts, no new runners; finish what runs.
         In-flight runners checkpoint continuously, so if the grace runs
         out we SIGKILL them and the journal's `running` records plus the
         snapshots let the next daemon warm-resume them. *)
      let running = running_jobs t in
      if running = [] then ()
      else if
        !hard_stop || Mclock.now () -. t.drain_started > t.cfg.drain_grace
      then begin
        List.iter
          (fun js ->
            match js.state with
            | Running rn ->
              log t "drain grace over: killing runner for %s (will resume)"
                js.job.Frame.job_id;
              kill_quiet rn.rn_pid;
              ignore (reap rn.rn_pid : Unix.process_status);
              close_quiet rn.rn_fd
            | _ -> ())
          running
      end
      else step ()
    end
    else step ()
  and step () =
    (* scripted self-crash: a deterministic stand-in for a segfaulting
       daemon, used by the supervisor's crash-loop tests *)
    (match crash_at with
    | Some at when Mclock.now () >= at ->
      Unix.kill (Unix.getpid ()) Sys.sigkill
    | _ -> ());
    try_rearm t;
    try_spawn t;
    let conn_fds = List.map (fun c -> c.c_fd) t.conns in
    let runner_fds =
      List.filter_map
        (fun js ->
          match js.state with Running rn -> Some rn.rn_fd | _ -> None)
        (running_jobs t)
    in
    let listen_fds = match t.listen_fd with Some fd -> [ fd ] | None -> [] in
    let readable, _, _ =
      try Unix.select (listen_fds @ conn_fds @ runner_fds) [] [] 0.1
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    if List.exists (fun fd -> List.mem fd listen_fds) readable then
      accept_pending t;
    List.iter
      (fun c -> if List.mem c.c_fd readable then handle_conn_readable t c)
      (List.filter (fun c -> List.exists (fun x -> x.c_fd == c.c_fd) t.conns)
         t.conns);
    List.iter
      (fun js ->
        match js.state with
        | Running rn when List.mem rn.rn_fd readable ->
          handle_runner_readable t js rn
        | _ -> ())
      (running_jobs t);
    enforce_watchdogs t;
    shed_stalled_conns t;
    loop ()
  in
  loop ();
  List.iter (fun c -> close_quiet c.c_fd) t.conns;
  (match t.listen_fd with
  | Some fd ->
    close_quiet fd;
    (match sockaddr_of_spec cfg.socket with
    | Unix.ADDR_UNIX path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | _ -> ())
  | None -> ());
  (* last chance to land buffered records before exit; failures leave the
     (idempotent) journal one life behind — the next replay re-runs those
     jobs rather than losing them *)
  if t.pending <> [] then begin
    t.retry_at <- 0.0;
    try_rearm t;
    match t.durability with
    | Durable -> ()
    | Degraded _ ->
      loud "exiting degraded with %d unflushed journal record(s)"
        (List.length t.pending)
  end;
  (match t.reserve_fd with Some fd -> close_quiet fd | None -> ());
  Journal.close t.journal;
  log t "drained; %d jobs completed this life" t.completed;
  0
