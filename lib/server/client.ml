module Frame = Colib_portfolio.Frame
module Chaos = Colib_check.Chaos
module Mclock = Colib_clock.Mclock

(* ------------------------------------------------------------------ *)
(* Failure taxonomy. The retry loop treats these distinctly:
   - Unreachable / Disconnected / Protocol are transient: a daemon that is
     restarting after a crash looks exactly like this, so we retry with
     backoff;
   - Overloaded is transient but *informed*: the daemon told us it shed the
     job, so we also retry with backoff (the job was never accepted, a
     resubmit is safe);
   - Rejected is permanent: the request itself is bad; retrying cannot
     help and would hammer the daemon. *)

type failure =
  | Unreachable of string   (** connect failed: daemon down or socket gone *)
  | Disconnected of string  (** the connection died mid-exchange *)
  | Protocol of string      (** garbage, truncated, or misdirected frames *)
  | Overloaded of { queued : int; capacity : int }
  | Unavailable of string   (** durability degraded: disk full / I/O errors *)
  | Rejected of { job_id : string; reason : string }
  | Session_expired of string  (** the session's lease lapsed; permanent *)
  | Session_evicted of string  (** the session was LRU-shed; permanent *)

let failure_to_string = function
  | Unreachable m -> "daemon unreachable: " ^ m
  | Disconnected m -> "disconnected: " ^ m
  | Protocol m -> "protocol violation: " ^ m
  | Overloaded { queued; capacity } ->
    Printf.sprintf "daemon overloaded (queue %d/%d)" queued capacity
  | Unavailable reason -> "daemon unavailable: " ^ reason
  | Rejected { job_id; reason } ->
    Printf.sprintf "job %s rejected: %s" job_id reason
  | Session_expired sid -> Printf.sprintf "session %s expired" sid
  | Session_evicted sid -> Printf.sprintf "session %s evicted" sid

(* Session_expired / Session_evicted are permanent BY DESIGN: the daemon
   reaped the session's state, so no amount of retrying the same frame can
   succeed — the client must open a fresh session and replay its own edit
   history. Retrying would hammer a daemon that already answered. *)
let transient = function
  | Unreachable _ | Disconnected _ | Protocol _ | Overloaded _
  | Unavailable _ -> true
  | Rejected _ | Session_expired _ | Session_evicted _ -> false

type give_up = {
  attempts : int;
  last : failure;  (** the failure of the final attempt *)
}

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let connect socket =
  match Server.sockaddr_of_spec socket with
  | addr -> (
    let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> Ok fd
    | exception Unix.Unix_error (e, _, _) ->
      close_quiet fd;
      Error (Unreachable (Unix.error_message e)))
  | exception Invalid_argument m -> Error (Unreachable m)

let send_request fd ~deadline req =
  match Frame.write_frame ~deadline fd (Frame.encode_request req) with
  | Ok () -> Ok ()
  | Error Frame.Closed -> Error (Disconnected "peer closed while writing")
  | Error Frame.Io_timeout -> Error (Disconnected "write timed out")
  | Error (Frame.Io_failed m) -> Error (Disconnected m)

let read_response fd ~deadline =
  match Frame.read_frame ~deadline fd with
  | Ok payload -> (
    match Frame.decode_response payload with
    | Ok resp -> Ok resp
    | Error e -> Error (Protocol (Frame.error_to_string e)))
  | Error (Frame.Read_closed 0) -> Error (Disconnected "no reply")
  | Error (Frame.Read_closed n) ->
    Error (Disconnected (Printf.sprintf "reply truncated after %d bytes" n))
  | Error Frame.Read_timeout -> Error (Disconnected "reply timed out")
  | Error (Frame.Read_frame e) -> Error (Protocol (Frame.error_to_string e))
  | Error (Frame.Read_failed m) -> Error (Disconnected m)

(* ------------------------------------------------------------------ *)
(* One attempt of the submit exchange: connect, submit, then read until a
   Result arrives. The daemon replies [Accepted] first; the subsequent
   result read runs under the job's own deadline plus slack, because a
   legitimate solve takes up to the deadline. *)

let one_attempt ~socket ~reply_slack (job : Frame.job) =
  match connect socket with
  | Error _ as e -> e
  | Ok fd -> (
    let finish r = close_quiet fd; r in
    let io_deadline = Mclock.now () +. 10.0 in
    match send_request fd ~deadline:io_deadline (Frame.Submit job) with
    | Error _ as e -> finish e
    | Ok () -> (
      match read_response fd ~deadline:io_deadline with
      | Error _ as e -> finish e
      | Ok (Frame.Overloaded { queued; capacity }) ->
        finish (Error (Overloaded { queued; capacity }))
      | Ok (Frame.Unavailable { u_reason }) ->
        finish (Error (Unavailable u_reason))
      | Ok (Frame.Rejected { rj_job_id; reason }) ->
        finish (Error (Rejected { job_id = rj_job_id; reason }))
      | Ok (Frame.Result r) -> finish (Ok r)
      | Ok (Frame.Accepted _) -> (
        let result_deadline =
          Mclock.now () +. job.Frame.deadline +. reply_slack
        in
        match read_response fd ~deadline:result_deadline with
        | Ok (Frame.Result r) -> finish (Ok r)
        | Ok (Frame.Unavailable { u_reason }) ->
          (* the daemon's durability degraded between accepting the job
             and delivering its result; the job is journaled (or will be
             re-run from the journal on the next life), so this is a
             transient condition to retry — not a protocol violation *)
          finish (Error (Unavailable u_reason))
        | Ok _ ->
          finish (Error (Protocol "expected a Result after Accepted"))
        | Error _ as e -> finish e)
      | Ok
          ( Frame.Pong | Frame.Health_report _ | Frame.Sess_ok _
          | Frame.Sess_answer _ | Frame.Sess_expired _ | Frame.Sess_evicted _
            ) ->
        finish (Error (Protocol "unexpected reply to Submit"))))

(* ------------------------------------------------------------------ *)
(* Chaos injection: perform the scripted fault instead of the real
   exchange, so tests drive the daemon through its network fault paths
   with the client's own machinery. *)

let inject_fault ~socket fault (job : Frame.job) =
  match fault with
  | Chaos.Daemon_sigkill ->
    (* only the harness can kill the daemon; from in here it just looks
       like a dead socket *)
    Error (Unreachable "daemon killed by harness")
  | Chaos.Disconnect_mid_frame -> (
    match connect socket with
    | Error _ as e -> e
    | Ok fd ->
      let wire = Frame.encode (Frame.encode_request (Frame.Submit job)) in
      let half = max 1 (String.length wire / 2) in
      (try ignore (Unix.write_substring fd wire 0 half : int)
       with Unix.Unix_error _ -> ());
      close_quiet fd;
      Error (Disconnected "injected: vanished mid-frame"))
  | Chaos.Slow_loris pace -> (
    match connect socket with
    | Error _ as e -> e
    | Ok fd ->
      let wire = Frame.encode (Frame.encode_request (Frame.Submit job)) in
      let rec drip i =
        if i >= String.length wire then
          Error (Disconnected "injected: slow-loris completed unexpectedly")
        else begin
          match Unix.write_substring fd wire i 1 with
          | _ -> Unix.sleepf pace; drip (i + 1)
          | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _)
            ->
            (* the daemon shed us: exactly what the test wants to see *)
            Error (Disconnected "injected: shed by the daemon mid-drip")
        end
      in
      let r = drip 0 in
      close_quiet fd;
      r)
  | Chaos.Net_garbage -> (
    match connect socket with
    | Error _ as e -> e
    | Ok fd ->
      let junk = String.init 64 (fun i -> Char.chr ((i * 37 + 11) land 0xff)) in
      (try ignore (Unix.write_substring fd junk 0 (String.length junk) : int)
       with Unix.Unix_error _ -> ());
      (* the daemon answers garbage with a typed Rejected, then closes *)
      let r =
        match read_response fd ~deadline:(Mclock.now () +. 5.0) with
        | Ok (Frame.Rejected { reason; _ }) ->
          Error (Protocol ("injected garbage; daemon replied: " ^ reason))
        | Ok _ -> Error (Protocol "injected garbage; unexpected reply")
        | Error f -> Error f
      in
      close_quiet fd;
      r)
  | Chaos.Net_truncated_frame -> (
    match connect socket with
    | Error _ as e -> e
    | Ok fd ->
      let wire = Frame.encode (Frame.encode_request (Frame.Submit job)) in
      (* full header (17 bytes) plus part of the payload, then EOF *)
      let cut = min (String.length wire) 21 in
      (try ignore (Unix.write_substring fd wire 0 cut : int)
       with Unix.Unix_error _ -> ());
      close_quiet fd;
      Error (Disconnected "injected: frame truncated at EOF"))

(* ------------------------------------------------------------------ *)
(* The retry loop: capped exponential backoff with deterministic jitter.
   delay(i) = min cap (base * 2^i) * (0.5 + u) with u uniform in [0,1)
   from a seeded PRNG, so retry storms from many clients decorrelate while
   tests stay reproducible. *)

type sleeper = float -> unit

let submit ?(retries = 4) ?(backoff = 0.1) ?(backoff_cap = 2.0)
    ?(jitter_seed = 0) ?(reply_slack = 30.0) ?chaos
    ?(sleep : sleeper = Unix.sleepf) ?on_attempt ~socket (job : Frame.job) =
  Frame.ignore_sigpipe ();
  let rng = Random.State.make [| jitter_seed; Hashtbl.hash job.Frame.job_id |] in
  let rec attempt i last =
    if i > retries then Error { attempts = i; last }
    else begin
      (match on_attempt with Some f -> f i | None -> ());
      let outcome =
        match chaos with
        | Some plan -> (
          match Chaos.net_fault_for plan i with
          | Some fault -> inject_fault ~socket fault job
          | None -> one_attempt ~socket ~reply_slack job)
        | None -> one_attempt ~socket ~reply_slack job
      in
      match outcome with
      | Ok r -> Ok r
      | Error f when transient f && i < retries ->
        let base = backoff *. (2.0 ** float_of_int i) in
        let delay = min backoff_cap base *. (0.5 +. Random.State.float rng 1.0)
        in
        sleep delay;
        attempt (i + 1) f
      | Error f -> Error { attempts = i + 1; last = f }
    end
  in
  attempt 0 (Unreachable "no attempt made")

let ping ?(timeout = 5.0) ~socket () =
  Frame.ignore_sigpipe ();
  match connect socket with
  | Error f -> Error f
  | Ok fd ->
    let deadline = Mclock.now () +. timeout in
    let r =
      match send_request fd ~deadline Frame.Ping with
      | Error _ as e -> e
      | Ok () -> (
        match read_response fd ~deadline with
        | Ok Frame.Pong -> Ok ()
        | Ok _ -> Error (Protocol "expected Pong")
        | Error _ as e -> e)
    in
    close_quiet fd;
    r

let health ?(timeout = 5.0) ~socket () =
  Frame.ignore_sigpipe ();
  match connect socket with
  | Error f -> Error f
  | Ok fd ->
    let deadline = Mclock.now () +. timeout in
    let r =
      match send_request fd ~deadline Frame.Health with
      | Error _ as e -> e
      | Ok () -> (
        match read_response fd ~deadline with
        | Ok (Frame.Health_report h) -> Ok h
        | Ok _ -> Error (Protocol "expected Health_report")
        | Error _ as e -> e)
    in
    close_quiet fd;
    r

(* ------------------------------------------------------------------ *)
(* Incremental sessions: each frame is one connect/exchange under the same
   retry discipline as [submit]. Frames are idempotent server-side (by
   sequence number), so an at-least-once retry after a crash or disconnect
   is safe: the daemon answers a duplicate from its journal-backed state
   with [replayed = true] instead of re-applying. *)

type sess_ack = { ack_seq : int; ack_replayed : bool }

let with_retries ?(retries = 4) ?(backoff = 0.1) ?(backoff_cap = 2.0)
    ?(jitter_seed = 0) ?(sleep : sleeper = Unix.sleepf) ~key attempt =
  Frame.ignore_sigpipe ();
  let rng = Random.State.make [| jitter_seed; Hashtbl.hash key |] in
  let rec go i last =
    if i > retries then Error { attempts = i; last }
    else
      match attempt () with
      | Ok r -> Ok r
      | Error f when transient f && i < retries ->
        let base = backoff *. (2.0 ** float_of_int i) in
        let delay =
          min backoff_cap base *. (0.5 +. Random.State.float rng 1.0)
        in
        sleep delay;
        go (i + 1) f
      | Error f -> Error { attempts = i + 1; last = f }
  in
  go 0 (Unreachable "no attempt made")

(* one session exchange; [classify] maps the typed response to the
   caller's result, after the failure taxonomy is peeled off *)
let sess_exchange ~socket ~timeout req classify =
  match connect socket with
  | Error _ as e -> e
  | Ok fd -> (
    let finish r = close_quiet fd; r in
    let deadline = Mclock.now () +. timeout in
    match send_request fd ~deadline req with
    | Error _ as e -> finish e
    | Ok () -> (
      match read_response fd ~deadline with
      | Error _ as e -> finish e
      | Ok (Frame.Sess_expired { sx_sid }) ->
        finish (Error (Session_expired sx_sid))
      | Ok (Frame.Sess_evicted { sv_sid }) ->
        finish (Error (Session_evicted sv_sid))
      | Ok (Frame.Overloaded { queued; capacity }) ->
        finish (Error (Overloaded { queued; capacity }))
      | Ok (Frame.Unavailable { u_reason }) ->
        finish (Error (Unavailable u_reason))
      | Ok (Frame.Rejected { rj_job_id; reason }) ->
        finish (Error (Rejected { job_id = rj_job_id; reason }))
      | Ok resp -> finish (classify resp)))

let ack_of = function
  | Frame.Sess_ok { sk_seq; sk_replayed; _ } ->
    Ok { ack_seq = sk_seq; ack_replayed = sk_replayed }
  | _ -> Error (Protocol "expected Sess_ok")

let sess_open ?retries ?backoff ?backoff_cap ?jitter_seed ?sleep
    ?(timeout = 10.0) ?(lease = 0.0) ~socket ~sid ~vertices ~colors ~edges ()
    =
  with_retries ?retries ?backoff ?backoff_cap ?jitter_seed ?sleep ~key:sid
    (fun () ->
      sess_exchange ~socket ~timeout
        (Frame.Sess_open
           {
             so_sid = sid;
             so_vertices = vertices;
             so_colors = colors;
             so_edges = edges;
             so_lease = lease;
           })
        ack_of)

let sess_edit ?retries ?backoff ?backoff_cap ?jitter_seed ?sleep
    ?(timeout = 10.0) ~socket ~sid ~seq edit =
  let op = Colib_session.Session.edit_to_string edit in
  with_retries ?retries ?backoff ?backoff_cap ?jitter_seed ?sleep ~key:sid
    (fun () ->
      sess_exchange ~socket ~timeout
        (Frame.Sess_edit { se_sid = sid; se_seq = seq; se_op = op })
        ack_of)

let sess_query ?retries ?backoff ?backoff_cap ?jitter_seed ?sleep
    ?(reply_slack = 30.0) ?(budget = 0.0) ~socket ~sid ~seq () =
  with_retries ?retries ?backoff ?backoff_cap ?jitter_seed ?sleep ~key:sid
    (fun () ->
      sess_exchange ~socket
        ~timeout:((if budget > 0.0 then budget else 30.0) +. reply_slack)
        (Frame.Sess_query { sq_sid = sid; sq_seq = seq; sq_budget = budget })
        (function
          | Frame.Sess_answer a -> Ok a
          | _ -> Error (Protocol "expected Sess_answer")))

let sess_close ?retries ?backoff ?backoff_cap ?jitter_seed ?sleep
    ?(timeout = 10.0) ~socket ~sid () =
  with_retries ?retries ?backoff ?backoff_cap ?jitter_seed ?sleep ~key:sid
    (fun () ->
      sess_exchange ~socket ~timeout (Frame.Sess_close { sc_sid = sid })
        ack_of)
