module Types = Colib_solver.Types

type t = {
  mutable tick : int;
  kill : int -> bool;
  mutable fired : int list;
}

let scripted ~kill =
  { tick = 0; kill = (fun i -> List.mem i kill); fired = [] }

let always () = { tick = 0; kill = (fun _ -> true); fired = [] }

let ticks t = t.tick
let fired t = List.rev t.fired

let instrument t budget =
  let i = t.tick in
  t.tick <- t.tick + 1;
  if t.kill i then begin
    t.fired <- i :: t.fired;
    (* the hook fires on the very first poll: the stage observes a
       cooperative cancellation before spending any real search effort *)
    { budget with Types.cancel = Some (fun () -> true) }
  end
  else budget
