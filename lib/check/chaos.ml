module Types = Colib_solver.Types

type t = {
  mutable tick : int;
  kill : int -> bool;
  mutable fired : int list;
}

let scripted ~kill =
  { tick = 0; kill = (fun i -> List.mem i kill); fired = [] }

let always () = { tick = 0; kill = (fun _ -> true); fired = [] }

let ticks t = t.tick
let fired t = List.rev t.fired

let instrument t budget =
  let i = t.tick in
  t.tick <- t.tick + 1;
  if t.kill i then begin
    t.fired <- i :: t.fired;
    (* the hook fires on the very first poll: the stage observes a
       cooperative cancellation before spending any real search effort *)
    { budget with Types.cancel = Some (fun () -> true) }
  end
  else budget

(* ------------------------------------------------------------------ *)
(* Process-level faults for the supervised portfolio: where the scripts
   above sabotage a stage *inside* one process, these sabotage a whole
   worker — the supervision loop must contain and classify each of them
   without losing the run. *)

type process_fault =
  | Segfault
  | Hang
  | Garbage
  | Truncated_frame
  | Alloc_bomb
  | Kill_mid_solve of float
  | Forged_share

type process_plan = (int * process_fault) list

let process_scripted faults = faults

let process_fault_for plan index = List.assoc_opt index plan

let process_fault_name = function
  | Segfault -> "segfault"
  | Hang -> "hang"
  | Garbage -> "garbage"
  | Truncated_frame -> "truncated frame"
  | Alloc_bomb -> "alloc bomb"
  | Kill_mid_solve d -> Printf.sprintf "SIGKILL after %.3fs" d
  | Forged_share -> "forged clause-share frames"

(* ------------------------------------------------------------------ *)
(* Network faults for the coloring service: where the process faults above
   sabotage a forked worker, these sabotage a client connection — the
   daemon must contain and classify each of them without hanging, trusting
   corrupt bytes, or losing an accepted job. *)

type net_fault =
  | Disconnect_mid_frame
  | Slow_loris of float
  | Net_garbage
  | Net_truncated_frame
  | Daemon_sigkill

type net_plan = (int * net_fault) list

let net_scripted faults = faults

let net_fault_for plan index = List.assoc_opt index plan

let net_fault_name = function
  | Disconnect_mid_frame -> "client disconnect mid-frame"
  | Slow_loris d -> Printf.sprintf "slow-loris writer (%.3fs/byte)" d
  | Net_garbage -> "garbage bytes on the socket"
  | Net_truncated_frame -> "truncated request frame"
  | Daemon_sigkill -> "SIGKILL of the daemon mid-job"

(* ------------------------------------------------------------------ *)
(* Filesystem faults: where the net faults above sabotage a connection,
   these sabotage the durable syscalls underneath every journal append,
   checkpoint write and bench table — thin delegates to Colib_io.Fault so
   chaos tests compose every fault family from one module. *)

module Fault = Colib_io.Fault

type fs_fault = Fault.kind = Enospc | Eio | Emfile
type fs_plan = Fault.t

let fs_scripted = Fault.scripted
let fs_windows = Fault.windows
let fs_timed = Fault.timed
let fs_seeded = Fault.seeded
let fs_install = Fault.install
let fs_clear = Fault.clear
let fs_fault_name = Fault.kind_name
let fs_ops = Fault.ops
let fs_injected = Fault.injected

(* ------------------------------------------------------------------ *)
(* Worker-lifecycle faults for the warm pool: where the process faults
   sabotage a portfolio worker from the inside, these kill or wedge a
   *resident pool worker* from the outside, mid-job — the pool supervisor
   must respawn the worker and the daemon must requeue the job it held.
   Plans are consulted once per pool dispatch, with the dispatch's 0-based
   index, so a scripted plan reproduces the same fault sequence on every
   run and a seeded plan is a pure function of its seed. *)

type worker_fault =
  | Worker_kill
  | Worker_hang

type worker_plan = int -> worker_fault option

let worker_scripted faults index = List.assoc_opt index faults

let worker_seeded ~seed ~p =
  let rng = Random.State.make [| seed; 0x9e3779b9 |] in
  fun _index ->
    (* one roll per dispatch, drawn in dispatch order *)
    if Random.State.float rng 1.0 < p then
      if Random.State.bool rng then Some Worker_kill else Some Worker_hang
    else None

let worker_fault_for (plan : worker_plan) index = plan index

let worker_fault_name = function
  | Worker_kill -> "SIGKILL of the pool worker mid-job"
  | Worker_hang -> "SIGSTOP of the pool worker mid-job"
