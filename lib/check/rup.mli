(** Independent replay of solver proof traces by unit propagation alone.

    This checker shares no search code with {!Colib_solver.Engine}: no
    two-watched-literal scheme, no conflict analysis, no branching — only
    the constraint data types ({!Colib_sat.Lit}, {!Colib_sat.Pbc}
    normalization) and the {!Colib_sat.Proof} step format. Each [Learn]
    step is admitted only if assuming the negation of its literals drives
    counting-based unit propagation (over both clauses and PB slack
    counters) into a conflict; [Improve] steps are admitted only if the
    embedded model satisfies the original formula, matches the declared
    cost, and strictly improves on the previous bound; [Substitute] steps
    are admitted only if both defining binaries of every equivalence are
    themselves RUP (the binaries then join the database, so the rewritten
    clauses that follow are plain [Learn]s); [Eliminate] steps are
    structural markers whose witness clauses must each contain the pivot
    and still be live in the database; [Contradiction] is
    admitted only once propagation alone refutes the accumulated database.

    A successful [Unsat_claim] replay therefore proves the formula
    unsatisfiable, and a successful [Optimal_claim c] replay proves [c] is
    the exact minimum of the objective — without trusting the search. *)

type failure =
  | Not_rup of int
      (** step index: the clause (or contradiction) is not derivable by
          unit propagation from the current database *)
  | Unknown_deletion of int
      (** step index: deletion of a clause that is not in the database *)
  | Bad_model of int * string
      (** step index: the [Improve] model is invalid, with the reason *)
  | Bad_substitution of int * string
      (** step index: a [Substitute] map is malformed or its equivalences
          are not entailed by unit propagation *)
  | Bad_witness of int * string
      (** step index: an [Eliminate] witness is empty, misses its pivot,
          or names a clause that is not live in the database *)
  | No_contradiction
      (** the claim needs a refutation the proof never derives *)
  | Unexpected_model
      (** an [Unsat_claim] proof exhibits a model of the formula *)
  | Cost_mismatch of { claimed : int; proved : int option }
      (** the optimality claim does not match the best model in the proof *)

val failure_to_string : failure -> string

type verdict = {
  steps_checked : int;
  contradiction : bool;  (** the empty clause was derived *)
  best_cost : int option;
      (** objective value of the last admitted [Improve] model *)
}

val check :
  Colib_sat.Formula.t ->
  Colib_sat.Proof.step list ->
  (verdict, failure) result
(** Replay every step against the formula. *)

val check_claim :
  Colib_sat.Formula.t ->
  Colib_sat.Proof.claim ->
  Colib_sat.Proof.step list ->
  (verdict, failure) result
(** [check] plus the final claim comparison: [Unsat_claim] requires a
    contradiction and no model; [Optimal_claim c] requires a model of cost
    exactly [c] and a contradiction refuting every cheaper cost. *)
