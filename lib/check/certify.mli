(** Independent result certification.

    The solving stack's headline claims all rest on trusting the engines'
    outcomes; orbitope-style and lex-leader SBPs are only sound if they
    preserve at least one optimal solution (Kaibel & Pfetsch; Codish &
    Janota). This module re-derives every claim from first principles,
    sharing no code with the search: colorings are checked directly against
    the graph, models directly against the formula text, and — on small
    instances — whole SBP-augmented encodings against the brute-force
    oracle. A certificate failure means a solver or encoding bug, never user
    error. *)

type failure =
  | Coloring_length of { expected : int; actual : int }
  | Color_out_of_range of { vertex : int; color : int; k : int }
  | Improper_edge of { u : int; v : int; color : int }
  | Too_many_colors of { claimed : int; used : int }
  | Model_length of { expected : int; actual : int }
  | Unsatisfied_clause of { index : int }
  | Unsatisfied_pb of { index : int }
  | Objective_mismatch of { claimed : int; actual : int }
  | Bounds_inverted of { lower : int; upper : int }
  | Not_a_clique of { u : int; v : int }
  | Optimum_lost of { brute : int; solved : int option }

val failure_to_string : failure -> string
val pp_failure : Format.formatter -> failure -> unit

val coloring :
  Colib_graph.Graph.t -> k:int -> claimed:int -> int array ->
  (unit, failure) result
(** [coloring g ~k ~claimed col] checks that [col] assigns every vertex a
    color in [[0, k)], that adjacent vertices differ, and that at most
    [claimed] distinct colors are used. *)

val model :
  Colib_sat.Formula.t -> bool array -> (unit, failure) result
(** [model f m] checks that [m] satisfies every clause and every PB
    constraint of [f], identifying the first violated constraint. *)

val model_cost :
  Colib_sat.Formula.t -> bool array -> claimed:int -> (unit, failure) result
(** [model_cost f m ~claimed] checks that the objective value of [m] equals
    the claimed cost. *)

val bounds : lower:int -> upper:int -> (unit, failure) result

val clique : Colib_graph.Graph.t -> int array -> (unit, failure) result
(** Validate a clique certificate (the witness behind a lower bound). *)

val solution :
  Colib_graph.Graph.t -> lower:int -> upper:int -> chromatic:int option ->
  int array -> (unit, failure) result
(** Certify a complete bounds-plus-coloring answer: [lower <= upper], any
    claimed chromatic number inside the bounds, and the coloring proper
    within [upper] colors. *)

val sbp_preserves_optimum :
  ?engine:Colib_solver.Types.engine -> ?timeout:float ->
  Colib_graph.Graph.t -> k:int -> Colib_encode.Sbp.construction ->
  (unit, failure) result
(** Small-instance oracle check: encode [g] at color limit [k], add the
    given SBP construction, solve, and compare against
    [Brute.chromatic_number]. The SBP is sound iff the encoding still
    reaches the brute-force optimum (or is unsatisfiable exactly when the
    optimum exceeds [k]). A run that exhausts its budget is inconclusive and
    reported as [Ok] — use only on instances small enough to solve. *)
