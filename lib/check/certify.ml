module Graph = Colib_graph.Graph
module Brute = Colib_graph.Brute
module Formula = Colib_sat.Formula
module Clause = Colib_sat.Clause
module Pbc = Colib_sat.Pbc
module Lit = Colib_sat.Lit
module Encoding = Colib_encode.Encoding
module Sbp = Colib_encode.Sbp
module Types = Colib_solver.Types
module Optimize = Colib_solver.Optimize

type failure =
  | Coloring_length of { expected : int; actual : int }
  | Color_out_of_range of { vertex : int; color : int; k : int }
  | Improper_edge of { u : int; v : int; color : int }
  | Too_many_colors of { claimed : int; used : int }
  | Model_length of { expected : int; actual : int }
  | Unsatisfied_clause of { index : int }
  | Unsatisfied_pb of { index : int }
  | Objective_mismatch of { claimed : int; actual : int }
  | Bounds_inverted of { lower : int; upper : int }
  | Not_a_clique of { u : int; v : int }
  | Optimum_lost of { brute : int; solved : int option }

let failure_to_string = function
  | Coloring_length { expected; actual } ->
    Printf.sprintf "coloring has %d entries, graph has %d vertices" actual
      expected
  | Color_out_of_range { vertex; color; k } ->
    Printf.sprintf "vertex %d has color %d outside [0, %d)" vertex color k
  | Improper_edge { u; v; color } ->
    Printf.sprintf "adjacent vertices %d and %d share color %d" u v color
  | Too_many_colors { claimed; used } ->
    Printf.sprintf "claimed %d colors but the coloring uses %d" claimed used
  | Model_length { expected; actual } ->
    Printf.sprintf "model has %d entries, formula has %d variables" actual
      expected
  | Unsatisfied_clause { index } ->
    Printf.sprintf "clause %d is falsified by the model" index
  | Unsatisfied_pb { index } ->
    Printf.sprintf "PB constraint %d is violated by the model" index
  | Objective_mismatch { claimed; actual } ->
    Printf.sprintf "claimed objective %d but the model costs %d" claimed
      actual
  | Bounds_inverted { lower; upper } ->
    Printf.sprintf "lower bound %d exceeds upper bound %d" lower upper
  | Not_a_clique { u; v } ->
    Printf.sprintf "clique certificate contains non-adjacent pair (%d, %d)" u
      v
  | Optimum_lost { brute; solved } ->
    Printf.sprintf "brute-force optimum is %d but the encoding yields %s"
      brute
      (match solved with Some c -> string_of_int c | None -> "no solution")

let pp_failure ppf f = Format.pp_print_string ppf (failure_to_string f)

let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e

let coloring g ~k ~claimed col =
  let n = Graph.num_vertices g in
  if Array.length col <> n then
    Error (Coloring_length { expected = n; actual = Array.length col })
  else begin
    let bad = ref None in
    Array.iteri
      (fun v c ->
        if !bad = None && (c < 0 || c >= k) then
          bad := Some (Color_out_of_range { vertex = v; color = c; k }))
      col;
    match !bad with
    | Some f -> Error f
    | None ->
      let improper = ref None in
      Graph.iter_edges
        (fun u v ->
          if !improper = None && col.(u) = col.(v) then
            improper := Some (Improper_edge { u; v; color = col.(u) }))
        g;
      (match !improper with
      | Some f -> Error f
      | None ->
        let used = Graph.count_colors col in
        if used > claimed then Error (Too_many_colors { claimed; used })
        else Ok ())
  end

let model f m =
  if Array.length m < Formula.num_vars f then
    Error
      (Model_length { expected = Formula.num_vars f; actual = Array.length m })
  else begin
    let value l = if Lit.sign l then m.(Lit.var l) else not m.(Lit.var l) in
    let bad = ref None in
    let i = ref 0 in
    Formula.iter_clauses
      (fun c ->
        if !bad = None && not (List.exists value (Clause.to_list c)) then
          bad := Some (Unsatisfied_clause { index = !i });
        incr i)
      f;
    (match !bad with
    | Some e -> Error e
    | None ->
      let j = ref 0 in
      Formula.iter_pbs
        (fun p ->
          if !bad = None && not (Pbc.satisfied_by value p) then
            bad := Some (Unsatisfied_pb { index = !j });
          incr j)
        f;
      (match !bad with Some e -> Error e | None -> Ok ()))
  end

let model_cost f m ~claimed =
  let value l = if Lit.sign l then m.(Lit.var l) else not m.(Lit.var l) in
  let actual = Formula.objective_value f value in
  if actual <> claimed then Error (Objective_mismatch { claimed; actual })
  else Ok ()

let bounds ~lower ~upper =
  if lower > upper then Error (Bounds_inverted { lower; upper }) else Ok ()

let clique g vs =
  let n = Array.length vs in
  let bad = ref None in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if !bad = None && not (Graph.mem_edge g vs.(i) vs.(j)) then
        bad := Some (Not_a_clique { u = vs.(i); v = vs.(j) })
    done
  done;
  match !bad with Some f -> Error f | None -> Ok ()

let solution g ~lower ~upper ~chromatic col =
  let* () = bounds ~lower ~upper in
  let* () =
    match chromatic with
    | Some chi when chi < lower || chi > upper ->
      Error (Bounds_inverted { lower; upper = chi })
    | _ -> Ok ()
  in
  coloring g ~k:(max upper 1) ~claimed:upper col

let sbp_preserves_optimum ?(engine = Types.Pbs2) ?(timeout = 30.0) g ~k sbp =
  let brute = Brute.chromatic_number g in
  let enc = Encoding.encode g ~k in
  Sbp.add sbp enc;
  let f = enc.Encoding.formula in
  match Optimize.solve_formula engine f (Types.within_seconds timeout) with
  | Optimize.Optimal (m, c) ->
    if brute > k then Error (Optimum_lost { brute; solved = Some c })
    else if c <> brute then Error (Optimum_lost { brute; solved = Some c })
    else begin
      let* () = model f m in
      let* () = model_cost f m ~claimed:c in
      coloring g ~k ~claimed:c (Encoding.decode enc m)
    end
  | Optimize.Unsatisfiable ->
    if brute > k then Ok () else Error (Optimum_lost { brute; solved = None })
  | Optimize.Satisfiable _ | Optimize.Timeout _ ->
    (* inconclusive within the budget: not a certification failure *)
    Ok ()
