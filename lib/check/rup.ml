module Lit = Colib_sat.Lit
module Clause = Colib_sat.Clause
module Pbc = Colib_sat.Pbc
module Formula = Colib_sat.Formula
module Proof = Colib_sat.Proof

type failure =
  | Not_rup of int
  | Unknown_deletion of int
  | Bad_model of int * string
  | Bad_substitution of int * string
  | Bad_witness of int * string
  | No_contradiction
  | Unexpected_model
  | Cost_mismatch of { claimed : int; proved : int option }

let failure_to_string = function
  | Not_rup i ->
    Printf.sprintf "step %d is not derivable by unit propagation" i
  | Unknown_deletion i ->
    Printf.sprintf "step %d deletes a clause that is not in the database" i
  | Bad_model (i, why) -> Printf.sprintf "step %d: invalid model (%s)" i why
  | Bad_substitution (i, why) ->
    Printf.sprintf "step %d: invalid substitution (%s)" i why
  | Bad_witness (i, why) ->
    Printf.sprintf "step %d: invalid elimination witness (%s)" i why
  | No_contradiction -> "the proof never derives a contradiction"
  | Unexpected_model -> "an unsatisfiability proof exhibits a model"
  | Cost_mismatch { claimed; proved } ->
    Printf.sprintf "claimed optimum %d but the proof establishes %s" claimed
      (match proved with
      | None -> "no model at all"
      | Some c -> "optimum " ^ string_of_int c)

type verdict = {
  steps_checked : int;
  contradiction : bool;
  best_cost : int option;
}

(* --- checker state ---------------------------------------------------- *)
(* Counting-based propagation in the GRASP style, deliberately different
   from the engine's two-watched-literal scheme: every clause keeps a
   counter of falsified literal occurrences, maintained eagerly on assign
   and undo.  A clause is only scanned when its counter says it has gone
   unit or empty, so long learned clauses cost O(1) per falsification
   instead of a full re-scan.  Simpler, eager, independently written. *)

type ccls = {
  c_lits : int array;
  mutable c_alive : bool;
  mutable c_nfalse : int;  (* falsified occurrences under the current trail *)
}

type cpb = {
  p_coefs : int array;
  p_lits : int array;
  (* slack = sum of coefficients over non-false literals, minus the bound;
     the constraint is conflicting iff slack < 0, and forces literal [i]
     true as soon as [coefs.(i) > slack] *)
  mutable p_slack : int;
}

type state = {
  nvars : int;
  value : int array;   (* by variable: -1 undef / 0 false / 1 true *)
  trail : int array;   (* assigned literal indices, chronological *)
  mutable trail_size : int;
  mutable qhead : int;
  cls_occ : ccls list array;     (* by literal: clauses containing it *)
  pb_occ : (cpb * int) list array;  (* by literal: PBs containing it *)
  index : (int list, ccls list ref) Hashtbl.t;  (* sorted lits -> clauses *)
  mutable contra : bool;
}

let ivar l = l / 2
let icompl l = if l mod 2 = 0 then l + 1 else l - 1

let lit_val st l =
  let a = st.value.(ivar l) in
  if a < 0 then -1 else if l mod 2 = 0 then a else 1 - a

let assign st l =
  st.value.(ivar l) <- (if l mod 2 = 0 then 1 else 0);
  st.trail.(st.trail_size) <- l;
  st.trail_size <- st.trail_size + 1;
  (* the complement just became false: constraints holding it lose slack,
     clauses holding it gain a falsified occurrence *)
  let fl = icompl l in
  List.iter (fun (pb, coef) -> pb.p_slack <- pb.p_slack - coef) st.pb_occ.(fl);
  List.iter (fun c -> c.c_nfalse <- c.c_nfalse + 1) st.cls_occ.(fl)

let undo_to st mark =
  while st.trail_size > mark do
    st.trail_size <- st.trail_size - 1;
    let l = st.trail.(st.trail_size) in
    let fl = icompl l in
    List.iter
      (fun (pb, coef) -> pb.p_slack <- pb.p_slack + coef)
      st.pb_occ.(fl);
    List.iter (fun c -> c.c_nfalse <- c.c_nfalse - 1) st.cls_occ.(fl);
    st.value.(ivar l) <- -1
  done;
  st.qhead <- mark

(* Propagate to fixpoint; [true] on conflict. *)
let propagate st =
  let conflict = ref false in
  while (not !conflict) && st.qhead < st.trail_size do
    let p = st.trail.(st.qhead) in
    st.qhead <- st.qhead + 1;
    let falsified = icompl p in
    List.iter
      (fun c ->
        if c.c_alive && not !conflict then begin
          let n = Array.length c.c_lits in
          if c.c_nfalse >= n then conflict := true
          else if c.c_nfalse = n - 1 then begin
            (* exactly one occurrence is non-false: find it and, unless it
               already satisfies the clause, it is forced *)
            let j = ref 0 in
            while lit_val st c.c_lits.(!j) = 0 do
              incr j
            done;
            let l = c.c_lits.(!j) in
            if lit_val st l = -1 then assign st l
          end
        end)
      st.cls_occ.(falsified);
    if not !conflict then
      List.iter
        (fun (pb, _) ->
          if !conflict then ()
          else if pb.p_slack < 0 then conflict := true
          else
            Array.iteri
              (fun i l ->
                if pb.p_coefs.(i) > pb.p_slack && lit_val st l = -1 then
                  assign st l)
              pb.p_lits)
        st.pb_occ.(falsified)
  done;
  !conflict

let clause_key lits = List.sort_uniq compare (Array.to_list lits)

(* Permanently add a clause, then establish its root-level consequences. *)
let add_clause_perm st lits =
  let c = { c_lits = lits; c_alive = true; c_nfalse = 0 } in
  Array.iter
    (fun l -> if lit_val st l = 0 then c.c_nfalse <- c.c_nfalse + 1)
    lits;
  Array.iter (fun l -> st.cls_occ.(l) <- c :: st.cls_occ.(l)) lits;
  let key = clause_key lits in
  (match Hashtbl.find_opt st.index key with
  | Some r -> r := c :: !r
  | None -> Hashtbl.add st.index key (ref [ c ]));
  if not st.contra then begin
    let sat = ref false and unit_lit = ref (-1) and undef = ref 0 in
    Array.iter
      (fun l ->
        match lit_val st l with
        | 1 -> sat := true
        | -1 ->
          incr undef;
          unit_lit := l
        | _ -> ())
      lits;
    if not !sat then
      if !undef = 0 then st.contra <- true
      else if !undef = 1 then begin
        assign st !unit_lit;
        if propagate st then st.contra <- true
      end
  end

(* Permanently add a PB constraint (root level). *)
let add_pb_perm st (p : Pbc.t) =
  let plits = Array.map Lit.to_index p.Pbc.lits in
  let pb = { p_coefs = p.Pbc.coefs; p_lits = plits; p_slack = 0 } in
  let slack = ref (Pbc.slack_full p) in
  Array.iteri
    (fun i l -> if lit_val st l = 0 then slack := !slack - pb.p_coefs.(i))
    plits;
  pb.p_slack <- !slack;
  Array.iteri
    (fun i l -> st.pb_occ.(l) <- (pb, pb.p_coefs.(i)) :: st.pb_occ.(l))
    plits;
  if not st.contra then
    if pb.p_slack < 0 then st.contra <- true
    else begin
      Array.iteri
        (fun i l ->
          if pb.p_coefs.(i) > pb.p_slack && lit_val st l = -1 then
            assign st l)
        plits;
      if propagate st then st.contra <- true
    end

let init f =
  let nvars = Formula.num_vars f in
  let st =
    {
      nvars;
      value = Array.make (max nvars 1) (-1);
      trail = Array.make (max nvars 1) 0;
      trail_size = 0;
      qhead = 0;
      cls_occ = Array.make (2 * max nvars 1) [];
      pb_occ = Array.make (2 * max nvars 1) [];
      index = Hashtbl.create 256;
      contra = Formula.trivially_unsat f;
    }
  in
  Formula.iter_clauses
    (fun c -> add_clause_perm st (Array.map Lit.to_index (Clause.lits c)))
    f;
  Formula.iter_pbs (fun p -> add_pb_perm st p) f;
  st

let in_range st lits =
  Array.for_all (fun l -> l >= 0 && l < 2 * st.nvars) lits

(* Is the clause entailed by reverse unit propagation? Root-satisfied
   clauses are trivially entailed; otherwise assume every literal false and
   propagate. The trail is rolled back either way. *)
let rup_ok st lits =
  let mark = st.trail_size in
  let entailed = ref false in
  (try
     Array.iter
       (fun l ->
         match lit_val st l with
         | 1 ->
           entailed := true;
           raise Exit
         | 0 -> ()
         | _ -> assign st (icompl l))
       lits
   with Exit -> ());
  let ok = !entailed || propagate st in
  undo_to st mark;
  ok

let do_delete st ~step lits =
  match Hashtbl.find_opt st.index (clause_key lits) with
  | None -> Error (Unknown_deletion step)
  | Some r -> (
    match List.find_opt (fun c -> c.c_alive) !r with
    | None -> Error (Unknown_deletion step)
    | Some c ->
      (* deactivation only: root assignments this clause already forced
         stay on the trail, the drat-trim convention for deleted units *)
      c.c_alive <- false;
      Ok ())

(* Equivalent-literal substitution: the map is only admitted if both
   directions of every equivalence are RUP in sequence; the verified
   binaries then join the database permanently, exactly mirroring what the
   engine's simplifier adds on its side.  The rewritten clauses that follow
   in the trace are then ordinary RUP [Learn]s. *)
let do_substitute st ~step pairs =
  if pairs = [] then Error (Bad_substitution (step, "empty substitution"))
  else
    let rec go = function
      | [] -> Ok ()
      | (a, b) :: rest ->
        let a = Lit.to_index a and b = Lit.to_index b in
        if a < 0 || a >= 2 * st.nvars || b < 0 || b >= 2 * st.nvars then
          Error (Bad_substitution (step, "literal out of range"))
        else if ivar a = ivar b then
          Error (Bad_substitution (step, "literal mapped to its own variable"))
        else begin
          let fwd = [| icompl a; b |] in
          if not (rup_ok st fwd) then
            Error (Bad_substitution (step, "equivalence is not entailed"))
          else begin
            add_clause_perm st fwd;
            let bwd = [| a; icompl b |] in
            if not (st.contra || rup_ok st bwd) then
              Error (Bad_substitution (step, "equivalence is not entailed"))
            else begin
              add_clause_perm st bwd;
              go rest
            end
          end
        end
    in
    go pairs

(* Variable elimination marker: structural validation only.  Every witness
   clause must contain the pivot and be live in the database right now —
   i.e. the resolvents were already learned and the originals not yet
   deleted.  The database itself is untouched; the [Delete] steps that
   follow do the removal, and model soundness is enforced separately by
   [do_improve] checking reconstructed models against the full original
   formula. *)
let do_eliminate st ~step pivot witness =
  let p = Lit.to_index pivot in
  if p < 0 || p >= 2 * st.nvars then
    Error (Bad_witness (step, "pivot out of range"))
  else if witness = [] then Error (Bad_witness (step, "empty witness"))
  else
    let rec go = function
      | [] -> Ok ()
      | lits :: rest ->
        let arr = Array.of_list (List.map Lit.to_index lits) in
        if not (in_range st arr) then
          Error (Bad_witness (step, "witness literal out of range"))
        else if not (Array.exists (fun l -> l = p) arr) then
          Error (Bad_witness (step, "witness clause misses the pivot"))
        else (
          match Hashtbl.find_opt st.index (clause_key arr) with
          | Some r when List.exists (fun c -> c.c_alive) !r -> go rest
          | _ -> Error (Bad_witness (step, "witness clause is not live")))
    in
    go witness

let do_improve st f ~step ~model ~cost best =
  match Formula.objective f with
  | None -> Error (Bad_model (step, "the formula has no objective"))
  | Some _ ->
    if Array.length model <> st.nvars then
      Error (Bad_model (step, "wrong model width"))
    else begin
      let value l =
        if Lit.sign l then model.(Lit.var l) else not model.(Lit.var l)
      in
      (* checked against the full original formula — deletions never weaken
         the model side, so a forged "delete a constraint, then present a
         cheaper model" proof is rejected here *)
      if not (Formula.check_model f value) then
        Error (Bad_model (step, "the model violates the formula"))
      else
        let actual = Formula.objective_value f value in
        if actual <> cost then
          Error
            (Bad_model
               ( step,
                 Printf.sprintf "declared cost %d but the objective is %d"
                   cost actual ))
        else
          match !best with
          | Some b when cost >= b ->
            Error
              (Bad_model
                 ( step,
                   Printf.sprintf
                     "cost %d does not improve on the proven bound %d" cost b
                 ))
          | _ ->
            best := Some cost;
            (* mirror the strengthening loop: every cost >= [cost] is now
               forbidden, so the final contradiction proves optimality *)
            let obj = Option.get (Formula.objective f) in
            (match Pbc.make_le obj (cost - 1) with
            | Pbc.True -> ()
            | Pbc.False -> st.contra <- true
            | Pbc.Clause ls ->
              add_clause_perm st
                (Array.of_list (List.map Lit.to_index ls))
            | Pbc.Pb p -> add_pb_perm st p);
            Ok ()
    end

let check f proof_steps =
  let st = init f in
  let best = ref None in
  let rec go i = function
    | [] ->
      Ok { steps_checked = i; contradiction = st.contra; best_cost = !best }
    | step :: rest -> (
      let r =
        (* once the empty clause is derived everything is entailed; steps
           after that point are vacuously admitted *)
        if st.contra then Ok ()
        else
          match step with
          | Proof.Learn lits ->
            let arr = Array.of_list (List.map Lit.to_index lits) in
            if not (in_range st arr) then Error (Not_rup i)
            else if rup_ok st arr then begin
              add_clause_perm st arr;
              Ok ()
            end
            else Error (Not_rup i)
          | Proof.Delete lits ->
            let arr = Array.of_list (List.map Lit.to_index lits) in
            if not (in_range st arr) then Error (Unknown_deletion i)
            else do_delete st ~step:i arr
          | Proof.Improve { model; cost } ->
            do_improve st f ~step:i ~model ~cost best
          | Proof.Substitute pairs -> do_substitute st ~step:i pairs
          | Proof.Eliminate { pivot; witness } ->
            do_eliminate st ~step:i pivot witness
          | Proof.Contradiction -> Error (Not_rup i)
      in
      match r with Ok () -> go (i + 1) rest | Error f -> Error f)
  in
  go 0 proof_steps

let check_claim f claim proof_steps =
  match check f proof_steps with
  | Error _ as e -> e
  | Ok v -> (
    match claim with
    | Proof.Unsat_claim ->
      if v.best_cost <> None then Error Unexpected_model
      else if not v.contradiction then Error No_contradiction
      else Ok v
    | Proof.Optimal_claim c ->
      if v.best_cost <> Some c then
        Error (Cost_mismatch { claimed = c; proved = v.best_cost })
      else if not v.contradiction then Error No_contradiction
      else Ok v)
