(** Deterministic fault injection for the degradation ladder.

    A chaos script counts the budget acquisitions of a solving flow (one per
    portfolio stage, in order) and sabotages a chosen subset by installing a
    cancellation hook that fires immediately, forcing that stage to stop with
    [Cancelled] before doing any work. Tests use this to prove that every
    rung of the fallback ladder still yields certified-sound answers with
    correct provenance: kill the primary engine and the fallback must answer;
    kill everything and the flow must degrade to heuristic bounds — never to
    a wrong [Optimal].

    Scripts are pure counters: no randomness, no clocks, fully
    reproducible. *)

type t

val scripted : kill:int list -> t
(** [scripted ~kill] sabotages the budget acquisitions whose 0-based indices
    appear in [kill] and leaves the rest untouched. *)

val always : unit -> t
(** Sabotage every stage. *)

val instrument : t -> Colib_solver.Types.budget -> Colib_solver.Types.budget
(** The hook to pass as a flow's budget instrument. Each call advances the
    script clock by one. *)

val ticks : t -> int
(** How many budget acquisitions the script has seen. *)

val fired : t -> int list
(** The indices that were actually sabotaged, in firing order. *)

(** {1 Process-level faults}

    The scripts above sabotage a stage inside one process; these sabotage a
    whole portfolio worker. The supervisor ([Colib_portfolio.Portfolio])
    spawns workers in a deterministic order and consults the plan with each
    worker's 0-based spawn index, so a scripted plan reproduces the same
    fault sequence on every run. *)

type process_fault =
  | Segfault         (** the worker kills itself with SIGSEGV *)
  | Hang             (** the worker sleeps forever; only the watchdog stops it *)
  | Garbage          (** the worker writes seed-derived random bytes instead of
                         a frame and exits 0 *)
  | Truncated_frame  (** the worker writes a valid frame header but exits
                         mid-payload *)
  | Alloc_bomb       (** the worker raises [Out_of_memory] from its task, the
                         deterministic stand-in for an rlimit-induced OOM *)
  | Kill_mid_solve of float
      (** the worker arms a real-time timer that SIGKILLs it that many
          seconds into the solve — a genuine uncatchable death mid-search,
          the fault the checkpoint/resume layer exists for *)

type process_plan

val process_scripted : (int * process_fault) list -> process_plan
(** [(index, fault)] pairs: worker spawn [index] suffers [fault]; unlisted
    workers run clean. *)

val process_fault_for : process_plan -> int -> process_fault option
val process_fault_name : process_fault -> string
