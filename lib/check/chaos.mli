(** Deterministic fault injection for the degradation ladder.

    A chaos script counts the budget acquisitions of a solving flow (one per
    portfolio stage, in order) and sabotages a chosen subset by installing a
    cancellation hook that fires immediately, forcing that stage to stop with
    [Cancelled] before doing any work. Tests use this to prove that every
    rung of the fallback ladder still yields certified-sound answers with
    correct provenance: kill the primary engine and the fallback must answer;
    kill everything and the flow must degrade to heuristic bounds — never to
    a wrong [Optimal].

    Scripts are pure counters: no randomness, no clocks, fully
    reproducible. *)

type t

val scripted : kill:int list -> t
(** [scripted ~kill] sabotages the budget acquisitions whose 0-based indices
    appear in [kill] and leaves the rest untouched. *)

val always : unit -> t
(** Sabotage every stage. *)

val instrument : t -> Colib_solver.Types.budget -> Colib_solver.Types.budget
(** The hook to pass as a flow's budget instrument. Each call advances the
    script clock by one. *)

val ticks : t -> int
(** How many budget acquisitions the script has seen. *)

val fired : t -> int list
(** The indices that were actually sabotaged, in firing order. *)
