(** Deterministic fault injection for the degradation ladder.

    A chaos script counts the budget acquisitions of a solving flow (one per
    portfolio stage, in order) and sabotages a chosen subset by installing a
    cancellation hook that fires immediately, forcing that stage to stop with
    [Cancelled] before doing any work. Tests use this to prove that every
    rung of the fallback ladder still yields certified-sound answers with
    correct provenance: kill the primary engine and the fallback must answer;
    kill everything and the flow must degrade to heuristic bounds — never to
    a wrong [Optimal].

    Scripts are pure counters: no randomness, no clocks, fully
    reproducible. *)

type t

val scripted : kill:int list -> t
(** [scripted ~kill] sabotages the budget acquisitions whose 0-based indices
    appear in [kill] and leaves the rest untouched. *)

val always : unit -> t
(** Sabotage every stage. *)

val instrument : t -> Colib_solver.Types.budget -> Colib_solver.Types.budget
(** The hook to pass as a flow's budget instrument. Each call advances the
    script clock by one. *)

val ticks : t -> int
(** How many budget acquisitions the script has seen. *)

val fired : t -> int list
(** The indices that were actually sabotaged, in firing order. *)

(** {1 Process-level faults}

    The scripts above sabotage a stage inside one process; these sabotage a
    whole portfolio worker. The supervisor ([Colib_portfolio.Portfolio])
    spawns workers in a deterministic order and consults the plan with each
    worker's 0-based spawn index, so a scripted plan reproduces the same
    fault sequence on every run. *)

type process_fault =
  | Segfault         (** the worker kills itself with SIGSEGV *)
  | Hang             (** the worker sleeps forever; only the watchdog stops it *)
  | Garbage          (** the worker writes seed-derived random bytes instead of
                         a frame and exits 0 *)
  | Truncated_frame  (** the worker writes a valid frame header but exits
                         mid-payload *)
  | Alloc_bomb       (** the worker raises [Out_of_memory] from its task, the
                         deterministic stand-in for an rlimit-induced OOM *)
  | Kill_mid_solve of float
      (** the worker arms a real-time timer that SIGKILLs it that many
          seconds into the solve — a genuine uncatchable death mid-search,
          the fault the checkpoint/resume layer exists for *)
  | Forged_share
      (** the worker writes validly-framed but bogus clause-share messages
          (seed-derived junk clauses) before solving normally — the fault
          the RUP import quarantine exists for: peers must absorb the
          frames without their certified answers changing *)

type process_plan

val process_scripted : (int * process_fault) list -> process_plan
(** [(index, fault)] pairs: worker spawn [index] suffers [fault]; unlisted
    workers run clean. *)

val process_fault_for : process_plan -> int -> process_fault option
val process_fault_name : process_fault -> string

(** {1 Network faults}

    Faults on the coloring service's client/daemon boundary. The client's
    connection attempts are numbered from 0; a scripted plan assigns a
    fault to chosen attempts ([Colib_server.Client] injects them instead of
    performing the real exchange), so chaos tests reproduce the same fault
    sequence on every run. [Daemon_sigkill] names the one fault a client
    cannot inject — the test harness SIGKILLs the daemon itself — so that
    journals and reports share its name. *)

type net_fault =
  | Disconnect_mid_frame
      (** connect, write half a request frame, vanish: the daemon must
          drop the connection without creating a job *)
  | Slow_loris of float
      (** trickle the request one byte per interval: the daemon's
          per-connection I/O deadline must shed the writer *)
  | Net_garbage
      (** bytes that are not a frame at all: typed reject, never a crash *)
  | Net_truncated_frame
      (** a valid frame header, then EOF mid-payload *)
  | Daemon_sigkill
      (** the daemon dies uncleanly mid-job; restart must replay the
          journal and warm-resume the job *)

type net_plan

val net_scripted : (int * net_fault) list -> net_plan
(** [(attempt, fault)] pairs: connection attempt [attempt] suffers [fault];
    unlisted attempts run clean. *)

val net_fault_for : net_plan -> int -> net_fault option
val net_fault_name : net_fault -> string

(** {1 Filesystem faults}

    Faults on the durable-I/O boundary ({!Colib_io.Durable}): disk-full
    windows, transient I/O errors, fd exhaustion. These are the one fault
    family the other plans cannot reach — they sabotage the {e syscalls}
    every durable writer (journal, checkpoints, bench emission) routes
    through, so the degradation ladder of DESIGN.md §14 can be driven
    deterministically. The plan is ambient process state: a test (or a
    forked daemon child) installs it, runs the workload, and clears it.

    These are thin delegates to {!Colib_io.Fault} so chaos tests compose
    every fault family from one module. *)

type fs_fault = Colib_io.Fault.kind =
  | Enospc  (** disk full: sabotages write / fsync / rename *)
  | Eio     (** transient I/O error: sabotages write / fsync *)
  | Emfile  (** fd exhaustion: sabotages open / accept *)

type fs_plan = Colib_io.Fault.t

val fs_scripted : (int * fs_fault) list -> fs_plan
(** [(index, fault)] pairs: the durable op with that 0-based index fails
    (if the fault kind applies to its operation class). *)

val fs_windows : (fs_fault * int * int) list -> fs_plan
(** [(fault, first, last)]: applicable ops in the inclusive op-index
    window fail — a deterministic ENOSPC window. *)

val fs_timed : (fs_fault * float * float) list -> fs_plan
(** [(fault, from, until)]: applicable ops in the wall-time window
    (seconds since {!fs_install}) fail. *)

val fs_seeded : seed:int -> p:float -> fs_fault list -> fs_plan
(** Each applicable op fails with probability [p] from a PRNG seeded with
    [seed] — the randomized chaos-soak plan. *)

val fs_install : fs_plan -> unit
(** Make the plan ambient: every {!Colib_io.Durable} wrapper consults it. *)

val fs_clear : unit -> unit

val fs_fault_name : fs_fault -> string
val fs_ops : fs_plan -> int
(** Durable operations observed since {!fs_install}. *)

val fs_injected : fs_plan -> int
(** Faults fired since {!fs_install}. *)

(** {1 Worker-lifecycle faults}

    Faults on the warm worker pool ({!Colib_server.Pool}): where the
    process faults above sabotage a portfolio worker from the inside,
    these kill ([SIGKILL]) or wedge ([SIGSTOP]) a {e resident pool worker}
    from the outside, mid-job. The pool consults the plan once per
    dispatch with the dispatch's 0-based index, so scripted plans replay
    exactly and seeded plans are pure functions of their seed. The daemon
    must contain both: respawn the worker under the pool supervisor's
    backoff/breaker discipline and requeue (then typed-fail) the job the
    worker held — never lose it. *)

type worker_fault =
  | Worker_kill  (** SIGKILL the worker right after the job lands on it *)
  | Worker_hang
      (** SIGSTOP the worker: it holds its slot silently until the job
          watchdog fires — the stuck-worker case *)

type worker_plan = int -> worker_fault option

val worker_scripted : (int * worker_fault) list -> worker_plan
(** [(dispatch, fault)] pairs: pool dispatch [dispatch] suffers [fault];
    unlisted dispatches run clean. *)

val worker_seeded : seed:int -> p:float -> worker_plan
(** Each dispatch suffers a fault (kill or hang, evenly) with probability
    [p], from a PRNG seeded with [seed] — the chaos-soak plan. *)

val worker_fault_for : worker_plan -> int -> worker_fault option
val worker_fault_name : worker_fault -> string
