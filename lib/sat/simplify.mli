(** Proof-logged inprocessing over a root-level clause database.

    The ladder runs four passes, in order, over a snapshot of a solver's
    clause database (PB constraints are left untouched and their variables
    must be passed in as frozen):

    1. {b Subsumption / self-subsumption} over an occurrence index with
       64-bit clause signatures: a clause [C] deletes every superset [D]
       ([Delete D]); when [C <= D u {~l}] for some [l] of [C], [D] is
       strengthened to [D \ {~l}] ([Learn] the strengthened clause — RUP by
       resolving the two parents — then [Delete] the original).
    2. {b Binary-implication reasoning}: Tarjan SCCs over the implication
       graph of the live binary clauses. A literal equivalent to its own
       complement makes the formula unsatisfiable (two unit [Learn]s, both
       RUP along the implication chains). Otherwise each SCC collapses to
       its minimum literal: one [Substitute] step records the map, the two
       defining binaries per pair are added to the database (mirroring what
       the checker does), and every other clause containing a substituted
       literal is rewritten ([Learn] rewritten + [Delete] original).
    3. {b Failed-literal probing}: assume a literal, propagate; on conflict
       its negation is a root unit ([Learn [~l]] — RUP by the very
       propagation that failed) and is asserted permanently.
    4. {b Bounded variable elimination}: an unfrozen variable whose
       resolvent set does not grow the database is eliminated — every
       non-tautological resolvent is [Learn]ed (RUP from its two live
       parents), an [Eliminate] step records the pivot and the witness side
       (the live clauses containing the pivot, needed to re-extend models),
       then every clause of both polarities is dropped from the working
       database. The drops are deliberately {e not} [Delete]-logged: the
       checker keeping the originals only strengthens its database (always
       sound), and it is what lets an engine {e un-eliminate} a variable —
       re-adding the removed clauses without any proof step — when an
       incremental caller later constrains it. Witnesses stack:
       {!extend_model} replays them most-recent-first.

    Every step is emitted into the given proof trace in an order the
    {!Colib_check.Rup} checker accepts: strengthened clauses and resolvents
    are learned while their parents are still live, [Eliminate] precedes
    the deletions it justifies, and [Substitute] precedes the rewrites that
    depend on its binaries.

    Literals are raw ints in the {!Lit.to_index} encoding throughout. *)

type limits = {
  max_occ : int;
      (** BVE skips a variable when both polarities occur more often *)
  max_resolvent : int;
      (** BVE skips a variable that would create a longer resolvent *)
  max_probes : int;  (** failed-literal probes per run *)
  grow : int;  (** extra clauses BVE may add beyond the ones it removes *)
  pass_ticks : int;
      (** per-pass work budget, in occurrence-list cells visited, for the
          subsumption and probing passes; subsumers run shortest-first,
          so exhausting the budget on a learnt-heavy mid-search database
          drops only the weakest (longest) subsumers *)
}

val default_limits : limits

type stats = {
  mutable subsumed : int;  (** clauses deleted by (self-)subsumption *)
  mutable strengthened : int;  (** clauses shortened by self-subsumption *)
  mutable eliminated : int;  (** variables eliminated by BVE *)
  mutable probed : int;  (** root units found by probing *)
  mutable substituted : int;  (** literals collapsed into an SCC leader *)
}

type elim = {
  e_pivot : int;
      (** the eliminated literal; its variable is [e_pivot lsr 1] *)
  e_witness : int array array;
      (** the clauses that contained [e_pivot] at elimination time, for
          model re-extension (the classic BVE witness rule) *)
  e_removed : int array array;
      (** every clause of {e both} polarities dropped by the elimination;
          an engine re-adds them verbatim to un-eliminate the variable
          (sound without proof steps — they were never [Delete]-logged) *)
}

type clause = {
  sc_lits : int array;  (** raw [Lit.to_index] literals *)
  sc_learnt : bool;
  sc_act : float;
  sc_pinned : bool;
      (** the clause must never be dropped by DB reduction; every clause
          the simplifier creates (resolvents, substitution binaries,
          strengthened/rewritten clauses) comes back pinned and learnt,
          because model soundness after elimination/substitution depends
          on it and warm restarts must re-install it *)
}

type result = {
  r_clauses : clause list;  (** surviving clauses, each with >= 2 literals *)
  r_units : int list;
      (** root units derived by the run, in derivation order; not
          proof-logged when they arise from plain unit propagation (the
          checker re-derives those), logged as unit [Learn]s otherwise *)
  r_unsat : bool;
      (** the database is unsatisfiable by propagation; the caller should
          record its contradiction step *)
  r_elim : elim list;
      (** elimination stack, most recent first *)
  r_dead : int array list;
      (** literal arrays of the non-learnt input clauses this run deleted
          {e with} a [Delete] proof step (root-satisfied clauses silently
          dropped at load are not listed); checkpoint snapshots carry them
          so a resumed engine does not re-delete checker-dead clauses *)
  r_stats : stats;
}

val run :
  ?proof:Proof.t ->
  ?limits:limits ->
  nvars:int ->
  frozen:bool array ->
  assigned:int array ->
  clause list ->
  result
(** [run ~nvars ~frozen ~assigned clauses] simplifies [clauses] under the
    root assignment [assigned] (by variable: -1 undefined, 0 false,
    1 true; not mutated). Frozen variables — anything appearing in a PB
    constraint or the objective, plus previously eliminated variables —
    are never eliminated or substituted away, though they are still
    probed, and their clauses still participate in subsumption. *)

val extend_model : elim list -> bool array -> unit
(** [extend_model elim model] completes a model of the simplified formula
    into one of the original formula, walking the elimination stack
    most-recent-first: each pivot is set true iff one of its witness
    clauses is otherwise falsified (the classic BVE witness rule). *)
