type step =
  | Learn of Lit.t list
  | Delete of Lit.t list
  | Improve of { model : bool array; cost : int }
  | Substitute of (Lit.t * Lit.t) list
  | Eliminate of { pivot : Lit.t; witness : Lit.t list list }
  | Contradiction

type claim = Unsat_claim | Optimal_claim of int

type t = { mutable steps_rev : step list; mutable count : int }

let create () = { steps_rev = []; count = 0 }

let of_steps steps =
  { steps_rev = List.rev steps; count = List.length steps }

let add t s =
  t.steps_rev <- s :: t.steps_rev;
  t.count <- t.count + 1

let steps t = List.rev t.steps_rev
let num_steps t = t.count

let claim_to_string = function
  | Unsat_claim -> "unsat"
  | Optimal_claim c -> Printf.sprintf "optimal %d" c

let claim_of_string s =
  match String.split_on_char ' ' (String.trim s) with
  | [ "unsat" ] -> Unsat_claim
  | [ "optimal"; c ] -> (
    match int_of_string_opt c with
    | Some c -> Optimal_claim c
    | None -> failwith ("proof: malformed claim: " ^ s))
  | _ -> failwith ("proof: malformed claim: " ^ s)

let lits_to_buf buf lits =
  List.iter (fun l -> Printf.bprintf buf " %d" (Lit.to_dimacs l)) lits;
  Buffer.add_string buf " 0"

let step_to_string = function
  | Learn lits ->
    let buf = Buffer.create 32 in
    Buffer.add_char buf 'l';
    lits_to_buf buf lits;
    Buffer.contents buf
  | Delete lits ->
    let buf = Buffer.create 32 in
    Buffer.add_char buf 'd';
    lits_to_buf buf lits;
    Buffer.contents buf
  | Improve { model; cost } ->
    let buf = Buffer.create (4 * Array.length model) in
    Printf.bprintf buf "m %d" cost;
    Array.iteri
      (fun v b -> Printf.bprintf buf " %d" (if b then v + 1 else -(v + 1)))
      model;
    Buffer.add_string buf " 0";
    Buffer.contents buf
  | Substitute pairs ->
    let buf = Buffer.create 32 in
    Buffer.add_char buf 'x';
    List.iter
      (fun (a, b) ->
        Printf.bprintf buf " %d %d" (Lit.to_dimacs a) (Lit.to_dimacs b))
      pairs;
    Buffer.add_string buf " 0";
    Buffer.contents buf
  | Eliminate { pivot; witness } ->
    let buf = Buffer.create 64 in
    Printf.bprintf buf "v %d %d" (Lit.to_dimacs pivot) (List.length witness);
    List.iter (fun lits -> lits_to_buf buf lits) witness;
    Buffer.contents buf
  | Contradiction -> "u"

type parsed = {
  p_formula : Formula.t option;
  p_claim : claim option;
  p_steps : step list;
}

let write_file path ?formula ~claim t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc "c colib proof v1\n";
      Printf.fprintf oc "s %s\n" (claim_to_string claim);
      (match formula with
      | None -> ()
      | Some f ->
        List.iter
          (fun line ->
            if String.trim line <> "" then Printf.fprintf oc "f %s\n" line)
          (String.split_on_char '\n' (Output.opb_string f)));
      List.iter
        (fun s ->
          output_string oc (step_to_string s);
          output_char oc '\n')
        (steps t))

(* --- parsing --- *)

let tokens line =
  String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let parse_int tok =
  match int_of_string_opt tok with
  | Some n -> n
  | None -> failwith ("proof: malformed integer: " ^ tok)

(* a DIMACS literal list terminated by 0 *)
let parse_lits toks =
  let rec go acc = function
    | [] -> failwith "proof: literal list missing terminating 0"
    | [ "0" ] -> List.rev acc
    | tok :: rest ->
      let n = parse_int tok in
      if n = 0 then failwith "proof: literal 0 before end of line"
      else go (Lit.of_dimacs n :: acc) rest
  in
  go [] toks

(* DIMACS literal pairs terminated by a single 0 *)
let parse_pairs toks =
  let rec go acc = function
    | [] -> failwith "proof: substitution list missing terminating 0"
    | [ "0" ] -> List.rev acc
    | a :: b :: rest ->
      let a = parse_int a and b = parse_int b in
      if a = 0 || b = 0 then failwith "proof: literal 0 inside substitution"
      else go ((Lit.of_dimacs a, Lit.of_dimacs b) :: acc) rest
    | [ _ ] -> failwith "proof: dangling literal in substitution"
  in
  go [] toks

(* [count] 0-terminated literal lists *)
let parse_clause_list ~count toks =
  let rec split acc cur = function
    | rest when List.length acc = count ->
      if rest <> [] then failwith "proof: trailing tokens after witness"
      else List.rev acc
    | [] -> failwith "proof: witness clause list truncated"
    | "0" :: rest -> split (List.rev cur :: acc) [] rest
    | tok :: rest ->
      let n = parse_int tok in
      if n = 0 then failwith "proof: malformed witness"
      else split acc (Lit.of_dimacs n :: cur) rest
  in
  split [] [] toks

let parse_model ~nvars toks =
  let lits = parse_lits toks in
  let nvars =
    match nvars with
    | Some n -> n
    | None -> List.fold_left (fun a l -> max a (Lit.var l + 1)) 0 lits
  in
  let model = Array.make nvars false in
  List.iter
    (fun l ->
      let v = Lit.var l in
      if v >= nvars then failwith "proof: model literal out of range";
      model.(v) <- Lit.sign l)
    lits;
  model

let of_string text =
  let lines = String.split_on_char '\n' text in
  (* first pass: claim + embedded formula *)
  let claim = ref None in
  let fbuf = Buffer.create 256 in
  List.iter
    (fun line ->
      if String.length line >= 2 && line.[0] = 'f' && line.[1] = ' ' then begin
        Buffer.add_string fbuf (String.sub line 2 (String.length line - 2));
        Buffer.add_char fbuf '\n'
      end
      else if String.length line >= 2 && line.[0] = 's' && line.[1] = ' ' then
        claim := Some (claim_of_string (String.sub line 2 (String.length line - 2))))
    lines;
  let formula =
    if Buffer.length fbuf = 0 then None
    else Some (Output.parse_opb (Buffer.contents fbuf))
  in
  let nvars = Option.map Formula.num_vars formula in
  (* second pass: steps *)
  let steps_rev = ref [] in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line = "" then ()
      else
        match (line.[0], tokens line) with
        | ('c' | 'f' | 's'), _ -> ()
        | 'u', [ "u" ] -> steps_rev := Contradiction :: !steps_rev
        | 'l', _ :: rest -> steps_rev := Learn (parse_lits rest) :: !steps_rev
        | 'd', _ :: rest -> steps_rev := Delete (parse_lits rest) :: !steps_rev
        | 'x', _ :: rest ->
          steps_rev := Substitute (parse_pairs rest) :: !steps_rev
        | 'v', _ :: pivot :: count :: rest ->
          let pivot = Lit.of_dimacs (parse_int pivot) in
          let count = parse_int count in
          if count < 0 then failwith "proof: negative witness count"
          else
            steps_rev :=
              Eliminate { pivot; witness = parse_clause_list ~count rest }
              :: !steps_rev
        | 'm', _ :: cost :: rest ->
          let cost = parse_int cost in
          steps_rev :=
            Improve { model = parse_model ~nvars rest; cost } :: !steps_rev
        | _ -> failwith ("proof: unrecognized line: " ^ line))
    lines;
  { p_formula = formula; p_claim = !claim; p_steps = List.rev !steps_rev }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
