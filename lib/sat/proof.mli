(** RUP/DRAT-style proof traces for the solving engines.

    A proof is an append-only sequence of steps emitted while the search
    runs. Each [Learn] step is a clause that must be derivable from the
    current constraint database by reverse unit propagation (RUP): assuming
    the negation of every literal of the clause, unit propagation alone must
    reach a conflict. [Delete] steps mirror clause-database reduction,
    [Improve] steps carry the models of the objective-strengthening loop
    (each implicitly adds the bound constraint [objective <= cost - 1]), and
    [Contradiction] asserts that the empty clause is now RUP-derivable —
    i.e. the current database is unsatisfiable by propagation alone.

    The trace is checked by {!Colib_check.Rup}, which shares only these data
    types (and the constraint normalization of {!Pbc}) with the search — not
    the propagation, analysis, or branching code. *)

type step =
  | Learn of Lit.t list
      (** add a clause; must be RUP w.r.t. the current database *)
  | Delete of Lit.t list
      (** remove a clause previously added (or an input clause) *)
  | Improve of { model : bool array; cost : int }
      (** a model of the current database with the given objective value;
          implicitly adds [objective <= cost - 1] afterwards *)
  | Substitute of (Lit.t * Lit.t) list
      (** equivalent-literal substitution: each pair [(a, b)] asserts the
          equivalence [a <-> b]. The checker verifies that both binary
          clauses [~a \/ b] and [a \/ ~b] are RUP and adds them to the
          database, after which every clause rewritten under the map is an
          ordinary RUP [Learn]. A map whose equivalences are not entailed
          is rejected. *)
  | Eliminate of { pivot : Lit.t; witness : Lit.t list list }
      (** bounded variable elimination of [Lit.var pivot]. The witness is
          the set of database clauses containing [pivot] at elimination
          time, kept for model reconstruction: a model of the simplified
          formula is extended by making [pivot] true iff some witness
          clause is otherwise falsified. The checker requires every
          witness clause to contain [pivot] and to be live in the
          database; the resolvents are logged as ordinary [Learn] steps
          before this marker and the originals as [Delete] steps after. *)
  | Contradiction
      (** the empty clause is RUP: the current database is unsatisfiable *)

type claim =
  | Unsat_claim          (** the input formula has no model *)
  | Optimal_claim of int (** the minimum objective value is exactly this *)

type t
(** A mutable, append-only step accumulator. *)

val create : unit -> t

val of_steps : step list -> t
(** A trace pre-populated with the given steps, in order — the checkpoint
    layer uses it to stitch a resumed run's new steps onto the prefix its
    snapshot preserved, yielding one continuous replayable trace. *)

val add : t -> step -> unit
val steps : t -> step list
(** Steps in emission order. *)

val num_steps : t -> int

val claim_to_string : claim -> string
val claim_of_string : string -> claim
(** Raises [Failure] on malformed input. *)

val step_to_string : step -> string
(** One text line per step: [l <lits> 0] (learn), [d <lits> 0] (delete),
    [m <cost> <model lits> 0] (improve), [x <a b ...> 0] (substitute,
    literal pairs), [v <pivot> <n> <n 0-terminated clauses>] (eliminate),
    [u] (contradiction); literals in DIMACS convention. *)

type parsed = {
  p_formula : Formula.t option;  (** the embedded OPB formula, if any *)
  p_claim : claim option;
  p_steps : step list;
}

val write_file : string -> ?formula:Formula.t -> claim:claim -> t -> unit
(** Write a self-contained proof file: a claim line [s <claim>], the formula
    in OPB format on [f ]-prefixed lines, then one line per step. *)

val of_string : string -> parsed
(** Parse the format written by {!write_file}. Raises [Failure] on malformed
    input. *)

val read_file : string -> parsed
(** [of_string] over a file's contents. Raises [Sys_error] or [Failure]. *)
