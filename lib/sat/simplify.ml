type limits = {
  max_occ : int;
  max_resolvent : int;
  max_probes : int;
  grow : int;
  pass_ticks : int;
}

let default_limits =
  { max_occ = 24; max_resolvent = 16; max_probes = 4096; grow = 0;
    pass_ticks = 200_000 }

type stats = {
  mutable subsumed : int;
  mutable strengthened : int;
  mutable eliminated : int;
  mutable probed : int;
  mutable substituted : int;
}

let fresh_stats () =
  { subsumed = 0; strengthened = 0; eliminated = 0; probed = 0;
    substituted = 0 }

type clause = {
  sc_lits : int array;
  sc_learnt : bool;
  sc_act : float;
  sc_pinned : bool;
}

type elim = {
  e_pivot : int;
  e_witness : int array array;
  e_removed : int array array;
}

type result = {
  r_clauses : clause list;
  r_units : int list;
  r_unsat : bool;
  r_elim : elim list;
  r_dead : int array list;
  r_stats : stats;
}

(* ------------------------------------------------------------------ *)
(* Internal state: a root-level clause database with full occurrence
   lists, a trail for (permanent and probe) assignments, and eager
   conflict/unit detection by whole-clause scans.  Clauses are kept
   VERBATIM — falsified literals are not stripped — so every Delete step
   emitted here names a clause the independent checker still holds under
   exactly the same literals. *)

type cl = {
  mutable lits : int array;
  sg : int;                      (* 64-bit subsumption signature *)
  mutable dead : bool;
  mutable mark : bool;           (* scratch for the rewrite pass *)
  learnt : bool;
  act : float;
  pinned : bool;
}

type st = {
  nvars : int;
  value : int array;             (* -1 undef / 0 false / 1 true, by var *)
  trail : int array;
  mutable trail_n : int;
  mutable root_n : int;          (* permanent prefix of the trail *)
  occ : cl list ref array;       (* by literal *)
  mutable all : cl list;
  mutable unsat : bool;
  frozen : bool array;           (* private copy; BVE marks its victims *)
  mutable elim : elim list;      (* most recent first *)
  mutable dead_orig : int array list;  (* Delete-logged non-learnt inputs *)
  proof : Proof.t option;
  stats : stats;
  limits : limits;
}

let lval st l =
  let a = st.value.(l lsr 1) in
  if a < 0 then -1 else a lxor (l land 1)

let assign st l =
  st.value.(l lsr 1) <- 1 lxor (l land 1);
  st.trail.(st.trail_n) <- l;
  st.trail_n <- st.trail_n + 1

let undo_to st mark =
  while st.trail_n > mark do
    st.trail_n <- st.trail_n - 1;
    st.value.(st.trail.(st.trail_n) lsr 1) <- -1
  done

(* Unit propagation over whole-clause scans, processing trail entries from
   [from] on.  Returns [true] on conflict; assignments stay on the trail
   either way (the caller undoes probe assignments). *)
let propagate st from =
  let conflict = ref false in
  let i = ref from in
  while (not !conflict) && !i < st.trail_n do
    let p = st.trail.(!i) in
    incr i;
    let fl = p lxor 1 in
    List.iter
      (fun c ->
        if (not c.dead) && not !conflict then begin
          let n = Array.length c.lits in
          let sat = ref false and unit_lit = ref (-1) and nundef = ref 0 in
          (try
             for k = 0 to n - 1 do
               match lval st c.lits.(k) with
               | 1 ->
                 sat := true;
                 raise Exit
               | -1 ->
                 incr nundef;
                 unit_lit := c.lits.(k)
               | _ -> ()
             done
           with Exit -> ());
          if not !sat then
            if !nundef = 0 then conflict := true
            else if !nundef = 1 then assign st !unit_lit
        end)
      !(st.occ.(fl))
  done;
  !conflict

(* --- proof plumbing --- *)

let log st step = match st.proof with None -> () | Some p -> Proof.add p step
let lits_of_arr a = Array.to_list (Array.map Lit.of_index a)
let log_learn_arr st a = log st (Proof.Learn (lits_of_arr a))
let log_learn1 st l = log st (Proof.Learn [ Lit.of_index l ])
let log_delete st c = log st (Proof.Delete (lits_of_arr c.lits))

(* --- clause DB --- *)

let signature lits =
  Array.fold_left (fun s l -> s lor (1 lsl (l mod 62))) 0 lits

let add_cl st lits ~learnt ~act ~pinned =
  let c = { lits; sg = signature lits; dead = false; mark = false; learnt;
            act; pinned } in
  Array.iter (fun l -> st.occ.(l) <- ref (c :: !(st.occ.(l)))) lits;
  st.all <- c :: st.all;
  c

let kill st c =
  c.dead <- true;
  if not c.learnt then st.dead_orig <- c.lits :: st.dead_orig

(* Permanently assert [l] at root and propagate.  Returns [false] (and
   flags the database unsatisfiable) on conflict. *)
let root_assign st l =
  match lval st l with
  | 1 -> true
  | 0 ->
    st.unsat <- true;
    false
  | _ ->
    let from = st.trail_n in
    assign st l;
    if propagate st from then begin
      st.unsat <- true;
      st.root_n <- st.trail_n;
      false
    end
    else begin
      st.root_n <- st.trail_n;
      true
    end

(* ------------------------------------------------------------------ *)
(* Pass 1: forward subsumption and self-subsumption.  [c] is the
   subsumer; candidates come from the occurrence list of its
   least-occurring literal (subsumption) or of each literal's complement
   (self-subsumption).  Subset tests mark [c]'s literals in a scratch
   array and count hits, after a cheap signature pre-filter. *)

let subsumption_pass st scratch =
  (* Work budget: every occurrence-list cell visited costs a tick.  The
     pass walks subsumers shortest-first, so when a mid-search database
     holds thousands of learnts the budget is spent on the strongest
     (binary/ternary) subsumers and the pass stops early instead of
     going quadratic. *)
  let ticks = ref st.limits.pass_ticks in
  let occ_len l =
    let n = List.length !(st.occ.(l)) in
    ticks := !ticks - n;
    n
  in
  let subsume_with c =
    if not c.dead then begin
      Array.iter (fun l -> scratch.(l) <- true) c.lits;
      let clen = Array.length c.lits in
      (* clauses that might be supersets of [c] *)
      let lmin = ref c.lits.(0) in
      Array.iter (fun l -> if occ_len l < occ_len !lmin then lmin := l) c.lits;
      List.iter
        (fun d ->
          decr ticks;
          if d != c && (not d.dead)
             && Array.length d.lits >= clen
             && c.sg land lnot d.sg = 0
          then begin
            let hit = ref 0 in
            Array.iter (fun l -> if scratch.(l) then incr hit) d.lits;
            if !hit = clen then begin
              log_delete st d;
              kill st d;
              st.stats.subsumed <- st.stats.subsumed + 1
            end
          end)
        !(st.occ.(!lmin));
      (* self-subsumption: c \ {l} u {~l} subset of d strengthens d *)
      Array.iter
        (fun l ->
          if not c.dead then begin
            scratch.(l) <- false;
            scratch.(l lxor 1) <- true;
            List.iter
              (fun d ->
                decr ticks;
                if d != c && (not d.dead) && (not st.unsat)
                   && Array.length d.lits >= clen
                then begin
                  let hit = ref 0 in
                  Array.iter (fun q -> if scratch.(q) then incr hit) d.lits;
                  if !hit = clen then begin
                    (* resolving c and d on l yields d without ~l: RUP from
                       the two parents, both still live *)
                    let lits' =
                      Array.of_list
                        (List.filter
                           (fun q -> q <> l lxor 1)
                           (Array.to_list d.lits))
                    in
                    st.stats.strengthened <- st.stats.strengthened + 1;
                    st.stats.subsumed <- st.stats.subsumed + 1;
                    log_learn_arr st lits';
                    log_delete st d;
                    kill st d;
                    if Array.length lits' = 1 then
                      ignore (root_assign st lits'.(0))
                    else
                      ignore
                        (add_cl st lits' ~learnt:true ~act:d.act ~pinned:true)
                  end
                end)
              !(st.occ.(l lxor 1));
            scratch.(l) <- true;
            scratch.(l lxor 1) <- false
          end)
        c.lits;
      Array.iter (fun l -> scratch.(l) <- false) c.lits
    end
  in
  let by_len =
    List.stable_sort
      (fun a b -> compare (Array.length a.lits) (Array.length b.lits))
      (List.filter (fun c -> not c.dead) st.all)
  in
  List.iter
    (fun c -> if (not st.unsat) && !ticks > 0 then subsume_with c)
    by_len

(* ------------------------------------------------------------------ *)
(* Pass 2: binary-implication graph, SCC condensation, equivalent-literal
   substitution.  Edges come from live binary clauses over unassigned
   variables; Tarjan runs iteratively.  A contradictory SCC (a literal
   with its own complement) yields two unit Learns, each RUP along the
   implication chains.  Otherwise each SCC collapses onto its minimum
   literal: one Substitute step, the two defining binaries per pair added
   to the database (the checker mirrors this), every other clause
   containing a substituted literal rewritten as Learn + Delete. *)

let scc_substitution st =
  let nl = 2 * st.nvars in
  let adj = Array.make nl [] in
  let has_edges = ref false in
  List.iter
    (fun c ->
      if (not c.dead) && Array.length c.lits = 2 then begin
        let a = c.lits.(0) and b = c.lits.(1) in
        if lval st a = -1 && lval st b = -1 then begin
          adj.(a lxor 1) <- b :: adj.(a lxor 1);
          adj.(b lxor 1) <- a :: adj.(b lxor 1);
          has_edges := true
        end
      end)
    st.all;
  if !has_edges && not st.unsat then begin
    let index = Array.make nl (-1) in
    let low = Array.make nl 0 in
    let on_stack = Array.make nl false in
    let stack = ref [] in
    let counter = ref 0 in
    let sccs = ref [] in
    let frames = ref [] in
    let push_frame v =
      index.(v) <- !counter;
      low.(v) <- !counter;
      incr counter;
      stack := v :: !stack;
      on_stack.(v) <- true;
      frames := (v, ref adj.(v)) :: !frames
    in
    let dfs root =
      if index.(root) < 0 then begin
        push_frame root;
        let running = ref true in
        while !running do
          match !frames with
          | [] -> running := false
          | (v, succs) :: rest -> (
            match !succs with
            | w :: tl ->
              succs := tl;
              if index.(w) < 0 then push_frame w
              else if on_stack.(w) then low.(v) <- min low.(v) index.(w)
            | [] ->
              frames := rest;
              (match rest with
              | (p, _) :: _ -> low.(p) <- min low.(p) low.(v)
              | [] -> ());
              if low.(v) = index.(v) then begin
                let members = ref [] in
                let popping = ref true in
                while !popping do
                  match !stack with
                  | w :: s ->
                    stack := s;
                    on_stack.(w) <- false;
                    members := w :: !members;
                    if w = v then popping := false
                  | [] -> assert false
                done;
                match !members with
                | _ :: _ :: _ -> sccs := !members :: !sccs
                | _ -> ()
              end)
        done
      end
    in
    for l = 0 to nl - 1 do
      dfs l
    done;
    (* each SCC appears alongside its complement SCC: process one of the
       two, detected via a processed mark on every member and complement *)
    let processed = Array.make nl false in
    let pairs = ref [] in
    List.iter
      (fun members ->
        if (not st.unsat) && not (List.exists (fun l -> processed.(l)) members)
        then begin
          List.iter
            (fun l ->
              processed.(l) <- true;
              processed.(l lxor 1) <- true)
            members;
          (* contradictory SCC: some variable present in both phases *)
          let seen = Hashtbl.create 16 in
          let contra = ref (-1) in
          List.iter
            (fun l ->
              let v = l lsr 1 in
              if Hashtbl.mem seen v then contra := v
              else Hashtbl.add seen v ())
            members;
          if !contra >= 0 then begin
            (* l <-> ~l: both phases are failed literals, each unit RUP
               along the binary chains of this very SCC *)
            let v = !contra in
            log_learn1 st ((2 * v) lxor 1);
            log_learn1 st (2 * v);
            st.unsat <- true
          end
          else begin
            let rep = List.fold_left min (List.hd members) members in
            List.iter
              (fun m ->
                if m <> rep && not st.frozen.(m lsr 1) then begin
                  (* skip pairs whose only live occurrences are the two
                     defining binaries of an earlier run: nothing left to
                     rewrite, re-substituting would only churn the proof *)
                  let is_pair_binary c =
                    Array.length c.lits = 2
                    &&
                    let has l = c.lits.(0) = l || c.lits.(1) = l in
                    (has m && has (rep lxor 1))
                    || (has (m lxor 1) && has rep)
                  in
                  let worthwhile =
                    List.exists
                      (fun c -> (not c.dead) && not (is_pair_binary c))
                      !(st.occ.(m))
                    || List.exists
                         (fun c -> (not c.dead) && not (is_pair_binary c))
                         !(st.occ.(m lxor 1))
                  in
                  if worthwhile then pairs := (m, rep) :: !pairs
                end)
              members
          end
        end)
      !sccs;
    match List.rev !pairs with
    | [] -> ()
    | pairs when not st.unsat ->
      let sub = Array.init nl (fun i -> i) in
      List.iter
        (fun (m, rep) ->
          sub.(m) <- rep;
          sub.(m lxor 1) <- rep lxor 1)
        pairs;
      log st
        (Proof.Substitute
           (List.map
              (fun (m, rep) -> (Lit.of_index m, Lit.of_index rep))
              pairs));
      st.stats.substituted <- st.stats.substituted + List.length pairs;
      (* the defining binaries, mirrored by the checker on Substitute:
         they keep the substituted variable propagated (and therefore
         correctly valued in every model) after its clauses are rewritten
         away.  Added before collecting the rewrite set so they are
         excluded from it. *)
      let keep = ref [] in
      List.iter
        (fun (m, rep) ->
          keep :=
            add_cl st [| m lxor 1; rep |] ~learnt:true ~act:0.0 ~pinned:true
            :: !keep;
          keep :=
            add_cl st [| m; rep lxor 1 |] ~learnt:true ~act:0.0 ~pinned:true
            :: !keep)
        pairs;
      let keep = !keep in
      let touched = ref [] in
      List.iter
        (fun (m, _) ->
          List.iter
            (fun l ->
              List.iter
                (fun c ->
                  if (not c.dead) && (not c.mark)
                     && not (List.memq c keep)
                  then begin
                    c.mark <- true;
                    touched := c :: !touched
                  end)
                !(st.occ.(l)))
            [ m; m lxor 1 ])
        pairs;
      List.iter
        (fun c ->
          c.mark <- false;
          if (not c.dead) && not st.unsat then begin
            let mapped = Array.map (fun l -> sub.(l)) c.lits in
            Array.sort compare mapped;
            (* dedup + tautology detection over the sorted literals *)
            let out = ref [] and taut = ref false in
            Array.iter
              (fun l ->
                match !out with
                | prev :: _ when prev = l -> ()
                | prev :: _ when prev = l lxor 1 -> taut := true
                | _ -> out := l :: !out)
              mapped;
            if !taut then begin
              log_delete st c;
              kill st c
            end
            else
              match List.rev !out with
              | [] -> assert false
              | [ u ] ->
                log_learn1 st u;
                log_delete st c;
                kill st c;
                ignore (root_assign st u)
              | lits ->
                let lits' = Array.of_list lits in
                log_learn_arr st lits';
                log_delete st c;
                kill st c;
                ignore (add_cl st lits' ~learnt:true ~act:c.act ~pinned:true)
          end)
        (List.rev !touched)
    | _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Pass 3: failed-literal probing. *)

let probing st =
  let budget = ref st.limits.max_probes in
  (* A second, work-based budget: each probe is charged the occurrence
     cells its propagation visited, so probing over a learnt-heavy
     mid-search database stays as bounded as the subsumption pass. *)
  let work = ref st.limits.pass_ticks in
  let v = ref 0 in
  while !v < st.nvars && !budget > 0 && !work > 0 && not st.unsat do
    if st.value.(!v) < 0 then begin
      let l0 = 2 * !v in
      let has_occ l = List.exists (fun c -> not c.dead) !(st.occ.(l)) in
      if has_occ l0 || has_occ (l0 + 1) then
        List.iter
          (fun l ->
            if !budget > 0 && !work > 0 && (not st.unsat) && lval st l = -1
            then begin
              decr budget;
              let mark = st.trail_n in
              assign st l;
              let confl = propagate st mark in
              for i = mark to st.trail_n - 1 do
                work :=
                  !work - List.length !(st.occ.(st.trail.(i) lxor 1))
              done;
              undo_to st mark;
              if confl then begin
                (* [~l] is RUP by the very propagation that just failed *)
                st.stats.probed <- st.stats.probed + 1;
                log_learn1 st (l lxor 1);
                ignore (root_assign st (l lxor 1))
              end
            end)
          [ l0; l0 + 1 ]
    end;
    incr v
  done

(* ------------------------------------------------------------------ *)
(* Pass 4: bounded variable elimination. *)

let resolve var p n =
  let pv = 2 * var and nv = (2 * var) + 1 in
  let acc = ref [] in
  Array.iter (fun l -> if l <> pv then acc := l :: !acc) p.lits;
  Array.iter (fun l -> if l <> nv then acc := l :: !acc) n.lits;
  let sorted = List.sort_uniq compare !acc in
  let rec taut = function
    | a :: (b :: _ as tl) -> a lxor 1 = b || taut tl
    | _ -> false
  in
  if taut sorted then None else Some (Array.of_list sorted)

let bve st =
  let var = ref 0 in
  while !var < st.nvars && not st.unsat do
    let v = !var in
    if st.value.(v) < 0 && not st.frozen.(v) then begin
      let live l = List.filter (fun c -> not c.dead) !(st.occ.(l)) in
      let pos = live (2 * v) and neg = live ((2 * v) + 1) in
      let np = List.length pos and nn = List.length neg in
      if (np > 0 || nn > 0)
         && np <= st.limits.max_occ
         && nn <= st.limits.max_occ
      then begin
        let ok = ref true in
        let resolvents = ref [] and nres = ref 0 in
        List.iter
          (fun p ->
            List.iter
              (fun n ->
                if !ok then
                  match resolve v p n with
                  | None -> ()
                  | Some r ->
                    if Array.length r > st.limits.max_resolvent then
                      ok := false
                    else begin
                      incr nres;
                      resolvents := r :: !resolvents
                    end)
              neg)
          pos;
        if !ok && !nres <= np + nn + st.limits.grow then begin
          (* resolvents first (their parents must still be live for the
             checker), then the Eliminate marker (its witness must still
             be live), then the deletions *)
          let pending = ref [] in
          List.iter
            (fun r ->
              if Array.length r = 1 then begin
                log_learn1 st r.(0);
                pending := r.(0) :: !pending
              end
              else begin
                log_learn_arr st r;
                ignore (add_cl st r ~learnt:true ~act:0.0 ~pinned:true)
              end)
            (List.rev !resolvents);
          let pivot, wside =
            if np = 0 then ((2 * v) + 1, neg)
            else if nn = 0 then (2 * v, pos)
            else if np <= nn then (2 * v, pos)
            else ((2 * v) + 1, neg)
          in
          log st
            (Proof.Eliminate
               {
                 pivot = Lit.of_index pivot;
                 witness = List.map (fun c -> lits_of_arr c.lits) wside;
               });
          let witness =
            Array.of_list (List.map (fun c -> Array.copy c.lits) wside)
          in
          let removed =
            Array.of_list
              (List.map (fun c -> Array.copy c.lits) (pos @ neg))
          in
          (* the removals are neither Delete-logged nor recorded in
             [dead_orig]: the checker keeping the originals is sound (its
             database only gets stronger) and is what makes later
             un-elimination possible without proof steps; a restored run
             simply keeps the formula copies alive, which the witness rule
             already accounts for *)
          List.iter (fun c -> c.dead <- true) pos;
          List.iter (fun c -> c.dead <- true) neg;
          st.elim <-
            { e_pivot = pivot; e_witness = witness; e_removed = removed }
            :: st.elim;
          st.frozen.(v) <- true;
          st.stats.eliminated <- st.stats.eliminated + 1;
          List.iter
            (fun u -> if not st.unsat then ignore (root_assign st u))
            (List.rev !pending)
        end
      end
    end;
    incr var
  done

(* ------------------------------------------------------------------ *)

let run ?proof ?(limits = default_limits) ~nvars ~frozen ~assigned clauses =
  let st =
    {
      nvars;
      value = Array.copy assigned;
      trail = Array.make (max nvars 1) 0;
      trail_n = 0;
      root_n = 0;
      occ = Array.init (2 * max nvars 1) (fun _ -> ref []);
      all = [];
      unsat = false;
      frozen = Array.copy frozen;
      elim = [];
      dead_orig = [];
      proof;
      stats = fresh_stats ();
      limits;
    }
  in
  (* load: drop root-satisfied clauses (sound — the checker keeping them
     only makes later RUP steps easier), assert effectively-unit ones,
     keep the rest verbatim *)
  List.iter
    (fun { sc_lits; sc_learnt; sc_act; sc_pinned } ->
      if not st.unsat then begin
        let sat = ref false and unit_lit = ref (-1) and nundef = ref 0 in
        Array.iter
          (fun l ->
            match lval st l with
            | 1 -> sat := true
            | -1 ->
              incr nundef;
              unit_lit := l
            | _ -> ())
          sc_lits;
        if not !sat then
          if !nundef = 0 then st.unsat <- true
          else if !nundef = 1 then ignore (root_assign st !unit_lit)
          else
            ignore
              (add_cl st sc_lits ~learnt:sc_learnt ~act:sc_act
                 ~pinned:sc_pinned)
      end)
    clauses;
  if not st.unsat then begin
    let scratch = Array.make (2 * max nvars 1) false in
    subsumption_pass st scratch;
    if not st.unsat then scc_substitution st;
    if not st.unsat then probing st;
    if not st.unsat then bve st
  end;
  {
    r_clauses =
      List.rev_map
        (fun c ->
          { sc_lits = c.lits; sc_learnt = c.learnt; sc_act = c.act;
            sc_pinned = c.pinned })
        (List.filter (fun c -> not c.dead) st.all);
    r_units = Array.to_list (Array.sub st.trail 0 st.trail_n);
    r_unsat = st.unsat;
    r_elim = st.elim;
    r_dead = st.dead_orig;
    r_stats = st.stats;
  }

let extend_model elim model =
  let lit_true l =
    if l land 1 = 0 then model.(l lsr 1) else not model.(l lsr 1)
  in
  List.iter
    (fun { e_pivot = pivot; e_witness = witness; _ } ->
      let needed =
        Array.exists
          (fun c ->
            not (Array.exists (fun l -> l <> pivot && lit_true l) c))
          witness
      in
      (* pivot true (iff needed) translated to the variable's value *)
      model.(pivot lsr 1) <- (if pivot land 1 = 0 then needed else not needed))
    elim
