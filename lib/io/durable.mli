(** Durable filesystem primitives with a single choke point for fault
    injection.

    Every durable writer in the tree — the job journal, solver
    checkpoints, bench table emission — performs its open/write/fsync/
    rename syscalls through these wrappers, so the ambient {!Fault} plan
    can sabotage any of them deterministically and the resulting
    [Unix.Unix_error] flows through exactly the code path a real
    disk-full or I/O error would take. *)

val openfile : string -> Unix.open_flag list -> int -> Unix.file_descr
(** [Unix.openfile] behind a {!Fault.Open} injection point. *)

val write_fully : ?path:string -> Unix.file_descr -> string -> unit
(** Write the whole string, retrying on [EINTR]/[EAGAIN] and short
    writes. {!Fault.Write} injection point; [path] names the target in
    injected errors. *)

val fsync : ?path:string -> Unix.file_descr -> unit
(** [Unix.fsync] behind a {!Fault.Fsync} injection point. *)

val rename : string -> string -> unit
(** [Unix.rename] behind a {!Fault.Rename} injection point. *)

val fsync_dir : string -> unit
(** Best-effort fsync of a directory so a completed rename survives power
    loss. Errors (including [EINVAL] on filesystems that reject directory
    fsync) are ignored; not an injection point — by the time it runs the
    rename has already committed. *)

val unlink_quiet : string -> unit
(** Unlink, ignoring all errors. *)

val write_file_atomic : ?fsync_parent:bool -> path:string -> string -> unit
(** The full durable-write discipline: write to [path ^ ".tmp"], fsync,
    rename over [path], fsync the parent directory (unless
    [fsync_parent:false]). On any failure the staging file is unlinked
    and the exception re-raised — [path] is either untouched or fully
    replaced. *)

val reap_tmp : ?min_age_s:float -> string -> int
(** Delete every [*.tmp] staging file directly inside the directory
    (crash debris from interrupted atomic writes); returns how many were
    removed. Missing or unreadable directories count as zero. A file
    younger than [min_age_s] (default [0.], reap unconditionally) is left
    alone: it may be a live concurrent writer's in-flight staging file —
    e.g. the supervisor's pid-file rename racing a restarted daemon's
    startup sweep — not crash debris. *)

val accept : Unix.file_descr -> Unix.file_descr * Unix.sockaddr
(** [Unix.accept ~cloexec:true] behind a {!Fault.Accept} injection point,
    so fd-exhaustion tests can script [EMFILE] from the daemon's accept
    loop. *)

val set_rlimit_nofile : int -> bool
(** Lower this process's [RLIMIT_NOFILE] soft limit; returns [false]
    where unsupported. Lets tests and the soak harness create real fd
    pressure. *)

val rss_kb : pid:int -> int option
(** Resident-set size of [pid] in KiB, read from [/proc/<pid>/statm];
    [None] where /proc is unavailable. Feeds the warm pool's soft RSS
    recycling bound. *)
