(** Deterministic syscall fault injection for the durable-I/O layer.

    A fault plan decides, per durable operation, whether {!Durable}'s
    wrappers perform the real syscall or raise the scripted [Unix_error]
    instead — so tests and the chaos-soak harness can drive every consumer
    of the durable-write discipline (journal, checkpoints, bench table
    emission, the daemon's accept loop) through disk-full, transient-I/O
    and fd-exhaustion failures without needing a real full disk.

    Plans are process-global ambient state ([install]/[clear]): the durable
    writers sit too deep in the stack to thread a plan through every
    caller, and a forked daemon child can install its plan before entering
    the serve loop. A plan advances one tick per durable operation
    observed, in order, so op-indexed scripts are fully deterministic;
    time-window plans trigger on seconds since [install] (monotonic
    clock); seeded plans draw from their own PRNG, reproducible from the
    seed alone. *)

type kind =
  | Enospc  (** disk full: sabotages write / fsync / rename *)
  | Eio     (** transient I/O error: sabotages write / fsync *)
  | Emfile  (** fd exhaustion: sabotages open / accept *)

val kind_name : kind -> string
val errno_of_kind : kind -> Unix.error

(** The class of durable operation being attempted. Every call into a
    {!Durable} wrapper advances the plan's op clock by one, whether or not
    a fault fires. *)
type op = Open | Write | Fsync | Rename | Accept

val applies : kind -> op -> bool
(** Whether a fault of this kind sabotages this operation class (the
    mapping documented on {!kind}). *)

type t

val scripted : (int * kind) list -> t
(** [(index, kind)] pairs: the durable op with that 0-based index suffers
    that fault if the kind applies to its class; all other ops run clean.
    A single-index [Eio] entry is the canonical transient I/O error. *)

val windows : (kind * int * int) list -> t
(** [(kind, first, last)]: every applicable op whose index lies in the
    inclusive window fails — an ENOSPC window in op-index space. *)

val timed : (kind * float * float) list -> t
(** [(kind, from, until)]: every applicable op between [from] and [until]
    seconds after [install] fails — an ENOSPC window in wall-time space,
    for long-running daemons whose op counts are not predictable. *)

val seeded : seed:int -> p:float -> kind list -> t
(** Every applicable op fails with probability [p], drawn from a PRNG
    seeded with [seed] — the randomized-chaos plan. Reproducible: the same
    seed and the same op sequence fire the same faults. *)

val of_spec : string -> (t, string) result
(** Parse a plan from a compact spec string (the [COLIB_IO_FAULTS]
    environment hook). Comma-separated rules:

    - ["enospc@12"] — op index 12 fails;
    - ["eio@5-9"] — op indices 5..9 fail;
    - ["enospc@1.5-4s"] — 1.5 s to 4 s after install, applicable ops fail;
    - ["eio~0.01@42"] — each applicable op fails with probability 0.01,
      PRNG seeded with 42 (the last seed given wins for the whole plan).

    Kinds: [enospc], [eio], [emfile]. *)

val install : t -> unit
(** Make [t] the process's ambient plan (resetting its clock origin). *)

val clear : unit -> unit

val installed : unit -> bool

val ops : t -> int
(** Durable operations the plan has observed since [install]. *)

val injected : t -> int
(** Faults the plan has fired since [install]. *)

val inject : op -> string -> unit
(** [inject op arg] is called by every {!Durable} wrapper before the real
    syscall: advance the ambient plan's clock and raise
    [Unix.Unix_error (errno, name, arg)] if a rule fires. No-op when no
    plan is installed. *)
