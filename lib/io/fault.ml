type kind = Enospc | Eio | Emfile

let kind_name = function
  | Enospc -> "enospc"
  | Eio -> "eio"
  | Emfile -> "emfile"

let kind_of_name = function
  | "enospc" -> Some Enospc
  | "eio" -> Some Eio
  | "emfile" -> Some Emfile
  | _ -> None

let errno_of_kind = function
  | Enospc -> Unix.ENOSPC
  | Eio -> Unix.EIO
  | Emfile -> Unix.EMFILE

type op = Open | Write | Fsync | Rename | Accept

let op_name = function
  | Open -> "open"
  | Write -> "write"
  | Fsync -> "fsync"
  | Rename -> "rename"
  | Accept -> "accept"

let applies kind op =
  match kind, op with
  | Enospc, (Write | Fsync | Rename) -> true
  | Eio, (Write | Fsync) -> true
  | Emfile, (Open | Accept) -> true
  | _ -> false

type trigger =
  | At of int
  | Between of int * int
  | During of float * float
  | Seeded of float

type rule = { kind : kind; trigger : trigger }

type t = {
  rules : rule list;
  rng : Random.State.t option;
  mutable tick : int;
  mutable fired : int;
  mutable installed_at : float;
}

let make ?rng rules = { rules; rng; tick = 0; fired = 0; installed_at = 0.0 }

let scripted pairs =
  make (List.map (fun (i, kind) -> { kind; trigger = At i }) pairs)

let windows ws =
  make (List.map (fun (kind, a, b) -> { kind; trigger = Between (a, b) }) ws)

let timed ws =
  make (List.map (fun (kind, a, b) -> { kind; trigger = During (a, b) }) ws)

let seeded ~seed ~p kinds =
  make
    ~rng:(Random.State.make [| seed |])
    (List.map (fun kind -> { kind; trigger = Seeded p }) kinds)

let ops t = t.tick
let injected t = t.fired

(* Ambient plan. *)

let current : t option ref = ref None

let install t =
  t.tick <- 0;
  t.fired <- 0;
  t.installed_at <- Colib_clock.Mclock.now ();
  current := Some t

let clear () = current := None
let installed () = Option.is_some !current

let rule_fires t op rule =
  if not (applies rule.kind op) then false
  else
    match rule.trigger with
    | At i -> t.tick = i
    | Between (a, b) -> t.tick >= a && t.tick <= b
    | During (a, b) ->
        let elapsed = Colib_clock.Mclock.now () -. t.installed_at in
        elapsed >= a && elapsed <= b
    | Seeded p -> (
        match t.rng with
        | None -> false
        | Some rng -> Random.State.float rng 1.0 < p)

let inject op arg =
  match !current with
  | None -> ()
  | Some t ->
      let hit = List.find_opt (rule_fires t op) t.rules in
      t.tick <- t.tick + 1;
      (match hit with
      | None -> ()
      | Some rule ->
          t.fired <- t.fired + 1;
          raise (Unix.Unix_error (errno_of_kind rule.kind, op_name op, arg)))

(* Spec parsing: "enospc@12", "eio@5-9", "enospc@1.5-4s", "eio~0.01@42". *)

let of_spec spec =
  let ( let* ) = Result.bind in
  let parse_rule acc part =
    let* rules, seed = acc in
    let part = String.trim part in
    if part = "" then Ok (rules, seed)
    else
      match String.index_opt part '@' with
      | None -> Error (Printf.sprintf "fault rule %S: missing '@'" part)
      | Some at -> (
          let head = String.sub part 0 at in
          let tail = String.sub part (at + 1) (String.length part - at - 1) in
          let kind_str, prob =
            match String.index_opt head '~' with
            | None -> head, None
            | Some tilde ->
                ( String.sub head 0 tilde,
                  float_of_string_opt
                    (String.sub head (tilde + 1)
                       (String.length head - tilde - 1)) )
          in
          match kind_of_name (String.lowercase_ascii kind_str) with
          | None -> Error (Printf.sprintf "fault rule %S: unknown kind" part)
          | Some kind -> (
              match prob, String.index_opt head '~' with
              | None, Some _ ->
                  Error (Printf.sprintf "fault rule %S: bad probability" part)
              | Some p, _ -> (
                  match int_of_string_opt tail with
                  | Some s ->
                      Ok ({ kind; trigger = Seeded p } :: rules, Some s)
                  | None ->
                      Error
                        (Printf.sprintf "fault rule %S: seeded rule needs an integer seed" part))
              | None, None -> (
                  let timedp =
                    String.length tail > 0
                    && tail.[String.length tail - 1] = 's'
                  in
                  let tail =
                    if timedp then String.sub tail 0 (String.length tail - 1)
                    else tail
                  in
                  match String.index_opt tail '-' with
                  | None -> (
                      if timedp then
                        Error
                          (Printf.sprintf
                             "fault rule %S: time rule needs a-b range" part)
                      else
                        match int_of_string_opt tail with
                        | Some i ->
                            Ok ({ kind; trigger = At i } :: rules, seed)
                        | None ->
                            Error
                              (Printf.sprintf "fault rule %S: bad index" part))
                  | Some dash -> (
                      let a = String.sub tail 0 dash in
                      let b =
                        String.sub tail (dash + 1)
                          (String.length tail - dash - 1)
                      in
                      if timedp then
                        match float_of_string_opt a, float_of_string_opt b with
                        | Some a, Some b ->
                            Ok ({ kind; trigger = During (a, b) } :: rules, seed)
                        | _ ->
                            Error
                              (Printf.sprintf "fault rule %S: bad time range"
                                 part)
                      else
                        match int_of_string_opt a, int_of_string_opt b with
                        | Some a, Some b ->
                            Ok
                              ( { kind; trigger = Between (a, b) } :: rules,
                                seed )
                        | _ ->
                            Error
                              (Printf.sprintf "fault rule %S: bad index range"
                                 part)))))
  in
  let parts = String.split_on_char ',' spec in
  let* rules, seed = List.fold_left parse_rule (Ok ([], None)) parts in
  if rules = [] then Error "empty fault spec"
  else
    let rng = Option.map (fun s -> Random.State.make [| s |]) seed in
    Ok (make ?rng (List.rev rules))
