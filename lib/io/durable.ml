external set_rlimit_nofile : int -> bool = "colib_set_rlimit_nofile"

let openfile path flags perm =
  Fault.inject Fault.Open path;
  Unix.openfile path flags perm

let write_fully ?path fd s =
  Fault.inject Fault.Write (Option.value path ~default:"<fd>");
  let len = String.length s in
  let pos = ref 0 in
  while !pos < len do
    match Unix.write_substring fd s !pos (len - !pos) with
    | n -> pos := !pos + n
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> ()
  done

let fsync ?path fd =
  Fault.inject Fault.Fsync (Option.value path ~default:"<fd>");
  Unix.fsync fd

let rename src dst =
  Fault.inject Fault.Rename dst;
  Unix.rename src dst

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd

let unlink_quiet path = try Unix.unlink path with Unix.Unix_error _ -> ()

let write_file_atomic ?(fsync_parent = true) ~path data =
  let tmp = path ^ ".tmp" in
  let fd =
    openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  (try
     write_fully ~path:tmp fd data;
     fsync ~path:tmp fd;
     Unix.close fd
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     unlink_quiet tmp;
     raise e);
  (try rename tmp path
   with e ->
     unlink_quiet tmp;
     raise e);
  if fsync_parent then fsync_dir (Filename.dirname path)

let reap_tmp ?(min_age_s = 0.) dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | entries ->
      let now = Unix.gettimeofday () in
      (* a *.tmp younger than [min_age_s] may be another live process's
         in-flight staging file (the supervisor renaming its pid file
         while a freshly restarted daemon reaps the shared directory), so
         only files at least that old count as crash debris *)
      let stale entry =
        min_age_s <= 0.
        ||
        match Unix.stat (Filename.concat dir entry) with
        | exception Unix.Unix_error _ -> false
        | st -> now -. st.Unix.st_mtime >= min_age_s
      in
      Array.fold_left
        (fun n entry ->
          if Filename.check_suffix entry ".tmp" && stale entry then (
            unlink_quiet (Filename.concat dir entry);
            n + 1)
          else n)
        0 entries

let accept lfd =
  Fault.inject Fault.Accept "<listen>";
  Unix.accept ~cloexec:true lfd

(* resident-set size of [pid] from /proc/<pid>/statm (field 2, pages).
   Page size is taken as 4 KiB — statm is Linux-only and this feeds a soft
   recycling heuristic, not an accounting invariant. *)
let rss_kb ~pid =
  match open_in (Printf.sprintf "/proc/%d/statm" pid) with
  | exception Sys_error _ -> None
  | ic -> (
    let line = try input_line ic with End_of_file -> "" in
    close_in_noerr ic;
    match String.split_on_char ' ' line with
    | _size :: resident :: _ -> (
      match int_of_string_opt resident with
      | Some pages -> Some (pages * 4)
      | None -> None)
    | _ -> None)
