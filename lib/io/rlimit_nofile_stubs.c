/* Open-file-descriptor cap for fd-exhaustion tests and the chaos soak.
   Lowers only the soft limit so a test can restore headroom by raising it
   again (raising the hard limit back is not possible without privilege). */

#include <caml/mlvalues.h>
#include <caml/memory.h>

#ifdef _WIN32

CAMLprim value colib_set_rlimit_nofile(value n)
{
  CAMLparam1(n);
  CAMLreturn(Val_false); /* unsupported; the caller degrades gracefully */
}

#else

#include <sys/resource.h>

CAMLprim value colib_set_rlimit_nofile(value n)
{
  CAMLparam1(n);
  struct rlimit rl;
  if (getrlimit(RLIMIT_NOFILE, &rl) != 0)
    CAMLreturn(Val_false);
  rl.rlim_cur = (rlim_t)Long_val(n);
  if (rl.rlim_cur > rl.rlim_max)
    rl.rlim_cur = rl.rlim_max;
  CAMLreturn(Val_bool(setrlimit(RLIMIT_NOFILE, &rl) == 0));
}

#endif
