(** Exact graph coloring by implicit enumeration (Brélaz 1979, after Brown
    1972) — the specialized-algorithm family the paper's Section 2.1
    surveys, provided as an independent native comparator to the
    reduction-based flow, and as the branch-and-bound rung of the
    degradation ladder in [Colib_core.Flow].

    Branch and bound over DSATUR-ordered vertex assignments: an initial
    clique is pre-colored (fixing one representative per color class, which
    already breaks the color symmetry the paper's SBPs target), vertices are
    picked by maximal saturation degree, and a branch assigns each feasible
    used color plus at most one fresh color; branches that cannot beat the
    incumbent are cut. *)

type cut =
  | Nodes    (** the node limit was reached *)
  | Time     (** the deadline passed *)
  | Stopped  (** the cooperative cancellation hook fired *)

type outcome =
  | Exact of int * int array
      (** proven chromatic number and an optimal coloring *)
  | Bounds of int * int * int array * cut
      (** search budget exhausted: best-known lower and upper bounds, the
          coloring witnessing the upper bound, and why the search was cut *)

val solve :
  ?node_limit:int -> ?deadline:float -> ?cancel:(unit -> bool) ->
  Graph.t -> outcome
(** [node_limit] caps branch-and-bound nodes (default [5_000_000]);
    [deadline] is an absolute [Colib_clock.Mclock.now]-epoch timestamp and
    [cancel] a cooperative cancellation hook, both checked every 256
    nodes. *)

val chromatic_number :
  ?node_limit:int -> ?deadline:float -> ?cancel:(unit -> bool) ->
  Graph.t -> int option
(** [Some chi] when proven within budget. *)
