type error = { line : int; message : string }

exception Error of error

let error_to_string { line; message } =
  Printf.sprintf "line %d: %s" line message

let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)

let parse text =
  let lines = String.split_on_char '\n' text in
  let b = ref None in
  let nv = ref 0 in
  let line_no = ref 0 in
  let fail msg = raise (Error { line = !line_no; message = msg }) in
  List.iter
    (fun line ->
      incr line_no;
      let line = String.trim line in
      if line = "" then ()
      else
        match line.[0] with
        | 'c' -> ()
        | 'p' -> (
          if !b <> None then fail "duplicate problem line"
          else
            match String.split_on_char ' ' line |> List.filter (( <> ) "") with
            | [ "p"; ("edge" | "edges" | "col"); n; m ] -> (
              match (int_of_string_opt n, int_of_string_opt m) with
              | Some n, Some m when n >= 0 && m >= 0 ->
                nv := n;
                b := Some (Graph.builder n)
              | Some n, Some _ when n < 0 ->
                fail "negative vertex count in problem line"
              | _ -> fail "bad vertex count in problem line")
            | _ -> fail "malformed problem line")
        | 'e' -> (
          match !b with
          | None -> fail "edge before problem line"
          | Some b -> (
            match String.split_on_char ' ' line |> List.filter (( <> ) "") with
            | [ "e"; u; v ] -> (
              match (int_of_string_opt u, int_of_string_opt v) with
              | Some u, Some v ->
                if u < 1 || v < 1 then
                  fail "vertex ids must be positive (DIMACS is 1-based)"
                else if u = v then
                  () (* some files contain self-loops; drop them *)
                else if u > !nv || v > !nv then
                  fail
                    (Printf.sprintf "edge endpoint %d exceeds vertex count %d"
                       (max u v) !nv)
                else Graph.add_edge b (u - 1) (v - 1)
              | _ -> fail "malformed edge line")
            | _ -> fail "malformed edge line"))
        | 'n' -> () (* optional node lines in some variants; ignored *)
        | _ -> fail "unrecognized line")
    lines;
  match !b with
  | None -> raise (Error { line = !line_no; message = "missing problem line" })
  | Some b -> Graph.freeze b

let parse_result text =
  match parse text with g -> Ok g | exception Error e -> Result.Error e

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse text

let write ppf ?comment g =
  (match comment with
  | Some c ->
    String.split_on_char '\n' c
    |> List.iter (fun line -> Format.fprintf ppf "c %s\n" line)
  | None -> ());
  Format.fprintf ppf "p edge %d %d\n" (Graph.num_vertices g) (Graph.num_edges g);
  Graph.iter_edges (fun u v -> Format.fprintf ppf "e %d %d\n" (u + 1) (v + 1)) g

let to_string ?comment g =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  write ppf ?comment g;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let write_file path ?comment g =
  let oc = open_out path in
  output_string oc (to_string ?comment g);
  close_out oc
