type cut =
  | Nodes      (* node limit reached *)
  | Time       (* deadline passed *)
  | Stopped    (* the cancellation hook fired *)

type outcome =
  | Exact of int * int array
  | Bounds of int * int * int array * cut

exception Cut of cut

let solve ?(node_limit = 5_000_000) ?deadline ?cancel g =
  let n = Graph.num_vertices g in
  if n = 0 then Exact (0, [||])
  else begin
    let clique = Clique.greedy g in
    let lower = Array.length clique in
    let heuristic = Dsatur.dsatur g in
    let heuristic2 = Dsatur.smallest_last g in
    let heuristic =
      if Dsatur.num_colors heuristic2 < Dsatur.num_colors heuristic then
        heuristic2
      else heuristic
    in
    let best = ref (Array.copy heuristic) in
    let best_count = ref (Dsatur.num_colors heuristic) in
    if lower = !best_count then Exact (lower, !best)
    else begin
      let coloring = Array.make n (-1) in
      (* seed: pre-color the clique, one color class each — this fixes a
         representative per color and breaks the color permutation symmetry
         (the specialized-solver counterpart of the paper's SBPs) *)
      Array.iteri (fun i v -> coloring.(v) <- i) clique;
      let nodes = ref 0 in
      let budget_cut = ref None in
      let stop cut =
        budget_cut := Some cut;
        raise (Cut cut)
      in
      let check_budget () =
        incr nodes;
        if !nodes > node_limit then stop Nodes;
        if !nodes land 255 = 0 then begin
          (match cancel with Some hook when hook () -> stop Stopped | _ -> ());
          match deadline with
          (* >= — a deadline equal to "now" (zero timeout) must fire *)
          | Some d when Colib_clock.Mclock.now () >= d -> stop Time
          | _ -> ()
        end
      in
      (* saturation = number of distinct neighbor colors *)
      let distinct_neighbor_colors v =
        let seen = Array.make !best_count false in
        let count = ref 0 in
        Array.iter
          (fun w ->
            let c = coloring.(w) in
            if c >= 0 && c < Array.length seen && not seen.(c) then begin
              seen.(c) <- true;
              incr count
            end)
          (Graph.neighbors g v);
        !count
      in
      let rec branch colored used =
        check_budget ();
        if colored = n then begin
          if used < !best_count then begin
            best_count := used;
            best := Array.copy coloring
          end
        end
        else begin
          (* DSATUR pick: max saturation, ties by degree *)
          let pick = ref (-1) and pick_sat = ref (-1) in
          for v = 0 to n - 1 do
            if coloring.(v) < 0 then begin
              let s = distinct_neighbor_colors v in
              if
                s > !pick_sat
                || (s = !pick_sat
                    && Graph.degree g v > Graph.degree g !pick)
              then begin
                pick := v;
                pick_sat := s
              end
            end
          done;
          let v = !pick in
          let forbidden = Array.make (used + 1) false in
          Array.iter
            (fun w ->
              let c = coloring.(w) in
              if c >= 0 && c <= used then forbidden.(c) <- true)
            (Graph.neighbors g v);
          (* used colors first, then one fresh color if it can still beat
             the incumbent *)
          for c = 0 to used - 1 do
            if (not forbidden.(c)) && used < !best_count then begin
              coloring.(v) <- c;
              branch (colored + 1) used;
              coloring.(v) <- -1
            end
          done;
          if used + 1 < !best_count then begin
            coloring.(v) <- used;
            branch (colored + 1) (used + 1);
            coloring.(v) <- -1
          end
        end
      in
      (* poll the budget once before searching: a pre-cancelled or
         already-expired call must not spend nodes (the root-bounds shortcut
         above is exempt — that proof is complete without any search) *)
      let entry_check () =
        (match cancel with Some hook when hook () -> stop Stopped | _ -> ());
        match deadline with
        | Some d when Colib_clock.Mclock.now () >= d -> stop Time
        | _ -> ()
      in
      (try
         entry_check ();
         branch lower lower
       with Cut _ -> ());
      match !budget_cut with
      | Some cut when lower < !best_count -> Bounds (lower, !best_count, !best, cut)
      | _ -> Exact (!best_count, !best)
    end
  end

let chromatic_number ?node_limit ?deadline ?cancel g =
  match solve ?node_limit ?deadline ?cancel g with
  | Exact (chi, _) -> Some chi
  | Bounds _ -> None
