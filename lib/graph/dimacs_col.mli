(** DIMACS graph-coloring file format (".col").

    The standard format of the DIMACS coloring benchmark suite:
    comment lines start with [c], the problem line is [p edge <n> <m>],
    and each edge line is [e <u> <v>] with 1-based vertex numbers. *)

type error = { line : int; message : string }
(** A parse failure, pinned to the 1-based input line that caused it. *)

exception Error of error
(** The only exception this parser raises: every malformed input — junk
    lines, negative or zero vertex ids, out-of-range edges, a missing or
    duplicated problem line — surfaces as [Error] with the offending line
    number. *)

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

val parse : string -> Graph.t
(** Parse the contents of a [.col] file. Raises {!Error} on malformed input.
    Duplicate edge lines and both orientations of the same edge are merged
    (several DIMACS files list each edge twice); self-loops are dropped. *)

val parse_result : string -> (Graph.t, error) result
(** Exception-free variant of {!parse}. *)

val parse_file : string -> Graph.t
(** Read and {!parse} a file. Raises {!Error} on malformed content and
    [Sys_error] if the file cannot be read. *)

val write : Format.formatter -> ?comment:string -> Graph.t -> unit
val to_string : ?comment:string -> Graph.t -> string
val write_file : string -> ?comment:string -> Graph.t -> unit
