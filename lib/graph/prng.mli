(** Deterministic pseudo-random number generator (splitmix64).

    Used by the synthetic benchmark generators so that every build of the
    repository produces bit-identical instances, independent of the OCaml
    standard library's [Random] implementation. *)

type t

val create : int -> t
(** [create seed] seeds the generator. *)

val state : t -> int64
(** The full internal state, for persisting a stream mid-flight (the
    checkpoint layer stores it so a resumed run draws the same tail). *)

val of_state : int64 -> t
(** Rebuild a generator from {!state} — continues the exact stream. *)

val next_int64 : t -> int64
val int : t -> int -> int
(** [int t bound] is uniform in [0 .. bound-1]. [bound] must be positive. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> float -> bool
(** [bool t p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
