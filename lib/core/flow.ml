module Graph = Colib_graph.Graph
module Dsatur = Colib_graph.Dsatur
module Exact_dsatur = Colib_graph.Exact_dsatur
module Formula = Colib_sat.Formula
module Encoding = Colib_encode.Encoding
module Sbp = Colib_encode.Sbp
module Types = Colib_solver.Types
module Engine = Colib_solver.Engine
module Optimize = Colib_solver.Optimize
module Checkpoint = Colib_solver.Checkpoint
module Output = Colib_sat.Output
module Formula_graph = Colib_symmetry.Formula_graph
module Lex_leader = Colib_symmetry.Lex_leader
module Auto = Colib_symmetry.Auto
module Certify = Colib_check.Certify

type fallback =
  | Fallback_engine of Types.engine
  | Fallback_dsatur
  | Fallback_heuristic

let default_fallback = [ Fallback_dsatur; Fallback_heuristic ]

type config = {
  engine : Types.engine;
  k : int;
  sbp : Sbp.construction;
  instance_dependent : bool;
  sbp_depth : int;
  sym_node_budget : int;
  timeout : float;
  fallback : fallback list;
  instrument : (Types.budget -> Types.budget) option;
  verify : bool;
  proof : bool;
  inprocessing : bool;
  checkpoint : Checkpoint.config option;
  checkpoint_label : string;
  share : Types.share option;
}

let config ?(engine = Types.Pbs2) ?(sbp = Sbp.No_sbp)
    ?(instance_dependent = true) ?(sbp_depth = max_int)
    ?(sym_node_budget = 200_000) ?(timeout = 10.0)
    ?(fallback = default_fallback) ?instrument ?(verify = false)
    ?(proof = false) ?(inprocessing = true) ?checkpoint
    ?(checkpoint_label = "solve") ?share ~k () =
  { engine; k; sbp; instance_dependent; sbp_depth; sym_node_budget; timeout;
    fallback; instrument; verify; proof; inprocessing; checkpoint;
    checkpoint_label; share }

type sym_info = {
  order_log10 : float;
  num_generators : int;
  detection_time : float;
  complete : bool;
}

type stage =
  | Engine_stage of Types.engine
  | Dsatur_stage
  | Heuristic_stage

let stage_name = function
  | Engine_stage e -> Types.engine_name e
  | Dsatur_stage -> "DSATUR B&B"
  | Heuristic_stage -> "heuristic"

type attempt = {
  stage : stage;
  stop : Types.stop_reason option;
  found : int option;
  proved : bool;
  rejected : bool;
  stage_time : float;
  proof_steps : int option;
}

type outcome =
  | Optimal of int
  | Best of int
  | No_coloring
  | Timed_out

type proof_bundle = {
  proof_stage : stage;
  proof_formula : Formula.t;
  proof_trace : Colib_sat.Proof.t;
  proof_claim : Colib_sat.Proof.claim;
}

type result = {
  outcome : outcome;
  coloring : int array option;
  solve_time : float;
  sym : sym_info option;
  stats_encoded : Formula.stats;
  stats_final : Formula.stats;
  solver : Types.stats;
  provenance : attempt list;
  certificate : (unit, Certify.failure) Stdlib.result option;
  proof : proof_bundle option;
  resume_log : string list;
}

let detect_and_break ~node_budget ~depth enc =
  let t0 = Colib_clock.Mclock.now () in
  let res, lit_perms = Formula_graph.detect ~node_budget enc.Encoding.formula in
  let _ = Lex_leader.add_all ~depth enc.Encoding.formula lit_perms in
  let dt = Colib_clock.Mclock.now () -. t0 in
  {
    order_log10 = res.Auto.order_log10;
    num_generators = List.length lit_perms;
    detection_time = dt;
    complete = res.Auto.complete;
  }

let best_heuristic g =
  let candidates =
    [ Dsatur.dsatur g; Dsatur.welsh_powell g; Dsatur.smallest_last g ]
  in
  match candidates with
  | first :: rest ->
    List.fold_left
      (fun best c ->
        if Dsatur.num_colors c < Dsatur.num_colors best then c else best)
      first rest
  | [] -> assert false

(* The degradation ladder. The primary engine and every fallback stage share
   one absolute wall-clock deadline resolved at solve start; a stage that
   stops for a non-deadline reason (conflict cap, cancellation, chaos
   injection) leaves the remaining time to the rungs below it. Every
   coloring a stage claims passes through the certifier before it is
   admitted; claims that contradict already-certified evidence are rejected
   and recorded as such, so the flow never returns an uncertified answer. *)
let run g cfg =
  let enc = Encoding.encode g ~k:cfg.k in
  Sbp.add cfg.sbp enc;
  let stats_encoded = Formula.stats enc.Encoding.formula in
  let sym =
    if cfg.instance_dependent then
      Some
        (detect_and_break ~node_budget:cfg.sym_node_budget
           ~depth:cfg.sbp_depth enc)
    else None
  in
  let stats_final = Formula.stats enc.Encoding.formula in
  let t0 = Colib_clock.Mclock.now () in
  let deadline = t0 +. cfg.timeout in
  let stage_budget () =
    let b = { Types.no_budget with Types.deadline = Some deadline } in
    match cfg.instrument with None -> b | Some f -> f b
  in
  let attempts = ref [] in
  let record a = attempts := a :: !attempts in
  let resume_log = ref [] in
  let log_resume msg = resume_log := msg :: !resume_log in
  (* identifies the exact encoded formula (after SBPs); a snapshot whose
     digest differs was taken against a different encoding and is stale *)
  let ck_digest =
    lazy
      (Digest.to_hex (Digest.string (Output.opb_string enc.Encoding.formula)))
  in
  (* best certified coloring seen so far, with its color count *)
  let best = ref None in
  let proven = ref None in
  let proof_out = ref None in
  let primary_stats = ref (Types.fresh_stats ()) in
  (* a coloring enters the ladder state only if the certifier accepts it *)
  let admit col claimed =
    match Certify.coloring g ~k:cfg.k ~claimed col with
    | Ok () ->
      (match !best with
      | Some (_, c) when c <= claimed -> ()
      | _ -> best := Some (col, claimed));
      true
    | Error _ -> false
  in
  let run_engine_stage ~primary e =
    let st0 = Colib_clock.Mclock.now () in
    let stage = Engine_stage e in
    let nvars = Formula.num_vars enc.Encoding.formula in
    let ename = Types.engine_name e in
    (* checkpoint plumbing: the snapshot path for this (label, engine, k)
       and, under --resume, a snapshot that passed both the structural read
       and the identity validation. Anything less degrades to a cold start
       and says so in the resume log — never to a wrong answer. *)
    let ck_path, ck_resume =
      match cfg.checkpoint with
      | None -> (None, None)
      | Some ck ->
        Checkpoint.ensure_dir ck.Checkpoint.dir;
        let path =
          Checkpoint.snapshot_path ~dir:ck.Checkpoint.dir
            ~label:cfg.checkpoint_label ~engine:ename ~k:cfg.k
        in
        let sn =
          if not ck.Checkpoint.resume then None
          else
            match Checkpoint.read path with
            | Error Checkpoint.Missing -> None
            | Error err ->
              log_resume
                (Printf.sprintf "%s: snapshot rejected (%s); cold start"
                   ename (Checkpoint.read_error_to_string err));
              None
            | Ok sn -> (
              match
                Checkpoint.validate sn ~label:cfg.checkpoint_label ~k:cfg.k
                  ~digest:(Lazy.force ck_digest) ~engine:e ~nvars
              with
              | Error msg ->
                log_resume
                  (Printf.sprintf "%s: stale snapshot (%s); cold start"
                     ename msg);
                None
              | Ok () ->
                log_resume
                  (Printf.sprintf
                     "%s: resumed at %d conflicts, %d learned clauses%s"
                     ename sn.Checkpoint.sn_engine.Types.sv_conflicts
                     (Array.length sn.Checkpoint.sn_engine.Types.sv_learnts)
                     (match sn.Checkpoint.sn_incumbent with
                     | Some (_, c) -> Printf.sprintf ", incumbent %d" c
                     | None -> ""));
                Some sn)
        in
        (Some (path, ck), sn)
    in
    (* a resumed run stitches its new proof steps onto the snapshot's
       prefix, so the final trace reads as one uninterrupted derivation *)
    let trace =
      if not cfg.proof then None
      else
        match ck_resume with
        | Some sn -> Some (Colib_sat.Proof.of_steps sn.Checkpoint.sn_proof)
        | None -> Some (Colib_sat.Proof.create ())
    in
    let eng = Engine.create ?proof:trace ~inprocess:cfg.inprocessing e nvars in
    Option.iter (Engine.set_share eng) cfg.share;
    Engine.add_formula eng enc.Encoding.formula;
    let obj = Option.get (Formula.objective enc.Encoding.formula) in
    let emitter =
      Option.map
        (fun (path, ck) ->
          Checkpoint.emitter ?prng:ck.Checkpoint.seed
            ~label:cfg.checkpoint_label ~k:cfg.k
            ~digest:(Lazy.force ck_digest) ~path
            ~interval:ck.Checkpoint.interval ())
        ck_path
    in
    let r =
      Optimize.minimize ?checkpoint:emitter ?resume:ck_resume eng obj
        (stage_budget ())
    in
    if primary then primary_stats := Engine.stats eng;
    let dt = Colib_clock.Mclock.now () -. st0 in
    let psteps = Option.map Colib_sat.Proof.num_steps trace in
    (* a settling stage hands its trace out for independent replay *)
    let keep_proof claim =
      match trace with
      | None -> ()
      | Some tr ->
        proof_out :=
          Some
            {
              proof_stage = stage;
              proof_formula = enc.Encoding.formula;
              proof_trace = tr;
              proof_claim = claim;
            }
    in
    let att = { stage; stop = None; found = None; proved = false;
                rejected = false; stage_time = dt; proof_steps = psteps } in
    let decode_opt m =
      match Encoding.decode enc m with
      | col -> Some col
      | exception Invalid_argument _ -> None
    in
    let model_ok m =
      (not cfg.verify)
      || (match Certify.model enc.Encoding.formula m with
         | Ok () -> true
         | Error _ -> false)
    in
    match r with
    | Optimize.Optimal (m, c) -> (
      (* an Optimal claim must not contradict a better certified coloring *)
      let contradicted =
        match !best with Some (_, c') -> c' < c | None -> false
      in
      match decode_opt m with
      | Some col when model_ok m && (not contradicted) && admit col c ->
        proven := Some (Optimal c);
        keep_proof (Colib_sat.Proof.Optimal_claim c);
        record { att with found = Some c; proved = true }
      | _ -> record { att with rejected = true })
    | Optimize.Satisfiable (m, c, reason) -> (
      match decode_opt m with
      | Some col when model_ok m && admit col c ->
        record { att with stop = Some reason; found = Some c }
      | _ -> record { att with stop = Some reason; rejected = true })
    | Optimize.Unsatisfiable ->
      (* an UNSAT claim while we hold a certified K-coloring is a bug in the
         claiming engine: the certified coloring wins *)
      if !best = None then begin
        proven := Some No_coloring;
        keep_proof Colib_sat.Proof.Unsat_claim;
        record { att with proved = true }
      end
      else record { att with rejected = true }
    | Optimize.Timeout reason -> record { att with stop = Some reason }
  in
  let run_dsatur_stage () =
    let st0 = Colib_clock.Mclock.now () in
    let b = stage_budget () in
    let out =
      Exact_dsatur.solve ?deadline:b.Types.deadline ?cancel:b.Types.cancel g
    in
    let dt = Colib_clock.Mclock.now () -. st0 in
    let att = { stage = Dsatur_stage; stop = None; found = None;
                proved = false; rejected = false; stage_time = dt;
                proof_steps = None } in
    match out with
    | Exact_dsatur.Exact (chi, col) ->
      if chi > cfg.k then
        if !best = None then begin
          proven := Some No_coloring;
          record { att with proved = true }
        end
        else record { att with rejected = true }
      else if admit col chi then begin
        proven := Some (Optimal chi);
        record { att with found = Some chi; proved = true }
      end
      else record { att with rejected = true }
    | Exact_dsatur.Bounds (_, hi, col, cut) ->
      let stop =
        Some
          (match cut with
          | Exact_dsatur.Nodes -> Types.Conflict_limit
          | Exact_dsatur.Time -> Types.Deadline
          | Exact_dsatur.Stopped -> Types.Cancelled)
      in
      if hi <= cfg.k && admit col hi then
        record { att with stop; found = Some hi }
      else record { att with stop }
  in
  let run_heuristic_stage () =
    let st0 = Colib_clock.Mclock.now () in
    let col = best_heuristic g in
    let c = Dsatur.num_colors col in
    let dt = Colib_clock.Mclock.now () -. st0 in
    let att = { stage = Heuristic_stage; stop = None; found = None;
                proved = false; rejected = false; stage_time = dt;
                proof_steps = None } in
    if c <= cfg.k && admit col c then record { att with found = Some c }
    else record att
  in
  run_engine_stage ~primary:true cfg.engine;
  List.iter
    (fun f ->
      if !proven = None then
        match f with
        | Fallback_engine e -> run_engine_stage ~primary:false e
        | Fallback_dsatur -> run_dsatur_stage ()
        | Fallback_heuristic -> run_heuristic_stage ())
    cfg.fallback;
  let solve_time = Colib_clock.Mclock.now () -. t0 in
  let outcome, coloring =
    match (!proven, !best) with
    | Some (Optimal c), Some (col, _) -> (Optimal c, Some col)
    | Some No_coloring, _ -> (No_coloring, None)
    | Some o, b -> (o, Option.map fst b)
    | None, Some (col, c) -> (Best c, Some col)
    | None, None -> (Timed_out, None)
  in
  let certificate =
    match (coloring, !best) with
    | Some col, Some (_, c) -> Some (Certify.coloring g ~k:cfg.k ~claimed:c col)
    | Some col, None ->
      Some (Certify.coloring g ~k:cfg.k ~claimed:cfg.k col)
    | None, _ -> None
  in
  {
    outcome;
    coloring;
    solve_time;
    sym;
    stats_encoded;
    stats_final;
    solver = !primary_stats;
    provenance = List.rev !attempts;
    certificate;
    proof = !proof_out;
    resume_log = List.rev !resume_log;
  }

(* The exact formula [run] solves, rebuilt deterministically from the graph
   and config. A proof replayed against this formula certifies the claim
   without trusting whoever produced the trace — the portfolio parent uses
   it to re-check worker proofs against its OWN encoding, so a worker
   cannot smuggle in a doctored formula. *)
let encoded_formula g cfg =
  let enc = Encoding.encode g ~k:cfg.k in
  Sbp.add cfg.sbp enc;
  if cfg.instance_dependent then
    ignore
      (detect_and_break ~node_budget:cfg.sym_node_budget ~depth:cfg.sbp_depth
         enc
        : sym_info);
  enc.Encoding.formula

let symmetry_stats ?(node_budget = 200_000) g ~k ~sbp =
  let enc = Encoding.encode g ~k in
  Sbp.add sbp enc;
  let stats = Formula.stats enc.Encoding.formula in
  let t0 = Colib_clock.Mclock.now () in
  let res, lit_perms = Formula_graph.detect ~node_budget enc.Encoding.formula in
  let dt = Colib_clock.Mclock.now () -. t0 in
  ( {
      order_log10 = res.Auto.order_log10;
      num_generators = List.length lit_perms;
      detection_time = dt;
      complete = res.Auto.complete;
    },
    stats )

let decide_k_colorable ?(engine = Types.Pbs2) ?(timeout = 10.0) g ~k =
  let enc = Encoding.encode g ~k in
  let eng = Engine.create engine (Formula.num_vars enc.Encoding.formula) in
  Engine.add_formula eng enc.Encoding.formula;
  match Engine.solve eng (Types.within_seconds timeout) with
  | Types.Sat m -> (
    (* never hand out an uncertified coloring *)
    match Encoding.decode enc m with
    | col when Graph.is_proper_coloring g col -> `Yes col
    | _ | (exception Invalid_argument _) -> `Unknown)
  | Types.Unsat -> `No
  | Types.Unknown _ -> `Unknown
