module Graph = Colib_graph.Graph
module Clique = Colib_graph.Clique
module Dsatur = Colib_graph.Dsatur
module Sbp = Colib_encode.Sbp
module Types = Colib_solver.Types

type answer = {
  lower : int;
  upper : int;
  chromatic : int option;
  coloring : int array;
  time : float;
  lower_source : string;
  upper_source : string;
  attempts : Flow.attempt list;
  proof : Flow.proof_bundle option;
  resume_log : string list;
}

let best_heuristic g =
  let candidates =
    [ Dsatur.dsatur g; Dsatur.welsh_powell g; Dsatur.smallest_last g ]
  in
  match candidates with
  | first :: rest ->
    List.fold_left
      (fun best c ->
        if Dsatur.num_colors c < Dsatur.num_colors best then c else best)
      first rest
  | [] -> assert false

(* name the ladder rung whose certified coloring matched the final bound *)
let upper_source_of_attempts attempts c =
  match
    List.find_opt (fun a -> a.Flow.found = Some c && not a.Flow.rejected)
      attempts
  with
  | Some a -> Flow.stage_name a.Flow.stage
  | None -> "solver"

let chromatic_number ?(engine = Types.Pbs2) ?(sbp = Sbp.No_sbp)
    ?(instance_dependent = true) ?(timeout = 10.0) ?fallback ?instrument
    ?verify ?proof ?checkpoint ?checkpoint_label ?k_max g =
  let t0 = Colib_clock.Mclock.now () in
  let n = Graph.num_vertices g in
  if n = 0 then
    { lower = 0; upper = 0; chromatic = Some 0; coloring = [||]; time = 0.0;
      lower_source = "trivial"; upper_source = "trivial"; attempts = [];
      proof = None; resume_log = [] }
  else begin
    let lower = Array.length (Clique.greedy g) in
    let heuristic = best_heuristic g in
    let upper = Dsatur.num_colors heuristic in
    if lower = upper then
      {
        lower;
        upper;
        chromatic = Some upper;
        coloring = heuristic;
        time = Colib_clock.Mclock.now () -. t0;
        lower_source = "clique";
        upper_source = "heuristic";
        attempts = [];
        proof = None;
        resume_log = [];
      }
    else begin
      let k = match k_max with Some k -> min k upper | None -> upper in
      let cfg =
        Flow.config ~engine ~sbp ~instance_dependent ~timeout ?fallback
          ?instrument ?verify ?proof ?checkpoint ?checkpoint_label ~k ()
      in
      let r = Flow.run g cfg in
      let attempts = r.Flow.provenance in
      let pf = r.Flow.proof in
      let rlog = r.Flow.resume_log in
      let time = Colib_clock.Mclock.now () -. t0 in
      if k < upper then
        (* the heuristic already needs more colors than the cap: search below
           the cap only; No_coloring proves chi > k *)
        match r.Flow.outcome, r.Flow.coloring with
        | Flow.Optimal c, Some coloring ->
          { lower; upper = c; chromatic = Some c; coloring; time;
            lower_source = "clique";
            upper_source = upper_source_of_attempts attempts c; attempts;
            proof = pf; resume_log = rlog }
        | Flow.Best c, Some coloring ->
          { lower; upper = c; chromatic = None; coloring; time;
            lower_source = "clique";
            upper_source = upper_source_of_attempts attempts c; attempts;
            proof = pf; resume_log = rlog }
        | Flow.No_coloring, _ ->
          (* chi > k; only bounds available *)
          { lower = max lower (k + 1); upper; chromatic = None;
            coloring = heuristic; time;
            lower_source =
              (if k + 1 > lower then "k-infeasibility proof" else "clique");
            upper_source = "heuristic"; attempts; proof = pf; resume_log = rlog }
        | _, _ ->
          { lower; upper; chromatic = None; coloring = heuristic; time;
            lower_source = "clique"; upper_source = "heuristic"; attempts; proof = pf; resume_log = rlog }
      else begin
        match r.Flow.outcome, r.Flow.coloring with
        | Flow.Optimal c, Some coloring ->
          { lower; upper = c; chromatic = Some c; coloring; time;
            lower_source = "clique";
            upper_source = upper_source_of_attempts attempts c; attempts;
            proof = pf; resume_log = rlog }
        | Flow.Best c, Some coloring when c < upper ->
          { lower; upper = c; chromatic = None; coloring; time;
            lower_source = "clique";
            upper_source = upper_source_of_attempts attempts c; attempts;
            proof = pf; resume_log = rlog }
        | _ ->
          { lower; upper; chromatic = None; coloring = heuristic; time;
            lower_source = "clique"; upper_source = "heuristic"; attempts; proof = pf; resume_log = rlog }
      end
    end
  end

let k_colorable ?engine ?timeout g ~k = Flow.decide_k_colorable ?engine ?timeout g ~k

let chromatic_number_by_search ?engine ?(strategy = `Linear) ?timeout g =
  let t0 = Colib_clock.Mclock.now () in
  let n = Graph.num_vertices g in
  if n = 0 then
    { lower = 0; upper = 0; chromatic = Some 0; coloring = [||]; time = 0.0;
      lower_source = "trivial"; upper_source = "trivial"; attempts = [];
      proof = None; resume_log = [] }
  else begin
    let clique_lower = Array.length (Clique.greedy g) in
    let heuristic = best_heuristic g in
    let heuristic_upper = Dsatur.num_colors heuristic in
    (* invariant: a coloring with [upper] colors is known; no coloring with
       fewer than [lower] colors exists; [unknown] records a budget cut *)
    let lower = ref clique_lower in
    let lower_source = ref "clique" in
    let upper = ref heuristic_upper in
    let upper_source = ref "heuristic" in
    let best = ref heuristic in
    let unknown = ref false in
    let decide k =
      match Flow.decide_k_colorable ?engine ?timeout g ~k with
      | `Yes coloring ->
        best := coloring;
        upper := Dsatur.num_colors coloring;
        (* the solver may use fewer colors than asked *)
        upper := min !upper k;
        upper_source := "decision search";
        true
      | `No ->
        lower := max !lower (k + 1);
        lower_source := "k-infeasibility proof";
        false
      | `Unknown ->
        unknown := true;
        false
    in
    (match strategy with
    | `Linear ->
      (* tighten one color at a time from the heuristic bound *)
      let continue_search = ref true in
      while !continue_search && !upper > !lower && not !unknown do
        continue_search := decide (!upper - 1)
      done
    | `Binary ->
      while !upper > !lower && not !unknown do
        let mid = (!lower + !upper) / 2 in
        ignore (decide mid)
      done);
    let time = Colib_clock.Mclock.now () -. t0 in
    {
      lower = !lower;
      upper = !upper;
      chromatic = (if !unknown then None else Some !upper);
      coloring = !best;
      time;
      lower_source = !lower_source;
      upper_source = !upper_source;
      attempts = [];
      proof = None;
      resume_log = [];
    }
  end
