(** The paper's end-to-end symmetry-breaking flow (Sections 2.4–4):

    graph → 0-1 ILP encoding → instance-independent SBPs (optional) →
    symmetry detection on the formula graph (Saucy-style) →
    instance-dependent lex-leader SBPs (optional, Shatter-style) →
    0-1 ILP solving with a chosen engine →
    degradation ladder on Unknown (alternate engines → DSATUR branch-and-bound
    → heuristic bounds), every claim certified before it is admitted.

    Each stage is timed and its statistics exposed, which is what the
    benchmark harness consumes to regenerate Tables 2–5. *)

module Sbp = Colib_encode.Sbp
module Certify = Colib_check.Certify

type fallback =
  | Fallback_engine of Colib_solver.Types.engine
      (** re-run the optimization with a different engine *)
  | Fallback_dsatur  (** learning-free DSATUR branch-and-bound *)
  | Fallback_heuristic  (** best of DSATUR / Welsh–Powell / smallest-last *)

val default_fallback : fallback list
(** [[Fallback_dsatur; Fallback_heuristic]] *)

type config = {
  engine : Colib_solver.Types.engine;
  k : int;                   (** color limit K (20 and 30 in the paper) *)
  sbp : Sbp.construction;    (** instance-independent construction *)
  instance_dependent : bool; (** detect symmetries and add lex-leader SBPs *)
  sbp_depth : int;           (** lex-leader truncation per generator *)
  sym_node_budget : int;     (** automorphism search budget *)
  timeout : float;           (** seconds for the whole solving ladder *)
  fallback : fallback list;
      (** rungs tried, in order, while optimality is unproven; all rungs
          share the one wall-clock deadline resolved at solve start *)
  instrument : (Colib_solver.Types.budget -> Colib_solver.Types.budget) option;
      (** applied to every stage budget just before the stage runs; the
          chaos-injection hook ([Colib_check.Chaos.instrument]) plugs in
          here *)
  verify : bool;
      (** additionally certify engine models against the formula text *)
  proof : bool;
      (** have engine stages log RUP proof traces; a stage that settles the
          instance (optimal or UNSAT) exposes its trace in [result.proof] *)
  inprocessing : bool;
      (** run the proof-logged simplifier ladder (subsumption, BVE,
          probing, equivalent-literal substitution) inside engine stages;
          [--no-inprocessing] in the CLI turns it off *)
  checkpoint : Colib_solver.Checkpoint.config option;
      (** periodically snapshot engine stages to
          [dir/<label>.<engine>.k<K>.ckpt] and, when [resume] is set, warm-
          start each engine stage from a snapshot that passes structural and
          identity validation (label, engine, k, variable count, and a digest
          of the exact encoded formula). Rejected or stale snapshots degrade
          to a cold start, recorded in [result.resume_log]. A resumed proof
          trace is stitched onto the snapshot's prefix so it replays as one
          derivation. *)
  checkpoint_label : string;
      (** instance identity baked into snapshot names and contents *)
  share : Colib_solver.Types.share option;
      (** learned-clause exchange hooks, installed into every engine stage
          ([Engine.set_share]); the portfolio supervisor plugs its clause
          relay in here. Imports pass the engine's RUP admission gate, so
          the hooks affect speed, never soundness. *)
}

val config :
  ?engine:Colib_solver.Types.engine ->
  ?sbp:Sbp.construction ->
  ?instance_dependent:bool ->
  ?sbp_depth:int ->
  ?sym_node_budget:int ->
  ?timeout:float ->
  ?fallback:fallback list ->
  ?instrument:(Colib_solver.Types.budget -> Colib_solver.Types.budget) ->
  ?verify:bool ->
  ?proof:bool ->
  ?inprocessing:bool ->
  ?checkpoint:Colib_solver.Checkpoint.config ->
  ?checkpoint_label:string ->
  ?share:Colib_solver.Types.share ->
  k:int ->
  unit ->
  config
(** Defaults: PBS II engine, no instance-independent SBPs, instance-dependent
    SBPs on, untruncated lex-leader chains, budget 200_000 nodes,
    timeout 10 s, [default_fallback] ladder, no instrument, verify off,
    proof logging off, inprocessing on, no checkpointing, label ["solve"]. *)

type sym_info = {
  order_log10 : float;     (** log10 of the detected symmetry group order *)
  num_generators : int;    (** consistency-validated generators *)
  detection_time : float;  (** seconds spent building the graph + searching *)
  complete : bool;         (** search finished within its node budget *)
}

type stage =
  | Engine_stage of Colib_solver.Types.engine
  | Dsatur_stage
  | Heuristic_stage

val stage_name : stage -> string

type attempt = {
  stage : stage;
  stop : Colib_solver.Types.stop_reason option;
      (** why the stage gave up, [None] if it ran to completion *)
  found : int option;
      (** color count of the certified coloring this stage contributed *)
  proved : bool;  (** the stage settled the instance (optimal or UNSAT) *)
  rejected : bool;
      (** the stage's claim failed certification or contradicted
          already-certified evidence and was discarded *)
  stage_time : float;
  proof_steps : int option;
      (** size of the RUP trace this stage logged ([config.proof] engine
          stages only) *)
}

type outcome =
  | Optimal of int        (** proven optimal color count within K *)
  | Best of int           (** a coloring was found; optimality unproven *)
  | No_coloring           (** not K-colorable (chromatic number > K) *)
  | Timed_out             (** budget exhausted with no coloring found *)

type proof_bundle = {
  proof_stage : stage;    (** the engine stage that settled the instance *)
  proof_formula : Colib_sat.Formula.t;
      (** the formula the trace refutes/optimizes (after SBPs) *)
  proof_trace : Colib_sat.Proof.t;
  proof_claim : Colib_sat.Proof.claim;
}
(** Everything needed to replay a settling stage's answer through
    {!Colib_check.Rup} — or to write a self-contained proof file. *)

type result = {
  outcome : outcome;
  coloring : int array option;
  solve_time : float;
  sym : sym_info option;  (** present when [instance_dependent] was set *)
  stats_encoded : Colib_sat.Formula.stats;
      (** formula size after instance-independent SBPs, before
          instance-dependent ones — the sizes reported in Table 2 *)
  stats_final : Colib_sat.Formula.stats;
  solver : Colib_solver.Types.stats;  (** the primary engine's statistics *)
  provenance : attempt list;
      (** one record per stage run, in execution order: which rung produced
          the answer and why the rungs above it stopped *)
  certificate : (unit, Certify.failure) Stdlib.result option;
      (** re-certification of the returned coloring, [None] when no coloring
          is returned *)
  proof : proof_bundle option;
      (** present when [config.proof] was set and an engine stage proved the
          answer (Optimal or No_coloring) *)
  resume_log : string list;
      (** checkpoint/resume events in order: warm resumes with the conflict
          count picked up, and rejected/stale snapshots with why they were
          not trusted (each of those is a cold start, not a failure) *)
}

val run : Colib_graph.Graph.t -> config -> result
(** Solve through the ladder. A coloring only reaches [result] after
    [Certify.coloring] accepts it, so [Optimal]/[Best] outcomes are
    certified-sound even under injected faults. *)

val encoded_formula : Colib_graph.Graph.t -> config -> Colib_sat.Formula.t
(** The exact formula [run] would solve under this config (encoding +
    instance-independent SBPs + instance-dependent lex-leader SBPs),
    rebuilt deterministically. Replaying a proof against this formula
    certifies a claim without trusting the process that produced the trace. *)

val symmetry_stats :
  ?node_budget:int ->
  Colib_graph.Graph.t ->
  k:int ->
  sbp:Sbp.construction ->
  sym_info * Colib_sat.Formula.stats
(** Encode, add the instance-independent construction, and measure residual
    symmetries — one cell of Table 2. *)

val decide_k_colorable :
  ?engine:Colib_solver.Types.engine ->
  ?timeout:float ->
  Colib_graph.Graph.t ->
  k:int ->
  [ `Yes of int array | `No | `Unknown ]
(** Decision variant: stop at the first model instead of optimizing. [`Yes]
    colorings are verified proper before being returned. *)
