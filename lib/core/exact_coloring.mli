(** One-call exact graph coloring.

    The per-instance bound procedure of Section 4.1: a clique gives the lower
    bound, DSATUR/Welsh–Powell the upper bound; when they meet no search is
    needed, otherwise the 0-1 ILP flow proves optimality below the upper
    bound, degrading through the fallback ladder when the primary engine
    cannot finish. Every answer records where each bound came from. *)

type answer = {
  lower : int;               (** clique lower bound (or better) *)
  upper : int;               (** best coloring found *)
  chromatic : int option;    (** [Some chi] when optimality was proven *)
  coloring : int array;      (** proper coloring with [upper] colors *)
  time : float;
  lower_source : string;
      (** provenance of [lower]: "clique", "k-infeasibility proof", … *)
  upper_source : string;
      (** provenance of [upper]: "heuristic" or the ladder rung that
          produced the certified coloring *)
  attempts : Flow.attempt list;
      (** the solving ladder's per-stage provenance, empty when the bounds
          met without search *)
  proof : Flow.proof_bundle option;
      (** RUP proof of the settling engine stage, when proof logging was
          requested and the answer was proved by an engine *)
  resume_log : string list;
      (** checkpoint/resume events from the ladder ({!Flow.result.resume_log}),
          empty when no checkpointing was configured or no search ran *)
}

val chromatic_number :
  ?engine:Colib_solver.Types.engine ->
  ?sbp:Colib_encode.Sbp.construction ->
  ?instance_dependent:bool ->
  ?timeout:float ->
  ?fallback:Flow.fallback list ->
  ?instrument:(Colib_solver.Types.budget -> Colib_solver.Types.budget) ->
  ?verify:bool ->
  ?proof:bool ->
  ?checkpoint:Colib_solver.Checkpoint.config ->
  ?checkpoint_label:string ->
  ?k_max:int ->
  Colib_graph.Graph.t ->
  answer
(** Compute the chromatic number exactly when possible within the timeout.
    [k_max] (default: the heuristic upper bound) caps the encoding size the
    way the paper caps K at 20/30; if the chromatic number exceeds [k_max]
    only bounds are returned. [fallback], [instrument], [verify],
    [checkpoint] and [checkpoint_label] are passed through to
    {!Flow.config} — with [checkpoint] set, the engine stages snapshot
    periodically and can resume a killed solve. Defaults: PBS II, no
    instance-independent SBPs, instance-dependent SBPs on, 10 s timeout.
    Empty graphs yield chromatic number 0. *)

val k_colorable :
  ?engine:Colib_solver.Types.engine ->
  ?timeout:float ->
  Colib_graph.Graph.t ->
  k:int ->
  [ `Yes of int array | `No | `Unknown ]
(** The decision version (Section 2.1). *)

val chromatic_number_by_search :
  ?engine:Colib_solver.Types.engine ->
  ?strategy:[ `Linear | `Binary ] ->
  ?timeout:float ->
  Colib_graph.Graph.t ->
  answer
(** The alternative bound procedure of Section 4.1: instead of one
    optimization run, repeatedly solve K-coloring decision instances,
    tightening K linearly from the heuristic upper bound (or by binary
    search between the clique bound and the heuristic bound). The paper
    notes 0-1 ILP solvers make this loop unnecessary; it is provided for
    the comparison ablation. [timeout] bounds each decision call. *)
