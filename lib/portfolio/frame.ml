let magic = "CPF1"
let protocol_version = 1
let header_len = 4 + 1 + 4 + 8

(* a coloring answer is a few KB; anything claiming more than this is not a
   frame we produced *)
let max_payload = 64 * 1024 * 1024

type error =
  | Bad_magic
  | Bad_version of int
  | Bad_length of int
  | Bad_checksum
  | Bad_payload of string

let error_to_string = function
  | Bad_magic -> "bad magic"
  | Bad_version v -> Printf.sprintf "unknown protocol version %d" v
  | Bad_length n -> Printf.sprintf "implausible payload length %d" n
  | Bad_checksum -> "checksum mismatch"
  | Bad_payload m -> "bad payload: " ^ m

let fnv1a s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c)))
             0x100000001B3L)
    s;
  !h

let encode payload =
  let b = Buffer.create (header_len + String.length payload) in
  Buffer.add_string b magic;
  Buffer.add_char b (Char.chr protocol_version);
  Buffer.add_int32_be b (Int32.of_int (String.length payload));
  Buffer.add_int64_be b (fnv1a payload);
  Buffer.add_string b payload;
  Buffer.contents b

type state =
  | Awaiting
  | Got of string
  | Failed of error

type decoder = {
  buf : Buffer.t;
  mutable st : state;
}

let decoder () = { buf = Buffer.create 256; st = Awaiting }

let state d = d.st
let bytes_received d = Buffer.length d.buf

(* validate as early as the available prefix allows, so 64 bytes of garbage
   fail on the magic rather than waiting for a length that never arrives *)
let advance d =
  let s = Buffer.contents d.buf in
  let n = String.length s in
  let prefix = min n 4 in
  if String.sub s 0 prefix <> String.sub magic 0 prefix then
    d.st <- Failed Bad_magic
  else if n >= 5 && Char.code s.[4] <> protocol_version then
    d.st <- Failed (Bad_version (Char.code s.[4]))
  else if n >= 9 then begin
    let len = Int32.to_int (String.get_int32_be s 5) in
    if len < 0 || len > max_payload then d.st <- Failed (Bad_length len)
    else if n >= header_len + len then begin
      let sum = String.get_int64_be s 9 in
      let payload = String.sub s header_len len in
      if fnv1a payload <> sum then d.st <- Failed Bad_checksum
      else d.st <- Got payload
    end
  end

let feed d buf n =
  match d.st with
  | Got _ | Failed _ -> ()
  | Awaiting ->
    Buffer.add_subbytes d.buf buf 0 n;
    advance d
