let magic = "CPF1"
let protocol_version = 1
let header_len = 4 + 1 + 4 + 8

(* a coloring answer is a few KB; anything claiming more than this is not a
   frame we produced *)
let max_payload = 64 * 1024 * 1024

type error =
  | Bad_magic
  | Bad_version of int
  | Bad_length of int
  | Bad_checksum
  | Bad_payload of string

let error_to_string = function
  | Bad_magic -> "bad magic"
  | Bad_version v -> Printf.sprintf "unknown protocol version %d" v
  | Bad_length n -> Printf.sprintf "implausible payload length %d" n
  | Bad_checksum -> "checksum mismatch"
  | Bad_payload m -> "bad payload: " ^ m

let fnv1a s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c)))
             0x100000001B3L)
    s;
  !h

let encode payload =
  let b = Buffer.create (header_len + String.length payload) in
  Buffer.add_string b magic;
  Buffer.add_char b (Char.chr protocol_version);
  Buffer.add_int32_be b (Int32.of_int (String.length payload));
  Buffer.add_int64_be b (fnv1a payload);
  Buffer.add_string b payload;
  Buffer.contents b

type state =
  | Awaiting
  | Got of string
  | Failed of error

type decoder = {
  buf : Buffer.t;
  mutable st : state;
}

let decoder () = { buf = Buffer.create 256; st = Awaiting }

let state d = d.st
let bytes_received d = Buffer.length d.buf

(* validate as early as the available prefix allows, so 64 bytes of garbage
   fail on the magic rather than waiting for a length that never arrives *)
let advance d =
  let s = Buffer.contents d.buf in
  let n = String.length s in
  let prefix = min n 4 in
  if String.sub s 0 prefix <> String.sub magic 0 prefix then
    d.st <- Failed Bad_magic
  else if n >= 5 && Char.code s.[4] <> protocol_version then
    d.st <- Failed (Bad_version (Char.code s.[4]))
  else if n >= 9 then begin
    let len = Int32.to_int (String.get_int32_be s 5) in
    if len < 0 || len > max_payload then d.st <- Failed (Bad_length len)
    else if n >= header_len + len then begin
      let sum = String.get_int64_be s 9 in
      let payload = String.sub s header_len len in
      if fnv1a payload <> sum then d.st <- Failed Bad_checksum
      else d.st <- Got payload
    end
  end

let feed d buf n =
  match d.st with
  | Got _ | Failed _ -> ()
  | Awaiting ->
    Buffer.add_subbytes d.buf buf 0 n;
    advance d

(* Consume the completed frame but keep any surplus bytes already buffered:
   a single read may deliver the tail of one frame plus the head of the
   next (the clause-share streams are multi-frame), and dropping the
   surplus would desynchronise the stream. After a [Failed] there is no
   trustworthy framing left to resynchronise against, so everything is
   discarded. Re-advances immediately, so a fully-buffered second frame is
   visible as [Got] without another [feed]. *)
let reset d =
  (match d.st with
  | Got payload ->
    let consumed = header_len + String.length payload in
    let s = Buffer.contents d.buf in
    Buffer.clear d.buf;
    let n = String.length s in
    if n > consumed then Buffer.add_substring d.buf s consumed (n - consumed)
  | Awaiting | Failed _ -> Buffer.clear d.buf);
  d.st <- Awaiting;
  if Buffer.length d.buf > 0 then advance d

(* ------------------------------------------------------------------ *)
(* Robust fd I/O: every socket/pipe write in the serving stack goes through
   these, so a short write, EINTR, a full socket buffer, or a peer that
   vanished (EPIPE/ECONNRESET) is a typed result — never a lost byte, a
   busy-loop, or a SIGPIPE death. *)

let ignore_sigpipe () =
  (* a write to a half-closed socket must surface as EPIPE for the retry
     logic to classify, not kill the whole process *)
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()

type io_error =
  | Closed            (* EPIPE / ECONNRESET / EOF: the peer is gone *)
  | Io_timeout        (* the deadline passed before the I/O completed *)
  | Io_failed of string

let io_error_to_string = function
  | Closed -> "peer closed the connection"
  | Io_timeout -> "I/O deadline exceeded"
  | Io_failed m -> "I/O error: " ^ m

(* wait until [fd] is ready (read or write); bounded slices so the deadline
   is honoured even if select keeps getting interrupted *)
let wait_ready ~for_write fd ~deadline =
  let now = Colib_clock.Mclock.now () in
  if now >= deadline then Error Io_timeout
  else begin
    let slice = Float.min 0.25 (deadline -. now) in
    let r, w = if for_write then ([], [ fd ]) else ([ fd ], []) in
    match Unix.select r w [] slice with
    | [], [], [] -> Ok `Again
    | _ -> Ok `Ready
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> Ok `Again
  end

(* A finite deadline is only enforceable if the syscalls return instead of
   blocking: switch the fd to non-blocking (and leave it there — both
   helpers handle EAGAIN, so subsequent frame I/O on the fd still works). *)
let arm_deadline fd deadline =
  if deadline < infinity then
    try Unix.set_nonblock fd with Unix.Unix_error _ -> ()

let write_frame ?(deadline = infinity) fd payload =
  arm_deadline fd deadline;
  let s = encode payload in
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off >= len then Ok ()
    else
      match Unix.write fd b off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> (
        match wait_ready ~for_write:true fd ~deadline with
        | Ok _ -> go off
        | Error e -> Error e)
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        Error Closed
      | exception Unix.Unix_error (e, _, _) ->
        Error (Io_failed (Unix.error_message e))
  in
  go 0

type read_error =
  | Read_closed of int   (* EOF after this many bytes — 0 = no reply at all *)
  | Read_timeout
  | Read_frame of error  (* protocol violation: garbage, bad checksum, ... *)
  | Read_failed of string

let read_error_to_string = function
  | Read_closed 0 -> "connection closed before any reply"
  | Read_closed n -> Printf.sprintf "connection closed mid-frame (%d bytes)" n
  | Read_timeout -> "read deadline exceeded"
  | Read_frame e -> "garbage frame: " ^ error_to_string e
  | Read_failed m -> "read error: " ^ m

let read_frame ?(deadline = infinity) fd =
  arm_deadline fd deadline;
  let d = decoder () in
  let buf = Bytes.create 65536 in
  let rec go () =
    match state d with
    | Got payload -> Ok payload
    | Failed e -> Error (Read_frame e)
    | Awaiting -> (
      match Unix.read fd buf 0 (Bytes.length buf) with
      | 0 -> Error (Read_closed (bytes_received d))
      | n ->
        feed d buf n;
        go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> (
        match wait_ready ~for_write:false fd ~deadline with
        | Ok _ -> go ()
        | Error Io_timeout -> Error Read_timeout
        | Error Closed -> Error (Read_closed (bytes_received d))
        | Error (Io_failed m) -> Error (Read_failed m))
      | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
        Error (Read_closed (bytes_received d))
      | exception Unix.Unix_error (e, _, _) ->
        Error (Read_failed (Unix.error_message e)))
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Job request/response messages: the coloring service's wire format,
   layered inside the checksummed frames above. Each payload starts with a
   4-byte message tag carrying its own version digit, so a frame that
   checksums but carries the wrong message kind — or a message from a
   future protocol — is a typed error rather than an unmarshal crash. *)

let request_tag = "CRQ1"
let response_tag = "CRS1"

type job = {
  job_id : string;
  dimacs : string;
  j_k : int option;
  deadline : float;
  strategies : string;
  sbp : string;
  instance_dependent : bool;
  j_seed : int;
}

type session_edit = {
  se_sid : string;
  se_seq : int;
  se_op : string;   (* Session.edit wire form: "v" / "e U V" / "d U V" *)
}

type session_query = {
  sq_sid : string;
  sq_seq : int;
  sq_budget : float;
}

type request =
  | Submit of job
  | Ping
  | Health
  | Sess_open of {
      so_sid : string;
      so_vertices : int;
      so_colors : int;
      so_edges : int;
      so_lease : float;
    }
  | Sess_edit of session_edit
  | Sess_query of session_query
  | Sess_close of { sc_sid : string }

type job_result = {
  r_job_id : string;
  r_outcome : string;
  r_colors : int option;
  r_coloring : int array option;
  r_winner : string option;
  r_certified : bool;
  r_detail : string;
  r_time : float;
  r_replayed : bool;
}

type health = {
  h_queued : int;
  h_running : int;
  h_completed : int;
  h_uptime : float;
  h_durability : string;
  h_restarts : int;
  h_last_io_error : string;
  h_pending_journal : int;
  h_pool_warm : int;
  h_pool_busy : int;
  h_pool_recycling : int;
  h_pool_restarts : int;
  h_pool_recycles : int;
  h_cache_hits : int;
  h_cache_misses : int;
  h_coalesced : int;
  h_peers : string list;
  h_sess_open : int;
  h_sess_evicted : int;
  h_sess_expired : int;
  h_sess_replayed : int;
  h_sess_recovered : int;
}

type session_answer = {
  sa_sid : string;
  sa_seq : int;
  sa_chi : int;
  sa_coloring : int array;
  sa_certified : bool;
  sa_incremental : bool;
  sa_time : float;
  sa_replayed : bool;
}

type response =
  | Accepted of string
  | Overloaded of { queued : int; capacity : int }
  | Rejected of { rj_job_id : string; reason : string }
  | Result of job_result
  | Pong
  | Unavailable of { u_reason : string }
  | Health_report of health
  | Sess_ok of { sk_sid : string; sk_seq : int; sk_replayed : bool }
  | Sess_answer of session_answer
  | Sess_expired of { sx_sid : string }
  | Sess_evicted of { sv_sid : string }

(* ------------------------------------------------------------------ *)
(* Clause-share payloads: short learned clauses exchanged between solver
   workers over the same checksummed frames. Unlike the job messages below,
   a share payload crosses a trust boundary (a forged peer frame must not
   be able to crash the receiver), so it is plain text — semicolon-separated
   clauses of comma-separated raw literal ints — parsed with
   [int_of_string_opt], never [Marshal] on untrusted bytes. Decoded clauses
   are still only *candidates*: the receiving engine's RUP admission gate
   decides whether they enter the database. *)

let share_tag = "CSH1"

let is_share payload =
  String.length payload >= 4 && String.sub payload 0 4 = share_tag

let encode_share clauses =
  let b = Buffer.create 64 in
  Buffer.add_string b share_tag;
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char b ';';
      List.iteri
        (fun j l ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b (string_of_int l))
        c)
    clauses;
  Buffer.contents b

let decode_share payload =
  if not (is_share payload) then None
  else
    let body = String.sub payload 4 (String.length payload - 4) in
    if body = "" then Some []
    else
      let exception Bad in
      try
        Some
          (String.split_on_char ';' body
          |> List.map (fun cs ->
                 String.split_on_char ',' cs
                 |> List.map (fun l ->
                        match int_of_string_opt l with
                        | Some i -> i
                        | None -> raise Bad)))
      with Bad -> None

let with_tag tag v = tag ^ Marshal.to_string v []

let decode_tagged ~expect ~other payload =
  let n = String.length payload in
  if n < 4 then Error (Bad_payload "message shorter than its tag")
  else
    let tag = String.sub payload 0 4 in
    if tag = expect then
      match Marshal.from_string payload 4 with
      | v -> Ok v
      | exception e -> Error (Bad_payload (Printexc.to_string e))
    else if String.sub tag 0 3 = String.sub expect 0 3 then
      (* same message kind, other protocol generation *)
      Error (Bad_version (Char.code tag.[3] - Char.code '0'))
    else if tag = other then
      Error (Bad_payload "wrong message direction")
    else Error (Bad_payload (Printf.sprintf "unknown message tag %S" tag))

let encode_request (r : request) = with_tag request_tag r

let decode_request payload : (request, error) Stdlib.result =
  decode_tagged ~expect:request_tag ~other:response_tag payload

let encode_response (r : response) = with_tag response_tag r

let decode_response payload : (response, error) Stdlib.result =
  decode_tagged ~expect:response_tag ~other:request_tag payload
