(** Process-isolated supervised portfolio solving.

    The paper's central empirical finding (JAIR Tables 1–3) is that no single
    SBP × engine configuration dominates, which makes *racing* several
    configurations the robust way to solve any one instance. This module
    supervises that race with full process isolation: every configuration
    runs in its own forked worker, so a segfault, OOM, runaway loop, or
    corrupted reply is contained in the worker and classified — never fatal
    to the run.

    Supervision contract:
    - each worker gets a wall-clock watchdog (SIGKILL past the configured
      timeout plus a grace period) and an optional address-space cap
      ([setrlimit(RLIMIT_AS)]);
    - replies travel over a pipe as length-prefixed, versioned, checksummed
      frames ({!Frame}); anything else a worker does with the pipe is
      classified as garbled;
    - the parent re-certifies every claimed coloring with
      [Colib_check.Certify] before accepting it, so a worker cannot forge a
      result;
    - engine workers additionally log RUP proof traces; before an [Optimal]
      or [No_coloring] engine claim can win, the parent replays the trace
      with [Colib_check.Rup] against a formula it rebuilds itself
      ({!Flow.encoded_formula}), so even the universal half of a claim is
      never taken on faith from a forked process;
    - the first worker whose *proof* certifies (an optimal coloring, or an
      infeasibility claim uncontradicted by certified evidence) wins the
      race and the losers are killed;
    - transient failures (crash, garbled reply, OOM, rejected claim) are
      retried with capped exponential backoff, each retry rotated to the
      next configuration in the portfolio;
    - with a checkpoint directory configured, engine workers snapshot their
      search state periodically; a crashed, OOM-killed, or hung worker whose
      snapshot structurally reads back is requeued on the {e same} strategy
      with resume on (warm restart) instead of rotating cold, and corrupt
      snapshots are classified in the journal — resumed claims go through
      exactly the same certification and proof replay as cold ones;
    - every worker gets a deterministic PRNG seed derived from the run seed
      and its spawn index, recorded in the attempt provenance, so racing
      runs are reproducible. *)

module Types = Colib_solver.Types
module Sbp = Colib_encode.Sbp
module Chaos = Colib_check.Chaos
module Flow = Colib_core.Flow

(** {1 Portfolio configurations} *)

type strategy =
  | Engine_strategy of Types.engine
      (** the full SBP flow with this engine as the (fallback-free) rung *)
  | Dsatur_strategy  (** the learning-free DSATUR branch-and-bound *)

val strategy_name : strategy -> string

val strategy_of_string : string -> (strategy, string) result
(** Accepts engine names ([pbs2], [galena], [pueblo], [cplex], [pbs]) and
    [dsatur]. *)

val strategies_of_string : string -> (strategy list, string) result
(** Comma-separated list, e.g. ["pbs2,galena,dsatur"]. *)

(** {1 Outcome taxonomy} *)

type answer = {
  a_outcome : Flow.outcome;
  a_coloring : int array option;
  a_time : float;  (** seconds the worker spent solving *)
  a_proof : Flow.proof_bundle option;
      (** the settling RUP trace for engine-strategy workers; the supervisor
          replays it against its own rebuilt formula before accepting an
          [Optimal] or [No_coloring] claim *)
}

type worker_outcome =
  | Done of answer        (** completed; any claimed coloring was certified
                              by the parent *)
  | Rejected of string    (** the claim failed parent-side certification or
                              contradicted certified evidence *)
  | Crashed of int        (** killed by this (OCaml-encoded) signal *)
  | Timed_out             (** hung past its watchdog and was SIGKILLed *)
  | Oom                   (** reported memory exhaustion *)
  | Garbled of string     (** protocol violation on the reply pipe *)
  | Failed of string      (** uncaught exception inside the worker *)
  | Cancelled             (** killed by the supervisor: lost the race or the
                              run was interrupted *)

val outcome_to_string : worker_outcome -> string
val signal_name : int -> string
(** Human name for an OCaml-encoded signal number ("SIGSEGV", ...). *)

val set_memory_limit_mb : int -> bool
(** Cap this process's address space via [setrlimit(RLIMIT_AS)]; [false] if
    the platform refused. Installed in portfolio workers under
    [?mem_limit_mb], and reused by resident pool workers as the hard
    backstop behind their soft RSS recycling bound. *)

type attempt = {
  strategy : strategy;
  seed : int;      (** the worker's deterministic PRNG seed *)
  round : int;     (** 0 for a first try, n for the n-th retry *)
  outcome : worker_outcome;
  wall_time : float;
}

type result = {
  outcome : Flow.outcome;
  coloring : int array option;
  winner : string option;  (** strategy that produced the accepted proof *)
  attempts : attempt list; (** completion order *)
  total_time : float;
  interrupted : bool;      (** [should_stop] fired before the race settled *)
  certificate : (unit, Colib_check.Certify.failure) Stdlib.result option;
}

val worker_seed : run_seed:int -> index:int -> int
(** The deterministic seed of spawn [index] under [run_seed] (splitmix64
    stream over {!Colib_graph.Prng}). *)

(** {1 The race} *)

val solve :
  ?jobs:int ->
  ?retries:int ->
  ?backoff:float ->
  ?backoff_cap:float ->
  ?grace:float ->
  ?mem_limit_mb:int ->
  ?seed:int ->
  ?sbp:Sbp.construction ->
  ?instance_dependent:bool ->
  ?timeout:float ->
  ?share_clauses:bool ->
  ?chaos:Chaos.process_plan ->
  ?should_stop:(unit -> bool) ->
  ?checkpoint:Colib_solver.Checkpoint.config ->
  ?checkpoint_label:string ->
  ?journal:Journal.t ->
  Colib_graph.Graph.t ->
  k:int ->
  strategy list ->
  result
(** Race the given configurations. Never raises on worker misbehaviour; a
    fully-failed portfolio degrades to [Best] (if any coloring certified) or
    [Timed_out], mirroring the in-process degradation ladder.

    Defaults: [jobs] = number of configurations, [retries] 1 per failed slot,
    [backoff] 0.1 s base doubling up to [backoff_cap] 2.0 s, [grace] 2.0 s of
    watchdog slack past [timeout] 10.0 s, run [seed] 0, no [mem_limit_mb]
    ([RLIMIT_AS] cap), no scripted [chaos] faults (spawn-indexed).

    [checkpoint] enables worker snapshots under [checkpoint_label] (default
    ["portfolio"]) and the warm-resume retry policy above; its [resume] flag
    additionally lets the {e first} round pick up snapshots from an earlier
    killed run of the same instance. [journal] records resume and
    snapshot-corruption events as they are classified.

    [share_clauses] (default [true]) gives engine workers a learned-clause
    exchange: short clauses each engine exports are relayed by the
    supervisor to the other engine workers, where the receiving engine's
    RUP admission gate re-derives each candidate before it enters the
    database ([Colib_solver.Engine.import_clause]). The exchange can change
    how fast workers finish, never what they are able to certify — a
    forged or garbled share frame is absorbed, quarantined, and counted. *)

(** {1 The supervision layer}

    The select-driven worker pool underneath {!solve} and {!map}, exported
    so other orchestrators (the cube-and-conquer driver in
    [Colib_distrib.Conquer]) can reuse the same process isolation, watchdog,
    fault-injection, and clause-relay machinery instead of reimplementing
    fork/select/reap. *)

type 'a task = {
  key : int;  (** spawn index; also the chaos-plan index *)
  thunk : share:Types.share option -> 'a;
      (** runs in the forked child; [share] is the child's half of the
          clause exchange when [wants_share] was set (install it with
          [Engine.set_share] or [Flow.config ?share]) *)
  watchdog : float;  (** seconds until the supervisor SIGKILLs the worker *)
  fault : Chaos.process_fault option;
  seed : int;
  mem_limit_mb : int option;
  wants_share : bool;
      (** open a clause-exchange channel for this worker: [CSH1] frames it
          writes before its reply are relayed to its live siblings, and a
          second parent-to-child pipe feeds it theirs *)
}

type 'a completion =
  | C_value of 'a          (** the worker's reply, frame-verified *)
  | C_oom                  (** the worker reported memory exhaustion *)
  | C_exn of string        (** uncaught exception inside the worker *)
  | C_crashed of int       (** killed by this (OCaml-encoded) signal *)
  | C_timed_out            (** SIGKILLed by the watchdog *)
  | C_garbled of string    (** protocol violation on the reply pipe *)
  | C_cancelled            (** killed by [cancel_all]: race over / stop *)

val run_pool :
  jobs:int ->
  should_stop:(unit -> bool) ->
  next:(now:float -> [ `Task of 'a task | `Wait of float | `Done ]) ->
  on_done:('a task -> 'a completion -> wall:float -> [ `Continue | `Stop_all ]) ->
  unit ->
  unit
(** Run tasks from [next] with at most [jobs] live workers. [next] may
    answer [`Wait dt] (nothing ready for [dt] seconds — retry backoff) or
    [`Done]; [on_done] classifies each completion and may stop the whole
    pool ([`Stop_all] — remaining workers are killed and reported
    [C_cancelled]). Single-threaded and select-driven; never raises on
    worker misbehaviour. Clause-share frames are relayed between
    [wants_share] workers with best-effort, deduplicated, bounded
    delivery. *)

(** {1 Generic supervised fan-out} *)

val map :
  ?jobs:int ->
  ?watchdog:float ->
  ?mem_limit_mb:int ->
  ?should_stop:(unit -> bool) ->
  ?on_result:(int -> ('b, string) Stdlib.result -> unit) ->
  ('a -> 'b) ->
  'a list ->
  ('b, string) Stdlib.result array
(** [map f items] runs [f] over [items], each in its own worker process,
    at most [jobs] (default 4) at a time, each under a [watchdog] wall-clock
    cap (default 600 s). A crashed, hung, garbled, or OOM-killed item yields
    [Error reason] instead of taking down the sweep; [on_result] fires as
    each item completes, in completion order, which is where the bench
    harness journals cells. *)
