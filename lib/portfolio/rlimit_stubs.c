/* Address-space cap for portfolio workers. Called in the child right after
   fork, before the solve starts: allocation beyond the cap then fails inside
   the worker (OCaml raises Out_of_memory, which the worker reports as a
   clean OOM reply), or at worst kills only that worker — never the
   supervisor. */

#include <caml/mlvalues.h>
#include <caml/memory.h>

#ifdef _WIN32

CAMLprim value colib_set_memory_limit_mb(value mb)
{
  CAMLparam1(mb);
  CAMLreturn(Val_false); /* unsupported; the caller degrades gracefully */
}

#else

#include <sys/resource.h>

CAMLprim value colib_set_memory_limit_mb(value mb)
{
  CAMLparam1(mb);
  struct rlimit rl;
  rlim_t bytes = (rlim_t)Long_val(mb) * 1024 * 1024;
  rl.rlim_cur = bytes;
  rl.rlim_max = bytes;
  CAMLreturn(Val_bool(setrlimit(RLIMIT_AS, &rl) == 0));
}

#endif
