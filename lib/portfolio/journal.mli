(** Append-only crash-safe run journal ([runs/<id>.jsonl]).

    Each record is one flat JSON object per line, all values encoded as JSON
    strings. [create] commits the empty journal through the full
    durable-rename discipline (write to [<path>.tmp], fsync, rename, fsync
    the parent directory), so a crash can never resurrect the pre-[create]
    journal. [append] is O(1): one [O_APPEND] write of the encoded line
    followed by an fsync — no staging file and no rewrite, so appending the
    millionth record costs the same as the first. A torn append (power cut
    mid-write) leaves at most one partial final line, which [load] skips and
    the next [append] seals with a leading newline before writing its own
    record. All syscalls route through {!Colib_io.Durable}, so the ambient
    {!Colib_io.Fault} plan can inject [ENOSPC]/[EIO] here deterministically;
    a failed [append] raises the [Unix_error] after marking the tail dirty,
    and the journal remains usable — retrying the append is safe. [load] is
    tolerant: lines that fail to parse (hand-edited files, torn writes) are
    skipped rather than fatal, so a damaged journal degrades to recomputing
    a few cells, never to a lost run.

    Records carry arbitrary string fields; the conventional ["key"] field
    identifies a (instance, configuration) cell and is what [bench --resume]
    uses to skip work that is already journaled.

    With [?rotate_bytes] set, the journal is size-bounded: once it outgrows
    the limit and compaction would actually shrink it, the current file is
    preserved as [<path>.1] (hard-linked, so no crash window ever leaves
    the journal missing) and the live file is rewritten as a compacted
    snapshot behind a [__rotation__] marker record. What survives is
    governed by the [?retain] classifier, consulted per ["key"]: [`Latest]
    (the default for every key) keeps only the newest record — correct for
    superseding-state keys, where a cache tombstone or job-state update
    makes earlier records stale versions of the same fact; [`All] keeps
    every record — required for append-only {e history} keys (session edit
    streams), where an older record is data a replay needs, not a stale
    version; [`Drop] discards the key outright — garbage collection for
    streams whose owner is gone (a closed session's edits). The classifier
    must be pure with respect to a key between appends and rotation; it is
    re-consulted at every rotation, so a key can move from [`All] to
    [`Drop] as its owner closes. *)

type t

type retain = [ `Latest | `All | `Drop ]
(** Per-key compaction policy; see the rotation paragraph above. *)

val rotation_key : string
(** ["__rotation__"], the ["key"] of the marker record a rotation writes.
    State-machine readers skip it. *)

val create : ?rotate_bytes:int -> ?retain:(string -> retain) -> string -> t
(** [create path] starts an empty journal at [path], truncating any existing
    file (a fresh run). Parent directories must exist. [retain] defaults to
    [fun _ -> `Latest]. *)

val load : ?rotate_bytes:int -> ?retain:(string -> retain) -> string -> t
(** [load path] reads an existing journal for resumption; a missing file
    yields an empty journal. Unparseable lines are skipped. *)

val append : t -> (string * string) list -> unit
(** Durably commit one record: a single [O_APPEND] write plus fsync, O(1)
    in journal size. Raises [Unix.Unix_error] on I/O failure (disk full,
    injected fault); the journal stays consistent and the append may be
    retried. *)

val close : t -> unit
(** Close the cached append descriptor (idempotent). The journal can still
    be appended to afterwards — the descriptor reopens lazily. *)

val find : t -> string -> (string * string) list option
(** [find t key] is the latest record whose ["key"] field equals [key]. *)

val mem : t -> string -> bool

val records : t -> (string * string) list list
(** All records, oldest first. *)

val length : t -> int
val path : t -> string

val rotations : t -> int
(** How many rotations this journal has performed (including those recorded
    by marker records in a [load]ed file). *)
