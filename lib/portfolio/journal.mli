(** Append-only crash-safe run journal ([runs/<id>.jsonl]).

    Each record is one flat JSON object per line, all values encoded as JSON
    strings. Every writer ([create] and [append]) goes through the full
    durable-rename discipline: write to [<path>.tmp], fsync the file,
    [Unix.rename] it over the journal, then fsync the parent directory — so
    a reader never observes a half-written record no matter where the writer
    was killed, and a power cut after a writer returns can neither resurrect
    the pre-[create] journal nor roll back a committed append. The rename is
    the commit point. [load] is tolerant: lines that fail to parse
    (hand-edited files, a torn write from a pre-rename crash of an older
    format) are skipped rather than fatal, so a damaged journal degrades to
    recomputing a few cells, never to a lost run.

    Records carry arbitrary string fields; the conventional ["key"] field
    identifies a (instance, configuration) cell and is what [bench --resume]
    uses to skip work that is already journaled.

    With [?rotate_bytes] set, the journal is size-bounded: once it outgrows
    the limit and at least one record has been superseded by a later record
    with the same ["key"], the current file is preserved as [<path>.1]
    (hard-linked, so no crash window ever leaves the journal missing) and
    the live file is rewritten as a compacted snapshot — the latest record
    per key, in order, behind a [__rotation__] marker record. Compaction
    only drops superseded records, so any caller that keys self-contained
    state transitions (like the coloring daemon) loses nothing a resume
    needs. *)

type t

val rotation_key : string
(** ["__rotation__"], the ["key"] of the marker record a rotation writes.
    State-machine readers skip it. *)

val create : ?rotate_bytes:int -> string -> t
(** [create path] starts an empty journal at [path], truncating any existing
    file (a fresh run). Parent directories must exist. *)

val load : ?rotate_bytes:int -> string -> t
(** [load path] reads an existing journal for resumption; a missing file
    yields an empty journal. Unparseable lines are skipped. *)

val append : t -> (string * string) list -> unit
(** Atomically commit one record (tmp + fsync + rename). *)

val find : t -> string -> (string * string) list option
(** [find t key] is the latest record whose ["key"] field equals [key]. *)

val mem : t -> string -> bool

val records : t -> (string * string) list list
(** All records, oldest first. *)

val length : t -> int
val path : t -> string

val rotations : t -> int
(** How many rotations this journal has performed (including those recorded
    by marker records in a [load]ed file). *)
