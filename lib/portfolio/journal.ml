type t = {
  path : string;
  (* newest last; each record is an ordered field list *)
  mutable recs : (string * string) list list;
  index : (string, (string * string) list) Hashtbl.t;
  rotate_bytes : int option;
  mutable rotations : int;
}

let rotation_key = "__rotation__"

(* ---------- flat-JSON encoding ---------- *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let encode_record fields =
  let b = Buffer.create 128 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '"';
      escape b k;
      Buffer.add_string b "\":\"";
      escape b v;
      Buffer.add_char b '"')
    fields;
  Buffer.add_char b '}';
  Buffer.contents b

(* Minimal parser for one flat object of string/scalar values. Returns None
   on any malformed input — the loader skips such lines. *)
let parse_record line =
  let n = String.length line in
  let pos = ref 0 in
  let skip_ws () =
    while !pos < n && (match line.[!pos] with ' ' | '\t' -> true | _ -> false)
    do incr pos done
  in
  let fail = ref false in
  let expect c =
    skip_ws ();
    if !pos < n && line.[!pos] = c then incr pos else fail := true
  in
  let parse_string () =
    skip_ws ();
    if !pos >= n || line.[!pos] <> '"' then (fail := true; "")
    else begin
      incr pos;
      let b = Buffer.create 16 in
      let fin = ref false in
      while (not !fin) && not !fail do
        if !pos >= n then fail := true
        else
          match line.[!pos] with
          | '"' -> incr pos; fin := true
          | '\\' ->
            if !pos + 1 >= n then fail := true
            else begin
              (match line.[!pos + 1] with
              | '"' -> Buffer.add_char b '"'
              | '\\' -> Buffer.add_char b '\\'
              | '/' -> Buffer.add_char b '/'
              | 'n' -> Buffer.add_char b '\n'
              | 'r' -> Buffer.add_char b '\r'
              | 't' -> Buffer.add_char b '\t'
              | 'b' -> Buffer.add_char b '\b'
              | 'f' -> Buffer.add_char b '\012'
              | 'u' ->
                if !pos + 5 >= n then fail := true
                else begin
                  (match int_of_string ("0x" ^ String.sub line (!pos + 2) 4) with
                  | code when code < 0x80 -> Buffer.add_char b (Char.chr code)
                  | _ -> Buffer.add_char b '?'
                  | exception _ -> fail := true);
                  pos := !pos + 4
                end
              | _ -> fail := true);
              pos := !pos + 2
            end
          | c -> Buffer.add_char b c; incr pos
      done;
      Buffer.contents b
    end
  in
  (* a bare scalar (number, true, false, null) kept as its source text *)
  let parse_scalar () =
    skip_ws ();
    let start = !pos in
    while
      !pos < n
      && (match line.[!pos] with
         | ',' | '}' | ' ' | '\t' -> false
         | _ -> true)
    do incr pos done;
    if !pos = start then fail := true;
    String.sub line start (!pos - start)
  in
  expect '{';
  let fields = ref [] in
  skip_ws ();
  if (not !fail) && !pos < n && line.[!pos] = '}' then incr pos
  else begin
    let continue = ref true in
    while !continue && not !fail do
      let k = parse_string () in
      expect ':';
      skip_ws ();
      let v =
        if !fail then ""
        else if !pos < n && line.[!pos] = '"' then parse_string ()
        else parse_scalar ()
      in
      if not !fail then fields := (k, v) :: !fields;
      skip_ws ();
      if !fail then ()
      else if !pos < n && line.[!pos] = ',' then incr pos
      else if !pos < n && line.[!pos] = '}' then begin
        incr pos;
        continue := false
      end
      else fail := true
    done
  end;
  skip_ws ();
  if !fail || !pos <> n then None else Some (List.rev !fields)

(* ---------- journal proper ---------- *)

let reindex t =
  Hashtbl.reset t.index;
  List.iter
    (fun r ->
      match List.assoc_opt "key" r with
      | Some k -> Hashtbl.replace t.index k r
      | None -> ())
    t.recs

(* a rename is only durable once the parent directory's entry is on disk;
   some filesystems reject fsync on a directory fd (EINVAL) — ignore *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let create ?rotate_bytes path =
  let t =
    { path; recs = []; index = Hashtbl.create 64; rotate_bytes; rotations = 0 }
  in
  (* commit the empty journal so a fresh run visibly supersedes an old one;
     fsync the file before the rename and the directory after it, or a
     crash right here can leave the OLD journal resurfacing on reboot and
     the resume path replaying cells this run already claimed *)
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> Unix.fsync fd);
  Unix.rename tmp path;
  fsync_dir (Filename.dirname path);
  t

let load ?rotate_bytes path =
  let lines =
    match In_channel.with_open_text path In_channel.input_all with
    | text -> String.split_on_char '\n' text
    | exception Sys_error _ -> []
  in
  let recs =
    List.filter_map
      (fun line -> if String.trim line = "" then None else parse_record line)
      lines
  in
  let rotations =
    List.fold_left
      (fun acc r ->
        if List.assoc_opt "key" r = Some rotation_key then
          match List.assoc_opt "rotations" r with
          | Some s -> ( try max acc (int_of_string s) with _ -> acc)
          | None -> acc
        else acc)
      0 recs
  in
  let t = { path; recs; index = Hashtbl.create 64; rotate_bytes; rotations } in
  reindex t;
  t

(* drop every record superseded by a later one with the same key, keeping
   relative order; keyless records are never dropped (nothing supersedes
   them) *)
let compacted recs =
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let keep_rev =
    List.filter
      (fun r ->
        match List.assoc_opt "key" r with
        | None -> true
        | Some k ->
          if Hashtbl.mem seen k then false
          else begin
            Hashtbl.add seen k ();
            true
          end)
      (List.rev recs)
  in
  List.rev keep_rev

let encoded_size recs =
  List.fold_left (fun n r -> n + String.length (encode_record r) + 1) 0 recs

(* Size-triggered rotation: when the journal outgrows [rotate_bytes] AND
   compaction would actually shrink it, the current file is preserved as
   [<path>.1] (hard link, so there is no window with the journal missing)
   and the live file is rewritten as a compacted snapshot — one record per
   key, prefixed by a [__rotation__] marker record. Journals whose records
   all carry distinct keys (e.g. bench sweeps) never rotate: every record
   is live data. *)
let maybe_rotate t =
  match t.rotate_bytes with
  | None -> ()
  | Some limit when encoded_size t.recs <= max 0 limit -> ()
  | Some _ ->
    let live = compacted t.recs in
    let dropped = List.length t.recs - List.length live in
    if dropped > 0 then begin
      t.rotations <- t.rotations + 1;
      let marker =
        [
          ("key", rotation_key);
          ("event", "rotated");
          ("rotations", string_of_int t.rotations);
          ("dropped", string_of_int dropped);
          ("live", string_of_int (List.length live));
        ]
      in
      t.recs <- marker :: List.filter (fun r -> r <> marker) live;
      reindex t;
      let backup = t.path ^ ".1" in
      (try Unix.unlink backup with Unix.Unix_error _ -> ());
      (try Unix.link t.path backup with Unix.Unix_error _ -> ())
    end

let append t fields =
  t.recs <- t.recs @ [ fields ];
  (match List.assoc_opt "key" fields with
  | Some k -> Hashtbl.replace t.index k fields
  | None -> ());
  maybe_rotate t;
  let tmp = t.path ^ ".tmp" in
  let fd = Unix.openfile tmp [ O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
  let write_line r =
    let line = encode_record r ^ "\n" in
    let b = Bytes.of_string line in
    let len = Bytes.length b in
    let off = ref 0 in
    while !off < len do
      match Unix.write fd b !off (len - !off) with
      | n -> off := !off + n
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      List.iter write_line t.recs;
      Unix.fsync fd);
  Unix.rename tmp t.path;
  (* the fsync above makes the CONTENT durable but not the rename itself:
     without flushing the directory entry a power cut can roll the journal
     back to its pre-append state even though append returned *)
  fsync_dir (Filename.dirname t.path)

let find t key = Hashtbl.find_opt t.index key
let mem t key = Hashtbl.mem t.index key
let records t = t.recs
let length t = List.length t.recs
let path t = t.path
let rotations t = t.rotations
