module Durable = Colib_io.Durable

type retain = [ `Latest | `All | `Drop ]

type t = {
  path : string;
  (* newest first, so append is O(1); [records] reverses *)
  mutable recs_rev : (string * string) list list;
  index : (string, (string * string) list) Hashtbl.t;
  rotate_bytes : int option;
  (* per-key compaction policy consulted at rotation time *)
  retain : string -> retain;
  mutable rotations : int;
  (* the O_APPEND write fd, opened lazily and kept across appends *)
  mutable fd : Unix.file_descr option;
  (* true when the file may end mid-line (a torn append, or garbage from a
     foreign writer): the next append prepends '\n' so the partial line is
     terminated and skipped by the loader instead of corrupting the new
     record *)
  mutable dirty_tail : bool;
  (* current on-disk size, tracked incrementally for rotation checks *)
  mutable bytes : int;
}

let rotation_key = "__rotation__"

(* ---------- flat-JSON encoding ---------- *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let encode_record fields =
  let b = Buffer.create 128 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '"';
      escape b k;
      Buffer.add_string b "\":\"";
      escape b v;
      Buffer.add_char b '"')
    fields;
  Buffer.add_char b '}';
  Buffer.contents b

(* Minimal parser for one flat object of string/scalar values. Returns None
   on any malformed input — the loader skips such lines. *)
let parse_record line =
  let n = String.length line in
  let pos = ref 0 in
  let skip_ws () =
    while !pos < n && (match line.[!pos] with ' ' | '\t' -> true | _ -> false)
    do incr pos done
  in
  let fail = ref false in
  let expect c =
    skip_ws ();
    if !pos < n && line.[!pos] = c then incr pos else fail := true
  in
  let parse_string () =
    skip_ws ();
    if !pos >= n || line.[!pos] <> '"' then (fail := true; "")
    else begin
      incr pos;
      let b = Buffer.create 16 in
      let fin = ref false in
      while (not !fin) && not !fail do
        if !pos >= n then fail := true
        else
          match line.[!pos] with
          | '"' -> incr pos; fin := true
          | '\\' ->
            if !pos + 1 >= n then fail := true
            else begin
              (match line.[!pos + 1] with
              | '"' -> Buffer.add_char b '"'
              | '\\' -> Buffer.add_char b '\\'
              | '/' -> Buffer.add_char b '/'
              | 'n' -> Buffer.add_char b '\n'
              | 'r' -> Buffer.add_char b '\r'
              | 't' -> Buffer.add_char b '\t'
              | 'b' -> Buffer.add_char b '\b'
              | 'f' -> Buffer.add_char b '\012'
              | 'u' ->
                if !pos + 5 >= n then fail := true
                else begin
                  (match int_of_string ("0x" ^ String.sub line (!pos + 2) 4) with
                  | code when code < 0x80 -> Buffer.add_char b (Char.chr code)
                  | _ -> Buffer.add_char b '?'
                  | exception _ -> fail := true);
                  pos := !pos + 4
                end
              | _ -> fail := true);
              pos := !pos + 2
            end
          | c -> Buffer.add_char b c; incr pos
      done;
      Buffer.contents b
    end
  in
  (* a bare scalar (number, true, false, null) kept as its source text *)
  let parse_scalar () =
    skip_ws ();
    let start = !pos in
    while
      !pos < n
      && (match line.[!pos] with
         | ',' | '}' | ' ' | '\t' -> false
         | _ -> true)
    do incr pos done;
    if !pos = start then fail := true;
    String.sub line start (!pos - start)
  in
  expect '{';
  let fields = ref [] in
  skip_ws ();
  if (not !fail) && !pos < n && line.[!pos] = '}' then incr pos
  else begin
    let continue = ref true in
    while !continue && not !fail do
      let k = parse_string () in
      expect ':';
      skip_ws ();
      let v =
        if !fail then ""
        else if !pos < n && line.[!pos] = '"' then parse_string ()
        else parse_scalar ()
      in
      if not !fail then fields := (k, v) :: !fields;
      skip_ws ();
      if !fail then ()
      else if !pos < n && line.[!pos] = ',' then incr pos
      else if !pos < n && line.[!pos] = '}' then begin
        incr pos;
        continue := false
      end
      else fail := true
    done
  end;
  skip_ws ();
  if !fail || !pos <> n then None else Some (List.rev !fields)

(* ---------- journal proper ---------- *)

let reindex t =
  Hashtbl.reset t.index;
  List.iter
    (fun r ->
      match List.assoc_opt "key" r with
      | Some k ->
        if not (Hashtbl.mem t.index k) then Hashtbl.replace t.index k r
      | None -> ())
    t.recs_rev

let close t =
  match t.fd with
  | None -> ()
  | Some fd ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    t.fd <- None

let create ?rotate_bytes ?(retain = fun _ -> `Latest) path =
  let t =
    {
      path;
      recs_rev = [];
      index = Hashtbl.create 64;
      rotate_bytes;
      retain;
      rotations = 0;
      fd = None;
      dirty_tail = false;
      bytes = 0;
    }
  in
  (* commit the empty journal so a fresh run visibly supersedes an old one;
     fsync the file before the rename and the directory after it, or a
     crash right here can leave the OLD journal resurfacing on reboot and
     the resume path replaying cells this run already claimed *)
  Durable.write_file_atomic ~path "";
  t

let load ?rotate_bytes ?(retain = fun _ -> `Latest) path =
  (* a staging file here is debris from a writer killed between open and
     rename; the commit point is the rename, so it is never live data *)
  Durable.unlink_quiet (path ^ ".tmp");
  let text =
    match In_channel.with_open_text path In_channel.input_all with
    | text -> text
    | exception Sys_error _ -> ""
  in
  let lines = String.split_on_char '\n' text in
  let recs =
    List.filter_map
      (fun line -> if String.trim line = "" then None else parse_record line)
      lines
  in
  let rotations =
    List.fold_left
      (fun acc r ->
        if List.assoc_opt "key" r = Some rotation_key then
          match List.assoc_opt "rotations" r with
          | Some s -> ( try max acc (int_of_string s) with _ -> acc)
          | None -> acc
        else acc)
      0 recs
  in
  let len = String.length text in
  let t =
    {
      path;
      recs_rev = List.rev recs;
      index = Hashtbl.create 64;
      rotate_bytes;
      retain;
      rotations;
      fd = None;
      dirty_tail = len > 0 && text.[len - 1] <> '\n';
      bytes = len;
    }
  in
  reindex t;
  t

(* compaction survivors, oldest first. Keyless records are never dropped
   (nothing supersedes them); keyed records follow the [retain] policy:
   [`Latest] keeps the newest record per key (superseding-state keys like
   run cells and cache tombstones), [`All] keeps every record (append-only
   histories — one key per record of a stream — where an older record is
   data, not a stale version), [`Drop] discards the key outright (streams
   whose owner is gone). Without a policy everything is [`Latest], the
   pre-[retain] behavior. *)
let compacted_oldest_first t =
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  List.rev
    (List.filter
       (fun r ->
         match List.assoc_opt "key" r with
         | None -> true
         | Some k -> (
           match if k = rotation_key then `Latest else t.retain k with
           | `All -> true
           | `Drop -> false
           | `Latest ->
             if Hashtbl.mem seen k then false
             else begin
               Hashtbl.add seen k ();
               true
             end))
       t.recs_rev)

(* Size-triggered rotation: when the journal outgrows [rotate_bytes] AND
   compaction would actually shrink it, the current file is preserved as
   [<path>.1] (hard link, so there is no window with the journal missing)
   and the live file is atomically rewritten as a compacted snapshot — one
   record per key, behind a fresh [__rotation__] marker record. Journals
   whose records all carry distinct keys (e.g. bench sweeps) never rotate:
   every record is live data. Best-effort: an I/O failure mid-rotation
   leaves the (already durable) un-compacted journal in place, so the
   caller's append still succeeded. *)
let maybe_rotate t =
  match t.rotate_bytes with
  | None -> ()
  | Some limit when t.bytes <= max 0 limit -> ()
  | Some _ -> (
    let live =
      List.filter
        (fun r -> List.assoc_opt "key" r <> Some rotation_key)
        (compacted_oldest_first t)
    in
    let dropped = List.length t.recs_rev - List.length live in
    if dropped > 0 then
      try
        let marker =
          [
            ("key", rotation_key);
            ("event", "rotated");
            ("rotations", string_of_int (t.rotations + 1));
            ("dropped", string_of_int dropped);
            ("live", string_of_int (List.length live));
          ]
        in
        let snapshot = marker :: live in
        let b = Buffer.create 4096 in
        List.iter
          (fun r ->
            Buffer.add_string b (encode_record r);
            Buffer.add_char b '\n')
          snapshot;
        let backup = t.path ^ ".1" in
        Durable.unlink_quiet backup;
        (try Unix.link t.path backup with Unix.Unix_error _ -> ());
        Durable.write_file_atomic ~path:t.path (Buffer.contents b);
        (* the append fd still points at the pre-rotation inode *)
        close t;
        t.rotations <- t.rotations + 1;
        t.recs_rev <- List.rev snapshot;
        t.bytes <- Buffer.length b;
        t.dirty_tail <- false;
        reindex t
      with Unix.Unix_error _ -> ())

let append_fd t =
  match t.fd with
  | Some fd -> fd
  | None ->
    let fd =
      Durable.openfile t.path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
        0o644
    in
    t.fd <- Some fd;
    fd

(* O(1) durable append: one O_APPEND write of the encoded line, then fsync.
   No staging file, no rewrite — the single write either lands in the tail
   or (torn) leaves a partial last line that [load] skips and the next
   append seals with a leading newline. *)
let append t fields =
  let line = encode_record fields ^ "\n" in
  let payload = if t.dirty_tail then "\n" ^ line else line in
  let fd = append_fd t in
  (try
     Durable.write_fully ~path:t.path fd payload;
     Durable.fsync ~path:t.path fd
   with e ->
     (* the write may have partially landed; seal it on the next attempt *)
     t.dirty_tail <- true;
     raise e);
  t.dirty_tail <- false;
  t.bytes <- t.bytes + String.length payload;
  t.recs_rev <- fields :: t.recs_rev;
  (match List.assoc_opt "key" fields with
  | Some k -> Hashtbl.replace t.index k fields
  | None -> ());
  maybe_rotate t

let find t key = Hashtbl.find_opt t.index key
let mem t key = Hashtbl.mem t.index key
let records t = List.rev t.recs_rev
let length t = List.length t.recs_rev
let path t = t.path
let rotations t = t.rotations
