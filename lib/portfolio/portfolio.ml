module Graph = Colib_graph.Graph
module Exact_dsatur = Colib_graph.Exact_dsatur
module Prng = Colib_graph.Prng
module Types = Colib_solver.Types
module Checkpoint = Colib_solver.Checkpoint
module Sbp = Colib_encode.Sbp
module Certify = Colib_check.Certify
module Chaos = Colib_check.Chaos
module Rup = Colib_check.Rup
module Proof = Colib_sat.Proof
module Flow = Colib_core.Flow

external set_memory_limit_mb : int -> bool = "colib_set_memory_limit_mb"

(* ------------------------------------------------------------------ *)
(* Worker protocol: a worker sends exactly one marshalled reply inside one
   checksummed frame, then exits. Everything else — a signal death, an
   endless loop, random bytes, a half-written frame — is the supervisor's
   problem to classify, never to crash on. *)

type 'a reply =
  | Value of 'a
  | Oom_reply
  | Exn_reply of string

type 'a task = {
  key : int;                 (* spawn index; also the chaos-plan index *)
  thunk : share:Types.share option -> 'a;  (* runs in the child *)
  watchdog : float;          (* seconds until SIGKILL *)
  fault : Chaos.process_fault option;
  seed : int;
  mem_limit_mb : int option;
  wants_share : bool;
      (* give the child a clause-exchange channel: share frames it writes on
         the reply pipe are relayed to its siblings, and a second
         parent-to-child pipe feeds it their clauses *)
}

type 'a completion =
  | C_value of 'a
  | C_oom
  | C_exn of string
  | C_crashed of int
  | C_timed_out
  | C_garbled of string
  | C_cancelled

type 'a running = {
  task : 'a task;
  pid : int;
  fd : Unix.file_descr;
  import_w : Unix.file_descr option;
      (* parent's write end of the clause-import pipe, when the task wants
         sharing; always nonblocking — the relay drops frames rather than
         ever letting a slow child block the supervisor *)
  dec : Frame.decoder;
  started : float;
  kill_at : float;
  mutable eof : bool;
}

let kill_quiet pid =
  try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let reap pid =
  let rec go () =
    match Unix.waitpid [] pid with
    | _, st -> st
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> Unix.WEXITED 0
  in
  go ()

let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then
      match Unix.write fd b off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  (* EPIPE here means the supervisor already gave up on us; nothing to do *)
  try go 0 with Unix.Unix_error _ -> ()

(* The child's half of the clause exchange. Exports go out as [CSH1] share
   frames on the reply pipe (the supervisor relays them); imports arrive on
   [ir], a dedicated nonblocking pipe, as share frames from the relay. The
   hooks run on the engine's search path, so both are strictly nonblocking;
   if the channel ever garbles or the parent vanishes, sharing silently
   stops and the solve continues alone. Negative ints (possible in relayed
   forged traffic) are filtered before [Lit.of_index]; everything else is
   the receiving engine's RUP admission gate's problem. *)
let child_share ir wfd : Types.share =
  Unix.set_nonblock ir;
  let dec = Frame.decoder () in
  let rbuf = Bytes.create 8192 in
  let dead = ref false in
  let collect out =
    let rec go out =
      match Frame.state dec with
      | Frame.Got p ->
        let out =
          match Frame.decode_share p with
          | Some cls -> List.rev_append cls out
          | None -> out
        in
        Frame.reset dec;
        go out
      | Frame.Failed _ ->
        dead := true;
        out
      | Frame.Awaiting -> out
    in
    go out
  in
  let rec pump out =
    if !dead then out
    else
      match Unix.read ir rbuf 0 (Bytes.length rbuf) with
      | 0 ->
        dead := true;
        collect out
      | n ->
        Frame.feed dec rbuf n;
        pump (collect out)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        out
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> pump out
      | exception Unix.Unix_error _ ->
        dead := true;
        out
  in
  let sh_import () =
    List.rev_map
      (fun c -> List.map Colib_sat.Lit.of_index c)
      (List.filter
         (fun c -> List.for_all (fun l -> l >= 0) c)
         (pump (collect [])))
  in
  let sh_export clauses =
    if clauses <> [] && not !dead then
      write_all wfd
        (Frame.encode
           (Frame.encode_share
              (List.map (List.map Colib_sat.Lit.to_index) clauses)))
  in
  { Types.sh_export; sh_import }

let child_main (task : 'a task) ~import_r wfd : 'b =
  (* a supervisor that gave up on us closes its read end; the reply write
     must then fail as EPIPE (swallowed below), not kill us with SIGPIPE
     before the typed path runs *)
  Frame.ignore_sigpipe ();
  (match task.mem_limit_mb with
  | Some mb -> ignore (set_memory_limit_mb mb : bool)
  | None -> ());
  let send (reply : 'a reply) =
    write_all wfd (Frame.encode (Marshal.to_string reply []))
  in
  (match task.fault with
  | Some Chaos.Segfault ->
    Unix.kill (Unix.getpid ()) Sys.sigsegv;
    Unix._exit 97
  | Some Chaos.Hang ->
    while true do
      Unix.sleepf 0.05
    done;
    Unix._exit 97
  | Some Chaos.Garbage ->
    let p = Prng.create task.seed in
    write_all wfd (String.init 64 (fun _ -> Char.chr (Prng.int p 256)));
    Unix._exit 0
  | Some Chaos.Truncated_frame ->
    let frame = Frame.encode (String.make 256 'f') in
    write_all wfd (String.sub frame 0 (String.length frame - 64));
    Unix._exit 0
  | Some (Chaos.Kill_mid_solve delay) ->
    (* a genuine uncatchable death in the middle of the search, not a
       cooperative cancellation: arm a real-time timer whose handler
       SIGKILLs this process, then start solving normally *)
    Sys.set_signal Sys.sigalrm
      (Sys.Signal_handle (fun _ -> Unix.kill (Unix.getpid ()) Sys.sigkill));
    ignore
      (Unix.setitimer Unix.ITIMER_REAL
         { Unix.it_interval = 0.0; it_value = Float.max 0.001 delay }
        : Unix.interval_timer_status)
  | Some Chaos.Forged_share ->
    (* validly-framed, parseable, bogus clause-share traffic: the relay
       will broadcast it and every peer's RUP admission gate must absorb
       it (reject out-of-range literals, quarantine non-consequences)
       without any certified answer changing. Then solve normally. *)
    let p = Prng.create task.seed in
    for _ = 1 to 6 do
      let cls =
        List.init
          (1 + Prng.int p 2)
          (fun _ -> List.init (1 + Prng.int p 4) (fun _ -> Prng.int p 256))
      in
      write_all wfd (Frame.encode (Frame.encode_share cls))
    done
  | Some Chaos.Alloc_bomb | None -> ());
  let share =
    if task.wants_share then Option.map (fun ir -> child_share ir wfd) import_r
    else None
  in
  let thunk =
    match task.fault with
    | Some Chaos.Alloc_bomb -> fun ~share:_ -> raise Out_of_memory
    | _ -> task.thunk
  in
  (match thunk ~share with
  | v -> send (Value v)
  | exception Out_of_memory -> send Oom_reply
  | exception e -> send (Exn_reply (Printexc.to_string e)));
  Unix._exit 0

let spawn ~sibling_fds (task : 'a task) : 'a running =
  let r, w = Unix.pipe () in
  let import = if task.wants_share then Some (Unix.pipe ()) else None in
  match Unix.fork () with
  | 0 ->
    close_quiet r;
    (match import with Some (_, iw) -> close_quiet iw | None -> ());
    (* inherited ends of sibling pipes: close so we cannot interfere
       and the parent's fd accounting stays exact *)
    List.iter close_quiet sibling_fds;
    (* the parent's interrupt handlers make no sense in a worker; restore
       the default fatal behaviour so a terminal Ctrl-C kills us too *)
    (try Sys.set_signal Sys.sigint Sys.Signal_default with _ -> ());
    (try Sys.set_signal Sys.sigterm Sys.Signal_default with _ -> ());
    child_main task ~import_r:(Option.map fst import) w
  | pid ->
    Unix.close w;
    (match import with
    | Some (ir, iw) ->
      close_quiet ir;
      Unix.set_nonblock iw
    | None -> ());
    Unix.set_nonblock r;
    let now = Colib_clock.Mclock.now () in
    {
      task;
      pid;
      fd = r;
      import_w = Option.map snd import;
      dec = Frame.decoder ();
      started = now;
      kill_at = now +. task.watchdog;
      eof = false;
    }

(* release every parent-side fd of a consumed worker *)
let consume_fds w =
  close_quiet w.fd;
  match w.import_w with Some fd -> close_quiet fd | None -> ()

(* Read whatever the worker has written. The reply stream may interleave any
   number of [CSH1] clause-share frames before the single final reply frame;
   each completed share frame is handed to [on_share] and consumed
   immediately (the surplus-preserving [Frame.reset] keeps the head of the
   next frame), so [poll] below only ever sees the final reply or an
   error. *)
let drain ~on_share w =
  let buf = Bytes.create 65536 in
  let handle () =
    let rec go () =
      match Frame.state w.dec with
      | Frame.Got p when Frame.is_share p ->
        (match Frame.decode_share p with
        | Some cls -> on_share w cls
        | None -> ());
        Frame.reset w.dec;
        go ()
      | _ -> ()
    in
    go ()
  in
  let rec go () =
    match Unix.read w.fd buf 0 (Bytes.length buf) with
    | 0 ->
      w.eof <- true;
      handle ()
    | n -> (
      Frame.feed w.dec buf n;
      handle ();
      match Frame.state w.dec with Frame.Awaiting -> go () | _ -> ())
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      handle ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

(* decide a worker's fate from its decoder + exit status; [None] = still
   running. Consumes the process (kill/reap/close) when decided. *)
let poll (w : 'a running) : 'a completion option =
  match Frame.state w.dec with
  | Frame.Got payload ->
    kill_quiet w.pid;
    ignore (reap w.pid : Unix.process_status);
    consume_fds w;
    Some
      (match (Marshal.from_string payload 0 : 'a reply) with
      | Value v -> C_value v
      | Oom_reply -> C_oom
      | Exn_reply m -> C_exn m
      | exception e -> C_garbled ("unmarshal: " ^ Printexc.to_string e))
  | Frame.Failed e ->
    kill_quiet w.pid;
    ignore (reap w.pid : Unix.process_status);
    consume_fds w;
    Some (C_garbled (Frame.error_to_string e))
  | Frame.Awaiting ->
    if not w.eof then None
    else begin
      let st = reap w.pid in
      consume_fds w;
      Some
        (match st with
        | Unix.WSIGNALED s -> C_crashed s
        | Unix.WEXITED _ | Unix.WSTOPPED _ ->
          if Frame.bytes_received w.dec = 0 then
            C_garbled "worker exited without a reply frame"
          else C_garbled "reply frame truncated at worker exit")
    end

(* encoded share frames stay comfortably under PIPE_BUF (4096), so a single
   nonblocking [write] is all-or-nothing — never a torn frame *)
let relay_batch = 16

(* The supervision loop. [next] hands out tasks (or says how long until one
   becomes ready — retry backoff); [on_done] classifies each completion and
   may stop the whole pool (first-certified-wins). Single-threaded,
   select-driven; EINTR (a signal arrived) just re-enters the loop so the
   caller's [should_stop] flag is honoured promptly.

   Clause relay: share frames a worker writes before its final reply are
   broadcast to every other live worker that has an import pipe. The relay
   is best-effort and bounded — duplicate clauses (by sorted literal set)
   are dropped, frames are written with one atomic nonblocking write and
   dropped on EAGAIN, and a worker spawned later simply misses earlier
   traffic. Soundness never depends on delivery: every receiver re-derives
   each candidate through its own RUP gate. *)
let run_pool ~jobs ~should_stop ~next ~on_done () =
  Frame.ignore_sigpipe ();
  let running : 'a running list ref = ref [] in
  let stop_all = ref false in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  let fresh_clause c =
    let key = String.concat "," (List.map string_of_int (List.sort compare c)) in
    if Hashtbl.mem seen key then false
    else begin
      if Hashtbl.length seen >= 65536 then Hashtbl.reset seen;
      Hashtbl.add seen key ();
      true
    end
  in
  let send_batch fd batch =
    let s = Frame.encode (Frame.encode_share batch) in
    let b = Bytes.of_string s in
    match Unix.write fd b 0 (Bytes.length b) with
    | _ -> ()
    | exception Unix.Unix_error _ -> ()  (* full or dead channel: drop *)
  in
  let on_share sender clauses =
    let fresh =
      List.filter
        (fun c ->
          let n = List.length c in
          n > 0 && n <= 8 && fresh_clause c)
        clauses
    in
    if fresh <> [] then begin
      let rec batches acc cur n = function
        | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
        | c :: rest ->
          if n >= relay_batch then batches (List.rev cur :: acc) [ c ] 1 rest
          else batches acc (c :: cur) (n + 1) rest
      in
      let bs = batches [] [] 0 fresh in
      List.iter
        (fun peer ->
          if peer.pid <> sender.pid then
            match peer.import_w with
            | Some fd -> List.iter (send_batch fd) bs
            | None -> ())
        !running
    end
  in
  let finish w comp =
    running := List.filter (fun x -> x.pid <> w.pid) !running;
    let wall = Colib_clock.Mclock.now () -. w.started in
    match on_done w.task comp ~wall with
    | `Continue -> ()
    | `Stop_all -> stop_all := true
  in
  let cancel_all () =
    let ws = !running in
    running := [];
    List.iter (fun w -> kill_quiet w.pid) ws;
    List.iter
      (fun w ->
        ignore (reap w.pid : Unix.process_status);
        consume_fds w;
        let wall = Colib_clock.Mclock.now () -. w.started in
        ignore (on_done w.task C_cancelled ~wall))
      ws
  in
  let rec loop () =
    if should_stop () || !stop_all then cancel_all ()
    else begin
      let idle = ref None in
      while !idle = None && List.length !running < jobs do
        match next ~now:(Colib_clock.Mclock.now ()) with
        | `Task t ->
          let sibling_fds =
            List.concat_map
              (fun w -> w.fd :: Option.to_list w.import_w)
              !running
          in
          running := spawn ~sibling_fds t :: !running
        | (`Wait _ | `Done) as x -> idle := Some x
      done;
      if !running = [] then begin
        match !idle with
        | Some (`Wait dt) ->
          Unix.sleepf (Float.max 0.01 (Float.min dt 0.25));
          loop ()
        | Some `Done | None -> ()
      end
      else begin
        let now = Colib_clock.Mclock.now () in
        let next_kill =
          List.fold_left (fun a w -> Float.min a w.kill_at) infinity !running
        in
        let timeout = Float.max 0.0 (Float.min 0.25 (next_kill -. now)) in
        let fds = List.map (fun w -> w.fd) !running in
        let readable, _, _ =
          try Unix.select fds [] [] timeout
          with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
        in
        List.iter
          (fun w ->
            if List.mem w.fd readable then begin
              drain ~on_share w;
              match poll w with Some c -> finish w c | None -> ()
            end)
          !running;
        let now = Colib_clock.Mclock.now () in
        List.iter
          (fun w ->
            if w.kill_at <= now then begin
              kill_quiet w.pid;
              ignore (reap w.pid : Unix.process_status);
              consume_fds w;
              finish w C_timed_out
            end)
          !running;
        loop ()
      end
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Public taxonomy *)

type strategy =
  | Engine_strategy of Types.engine
  | Dsatur_strategy

let strategy_name = function
  | Engine_strategy e -> Types.engine_name e
  | Dsatur_strategy -> "DSATUR B&B"

let strategy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "pbs2" | "pbsii" | "pbs-ii" -> Ok (Engine_strategy Types.Pbs2)
  | "pbs" | "pbs1" -> Ok (Engine_strategy Types.Pbs1)
  | "galena" -> Ok (Engine_strategy Types.Galena)
  | "pueblo" -> Ok (Engine_strategy Types.Pueblo)
  | "cplex" | "bnb" -> Ok (Engine_strategy Types.Cplex)
  | "dsatur" -> Ok Dsatur_strategy
  | s ->
    Error
      (Printf.sprintf
         "unknown portfolio config %S (expected an engine name or dsatur)" s)

let strategies_of_string s =
  List.fold_right
    (fun tok acc ->
      match (strategy_of_string tok, acc) with
      | Ok x, Ok xs -> Ok (x :: xs)
      | (Error _ as e), _ -> e
      | _, (Error _ as e) -> e)
    (String.split_on_char ',' s)
    (Ok [])

type answer = {
  a_outcome : Flow.outcome;
  a_coloring : int array option;
  a_time : float;
  a_proof : Flow.proof_bundle option;
}

type worker_outcome =
  | Done of answer
  | Rejected of string
  | Crashed of int
  | Timed_out
  | Oom
  | Garbled of string
  | Failed of string
  | Cancelled

let signal_name s =
  if s = Sys.sigsegv then "SIGSEGV"
  else if s = Sys.sigkill then "SIGKILL"
  else if s = Sys.sigterm then "SIGTERM"
  else if s = Sys.sigint then "SIGINT"
  else if s = Sys.sigabrt then "SIGABRT"
  else if s = Sys.sigbus then "SIGBUS"
  else if s = Sys.sigill then "SIGILL"
  else if s = Sys.sigfpe then "SIGFPE"
  else if s = Sys.sigpipe then "SIGPIPE"
  else Printf.sprintf "signal %d" s

let outcome_to_string = function
  | Done a -> (
    match a.a_outcome with
    | Flow.Optimal c -> Printf.sprintf "proved optimal %d" c
    | Flow.Best c -> Printf.sprintf "found %d colors (unproven)" c
    | Flow.No_coloring -> "proved infeasible"
    | Flow.Timed_out -> "completed with no contribution")
  | Rejected m -> "claim rejected: " ^ m
  | Crashed s -> "crashed: " ^ signal_name s
  | Timed_out -> "watchdog timeout"
  | Oom -> "out of memory"
  | Garbled m -> "garbled reply: " ^ m
  | Failed m -> "worker exception: " ^ m
  | Cancelled -> "cancelled"

type attempt = {
  strategy : strategy;
  seed : int;
  round : int;
  outcome : worker_outcome;
  wall_time : float;
}

type result = {
  outcome : Flow.outcome;
  coloring : int array option;
  winner : string option;
  attempts : attempt list;
  total_time : float;
  interrupted : bool;
  certificate : (unit, Certify.failure) Stdlib.result option;
}

(* one splitmix64 stream per run; spawn [index] takes the (index+1)-th
   draw, so seeds are reproducible regardless of scheduling order *)
let worker_seed ~run_seed ~index =
  let t = Prng.create run_seed in
  let s = ref 0L in
  for _ = 0 to index do
    s := Prng.next_int64 t
  done;
  Int64.to_int (Int64.logand !s 0x3FFFFFFFFFFFFFFFL)

(* ------------------------------------------------------------------ *)
(* The race *)

let attempt_answer g ~k ~sbp ~instance_dependent ~timeout ?checkpoint
    ?checkpoint_label ?share = function
  | Engine_strategy e ->
    let cfg =
      Flow.config ~engine:e ~sbp ~instance_dependent ~timeout ~fallback:[]
        ~proof:true ?checkpoint ?checkpoint_label ?share ~k ()
    in
    let r = Flow.run g cfg in
    {
      a_outcome = r.Flow.outcome;
      a_coloring = r.Flow.coloring;
      a_time = r.Flow.solve_time;
      a_proof = r.Flow.proof;
    }
  | Dsatur_strategy -> (
    let t0 = Colib_clock.Mclock.now () in
    let out = Exact_dsatur.solve ~deadline:(t0 +. timeout) g in
    let dt = Colib_clock.Mclock.now () -. t0 in
    match out with
    | Exact_dsatur.Exact (chi, col) ->
      if chi <= k then
        { a_outcome = Flow.Optimal chi; a_coloring = Some col; a_time = dt;
          a_proof = None }
      else
        { a_outcome = Flow.No_coloring; a_coloring = None; a_time = dt;
          a_proof = None }
    | Exact_dsatur.Bounds (_, hi, col, _) ->
      if hi <= k then
        { a_outcome = Flow.Best hi; a_coloring = Some col; a_time = dt;
          a_proof = None }
      else
        { a_outcome = Flow.Timed_out; a_coloring = None; a_time = dt;
          a_proof = None })

type queue_item = {
  spec_index : int;
  round : int;
  ready_at : float;
  warm : bool;  (* resume this spec's snapshot instead of starting cold *)
}

let solve ?jobs ?(retries = 1) ?(backoff = 0.1) ?(backoff_cap = 2.0)
    ?(grace = 2.0) ?mem_limit_mb ?(seed = 0) ?(sbp = Sbp.No_sbp)
    ?(instance_dependent = true) ?(timeout = 10.0) ?(share_clauses = true)
    ?(chaos = Chaos.process_scripted []) ?(should_stop = fun () -> false)
    ?checkpoint ?(checkpoint_label = "portfolio") ?journal g ~k specs =
  let specs_a = Array.of_list specs in
  let nspecs = Array.length specs_a in
  if nspecs = 0 then invalid_arg "Portfolio.solve: empty portfolio";
  let jobs = match jobs with Some j -> max 1 j | None -> nspecs in
  let t0 = Colib_clock.Mclock.now () in
  (* first-round workers resume only if the caller asked for it (a restarted
     run picking up its own snapshots); warm retries always resume *)
  let initial_warm =
    match checkpoint with
    | Some ck -> ck.Checkpoint.resume
    | None -> false
  in
  let pending =
    ref
      (List.init nspecs (fun i ->
           { spec_index = i; round = 0; ready_at = 0.0; warm = initial_warm }))
  in
  let spawned = ref 0 in
  let meta : (int, int * int) Hashtbl.t = Hashtbl.create 16 in
  let attempts = ref [] in
  (* best parent-certified coloring seen so far *)
  let best = ref None in
  let winner = ref None in
  let interrupted = ref false in
  let should_stop () =
    let s = should_stop () in
    if s then interrupted := true;
    s
  in
  (* Replay an engine worker's settling proof against the parent's own
     deterministically rebuilt formula. The worker's copy of the formula is
     never trusted: a compromised worker could ship a weakened formula whose
     refutation proves nothing about the instance. *)
  let proof_formula =
    lazy (Flow.encoded_formula g (Flow.config ~sbp ~instance_dependent ~k ()))
  in
  let replay_engine_claim (a : answer) expected =
    match a.a_proof with
    | None -> Error "engine claim arrived without a proof trace"
    | Some b ->
      if b.Flow.proof_claim <> expected then
        Error "proof claim does not match the reported outcome"
      else (
        match
          Rup.check_claim (Lazy.force proof_formula) expected
            (Proof.steps b.Flow.proof_trace)
        with
        | Ok _ -> Ok ()
        | Error f -> Error ("proof replay failed: " ^ Rup.failure_to_string f))
  in
  let next ~now =
    if !winner <> None then `Done
    else begin
      let ready, waiting =
        List.partition (fun it -> it.ready_at <= now) !pending
      in
      match ready with
      | [] ->
        if waiting = [] then `Done
        else
          let soonest =
            List.fold_left (fun a it -> Float.min a it.ready_at) infinity
              waiting
          in
          `Wait (Float.max 0.01 (soonest -. now))
      | it :: rest ->
        pending := rest @ waiting;
        let idx = !spawned in
        incr spawned;
        Hashtbl.replace meta idx (it.spec_index, it.round);
        let strategy = specs_a.(it.spec_index) in
        let worker_ck =
          Option.map
            (fun ck -> { ck with Checkpoint.resume = it.warm })
            checkpoint
        in
        `Task
          {
            key = idx;
            thunk =
              (fun ~share ->
                attempt_answer g ~k ~sbp ~instance_dependent ~timeout
                  ?checkpoint:worker_ck ~checkpoint_label ?share strategy);
            watchdog = timeout +. grace;
            fault = Chaos.process_fault_for chaos idx;
            seed = worker_seed ~run_seed:seed ~index:idx;
            mem_limit_mb;
            (* only engine workers speak the exchange; DSATUR searches the
               graph, not the formula *)
            wants_share =
              (share_clauses
              && match strategy with
                 | Engine_strategy _ -> true
                 | Dsatur_strategy -> false);
          }
    end
  in
  let on_done task comp ~wall =
    let spec_index, round =
      match Hashtbl.find_opt meta task.key with Some m -> m | None -> (0, 0)
    in
    let strategy = specs_a.(spec_index) in
    let record outcome =
      attempts :=
        { strategy; seed = task.seed; round; outcome; wall_time = wall }
        :: !attempts
    in
    (* a transient failure gets another chance on a rotated configuration —
       a persistently-crashing engine must not monopolize its slot *)
    let retry () =
      if round < retries && !winner = None then begin
        let delay =
          Float.min backoff_cap (backoff *. (2.0 ** float_of_int round))
        in
        pending :=
          !pending
          @ [
              {
                spec_index = (spec_index + 1) mod nspecs;
                round = round + 1;
                ready_at = Colib_clock.Mclock.now () +. delay;
                warm = false;
              };
            ]
      end
    in
    let journal_event fields =
      match journal with None -> () | Some j -> Journal.append j fields
    in
    (* Warm-resume policy: a crashed/OOM-killed/hung engine worker whose
       snapshot structurally reads back is requeued on the SAME strategy
       with resume on, instead of rotating cold — the dead worker's search
       effort is not thrown away. The parent checks structure only (it has
       no formula to validate the digest against); the worker's own resume
       path re-validates identity and silently degrades to a cold start if
       the snapshot lies. Corrupt snapshots are classified in the journal
       and fall back to the cold rotation. Either way the resumed claim is
       re-certified and its stitched proof replayed like any other. *)
    let retry_warm ~why =
      match (checkpoint, strategy) with
      | Some ck, Engine_strategy e when round < retries && !winner = None -> (
        let path =
          Checkpoint.snapshot_path ~dir:ck.Checkpoint.dir
            ~label:checkpoint_label ~engine:(Types.engine_name e) ~k
        in
        let jkey what =
          (* journal key per (strategy, round): a re-loaded journal shows
             the full resume/corruption history of the run *)
          [
            ("key", Printf.sprintf "%s.%s.r%d" what (Types.engine_name e) round);
            ("event", what);
            ("strategy", strategy_name strategy);
            ("round", string_of_int round);
            ("why", why);
          ]
        in
        match Checkpoint.read path with
        | Ok sn ->
          journal_event
            (jkey "resume"
            @ [
                ( "conflicts",
                  string_of_int sn.Checkpoint.sn_engine.Types.sv_conflicts );
              ]);
          let delay =
            Float.min backoff_cap (backoff *. (2.0 ** float_of_int round))
          in
          pending :=
            !pending
            @ [
                {
                  spec_index;
                  round = round + 1;
                  ready_at = Colib_clock.Mclock.now () +. delay;
                  warm = true;
                };
              ];
          true
        | Error Checkpoint.Missing -> false
        | Error err ->
          journal_event
            (jkey "snapshot-corrupt"
            @ [ ("reason", Checkpoint.read_error_to_string err) ]);
          false)
      | _ -> false
    in
    match comp with
    | C_value a -> (
      match (a.a_outcome, a.a_coloring) with
      | (Flow.Optimal c | Flow.Best c), Some col -> (
        let contradicted =
          match (a.a_outcome, !best) with
          | Flow.Optimal _, Some (_, c') -> c' < c
          | _ -> false
        in
        if contradicted then begin
          record
            (Rejected "optimality claim contradicts a better certified \
                       coloring");
          retry ();
          `Continue
        end
        else
          match Certify.coloring g ~k ~claimed:c col with
          | Ok () -> (
            (match !best with
            | Some (_, c') when c' <= c -> ()
            | _ -> best := Some (col, c));
            match a.a_outcome with
            | Flow.Optimal _ -> (
              (* the coloring certifies, but optimality is a universal claim:
                 engine workers must additionally hand over a RUP trace that
                 replays against the parent's formula. DSATUR claims keep the
                 coloring-certification path — graph-level search produces no
                 formula proof. *)
              let proved =
                match strategy with
                | Dsatur_strategy -> Ok ()
                | Engine_strategy _ ->
                  replay_engine_claim a (Proof.Optimal_claim c)
              in
              match proved with
              | Ok () ->
                record (Done a);
                winner := Some (strategy_name strategy, a);
                `Stop_all
              | Error m ->
                record (Rejected m);
                retry ();
                `Continue)
            | _ ->
              record (Done a);
              `Continue)
          | Error f ->
            record (Rejected (Certify.failure_to_string f));
            retry ();
            `Continue)
      | (Flow.Optimal _ | Flow.Best _), None ->
        record (Rejected "claimed a coloring it did not return");
        retry ();
        `Continue
      | Flow.No_coloring, _ ->
        if !best <> None then begin
          record
            (Rejected "infeasibility claim contradicts a certified coloring");
          retry ();
          `Continue
        end
        else begin
          let proved =
            match strategy with
            | Dsatur_strategy -> Ok ()
            | Engine_strategy _ -> replay_engine_claim a Proof.Unsat_claim
          in
          match proved with
          | Ok () ->
            record (Done a);
            winner := Some (strategy_name strategy, a);
            `Stop_all
          | Error m ->
            record (Rejected m);
            retry ();
            `Continue
        end
      | Flow.Timed_out, _ ->
        record (Done a);
        `Continue)
    | C_oom ->
      record Oom;
      if not (retry_warm ~why:"out of memory") then retry ();
      `Continue
    | C_exn m ->
      record (Failed m);
      retry ();
      `Continue
    | C_crashed s ->
      record (Crashed s);
      if not (retry_warm ~why:(signal_name s)) then retry ();
      `Continue
    | C_timed_out ->
      (* cold-retrying a deterministic budget would just burn the same wall
         clock again — but a warm resume continues where the watchdog shot
         the worker, so with checkpointing on the time was not wasted *)
      record Timed_out;
      ignore (retry_warm ~why:"watchdog timeout" : bool);
      `Continue
    | C_garbled m ->
      record (Garbled m);
      retry ();
      `Continue
    | C_cancelled ->
      record Cancelled;
      `Continue
  in
  run_pool ~jobs ~should_stop ~next ~on_done ();
  let outcome, coloring =
    match !winner with
    | Some (_, a) -> (
      match a.a_outcome with
      | Flow.No_coloring -> (Flow.No_coloring, None)
      | o -> (o, a.a_coloring))
    | None -> (
      match !best with
      | Some (col, c) -> (Flow.Best c, Some col)
      | None -> (Flow.Timed_out, None))
  in
  let certificate =
    match (coloring, outcome) with
    | Some col, (Flow.Optimal c | Flow.Best c) ->
      Some (Certify.coloring g ~k ~claimed:c col)
    | Some col, _ -> Some (Certify.coloring g ~k ~claimed:k col)
    | None, _ -> None
  in
  {
    outcome;
    coloring;
    winner = Option.map fst !winner;
    attempts = List.rev !attempts;
    total_time = Colib_clock.Mclock.now () -. t0;
    interrupted = !interrupted;
    certificate;
  }

(* ------------------------------------------------------------------ *)
(* Generic supervised fan-out *)

let map ?(jobs = 4) ?(watchdog = 600.0) ?mem_limit_mb
    ?(should_stop = fun () -> false) ?(on_result = fun _ _ -> ()) f items =
  let arr = Array.of_list items in
  let nitems = Array.length arr in
  let results = Array.make nitems (Error "not run") in
  let next_i = ref 0 in
  let next ~now:_ =
    if !next_i >= nitems then `Done
    else begin
      let i = !next_i in
      incr next_i;
      `Task
        {
          key = i;
          thunk = (fun ~share:_ -> f arr.(i));
          watchdog;
          fault = None;
          seed = 0;
          mem_limit_mb;
          wants_share = false;
        }
    end
  in
  let on_done task comp ~wall:_ =
    let r =
      match comp with
      | C_value v -> Ok v
      | C_oom -> Error "out of memory"
      | C_exn m -> Error ("worker exception: " ^ m)
      | C_crashed s -> Error ("killed by " ^ signal_name s)
      | C_timed_out -> Error "watchdog timeout"
      | C_garbled m -> Error ("garbled reply: " ^ m)
      | C_cancelled -> Error "cancelled"
    in
    results.(task.key) <- r;
    on_result task.key r;
    `Continue
  in
  run_pool ~jobs:(max 1 jobs) ~should_stop ~next ~on_done ();
  results
