(** Length-prefixed, versioned, checksummed frames for the worker pipe.

    A worker sends its reply as exactly one frame:

    {v
      +-------+---------+------------+-------------+----------+
      | magic | version | length     | checksum    | payload  |
      | CPF1  | 1 byte  | 4 bytes BE | 8 bytes BE  | length B |
      +-------+---------+------------+-------------+----------+
    v}

    The checksum is FNV-1a (64-bit) of the payload. The parent decodes
    incrementally from nonblocking reads; anything that violates the format —
    wrong magic, unknown version, an insane length, a checksum mismatch —
    surfaces as a typed error so the supervisor can classify the worker as
    garbled instead of crashing or trusting corrupt bytes. A worker that
    exits mid-frame leaves the decoder in [Awaiting], which the supervisor
    turns into a truncation error at EOF. *)

val protocol_version : int

type error =
  | Bad_magic
  | Bad_version of int
  | Bad_length of int
  | Bad_checksum
  | Bad_payload of string

val error_to_string : error -> string

val encode : string -> string
(** [encode payload] is the wire representation of one frame. *)

type state =
  | Awaiting          (** incomplete — feed more bytes (or report truncation
                          at EOF) *)
  | Got of string     (** one complete, checksum-verified payload *)
  | Failed of error   (** protocol violation; sticky *)

type decoder

val decoder : unit -> decoder

val feed : decoder -> Bytes.t -> int -> unit
(** [feed d buf n] appends the first [n] bytes of [buf]. No-op once the
    decoder has a frame or an error. *)

val state : decoder -> state

val bytes_received : decoder -> int
(** Total bytes fed so far — distinguishes "no reply at all" from "reply
    truncated" at EOF. *)

val reset : decoder -> unit
(** Advance to the next frame. After [Got p], exactly the completed frame's
    bytes are consumed: surplus bytes already fed (the head of the next
    frame in a multi-frame stream) are retained and re-parsed, so the state
    after [reset] may immediately be [Got] again. After [Failed] or while
    [Awaiting], everything is discarded — there is no trustworthy framing
    left to resynchronise against. *)

(** {1 Robust fd I/O}

    Every socket and pipe write in the serving stack goes through these
    helpers: short writes and EINTR are retried, a full buffer waits for
    writability under the caller's deadline, and a vanished peer
    (EPIPE/ECONNRESET) comes back as a typed [Closed] — never a SIGPIPE
    death or a silent partial frame. Deadlines are monotonic
    ({!Colib_clock.Mclock}) absolute instants; [infinity] (the default)
    disables them. *)

val ignore_sigpipe : unit -> unit
(** Ignore SIGPIPE process-wide, so half-closed-peer writes surface as
    [EPIPE] for the typed paths below. Idempotent; every server, client,
    and worker entry point calls this first. *)

type io_error =
  | Closed            (** EPIPE/ECONNRESET: the peer is gone *)
  | Io_timeout        (** the deadline passed before the write completed *)
  | Io_failed of string

val io_error_to_string : io_error -> string

val write_frame :
  ?deadline:float -> Unix.file_descr -> string -> (unit, io_error) result
(** [write_frame fd payload] frames [payload] and writes every byte,
    retrying short writes and EINTR, waiting (select) on EAGAIN. A peer
    that stops reading is abandoned at [deadline] with [Io_timeout], so a
    slow-loris reader cannot wedge the writer. A finite [deadline]
    switches [fd] to non-blocking mode and leaves it there (both helpers
    handle non-blocking fds, so later frame I/O on the fd still works). *)

type read_error =
  | Read_closed of int   (** EOF after this many bytes; 0 = no reply at all *)
  | Read_timeout
  | Read_frame of error  (** protocol violation: garbage, bad checksum, … *)
  | Read_failed of string

val read_error_to_string : read_error -> string

val read_frame :
  ?deadline:float -> Unix.file_descr -> (string, read_error) result
(** Read exactly one frame's payload from [fd] (blocking or non-blocking),
    under the same deadline discipline as {!write_frame}. *)

(** {1 Clause-share payloads}

    Short learned clauses exchanged between solver workers, layered inside
    the checksummed frames like the job messages below but encoded as plain
    text ([CSH1] tag, then semicolon-separated clauses of comma-separated
    raw literal ints). A share payload crosses a trust boundary — a forged
    peer frame must not be able to crash the receiver — so it is parsed
    with [int_of_string_opt], never [Marshal] on untrusted bytes. Decoded
    clauses are candidates only: the receiving engine's RUP admission gate
    ([Colib_solver.Engine.import_clause]) decides what enters its database. *)

val is_share : string -> bool
(** Does this frame payload carry clause-share traffic? Cheap tag test, so
    a reply-stream reader can dispatch share frames before attempting to
    decode the final job reply. *)

val encode_share : int list list -> string
(** Clauses as raw literal ints ([Colib_sat.Lit.to_index]). *)

val decode_share : string -> int list list option
(** [None] if the payload is not a share frame or any literal fails to
    parse. Structural validation only — range checks belong to the
    engine's admission gate. *)

(** {1 Job request/response messages}

    The coloring service's versioned wire format, layered inside the
    checksummed frames. Every payload opens with a 4-byte tag ([CRQ1] for
    requests, [CRS1] for responses) carrying the message-protocol version,
    so a frame that checksums correctly but carries the wrong message kind
    — or one from a future protocol generation — decodes to a typed error
    instead of an unmarshal crash. Job IDs are client-chosen strings and
    the idempotency key: resubmitting a finished job's ID re-delivers the
    journaled result instead of re-running the solve. *)

type job = {
  job_id : string;      (** idempotency key, chosen by the client *)
  dimacs : string;      (** the instance, as DIMACS [.col] text *)
  j_k : int option;     (** color limit; [None] = server-side heuristic *)
  deadline : float;     (** solve budget in seconds, enforced server-side *)
  strategies : string;  (** comma-separated portfolio, [""] = server default *)
  sbp : string;         (** SBP construction name, [""] = none *)
  instance_dependent : bool;
  j_seed : int;
}

(** {2 Incremental-session frames}

    One durable coloring session per [sid] (client-chosen string, the
    idempotency scope). Edits and queries carry a client-assigned
    monotonic sequence number; the daemon journals each frame before
    applying it and answers a duplicate (an at-least-once client retry)
    from its session state without re-applying — [sk_replayed] /
    [sa_replayed] report that. *)

type session_edit = {
  se_sid : string;
  se_seq : int;   (** client-monotonic; duplicates are idempotent *)
  se_op : string; (** [Colib_session.Session.edit] wire form:
                      ["v"], ["e U V"], ["d U V"] *)
}

type session_query = {
  sq_sid : string;
  sq_seq : int;
  sq_budget : float;  (** solve budget in seconds, enforced server-side *)
}

type request =
  | Submit of job
  | Ping    (** liveness probe; answered with [Pong] *)
  | Health  (** operational snapshot; answered with [Health_report] *)
  | Sess_open of {
      so_sid : string;
      so_vertices : int;  (** capacity: vertex slots *)
      so_colors : int;    (** capacity: palette bound *)
      so_edges : int;     (** capacity: distinct edge slots *)
      so_lease : float;   (** seconds of idleness before expiry; [0.] =
                              server default *)
    }  (** idempotent: reopening a live [sid] refreshes its lease *)
  | Sess_edit of session_edit
  | Sess_query of session_query
  | Sess_close of { sc_sid : string }  (** idempotent *)

type job_result = {
  r_job_id : string;
  r_outcome : string;
      (** ["optimal"], ["best"], ["unsat"], ["timeout"], or ["failed"] *)
  r_colors : int option;
  r_coloring : int array option;
  r_winner : string option;
  r_certified : bool;   (** the daemon re-certified the coloring itself *)
  r_detail : string;    (** failure reason / provenance note *)
  r_time : float;       (** seconds the solve consumed *)
  r_replayed : bool;    (** re-delivered from the journal, not recomputed *)
}

type health = {
  h_queued : int;          (** jobs waiting for a runner slot *)
  h_running : int;         (** jobs currently solving *)
  h_completed : int;       (** jobs finished since this daemon started *)
  h_uptime : float;        (** seconds since this daemon process started *)
  h_durability : string;
      (** ["ok"], ["degraded:disk-full"], or ["degraded:io-error"] *)
  h_restarts : int;
      (** journaled lifetime restarts of this daemon (journal generations) *)
  h_last_io_error : string;  (** most recent I/O failure, [""] if none *)
  h_pending_journal : int;
      (** journal records buffered in memory awaiting a successful flush *)
  h_pool_warm : int;       (** resident pool workers idling, ready for a job *)
  h_pool_busy : int;       (** pool workers currently solving *)
  h_pool_recycling : int;  (** pool slots being replaced (respawn pending) *)
  h_pool_restarts : int;
      (** workers respawned after a crash, hang, or watchdog kill *)
  h_pool_recycles : int;
      (** planned worker replacements (job-count or RSS bound reached) *)
  h_cache_hits : int;      (** submissions answered from the result cache *)
  h_cache_misses : int;    (** cacheable submissions that had to solve *)
  h_coalesced : int;
      (** duplicate in-flight submissions attached to an existing solve *)
  h_peers : string list;
      (** socket specs of the other daemons in this fleet ([serve --peers]),
          so a balancer can discover the topology from any one daemon *)
  h_sess_open : int;       (** incremental sessions currently open *)
  h_sess_evicted : int;    (** sessions LRU-shed since this daemon started *)
  h_sess_expired : int;    (** sessions whose lease lapsed *)
  h_sess_replayed : int;   (** duplicate session frames answered idempotently *)
  h_sess_recovered : int;  (** sessions rebuilt from the journal at startup *)
}

type session_answer = {
  sa_sid : string;
  sa_seq : int;
  sa_chi : int;               (** chromatic number of the session's graph *)
  sa_coloring : int array;    (** a certified χ-coloring *)
  sa_certified : bool;        (** daemon-side [Certify] accepted it *)
  sa_incremental : bool;      (** served by a warm engine, not a cold start *)
  sa_time : float;            (** solve seconds *)
  sa_replayed : bool;         (** duplicate [sq_seq]: re-delivered, not re-run *)
}

type response =
  | Accepted of string  (** job admitted (or already in flight); result follows *)
  | Overloaded of { queued : int; capacity : int }
      (** admission queue full — the job was shed, try again later *)
  | Rejected of { rj_job_id : string; reason : string }
      (** permanent: malformed instance or request; retrying cannot help *)
  | Result of job_result
  | Pong
  | Unavailable of { u_reason : string }
      (** durability degraded (disk full / I/O errors): the daemon cannot
          journal an acceptance, so the job was shed before admission.
          Transient — retry once space returns. *)
  | Health_report of health
  | Sess_ok of { sk_sid : string; sk_seq : int; sk_replayed : bool }
      (** edit/open/close applied; [sk_replayed] = duplicate frame *)
  | Sess_answer of session_answer
  | Sess_expired of { sx_sid : string }
      (** the session's lease lapsed and its state was reaped. Permanent
          for this [sid]: the client must open a fresh session and replay
          its own edit history. *)
  | Sess_evicted of { sv_sid : string }
      (** the session was LRU-shed to bound daemon memory. Permanent for
          this [sid], same recovery as [Sess_expired]. *)

val encode_request : request -> string
(** The frame {e payload} (pass to {!write_frame}), not raw wire bytes. *)

val decode_request : string -> (request, error) result
val encode_response : response -> string
val decode_response : string -> (response, error) result
