(** Length-prefixed, versioned, checksummed frames for the worker pipe.

    A worker sends its reply as exactly one frame:

    {v
      +-------+---------+------------+-------------+----------+
      | magic | version | length     | checksum    | payload  |
      | CPF1  | 1 byte  | 4 bytes BE | 8 bytes BE  | length B |
      +-------+---------+------------+-------------+----------+
    v}

    The checksum is FNV-1a (64-bit) of the payload. The parent decodes
    incrementally from nonblocking reads; anything that violates the format —
    wrong magic, unknown version, an insane length, a checksum mismatch —
    surfaces as a typed error so the supervisor can classify the worker as
    garbled instead of crashing or trusting corrupt bytes. A worker that
    exits mid-frame leaves the decoder in [Awaiting], which the supervisor
    turns into a truncation error at EOF. *)

val protocol_version : int

type error =
  | Bad_magic
  | Bad_version of int
  | Bad_length of int
  | Bad_checksum
  | Bad_payload of string

val error_to_string : error -> string

val encode : string -> string
(** [encode payload] is the wire representation of one frame. *)

type state =
  | Awaiting          (** incomplete — feed more bytes (or report truncation
                          at EOF) *)
  | Got of string     (** one complete, checksum-verified payload *)
  | Failed of error   (** protocol violation; sticky *)

type decoder

val decoder : unit -> decoder

val feed : decoder -> Bytes.t -> int -> unit
(** [feed d buf n] appends the first [n] bytes of [buf]. No-op once the
    decoder has a frame or an error. *)

val state : decoder -> state

val bytes_received : decoder -> int
(** Total bytes fed so far — distinguishes "no reply at all" from "reply
    truncated" at EOF. *)
