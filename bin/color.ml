(* Command-line exact graph coloring over DIMACS .col files.

   Subcommands:
     solve  — run the full symmetry-breaking flow and report the optimum
              (optionally racing a --portfolio of configurations, each in
              its own supervised worker process)
     bounds — clique / DSATUR bounds only (no search)
     emit   — write the 0-1 ILP reduction (OPB format) to stdout

   Exit codes: 0 success, 1 usage error, 2 malformed input file,
   3 certification failure under --verify, 130 interrupted by SIGINT,
   143 terminated by SIGTERM. *)

open Cmdliner

module Graph = Colib_graph.Graph
module Dimacs_col = Colib_graph.Dimacs_col
module Clique = Colib_graph.Clique
module Dsatur = Colib_graph.Dsatur
module Encoding = Colib_encode.Encoding
module Sbp = Colib_encode.Sbp
module Output = Colib_sat.Output
module Types = Colib_solver.Types
module Checkpoint = Colib_solver.Checkpoint
module Certify = Colib_check.Certify
module Chaos = Colib_check.Chaos
module Rup = Colib_check.Rup
module Proof = Colib_sat.Proof
module Flow = Colib_core.Flow
module Exact = Colib_core.Exact_coloring
module Portfolio = Colib_portfolio.Portfolio
module Frame = Colib_portfolio.Frame
module Server = Colib_server.Server
module Client = Colib_server.Client
module Supervise = Colib_server.Supervise
module Session = Colib_session.Session
module Conquer = Colib_distrib.Conquer

(* ---------- signal handling ----------

   SIGINT/SIGTERM request a *cooperative* stop: the handler only records
   the signal, the in-flight search notices it through its cancel hook (or
   the portfolio supervisor through [should_stop], which also reaps every
   worker), partial results are still printed, and the process then exits
   with the conventional code (130 for SIGINT, 143 for SIGTERM). *)

let interrupted : int option ref = ref None

let install_signal_handlers () =
  let record s = interrupted := Some s in
  Sys.set_signal Sys.sigint (Sys.Signal_handle record);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle record);
  (* process-wide: a peer that hangs up mid-write must surface as a typed
     EPIPE on the affected fd, never kill the process *)
  Frame.ignore_sigpipe ()

let interrupt_requested () = !interrupted <> None

let exit_interrupted () =
  match !interrupted with
  | None -> ()
  | Some s ->
    let name, code = if s = Sys.sigterm then ("SIGTERM", 143) else ("SIGINT", 130) in
    Printf.eprintf "color: interrupted by %s\n%!" name;
    exit code

(* chain the cooperative-stop hook onto whatever cancel a budget has *)
let with_interrupt_cancel (b : Types.budget) =
  let prior = b.Types.cancel in
  {
    b with
    Types.cancel =
      Some
        (fun () ->
          interrupt_requested ()
          || (match prior with Some c -> c () | None -> false));
  }

let file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"DIMACS .col graph file.")

let engine_of_string s =
  match String.lowercase_ascii s with
  | "pbs2" | "pbsii" | "pbs-ii" -> Ok Types.Pbs2
  | "pbs" | "pbs1" -> Ok Types.Pbs1
  | "galena" -> Ok Types.Galena
  | "pueblo" -> Ok Types.Pueblo
  | "cplex" | "bnb" -> Ok Types.Cplex
  | _ -> Error (`Msg (Printf.sprintf "unknown engine %S" s))

let engine_conv =
  Arg.conv
    (engine_of_string, fun ppf e -> Format.fprintf ppf "%s" (Types.engine_name e))

let engine_arg =
  Arg.(
    value
    & opt engine_conv Types.Pbs2
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Solver engine: pbs2, galena, pueblo, cplex (generic \
           branch-and-bound), pbs.")

let sbp_conv =
  let parse s =
    try Ok (Sbp.of_name s) with Invalid_argument m -> Error (`Msg m)
  in
  Arg.conv (parse, fun ppf c -> Format.fprintf ppf "%s" (Sbp.name c))

let sbp_arg =
  Arg.(
    value
    & opt sbp_conv Sbp.No_sbp
    & info [ "sbp" ] ~docv:"SBP"
        ~doc:
          "Instance-independent SBP construction: none, nu, ca, li, sc, \
           nu+sc.")

let no_isd_arg =
  Arg.(
    value & flag
    & info [ "no-instance-dependent" ]
        ~doc:"Disable detection and breaking of instance-dependent symmetries.")

let timeout_arg =
  Arg.(
    value
    & opt float 60.0
    & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Solving budget in seconds.")

let k_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "k" ] ~docv:"K"
        ~doc:
          "Color limit for the encoding (default: the heuristic upper \
           bound).")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the coloring.")

let verify_arg =
  Arg.(
    value & flag
    & info [ "verify" ]
        ~doc:
          "Independently certify the result (coloring against the graph, \
           model against the formula). Exit 3 if certification fails.")

let fallback_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "none" -> Ok []
    | s ->
      let parse_one tok =
        match String.lowercase_ascii tok with
        | "dsatur" -> Ok Flow.Fallback_dsatur
        | "heuristic" -> Ok Flow.Fallback_heuristic
        | tok -> (
          match engine_of_string tok with
          | Ok e -> Ok (Flow.Fallback_engine e)
          | Error _ ->
            Error
              (`Msg
                 (Printf.sprintf
                    "unknown fallback %S (expected dsatur, heuristic, or an \
                     engine name)"
                    tok)))
      in
      List.fold_right
        (fun tok acc ->
          match (parse_one tok, acc) with
          | Ok f, Ok fs -> Ok (f :: fs)
          | (Error _ as e), _ -> e
          | _, (Error _ as e) -> e)
        (String.split_on_char ',' s)
        (Ok [])
  in
  let print ppf fs =
    Format.fprintf ppf "%s"
      (match fs with
      | [] -> "none"
      | fs ->
        String.concat ","
          (List.map
             (function
               | Flow.Fallback_dsatur -> "dsatur"
               | Flow.Fallback_heuristic -> "heuristic"
               | Flow.Fallback_engine e -> Types.engine_name e)
             fs))
  in
  Arg.conv (parse, print)

let fallback_arg =
  Arg.(
    value
    & opt fallback_conv Flow.default_fallback
    & info [ "fallback" ] ~docv:"LADDER"
        ~doc:
          "Comma-separated degradation ladder tried when the primary engine \
           cannot finish: engine names, $(b,dsatur), $(b,heuristic), or \
           $(b,none).")

let portfolio_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "portfolio" ] ~docv:"SPECS"
        ~doc:
          "Race a comma-separated portfolio of configurations, each in its \
           own supervised worker process — engine names and/or \
           $(b,dsatur), e.g. $(b,pbs2,galena,dsatur). The first answer \
           whose proof certifies in the parent wins; crashed, hung, or \
           garbled workers are classified and retried.")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Maximum concurrent worker processes under $(b,--portfolio) \
           (default: one per configuration).")

let seed_arg =
  Arg.(
    value
    & opt int 0
    & info [ "seed" ] ~docv:"N"
        ~doc:
          "Run seed; each worker's deterministic PRNG seed is derived from \
           it and the worker's spawn index.")

let proof_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "proof" ] ~docv:"FILE"
        ~doc:
          "Log a RUP proof trace while solving and, when an engine stage \
           settles the instance (optimal or infeasible), write a \
           self-contained proof file — formula, claim, and trace — to \
           $(docv). Replay it with $(b,color check-proof).")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print the primary engine's full statistics counters (conflicts, \
           decisions, propagations, learned, restarts, removed, and the \
           inprocessing counters subsumed, eliminated, probed, \
           substituted).")

let no_inprocessing_arg =
  Arg.(
    value & flag
    & info [ "no-inprocessing" ]
        ~doc:
          "Disable the inprocessing ladder (subsumption and \
           self-subsumption, bounded variable elimination, failed-literal \
           probing, equivalent-literal substitution) that otherwise runs \
           before the initial search and at restart boundaries.")

let mem_limit_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "mem-limit" ] ~docv:"MB"
        ~doc:
          "Address-space cap per worker process (setrlimit(RLIMIT_AS)), in \
           MiB. A worker breaching it fails alone and is classified as OOM.")

let checkpoint_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"DIR"
        ~doc:
          "Snapshot the search state into $(docv) periodically (atomic, \
           checksummed writes), so a killed solve can be picked up with \
           $(b,--resume) instead of starting over. Snapshots are per \
           (instance, engine, K).")

let checkpoint_interval_arg =
  Arg.(
    value
    & opt float 5.0
    & info [ "checkpoint-interval" ] ~docv:"SECONDS"
        ~doc:"Seconds between snapshot writes under $(b,--checkpoint).")

let resume_arg =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Resume from the snapshots in the $(b,--checkpoint) directory. A \
           snapshot that is corrupt, truncated, from another format \
           version, or from a different instance/encoding is rejected and \
           the solve starts cold — resuming never trades correctness for \
           speed, and resumed proofs replay as one derivation.")

(* --checkpoint DIR [--checkpoint-interval S] [--resume] -> config *)
let checkpoint_config ~dir ~interval ~resume =
  match dir with
  | None ->
    if resume then begin
      Printf.eprintf "color: --resume requires --checkpoint DIR\n";
      exit 1
    end;
    None
  | Some dir -> Some (Checkpoint.config ~interval ~resume ~dir ())

let print_resume_log lines =
  List.iter (fun l -> Printf.printf "checkpoint: %s\n" l) lines

let load file =
  match Dimacs_col.parse_result (In_channel.with_open_text file In_channel.input_all) with
  | Ok g -> g
  | Error e ->
    Printf.eprintf "color: %s:%d: %s\n" file e.Dimacs_col.line
      e.Dimacs_col.message;
    exit 2
  | exception Sys_error msg ->
    Printf.eprintf "color: %s\n" msg;
    exit 2

let print_provenance attempts =
  List.iter
    (fun a ->
      let detail =
        String.concat ", "
          (List.filter_map
             (fun x -> x)
             [
               (match a.Flow.found with
               | Some c -> Some (Printf.sprintf "found %d colors" c)
               | None -> None);
               (if a.Flow.proved then Some "proved" else None);
               (if a.Flow.rejected then Some "claim rejected" else None);
               (match a.Flow.stop with
               | Some r -> Some ("stopped: " ^ Types.stop_reason_name r)
               | None -> None);
             ])
      in
      Printf.printf "  %-10s %6.2fs  %s\n"
        (Flow.stage_name a.Flow.stage)
        a.Flow.stage_time
        (if detail = "" then "no contribution" else detail))
    attempts

(* race a portfolio of process-isolated configurations; returns the exit
   path directly because its reporting differs from the in-process flow *)
let run_portfolio g ~specs ~jobs ~seed ~mem_limit_mb ~sbp ~instance_dependent
    ~timeout ~k ~verify ~verbose ~checkpoint ~checkpoint_label =
  let strategies =
    match Portfolio.strategies_of_string specs with
    | Ok l -> l
    | Error m ->
      Printf.eprintf "color: --portfolio: %s\n" m;
      exit 1
  in
  Printf.printf "portfolio: racing %d configurations (%s)\n"
    (List.length strategies)
    (String.concat ", " (List.map Portfolio.strategy_name strategies));
  let r =
    Portfolio.solve ?jobs ?mem_limit_mb ~seed ~sbp ~instance_dependent
      ~timeout ~should_stop:interrupt_requested ?checkpoint ~checkpoint_label
      g ~k strategies
  in
  Printf.printf "attempts:\n";
  List.iter
    (fun (a : Portfolio.attempt) ->
      Printf.printf "  %-10s seed=%-19d round %d %7.2fs  %s\n"
        (Portfolio.strategy_name a.Portfolio.strategy)
        a.Portfolio.seed a.Portfolio.round a.Portfolio.wall_time
        (Portfolio.outcome_to_string a.Portfolio.outcome))
    r.Portfolio.attempts;
  (match r.Portfolio.winner with
  | Some w -> Printf.printf "winner: %s\n" w
  | None -> Printf.printf "winner: none\n");
  (match r.Portfolio.outcome with
  | Flow.Optimal c -> Printf.printf "chromatic number (within K=%d): %d\n" k c
  | Flow.Best c ->
    Printf.printf "best coloring found: %d colors (optimality unproven)\n" c
  | Flow.No_coloring -> Printf.printf "not %d-colorable\n" k
  | Flow.Timed_out -> Printf.printf "timeout with no coloring found\n");
  Printf.printf "solve time: %.2fs\n" r.Portfolio.total_time;
  if verbose then
    (match r.Portfolio.coloring with
    | Some coloring ->
      Array.iteri
        (fun v c -> Printf.printf "  vertex %d -> color %d\n" (v + 1) c)
        coloring
    | None -> ());
  if verify then (
    match r.Portfolio.certificate with
    | Some (Ok ()) -> Printf.printf "certificate: coloring verified\n"
    | Some (Error f) ->
      Printf.printf "certificate: FAILED (%s)\n" (Certify.failure_to_string f);
      exit 3
    | None -> Printf.printf "certificate: no coloring to verify\n");
  exit_interrupted ()

(* --cube: distributed-style cube-and-conquer instead of the sequential
   flow. Splits the instance into cubes, races them across a supervised
   worker pool with lease-based scheduling, and claims nothing a stitched
   tree proof (or a parent-certified coloring) does not back. *)
let run_cube g ~k ~jobs ~timeout ~engine ~checkpoint ~verbose =
  let jobs = match jobs with Some j -> max 1 j | None -> 2 in
  match k with
  | Some k -> (
    Printf.printf "cube-and-conquer: deciding %d-colorability, %d workers\n"
      k jobs;
    let d =
      Conquer.decide ~jobs ~engine ?checkpoint ~timeout
        ~should_stop:interrupt_requested g ~k ()
    in
    Printf.printf
      "cubes: %d solved, %d releases, %d expiries, %d duplicates, %d \
       splits, %d replay failures\n"
      d.Conquer.cubes_solved d.Conquer.releases d.Conquer.expiries
      d.Conquer.dup_results d.Conquer.splits d.Conquer.replay_failures;
    match d.Conquer.verdict with
    | Conquer.Colorable col ->
      Printf.printf "%d-colorable: certified coloring with %d colors \
                     (%.2fs)\n"
        k (Graph.count_colors col) d.Conquer.wall;
      if verbose then
        Array.iteri
          (fun v c -> Printf.printf "  vertex %d -> color %d\n" (v + 1) c)
          col;
      exit_interrupted ()
    | Conquer.Not_colorable ->
      Printf.printf
        "not %d-colorable: tree proof over %d cubes replayed (%.2fs)\n" k
        (List.length d.Conquer.proofs)
        d.Conquer.wall;
      exit_interrupted ()
    | Conquer.Undecided m ->
      Printf.printf "undecided: %s (%.2fs)\n" m d.Conquer.wall;
      exit_interrupted ();
      exit 4)
  | None ->
    Printf.printf "cube-and-conquer: chromatic number, %d workers\n" jobs;
    let r =
      Conquer.chi ~jobs ~engine ?checkpoint ~timeout
        ~should_stop:interrupt_requested g ()
    in
    Printf.printf "bounds: clique >= %d, best coloring %d colors\n"
      r.Conquer.lower_bound r.Conquer.best_colors;
    (match r.Conquer.certified_unsat_k with
    | Some k ->
      Printf.printf "certified: not %d-colorable (tree proof replayed)\n" k
    | None -> ());
    (match r.Conquer.chi with
    | Some c -> Printf.printf "chromatic number: %d\n" c
    | None ->
      Printf.printf
        "chromatic number: in [%d, %d] (budget exhausted before certified)\n"
        r.Conquer.lower_bound r.Conquer.best_colors);
    if verbose then
      Array.iteri
        (fun v c -> Printf.printf "  vertex %d -> color %d\n" (v + 1) c)
        r.Conquer.best;
    exit_interrupted ();
    if r.Conquer.chi = None then exit 4

let solve_cmd =
  let run file engine sbp no_isd timeout k fallback verify verbose portfolio
      jobs seed mem_limit proof stats no_inprocessing ckpt_dir ckpt_interval
      resume cube =
    install_signal_handlers ();
    if cube then begin
      let g = load file in
      Printf.printf "graph: %d vertices, %d edges\n" (Graph.num_vertices g)
        (Graph.num_edges g);
      let checkpoint =
        checkpoint_config ~dir:ckpt_dir ~interval:ckpt_interval ~resume
      in
      run_cube g ~k ~jobs ~timeout ~engine ~checkpoint ~verbose;
      exit 0
    end;
    let g = load file in
    Printf.printf "graph: %d vertices, %d edges\n" (Graph.num_vertices g)
      (Graph.num_edges g);
    let lower = Array.length (Clique.greedy g) in
    let upper = Dsatur.upper_bound g in
    Printf.printf "bounds: clique >= %d, heuristic <= %d\n" lower upper;
    let k = match k with Some k -> k | None -> upper in
    let checkpoint =
      checkpoint_config ~dir:ckpt_dir ~interval:ckpt_interval ~resume
    in
    let checkpoint_label = Filename.basename file in
    match portfolio with
    | Some specs ->
      if proof <> None then
        Printf.eprintf
          "color: --proof is ignored under --portfolio (workers' proofs are \
           replayed by the supervisor, not written to disk)\n";
      if no_inprocessing then
        Printf.eprintf
          "color: --no-inprocessing is ignored under --portfolio (workers \
           use the default engine configuration)\n";
      run_portfolio g ~specs ~jobs ~seed ~mem_limit_mb:mem_limit ~sbp
        ~instance_dependent:(not no_isd) ~timeout ~k ~verify ~verbose
        ~checkpoint ~checkpoint_label
    | None ->
    let cfg =
      Flow.config ~engine ~sbp ~instance_dependent:(not no_isd) ~timeout
        ~fallback ~verify ~proof:(proof <> None)
        ~inprocessing:(not no_inprocessing)
        ~instrument:with_interrupt_cancel ?checkpoint ~checkpoint_label ~k ()
    in
    let r = Flow.run g cfg in
    print_resume_log r.Flow.resume_log;
    (match r.Flow.sym with
    | Some si ->
      Printf.printf
        "symmetries: %s (|generators| = %d, detected in %.2fs%s)\n"
        (Colib_symmetry.Auto.order_string si.Flow.order_log10)
        si.Flow.num_generators si.Flow.detection_time
        (if si.Flow.complete then "" else ", budget hit")
    | None -> ());
    (match r.Flow.outcome with
    | Flow.Optimal c -> Printf.printf "chromatic number (within K=%d): %d\n" k c
    | Flow.Best c ->
      Printf.printf "best coloring found: %d colors (optimality unproven)\n" c
    | Flow.No_coloring -> Printf.printf "not %d-colorable\n" k
    | Flow.Timed_out -> Printf.printf "timeout with no coloring found\n");
    Printf.printf "solve time: %.2fs, conflicts: %d, decisions: %d\n"
      r.Flow.solve_time r.Flow.solver.Types.conflicts
      r.Flow.solver.Types.decisions;
    (if stats then
       let s = r.Flow.solver in
       Printf.printf
         "stats: conflicts=%d decisions=%d propagations=%d learned=%d \
          restarts=%d removed=%d subsumed=%d eliminated=%d probed=%d \
          substituted=%d\n"
         s.Types.conflicts s.Types.decisions s.Types.propagations
         s.Types.learned s.Types.restarts s.Types.removed s.Types.subsumed
         s.Types.eliminated s.Types.probed s.Types.substituted);
    (match proof with
    | None -> ()
    | Some path -> (
      match r.Flow.proof with
      | Some b ->
        Proof.write_file path ~formula:b.Flow.proof_formula
          ~claim:b.Flow.proof_claim b.Flow.proof_trace;
        Printf.printf "proof: %d steps (%s) written to %s\n"
          (Proof.num_steps b.Flow.proof_trace)
          (Proof.claim_to_string b.Flow.proof_claim)
          path
      | None ->
        Printf.eprintf
          "color: no proof written: the answer was not settled by an engine \
           stage (only optimal/infeasible engine answers carry a proof)\n"));
    (match r.Flow.provenance with
    | [] | [ _ ] when not verify -> ()
    | attempts ->
      Printf.printf "provenance:\n";
      print_provenance attempts);
    if verbose then
      (match r.Flow.coloring with
      | Some coloring ->
        Array.iteri
          (fun v c -> Printf.printf "  vertex %d -> color %d\n" (v + 1) c)
          coloring
      | None -> ());
    (if verify then
       match r.Flow.certificate with
       | Some (Ok ()) -> Printf.printf "certificate: coloring verified\n"
       | Some (Error f) ->
         Printf.printf "certificate: FAILED (%s)\n"
           (Certify.failure_to_string f);
         exit 3
       | None -> Printf.printf "certificate: no coloring to verify\n");
    exit_interrupted ()
  in
  let cube_arg =
    Arg.(
      value & flag
      & info [ "cube" ]
          ~doc:
            "Cube-and-conquer: split the instance into cubes on \
             DSATUR-ranked branching vertices, race them across $(b,--jobs) \
             supervised workers fed from a lease-based queue (crashed or \
             hung workers' cubes are re-leased, warm-resumed under \
             $(b,--checkpoint), stragglers split adaptively), and certify \
             the verdict by replaying the stitched per-cube tree proof. \
             With $(b,-k) decides k-colorability; without, descends to the \
             chromatic number. Exit 4 when the budget ran out undecided.")
  in
  Cmd.v (Cmd.info "solve" ~doc:"Solve exact coloring with symmetry breaking.")
    Term.(
      const run $ file_arg $ engine_arg $ sbp_arg $ no_isd_arg $ timeout_arg
      $ k_arg $ fallback_arg $ verify_arg $ verbose_arg $ portfolio_arg
      $ jobs_arg $ seed_arg $ mem_limit_arg $ proof_arg $ stats_arg
      $ no_inprocessing_arg $ checkpoint_arg $ checkpoint_interval_arg
      $ resume_arg $ cube_arg)

let bounds_cmd =
  let run file =
    let g = load file in
    let clique = Clique.greedy g in
    let coloring = Dsatur.dsatur g in
    Printf.printf "vertices: %d\nedges: %d\nmax degree: %d\n"
      (Graph.num_vertices g) (Graph.num_edges g) (Graph.max_degree g);
    Printf.printf "greedy clique (lower bound): %d\n" (Array.length clique);
    Printf.printf "DSATUR (upper bound): %d\n" (Dsatur.num_colors coloring);
    Printf.printf "Welsh-Powell: %d\n"
      (Dsatur.num_colors (Dsatur.welsh_powell g))
  in
  Cmd.v (Cmd.info "bounds" ~doc:"Print clique and heuristic coloring bounds.")
    Term.(const run $ file_arg)

let emit_cmd =
  let run file sbp k =
    let g = load file in
    let k = match k with Some k -> k | None -> Dsatur.upper_bound g in
    let enc = Encoding.encode g ~k in
    Sbp.add sbp enc;
    Output.to_opb Format.std_formatter enc.Encoding.formula;
    Format.pp_print_flush Format.std_formatter ()
  in
  Cmd.v
    (Cmd.info "emit"
       ~doc:
         "Emit the 0-1 ILP reduction (OPB format) for use with external \
          solvers.")
    Term.(const run $ file_arg $ sbp_arg $ k_arg)

let solve_opb_cmd =
  let run file engine timeout verify proof =
    install_signal_handlers ();
    let text =
      let ic = open_in file in
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      s
    in
    let f =
      try Output.parse_opb text
      with Failure msg ->
        Printf.eprintf "color: %s\n" msg;
        exit 2
    in
    let stats = Colib_sat.Formula.stats f in
    Format.printf "%a@." Colib_sat.Formula.pp_stats stats;
    Format.print_flush ();
    let budget = with_interrupt_cancel (Types.within_seconds timeout) in
    let certify m claimed =
      if verify then begin
        let cert =
          match Certify.model f m with
          | Ok () -> (
            match claimed with
            | Some c -> Certify.model_cost f m ~claimed:c
            | None -> Ok ())
          | Error _ as e -> e
        in
        match cert with
        | Ok () -> Printf.printf "certificate: model verified\n"
        | Error fl ->
          Printf.printf "certificate: FAILED (%s)\n"
            (Certify.failure_to_string fl);
          exit 3
      end
    in
    let trace = Option.map (fun _ -> Proof.create ()) proof in
    let write_proof claim =
      match (proof, trace) with
      | Some path, Some t ->
        Proof.write_file path ~formula:f ~claim t;
        Printf.printf "proof: %d steps (%s) written to %s\n"
          (Proof.num_steps t)
          (Proof.claim_to_string claim)
          path
      | _ -> ()
    in
    let no_proof () =
      if proof <> None then
        Printf.eprintf
          "color: no proof written: only optimal and unsatisfiable answers \
           carry a proof\n"
    in
    (match Colib_solver.Optimize.solve_formula ?proof:trace engine f budget with
    | Colib_solver.Optimize.Optimal (m, c) ->
      if Colib_sat.Formula.objective f = None then
        Printf.printf "satisfiable\n"
      else Printf.printf "optimal objective: %d\n" c;
      Array.iteri
        (fun v b -> if b then Printf.printf "x%d " (v + 1))
        m;
      print_newline ();
      certify m
        (if Colib_sat.Formula.objective f = None then None else Some c);
      (* a SAT answer with no objective is existential: the model itself is
         the certificate, there is nothing for a RUP trace to add *)
      if Colib_sat.Formula.objective f = None then no_proof ()
      else write_proof (Proof.Optimal_claim c)
    | Colib_solver.Optimize.Satisfiable (m, c, reason) ->
      Printf.printf "feasible with objective %d (optimality unproven; %s)\n" c
        (Types.stop_reason_name reason);
      certify m (Some c);
      no_proof ()
    | Colib_solver.Optimize.Unsatisfiable ->
      Printf.printf "unsatisfiable\n";
      write_proof Proof.Unsat_claim
    | Colib_solver.Optimize.Timeout reason ->
      Printf.printf "timeout (%s)\n" (Types.stop_reason_name reason);
      no_proof ());
    exit_interrupted ()
  in
  Cmd.v
    (Cmd.info "solve-opb"
       ~doc:"Solve a pseudo-Boolean (OPB) instance directly — the repository \
             doubles as a small 0-1 ILP solver.")
    Term.(
      const run $ file_arg $ engine_arg $ timeout_arg $ verify_arg $ proof_arg)

let check_proof_cmd =
  let proof_file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"PROOF" ~doc:"Proof file written by solve --proof.")
  in
  let run file =
    let parsed =
      try Proof.read_file file with
      | Sys_error m ->
        Printf.eprintf "color: %s\n" m;
        exit 2
      | Failure m ->
        Printf.eprintf "color: %s: %s\n" file m;
        exit 2
    in
    match (parsed.Proof.p_formula, parsed.Proof.p_claim) with
    | None, _ ->
      Printf.eprintf "color: %s: no embedded formula (missing f-lines)\n" file;
      exit 2
    | _, None ->
      Printf.eprintf "color: %s: no claim (missing s-line)\n" file;
      exit 2
    | Some f, Some claim -> (
      let stats = Colib_sat.Formula.stats f in
      Format.printf "%a@." Colib_sat.Formula.pp_stats stats;
      Format.print_flush ();
      match Rup.check_claim f claim parsed.Proof.p_steps with
      | Ok v ->
        Printf.printf "proof: verified (%s, %d steps)\n"
          (Proof.claim_to_string claim)
          v.Rup.steps_checked
      | Error fl ->
        Printf.printf "proof: REJECTED (%s)\n" (Rup.failure_to_string fl);
        exit 3)
  in
  Cmd.v
    (Cmd.info "check-proof"
       ~doc:
         "Replay a proof file through the independent RUP checker: the \
          checker re-derives the claim (unsatisfiability or optimality) from \
          the embedded formula by unit propagation alone, sharing no search \
          code with the solver. Exit 3 if the proof is rejected.")
    Term.(const run $ proof_file_arg)

(* ---------- the coloring service ----------

   serve     — the crash-only daemon (exit 0 on graceful drain, 1 on usage)
   supervise — self-healing wrapper around serve: restart on crash with
               capped backoff; exit 10 when the restart-rate circuit
               breaker detects a crash loop
   health    — one Health/Health_report exchange, printed as key: value
   client    — submit one job and wait for the result; distinct exit codes
               per failure class so scripts and the smoke tests can tell
               them apart:
              0 a result was delivered (including a typed timeout)
              1 usage error
              2 the daemon rejected the request (permanent)
              3 the delivered coloring failed client-side re-certification
              4 gave up retrying: overloaded
              5 gave up retrying: daemon unreachable or disconnected
              6 gave up retrying: protocol violations
              7 gave up retrying: daemon unavailable (durability degraded:
                disk full or persistent I/O errors) *)

(* COLIB_IO_FAULTS scripts the durable-I/O fault plan (see
   Colib_io.Fault.of_spec) so shell harnesses can drive ENOSPC/EIO/EMFILE
   windows through a stock binary: e.g. "enospc@0.5-2s" fails every
   durable write between 0.5s and 2s after daemon startup. *)
let install_env_faults () =
  match Sys.getenv_opt "COLIB_IO_FAULTS" with
  | None | Some "" -> ()
  | Some spec -> (
    match Colib_io.Fault.of_spec spec with
    | Ok plan ->
      Colib_io.Fault.install plan;
      Printf.eprintf "color: COLIB_IO_FAULTS active: %s\n%!" spec
    | Error m ->
      Printf.eprintf "color: bad COLIB_IO_FAULTS: %s\n" m;
      exit 1)

let socket_pos_arg =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"SOCKET"
        ~doc:"Unix-domain socket path, or $(b,tcp:PORT) for loopback TCP.")

let require_socket = function
  | Some s -> s
  | None ->
    Printf.eprintf
      "color: a socket is required (a path, or tcp:PORT for loopback TCP)\n";
    exit 1

let server_cfg_term =
  let journal_arg =
    Arg.(
      value
      & opt string "serve.journal"
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Job journal: every job-state transition is committed here \
             (atomic rename + fsync) before it takes effect, and a \
             restarted daemon replays it to recover accepted jobs and \
             finished results.")
  in
  let ckpt_dir_arg =
    Arg.(
      value
      & opt string "serve-ckpt"
      & info [ "checkpoint-dir" ] ~docv:"DIR"
          ~doc:"Per-job search snapshots for warm resume after a crash.")
  in
  let max_queue_arg =
    Arg.(
      value
      & opt int 16
      & info [ "max-queue" ] ~docv:"N"
          ~doc:
            "Admission bound: jobs beyond $(docv) waiting are shed with a \
             typed Overloaded reply instead of queued.")
  in
  let max_running_arg =
    Arg.(
      value
      & opt int 2
      & info [ "max-running" ] ~docv:"N"
          ~doc:"Concurrent job runner processes.")
  in
  let io_timeout_arg =
    Arg.(
      value
      & opt float 10.0
      & info [ "io-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Per-connection I/O inactivity deadline; slow-loris writers \
             and idle jobless connections are shed past it.")
  in
  let drain_grace_arg =
    Arg.(
      value
      & opt float 10.0
      & info [ "drain-grace" ] ~docv:"SECONDS"
          ~doc:
            "On SIGTERM/SIGINT, how long running jobs get to finish before \
             they are killed (their journaled state and checkpoints let \
             the next daemon resume them).")
  in
  let rotate_bytes_arg =
    Arg.(
      value
      & opt int (1 lsl 20)
      & info [ "journal-rotate-bytes" ] ~docv:"BYTES"
          ~doc:
            "Rotate (compact) the journal once it outgrows $(docv); the \
             previous file is kept as $(i,FILE).1.")
  in
  let max_jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-jobs" ] ~docv:"N"
          ~doc:
            "Drain after completing $(docv) jobs — for tests and smoke \
             runs that need the daemon to exit on its own.")
  in
  let hold_arg =
    Arg.(
      value
      & opt float 0.0
      & info [ "hold" ] ~docv:"SECONDS"
          ~doc:
            "Fault-injection hook: each runner sleeps $(docv) before \
             solving, holding its slot occupied so tests can fill the \
             admission queue or kill the daemon mid-job deterministically.")
  in
  let crash_after_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "crash-after" ] ~docv:"SECONDS"
          ~doc:
            "Fault-injection hook: the daemon SIGKILLs itself $(docv) \
             seconds after startup. Drives deterministic crash loops for \
             $(b,supervise) tests; never set it in production.")
  in
  let pool_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "pool" ] ~docv:"N"
          ~doc:
            "Resident warm workers (default: $(b,--max-running)). Jobs \
             dispatch to pre-forked idle workers instead of paying a fork \
             per request; $(b,--pool 0) restores cold per-job forks.")
  in
  let recycle_jobs_arg =
    Arg.(
      value
      & opt int 64
      & info [ "recycle-jobs" ] ~docv:"N"
          ~doc:
            "Retire a pool worker after it has served $(docv) jobs and \
             respawn its slot fresh (0 = never), bounding leak accumulation \
             by construction.")
  in
  let recycle_rss_arg =
    Arg.(
      value
      & opt int 512
      & info [ "recycle-rss" ] ~docv:"MB"
          ~doc:
            "Retire a pool worker whose resident set exceeds $(docv) MiB \
             (0 = never); a hard address-space rlimit at 4x this bound \
             backstops the soft check inside each worker.")
  in
  let no_cache_arg =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:
            "Disable the result cache: every job solves fresh even when a \
             certified-optimal answer for the same parameters is journaled.")
  in
  let pool_kill_seed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "pool-kill-seed" ] ~docv:"SEED"
          ~doc:
            "Fault-injection hook: SIGKILL pool workers right after a \
             dispatch lands, at seed-derived pseudo-random dispatch \
             indices — deterministic worker-crash chaos for the serve \
             bench and soak tests; never set it in production.")
  in
  let pool_kill_p_arg =
    Arg.(
      value
      & opt float 0.25
      & info [ "pool-kill-p" ] ~docv:"P"
          ~doc:
            "Per-dispatch kill probability for $(b,--pool-kill-seed).")
  in
  let serve_verbose_arg =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log daemon activity.")
  in
  let peers_arg =
    Arg.(
      value
      & opt string ""
      & info [ "peers" ] ~docv:"SOCKET,SOCKET,..."
          ~doc:
            "Socket specs of the other daemons in this fleet, advertised \
             in health reports so a balancer can discover the topology \
             from any one daemon. Purely informational: daemons never \
             talk to each other.")
  in
  let max_sessions_arg =
    Arg.(
      value
      & opt int 8
      & info [ "max-sessions" ] ~docv:"N"
          ~doc:
            "Open incremental sessions beyond $(docv) evict the \
             least-recently-used one (late frames get a typed, permanent \
             Sess_evicted reply).")
  in
  let session_lease_arg =
    Arg.(
      value
      & opt float 300.0
      & info [ "session-lease" ] ~docv:"SECONDS"
          ~doc:
            "Default idle lease: a session untouched for $(docv) seconds \
             expires and its state is reaped.")
  in
  let session_snap_edits_arg =
    Arg.(
      value
      & opt int 16
      & info [ "session-snap-edits" ] ~docv:"N"
          ~doc:
            "Snapshot a session's warm engine every $(docv) edits (queries \
             always snapshot), bounding the cold replay a kill -9 recovery \
             has to pay.")
  in
  let mk socket journal ckpt_dir max_queue max_running io_timeout drain_grace
      rotate_bytes max_jobs hold crash_after pool recycle_jobs recycle_rss
      no_cache pool_kill_seed pool_kill_p peers max_sessions session_lease
      session_snap_edits verbose =
    let socket = require_socket socket in
    (* kill-only on purpose: a SIGSTOPped worker would outlive a daemon
       that is itself SIGKILLed mid-bench (nobody left to resume or reap
       it), so the CLI chaos hook maps every scheduled fault to a kill *)
    let pool_faults =
      Option.map
        (fun seed ->
          let seeded = Chaos.worker_seeded ~seed ~p:pool_kill_p in
          fun idx ->
            match Chaos.worker_fault_for seeded idx with
            | Some _ -> Some Chaos.Worker_kill
            | None -> None)
        pool_kill_seed
    in
    let peers =
      List.filter (fun s -> s <> "") (String.split_on_char ',' peers)
    in
    Server.config ~max_queue ~max_running ~io_timeout ~drain_grace
      ~rotate_bytes ?max_jobs ~hold ?crash_after ?pool_size:pool
      ~recycle_jobs ~recycle_rss_mb:recycle_rss ~cache:(not no_cache)
      ?pool_faults ~peers ~max_sessions ~session_lease ~session_snap_edits
      ~verbose ~socket ~journal_path:journal ~ckpt_dir ()
  in
  Term.(
    const mk $ socket_pos_arg $ journal_arg $ ckpt_dir_arg $ max_queue_arg
    $ max_running_arg $ io_timeout_arg $ drain_grace_arg $ rotate_bytes_arg
    $ max_jobs_arg $ hold_arg $ crash_after_arg $ pool_arg $ recycle_jobs_arg
    $ recycle_rss_arg $ no_cache_arg $ pool_kill_seed_arg $ pool_kill_p_arg
    $ peers_arg $ max_sessions_arg $ session_lease_arg
    $ session_snap_edits_arg $ serve_verbose_arg)

let run_daemon cfg =
  match Server.run cfg with
  | code -> code
  | exception Unix.Unix_error (e, fn, arg) ->
    Printf.eprintf "color: serve: %s: %s (%s)\n" fn (Unix.error_message e) arg;
    1
  | exception Invalid_argument m ->
    Printf.eprintf "color: serve: %s\n" m;
    1

let serve_cmd =
  let run cfg =
    install_env_faults ();
    exit (run_daemon cfg)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the crash-only coloring daemon: accept jobs over SOCKET, race \
          each through the supervised portfolio with per-job checkpointing, \
          journal every job-state transition, and recover accepted jobs and \
          finished results across restarts — even after kill -9. Under \
          resource exhaustion (disk full, I/O errors) the daemon degrades \
          loudly instead of dying: new jobs are shed with a typed \
          Unavailable reply and admission re-arms automatically once \
          journaling succeeds again.")
    Term.(const run $ server_cfg_term)

let supervise_cmd =
  let max_restarts_arg =
    Arg.(
      value
      & opt int 5
      & info [ "max-restarts" ] ~docv:"N"
          ~doc:
            "Circuit breaker: more than $(docv) crashes inside the restart \
             window means a crash loop; the supervisor gives up with exit \
             10 instead of flapping forever.")
  in
  let window_arg =
    Arg.(
      value
      & opt float 30.0
      & info [ "restart-window" ] ~docv:"SECONDS"
          ~doc:"Sliding window the circuit breaker counts crashes in.")
  in
  let backoff_arg =
    Arg.(
      value
      & opt float 0.2
      & info [ "restart-backoff" ] ~docv:"SECONDS"
          ~doc:"Base delay before a restart (doubles per crash, capped).")
  in
  let backoff_cap_arg =
    Arg.(
      value
      & opt float 5.0
      & info [ "restart-backoff-cap" ] ~docv:"SECONDS"
          ~doc:"Ceiling for the restart delay.")
  in
  let pid_file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "pid-file" ] ~docv:"FILE"
          ~doc:
            "Always holds the pid of the current daemon child, so \
             harnesses and operators can signal the daemon itself.")
  in
  let run cfg max_restarts window backoff backoff_cap pid_file =
    install_env_faults ();
    let scfg =
      Supervise.config ~backoff ~backoff_cap ~max_restarts ~window ?pid_file
        ~verbose:cfg.Server.verbose ()
    in
    (* reinstall per child so each daemon life replays the same plan from
       op 0 / t=0 — deterministic across restarts *)
    exit
      (Supervise.run scfg ~start:(fun () ->
           install_env_faults ();
           run_daemon cfg))
  in
  Cmd.v
    (Cmd.info "supervise"
       ~doc:
         "Run the coloring daemon under a self-healing supervisor: crashed \
          daemons restart with capped backoff (journal replay recovers \
          every in-flight job), operator signals pass through, and a \
          restart-rate circuit breaker exits 10 on a crash loop instead of \
          flapping forever. Takes every $(b,serve) option.")
    Term.(
      const run $ server_cfg_term $ max_restarts_arg $ window_arg
      $ backoff_arg $ backoff_cap_arg $ pid_file_arg)

let health_cmd =
  let socket_opt_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"SOCKET"
          ~doc:"Daemon socket: a path, or $(b,tcp:PORT) for loopback TCP.")
  in
  let timeout_arg =
    Arg.(
      value
      & opt float 5.0
      & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Exchange deadline.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the report as a single JSON object with stable keys \
             (machine-readable; the key set only ever grows).")
  in
  (* minimal JSON string escaping: quotes, backslashes, control chars *)
  let json_escape s =
    let b = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  in
  let print_json (h : Frame.health) =
    let b = Buffer.create 512 in
    let first = ref true in
    let field k v =
      if not !first then Buffer.add_char b ',';
      first := false;
      Buffer.add_string b (Printf.sprintf "\"%s\":%s" k v)
    in
    let int k v = field k (string_of_int v) in
    let str k v = field k (Printf.sprintf "\"%s\"" (json_escape v)) in
    Buffer.add_char b '{';
    int "queued" h.Frame.h_queued;
    int "running" h.Frame.h_running;
    int "completed" h.Frame.h_completed;
    field "uptime" (Printf.sprintf "%.3f" h.Frame.h_uptime);
    str "durability" h.Frame.h_durability;
    int "restarts" h.Frame.h_restarts;
    str "last_io_error" h.Frame.h_last_io_error;
    int "pending_journal" h.Frame.h_pending_journal;
    int "pool_warm" h.Frame.h_pool_warm;
    int "pool_busy" h.Frame.h_pool_busy;
    int "pool_recycling" h.Frame.h_pool_recycling;
    int "pool_restarts" h.Frame.h_pool_restarts;
    int "pool_recycles" h.Frame.h_pool_recycles;
    int "cache_hits" h.Frame.h_cache_hits;
    int "cache_misses" h.Frame.h_cache_misses;
    int "coalesced" h.Frame.h_coalesced;
    int "sess_open" h.Frame.h_sess_open;
    int "sess_evicted" h.Frame.h_sess_evicted;
    int "sess_expired" h.Frame.h_sess_expired;
    int "sess_replayed" h.Frame.h_sess_replayed;
    int "sess_recovered" h.Frame.h_sess_recovered;
    field "peers"
      (Printf.sprintf "[%s]"
         (String.concat ","
            (List.map
               (fun p -> Printf.sprintf "\"%s\"" (json_escape p))
               h.Frame.h_peers)));
    Buffer.add_char b '}';
    print_string (Buffer.contents b);
    print_newline ()
  in
  let run socket timeout json =
    match Client.health ~timeout ~socket () with
    | Ok h when json ->
      print_json h;
      exit 0
    | Ok h ->
      Printf.printf "queued: %d\n" h.Frame.h_queued;
      Printf.printf "running: %d\n" h.Frame.h_running;
      Printf.printf "completed: %d\n" h.Frame.h_completed;
      Printf.printf "uptime: %.1fs\n" h.Frame.h_uptime;
      Printf.printf "durability: %s\n" h.Frame.h_durability;
      Printf.printf "restarts: %d\n" h.Frame.h_restarts;
      Printf.printf "pending-journal: %d\n" h.Frame.h_pending_journal;
      Printf.printf "last-io-error: %s\n"
        (match h.Frame.h_last_io_error with "" -> "none" | e -> e);
      Printf.printf "pool-warm: %d\n" h.Frame.h_pool_warm;
      Printf.printf "pool-busy: %d\n" h.Frame.h_pool_busy;
      Printf.printf "pool-recycling: %d\n" h.Frame.h_pool_recycling;
      Printf.printf "pool-restarts: %d\n" h.Frame.h_pool_restarts;
      Printf.printf "pool-recycles: %d\n" h.Frame.h_pool_recycles;
      Printf.printf "cache-hits: %d\n" h.Frame.h_cache_hits;
      Printf.printf "cache-misses: %d\n" h.Frame.h_cache_misses;
      Printf.printf "coalesced: %d\n" h.Frame.h_coalesced;
      Printf.printf "sess-open: %d\n" h.Frame.h_sess_open;
      Printf.printf "sess-evicted: %d\n" h.Frame.h_sess_evicted;
      Printf.printf "sess-expired: %d\n" h.Frame.h_sess_expired;
      Printf.printf "sess-replayed: %d\n" h.Frame.h_sess_replayed;
      Printf.printf "sess-recovered: %d\n" h.Frame.h_sess_recovered;
      (match h.Frame.h_peers with
      | [] -> ()
      | ps -> Printf.printf "peers: %s\n" (String.concat "," ps));
      exit 0
    | Error f -> (
      Printf.eprintf "color: health: %s\n" (Client.failure_to_string f);
      match f with
      | Client.Protocol _ -> exit 6
      | _ -> exit 5)
  in
  Cmd.v
    (Cmd.info "health"
       ~doc:
         "Query a running daemon's operational state: queue depth, \
          durability (ok or degraded:disk-full / degraded:io-error), \
          lifetime restart count, buffered journal records, and the last \
          I/O error. With $(b,--json), one machine-readable JSON object. \
          Exit 0 when a report arrives, 5 when the daemon is unreachable, \
          6 on protocol violations.")
    Term.(const run $ socket_opt_arg $ timeout_arg $ json_arg)

let client_cmd =
  let socket_opt_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"SOCKET"
          ~doc:"Daemon socket: a path, or $(b,tcp:PORT) for loopback TCP.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt float 60.0
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Solve budget, enforced server-side from the moment of \
             admission (it keeps draining across daemon crashes). 0 means \
             an immediate typed timeout.")
  in
  let job_id_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "job-id" ] ~docv:"ID"
          ~doc:
            "Idempotency key (default: a digest of the instance and \
             parameters). Resubmitting a finished job's ID re-delivers the \
             journaled result instead of re-running the solve.")
  in
  let strategies_arg =
    Arg.(
      value
      & opt string ""
      & info [ "portfolio" ] ~docv:"SPECS"
          ~doc:
            "Comma-separated portfolio raced for this job (default: the \
             daemon's).")
  in
  let retries_arg =
    Arg.(
      value
      & opt int 4
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retries after transient failures (unreachable, disconnected, \
             garbage, overloaded), with capped exponential backoff and \
             jitter.")
  in
  let backoff_arg =
    Arg.(
      value
      & opt float 0.1
      & info [ "backoff" ] ~docv:"SECONDS" ~doc:"Base retry delay (doubles).")
  in
  let backoff_cap_arg =
    Arg.(
      value
      & opt float 2.0
      & info [ "backoff-cap" ] ~docv:"SECONDS" ~doc:"Retry delay ceiling.")
  in
  let run file socket deadline job_id k sbp strategies seed retries backoff
      backoff_cap verify verbose =
    install_signal_handlers ();
    let dimacs =
      match In_channel.with_open_text file In_channel.input_all with
      | s -> s
      | exception Sys_error msg ->
        Printf.eprintf "color: %s\n" msg;
        exit 2
    in
    let job_id =
      match job_id with
      | Some id -> id
      | None ->
        Digest.to_hex
          (Digest.string
             (String.concat "\x00"
                [
                  dimacs;
                  (match k with Some k -> string_of_int k | None -> "");
                  strategies;
                  Sbp.name sbp;
                  string_of_int seed;
                ]))
    in
    let job =
      {
        Frame.job_id;
        dimacs;
        j_k = k;
        deadline;
        strategies;
        sbp = (match sbp with Sbp.No_sbp -> "" | c -> Sbp.name c);
        instance_dependent = true;
        j_seed = seed;
      }
    in
    Printf.printf "job: %s\n" job_id;
    match
      Client.submit ~retries ~backoff ~backoff_cap
        ~on_attempt:(fun i ->
          if i > 0 then Printf.eprintf "color: client: retry %d\n%!" i)
        ~socket job
    with
    | Error { attempts; last } -> (
      Printf.eprintf "color: client: giving up after %d attempts: %s\n"
        attempts
        (Client.failure_to_string last);
      match last with
      | Client.Rejected _ -> exit 2
      | Client.Overloaded _ -> exit 4
      | Client.Unreachable _ | Client.Disconnected _ -> exit 5
      | Client.Protocol _ -> exit 6
      | Client.Unavailable _ -> exit 7
      | Client.Session_expired _ -> exit 8
      | Client.Session_evicted _ -> exit 9)
    | Ok r ->
      if r.Frame.r_replayed then
        Printf.printf "re-delivered from the daemon's journal\n";
      (match r.Frame.r_winner with
      | Some w -> Printf.printf "winner: %s\n" w
      | None -> ());
      (match (r.Frame.r_outcome, r.Frame.r_colors) with
      | "optimal", Some c -> Printf.printf "chromatic number: %d\n" c
      | "best", Some c ->
        Printf.printf "best coloring found: %d colors (optimality unproven)\n"
          c
      | "unsat", _ -> Printf.printf "not colorable within the color limit\n"
      | "timeout", _ -> Printf.printf "timeout: %s\n" r.Frame.r_detail
      | "failed", _ -> Printf.printf "failed: %s\n" r.Frame.r_detail
      | o, _ -> Printf.printf "outcome: %s\n" o);
      Printf.printf "certified: %b, solve time: %.2fs\n" r.Frame.r_certified
        r.Frame.r_time;
      if verbose then
        (match r.Frame.r_coloring with
        | Some coloring ->
          Array.iteri
            (fun v c -> Printf.printf "  vertex %d -> color %d\n" (v + 1) c)
            coloring
        | None -> ());
      (if verify then
         match (r.Frame.r_coloring, r.Frame.r_colors) with
         | Some col, Some c -> (
           match Dimacs_col.parse_result dimacs with
           | Error _ -> ()
           | Ok g -> (
             match Certify.coloring g ~k:c ~claimed:c col with
             | Ok () -> Printf.printf "certificate: coloring verified\n"
             | Error f ->
               Printf.printf "certificate: FAILED (%s)\n"
                 (Certify.failure_to_string f);
               exit 3))
         | _ -> Printf.printf "certificate: no coloring to verify\n");
      exit_interrupted ()
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Submit a coloring job to a running daemon and wait for the \
          result. Transient failures (daemon down or restarting, \
          disconnects, garbage, overload) are retried with capped \
          exponential backoff and jitter; job IDs make resubmission \
          idempotent.")
    Term.(
      const run $ file_arg $ socket_opt_arg $ deadline_arg $ job_id_arg
      $ k_arg $ sbp_arg $ strategies_arg $ seed_arg $ retries_arg
      $ backoff_arg $ backoff_cap_arg $ verify_arg $ verbose_arg)

let session_cmd =
  let socket_opt_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"SOCKET"
          ~doc:"Daemon socket: a path, or $(b,tcp:PORT) for loopback TCP.")
  in
  let sid_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "sid" ] ~docv:"ID"
          ~doc:
            "Session id. Re-running the same script against the same id is \
             idempotent: already-consumed sequence numbers are acknowledged \
             from the daemon's journal-backed state instead of re-applied.")
  in
  let vertices_arg =
    Arg.(
      required
      & opt (some int) None
      & info [ "vertices" ] ~docv:"N"
          ~doc:"Vertex capacity reserved for this session.")
  in
  let colors_arg =
    Arg.(
      value
      & opt int 0
      & info [ "colors" ] ~docv:"N"
          ~doc:"Color capacity (default: the vertex capacity).")
  in
  let edges_arg =
    Arg.(
      value
      & opt int 0
      & info [ "edges" ] ~docv:"N"
          ~doc:
            "Distinct-edge capacity: how many distinct vertex pairs the \
             session may ever touch (default: N*(N-1)/2 over the vertex \
             capacity).")
  in
  let lease_arg =
    Arg.(
      value
      & opt float 0.0
      & info [ "lease" ] ~docv:"SECONDS"
          ~doc:"Idle lease to request (0: the daemon's default).")
  in
  let budget_arg =
    Arg.(
      value
      & opt float 0.0
      & info [ "budget" ] ~docv:"SECONDS"
          ~doc:"Per-query solve budget (0: the daemon's default).")
  in
  let retries_arg =
    Arg.(
      value
      & opt int 4
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retries after transient failures; duplicates are idempotent \
             by sequence number, so at-least-once delivery is safe.")
  in
  let backoff_arg =
    Arg.(
      value
      & opt float 0.1
      & info [ "backoff" ] ~docv:"SECONDS" ~doc:"Base retry delay (doubles).")
  in
  let script_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SCRIPT"
          ~doc:
            "Edit script, one operation per line ($(b,-) reads stdin): \
             $(b,vertex) activates the next vertex, $(b,edge U V) adds an \
             edge, $(b,del U V) removes one, $(b,query) asks for the \
             chromatic number, $(b,sleep S) pauses (for lease tests), and \
             $(b,close) closes the session. Vertices are 0-based. Blank \
             lines and $(b,#) comments are ignored.")
  in
  let exit_failure (g : Client.give_up) =
    Printf.eprintf "color: session: giving up after %d attempts: %s\n"
      g.Client.attempts
      (Client.failure_to_string g.Client.last);
    match g.Client.last with
    | Client.Rejected _ -> exit 2
    | Client.Overloaded _ -> exit 4
    | Client.Unreachable _ | Client.Disconnected _ -> exit 5
    | Client.Protocol _ -> exit 6
    | Client.Unavailable _ -> exit 7
    | Client.Session_expired _ -> exit 8
    | Client.Session_evicted _ -> exit 9
  in
  let parse_line ln n line =
    let fail msg =
      Printf.eprintf "color: session: %s:%d: %s\n" ln n msg;
      exit 2
    in
    match String.split_on_char ' ' (String.trim line) with
    | [ "" ] -> None
    | s :: _ when String.length s > 0 && s.[0] = '#' -> None
    | [ "vertex" ] -> Some (`Edit Session.Add_vertex)
    | [ "edge"; u; v ] -> (
      match (int_of_string_opt u, int_of_string_opt v) with
      | Some u, Some v -> Some (`Edit (Session.Add_edge (u, v)))
      | _ -> fail "edge expects two integers")
    | [ "del"; u; v ] -> (
      match (int_of_string_opt u, int_of_string_opt v) with
      | Some u, Some v -> Some (`Edit (Session.Remove_edge (u, v)))
      | _ -> fail "del expects two integers")
    | [ "query" ] -> Some `Query
    | [ "close" ] -> Some `Close
    | [ "sleep"; s ] -> (
      match float_of_string_opt s with
      | Some s when s >= 0.0 -> Some (`Sleep s)
      | _ -> fail "sleep expects a non-negative number of seconds")
    | _ -> fail (Printf.sprintf "unknown operation %S" (String.trim line))
  in
  let run script socket sid vertices colors edges lease budget retries backoff
      verbose =
    install_signal_handlers ();
    let text =
      if script = "-" then In_channel.input_all stdin
      else
        match In_channel.with_open_text script In_channel.input_all with
        | s -> s
        | exception Sys_error msg ->
          Printf.eprintf "color: %s\n" msg;
          exit 2
    in
    let ln = if script = "-" then "<stdin>" else script in
    let ops =
      String.split_on_char '\n' text
      |> List.mapi (fun i line -> parse_line ln (i + 1) line)
      |> List.filter_map Fun.id
    in
    let colors = if colors > 0 then colors else vertices in
    let edges = if edges > 0 then edges else vertices * (vertices - 1) / 2 in
    let ack =
      match
        Client.sess_open ~retries ~backoff ~lease ~socket ~sid ~vertices
          ~colors ~edges ()
      with
      | Ok a -> a
      | Error g -> exit_failure g
    in
    if ack.Client.ack_replayed then
      Printf.printf "session %s: resumed at seq %d\n" sid ack.Client.ack_seq
    else Printf.printf "session %s: opened\n" sid;
    (* client-side monotonic sequence: continue past whatever the daemon
       has already consumed, so re-running a script resumes cleanly *)
    let seq = ref ack.Client.ack_seq in
    let next () =
      incr seq;
      !seq
    in
    List.iter
      (fun op ->
        if interrupt_requested () then exit_interrupted ();
        match op with
        | `Edit e -> (
          match
            Client.sess_edit ~retries ~backoff ~socket ~sid ~seq:(next ()) e
          with
          | Ok a ->
            if verbose then
              Printf.printf "edit %s: seq %d%s\n" (Session.edit_to_string e)
                a.Client.ack_seq
                (if a.Client.ack_replayed then " (replayed)" else "")
          | Error g -> exit_failure g)
        | `Query -> (
          match
            Client.sess_query ~retries ~backoff ~budget ~socket ~sid
              ~seq:(next ()) ()
          with
          | Ok a ->
            Printf.printf
              "chi: %d certified: %b incremental: %b time: %.2fs%s\n"
              a.Frame.sa_chi a.Frame.sa_certified a.Frame.sa_incremental
              a.Frame.sa_time
              (if a.Frame.sa_replayed then " (replayed)" else "");
            if verbose then
              Array.iteri
                (fun v c -> Printf.printf "  vertex %d -> color %d\n" v c)
                a.Frame.sa_coloring
          | Error g -> exit_failure g)
        | `Sleep s -> Unix.sleepf s
        | `Close -> (
          match Client.sess_close ~retries ~backoff ~socket ~sid () with
          | Ok _ ->
            Printf.printf "session %s: closed\n" sid
          | Error g -> exit_failure g))
      ops;
    exit_interrupted ()
  in
  Cmd.v
    (Cmd.info "session"
       ~doc:
         "Drive a durable incremental coloring session on a running daemon: \
          open (or resume) a session, stream graph edits from a script, and \
          re-query the chromatic number paying warm incremental re-solves. \
          Every edit is write-ahead journaled by the daemon and idempotent \
          by sequence number, so retries and daemon crashes never corrupt \
          the graph. Exit 8 when the session's lease expired, 9 when it was \
          evicted — both permanent: open a fresh session and replay.")
    Term.(
      const run $ script_arg $ socket_opt_arg $ sid_arg $ vertices_arg
      $ colors_arg $ edges_arg $ lease_arg $ budget_arg $ retries_arg
      $ backoff_arg $ verbose_arg)

let () =
  let doc = "exact graph coloring via 0-1 ILP with symmetry breaking" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "color" ~doc)
          [
            solve_cmd; bounds_cmd; emit_cmd; solve_opb_cmd; check_proof_cmd;
            serve_cmd; supervise_cmd; health_cmd; client_cmd; session_cmd;
          ]))
