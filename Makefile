.PHONY: all build test check bench examples clean

all: build

build:
	dune build

test:
	dune runtest --force

# the gate a PR must pass: full build plus the whole test suite, including
# the certification and chaos-injection suites (test_check) and cram tests
check:
	dune build
	dune runtest

bench:
	dune exec bench/main.exe

# run each example binary once
examples: build
	dune exec examples/quickstart.exe
	dune exec examples/register_allocation.exe
	dune exec examples/frequency_assignment.exe
	dune exec examples/exam_timetabling.exe
	dune exec examples/queens_scheduling.exe
	dune exec examples/map_coloring.exe

clean:
	dune clean
