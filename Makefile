.PHONY: all build test check bench bench-gate bench-dist examples fuzz proof-check serve-smoke serve-bench bench-session soak clean

all: build

build:
	dune build

test:
	dune runtest --force

# the gate a PR must pass: full build plus the whole test suite, including
# the certification and chaos-injection suites (test_check) and cram tests
check:
	dune build
	dune runtest

bench:
	dune exec bench/main.exe

# perf-regression gate: re-run the committed sweep cells (the Table 3
# myciel3/myciel4/queen5_5 subset at the committed 2 s budget) and compare
# the fresh BENCH.json against the one committed at HEAD — failing if the
# geomean time over solved cells regresses more than 15% or a previously
# solved cell becomes unsolved. The fresh report replaces BENCH.json in the
# working tree; commit it when the change is intentional.
BENCH_GATE_INSTANCES ?= myciel3,myciel4,queen5_5
bench-gate: build
	git show HEAD:BENCH.json > _build/bench_baseline.json
	dune exec bench/main.exe -- table3 \
	  --instances $(BENCH_GATE_INSTANCES) --run-id gate
	sh scripts/bench_gate.sh _build/bench_baseline.json BENCH.json

# distributed-solve scaling bench + smoke gate: run the certified
# cube-and-conquer driver at 1/2/4 workers over hard UNSAT cells (each
# tree proof re-replayed by the parent), write the curve to
# BENCH_DIST.json, and gate it — red when the report is empty, a cell
# lost a jobs point or its certification, or the best parallel time
# degrades past the core-count-aware slack (flat curves are expected
# and fine on a 1-core box). Commit the fresh report when intentional.
BENCH_DIST_OUT ?= BENCH_DIST.json
BENCH_DIST_TIMEOUT ?= 120
bench-dist: build
	dune exec bench/dist.exe -- --out $(BENCH_DIST_OUT) \
	  --run-id local --timeout $(BENCH_DIST_TIMEOUT)
	sh scripts/bench_dist_gate.sh $(BENCH_DIST_OUT)

# long differential fuzzing run: random graphs and PB formulas against
# brute-force oracles, every settled answer replayed through the RUP
# checker. A short run (COLIB_FUZZ defaults to 220) rides in `make test`;
# override the count for a smoke run: `make fuzz COLIB_FUZZ=60`.
COLIB_FUZZ ?= 2000
fuzz: build
	COLIB_FUZZ=$(COLIB_FUZZ) dune exec test/test_fuzz.exe

# end-to-end certification of the shipped example graphs: solve each with
# proof logging, then replay the proof through the independent checker
# (`check-proof` exits 3 on any rejected proof). The myciel3 -k 3 run
# exercises the UNSAT side: chi(myciel3) = 4, so 3 colors are refutable.
proof-check: build
	@set -e; mkdir -p _build/proofs; \
	for g in examples/graphs/*.col; do \
	  name=$$(basename $$g .col); \
	  echo "== $$g"; \
	  dune exec bin/color.exe -- solve $$g \
	    --proof _build/proofs/$$name.proof; \
	  dune exec bin/color.exe -- check-proof _build/proofs/$$name.proof; \
	done; \
	echo "== examples/graphs/myciel3.col -k 3 (refutation)"; \
	dune exec bin/color.exe -- solve examples/graphs/myciel3.col -k 3 \
	  --proof _build/proofs/myciel3-k3.proof; \
	dune exec bin/color.exe -- check-proof _build/proofs/myciel3-k3.proof; \
	echo "proof-check: all example proofs verified"

# crash-recovery smoke for the coloring service: submit a job, kill -9 the
# daemon mid-solve, restart it, and verify the retrying client still gets
# the certified answer and that resubmitting the same job id is re-delivered
# from the journal instead of recomputed
serve-smoke: build
	sh scripts/serve_smoke.sh

# serve-path latency bench: concurrent clients against the supervised
# daemon in three phases — warm pool + result cache (with a mid-run
# daemon SIGKILL and seeded pool-worker kills), warm pool without cache,
# and the cold fork-per-job path — writing p50/p95/p99, warm-vs-cold
# ratios, cache hit rate, and shed rate to BENCH_SERVE.json.
# Knobs: `make serve-bench SEED=7 CLIENTS=8 REQUESTS=50`.
SEED ?= 1
CLIENTS ?= 6
REQUESTS ?= 25
OUT ?= BENCH_SERVE.json
serve-bench: build
	SEED=$(SEED) CLIENTS=$(CLIENTS) REQUESTS=$(REQUESTS) OUT=$(OUT) \
	  sh scripts/serve_bench.sh

# incremental-session latency bench: replay seeded dynamic-graph edit
# streams and measure warm (persistent session, learned clauses kept)
# vs cold (from-scratch re-solve) query latency over identical states;
# both sides must agree on chi and certify. Writes p50/p95/p99, the
# cold-over-warm ratio, and the incremental-serve fraction to
# BENCH_SESSION.json. Knobs: `make bench-session SEED=7 EDITS=60`.
GRAPHS ?= 5
EDITS ?= 40
SESSION_OUT ?= BENCH_SESSION.json
bench-session: build
	SEED=$(SEED) GRAPHS=$(GRAPHS) EDITS=$(EDITS) OUT=$(SESSION_OUT) \
	  sh scripts/session_bench.sh

# randomized chaos soak for the coloring service: a seeded schedule of
# client load against a TWO-daemon fleet routed through the balancer,
# daemon SIGKILLs on either member, fd pressure, injected ENOSPC/EIO
# against the durable-I/O layer, and portfolio races with forged
# clause-share frames — with each daemon's warm worker pool recycling
# aggressively (every worker retires after 2 jobs) under seeded
# worker-kill chaos, and the result cache + coalescing on — with
# end-of-run invariant checks (every job ends exactly once, both
# journals replay, every forged-share race certifies, no orphans, no
# tmp debris).
# Override the knobs: `make soak SOAK_SEEDS="7" SOAK_DURATION=120`.
SOAK_SEEDS ?= 1 2 3
SOAK_DURATION ?= 20
soak: build
	sh scripts/soak.sh "$(SOAK_SEEDS)" $(SOAK_DURATION)

# run each example binary once
examples: build
	dune exec examples/quickstart.exe
	dune exec examples/register_allocation.exe
	dune exec examples/frequency_assignment.exe
	dune exec examples/exam_timetabling.exe
	dune exec examples/queens_scheduling.exe
	dune exec examples/map_coloring.exe
	dune exec examples/dynamic_recoloring.exe

clean:
	dune clean
