#!/bin/sh
# Incremental-session latency bench: replay seeded dynamic-graph edit
# streams and measure warm (persistent session) vs cold (from-scratch
# re-solve) query latency over identical states. Both sides must agree
# on chi and certify, so this is also a differential smoke gate. Writes
# the schema-tagged summary to BENCH_SESSION.json.
#
# Run from the repo root after `dune build`:  sh scripts/session_bench.sh
# Knobs: SEED, GRAPHS, EDITS, QUERY_EVERY, OUT.
set -eu

BENCH=${BENCH:-_build/default/bench/session/session_bench.exe}
SEED=${SEED:-1}
GRAPHS=${GRAPHS:-5}
EDITS=${EDITS:-40}
QUERY_EVERY=${QUERY_EVERY:-4}
OUT=${OUT:-BENCH_SESSION.json}

if [ ! -x "$BENCH" ]; then
  echo "session_bench.sh: $BENCH not built (run: dune build)" >&2
  exit 1
fi

"$BENCH" --seed "$SEED" --graphs "$GRAPHS" --edits "$EDITS" \
  --query-every "$QUERY_EVERY" --out "$OUT"

# the report must exist and carry measurements, or the bench failed
if [ ! -s "$OUT" ]; then
  echo "session_bench.sh: $OUT missing or empty" >&2
  exit 1
fi
if ! grep -q '"schema": "colib-bench-session/1"' "$OUT"; then
  echo "session_bench.sh: $OUT missing schema tag" >&2
  exit 1
fi
if ! grep -q '"queries": [1-9]' "$OUT"; then
  echo "session_bench.sh: $OUT has no queries" >&2
  exit 1
fi
echo "session_bench.sh: OK ($OUT)"
