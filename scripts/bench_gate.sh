#!/bin/sh
# Perf-regression gate over the committed sweep cells.
#
#   sh scripts/bench_gate.sh BASELINE.json CANDIDATE.json [MAX_REGRESS_PCT]
#
# Both files are colib-bench-cells/1 reports (the BENCH.json a sweep run
# writes). The gate fails (exit 1) when any of
#   - a cell the baseline solved is unsolved (or missing) in the candidate —
#     unless the baseline time was already >= half the cell's budget (the
#     `t=` field of its key): such borderline cells flip across runs and
#     machines on scheduler noise alone, so they only warn,
#   - the geometric-mean time ratio over cells solved in both exceeds
#     1 + MAX_REGRESS_PCT/100 (default 15%), or
#   - the summed time over cells solved in both exceeds twice the limit
#     (catches a gross uniform slowdown the noise floor would otherwise
#     mute; it gets double slack because raw sums are dominated by a few
#     near-budget cells whose times swing 10-15% on machine noise alone).
# Per-cell times are floored at 50 ms before the geomean ratio so scheduler
# noise on sub-millisecond cells cannot dominate it; the sum criterion uses
# raw times, where the big cells carry the signal. Newly solved cells and
# improvements are reported but never gate.
set -eu

BASELINE=${1:?usage: bench_gate.sh BASELINE.json CANDIDATE.json [MAX_REGRESS_PCT]}
CANDIDATE=${2:?usage: bench_gate.sh BASELINE.json CANDIDATE.json [MAX_REGRESS_PCT]}
MAX_REGRESS_PCT=${3:-15}

exec python3 - "$BASELINE" "$CANDIDATE" "$MAX_REGRESS_PCT" <<'PYEOF'
import json
import math
import sys

baseline_path, candidate_path, max_pct = sys.argv[1], sys.argv[2], float(sys.argv[3])
TIME_FLOOR = 0.05  # seconds; absorbs scheduler noise on trivial cells


def load_cells(path):
    with open(path) as f:
        report = json.load(f)
    if report.get("schema") != "colib-bench-cells/1":
        sys.exit(f"bench-gate: {path}: not a colib-bench-cells/1 report")
    cells = {c["key"]: c for c in report["cells"]}
    if not cells:
        sys.exit(f"bench-gate: {path}: empty cell list")
    return cells


base = load_cells(baseline_path)
cand = load_cells(candidate_path)

def budget_of(key):
    # cell keys look like "table3|k=20|t=2|myciel3|CA|isd=false|PBS II"
    for field in key.split("|"):
        if field.startswith("t="):
            try:
                return float(field[2:])
            except ValueError:
                pass
    return None


lost, borderline, ratios, newly_solved = [], [], [], []
base_total = cand_total = 0.0
for key, bc in sorted(base.items()):
    cc = cand.get(key)
    if bc.get("solved"):
        if cc is None:
            lost.append((key, "missing from candidate"))
        elif not cc.get("solved"):
            budget = budget_of(key)
            if budget is not None and bc["time"] >= 0.5 * budget:
                borderline.append(
                    (key, f"baseline {bc['time']:.3f}s of {budget:.1f}s budget")
                )
            else:
                lost.append((key, f"unsolved (baseline {bc['time']:.3f}s)"))
        else:
            ratios.append(
                max(cc["time"], TIME_FLOOR) / max(bc["time"], TIME_FLOOR)
            )
            base_total += bc["time"]
            cand_total += cc["time"]
    elif cc is not None and cc.get("solved"):
        newly_solved.append(key)

failed = False
limit = 1.0 + max_pct / 100.0
for key, why in lost:
    print(f"bench-gate: LOST {key}: {why}")
    failed = True
for key, why in borderline:
    print(f"bench-gate: warn: borderline cell flipped unsolved {key}: {why}")

if ratios:
    geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    word = "FAIL" if geomean > limit else "ok"
    print(
        f"bench-gate: {word}: geomean time ratio {geomean:.3f} over "
        f"{len(ratios)} solved cells (limit {limit:.3f})"
    )
    if geomean > limit:
        failed = True
    total_limit = 1.0 + 2.0 * max_pct / 100.0
    total_ratio = cand_total / base_total if base_total > 0 else 1.0
    word = "FAIL" if total_ratio > total_limit else "ok"
    print(
        f"bench-gate: {word}: total time {cand_total:.2f}s vs baseline "
        f"{base_total:.2f}s (ratio {total_ratio:.3f}, limit {total_limit:.3f})"
    )
    if total_ratio > total_limit:
        failed = True
else:
    print("bench-gate: FAIL: no cell solved in both runs")
    failed = True

if newly_solved:
    print(f"bench-gate: {len(newly_solved)} newly solved cells (not gated)")

sys.exit(1 if failed else 0)
PYEOF
