#!/bin/sh
# Build the inprocessing before/after delta artifact.
#
#   sh scripts/bench_inproc_delta.sh BEFORE.json AFTER.json [OUT.json]
#
# BEFORE is a colib-bench-cells/1 sweep run with --no-inprocessing, AFTER
# the same sweep with the ladder on. The output (default BENCH_INPROC.json)
# pairs every cell — before/after time and solved status plus the ladder's
# per-cell counters — and closes with solved-count and geomean-speedup
# aggregates over the cells solved on both sides.
set -eu

BEFORE=${1:?usage: bench_inproc_delta.sh BEFORE.json AFTER.json [OUT.json]}
AFTER=${2:?usage: bench_inproc_delta.sh BEFORE.json AFTER.json [OUT.json]}
OUT=${3:-BENCH_INPROC.json}

exec python3 - "$BEFORE" "$AFTER" "$OUT" <<'PYEOF'
import json
import math
import sys

before_path, after_path, out_path = sys.argv[1], sys.argv[2], sys.argv[3]
TIME_FLOOR = 0.05  # seconds, same noise floor as bench_gate.sh


def load_cells(path):
    with open(path) as f:
        report = json.load(f)
    if report.get("schema") != "colib-bench-cells/1":
        sys.exit(f"inproc-delta: {path}: not a colib-bench-cells/1 report")
    return {c["key"]: c for c in report["cells"]}


before = load_cells(before_path)
after = load_cells(after_path)

cells, ratios = [], []
for key in sorted(set(before) | set(after)):
    b, a = before.get(key), after.get(key)
    cell = {"key": key}
    if b is not None:
        cell["before"] = {"time": b["time"], "solved": b["solved"]}
    if a is not None:
        cell["after"] = {"time": a["time"], "solved": a["solved"]}
        cell["inprocessing"] = {
            k: a.get(k, 0)
            for k in ("subsumed", "eliminated", "probed", "substituted")
        }
    if b is not None and a is not None and b["solved"] and a["solved"]:
        r = max(a["time"], TIME_FLOOR) / max(b["time"], TIME_FLOOR)
        cell["time_ratio"] = round(r, 4)
        ratios.append(r)
    cells.append(cell)

solved = lambda cs: sum(1 for c in cs.values() if c.get("solved"))
summary = {
    "cells": len(cells),
    "solved_before": solved(before),
    "solved_after": solved(after),
    "solved_both": len(ratios),
    "geomean_time_ratio": round(
        math.exp(sum(math.log(r) for r in ratios) / len(ratios)), 4
    )
    if ratios
    else None,
}

with open(out_path, "w") as f:
    json.dump(
        {"schema": "colib-bench-inproc/1", "summary": summary, "cells": cells},
        f,
        indent=1,
    )
    f.write("\n")

print(f"inproc-delta: wrote {out_path}: {json.dumps(summary)}")
PYEOF
