#!/bin/sh
# Smoke gate over the distributed-solve scaling report (DESIGN.md §17).
#
#   sh scripts/bench_dist_gate.sh BENCH_DIST.json
#
# The report is a colib-bench-dist/1 file written by bench/dist.exe: the
# 1/2/4-worker cube-and-conquer wall-time curve over hard UNSAT cells,
# with every verdict re-certified by the parent's own tree-proof replay.
# The gate fails (exit 1) when any of
#   - the file is missing, has the wrong schema, or has no cells,
#   - a cell is missing one of the 1/2/4 jobs points,
#   - a cell's verdict is not a certified "unsat" (a flipped verdict or a
#     tree proof that did not replay is a correctness bug, not noise), or
#   - the curve DEGRADES: the best parallel time (jobs 2 or 4) exceeds
#     the serial time by more than the slack factor. The slack reads the
#     report's "cores" field: on a 1-core box the workers serialize and
#     contention can only hurt, so a flat-to-2x curve is expected and
#     only a catastrophic slowdown fails; with 4+ cores parallel cubes
#     should genuinely help and the slack tightens.
# Times are floored at 0.5 s first so scheduler noise on the fast smoke
# cells (myciel4, queen5_5) cannot trip the curve check.
set -eu

REPORT=${1:?usage: bench_dist_gate.sh BENCH_DIST.json}

exec python3 - "$REPORT" <<'PYEOF'
import json
import sys

path = sys.argv[1]
TIME_FLOOR = 0.5  # seconds; absorbs scheduler noise on trivial cells
WANT_JOBS = [1, 2, 4]

try:
    with open(path) as f:
        report = json.load(f)
except OSError as e:
    sys.exit(f"bench-dist-gate: {path}: {e}")
except json.JSONDecodeError as e:
    sys.exit(f"bench-dist-gate: {path}: bad JSON: {e}")

if report.get("schema") != "colib-bench-dist/1":
    sys.exit(f"bench-dist-gate: {path}: not a colib-bench-dist/1 report")
cells = report.get("cells", [])
if not cells:
    sys.exit(f"bench-dist-gate: {path}: empty cell list")
cores = report.get("cores")
if not isinstance(cores, int) or cores < 1:
    sys.exit(f"bench-dist-gate: {path}: missing/invalid cores field")

slack = 1.75 if cores >= 4 else 2.0
failed = False
for cell in cells:
    name = f"{cell.get('instance', '?')} k={cell.get('k', '?')}"
    if cell.get("verdict") != "unsat" or not cell.get("certified"):
        print(
            f"bench-dist-gate: FAIL {name}: verdict "
            f"{cell.get('verdict')!r} certified={cell.get('certified')}"
        )
        failed = True
        continue
    times = {w.get("jobs"): w.get("time") for w in cell.get("workers", [])}
    missing = [j for j in WANT_JOBS if not isinstance(times.get(j), (int, float))]
    if missing:
        print(f"bench-dist-gate: FAIL {name}: missing jobs points {missing}")
        failed = True
        continue
    t1 = max(times[1], TIME_FLOOR)
    best_par = max(min(times[2], times[4]), TIME_FLOOR)
    ratio = best_par / t1
    word = "FAIL" if ratio > slack else "ok"
    print(
        f"bench-dist-gate: {word} {name}: serial {times[1]:.2f}s, "
        f"best parallel {min(times[2], times[4]):.2f}s "
        f"(ratio {ratio:.2f}, limit {slack:.2f} at {cores} cores)"
    )
    if ratio > slack:
        failed = True

sys.exit(1 if failed else 0)
PYEOF
