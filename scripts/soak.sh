#!/bin/sh
# Bounded randomized chaos soak for the coloring service (DESIGN.md §14,
# §17, §18).
#
# Runs the seeded fault schedule against a TWO-daemon fleet routed
# through the client balancer — client load, incremental-session actors
# (open/edit/query/duplicate-resend/close, some on leases short enough
# to lapse mid-script), daemon SIGKILLs on either member, fd pressure,
# injected ENOSPC/EIO/EMFILE, and in-process portfolio races with
# forged clause-share frames — and checks the service invariants at the
# end: every job ends exactly once (certified result or typed journaled
# failure), every session verdict is clean (certified answers, duplicate
# edits acked as replays, lease lapses surfacing as typed expiry — never
# a silent wrong answer), both journals replay, every forged-share race
# ends parent-certified, no orphan processes, no unbounded *.tmp growth.
#
#   sh scripts/soak.sh [SEEDS] [DURATION_SECONDS] [WORK_DIR]
#
# SEEDS is a space-separated list (default "1 2 3"); each seed runs its
# own schedule for DURATION seconds. The schedule is a pure function of
# the seed: re-run a failing seed with its WORK_DIR kept to replay the
# exact same fault sequence. On failure the work dir (journals, daemon
# logs, per-job verdicts) is left for forensics.
set -eu

SEEDS="${1:-1 2 3}"
DURATION="${2:-20}"
DIR="${3:-}"

dune build test/soak/soak.exe

for seed in $SEEDS; do
  if [ -n "$DIR" ]; then
    dune exec test/soak/soak.exe -- \
      --seed "$seed" --duration "$DURATION" --dir "$DIR.$seed"
  else
    dune exec test/soak/soak.exe -- \
      --seed "$seed" --duration "$DURATION"
  fi
done
