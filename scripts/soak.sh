#!/bin/sh
# Bounded randomized chaos soak for the coloring service (DESIGN.md §14).
#
# Runs the seeded fault schedule — client load, daemon SIGKILLs, fd
# pressure, injected ENOSPC/EIO/EMFILE — and checks the service
# invariants at the end: every job ends exactly once (certified result or
# typed journaled failure), the journal replays, no orphan processes, no
# unbounded *.tmp growth.
#
#   sh scripts/soak.sh [SEED] [DURATION_SECONDS] [WORK_DIR]
#
# The schedule is a pure function of SEED: re-run a failing seed with its
# WORK_DIR kept to replay the exact same fault sequence. On failure the
# work dir (journal, daemon log, per-job verdicts) is left for forensics.
set -eu

SEED="${1:-1}"
DURATION="${2:-60}"
DIR="${3:-}"

dune build test/soak/soak.exe

if [ -n "$DIR" ]; then
  exec dune exec test/soak/soak.exe -- \
    --seed "$SEED" --duration "$DURATION" --dir "$DIR"
else
  exec dune exec test/soak/soak.exe -- \
    --seed "$SEED" --duration "$DURATION"
fi
