#!/bin/sh
# Serve-path latency bench: drive concurrent clients through the frame
# protocol against the supervised daemon in three phases (warm pool +
# cache + mid-run SIGKILL + worker chaos; warm pool without cache; cold
# per-job forks) and write the schema-tagged summary to BENCH_SERVE.json.
#
# Run from the repo root after `dune build`:  sh scripts/serve_bench.sh
# Knobs: SEED, CLIENTS, REQUESTS, DISTINCT, KILLS, OUT.
set -eu

BENCH=${BENCH:-_build/default/bench/serve/serve_bench.exe}
SEED=${SEED:-1}
CLIENTS=${CLIENTS:-6}
REQUESTS=${REQUESTS:-25}
DISTINCT=${DISTINCT:-4}
KILLS=${KILLS:-1}
OUT=${OUT:-BENCH_SERVE.json}

if [ ! -x "$BENCH" ]; then
  echo "serve_bench.sh: $BENCH not built (run: dune build)" >&2
  exit 1
fi

"$BENCH" --seed "$SEED" --clients "$CLIENTS" --requests "$REQUESTS" \
  --distinct "$DISTINCT" --kills "$KILLS" --out "$OUT"

# the report must exist and carry measurements, or the bench failed
if [ ! -s "$OUT" ]; then
  echo "serve_bench.sh: $OUT missing or empty" >&2
  exit 1
fi
if ! grep -q '"ok": [1-9]' "$OUT"; then
  echo "serve_bench.sh: $OUT has no ok requests" >&2
  exit 1
fi
echo "serve_bench.sh: OK ($OUT)"
