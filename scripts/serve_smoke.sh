#!/bin/sh
# Crash-recovery smoke test for the coloring service: start the daemon,
# submit a job, kill -9 the daemon mid-solve, restart it, and verify that
# the client — retrying through the outage — still receives the certified
# answer, and that resubmitting the same job id afterwards is re-delivered
# from the journal instead of recomputed.
#
# Run from the repo root after `dune build`:  sh scripts/serve_smoke.sh
set -eu

COLOR=${COLOR:-_build/default/bin/color.exe}
GEN=${GEN:-_build/default/bin/gen.exe}
DIR=$(mktemp -d)
SRV=""
cleanup() {
  [ -n "$SRV" ] && kill -9 "$SRV" 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT INT TERM

SOCK="$DIR/s.sock"
JOURNAL="$DIR/serve.jsonl"
CKPT="$DIR/ckpt"

"$GEN" mycielski 3 -o "$DIR/m3.col" >/dev/null

"$COLOR" serve "$SOCK" --journal "$JOURNAL" --checkpoint-dir "$CKPT" \
  --hold 2 >"$DIR/d1.log" 2>&1 &
SRV=$!
i=0
while [ ! -S "$SOCK" ]; do
  i=$((i + 1))
  [ "$i" -gt 100 ] && { echo "FAIL: daemon never bound $SOCK"; exit 1; }
  sleep 0.1
done

"$COLOR" client "$DIR/m3.col" --socket "$SOCK" --job-id smoke-1 \
  --deadline 60 --retries 12 --backoff 0.2 --backoff-cap 1 \
  >"$DIR/client.out" 2>"$DIR/client.err" &
CLI=$!

# wait for the job to be journaled as running, then SIGKILL the daemon
i=0
until grep -q '"state":"running"' "$JOURNAL" 2>/dev/null; do
  i=$((i + 1))
  [ "$i" -gt 100 ] && { echo "FAIL: job never reached running"; exit 1; }
  sleep 0.1
done
kill -9 "$SRV"
wait "$SRV" 2>/dev/null || true
sleep 0.3

"$COLOR" serve "$SOCK" --journal "$JOURNAL" --checkpoint-dir "$CKPT" \
  >"$DIR/d2.log" 2>&1 &
SRV=$!

wait "$CLI" && CST=0 || CST=$?
if [ "$CST" -ne 0 ]; then
  echo "FAIL: client exited $CST"
  cat "$DIR/client.err"
  exit 1
fi
grep -q '^chromatic number: 4' "$DIR/client.out" \
  || { echo "FAIL: expected chromatic number 4"; cat "$DIR/client.out"; exit 1; }
grep -q 'certified: true' "$DIR/client.out" \
  || { echo "FAIL: answer not certified"; cat "$DIR/client.out"; exit 1; }

# idempotent re-delivery: same job id comes back from the journal
"$COLOR" client "$DIR/m3.col" --socket "$SOCK" --job-id smoke-1 \
  --deadline 60 >"$DIR/redeliver.out" 2>&1
grep -q "re-delivered from the daemon's journal" "$DIR/redeliver.out" \
  || { echo "FAIL: resubmit was not re-delivered"; cat "$DIR/redeliver.out"; exit 1; }

kill -TERM "$SRV"
wait "$SRV" && DST=0 || DST=$?
SRV=""
if [ "$DST" -ne 0 ]; then
  echo "FAIL: daemon did not drain cleanly (exit $DST)"
  exit 1
fi
echo "serve-smoke: kill -9 recovery + idempotent re-delivery OK"
