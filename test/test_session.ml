(* Incremental session tests: the assumption-guarded encoding answers a
   stream of edits and chromatic-number queries from ONE warm solver, and
   every answer is exactly what a from-scratch solve of the current graph
   yields — certified coloring at chi, RUP-checkable failed core at chi-1,
   and a full proof trace that replays through the independent checker.
   The differential gate drives random edit scripts (>= 50 edits across
   >= 5 graphs) against the cold reference pipeline. *)

module Graph = Colib_graph.Graph
module Session = Colib_session.Session
module Exact = Colib_core.Exact_coloring
module Certify = Colib_check.Certify
module Types = Colib_solver.Types

let check = Alcotest.check

let cap ?(v = 8) ?(c = 8) ?(e = 28) () =
  { Session.max_vertices = v; max_colors = c; max_edges = e }

let apply_ok s e =
  match Session.apply s e with
  | Ok () -> ()
  | Error m ->
    Alcotest.fail
      (Printf.sprintf "apply %s: %s" (Session.edit_to_string e) m)

let query_ok ?budget s =
  match Session.query ?budget s with
  | Ok a -> a
  | Error m -> Alcotest.fail ("query: " ^ m)

(* certify an answer locally, against our own independent graph *)
let certify_against g (a : Session.answer) =
  check Alcotest.bool "session self-certified" true a.Session.certified;
  check Alcotest.bool "core literals were assumptions" true a.Session.core_ok;
  let coloring = Array.sub a.Session.coloring 0 (Graph.num_vertices g) in
  check Alcotest.bool "coloring verifies locally" true
    (Certify.coloring g ~k:a.Session.chi ~claimed:a.Session.chi coloring
    = Ok ())

(* ---------- basics: chi tracks edits in both directions ---------- *)

let test_chi_tracks_edits () =
  let s = Session.create (cap ()) in
  for _ = 1 to 4 do
    apply_ok s Session.Add_vertex
  done;
  List.iter
    (fun (u, v) -> apply_ok s (Session.Add_edge (u, v)))
    [ (0, 1); (0, 2); (1, 2) ];
  let a = query_ok s in
  check Alcotest.int "triangle: chi 3" 3 a.Session.chi;
  check Alcotest.bool "first query is cold" false a.Session.incremental;
  certify_against (Session.graph s) a;
  (* complete to K4: chi grows *)
  List.iter
    (fun (u, v) -> apply_ok s (Session.Add_edge (u, v)))
    [ (0, 3); (1, 3); (2, 3) ];
  let a = query_ok s in
  check Alcotest.int "K4: chi 4" 4 a.Session.chi;
  check Alcotest.bool "second query is warm" true a.Session.incremental;
  certify_against (Session.graph s) a;
  (* remove enough to leave a path: chi shrinks to 2, and the removed
     edges' clauses are merely deactivated, never deleted *)
  List.iter
    (fun (u, v) -> apply_ok s (Session.Remove_edge (u, v)))
    [ (1, 2); (0, 2); (0, 3); (1, 3) ];
  let a = query_ok s in
  check Alcotest.int "path: chi 2" 2 a.Session.chi;
  certify_against (Session.graph s) a;
  (* re-adding removed edges is reactivation, not re-encoding *)
  let d = Session.digest s in
  apply_ok s (Session.Add_edge (1, 2));
  apply_ok s (Session.Add_edge (0, 2));
  check Alcotest.string "re-add does not grow the formula" d
    (Session.digest s);
  let a = query_ok s in
  check Alcotest.int "triangle again: chi 3" 3 a.Session.chi;
  certify_against (Session.graph s) a;
  (* the whole accumulated trace replays through the independent checker *)
  match Session.check_proof s with
  | Ok n -> check Alcotest.bool "proof has steps" true (n > 0)
  | Error m -> Alcotest.fail ("proof replay: " ^ m)

let test_edit_validation () =
  let s =
    Session.create { Session.max_vertices = 2; max_colors = 2; max_edges = 1 }
  in
  apply_ok s Session.Add_vertex;
  (* inactive endpoint *)
  (match Session.apply s (Session.Add_edge (0, 1)) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "edge to an inactive vertex must be rejected");
  apply_ok s Session.Add_vertex;
  (* capacity exhaustion leaves the session unchanged *)
  (match Session.apply s Session.Add_vertex with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "vertex capacity must be enforced");
  apply_ok s (Session.Add_edge (0, 1));
  check Alcotest.int "1 edge" 1 (Session.num_edges s);
  (* idempotent re-add consumes no new slot *)
  apply_ok s (Session.Add_edge (1, 0));
  check Alcotest.int "still 1 edge" 1 (Session.num_edges s);
  (* removing an absent edge is a no-op, not an error *)
  apply_ok s (Session.Remove_edge (0, 1));
  apply_ok s (Session.Remove_edge (0, 1));
  check Alcotest.int "0 edges" 0 (Session.num_edges s)

let test_wire_roundtrip () =
  List.iter
    (fun e ->
      match Session.edit_of_string (Session.edit_to_string e) with
      | Ok e' -> check Alcotest.bool "edit roundtrips" true (e = e')
      | Error m -> Alcotest.fail m)
    [ Session.Add_vertex; Session.Add_edge (3, 7); Session.Remove_edge (0, 1) ];
  match Session.edit_of_string "frobnicate 1 2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage edit must be rejected"

(* ---------- the differential gate ----------

   Random edit scripts, >= 5 graphs x >= 12 edits each. After every few
   edits: the session's incremental chi must equal the chromatic number of
   a from-scratch solve of the same graph through the cold pipeline
   (Exact_coloring), both certified. At the end of each script the
   session's full proof trace replays through the RUP checker. *)

let random_script rng n_vertices n_edits =
  (* start with all vertices active so edges are always legal *)
  let edits = ref [] in
  let present = Hashtbl.create 16 in
  for _ = 1 to n_edits do
    let u = Random.State.int rng n_vertices in
    let v = Random.State.int rng n_vertices in
    if u <> v then begin
      let key = (min u v, max u v) in
      if Hashtbl.mem present key && Random.State.bool rng then begin
        Hashtbl.remove present key;
        edits := Session.Remove_edge (fst key, snd key) :: !edits
      end
      else begin
        Hashtbl.replace present key ();
        edits := Session.Add_edge (fst key, snd key) :: !edits
      end
    end
  done;
  List.rev !edits

let reference_chi g =
  if Graph.num_vertices g = 0 || Graph.num_edges g = 0 then
    if Graph.num_vertices g = 0 then 0
    else if Graph.num_vertices g > 0 && Graph.num_edges g = 0 then 1
    else 0
  else
    let a = Exact.chromatic_number ~timeout:30.0 g in
    match a.Exact.chromatic with
    | Some chi -> chi
    | None -> Alcotest.fail "reference solve must settle these tiny graphs"

let test_differential () =
  let n = 7 in
  let total_edits = ref 0 in
  for seed = 0 to 4 do
    let rng = Random.State.make [| 0xd1f; seed |] in
    let s = Session.create (cap ~v:n ~c:n ~e:(n * (n - 1) / 2) ()) in
    for _ = 1 to n do
      apply_ok s Session.Add_vertex
    done;
    let script = random_script rng n 14 in
    List.iteri
      (fun i e ->
        apply_ok s e;
        incr total_edits;
        if (i + 1) mod 4 = 0 then begin
          let a = query_ok s in
          let g = Session.graph s in
          certify_against g a;
          check Alcotest.int
            (Printf.sprintf "seed %d edit %d: incremental chi = cold chi"
               seed (i + 1))
            (reference_chi g) a.Session.chi
        end)
      script;
    (* final state too, plus the independent full-trace replay *)
    let a = query_ok s in
    let g = Session.graph s in
    certify_against g a;
    check Alcotest.int
      (Printf.sprintf "seed %d final: incremental chi = cold chi" seed)
      (reference_chi g) a.Session.chi;
    match Session.check_proof s with
    | Ok _ -> ()
    | Error m -> Alcotest.fail (Printf.sprintf "seed %d proof: %s" seed m)
  done;
  check Alcotest.bool
    (Printf.sprintf "gate covered enough edits (%d)" !total_edits)
    true
    (!total_edits >= 50)

(* ---------- empty and near-empty graphs ---------- *)

let test_degenerate_graphs () =
  let s = Session.create (cap ()) in
  let a = query_ok s in
  check Alcotest.int "empty graph: chi 0" 0 a.Session.chi;
  check Alcotest.bool "nothing to refute" true (a.Session.core = []);
  apply_ok s Session.Add_vertex;
  let a = query_ok s in
  check Alcotest.int "one vertex: chi 1" 1 a.Session.chi;
  certify_against (Session.graph s) a

(* ---------- warm capture / restore (the checkpoint payload) ---------- *)

let test_capture_restore () =
  let s = Session.create (cap ()) in
  for _ = 1 to 5 do
    apply_ok s Session.Add_vertex
  done;
  List.iter
    (fun (u, v) -> apply_ok s (Session.Add_edge (u, v)))
    [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0); (0, 2) ];
  let a1 = query_ok s in
  let saved, proof = Session.capture s in
  (* a twin that replayed the same edit history accepts the warm state *)
  let s2 = Session.create (cap ()) in
  for _ = 1 to 5 do
    apply_ok s2 Session.Add_vertex
  done;
  List.iter
    (fun (u, v) -> apply_ok s2 (Session.Add_edge (u, v)))
    [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0); (0, 2) ];
  check Alcotest.string "twin digests agree" (Session.digest s)
    (Session.digest s2);
  (match Session.restore_warm s2 saved proof with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("restore: " ^ m));
  let a2 = query_ok s2 in
  check Alcotest.int "restored session agrees" a1.Session.chi a2.Session.chi;
  certify_against (Session.graph s2) a2;
  (* the restored session keeps editing and proving correctly *)
  apply_ok s2 (Session.Add_edge (1, 3));
  let a3 = query_ok s2 in
  certify_against (Session.graph s2) a3;
  match Session.check_proof s2 with
  | Ok _ -> ()
  | Error m -> Alcotest.fail ("post-restore proof replay: " ^ m)

let () =
  Alcotest.run "session"
    [
      ( "incremental",
        [
          Alcotest.test_case "chi tracks edits" `Quick test_chi_tracks_edits;
          Alcotest.test_case "edit validation" `Quick test_edit_validation;
          Alcotest.test_case "edit wire form" `Quick test_wire_roundtrip;
          Alcotest.test_case "degenerate graphs" `Quick
            test_degenerate_graphs;
        ] );
      ( "differential",
        [ Alcotest.test_case "incremental = from-scratch" `Slow
            test_differential ] );
      ( "warm state",
        [ Alcotest.test_case "capture/restore" `Quick test_capture_restore ]
      );
    ]
