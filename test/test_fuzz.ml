(* Seeded differential fuzzing: the full proof-logging solver stack vs
   brute-force oracles.

   Two generators feed the harness:
   - random graphs (3–7 vertices), solved through the complete Flow
     pipeline — encoding, every instance-independent SBP construction in
     rotation, sometimes instance-dependent lex-leader SBPs, every engine
     in rotation — and compared against [Brute.chromatic_number] on both
     sides of the threshold (k = chi must be Optimal chi, k = chi - 1 must
     be No_coloring);
   - random PB formulas (3–9 variables, clauses + PB constraints + an
     optional objective), solved by every engine in rotation and compared
     against a 2^n truth-table oracle for both satisfiability and the exact
     optimum.

   Every settled answer is replayed through the independent RUP checker
   (the proof half of the differential test), and every coloring through
   the solution certifier. A failure prints the reproducer seed so the
   exact instance can be regenerated in isolation.

   The round count comes from COLIB_FUZZ (default 220, which keeps the
   whole suite inside the quick-test budget); `make fuzz` raises it. *)

module Graph = Colib_graph.Graph
module Generators = Colib_graph.Generators
module Brute = Colib_graph.Brute
module Prng = Colib_graph.Prng
module Lit = Colib_sat.Lit
module Formula = Colib_sat.Formula
module Proof = Colib_sat.Proof
module Sbp = Colib_encode.Sbp
module Types = Colib_solver.Types
module Engine = Colib_solver.Engine
module Optimize = Colib_solver.Optimize
module Checkpoint = Colib_solver.Checkpoint
module Output = Colib_sat.Output
module Rup = Colib_check.Rup
module Flow = Colib_core.Flow

let fuzz_count () =
  match Sys.getenv_opt "COLIB_FUZZ" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n > 0 -> n
    | _ -> 220)
  | None -> 220

let engines = [| Types.Pbs2; Types.Galena; Types.Pueblo; Types.Cplex;
                 Types.Pbs1 |]

let sbps = Array.of_list Sbp.all

let outcome_name = function
  | Flow.Optimal c -> Printf.sprintf "Optimal %d" c
  | Flow.Best c -> Printf.sprintf "Best %d" c
  | Flow.No_coloring -> "No_coloring"
  | Flow.Timed_out -> "Timed_out"

(* ---------- graph-side differential rounds ---------- *)

let replay_flow_proof ~fail g cfg (r : Flow.result) expected_claim =
  match r.Flow.proof with
  | None -> fail "engine settled the instance but produced no proof bundle"
  | Some b ->
    if b.Flow.proof_claim <> expected_claim then
      fail "proof claim does not match the outcome";
    (* replay against an independently rebuilt formula, never the solver's *)
    let f = Flow.encoded_formula g cfg in
    (match
       Rup.check_claim f b.Flow.proof_claim (Proof.steps b.Flow.proof_trace)
     with
    | Ok _ -> ()
    | Error fl ->
      fail
        (Printf.sprintf "proof replay rejected: %s" (Rup.failure_to_string fl)))

let graph_round i =
  let seed = 0xC0110 + i in
  let p = Prng.create seed in
  let n = 3 + Prng.int p 5 in
  let m = 1 + Prng.int p (n * (n - 1) / 2) in
  let g = Generators.gnm ~n ~m ~seed:(Prng.int p 1_000_000) in
  let engine = engines.(i mod Array.length engines) in
  let sbp = sbps.(i mod Array.length sbps) in
  let isd = Prng.bool p 0.3 in
  let chi = Brute.chromatic_number g in
  let fail msg =
    Alcotest.failf
      "graph fuzz seed %d (n=%d m=%d engine=%s sbp=%s isd=%b chi=%d): %s"
      seed n m (Types.engine_name engine) (Sbp.name sbp) isd chi msg
  in
  let config k =
    Flow.config ~engine ~sbp ~instance_dependent:isd ~sym_node_budget:20_000
      ~timeout:20.0 ~fallback:[] ~proof:true ~k ()
  in
  (* feasible side: at k = chi the stack must prove the brute optimum *)
  let cfg = config chi in
  let r = Flow.run g cfg in
  (match r.Flow.outcome with
  | Flow.Optimal c when c = chi -> ()
  | o ->
    fail
      (Printf.sprintf "expected Optimal %d, got %s" chi (outcome_name o)));
  (match r.Flow.certificate with
  | Some (Ok ()) -> ()
  | Some (Error fl) ->
    fail
      (Printf.sprintf "coloring certificate rejected: %s"
         (Flow.Certify.failure_to_string fl))
  | None -> fail "optimal answer returned no coloring certificate");
  replay_flow_proof ~fail g cfg r (Proof.Optimal_claim chi);
  (* infeasible side: at k = chi - 1 the stack must refute, with proof *)
  if chi > 1 then begin
    let cfg = config (chi - 1) in
    let r = Flow.run g cfg in
    (match r.Flow.outcome with
    | Flow.No_coloring -> ()
    | o ->
      fail
        (Printf.sprintf "expected No_coloring at k=%d, got %s" (chi - 1)
           (outcome_name o)));
    replay_flow_proof ~fail g cfg r Proof.Unsat_claim
  end

(* ---------- formula-side differential rounds ---------- *)

let random_formula p =
  let nv = 3 + Prng.int p 7 in
  let f = Formula.create () in
  let vars = Formula.fresh_vars f nv in
  let rand_lit () =
    let v = vars.(Prng.int p nv) in
    if Prng.bool p 0.5 then Lit.pos v else Lit.neg v
  in
  let nclauses = Prng.int p (2 * nv) in
  for _ = 1 to nclauses do
    let w = 1 + Prng.int p 3 in
    Formula.add_clause f (List.init w (fun _ -> rand_lit ()))
  done;
  let npbs = Prng.int p 3 in
  for _ = 1 to npbs do
    let w = 1 + Prng.int p 4 in
    let terms = List.init w (fun _ -> (1 + Prng.int p 3, rand_lit ())) in
    let total = List.fold_left (fun a (c, _) -> a + c) 0 terms in
    let bound = Prng.int p (total + 2) in
    if Prng.bool p 0.5 then Formula.add_pb_ge f terms bound
    else Formula.add_pb_le f terms bound
  done;
  if Prng.bool p 0.6 then
    Formula.set_objective_min f
      (List.init (1 + Prng.int p nv) (fun _ -> (1 + Prng.int p 3, rand_lit ())));
  f

(* exhaustive 2^n oracle: satisfiability and, when an objective is present,
   the exact minimal objective value over all models *)
let truth_table_oracle f =
  let nv = Formula.num_vars f in
  let sat = ref false and best = ref None in
  for mask = 0 to (1 lsl nv) - 1 do
    let value l =
      let b = (mask lsr Lit.var l) land 1 = 1 in
      if Lit.sign l then b else not b
    in
    if Formula.check_model f value then begin
      sat := true;
      if Formula.objective f <> None then begin
        let c = Formula.objective_value f value in
        match !best with Some b when b <= c -> () | _ -> best := Some c
      end
    end
  done;
  (!sat, !best)

let formula_round i =
  let seed = 0xF00D0 + i in
  let p = Prng.create seed in
  let f = random_formula p in
  let engine = engines.(i mod Array.length engines) in
  let fail msg =
    Alcotest.failf "formula fuzz seed %d (engine=%s, %d vars): %s" seed
      (Types.engine_name engine) (Formula.num_vars f) msg
  in
  let oracle_sat, oracle_best = truth_table_oracle f in
  let trace = Proof.create () in
  let replay claim =
    match Rup.check_claim f claim (Proof.steps trace) with
    | Ok _ -> ()
    | Error fl ->
      fail
        (Printf.sprintf "proof replay rejected: %s" (Rup.failure_to_string fl))
  in
  match
    Optimize.solve_formula ~proof:trace engine f (Types.within_seconds 20.0)
  with
  | Optimize.Optimal (m, c) -> (
    if not oracle_sat then
      fail "engine found a model of an oracle-unsatisfiable formula";
    let value l = if Lit.sign l then m.(Lit.var l) else not m.(Lit.var l) in
    if not (Formula.check_model f value) then
      fail "returned model violates the formula";
    match Formula.objective f with
    | Some _ ->
      (match oracle_best with
      | Some b when b <> c ->
        fail (Printf.sprintf "engine optimum %d but oracle optimum %d" c b)
      | _ -> ());
      replay (Proof.Optimal_claim c)
    | None -> ())
  | Optimize.Unsatisfiable ->
    if oracle_sat then fail "engine claims UNSAT but the oracle has a model";
    replay Proof.Unsat_claim
  | Optimize.Satisfiable _ | Optimize.Timeout _ ->
    fail "engine failed to settle a tiny instance within its budget"

(* ---------- inprocessing differential rounds ---------- *)

(* Differential test of the inprocessing ladder: the same seeded instance
   solved with the ladder enabled and with it disabled must agree with
   each other and with the brute-force oracle on the chromatic number, on
   both sides of the threshold, across every SBP construction and engine
   in rotation. Proof logging stays on so both variants also replay
   through the independent RUP checker — the off-variant exercises the
   plain trace, the on-variant the Substitute/Eliminate-bearing one. *)
let inproc_round i =
  let seed = 0x1A9C0 + i in
  let p = Prng.create seed in
  let n = 3 + Prng.int p 5 in
  let m = 1 + Prng.int p (n * (n - 1) / 2) in
  let g = Generators.gnm ~n ~m ~seed:(Prng.int p 1_000_000) in
  let engine = engines.(i mod Array.length engines) in
  let sbp = sbps.(i mod Array.length sbps) in
  let isd = Prng.bool p 0.3 in
  let chi = Brute.chromatic_number g in
  let run ~inprocessing k =
    let fail msg =
      Alcotest.failf
        "inprocessing fuzz seed %d (n=%d m=%d engine=%s sbp=%s isd=%b chi=%d \
         inprocessing=%b k=%d): %s"
        seed n m (Types.engine_name engine) (Sbp.name sbp) isd chi
        inprocessing k msg
    in
    let cfg =
      Flow.config ~engine ~sbp ~instance_dependent:isd ~sym_node_budget:20_000
        ~timeout:20.0 ~fallback:[] ~proof:true ~inprocessing ~k ()
    in
    let r = Flow.run g cfg in
    (match r.Flow.certificate with
    | Some (Error fl) ->
      fail
        (Printf.sprintf "coloring certificate rejected: %s"
           (Flow.Certify.failure_to_string fl))
    | Some (Ok ()) | None -> ());
    (match r.Flow.outcome with
    | Flow.Optimal c -> replay_flow_proof ~fail g cfg r (Proof.Optimal_claim c)
    | Flow.No_coloring -> replay_flow_proof ~fail g cfg r Proof.Unsat_claim
    | Flow.Best _ | Flow.Timed_out ->
      fail "failed to settle a tiny instance within its budget");
    (r.Flow.outcome, fail)
  in
  let check k expected =
    List.iter
      (fun inprocessing ->
        let outcome, fail = run ~inprocessing k in
        if outcome <> expected then
          fail
            (Printf.sprintf "expected %s, got %s" (outcome_name expected)
               (outcome_name outcome)))
      [ true; false ]
  in
  (* feasible side: both variants must prove the brute optimum *)
  check chi (Flow.Optimal chi);
  (* infeasible side: both variants must refute one color below it *)
  if chi > 1 then check (chi - 1) Flow.No_coloring

(* ---------- resume-determinism rounds ---------- *)

(* The checkpoint contract under fuzzing: interrupt a random formula's
   optimization at a random conflict count, snapshot the engine through
   the real on-disk format (write + read + validate, not just in-memory
   capture/restore), then resume twice. Both resumed runs must take the
   same path (identical outcome and statistics — the snapshot restores
   the whole logical search state) and agree with an uninterrupted
   reference run on the answer: same optimum, same satisfiability. *)
let resume_round i =
  let seed = 0x5E5E0 + i in
  let p = Prng.create seed in
  let f = random_formula p in
  let engine = engines.(i mod Array.length engines) in
  let fail msg =
    Alcotest.failf "resume fuzz seed %d (engine=%s, %d vars): %s" seed
      (Types.engine_name engine) (Formula.num_vars f) msg
  in
  let obj = match Formula.objective f with Some o -> o | None -> [] in
  let fresh () =
    let eng = Engine.create engine (Formula.num_vars f) in
    Engine.add_formula eng f;
    eng
  in
  (* uninterrupted reference *)
  let reference = Optimize.solve_formula engine f (Types.within_seconds 20.0) in
  (* interrupted run: stop after a random number of conflicts *)
  let eng0 = fresh () in
  let cap = 1 + Prng.int p 30 in
  let r0 =
    Optimize.minimize eng0 obj { Types.no_budget with max_conflicts = Some cap }
  in
  let incumbent =
    match r0 with
    | Optimize.Optimal (m, c) | Optimize.Satisfiable (m, c, _) ->
      Some (Array.copy m, c)
    | Optimize.Unsatisfiable | Optimize.Timeout _ -> None
  in
  (* snapshot through the real serialization layer *)
  let digest = Digest.to_hex (Digest.string (Output.opb_string f)) in
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "colib_fuzz_resume_%d_%d.ckpt" (Unix.getpid ()) seed)
  in
  Checkpoint.write path
    {
      Checkpoint.sn_label = "fuzz";
      sn_k = 0;
      sn_digest = digest;
      sn_incumbent = incumbent;
      sn_engine = Engine.capture eng0;
      sn_proof = [];
      sn_prng = Some (Prng.state p);
    };
  let sn =
    match Checkpoint.read path with
    | Ok sn -> sn
    | Error e -> fail (Checkpoint.read_error_to_string e)
  in
  Sys.remove path;
  (match
     Checkpoint.validate sn ~label:"fuzz" ~k:0 ~digest ~engine
       ~nvars:(Formula.num_vars f)
   with
  | Ok () -> ()
  | Error msg -> fail (Printf.sprintf "snapshot failed validation: %s" msg));
  let resumed () =
    let eng = fresh () in
    let r =
      Optimize.minimize ~resume:sn eng obj (Types.within_seconds 20.0)
    in
    let s = Engine.stats eng in
    (r, (s.Types.conflicts, s.Types.decisions, s.Types.propagations,
         s.Types.learned, s.Types.restarts, s.Types.removed))
  in
  let r1, s1 = resumed () in
  let r2, s2 = resumed () in
  if s1 <> s2 then fail "two resumes of one snapshot diverged in statistics";
  (match (r1, r2) with
  | Optimize.Optimal (_, c1), Optimize.Optimal (_, c2) ->
    if c1 <> c2 then fail "two resumes of one snapshot found different optima"
  | Optimize.Unsatisfiable, Optimize.Unsatisfiable -> ()
  | (Optimize.Satisfiable _ | Optimize.Timeout _), _
  | _, (Optimize.Satisfiable _ | Optimize.Timeout _) ->
    fail "resumed run failed to settle a tiny instance"
  | _, _ -> fail "two resumes of one snapshot settled differently");
  (* the resumed answer equals the uninterrupted one *)
  match (reference, r1) with
  | Optimize.Optimal (_, cr), Optimize.Optimal (_, c1) ->
    if Formula.objective f <> None && cr <> c1 then
      fail
        (Printf.sprintf "resumed optimum %d but uninterrupted optimum %d" c1 cr)
  | Optimize.Unsatisfiable, Optimize.Unsatisfiable -> ()
  | (Optimize.Satisfiable _ | Optimize.Timeout _), _ ->
    fail "reference failed to settle a tiny instance"
  | _, _ -> fail "resumed run disagrees with the uninterrupted run"

(* ---------- harness ---------- *)

let test_graph_differential () =
  let rounds = (fuzz_count () + 1) / 2 in
  for i = 0 to rounds - 1 do
    graph_round i
  done

let test_formula_differential () =
  let rounds = fuzz_count () / 2 in
  for i = 0 to rounds - 1 do
    formula_round i
  done

let test_inproc_differential () =
  let rounds = (fuzz_count () + 5) / 6 in
  for i = 0 to rounds - 1 do
    inproc_round i
  done

let test_resume_determinism () =
  let rounds = (fuzz_count () + 3) / 4 in
  for i = 0 to rounds - 1 do
    resume_round i
  done

let () =
  Alcotest.run "fuzz"
    [
      ( "differential",
        [
          Alcotest.test_case
            (Printf.sprintf "graphs vs brute oracle (%d rounds)"
               ((fuzz_count () + 1) / 2))
            `Quick test_graph_differential;
          Alcotest.test_case
            (Printf.sprintf "formulas vs truth-table oracle (%d rounds)"
               (fuzz_count () / 2))
            `Quick test_formula_differential;
          Alcotest.test_case
            (Printf.sprintf "inprocessing on vs off vs brute oracle (%d rounds)"
               ((fuzz_count () + 5) / 6))
            `Quick test_inproc_differential;
          Alcotest.test_case
            (Printf.sprintf "checkpoint resume determinism (%d rounds)"
               ((fuzz_count () + 3) / 4))
            `Quick test_resume_determinism;
        ] );
    ]
