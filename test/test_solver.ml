(* Tests for the 0-1 ILP solver substrate: containers, the CDCL and B&B
   engines (against a brute-force oracle), and the optimization loop. *)

module Lit = Colib_sat.Lit
module Formula = Colib_sat.Formula
module Pbc = Colib_sat.Pbc
module Vec = Colib_solver.Vec
module Var_heap = Colib_solver.Var_heap
module Types = Colib_solver.Types
module Engine = Colib_solver.Engine
module Optimize = Colib_solver.Optimize

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let budget = Types.within_seconds 20.0
let engines = [ Types.Pbs2; Types.Galena; Types.Pueblo; Types.Cplex; Types.Pbs1 ]

(* ---------- vec ---------- *)

let test_vec_basic () =
  let v = Vec.create ~dummy:0 () in
  for i = 0 to 99 do
    Vec.push v i
  done;
  check Alcotest.int "size" 100 (Vec.size v);
  check Alcotest.int "get" 42 (Vec.get v 42);
  Vec.set v 42 (-1);
  check Alcotest.int "set" (-1) (Vec.get v 42);
  check Alcotest.int "pop" 99 (Vec.pop v);
  check Alcotest.int "last" 98 (Vec.last v);
  Vec.shrink v 10;
  check Alcotest.int "shrink" 10 (Vec.size v);
  Vec.filter_in_place (fun x -> x mod 2 = 0) v;
  check Alcotest.int "filter" 5 (Vec.size v);
  Vec.clear v;
  check Alcotest.int "clear" 0 (Vec.size v)

let test_vec_bounds () =
  let v = Vec.create ~dummy:0 () in
  Vec.push v 1;
  check Alcotest.bool "get oob" true
    (try
       ignore (Vec.get v 1);
       false
     with Invalid_argument _ -> true);
  check Alcotest.bool "pop empty" true
    (try
       ignore (Vec.pop v);
       ignore (Vec.pop v);
       false
     with Invalid_argument _ -> true)

let test_vec_sort () =
  let v = Vec.create ~dummy:0 () in
  List.iter (Vec.push v) [ 3; 1; 4; 1; 5; 9; 2; 6 ];
  Vec.sort_in_place Int.compare v;
  check (Alcotest.list Alcotest.int) "sorted" [ 1; 1; 2; 3; 4; 5; 6; 9 ]
    (Vec.to_list v)

(* ---------- heap ---------- *)

let test_heap_ordering () =
  let h = Var_heap.create 10 in
  List.iteri (fun i v -> Var_heap.bump h i (float_of_int v))
    [ 5; 3; 8; 1; 9; 2; 7; 0; 4; 6 ];
  let popped = List.init 10 (fun _ -> Var_heap.pop_max h) in
  check (Alcotest.list Alcotest.int) "by activity desc"
    [ 4; 2; 6; 9; 0; 8; 1; 5; 3; 7 ] popped;
  check Alcotest.bool "empty" true (Var_heap.is_empty h)

let test_heap_reinsert () =
  let h = Var_heap.create 3 in
  Var_heap.bump h 1 10.0;
  let v = Var_heap.pop_max h in
  check Alcotest.int "max" 1 v;
  check Alcotest.bool "gone" false (Var_heap.mem h 1);
  Var_heap.insert h 1;
  check Alcotest.bool "back" true (Var_heap.mem h 1);
  check Alcotest.int "still max" 1 (Var_heap.pop_max h)

(* ---------- engines: crafted cases ---------- *)

let unit_and_implications engine =
  let f = Formula.create () in
  let a = Formula.fresh_var f and b = Formula.fresh_var f
  and c = Formula.fresh_var f in
  Formula.add_clause f [ Lit.pos a ];
  Formula.add_clause f [ Lit.neg a; Lit.pos b ];
  Formula.add_clause f [ Lit.neg b; Lit.pos c ];
  let eng = Engine.create engine 3 in
  Engine.add_formula eng f;
  match Engine.solve eng budget with
  | Types.Sat m ->
    check Alcotest.bool "a" true m.(a);
    check Alcotest.bool "b" true m.(b);
    check Alcotest.bool "c" true m.(c)
  | _ -> Alcotest.fail "expected SAT"

let test_units () = List.iter unit_and_implications engines

let conflict_case engine =
  let f = Formula.create () in
  let a = Formula.fresh_var f and b = Formula.fresh_var f in
  Formula.add_clause f [ Lit.pos a; Lit.pos b ];
  Formula.add_clause f [ Lit.pos a; Lit.neg b ];
  Formula.add_clause f [ Lit.neg a; Lit.pos b ];
  Formula.add_clause f [ Lit.neg a; Lit.neg b ];
  let eng = Engine.create engine 2 in
  Engine.add_formula eng f;
  match Engine.solve eng budget with
  | Types.Unsat -> ()
  | _ -> Alcotest.fail "expected UNSAT"

let test_conflict () = List.iter conflict_case engines

let pigeonhole n =
  let f = Formula.create () in
  let x = Array.init (n + 1) (fun _ -> Formula.fresh_vars f n) in
  Array.iter
    (fun row -> Formula.add_clause f (Array.to_list (Array.map Lit.pos row)))
    x;
  for h = 0 to n - 1 do
    for p1 = 0 to n do
      for p2 = p1 + 1 to n do
        Formula.add_clause f [ Lit.neg x.(p1).(h); Lit.neg x.(p2).(h) ]
      done
    done
  done;
  f

let test_pigeonhole_unsat () =
  List.iter
    (fun engine ->
      let eng = Engine.create engine (Formula.num_vars (pigeonhole 5)) in
      Engine.add_formula eng (pigeonhole 5);
      match Engine.solve eng budget with
      | Types.Unsat -> ()
      | _ -> Alcotest.fail (Types.engine_name engine ^ ": php(5) must be UNSAT"))
    engines

let test_pb_propagation () =
  (* 2a + b + c >= 2 with a=false forces b and c *)
  let f = Formula.create () in
  let a = Formula.fresh_var f and b = Formula.fresh_var f
  and c = Formula.fresh_var f in
  Formula.add_pb_ge f [ (2, Lit.pos a); (1, Lit.pos b); (1, Lit.pos c) ] 2;
  Formula.add_clause f [ Lit.neg a ];
  let eng = Engine.create Types.Pbs2 3 in
  Engine.add_formula eng f;
  match Engine.solve eng budget with
  | Types.Sat m ->
    check Alcotest.bool "b forced" true m.(b);
    check Alcotest.bool "c forced" true m.(c)
  | _ -> Alcotest.fail "expected SAT"

let test_pb_conflict_unsat () =
  (* x+y+z >= 2 and at-most-one is UNSAT *)
  let f = Formula.create () in
  let xs = Formula.fresh_vars f 3 in
  let lits = Array.to_list (Array.map Lit.pos xs) in
  Formula.add_pb f (Pbc.at_least 2 lits);
  Formula.add_pb f (Pbc.at_most 1 lits);
  List.iter
    (fun engine ->
      let eng = Engine.create engine 3 in
      Engine.add_formula eng f;
      match Engine.solve eng budget with
      | Types.Unsat -> ()
      | _ -> Alcotest.fail "expected UNSAT")
    engines

let test_pb_tight_slack () =
  (* 3a + 2b + 2c >= 5: the full slack is 2, so a (coefficient 3 > 2) is
     forced immediately at the root, and afterwards at least one of b, c *)
  let f = Formula.create () in
  let a = Formula.fresh_var f and b = Formula.fresh_var f
  and c = Formula.fresh_var f in
  Formula.add_pb_ge f
    [ (3, Lit.pos a); (2, Lit.pos b); (2, Lit.pos c) ]
    5;
  let eng = Engine.create Types.Pbs2 3 in
  Engine.add_formula eng f;
  (match Engine.solve eng budget with
  | Types.Sat m ->
    check Alcotest.bool "a forced in any model" true m.(a);
    check Alcotest.bool "b or c" true (m.(b) || m.(c))
  | _ -> Alcotest.fail "expected SAT");
  (* and with ~a asserted the instance is UNSAT *)
  let eng2 = Engine.create Types.Pbs2 3 in
  Engine.add_formula eng2 f;
  Engine.add_clause eng2 [ Lit.neg a ];
  match Engine.solve eng2 budget with
  | Types.Unsat -> ()
  | _ -> Alcotest.fail "expected UNSAT with ~a"

let test_incremental_solving () =
  let f = Formula.create () in
  let xs = Formula.fresh_vars f 4 in
  Formula.add_clause f (Array.to_list (Array.map Lit.pos xs));
  let eng = Engine.create Types.Pbs2 4 in
  Engine.add_formula eng f;
  (match Engine.solve eng budget with
  | Types.Sat _ -> ()
  | _ -> Alcotest.fail "sat 1");
  (* forbid everything step by step *)
  Array.iter (fun v -> Engine.add_clause eng [ Lit.neg v ]) xs;
  match Engine.solve eng budget with
  | Types.Unsat -> ()
  | _ -> Alcotest.fail "expected UNSAT after strengthening"

let test_zero_budget_unknown () =
  let f = pigeonhole 7 in
  let eng = Engine.create Types.Pbs2 (Formula.num_vars f) in
  Engine.add_formula eng f;
  match Engine.solve eng (Types.with_conflicts 3) with
  | Types.Unknown Types.Conflict_limit -> ()
  | Types.Unknown r ->
    Alcotest.fail ("wrong stop reason: " ^ Types.stop_reason_name r)
  | Types.Unsat -> Alcotest.fail "php(7) cannot be proven in 3 conflicts"
  | Types.Sat _ -> Alcotest.fail "php(7) is UNSAT"

let solve_php7 budget =
  let f = pigeonhole 7 in
  let eng = Engine.create Types.Pbs2 (Formula.num_vars f) in
  Engine.add_formula eng f;
  Engine.solve eng budget

let test_stop_reasons () =
  (* each resource cap must surface as its own stop reason *)
  (match solve_php7 (Types.with_deadline 0.0) with
  | Types.Unknown Types.Deadline -> ()
  | _ -> Alcotest.fail "expired deadline must report Deadline");
  (match solve_php7 (Types.within_seconds 0.0) with
  | Types.Unknown Types.Deadline -> ()
  | _ -> Alcotest.fail "zero time limit must report Deadline");
  (match
     solve_php7 { Types.no_budget with Types.max_propagations = Some 10 }
   with
  | Types.Unknown Types.Propagation_limit -> ()
  | _ -> Alcotest.fail "propagation cap must report Propagation_limit");
  match
    solve_php7
      { Types.no_budget with Types.cancel = Some (fun () -> true) }
  with
  | Types.Unknown Types.Cancelled -> ()
  | _ -> Alcotest.fail "a firing cancel hook must report Cancelled"

let test_deadline_now_stops_immediately () =
  (* regression: the deadline check is [>=], so a deadline equal to "now"
     (a zero-timeout smoke run) must fire before any search happens *)
  let f = pigeonhole 7 in
  let eng = Engine.create Types.Pbs2 (Formula.num_vars f) in
  Engine.add_formula eng f;
  let budget =
    { Types.no_budget with Types.deadline = Some (Colib_clock.Mclock.now ()) }
  in
  (match Engine.solve eng budget with
  | Types.Unknown Types.Deadline -> ()
  | _ -> Alcotest.fail "deadline == now must report Deadline");
  Alcotest.(check int) "no decisions taken" 0 (Engine.stats eng).Types.decisions

let test_cooperative_cancel_mid_search () =
  (* a hook that trips after a few polls stops the search cooperatively *)
  let polls = ref 0 in
  let cancel () =
    incr polls;
    !polls > 3
  in
  match solve_php7 { Types.no_budget with Types.cancel = Some cancel } with
  | Types.Unknown Types.Cancelled ->
    Alcotest.(check bool) "hook was polled" true (!polls > 3)
  | _ -> Alcotest.fail "expected cooperative cancellation"

let test_started_resolves_time_limit () =
  let b = Types.started (Types.within_seconds 5.0) in
  Alcotest.(check bool) "time limit consumed" true (b.Types.time_limit = None);
  (match b.Types.deadline with
  | Some d ->
    let now = Colib_clock.Mclock.now () in
    Alcotest.(check bool) "deadline about now+5" true
      (d -. now > 4.0 && d -. now < 6.0)
  | None -> Alcotest.fail "started must install a deadline");
  (* an existing earlier deadline wins over the relative limit *)
  let early = Colib_clock.Mclock.now () +. 1.0 in
  let b' =
    Types.started
      { (Types.within_seconds 60.0) with Types.deadline = Some early }
  in
  (match b'.Types.deadline with
  | Some d -> Alcotest.(check (float 0.001)) "min deadline" early d
  | None -> Alcotest.fail "deadline lost");
  (* starting twice is idempotent *)
  let b'' = Types.started b' in
  Alcotest.(check bool) "idempotent" true (b''.Types.deadline = b'.Types.deadline)

(* ---------- oracle comparison on random instances ---------- *)

(* tiny DPLL oracle over pure CNF *)
let oracle_sat nvars clauses =
  let assignment = Array.make nvars None in
  let value l =
    match assignment.(Lit.var l) with
    | None -> None
    | Some b -> Some (if Lit.sign l then b else not b)
  in
  let rec go v =
    if v = nvars then
      List.for_all
        (fun cl -> List.exists (fun l -> value l = Some true) cl)
        clauses
    else begin
      let try_value b =
        assignment.(v) <- Some b;
        let ok =
          List.for_all
            (fun cl ->
              List.exists (fun l -> value l <> Some false) cl)
            clauses
        in
        let r = ok && go (v + 1) in
        assignment.(v) <- None;
        r
      in
      try_value false || try_value true
    end
  in
  go 0

let random_cnf_gen =
  QCheck.Gen.(
    let* nvars = int_range 3 8 in
    let* nclauses = int_range 1 20 in
    let* clauses =
      list_repeat nclauses
        (list_size (int_range 1 3)
           (map2 (fun v s -> Lit.make v s) (int_bound (nvars - 1)) bool))
    in
    return (nvars, clauses))

let random_cnf_arb =
  QCheck.make
    ~print:(fun (n, cls) ->
      Printf.sprintf "%d vars, %s" n
        (String.concat " & "
           (List.map
              (fun cl ->
                "("
                ^ String.concat "|"
                    (List.map (fun l -> Format.asprintf "%a" Lit.pp l) cl)
                ^ ")")
              cls)))
    random_cnf_gen

let prop_engine_matches_oracle engine =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s agrees with DPLL oracle" (Types.engine_name engine))
    ~count:150 random_cnf_arb (fun (nvars, clauses) ->
      let f = Formula.create () in
      let _ = Formula.fresh_vars f nvars in
      List.iter (Formula.add_clause f) clauses;
      let expected = oracle_sat nvars clauses in
      if Formula.trivially_unsat f then not expected
      else begin
        let eng = Engine.create engine nvars in
        Engine.add_formula eng f;
        match Engine.solve eng budget with
        | Types.Sat m ->
          expected
          && Formula.check_model f (fun l -> Engine.value_in m l)
        | Types.Unsat -> not expected
        | Types.Unknown _ -> false
      end)

(* all engines must agree on medium random 3-SAT near the phase transition,
   where no brute-force oracle is practical — cross-validation only *)
let prop_engines_agree_medium =
  QCheck.Test.make ~name:"engines agree on medium 3-SAT" ~count:25
    (QCheck.make
       ~print:(fun seed -> Printf.sprintf "seed=%d" seed)
       QCheck.Gen.(int_range 0 100000))
    (fun seed ->
      let rng = Colib_graph.Prng.create seed in
      let nvars = 30 in
      let nclauses = 126 (* ratio 4.2: near the transition *) in
      let f = Formula.create () in
      let _ = Formula.fresh_vars f nvars in
      for _ = 1 to nclauses do
        let lits =
          List.init 3 (fun _ ->
              Lit.make
                (Colib_graph.Prng.int rng nvars)
                (Colib_graph.Prng.bool rng 0.5))
        in
        Formula.add_clause f lits
      done;
      let verdicts =
        List.map
          (fun engine ->
            let eng = Engine.create engine nvars in
            Engine.add_formula eng f;
            match Engine.solve eng budget with
            | Types.Sat m ->
              (* models must actually satisfy the formula *)
              if Formula.check_model f (fun l -> Engine.value_in m l) then
                `Sat
              else `Bogus
            | Types.Unsat -> `Unsat
            | Types.Unknown _ -> `Unknown)
          engines
      in
      (not (List.mem `Bogus verdicts))
      &&
      let decided = List.filter (fun v -> v <> `Unknown) verdicts in
      match decided with
      | [] -> true
      | first :: rest -> List.for_all (( = ) first) rest)

(* ---------- optimization ---------- *)

let test_restart_policies () =
  (* a run long enough to trigger restarts for the restarting engines *)
  let f = pigeonhole 6 in
  let run engine =
    let eng = Engine.create engine (Formula.num_vars f) in
    Engine.add_formula eng f;
    ignore (Engine.solve eng budget);
    Engine.stats eng
  in
  let pbs2 = run Types.Pbs2 in
  check Alcotest.bool "pbs2 restarts" true (pbs2.Types.restarts > 0);
  let bnb = run Types.Cplex in
  check Alcotest.int "b&b never restarts" 0 bnb.Types.restarts;
  check Alcotest.int "b&b never learns" 0 bnb.Types.learned;
  check Alcotest.bool "cdcl learns" true (pbs2.Types.learned > 0)

let test_model_enumeration () =
  (* blocking clauses enumerate all models of a small formula *)
  let f = Formula.create () in
  let xs = Formula.fresh_vars f 3 in
  Formula.add_clause f (Array.to_list (Array.map Lit.pos xs));
  let eng = Engine.create Types.Pbs2 3 in
  Engine.add_formula eng f;
  let count = ref 0 in
  let continue_enum = ref true in
  while !continue_enum do
    match Engine.solve eng budget with
    | Types.Sat m ->
      incr count;
      if !count > 10 then Alcotest.fail "too many models";
      Engine.add_clause eng
        (List.init 3 (fun v -> if m.(v) then Lit.neg v else Lit.pos v))
    | Types.Unsat -> continue_enum := false
    | Types.Unknown _ -> Alcotest.fail "budget too small"
  done;
  check Alcotest.int "7 models of a ternary clause" 7 !count

let test_value_in () =
  let m = [| true; false |] in
  check Alcotest.bool "pos true" true (Engine.value_in m (Lit.pos 0));
  check Alcotest.bool "neg true" false (Engine.value_in m (Lit.negate (Lit.pos 0)));
  check Alcotest.bool "pos false" false (Engine.value_in m (Lit.pos 1));
  check Alcotest.bool "neg false" true (Engine.value_in m (Lit.neg 1))

let test_optimize_simple () =
  let f = Formula.create () in
  let xs = Formula.fresh_vars f 5 in
  let lits = Array.to_list (Array.map Lit.pos xs) in
  Formula.add_pb f (Pbc.at_least 3 lits);
  Formula.set_objective_min f (List.map (fun l -> (1, l)) lits);
  List.iter
    (fun engine ->
      match Optimize.solve_formula engine f budget with
      | Optimize.Optimal (_, 3) -> ()
      | r ->
        Alcotest.fail
          (Format.asprintf "%s: expected optimal 3, got %a"
             (Types.engine_name engine) Optimize.pp_result r))
    engines

let test_optimize_unsat () =
  let f = Formula.create () in
  let x = Formula.fresh_var f in
  Formula.add_clause f [ Lit.pos x ];
  Formula.add_clause f [ Lit.neg x ];
  Formula.set_objective_min f [ (1, Lit.pos x) ];
  match Optimize.solve_formula Types.Pbs2 f budget with
  | Optimize.Unsatisfiable -> ()
  | _ -> Alcotest.fail "expected UNSAT"

let test_optimize_zero_cost () =
  let f = Formula.create () in
  let xs = Formula.fresh_vars f 3 in
  Formula.add_clause f [ Lit.pos xs.(0); Lit.neg xs.(1) ];
  Formula.set_objective_min f
    (List.map (fun v -> (1, Lit.pos v)) (Array.to_list xs));
  match Optimize.solve_formula Types.Pbs2 f budget with
  | Optimize.Optimal (_, 0) -> ()
  | r -> Alcotest.fail (Format.asprintf "expected optimal 0, got %a" Optimize.pp_result r)

(* Regression: an objective over complementary literals has a positive
   floor (here 1·x + 1·¬x = 1 for every assignment), so the strengthening
   bound [obj <= cost - 1] normalizes to [Pbc.False].  The loop must
   recognize that as "floor reached: optimal" rather than dropping the
   bound and re-finding the same model forever. *)
let test_optimize_positive_floor () =
  let f = Formula.create () in
  let xs = Formula.fresh_vars f 2 in
  Formula.set_objective_min f
    [ (1, Lit.pos xs.(0)); (1, Lit.neg xs.(0)); (2, Lit.pos xs.(1)) ];
  match Optimize.solve_formula Types.Pbs2 f budget with
  | Optimize.Optimal (m, 1) ->
    check Alcotest.bool "x1 off at the optimum" false m.(xs.(1))
  | r ->
    Alcotest.fail
      (Format.asprintf "expected optimal 1, got %a" Optimize.pp_result r)

let test_optimize_no_objective () =
  let f = Formula.create () in
  let x = Formula.fresh_var f in
  Formula.add_clause f [ Lit.pos x ];
  match Optimize.solve_formula Types.Pbs2 f budget with
  | Optimize.Optimal (m, 0) -> check Alcotest.bool "x" true m.(x)
  | _ -> Alcotest.fail "decision problem should report optimal 0"

(* optimization oracle property: min number of true vars subject to at_least
   constraints over subsets *)
let prop_optimize_cardinality =
  QCheck.Test.make ~name:"optimize matches brute-force minimum" ~count:60
    (QCheck.make
       ~print:(fun (n, subsets) ->
         Printf.sprintf "n=%d, %d subsets" n (List.length subsets))
       QCheck.Gen.(
         let* n = int_range 2 7 in
         let* k = int_range 1 4 in
         let* subsets =
           list_repeat k
             (let* sz = int_range 1 n in
              let* vs = list_repeat sz (int_bound (n - 1)) in
              let* b = int_range 1 2 in
              return (List.sort_uniq Int.compare vs, b))
         in
         return (n, subsets)))
    (fun (n, subsets) ->
      let feasible assignment =
        List.for_all
          (fun (vs, b) ->
            List.length (List.filter (fun v -> assignment land (1 lsl v) <> 0) vs)
            >= b)
          subsets
      in
      let best = ref max_int in
      for a = 0 to (1 lsl n) - 1 do
        if feasible a then begin
          let cost = ref 0 in
          for v = 0 to n - 1 do
            if a land (1 lsl v) <> 0 then incr cost
          done;
          if !cost < !best then best := !cost
        end
      done;
      let f = Formula.create () in
      let xs = Formula.fresh_vars f n in
      let sat_possible =
        List.for_all (fun (vs, b) -> List.length vs >= b) subsets
      in
      List.iter
        (fun (vs, b) ->
          Formula.add_pb f
            (Pbc.at_least b (List.map (fun v -> Lit.pos xs.(v)) vs)))
        subsets;
      Formula.set_objective_min f
        (List.map (fun v -> (1, Lit.pos v)) (Array.to_list xs));
      match Optimize.solve_formula Types.Pbs2 f budget with
      | Optimize.Optimal (_, c) -> sat_possible && !best < max_int && c = !best
      | Optimize.Unsatisfiable -> !best = max_int
      | _ -> false)

let () =
  Alcotest.run "solver"
    [
      ( "vec",
        [
          Alcotest.test_case "basic" `Quick test_vec_basic;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "sort" `Quick test_vec_sort;
        ] );
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "reinsert" `Quick test_heap_reinsert;
        ] );
      ( "engine",
        [
          Alcotest.test_case "unit propagation" `Quick test_units;
          Alcotest.test_case "conflicts" `Quick test_conflict;
          Alcotest.test_case "pigeonhole" `Slow test_pigeonhole_unsat;
          Alcotest.test_case "pb propagation" `Quick test_pb_propagation;
          Alcotest.test_case "pb conflict" `Quick test_pb_conflict_unsat;
          Alcotest.test_case "pb tight slack" `Quick test_pb_tight_slack;
          Alcotest.test_case "incremental" `Quick test_incremental_solving;
          Alcotest.test_case "budget" `Quick test_zero_budget_unknown;
          Alcotest.test_case "stop reasons" `Quick test_stop_reasons;
          Alcotest.test_case "deadline == now stops immediately" `Quick
            test_deadline_now_stops_immediately;
          Alcotest.test_case "cooperative cancel" `Quick
            test_cooperative_cancel_mid_search;
          Alcotest.test_case "started budget" `Quick
            test_started_resolves_time_limit;
          qtest (prop_engine_matches_oracle Types.Pbs2);
          qtest (prop_engine_matches_oracle Types.Galena);
          qtest (prop_engine_matches_oracle Types.Pueblo);
          qtest (prop_engine_matches_oracle Types.Cplex);
          qtest (prop_engine_matches_oracle Types.Pbs1);
          qtest prop_engines_agree_medium;
        ] );
      ( "behavior",
        [
          Alcotest.test_case "restart policies" `Quick test_restart_policies;
          Alcotest.test_case "model enumeration" `Quick test_model_enumeration;
          Alcotest.test_case "value_in" `Quick test_value_in;
        ] );
      ( "optimize",
        [
          Alcotest.test_case "simple" `Quick test_optimize_simple;
          Alcotest.test_case "unsat" `Quick test_optimize_unsat;
          Alcotest.test_case "zero cost" `Quick test_optimize_zero_cost;
          Alcotest.test_case "positive objective floor" `Quick
            test_optimize_positive_floor;
          Alcotest.test_case "no objective" `Quick test_optimize_no_objective;
          qtest prop_optimize_cardinality;
        ] );
    ]
