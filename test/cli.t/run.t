CLI smoke tests over deterministic commands.

Generate a queens instance and inspect its bounds:

  $ ../../bin/gen.exe queens 4 4 -o q44.col
  wrote q44.col
  $ head -2 q44.col
  c queens 4x4
  p edge 16 76
  $ ../../bin/color.exe bounds q44.col
  vertices: 16
  edges: 76
  max degree: 11
  greedy clique (lower bound): 5
  DSATUR (upper bound): 5
  Welsh-Powell: 5

The Mycielski family has known sizes:

  $ ../../bin/gen.exe mycielski 4 | head -2
  c myciel4
  p edge 23 71

The benchmark inventory lists all twenty Table 1 instances:

  $ ../../bin/gen.exe list | wc -l
  20
  $ ../../bin/gen.exe list | grep queen
  queen5_5     queens     V=25   E=160    chi=5
  queen6_6     queens     V=36   E=290    chi=7
  queen7_7     queens     V=49   E=476    chi=7
  queen8_12    queens     V=96   E=1368   chi=12

The OPB emitter produces the declared header:

  $ ../../bin/color.exe emit q44.col -k 5 | head -1
  * #variable= 85 #constraint= 497

Malformed files are rejected with the offending line number and exit code 2:

  $ echo "e 1 2" > broken.col
  $ ../../bin/color.exe bounds broken.col
  color: broken.col:1: edge before problem line
  [2]
  $ printf 'p edge 3 2\ne 1 2\ne 2 9\n' > range.col
  $ ../../bin/color.exe bounds range.col
  color: range.col:3: edge endpoint 9 exceeds vertex count 3
  [2]

A solved instance can be independently certified; the provenance ladder
shows which stage produced the answer:

  $ ../../bin/color.exe solve q44.col --no-instance-dependent --verify \
  >   | tail -3 | sed 's/ *[0-9][0-9]*\.[0-9]*s//'
  provenance:
    PBS II  found 5 colors, proved
  certificate: coloring verified

Proof logging and independent replay: an UNSAT answer (myciel3 needs 4
colors) writes a RUP trace that check-proof verifies; --stats prints the
engine counters (masked, they vary by machine only in the digits):

  $ ../../bin/gen.exe mycielski 3 -o m3.col
  wrote m3.col
  $ ../../bin/color.exe solve m3.col -k 3 --no-instance-dependent \
  >   --proof m3.proof --stats | grep -E 'colorable|proof:|stats:' \
  >   | sed 's/[0-9][0-9]*/N/g'
  not N-colorable
  stats: conflicts=N decisions=N propagations=N learned=N restarts=N removed=N subsumed=N eliminated=N probed=N substituted=N
  proof: N steps (unsat) written to mN.proof
  $ ../../bin/color.exe check-proof m3.proof | tail -1 | sed 's/[0-9][0-9]*/N/g'
  proof: verified (unsat, N steps)

The inprocessing ladder is on by default; --no-inprocessing turns it off
(its counters stay at zero), the answer is unchanged, and the plain trace
still verifies:

  $ ../../bin/color.exe solve m3.col -k 3 --no-instance-dependent \
  >   --no-inprocessing --proof m3_off.proof --stats \
  >   | grep -oE 'not 3-colorable|subsumed=0 eliminated=0 probed=0 substituted=0'
  not 3-colorable
  subsumed=0 eliminated=0 probed=0 substituted=0
  $ ../../bin/color.exe check-proof m3_off.proof | tail -1 | sed 's/[0-9][0-9]*/N/g'
  proof: verified (unsat, N steps)

A tampered proof is rejected with exit code 3; a truncated file with 2:

  $ grep -v '^l ' m3.proof > bad.proof
  $ ../../bin/color.exe check-proof bad.proof > rejected.txt
  [3]
  $ sed 's/[0-9][0-9]*/N/g' rejected.txt
  N vars, N CNF clauses (N lits), N PB constraints
  proof: REJECTED (step N is not derivable by unit propagation)
  $ head -1 m3.proof > trunc.proof
  $ ../../bin/color.exe check-proof trunc.proof
  color: trunc.proof: no embedded formula (missing f-lines)
  [2]

Unknown benchmark names list the suite:

  $ ../../bin/gen.exe benchmark nosuch 2>&1 | head -1
  unknown benchmark "nosuch"; known: anna, david, DSJC125.1, DSJC125.9, games120, huck, jean, miles250, mulsol.i.2, mulsol.i.4, myciel3, myciel4, myciel5, queen5_5, queen6_6, queen7_7, queen8_12, zeroin.i.1, zeroin.i.2, zeroin.i.3

The coloring service: `serve` needs a socket; a client facing a dead
socket retries with backoff and then gives up with exit code 5:

  $ ../../bin/color.exe serve
  color: a socket is required (a path, or tcp:PORT for loopback TCP)
  [1]
  $ ../../bin/color.exe client m3.col --socket ./nosuch.sock --retries 1 \
  >   --backoff 0.01 --job-id cram-dead 2>errs.txt
  job: cram-dead
  [5]
  $ grep -c 'retry' errs.txt
  1
  $ tail -1 errs.txt
  color: client: giving up after 2 attempts: daemon unreachable: No such file or directory

A zero deadline is a typed, immediate timeout — not a hang and not an
error exit (the daemon answered; the answer is "no time left"):

  $ ../../bin/color.exe serve ./d.sock --journal d.jsonl \
  >   --checkpoint-dir d-ckpt --max-jobs 1 >/dev/null 2>&1 &
  $ for i in $(seq 50); do [ -S d.sock ] && break; sleep 0.1; done
  $ ../../bin/color.exe client m3.col --socket ./d.sock --deadline 0 \
  >   --job-id cram-dl0 | sed 's/time: [0-9.]*s/time: Ts/'
  job: cram-dl0
  timeout: deadline exhausted before the solve could start
  certified: false, solve time: Ts
  $ wait

Incremental sessions: a script of graph edits drives a durable
server-side session; the chromatic number is re-solved incrementally
after each query. An expired lease is a typed, permanent failure with
exit code 8; an LRU eviction exits 9 — both mean "open a fresh session
and replay", never "retry":

  $ ../../bin/color.exe serve ./s.sock --journal s.jsonl \
  >   --checkpoint-dir s-ckpt --max-sessions 1 >/dev/null 2>&1 &
  $ SRV=$!
  $ for i in $(seq 50); do [ -S s.sock ] && break; sleep 0.1; done
  $ cat > tri.txt <<'SCRIPT'
  > # a triangle, then drop one edge
  > vertex
  > vertex
  > vertex
  > edge 0 1
  > edge 0 2
  > edge 1 2
  > query
  > del 1 2
  > query
  > SCRIPT
  $ ../../bin/color.exe session tri.txt --socket ./s.sock --sid cram-tri \
  >   --vertices 4 | sed 's/time: [0-9.]*s/time: Ts/'
  session cram-tri: opened
  chi: 3 certified: true incremental: false time: Ts
  chi: 2 certified: true incremental: true time: Ts

A lapsed lease mid-script is a permanent, typed expiry (exit 8):

  $ cat > exp.txt <<'SCRIPT'
  > vertex
  > sleep 1.6
  > vertex
  > SCRIPT
  $ ../../bin/color.exe session exp.txt --socket ./s.sock --sid cram-exp \
  >   --vertices 4 --lease 1 --retries 1
  session cram-exp: opened
  color: session: giving up after 1 attempts: session cram-exp expired
  [8]

With --max-sessions 1, a second session evicts the first; its next
frame is a permanent, typed eviction (exit 9):

  $ cat > slow.txt <<'SCRIPT'
  > vertex
  > sleep 2
  > vertex
  > SCRIPT
  $ printf 'vertex\n' > one.txt
  $ ../../bin/color.exe session slow.txt --socket ./s.sock --sid cram-a \
  >   --vertices 4 --retries 1 >a.out 2>&1 &
  $ APID=$!
  $ sleep 0.5
  $ ../../bin/color.exe session one.txt --socket ./s.sock --sid cram-b \
  >   --vertices 4
  session cram-b: opened
  $ wait $APID; echo "evicted exit: $?"
  evicted exit: 9
  $ tail -1 a.out
  color: session: giving up after 1 attempts: session cram-a evicted
  $ kill $SRV && wait $SRV
