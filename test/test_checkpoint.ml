(* Checkpoint/restart tests: the crash-recovery contract end to end.

   The load-bearing property is that a solve killed at an arbitrary point
   (SIGKILL — nothing cooperative, no atexit, no signal handler) resumes
   from its last snapshot and reaches the same certified answer as an
   uninterrupted run, with a stitched proof trace the independent RUP
   checker accepts. Around that sit the integrity tests: every corruption
   mode of the on-disk format must be classified and degrade to a cold
   start, never to a wrong answer; and the portfolio supervisor must
   warm-resume a SIGKILLed worker from its snapshot, journaling the
   resume event.

   Kill points are deterministic, not wall-clock: a cancellation hook
   installed through the flow's budget instrument counts the engine's
   batched budget polls and SIGKILLs the forked child process at the n-th
   poll, so every CI run dies at the same search states. *)

module Generators = Colib_graph.Generators
module Prng = Colib_graph.Prng
module Lit = Colib_sat.Lit
module Formula = Colib_sat.Formula
module Output = Colib_sat.Output
module Proof = Colib_sat.Proof
module Sbp = Colib_encode.Sbp
module Types = Colib_solver.Types
module Engine = Colib_solver.Engine
module Optimize = Colib_solver.Optimize
module Checkpoint = Colib_solver.Checkpoint
module Mclock = Colib_clock.Mclock
module Rup = Colib_check.Rup
module Chaos = Colib_check.Chaos
module Flow = Colib_core.Flow
module Journal = Colib_portfolio.Journal
module P = Colib_portfolio.Portfolio

let check = Alcotest.check

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let tmp_dir name =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "colib_ckpt_%s_%d" name (Unix.getpid ()))
  in
  rm_rf d;
  Checkpoint.ensure_dir d;
  d

let outcome_name = function
  | Flow.Optimal c -> Printf.sprintf "Optimal %d" c
  | Flow.Best c -> Printf.sprintf "Best %d" c
  | Flow.No_coloring -> "No_coloring"
  | Flow.Timed_out -> "Timed_out"

(* ---------- snapshot format: roundtrip and identity ---------- *)

(* a small real search state to snapshot: solve a few conflicts' worth of a
   3-coloring formula, then capture *)
let captured_state () =
  let g = Generators.mycielski 3 in
  let cfg =
    Flow.config ~instance_dependent:false ~sbp:Sbp.No_sbp ~fallback:[] ~k:4 ()
  in
  let f = Flow.encoded_formula g cfg in
  let eng = Engine.create Types.Pbs2 (Formula.num_vars f) in
  Engine.add_formula eng f;
  let obj = match Formula.objective f with Some o -> o | None -> [] in
  let r =
    Optimize.minimize eng obj { Types.no_budget with max_conflicts = Some 40 }
  in
  let incumbent =
    match r with
    | Optimize.Optimal (m, c) | Optimize.Satisfiable (m, c, _) -> Some (m, c)
    | Optimize.Unsatisfiable | Optimize.Timeout _ -> None
  in
  (Engine.capture eng, incumbent, Digest.to_hex (Digest.string (Output.opb_string f)))

let test_roundtrip () =
  let sv, incumbent, digest = captured_state () in
  let dir = tmp_dir "roundtrip" in
  let path = Checkpoint.snapshot_path ~dir ~label:"inst" ~engine:"PBS II" ~k:4 in
  let sn =
    {
      Checkpoint.sn_label = "inst";
      sn_k = 4;
      sn_digest = digest;
      sn_incumbent = incumbent;
      sn_engine = sv;
      sn_proof = [];
      sn_prng = Some 0xDEADBEEFL;
    }
  in
  Checkpoint.write path sn;
  check Alcotest.bool "no tmp file left behind" false
    (Sys.file_exists (path ^ ".tmp"));
  (match Checkpoint.read path with
  | Ok sn' ->
    check Alcotest.string "label survives" "inst" sn'.Checkpoint.sn_label;
    check Alcotest.int "k survives" 4 sn'.Checkpoint.sn_k;
    check Alcotest.string "digest survives" digest sn'.Checkpoint.sn_digest;
    check Alcotest.bool "prng state survives" true
      (sn'.Checkpoint.sn_prng = Some 0xDEADBEEFL);
    check Alcotest.int "conflict counter survives" sv.Types.sv_conflicts
      sn'.Checkpoint.sn_engine.Types.sv_conflicts;
    check Alcotest.int "learned DB survives" (Array.length sv.Types.sv_learnts)
      (Array.length sn'.Checkpoint.sn_engine.Types.sv_learnts);
    (* the right identity validates; every wrong identity is rejected *)
    let ok = Checkpoint.validate sn' ~label:"inst" ~k:4 ~digest
        ~engine:Types.Pbs2 ~nvars:sv.Types.sv_nvars in
    check Alcotest.bool "correct identity validates" true (ok = Ok ());
    let rejected ~label ~k ~digest ~engine ~nvars =
      match Checkpoint.validate sn' ~label ~k ~digest ~engine ~nvars with
      | Error _ -> true
      | Ok () -> false
    in
    check Alcotest.bool "wrong label rejected" true
      (rejected ~label:"other" ~k:4 ~digest ~engine:Types.Pbs2
         ~nvars:sv.Types.sv_nvars);
    check Alcotest.bool "wrong k rejected" true
      (rejected ~label:"inst" ~k:5 ~digest ~engine:Types.Pbs2
         ~nvars:sv.Types.sv_nvars);
    check Alcotest.bool "wrong engine rejected" true
      (rejected ~label:"inst" ~k:4 ~digest ~engine:Types.Galena
         ~nvars:sv.Types.sv_nvars);
    check Alcotest.bool "wrong nvars rejected" true
      (rejected ~label:"inst" ~k:4 ~digest ~engine:Types.Pbs2
         ~nvars:(sv.Types.sv_nvars + 1));
    check Alcotest.bool "stale digest rejected" true
      (rejected ~label:"inst" ~k:4 ~digest:"0000" ~engine:Types.Pbs2
         ~nvars:sv.Types.sv_nvars)
  | Error e ->
    Alcotest.failf "roundtrip read failed: %s" (Checkpoint.read_error_to_string e));
  rm_rf dir

let test_rejects_corruption () =
  let sv, incumbent, digest = captured_state () in
  let dir = tmp_dir "corrupt" in
  let path = Filename.concat dir "c.ckpt" in
  let sn =
    {
      Checkpoint.sn_label = "c";
      sn_k = 4;
      sn_digest = digest;
      sn_incumbent = incumbent;
      sn_engine = sv;
      sn_proof = [];
      sn_prng = None;
    }
  in
  Checkpoint.write path sn;
  let original = In_channel.with_open_bin path In_channel.input_all in
  let rewrite s = Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc s) in
  let classify () =
    match Checkpoint.read path with
    | Ok _ -> "ok"
    | Error Checkpoint.Missing -> "missing"
    | Error Checkpoint.Truncated -> "truncated"
    | Error Checkpoint.Bad_magic -> "bad-magic"
    | Error (Checkpoint.Bad_version _) -> "bad-version"
    | Error Checkpoint.Bad_crc -> "bad-crc"
    | Error (Checkpoint.Bad_payload _) -> "bad-payload"
  in
  (* missing *)
  check Alcotest.string "missing classified" "missing"
    (match Checkpoint.read (Filename.concat dir "absent.ckpt") with
    | Error Checkpoint.Missing -> "missing"
    | _ -> "other");
  (* truncated: cut the payload short *)
  rewrite (String.sub original 0 (String.length original - 7));
  check Alcotest.string "truncation classified" "truncated" (classify ());
  (* truncated: shorter than the header itself *)
  rewrite (String.sub original 0 9);
  check Alcotest.string "short header classified" "truncated" (classify ());
  (* wrong magic *)
  let b = Bytes.of_string original in
  Bytes.set b 0 'X';
  rewrite (Bytes.to_string b);
  check Alcotest.string "magic classified" "bad-magic" (classify ());
  (* unknown version byte *)
  let b = Bytes.of_string original in
  Bytes.set b 4 (Char.chr (Checkpoint.format_version + 1));
  rewrite (Bytes.to_string b);
  check Alcotest.string "version classified" "bad-version" (classify ());
  (* a flipped payload byte must fail the checksum *)
  let b = Bytes.of_string original in
  let last = Bytes.length b - 1 in
  Bytes.set b last (Char.chr (Char.code (Bytes.get b last) lxor 0x5A));
  rewrite (Bytes.to_string b);
  check Alcotest.string "payload flip classified" "bad-crc" (classify ());
  (* intact file still reads after all that *)
  rewrite original;
  check Alcotest.string "original still reads" "ok" (classify ());
  rm_rf dir

(* ---------- kill mid-solve, resume, compare ---------- *)

(* Fork a child that runs the flow with checkpointing on and SIGKILLs
   itself at the [n]-th batched budget poll — an uncatchable death at a
   deterministic search state. Returns the child's wait status. *)
let run_child_killed_at g cfg_of_kill n =
  match Unix.fork () with
  | 0 ->
    (try ignore (Flow.run g (cfg_of_kill n) : Flow.result) with _ -> ());
    (* reached only if the solve finished before the n-th poll *)
    Unix._exit 42
  | pid ->
    let _, st = Unix.waitpid [] pid in
    st

let kill_at_poll n =
  let polls = ref 0 in
  fun b ->
    let hook () =
      incr polls;
      if !polls >= n then Unix.kill (Unix.getpid ()) Sys.sigkill;
      false
    in
    { b with Types.cancel = Some hook }

(* mycielski 4: chi = 5; ~10k conflicts to prove Optimal 5 at k = 5 and
   ~2.3k conflicts to refute k = 4, so single-digit poll indices all land
   well inside the search *)
let myciel4 () = Generators.mycielski 4

let flow_cfg ?(sbp = Sbp.No_sbp) ?instrument ?checkpoint ~label ~k () =
  Flow.config ~instance_dependent:false ~sbp ~timeout:120.0
    ~fallback:[] ~proof:true ?instrument ?checkpoint ~checkpoint_label:label
    ~k ()

let replay_bundle ~ctx g cfg (r : Flow.result) expected_claim =
  match r.Flow.proof with
  | None -> Alcotest.failf "%s: settled without a proof bundle" ctx
  | Some b ->
    if b.Flow.proof_claim <> expected_claim then
      Alcotest.failf "%s: claim does not match outcome" ctx;
    let f = Flow.encoded_formula g cfg in
    (match Rup.check_claim f b.Flow.proof_claim (Proof.steps b.Flow.proof_trace)
     with
    | Ok _ -> ()
    | Error fl ->
      Alcotest.failf "%s: stitched proof rejected: %s" ctx
        (Rup.failure_to_string fl))

let test_kill_and_resume_optimal () =
  let g = myciel4 () in
  let label = "myciel4" in
  (* uninterrupted reference *)
  let ref_r = Flow.run g (flow_cfg ~label ~k:5 ()) in
  (match ref_r.Flow.outcome with
  | Flow.Optimal 5 -> ()
  | o -> Alcotest.failf "reference run must prove Optimal 5, got %s"
           (outcome_name o));
  List.iter
    (fun n ->
      let ctx = Printf.sprintf "kill at poll %d" n in
      let dir = tmp_dir (Printf.sprintf "kill_%d" n) in
      let cfg_of_kill n =
        flow_cfg ~instrument:(kill_at_poll n)
          ~checkpoint:(Checkpoint.config ~interval:0.0 ~dir ())
          ~label ~k:5 ()
      in
      (match run_child_killed_at g cfg_of_kill n with
      | Unix.WSIGNALED s when s = Sys.sigkill -> ()
      | Unix.WEXITED 42 ->
        Alcotest.failf "%s: child finished before the kill landed" ctx
      | _ -> Alcotest.failf "%s: unexpected child status" ctx);
      (* the interval-0 emitter snapshots at every budget poll, and the
         cancellation hook that kills the child runs before the poll's
         snapshot hook, so a kill at poll >= 2 always finds a snapshot *)
      let path =
        Checkpoint.snapshot_path ~dir ~label
          ~engine:(Types.engine_name Types.Pbs2) ~k:5
      in
      (match Checkpoint.read path with
      | Ok _ -> ()
      | Error e ->
        Alcotest.failf "%s: killed run left no readable snapshot: %s" ctx
          (Checkpoint.read_error_to_string e));
      let resume_cfg =
        flow_cfg
          ~checkpoint:(Checkpoint.config ~interval:3600.0 ~resume:true ~dir ())
          ~label ~k:5 ()
      in
      let r = Flow.run g resume_cfg in
      check Alcotest.string ctx
        (outcome_name ref_r.Flow.outcome) (outcome_name r.Flow.outcome);
      check Alcotest.bool (ctx ^ ": warm resume logged") true
        (List.exists (fun l -> contains_substring l "resumed at")
           r.Flow.resume_log);
      check Alcotest.bool (ctx ^ ": coloring certified") true
        (match r.Flow.certificate with Some (Ok ()) -> true | _ -> false);
      rm_rf dir)
    [ 2; 4; 7 ]

(* The stitched-trace argument for an Optimal claim, checked end to end on
   an instance whose trace replays quickly: gnp(18, 0.5) proves Optimal 5
   inside ~2k conflicts. The resumed run's bundle is the snapshot's proof
   prefix with the post-resume tail appended; the independent checker must
   accept it as one derivation. *)
let test_kill_and_resume_optimal_proof () =
  let g = Generators.gnp ~n:18 ~p:0.5 ~seed:7 in
  let label = "gnp18" in
  let dir = tmp_dir "kill_proof" in
  let cfg_of_kill n =
    flow_cfg ~instrument:(kill_at_poll n)
      ~checkpoint:(Checkpoint.config ~interval:0.0 ~dir ())
      ~label ~k:8 ()
  in
  (match run_child_killed_at g cfg_of_kill 2 with
  | Unix.WSIGNALED s when s = Sys.sigkill -> ()
  | Unix.WEXITED 42 -> Alcotest.fail "child settled before the kill"
  | _ -> Alcotest.fail "unexpected child status");
  let resume_cfg =
    flow_cfg
      ~checkpoint:(Checkpoint.config ~interval:3600.0 ~resume:true ~dir ())
      ~label ~k:8 ()
  in
  let r = Flow.run g resume_cfg in
  (match r.Flow.outcome with
  | Flow.Optimal c ->
    check Alcotest.bool "warm resume logged" true
      (List.exists (fun l -> contains_substring l "resumed at")
         r.Flow.resume_log);
    replay_bundle ~ctx:"resumed Optimal" g resume_cfg r (Proof.Optimal_claim c)
  | o -> Alcotest.failf "resumed run must settle Optimal, got %s"
           (outcome_name o));
  rm_rf dir

let test_kill_and_resume_unsat () =
  let g = myciel4 () in
  let label = "myciel4u" in
  let dir = tmp_dir "kill_unsat" in
  let cfg_of_kill n =
    flow_cfg ~instrument:(kill_at_poll n)
      ~checkpoint:(Checkpoint.config ~interval:0.0 ~dir ())
      ~label ~k:4 ()
  in
  (match run_child_killed_at g cfg_of_kill 3 with
  | Unix.WSIGNALED s when s = Sys.sigkill -> ()
  | Unix.WEXITED 42 -> Alcotest.fail "child refuted k=4 before the kill"
  | _ -> Alcotest.fail "unexpected child status");
  let resume_cfg =
    flow_cfg
      ~checkpoint:(Checkpoint.config ~interval:3600.0 ~resume:true ~dir ())
      ~label ~k:4 ()
  in
  let r = Flow.run g resume_cfg in
  (match r.Flow.outcome with
  | Flow.No_coloring -> ()
  | o -> Alcotest.failf "resumed refutation must say No_coloring, got %s"
           (outcome_name o));
  check Alcotest.bool "warm resume logged" true
    (List.exists (fun l -> contains_substring l "resumed at") r.Flow.resume_log);
  replay_bundle ~ctx:"resumed UNSAT" g resume_cfg r Proof.Unsat_claim;
  rm_rf dir

(* The inprocessing ladder meets the crash-recovery contract. The Li SBP
   introduces clause-only auxiliary variables — real BVE targets, unlike
   the frozen PB-constrained coloring variables — so the simplification passes do real work and the snapshot must carry the
   elimination stack, witnesses, and counters. A run SIGKILLed after that
   pass must resume to the same certified answer as an uninterrupted run,
   with a stitched proof the independent checker accepts. *)
let test_kill_resume_after_inprocessing () =
  let g = Generators.mycielski 5 in
  let label = "myciel5li" in
  let ref_r = Flow.run g (flow_cfg ~sbp:Sbp.Li ~label ~k:6 ()) in
  (match ref_r.Flow.outcome with
  | Flow.Optimal 6 -> ()
  | o ->
    Alcotest.failf "reference must prove Optimal 6, got %s" (outcome_name o));
  let s = ref_r.Flow.solver in
  check Alcotest.bool "reference run exercised the ladder" true
    (s.Types.subsumed + s.Types.eliminated + s.Types.probed
       + s.Types.substituted
    > 0);
  let dir = tmp_dir "kill_inproc" in
  let cfg_of_kill n =
    flow_cfg ~sbp:Sbp.Li ~instrument:(kill_at_poll n)
      ~checkpoint:(Checkpoint.config ~interval:0.0 ~dir ())
      ~label ~k:6 ()
  in
  (match run_child_killed_at g cfg_of_kill 3 with
  | Unix.WSIGNALED s when s = Sys.sigkill -> ()
  | Unix.WEXITED 42 -> Alcotest.fail "child settled before the kill"
  | _ -> Alcotest.fail "unexpected child status");
  let path =
    Checkpoint.snapshot_path ~dir ~label
      ~engine:(Types.engine_name Types.Pbs2) ~k:6
  in
  (* the snapshot carries the inprocessing state, not just the search *)
  (match Checkpoint.read path with
  | Ok sn ->
    let sv = sn.Checkpoint.sn_engine in
    check Alcotest.bool "snapshot carries inprocessing counters" true
      (sv.Types.sv_subsumed + sv.Types.sv_eliminated + sv.Types.sv_probed
         + sv.Types.sv_substituted
      > 0);
    if sv.Types.sv_eliminated > 0 then
      check Alcotest.bool "elimination stack snapshotted" true
        (Array.length sv.Types.sv_elim > 0)
  | Error e ->
    Alcotest.failf "killed run left no readable snapshot: %s"
      (Checkpoint.read_error_to_string e));
  let resume_cfg =
    flow_cfg ~sbp:Sbp.Li
      ~checkpoint:(Checkpoint.config ~interval:3600.0 ~resume:true ~dir ())
      ~label ~k:6 ()
  in
  let r = Flow.run g resume_cfg in
  check Alcotest.string "resumed = uninterrupted"
    (outcome_name ref_r.Flow.outcome)
    (outcome_name r.Flow.outcome);
  check Alcotest.bool "warm resume logged" true
    (List.exists (fun l -> contains_substring l "resumed at") r.Flow.resume_log);
  check Alcotest.bool "coloring certified" true
    (match r.Flow.certificate with Some (Ok ()) -> true | _ -> false);
  (match r.Flow.outcome with
  | Flow.Optimal c ->
    replay_bundle ~ctx:"resumed Optimal after inprocessing" g resume_cfg r
      (Proof.Optimal_claim c)
  | _ -> ());
  rm_rf dir

let test_corrupt_snapshot_cold_start () =
  let g = myciel4 () in
  let label = "myciel4c" in
  let dir = tmp_dir "cold" in
  let path =
    Checkpoint.snapshot_path ~dir ~label
      ~engine:(Types.engine_name Types.Pbs2) ~k:5
  in
  (* a snapshot-shaped file full of garbage: resume must reject it,
     record why, cold-start, and still reach the right answer *)
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc "CKP1 this is not a snapshot at all");
  let r =
    Flow.run g
      (flow_cfg
         ~checkpoint:(Checkpoint.config ~interval:3600.0 ~resume:true ~dir ())
         ~label ~k:5 ())
  in
  (match r.Flow.outcome with
  | Flow.Optimal 5 -> ()
  | o -> Alcotest.failf "cold start must still prove Optimal 5, got %s"
           (outcome_name o));
  check Alcotest.bool "rejection recorded" true
    (List.exists (fun l -> contains_substring l "snapshot rejected")
       r.Flow.resume_log);
  check Alcotest.bool "no warm resume claimed" false
    (List.exists (fun l -> contains_substring l "resumed at") r.Flow.resume_log);
  (* a stale snapshot for a different encoding (here: different k baked
     into an otherwise valid file) is rejected at the identity layer *)
  let sv, incumbent, _digest = captured_state () in
  Checkpoint.write path
    {
      Checkpoint.sn_label = label;
      sn_k = 5;
      sn_digest = "not-the-formula-digest";
      sn_incumbent = incumbent;
      sn_engine = sv;
      sn_proof = [];
      sn_prng = None;
    };
  let r =
    Flow.run g
      (flow_cfg
         ~checkpoint:(Checkpoint.config ~interval:3600.0 ~resume:true ~dir ())
         ~label ~k:5 ())
  in
  (match r.Flow.outcome with
  | Flow.Optimal 5 -> ()
  | o -> Alcotest.failf "stale snapshot must cold-start to Optimal 5, got %s"
           (outcome_name o));
  check Alcotest.bool "staleness recorded" true
    (List.exists (fun l -> contains_substring l "stale snapshot")
       r.Flow.resume_log);
  rm_rf dir

(* ---------- resume determinism at the optimizer level ---------- *)

let test_resume_determinism () =
  (* the same snapshot resumed twice must take the same path: identical
     outcome and identical search statistics *)
  let g = myciel4 () in
  let cfg = flow_cfg ~label:"det" ~k:5 () in
  let f () =
    let f = Flow.encoded_formula g cfg in
    let eng = Engine.create Types.Pbs2 (Formula.num_vars f) in
    Engine.add_formula eng f;
    (f, eng)
  in
  let f0, eng0 = f () in
  let obj = match Formula.objective f0 with Some o -> o | None -> [] in
  (match
     Optimize.minimize eng0 obj
       { Types.no_budget with max_conflicts = Some 500 }
   with
  | Optimize.Optimal _ | Optimize.Unsatisfiable ->
    Alcotest.fail "500 conflicts must not settle myciel4 at k=5"
  | Optimize.Satisfiable _ | Optimize.Timeout _ -> ());
  let sn =
    {
      Checkpoint.sn_label = "det";
      sn_k = 5;
      sn_digest = "d";
      sn_incumbent = None;
      sn_engine = Engine.capture eng0;
      sn_proof = [];
      sn_prng = None;
    }
  in
  let resumed () =
    let _, eng = f () in
    let r = Optimize.minimize ~resume:sn eng obj Types.no_budget in
    (r, Engine.stats eng)
  in
  let r1, s1 = resumed () in
  let r2, s2 = resumed () in
  (match (r1, r2) with
  | Optimize.Optimal (_, c1), Optimize.Optimal (_, c2) ->
    check Alcotest.int "same optimum" c1 c2;
    check Alcotest.int "optimum is 5 colors' objective" c1 c2
  | _ -> Alcotest.fail "both resumed runs must settle Optimal");
  check Alcotest.int "same conflicts" s1.Types.conflicts s2.Types.conflicts;
  check Alcotest.int "same decisions" s1.Types.decisions s2.Types.decisions;
  check Alcotest.int "same propagations" s1.Types.propagations
    s2.Types.propagations;
  check Alcotest.int "same learned" s1.Types.learned s2.Types.learned;
  check Alcotest.int "same restarts" s1.Types.restarts s2.Types.restarts;
  (* and the resumed counters start where the snapshot left off, not at 0 *)
  check Alcotest.bool "counters carried over" true
    (s1.Types.conflicts > 500)

(* ---------- portfolio: SIGKILLed worker resumes warm ---------- *)

let test_portfolio_warm_resume () =
  (* gnp(24, 0.5) at k = 9 needs ~45k conflicts (several seconds) to
     settle, so a SIGKILL 0.15 s into the worker is guaranteed to land
     mid-solve — with the interval-0 emitter already snapshotting from the
     first conflict — and the 3 s solve budget of the resumed round is
     guaranteed to expire first, so the race ends with a certified [Best]
     rather than waiting on a full optimality replay *)
  let g = Generators.gnp ~n:24 ~p:0.5 ~seed:7 in
  let dir = tmp_dir "portfolio" in
  let jpath = Filename.concat dir "journal.jsonl" in
  let journal = Journal.create jpath in
  let r =
    P.solve ~instance_dependent:false ~timeout:3.0 ~retries:2
      ~chaos:(Chaos.process_scripted [ (0, Chaos.Kill_mid_solve 0.15) ])
      ~checkpoint:(Checkpoint.config ~interval:0.0 ~dir ())
      ~checkpoint_label:"gnp24" ~journal g ~k:9
      [ P.Engine_strategy Types.Pbs2 ]
  in
  (* the resumed round must deliver a parent-certified coloring *)
  (match r.P.outcome with
  | Flow.Best c | Flow.Optimal c ->
    check Alcotest.bool "coloring within k" true (c <= 9);
    check Alcotest.bool "certificate accepted" true
      (match r.P.certificate with Some (Ok ()) -> true | _ -> false)
  | o -> Alcotest.failf "resumed race found no coloring: %s" (outcome_name o));
  (* the first spawn died by SIGKILL and was classified, not hidden *)
  check Alcotest.bool "kill classified as crash" true
    (List.exists
       (fun (a : P.attempt) ->
         match a.P.outcome with P.Crashed s -> s = Sys.sigkill | _ -> false)
       r.P.attempts);
  (* the supervisor journaled the warm resume it granted *)
  let records = Journal.records (Journal.load jpath) in
  check Alcotest.bool "resume event journaled" true
    (List.exists
       (fun rec_ -> List.assoc_opt "event" rec_ = Some "resume")
       records);
  rm_rf dir

(* ---------- monotonic clock ---------- *)

let test_mclock_monotonic () =
  let t0 = Mclock.now () in
  check Alcotest.bool "positive" true (t0 > 0.0);
  let prev = ref t0 in
  for _ = 1 to 10_000 do
    let t = Mclock.now () in
    check Alcotest.bool "non-decreasing" true (t >= !prev);
    prev := t
  done;
  Unix.sleepf 0.02;
  check Alcotest.bool "advances across a sleep" true
    (Mclock.now () -. t0 >= 0.015)

let () =
  Alcotest.run "checkpoint"
    [
      ( "format",
        [
          Alcotest.test_case "write/read/validate roundtrip" `Quick
            test_roundtrip;
          Alcotest.test_case "corruption classified, never trusted" `Quick
            test_rejects_corruption;
        ] );
      ( "kill-resume",
        [
          Alcotest.test_case "SIGKILL mid-optimization, resumed = uninterrupted"
            `Quick test_kill_and_resume_optimal;
          Alcotest.test_case "SIGKILL mid-optimization, stitched Optimal proof"
            `Quick test_kill_and_resume_optimal_proof;
          Alcotest.test_case "SIGKILL mid-refutation, stitched UNSAT proof"
            `Quick test_kill_and_resume_unsat;
          Alcotest.test_case "SIGKILL after inprocessing, state resumes"
            `Quick test_kill_resume_after_inprocessing;
          Alcotest.test_case "corrupt/stale snapshot cold-starts correctly"
            `Quick test_corrupt_snapshot_cold_start;
          Alcotest.test_case "same snapshot resumes identically" `Quick
            test_resume_determinism;
        ] );
      ( "portfolio",
        [
          Alcotest.test_case "SIGKILLed worker warm-resumes" `Quick
            test_portfolio_warm_resume;
        ] );
      ( "clock",
        [ Alcotest.test_case "monotonic" `Quick test_mclock_monotonic ] );
    ]
