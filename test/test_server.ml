(* Crash-only coloring service tests: the wire format rejects version and
   direction confusion; journal rotation bounds the file without losing
   resumable state; SIGPIPE-safe writes survive half-closed peers; and the
   daemon under network chaos — disconnects, slow-loris writers, garbage,
   overload, kill -9 mid-job — always ends every accepted job in a
   certified result or a typed journaled failure, idempotently
   re-deliverable by job id. *)

module Generators = Colib_graph.Generators
module Dimacs_col = Colib_graph.Dimacs_col
module Certify = Colib_check.Certify
module Chaos = Colib_check.Chaos
module Frame = Colib_portfolio.Frame
module Journal = Colib_portfolio.Journal
module P = Colib_portfolio.Portfolio
module Server = Colib_server.Server
module Client = Colib_server.Client
module Balancer = Colib_server.Balancer
module Supervise = Colib_server.Supervise
module Durable = Colib_io.Durable
module Mclock = Colib_clock.Mclock

let check = Alcotest.check

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let myciel3_text = Dimacs_col.to_string (Generators.mycielski 3)

let job ?(id = "job-1") ?(deadline = 30.0) ?(k = None) () =
  {
    Frame.job_id = id;
    dimacs = myciel3_text;
    j_k = k;
    deadline;
    strategies = "dsatur";
    sbp = "";
    instance_dependent = false;
    j_seed = 0;
  }

(* ---------- wire format ---------- *)

let test_wire_roundtrip () =
  let j = job () in
  (match Frame.decode_request (Frame.encode_request (Frame.Submit j)) with
  | Ok (Frame.Submit j') ->
    check Alcotest.string "job id" j.Frame.job_id j'.Frame.job_id;
    check Alcotest.string "dimacs" j.Frame.dimacs j'.Frame.dimacs;
    check (Alcotest.float 0.0) "deadline" j.Frame.deadline j'.Frame.deadline
  | _ -> Alcotest.fail "submit must roundtrip");
  (match Frame.decode_request (Frame.encode_request Frame.Ping) with
  | Ok Frame.Ping -> ()
  | _ -> Alcotest.fail "ping must roundtrip");
  let r =
    {
      Frame.r_job_id = "j";
      r_outcome = "optimal";
      r_colors = Some 4;
      r_coloring = Some [| 0; 1; 2; 3 |];
      r_winner = Some "DSATUR B&B";
      r_certified = true;
      r_detail = "";
      r_time = 0.25;
      r_replayed = false;
    }
  in
  List.iter
    (fun resp ->
      match Frame.decode_response (Frame.encode_response resp) with
      | Ok resp' ->
        check Alcotest.bool "response roundtrips" true (resp = resp')
      | Error e -> Alcotest.fail (Frame.error_to_string e))
    [
      Frame.Accepted "j";
      Frame.Overloaded { queued = 3; capacity = 3 };
      Frame.Rejected { rj_job_id = "j"; reason = "nope" };
      Frame.Result r;
      Frame.Pong;
    ]

let test_wire_rejects_confusion () =
  (* a response payload fed to the request decoder: typed direction error,
     not an unmarshal crash *)
  (match Frame.decode_request (Frame.encode_response Frame.Pong) with
  | Error (Frame.Bad_payload m) ->
    check Alcotest.bool "direction named" true
      (contains_substring m "direction")
  | _ -> Alcotest.fail "wrong direction must be typed");
  (* a future protocol generation: typed version error *)
  let payload = Frame.encode_request Frame.Ping in
  let forged = Bytes.of_string payload in
  Bytes.set forged 3 '9';
  (match Frame.decode_request (Bytes.to_string forged) with
  | Error (Frame.Bad_version _) -> ()
  | _ -> Alcotest.fail "future version must be typed");
  (* bytes that are not a tagged message at all *)
  (match Frame.decode_request "xy" with
  | Error (Frame.Bad_payload _) -> ()
  | _ -> Alcotest.fail "short payload must be typed");
  match Frame.decode_response "CRS1this is not marshal data" with
  | Error (Frame.Bad_payload _) -> ()
  | _ -> Alcotest.fail "unmarshalable payload must be typed"

(* ---------- journal rotation ---------- *)

let tmp_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "colib_srv_%s_%d" name (Unix.getpid ()))

let test_journal_rotation () =
  let path = tmp_path "rotate.jsonl" in
  let j = Journal.create ~rotate_bytes:2048 path in
  (* a daemon-shaped workload: few keys, many superseding transitions *)
  let blob = String.make 100 'x' in
  for round = 1 to 50 do
    List.iter
      (fun key ->
        Journal.append j
          [
            ("key", key);
            ("state", if round mod 2 = 0 then "running" else "accepted");
            ("round", string_of_int round);
            ("dimacs", blob);
          ])
      [ "a"; "b"; "c" ]
  done;
  let size = (Unix.stat path).Unix.st_size in
  check Alcotest.bool "file stays near the limit"
    true (size < 4096);
  check Alcotest.bool "rotated at least once" true (Journal.rotations j > 0);
  check Alcotest.bool "backup preserved" true (Sys.file_exists (path ^ ".1"));
  (* the compacted journal still resumes correctly: latest state per key *)
  let j' = Journal.load path in
  List.iter
    (fun key ->
      match Journal.find j' key with
      | Some r ->
        check (Alcotest.option Alcotest.string) (key ^ " latest round")
          (Some "50")
          (List.assoc_opt "round" r);
        check (Alcotest.option Alcotest.string) (key ^ " latest state")
          (Some "running")
          (List.assoc_opt "state" r)
      | None -> Alcotest.fail (key ^ " lost in rotation"))
    [ "a"; "b"; "c" ];
  check Alcotest.bool "rotation count recovered on load" true
    (Journal.rotations j' > 0);
  Sys.remove path;
  Sys.remove (path ^ ".1")

let test_journal_rotation_preserves_unkeyed () =
  let path = tmp_path "rotate_unkeyed.jsonl" in
  let j = Journal.create ~rotate_bytes:512 path in
  Journal.append j [ ("event", "boot"); ("note", String.make 80 'n') ];
  for i = 1 to 30 do
    Journal.append j
      [ ("key", "k"); ("state", "s" ^ string_of_int i);
        ("pad", String.make 60 'p') ]
  done;
  let j' = Journal.load path in
  check Alcotest.bool "unkeyed record survives compaction" true
    (List.exists
       (fun r -> List.assoc_opt "event" r = Some "boot")
       (Journal.records j'));
  Sys.remove path;
  (try Sys.remove (path ^ ".1") with Sys_error _ -> ())

let test_journal_rotation_retain () =
  (* the session streams forced a per-key retention policy onto rotation:
     `All keeps a key's full history (session edit logs), `Drop garbage-
     collects dead streams, `Latest keeps the usual newest-record-per-key.
     Mix all three with unkeyed records and prove each class's fate. *)
  let path = tmp_path "rotate_retain.jsonl" in
  let retain key =
    if String.length key >= 6 && String.sub key 0 6 = "__live" then `All
    else if String.length key >= 6 && String.sub key 0 6 = "__dead" then `Drop
    else `Latest
  in
  let j = Journal.create ~rotate_bytes:1024 ~retain path in
  Journal.append j [ ("event", "boot") ];
  (* a live session stream: a control record that is superseded once, and
     per-seq edit records — including a duplicate-keyed pair that `Latest
     would collapse but `All must keep whole *)
  Journal.append j [ ("key", "__live"); ("state", "open"); ("lease", "60") ];
  for seq = 1 to 5 do
    Journal.append j
      [ ("key", Printf.sprintf "__live#%d" seq); ("op", "v") ]
  done;
  Journal.append j [ ("key", "__live#1"); ("op", "v"); ("dup", "yes") ];
  (* a dead session stream: rotation garbage-collects every record *)
  Journal.append j [ ("key", "__dead"); ("state", "expired") ];
  for seq = 1 to 5 do
    Journal.append j
      [ ("key", Printf.sprintf "__dead#%d" seq); ("op", "v") ]
  done;
  (* job-shaped churn under `Latest drives the file over the threshold *)
  for round = 1 to 30 do
    Journal.append j
      [
        ("key", "job-1");
        ("state", if round = 30 then "done" else "running");
        ("pad", String.make 60 'p');
      ]
  done;
  check Alcotest.bool "rotated at least once" true (Journal.rotations j > 0);
  let j' = Journal.load ~retain path in
  let records = Journal.records j' in
  let with_key k =
    List.filter (fun r -> List.assoc_opt "key" r = Some k) records
  in
  (* `All: the duplicate-keyed pair survives in full *)
  check Alcotest.int "live dup-keyed history kept whole" 2
    (List.length (with_key "__live#1"));
  for seq = 2 to 5 do
    check Alcotest.int
      (Printf.sprintf "live edit %d kept" seq)
      1
      (List.length (with_key (Printf.sprintf "__live#%d" seq)))
  done;
  check Alcotest.bool "live control kept" true (Journal.mem j' "__live");
  (* `Drop: the dead stream is gone entirely *)
  check Alcotest.bool "dead control dropped" false (Journal.mem j' "__dead");
  for seq = 1 to 5 do
    check Alcotest.bool
      (Printf.sprintf "dead edit %d dropped" seq)
      false
      (Journal.mem j' (Printf.sprintf "__dead#%d" seq))
  done;
  (* `Latest: one record, the newest *)
  (match Journal.find j' "job-1" with
  | Some r ->
    check (Alcotest.option Alcotest.string) "job compacted to latest"
      (Some "done")
      (List.assoc_opt "state" r)
  | None -> Alcotest.fail "job lost in rotation");
  check Alcotest.int "job history collapsed" 1 (List.length (with_key "job-1"));
  (* unkeyed records still survive *)
  check Alcotest.bool "unkeyed record survives" true
    (List.exists (fun r -> List.assoc_opt "event" r = Some "boot") records);
  Sys.remove path;
  (try Sys.remove (path ^ ".1") with Sys_error _ -> ())

(* ---------- SIGPIPE-safe writes (satellite regression) ---------- *)

let test_half_closed_pipe_write () =
  Frame.ignore_sigpipe ();
  let r, w = Unix.pipe () in
  Unix.close r;
  (* the peer is gone: the write must come back as a typed Closed, and this
     process must still be alive to observe it (SIGPIPE ignored) *)
  (match Frame.write_frame w (String.make 100_000 'z') with
  | Error Frame.Closed -> ()
  | Ok () -> Alcotest.fail "write into a half-closed pipe cannot succeed"
  | Error e -> Alcotest.fail ("expected Closed, got " ^ Frame.io_error_to_string e));
  Unix.close w;
  (* same through a socketpair, after the reader half-closes mid-stream *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.close b;
  (match Frame.write_frame a (String.make 1_000_000 'q') with
  | Error Frame.Closed -> ()
  | Ok () -> Alcotest.fail "write to a closed socket peer cannot succeed"
  | Error e -> Alcotest.fail ("expected Closed, got " ^ Frame.io_error_to_string e));
  Unix.close a

let test_write_frame_slow_reader_deadline () =
  (* a reader that never drains: the writer must abandon at its deadline
     with Io_timeout instead of wedging forever *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let big = String.make 8_000_000 'w' in
  let t0 = Mclock.now () in
  (match Frame.write_frame ~deadline:(t0 +. 0.5) a big with
  | Error Frame.Io_timeout -> ()
  | Ok () -> Alcotest.fail "an undrained 8MB write cannot complete"
  | Error e -> Alcotest.fail ("expected Io_timeout, got " ^ Frame.io_error_to_string e));
  check Alcotest.bool "returned promptly" true (Mclock.now () -. t0 < 5.0);
  Unix.close a;
  Unix.close b

(* ---------- daemon harness ---------- *)

let test_dir = tmp_path "daemon"

let fresh_paths name =
  let dir = Filename.concat test_dir name in
  let rec rm p =
    if Sys.file_exists p then
      if Sys.is_directory p then begin
        Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
        Unix.rmdir p
      end
      else Sys.remove p
  in
  rm dir;
  let rec mk p =
    if not (Sys.file_exists p) then begin
      mk (Filename.dirname p);
      try Unix.mkdir p 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  mk dir;
  ( Filename.concat dir "sock",
    Filename.concat dir "journal.jsonl",
    Filename.concat dir "ckpt" )

let daemon_cfg ?(max_queue = 16) ?(max_running = 2) ?(io_timeout = 2.0)
    ?(hold = 0.0) ?pool_size ?recycle_jobs ?cache ?pool_faults ?max_sessions
    ?session_lease ?session_snap_edits (socket, journal_path, ckpt_dir) =
  Server.config ~max_queue ~max_running ~io_timeout ~drain_grace:5.0
    ~default_strategies:[ P.Dsatur_strategy ] ~hold ?pool_size ?recycle_jobs
    ?cache ?pool_faults ?max_sessions ?session_lease ?session_snap_edits
    ~socket ~journal_path ~ckpt_dir ()

let start_daemon ?(pre = fun () -> ()) cfg =
  match Unix.fork () with
  | 0 -> (
    (* [pre] runs in the daemon child before serving: tests use it to
       install an ambient fault plan or lower the child's fd limit *)
    try
      pre ();
      Unix._exit (Server.run cfg)
    with _ -> Unix._exit 9)
  | pid ->
    (* wait until it answers a ping *)
    let deadline = Mclock.now () +. 10.0 in
    let rec ready () =
      if Mclock.now () > deadline then
        Alcotest.fail "daemon did not come up"
      else
        match Client.ping ~timeout:0.5 ~socket:cfg.Server.socket () with
        | Ok () -> ()
        | Error _ -> Unix.sleepf 0.05; ready ()
    in
    ready ();
    pid

let stop_daemon pid =
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  let deadline = Mclock.now () +. 15.0 in
  let rec reap () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
      if Mclock.now () > deadline then begin
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] pid)
      end
      else begin
        Unix.sleepf 0.05;
        reap ()
      end
    | _, st -> (
      match st with
      | Unix.WEXITED 0 -> ()
      | Unix.WEXITED c ->
        Alcotest.fail (Printf.sprintf "daemon exited %d on drain" c)
      | _ -> Alcotest.fail "daemon did not drain cleanly")
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap ()
  in
  reap ()

let no_sleep (_ : float) = ()

let submit_ok ?chaos ?(retries = 4) ?sleep ~socket j =
  match Client.submit ?chaos ~retries ?sleep ~socket j with
  | Ok r -> r
  | Error { attempts; last } ->
    Alcotest.fail
      (Printf.sprintf "submit gave up after %d attempts: %s" attempts
         (Client.failure_to_string last))

(* ---------- end-to-end: solve, certify, idempotent re-delivery ---------- *)

let test_daemon_end_to_end () =
  let paths = fresh_paths "e2e" in
  let socket, journal_path, _ = paths in
  let pid = start_daemon (daemon_cfg paths) in
  Fun.protect ~finally:(fun () -> stop_daemon pid) @@ fun () ->
  let r = submit_ok ~socket (job ~id:"e2e-1" ()) in
  check Alcotest.string "optimal" "optimal" r.Frame.r_outcome;
  check (Alcotest.option Alcotest.int) "chi(myciel3) = 4" (Some 4)
    r.Frame.r_colors;
  check Alcotest.bool "daemon certified it" true r.Frame.r_certified;
  check Alcotest.bool "fresh, not replayed" false r.Frame.r_replayed;
  (* the daemon's word is independently checkable *)
  (match (r.Frame.r_coloring, Dimacs_col.parse_result myciel3_text) with
  | Some col, Ok g ->
    check Alcotest.bool "coloring verifies locally" true
      (Certify.coloring g ~k:4 ~claimed:4 col = Ok ())
  | _ -> Alcotest.fail "coloring must be returned");
  (* resubmit the same job id: re-delivered from the journal, same answer,
     no second solve *)
  let r2 = submit_ok ~socket (job ~id:"e2e-1" ()) in
  check Alcotest.bool "replayed" true r2.Frame.r_replayed;
  check Alcotest.string "same outcome" r.Frame.r_outcome r2.Frame.r_outcome;
  check (Alcotest.option Alcotest.int) "same colors" r.Frame.r_colors
    r2.Frame.r_colors;
  (* and the journal records the terminal state *)
  let j = Journal.load journal_path in
  match Journal.find j "e2e-1" with
  | Some rec_ ->
    check (Alcotest.option Alcotest.string) "journaled done" (Some "done")
      (List.assoc_opt "state" rec_)
  | None -> Alcotest.fail "finished job must be journaled"

let test_daemon_rejects_malformed () =
  let paths = fresh_paths "reject" in
  let socket, _, _ = paths in
  let pid = start_daemon (daemon_cfg paths) in
  Fun.protect ~finally:(fun () -> stop_daemon pid) @@ fun () ->
  let bad = { (job ~id:"bad-1" ()) with Frame.dimacs = "p edge oops" } in
  match Client.submit ~retries:1 ~sleep:no_sleep ~socket bad with
  | Error { last = Client.Rejected { reason; _ }; attempts } ->
    check Alcotest.int "no retry on permanent rejection" 1 attempts;
    check Alcotest.bool "reason names the parse" true
      (contains_substring reason "malformed")
  | Error { last; _ } ->
    Alcotest.fail ("expected Rejected, got " ^ Client.failure_to_string last)
  | Ok _ -> Alcotest.fail "malformed instance cannot be accepted"

(* ---------- admission control ---------- *)

let test_daemon_sheds_overload () =
  (* one slot, one queue seat, slow jobs: the third concurrent submit must
     be shed with a typed Overloaded naming the bound *)
  let paths = fresh_paths "overload" in
  let socket, journal_path, _ = paths in
  let pid =
    start_daemon (daemon_cfg ~max_running:1 ~max_queue:1 ~hold:3.0 paths)
  in
  Fun.protect ~finally:(fun () -> stop_daemon pid) @@ fun () ->
  (* submit two jobs raw (no waiting for results): one runs, one queues *)
  let submit_raw id =
    let fd =
      Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0
    in
    Unix.connect fd (Unix.ADDR_UNIX socket);
    (match
       Frame.write_frame fd (Frame.encode_request (Frame.Submit (job ~id ())))
     with
    | Ok () -> ()
    | Error e -> Alcotest.fail (Frame.io_error_to_string e));
    let resp =
      match Frame.read_frame ~deadline:(Mclock.now () +. 5.0) fd with
      | Ok payload -> (
        match Frame.decode_response payload with
        | Ok resp -> resp
        | Error e -> Alcotest.fail (Frame.error_to_string e))
      | Error e -> Alcotest.fail (Frame.read_error_to_string e)
    in
    (fd, resp)
  in
  let fd1, r1 = submit_raw "ov-1" in
  let fd2, r2 = submit_raw "ov-2" in
  (match (r1, r2) with
  | Frame.Accepted _, Frame.Accepted _ -> ()
  | _ -> Alcotest.fail "first two jobs must be accepted");
  (* now the slot is held (hold=3s) and the queue seat taken *)
  let fd3, r3 = submit_raw "ov-3" in
  (match r3 with
  | Frame.Overloaded { queued; capacity } ->
    check Alcotest.int "queue bound named" 1 capacity;
    check Alcotest.bool "queue depth reported" true (queued >= 1)
  | _ -> Alcotest.fail "third concurrent job must be shed");
  List.iter Unix.close [ fd1; fd2; fd3 ];
  (* the shed is journaled as a typed transition, not lost *)
  Unix.sleepf 0.2;
  let j = Journal.load journal_path in
  match Journal.find j "ov-3" with
  | Some rec_ ->
    check (Alcotest.option Alcotest.string) "journaled shed" (Some "shed")
      (List.assoc_opt "state" rec_)
  | None -> Alcotest.fail "shed must be journaled"

let test_daemon_deadline_zero () =
  (* a deadline of 0 is exhausted at admission: typed timeout result,
     delivered immediately, journaled as done *)
  let paths = fresh_paths "deadline0" in
  let socket, _, _ = paths in
  let pid = start_daemon (daemon_cfg paths) in
  Fun.protect ~finally:(fun () -> stop_daemon pid) @@ fun () ->
  let t0 = Mclock.now () in
  let r = submit_ok ~socket (job ~id:"dl-0" ~deadline:0.0 ()) in
  check Alcotest.string "typed timeout" "timeout" r.Frame.r_outcome;
  check Alcotest.bool "immediate" true (Mclock.now () -. t0 < 5.0);
  check Alcotest.bool "reason recorded" true
    (contains_substring r.Frame.r_detail "deadline")

(* ---------- network chaos ---------- *)

let test_daemon_survives_net_faults () =
  let paths = fresh_paths "chaos" in
  let socket, journal_path, _ = paths in
  let pid = start_daemon (daemon_cfg ~io_timeout:1.0 paths) in
  Fun.protect ~finally:(fun () -> stop_daemon pid) @@ fun () ->
  (* attempts 0-2 are faulty, attempt 3 is clean: the client's own retry
     loop must carry the job through disconnects, garbage, and truncation *)
  let plan =
    Chaos.net_scripted
      [
        (0, Chaos.Disconnect_mid_frame);
        (1, Chaos.Net_garbage);
        (2, Chaos.Net_truncated_frame);
      ]
  in
  let r =
    submit_ok ~chaos:plan ~retries:4 ~sleep:no_sleep ~socket
      (job ~id:"chaos-1" ())
  in
  check Alcotest.string "answer despite chaos" "optimal" r.Frame.r_outcome;
  check Alcotest.bool "certified" true r.Frame.r_certified;
  (* the aborted attempts created no phantom jobs (daemon metadata records
     carry "__"-prefixed keys and are not jobs) *)
  let j = Journal.load journal_path in
  let keys =
    List.sort_uniq compare
      (List.filter_map (fun r -> List.assoc_opt "key" r) (Journal.records j))
    |> List.filter (fun k -> not (String.length k >= 2 && String.sub k 0 2 = "__"))
  in
  check
    (Alcotest.list Alcotest.string)
    "only the real job journaled" [ "chaos-1" ] keys

let test_daemon_sheds_slow_loris () =
  let paths = fresh_paths "loris" in
  let socket, _, _ = paths in
  let pid = start_daemon (daemon_cfg ~io_timeout:0.5 paths) in
  Fun.protect ~finally:(fun () -> stop_daemon pid) @@ fun () ->
  (* a writer that trickles one byte every 0.2s into a 0.5s-idle daemon:
     it must be shed, and the daemon must stay fully serviceable *)
  let t0 = Mclock.now () in
  (match
     Client.submit ~retries:0 ~sleep:no_sleep
       ~chaos:(Chaos.net_scripted [ (0, Chaos.Slow_loris 0.2) ])
       ~socket (job ~id:"loris-1" ())
   with
  | Ok _ -> Alcotest.fail "a slow-loris attempt cannot produce a result"
  | Error { last; _ } ->
    check Alcotest.bool "typed transient failure" true (Client.transient last));
  check Alcotest.bool "shed long before the frame completes" true
    (Mclock.now () -. t0 < 30.0);
  (* daemon still answers *)
  let r = submit_ok ~socket (job ~id:"loris-2" ()) in
  check Alcotest.string "clean submit after loris" "optimal"
    r.Frame.r_outcome

(* ---------- crash recovery: kill -9 mid-job ---------- *)

let read_all fd =
  let b = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 4096 with
    | 0 -> Buffer.contents b
    | n ->
      Buffer.add_subbytes b chunk 0 n;
      go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let test_daemon_kill9_recovery () =
  (* the acceptance gate: an accepted job survives kill -9 of the daemon
     mid-solve; the restarted daemon replays the journal, warm-resumes the
     job, and the client — retrying through the outage — receives the same
     certified answer an uninterrupted run gives *)
  let paths = fresh_paths "kill9" in
  let socket, journal_path, _ = paths in
  let cfg = daemon_cfg ~hold:2.0 paths in
  let pid1 = start_daemon cfg in
  (* the client lives in its own process so the test can orchestrate the
     kill while the submit is in flight; it reports the result over a pipe *)
  let pr, pw = Unix.pipe () in
  let cpid =
    match Unix.fork () with
    | 0 ->
      Unix.close pr;
      let verdict =
        match
          Client.submit ~retries:12 ~backoff:0.2 ~backoff_cap:1.0 ~socket
            (job ~id:"k9-1" ())
        with
        | Ok r ->
          Printf.sprintf "ok|%s|%s|%b|%b" r.Frame.r_outcome
            (match r.Frame.r_colors with
            | Some c -> string_of_int c
            | None -> "-")
            r.Frame.r_certified r.Frame.r_replayed
        | Error { last; _ } -> "gave-up|" ^ Client.failure_to_string last
      in
      ignore
        (Unix.write_substring pw verdict 0 (String.length verdict) : int);
      Unix.close pw;
      Unix._exit 0
    | pid -> pid
  in
  Unix.close pw;
  (* wait for the journal to show the job running (the runner is inside its
     2s hold), then SIGKILL the daemon mid-job *)
  let deadline = Mclock.now () +. 10.0 in
  let rec wait_running () =
    let st =
      match Journal.find (Journal.load journal_path) "k9-1" with
      | Some r -> List.assoc_opt "state" r
      | None -> None
    in
    if st = Some "running" then ()
    else if Mclock.now () > deadline then
      Alcotest.fail "job never reached running"
    else begin
      Unix.sleepf 0.05;
      wait_running ()
    end
  in
  wait_running ();
  Unix.kill pid1 Sys.sigkill;
  ignore (Unix.waitpid [] pid1);
  (* crash window: the client is now retrying against a dead socket *)
  Unix.sleepf 0.3;
  let pid2 = start_daemon cfg in
  Fun.protect ~finally:(fun () -> stop_daemon pid2) @@ fun () ->
  (* the restarted daemon must have requeued the in-flight job *)
  let verdict = read_all pr in
  Unix.close pr;
  ignore (Unix.waitpid [] cpid);
  (match String.split_on_char '|' verdict with
  | [ "ok"; outcome; colors; certified; _replayed ] ->
    check Alcotest.string "same outcome as uninterrupted" "optimal" outcome;
    check Alcotest.string "same chromatic number" "4" colors;
    check Alcotest.string "certified" "true" certified
  | _ -> Alcotest.fail ("client verdict: " ^ verdict));
  (* a fresh submit of the same id re-delivers idempotently *)
  let r = submit_ok ~socket (job ~id:"k9-1" ()) in
  check Alcotest.bool "re-delivered from journal" true r.Frame.r_replayed;
  check Alcotest.string "journal answer matches" "optimal" r.Frame.r_outcome;
  check (Alcotest.option Alcotest.int) "journal colors match" (Some 4)
    r.Frame.r_colors;
  (* the solve that completed after recovery populated the result cache, so
     a NEW id with the same parameters is served from it — re-certified *)
  let r_new = submit_ok ~socket (job ~id:"k9-2" ()) in
  check Alcotest.string "cache survives kill -9" "optimal"
    r_new.Frame.r_outcome;
  check Alcotest.bool "cached delivery certified" true
    r_new.Frame.r_certified;
  (match Client.health ~timeout:5.0 ~socket () with
  | Ok h ->
    check Alcotest.bool "cache hit recorded" true (h.Frame.h_cache_hits >= 1)
  | Error f ->
    Alcotest.fail ("health failed: " ^ Client.failure_to_string f));
  (* and the journal's terminal state is done — the accepted job was never
     lost across the crash *)
  match Journal.find (Journal.load journal_path) "k9-1" with
  | Some rec_ ->
    check (Alcotest.option Alcotest.string) "terminal state" (Some "done")
      (List.assoc_opt "state" rec_)
  | None -> Alcotest.fail "job must be journaled after recovery"

(* ---------- warm pool, result cache, coalescing ---------- *)

let health_ok ~socket () =
  match Client.health ~timeout:5.0 ~socket () with
  | Ok h -> h
  | Error f -> Alcotest.fail ("health failed: " ^ Client.failure_to_string f)

(* open a connection, submit, expect Accepted; the Result frame is read
   later from the same fd *)
let submit_async ~socket j =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  (match Frame.write_frame fd (Frame.encode_request (Frame.Submit j)) with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Frame.io_error_to_string e));
  (match Frame.read_frame ~deadline:(Mclock.now () +. 5.0) fd with
  | Ok payload -> (
    match Frame.decode_response payload with
    | Ok (Frame.Accepted _) -> ()
    | Ok _ -> Alcotest.fail "expected Accepted"
    | Error e -> Alcotest.fail (Frame.error_to_string e))
  | Error e -> Alcotest.fail (Frame.read_error_to_string e));
  fd

let read_result fd =
  match Frame.read_frame ~deadline:(Mclock.now () +. 30.0) fd with
  | Ok payload -> (
    match Frame.decode_response payload with
    | Ok (Frame.Result r) -> r
    | Ok _ -> Alcotest.fail "expected Result"
    | Error e -> Alcotest.fail (Frame.error_to_string e))
  | Error e -> Alcotest.fail (Frame.read_error_to_string e)

let test_pool_coalescing () =
  (* N concurrent jobs with identical parameters but distinct ids: ONE
     solve, N certified replies — each under its own id, each journaled
     terminally under its own key *)
  let paths = fresh_paths "coalesce" in
  let socket, journal_path, _ = paths in
  let pid = start_daemon (daemon_cfg ~max_running:4 ~hold:1.0 paths) in
  Fun.protect ~finally:(fun () -> stop_daemon pid) @@ fun () ->
  let ids = [ "co-1"; "co-2"; "co-3" ] in
  let fds = List.map (fun id -> submit_async ~socket (job ~id ())) ids in
  let results = List.map read_result fds in
  List.iter Unix.close fds;
  List.iter2
    (fun id r ->
      check Alcotest.string "reply under its own id" id r.Frame.r_job_id;
      check Alcotest.string "optimal" "optimal" r.Frame.r_outcome;
      check (Alcotest.option Alcotest.int) "chi = 4" (Some 4) r.Frame.r_colors;
      check Alcotest.bool "certified" true r.Frame.r_certified)
    ids results;
  let h = health_ok ~socket () in
  check Alcotest.int "two duplicates coalesced" 2 h.Frame.h_coalesced;
  check Alcotest.int "one solve missed the cache" 1 h.Frame.h_cache_misses;
  (* the journal shows exactly one job ever reached [running]; the
     duplicates went from accepted straight to done *)
  let j = Journal.load journal_path in
  let ran =
    List.filter
      (fun r ->
        List.assoc_opt "state" r = Some "running"
        && match List.assoc_opt "key" r with
           | Some k -> List.mem k ids
           | None -> false)
      (Journal.records j)
  in
  check Alcotest.int "exactly one running record" 1 (List.length ran);
  List.iter
    (fun id ->
      match Journal.find j id with
      | Some r ->
        check (Alcotest.option Alcotest.string)
          (id ^ " journaled done") (Some "done") (List.assoc_opt "state" r)
      | None -> Alcotest.fail (id ^ " must be journaled"))
    ids

let test_pool_cache_hit () =
  (* a second job with the same parameters under a new id is served from
     the cache — re-certified, no second solve *)
  let paths = fresh_paths "cachehit" in
  let socket, _, _ = paths in
  let pid = start_daemon (daemon_cfg paths) in
  Fun.protect ~finally:(fun () -> stop_daemon pid) @@ fun () ->
  let r1 = submit_ok ~socket (job ~id:"ch-1" ()) in
  check Alcotest.string "first solves" "optimal" r1.Frame.r_outcome;
  let r2 = submit_ok ~socket (job ~id:"ch-2" ()) in
  check Alcotest.string "hit is optimal" "optimal" r2.Frame.r_outcome;
  check (Alcotest.option Alcotest.int) "same chromatic number"
    r1.Frame.r_colors r2.Frame.r_colors;
  check Alcotest.bool "hit is certified" true r2.Frame.r_certified;
  check Alcotest.bool "fresh delivery, not a journal replay" false
    r2.Frame.r_replayed;
  check Alcotest.bool "detail names the cache" true
    (contains_substring r2.Frame.r_detail "cache");
  let h = health_ok ~socket () in
  check Alcotest.int "one cache hit" 1 h.Frame.h_cache_hits;
  check Alcotest.int "one cache miss" 1 h.Frame.h_cache_misses

let test_pool_cache_tamper () =
  (* a forged cache entry in the journal (append wins per key) must be
     rejected by delivery-time re-certification and the job re-solved —
     tampered bytes can never become a certified answer *)
  let paths = fresh_paths "tamper" in
  let socket, journal_path, _ = paths in
  let cfg = daemon_cfg paths in
  let pid1 = start_daemon cfg in
  let r1 = submit_ok ~socket (job ~id:"tm-1" ()) in
  check Alcotest.string "seed solve" "optimal" r1.Frame.r_outcome;
  stop_daemon pid1;
  (* forge the entry for this parameter digest: a zero coloring colors
     adjacent vertices alike, so certification must fail *)
  let digest =
    Digest.to_hex
      (Digest.string
         (String.concat "\x00" [ myciel3_text; ""; "dsatur"; ""; "false"; "0" ]))
  in
  let nverts =
    match Dimacs_col.parse_result myciel3_text with
    | Ok g -> Colib_graph.Graph.num_vertices g
    | Error _ -> Alcotest.fail "myciel3 must parse"
  in
  let forged_coloring =
    String.concat " " (List.init nverts (fun _ -> "0"))
  in
  let j = Journal.load journal_path in
  Journal.append j
    [
      ("key", "__cache__" ^ digest);
      ("state", "entry");
      ("colors", "4");
      ("coloring", forged_coloring);
      ("winner", "forged");
      ("time", "0.001");
    ];
  Journal.close j;
  let pid2 = start_daemon cfg in
  Fun.protect ~finally:(fun () -> stop_daemon pid2) @@ fun () ->
  let r2 = submit_ok ~socket (job ~id:"tm-2" ()) in
  check Alcotest.string "re-solved to optimal" "optimal" r2.Frame.r_outcome;
  check (Alcotest.option Alcotest.int) "correct chromatic number" (Some 4)
    r2.Frame.r_colors;
  check Alcotest.bool "certified" true r2.Frame.r_certified;
  check Alcotest.bool "not served from the forged entry" false
    (contains_substring r2.Frame.r_detail "cache");
  let h = health_ok ~socket () in
  check Alcotest.int "forged entry never hit" 0 h.Frame.h_cache_hits

let test_pool_recycling () =
  (* recycle_jobs = 1: every job retires its worker; the slot respawns and
     service continues — recycling is planned turnover, not a restart *)
  let paths = fresh_paths "recycle" in
  let socket, _, _ = paths in
  let pid =
    start_daemon (daemon_cfg ~max_running:1 ~pool_size:1 ~recycle_jobs:1 paths)
  in
  Fun.protect ~finally:(fun () -> stop_daemon pid) @@ fun () ->
  for i = 1 to 3 do
    (* distinct seeds -> distinct digests, so every job truly solves *)
    let j = { (job ~id:(Printf.sprintf "rc-%d" i) ()) with Frame.j_seed = i } in
    let r = submit_ok ~retries:8 ~socket j in
    check Alcotest.string (Printf.sprintf "job %d optimal" i) "optimal"
      r.Frame.r_outcome
  done;
  let h = health_ok ~socket () in
  check Alcotest.bool "workers recycled" true (h.Frame.h_pool_recycles >= 2);
  check Alcotest.int "recycling is not a crash restart" 0
    h.Frame.h_pool_restarts

let test_pool_worker_killed () =
  (* chaos: SIGKILL the worker right after the first dispatch lands on it;
     the pool respawns the slot, the daemon requeues the job warm, and the
     client still receives a certified result *)
  let paths = fresh_paths "workerkill" in
  let socket, _, _ = paths in
  let pid =
    start_daemon
      (daemon_cfg ~max_running:1 ~pool_size:1 ~hold:0.3
         ~pool_faults:(Chaos.worker_scripted [ (0, Chaos.Worker_kill) ])
         paths)
  in
  Fun.protect ~finally:(fun () -> stop_daemon pid) @@ fun () ->
  let r = submit_ok ~retries:8 ~socket (job ~id:"wk-1" ()) in
  check Alcotest.string "survives the worker kill" "optimal"
    r.Frame.r_outcome;
  check (Alcotest.option Alcotest.int) "chi = 4" (Some 4) r.Frame.r_colors;
  check Alcotest.bool "certified" true r.Frame.r_certified;
  let h = health_ok ~socket () in
  check Alcotest.bool "slot respawned after the kill" true
    (h.Frame.h_pool_restarts >= 1)

(* ---------- resource exhaustion: the degradation ladder ---------- *)

let test_daemon_degraded_recovers () =
  (* the disk-full gate: inside an injected ENOSPC window the daemon sheds
     new submissions with a typed Unavailable (it cannot journal their
     acceptance), stays up, answers Health with the degraded state, and
     re-arms automatically once the disk recovers — with every job it DID
     accept ending journaled as done *)
  let paths = fresh_paths "degraded" in
  let socket, journal_path, _ = paths in
  let cfg = daemon_cfg paths in
  let pid =
    start_daemon
      ~pre:(fun () ->
        Chaos.fs_install (Chaos.fs_timed [ (Chaos.Enospc, 1.0, 3.0) ]))
      cfg
  in
  Fun.protect ~finally:(fun () -> stop_daemon pid) @@ fun () ->
  (* before the window: normal service; these jobs must end done *)
  let r = submit_ok ~socket (job ~id:"deg-before" ()) in
  check Alcotest.string "pre-window submit solves" "optimal"
    r.Frame.r_outcome;
  (* probe single attempts until the window opens and one is shed typed *)
  let deadline = Mclock.now () +. 8.0 in
  let rec wait_unavailable i =
    if Mclock.now () > deadline then
      Alcotest.fail "daemon never entered the degraded state"
    else
      match
        Client.submit ~retries:0 ~sleep:no_sleep ~socket
          (job ~id:(Printf.sprintf "deg-probe-%d" i) ())
      with
      | Error { last = Client.Unavailable reason; _ } -> reason
      | Ok _ | Error _ ->
        Unix.sleepf 0.1;
        wait_unavailable (i + 1)
  in
  let reason = wait_unavailable 0 in
  check Alcotest.bool "shed names the durability failure" true
    (contains_substring reason "durability degraded");
  (* the Health frame reports the ladder state while degraded *)
  (match Client.health ~socket () with
  | Ok h ->
    check Alcotest.bool "health says degraded" true
      (contains_substring h.Frame.h_durability "degraded");
    check Alcotest.bool "health carries the I/O error" true
      (String.length h.Frame.h_last_io_error > 0)
  | Error f -> Alcotest.fail ("health failed: " ^ Client.failure_to_string f));
  (* past the window the daemon re-arms on its own: a patient client gets
     a certified answer with no operator action *)
  let r2 =
    submit_ok ~retries:12 ~socket (job ~id:"deg-after" ())
  in
  check Alcotest.string "post-recovery submit solves" "optimal"
    r2.Frame.r_outcome;
  check Alcotest.bool "certified" true r2.Frame.r_certified;
  let rec wait_durable tries =
    match Client.health ~socket () with
    | Ok h when h.Frame.h_durability = "ok" -> ()
    | Ok _ when tries > 0 ->
      Unix.sleepf 0.2;
      wait_durable (tries - 1)
    | Ok h -> Alcotest.failf "still %s after recovery" h.Frame.h_durability
    | Error f -> Alcotest.fail ("health failed: " ^ Client.failure_to_string f)
  in
  wait_durable 25;
  (* invariant: every job the daemon accepted ended in a terminal state *)
  let j = Journal.load journal_path in
  List.iter
    (fun r ->
      match List.assoc_opt "key" r with
      | Some k when not (String.length k >= 2 && String.sub k 0 2 = "__") -> (
        match List.assoc_opt "state" (Option.get (Journal.find j k)) with
        | Some ("done" | "failed" | "shed") -> ()
        | st ->
          Alcotest.failf "job %s left non-terminal: %s" k
            (Option.value st ~default:"<none>"))
      | _ -> ())
    (Journal.records j)

let test_daemon_fd_exhaustion () =
  (* fd-pressure gate: with the daemon's RLIMIT_NOFILE lowered, a horde of
     idle connections drives accept into EMFILE; the daemon must treat it
     as an incident — shed idles, keep the backlog draining, record the
     error — and stay fully serviceable afterwards *)
  let paths = fresh_paths "fdlimit" in
  let socket, _, _ = paths in
  let cfg = daemon_cfg ~io_timeout:30.0 paths in
  let pid =
    start_daemon
      ~pre:(fun () -> ignore (Durable.set_rlimit_nofile 32 : bool))
      cfg
  in
  Fun.protect ~finally:(fun () -> stop_daemon pid) @@ fun () ->
  let idle = ref [] in
  for _ = 1 to 40 do
    match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
    | fd -> (
      try
        Unix.connect fd (Unix.ADDR_UNIX socket);
        idle := fd :: !idle
      with Unix.Unix_error _ -> Unix.close fd)
    | exception Unix.Unix_error _ -> ()
  done;
  check Alcotest.bool "pressure built (most connects landed)" true
    (List.length !idle >= 30);
  Unix.sleepf 0.5;
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) !idle;
  Unix.sleepf 0.3;
  (* the incident was recorded, not swallowed *)
  let rec health_retry tries =
    match Client.health ~socket () with
    | Ok h -> h
    | Error f ->
      if tries = 0 then
        Alcotest.fail ("health failed: " ^ Client.failure_to_string f)
      else begin
        Unix.sleepf 0.2;
        health_retry (tries - 1)
      end
  in
  let h = health_retry 25 in
  check Alcotest.bool "EMFILE incident recorded in health" true
    (contains_substring h.Frame.h_last_io_error "accept");
  (* and the daemon still solves *)
  let r = submit_ok ~retries:8 ~socket (job ~id:"fd-1" ()) in
  check Alcotest.string "serviceable after fd pressure" "optimal"
    r.Frame.r_outcome

(* ---------- the self-healing supervisor ---------- *)

let read_pid_file path =
  match open_in path with
  | ic ->
    let pid = try int_of_string (String.trim (input_line ic)) with _ -> -1 in
    close_in_noerr ic;
    pid
  | exception Sys_error _ -> -1

let test_supervise_restarts_sigkill () =
  (* the healing gate: SIGKILL the supervised daemon; the wrapper must
     restart it (fresh pid in the pid file, journal replayed), the Health
     frame must count the extra life, and a SIGTERM to the wrapper must
     drain the daemon and end supervision with exit 0 *)
  let paths = fresh_paths "supervised" in
  let socket, _, _ = paths in
  let cfg = daemon_cfg paths in
  let pid_file = Filename.concat (Filename.dirname socket) "daemon.pid" in
  let sup =
    match Unix.fork () with
    | 0 ->
      let scfg =
        Supervise.config ~backoff:0.05 ~backoff_cap:0.2 ~max_restarts:10
          ~window:30.0 ~pid_file ()
      in
      Unix._exit (Supervise.run scfg ~start:(fun () -> Server.run cfg))
    | pid -> pid
  in
  let failed fmt =
    Printf.ksprintf
      (fun msg ->
        (try Unix.kill sup Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] sup);
        Alcotest.fail msg)
      fmt
  in
  let rec wait_ready deadline =
    if Mclock.now () > deadline then failed "supervised daemon never came up"
    else
      match Client.ping ~timeout:0.5 ~socket () with
      | Ok () -> ()
      | Error _ ->
        Unix.sleepf 0.05;
        wait_ready deadline
  in
  wait_ready (Mclock.now () +. 10.0);
  (* the daemon answers pings before the supervisor's atomic pid-file
     write necessarily lands, so poll rather than read once *)
  let rec wait_pid deadline =
    let p = read_pid_file pid_file in
    if p > 0 then p
    else if Mclock.now () > deadline then -1
    else (
      Unix.sleepf 0.05;
      wait_pid deadline)
  in
  let dpid1 = wait_pid (Mclock.now () +. 5.0) in
  check Alcotest.bool "pid file names the daemon" true (dpid1 > 0);
  Unix.kill dpid1 Sys.sigkill;
  (* the wrapper must bring up a fresh child *)
  let deadline = Mclock.now () +. 10.0 in
  let rec wait_restart () =
    if Mclock.now () > deadline then failed "daemon was not restarted"
    else
      let p = read_pid_file pid_file in
      if p > 0 && p <> dpid1 && Client.ping ~timeout:0.5 ~socket () = Ok ()
      then p
      else begin
        Unix.sleepf 0.05;
        wait_restart ()
      end
  in
  let dpid2 = wait_restart () in
  check Alcotest.bool "fresh pid after restart" true (dpid2 <> dpid1);
  (match Client.health ~socket () with
  | Ok h ->
    check Alcotest.bool "restart counted in health" true
      (h.Frame.h_restarts >= 1)
  | Error f -> failed "health failed: %s" (Client.failure_to_string f));
  (* and the restarted service still solves *)
  (match Client.submit ~retries:4 ~socket (job ~id:"sup-1" ()) with
  | Ok r ->
    check Alcotest.string "solves after restart" "optimal" r.Frame.r_outcome
  | Error { last; _ } ->
    failed "submit failed: %s" (Client.failure_to_string last));
  (* operator shutdown passes through and ends supervision cleanly *)
  Unix.kill sup Sys.sigterm;
  (match Unix.waitpid [] sup with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED c -> Alcotest.failf "supervisor exited %d" c
  | _ -> Alcotest.fail "supervisor did not exit cleanly");
  check Alcotest.bool "pid file removed on shutdown" false
    (Sys.file_exists pid_file)

let test_supervise_circuit_breaker () =
  (* the breaker gate: a daemon scripted to SIGKILL itself shortly after
     every startup is a crash loop; the wrapper must give up after
     max_restarts crashes inside the window with its typed exit code
     instead of flapping forever *)
  let paths = fresh_paths "breaker" in
  let cfg = { (daemon_cfg paths) with Server.crash_after = Some 0.05 } in
  let t0 = Mclock.now () in
  let sup =
    match Unix.fork () with
    | 0 ->
      let scfg =
        Supervise.config ~backoff:0.02 ~backoff_cap:0.05 ~max_restarts:2
          ~window:30.0 ()
      in
      Unix._exit (Supervise.run scfg ~start:(fun () -> Server.run cfg))
    | pid -> pid
  in
  (match Unix.waitpid [] sup with
  | _, Unix.WEXITED c ->
    check Alcotest.int "typed breaker exit" Supervise.breaker_exit_code c
  | _ -> Alcotest.fail "supervisor must exit by itself on a crash loop");
  check Alcotest.bool "gave up promptly, no endless flap" true
    (Mclock.now () -. t0 < 20.0)

let test_client_backoff_shape () =
  (* the retry delays must follow min(cap, base*2^i) with jitter in
     [0.5, 1.5) — measured through the injected sleeper against a socket
     that does not exist *)
  let delays = ref [] in
  let sleep d = delays := d :: !delays in
  (match
     Client.submit ~retries:4 ~backoff:0.1 ~backoff_cap:0.4 ~sleep
       ~socket:(tmp_path "no-such-daemon.sock")
       (job ())
   with
  | Ok _ -> Alcotest.fail "no daemon, no result"
  | Error { attempts; last } ->
    check Alcotest.int "all attempts used" 5 attempts;
    check Alcotest.bool "typed unreachable" true
      (match last with Client.Unreachable _ -> true | _ -> false));
  let delays = List.rev !delays in
  check Alcotest.int "one delay per retry" 4 (List.length delays);
  List.iteri
    (fun i d ->
      let base = min 0.4 (0.1 *. (2.0 ** float_of_int i)) in
      check Alcotest.bool
        (Printf.sprintf "delay %d in [%.2f, %.2f)" i (base *. 0.5)
           (base *. 1.5))
        true
        (d >= (base *. 0.5) -. 1e-9 && d < (base *. 1.5) +. 1e-9))
    delays

let test_client_unavailable_after_accepted () =
  (* regression: a daemon whose durability degrades between Accepted and
     the Result answers Unavailable on the open connection. That is a
     transient condition (the job is journaled and will be re-run), NOT a
     protocol violation — the taxonomy must say so *)
  let socket, _, _ = fresh_paths "unavail" in
  let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind srv (Unix.ADDR_UNIX socket);
  Unix.listen srv 1;
  let pid =
    match Unix.fork () with
    | 0 ->
      (try
         let fd, _ = Unix.accept srv in
         (match Frame.read_frame ~deadline:(Mclock.now () +. 5.0) fd with
         | Ok _ | Error _ -> ());
         ignore
           (Frame.write_frame fd
              (Frame.encode_response (Frame.Accepted "ua-1")));
         ignore
           (Frame.write_frame fd
              (Frame.encode_response
                 (Frame.Unavailable { u_reason = "journal write failed" })));
         Unix.close fd
       with _ -> ());
      Unix._exit 0
    | pid -> pid
  in
  Unix.close srv;
  let res =
    Client.submit ~retries:0 ~sleep:no_sleep ~socket (job ~id:"ua-1" ())
  in
  ignore (Unix.waitpid [] pid);
  match res with
  | Ok _ -> Alcotest.fail "an Unavailable daemon cannot produce a result"
  | Error { attempts; last } -> (
    check Alcotest.int "one attempt, no inner retries" 1 attempts;
    match last with
    | Client.Unavailable reason ->
      check Alcotest.bool "daemon's reason surfaced" true
        (contains_substring reason "journal")
    | f ->
      Alcotest.fail
        ("Unavailable after Accepted must stay transient, got "
        ^ Client.failure_to_string f))

let test_pool_coalescing_under_shedding () =
  (* coalescing under shedding: the representative dies — every one of its
     attempts lands on a worker scripted to be SIGKILLed, so it finalizes
     as a typed failure. The coalesced duplicates must NOT be dragged down
     with it: they are requeued independently, the first becomes the new
     representative on a healthy worker, and each answers certified under
     its own id *)
  let paths = fresh_paths "shed-coalesce" in
  let socket, journal_path, _ = paths in
  let pid =
    start_daemon
      (daemon_cfg ~max_running:4 ~pool_size:1
         ~pool_faults:
           (Chaos.worker_scripted
              [
                (0, Chaos.Worker_kill);
                (1, Chaos.Worker_kill);
                (2, Chaos.Worker_kill);
              ])
         paths)
  in
  Fun.protect ~finally:(fun () -> stop_daemon pid) @@ fun () ->
  (* the representative: admitted first; its three attempts all hit
     scripted-killed workers *)
  let rep_fd = submit_async ~socket (job ~id:"shed-rep" ()) in
  (* the duplicates: same parameter digest — they coalesce onto the doomed
     representative (coalescing covers both its Queued-between-attempts
     and Running states) *)
  let dup_ids = [ "shed-1"; "shed-2" ] in
  let dup_fds = List.map (fun id -> submit_async ~socket (job ~id ())) dup_ids in
  let rep = read_result rep_fd in
  Unix.close rep_fd;
  check Alcotest.string "representative fails under its own attempts"
    "failed" rep.Frame.r_outcome;
  let dups = List.map read_result dup_fds in
  List.iter Unix.close dup_fds;
  List.iter2
    (fun id r ->
      check Alcotest.string "reply under its own id" id r.Frame.r_job_id;
      check Alcotest.string "duplicate survives the shed" "optimal"
        r.Frame.r_outcome;
      check (Alcotest.option Alcotest.int) "chi = 4" (Some 4) r.Frame.r_colors;
      check Alcotest.bool "certified" true r.Frame.r_certified)
    dup_ids dups;
  let h = health_ok ~socket () in
  check Alcotest.bool "duplicates had coalesced" true (h.Frame.h_coalesced >= 2);
  (* the journal: the representative ends failed, each duplicate ends done *)
  let j = Journal.load journal_path in
  (match Journal.find j "shed-rep" with
  | Some r ->
    check (Alcotest.option Alcotest.string) "representative journaled failed"
      (Some "failed") (List.assoc_opt "state" r)
  | None -> Alcotest.fail "shed-rep must be journaled");
  List.iter
    (fun id ->
      match Journal.find j id with
      | Some r ->
        check (Alcotest.option Alcotest.string)
          (id ^ " journaled done") (Some "done") (List.assoc_opt "state" r)
      | None -> Alcotest.fail (id ^ " must be journaled"))
    dup_ids

(* ---------- multi-daemon fleet ---------- *)

let test_balancer_ejects_dead_daemon () =
  (* a fleet where one socket is dead from the start: the balancer must
     eject it after one failed exchange and complete the job on the
     healthy daemon — one dead daemon costs an exchange, not a job *)
  let paths = fresh_paths "fleet-eject" in
  let socket, _, _ = paths in
  let dead = tmp_path "fleet-dead.sock" in
  let pid = start_daemon (daemon_cfg paths) in
  Fun.protect ~finally:(fun () -> stop_daemon pid) @@ fun () ->
  let b = Balancer.create ~sleep:no_sleep [ dead; socket ] in
  let hops = ref [] in
  let r =
    match
      Balancer.submit ~retries:0
        ~on_dispatch:(fun i s -> hops := (i, s) :: !hops)
        b
        (job ~id:"fl-1" ())
    with
    | Ok r -> r
    | Error { attempts; last } ->
      Alcotest.fail
        (Printf.sprintf "fleet submit gave up after %d: %s" attempts
           (Client.failure_to_string last))
  in
  check Alcotest.string "optimal" "optimal" r.Frame.r_outcome;
  check Alcotest.bool "certified" true r.Frame.r_certified;
  (match List.rev !hops with
  | (0, s0) :: (1, s1) :: _ ->
    check Alcotest.string "first dispatch hit the dead daemon" dead s0;
    check Alcotest.string "re-dispatch hit the healthy one" socket s1
  | _ -> Alcotest.fail "expected two dispatches");
  let by_socket s =
    List.find (fun st -> st.Balancer.s_socket = s) (Balancer.stats b)
  in
  check Alcotest.int "dead daemon ejected" 1 (by_socket dead).Balancer.s_ejections;
  check Alcotest.bool "dead daemon banned" true (by_socket dead).Balancer.s_banned;
  check Alcotest.int "healthy daemon completed" 1
    (by_socket socket).Balancer.s_completed;
  (* a later probe readmits nothing while the socket stays dead *)
  Balancer.probe ~timeout:0.5 b;
  check Alcotest.int "probe ejects again" 2 (by_socket dead).Balancer.s_ejections

(* chaos gate (c): SIGKILL one of two daemons mid-solve. The client's
   exchange with the dying daemon fails, the balancer ejects it and
   re-dispatches the stranded job to the survivor, and the answer is the
   same certified chromatic number a healthy fleet produces *)
let test_fleet_daemon_sigkill_mid_solve () =
  let paths_a = fresh_paths "fleet-a" in
  let paths_b = fresh_paths "fleet-b" in
  let socket_a, _, _ = paths_a in
  let socket_b, _, _ = paths_b in
  (* daemon A holds every job 3 s so the kill lands mid-solve; B is fast *)
  let pid_a = start_daemon (daemon_cfg ~hold:3.0 paths_a) in
  let pid_b = start_daemon (daemon_cfg paths_b) in
  Fun.protect ~finally:(fun () ->
      (try Unix.kill pid_a Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] pid_a) with Unix.Unix_error _ -> ());
      stop_daemon pid_b)
  @@ fun () ->
  let killer =
    match Unix.fork () with
    | 0 ->
      Unix.sleepf 0.8;
      (try Unix.kill pid_a Sys.sigkill with Unix.Unix_error _ -> ());
      Unix._exit 0
    | pid -> pid
  in
  let b = Balancer.create ~sleep:no_sleep [ socket_a; socket_b ] in
  let hops = ref [] in
  let res =
    Balancer.submit ~retries:0
      ~on_dispatch:(fun i s -> hops := (i, s) :: !hops)
      b
      (job ~id:"fl-kill" ())
  in
  ignore (Unix.waitpid [] killer);
  (match res with
  | Ok r ->
    check Alcotest.string "survivor answers optimal" "optimal"
      r.Frame.r_outcome;
    check (Alcotest.option Alcotest.int) "same certified chi" (Some 4)
      r.Frame.r_colors;
    check Alcotest.bool "certified" true r.Frame.r_certified
  | Error { attempts; last } ->
    Alcotest.fail
      (Printf.sprintf "fleet must survive one daemon's death (%d: %s)"
         attempts
         (Client.failure_to_string last)));
  (match List.rev !hops with
  | (0, s0) :: (1, s1) :: _ ->
    check Alcotest.string "job first dispatched to the doomed daemon"
      socket_a s0;
    check Alcotest.string "stranded job re-dispatched to the survivor"
      socket_b s1
  | _ -> Alcotest.fail "expected the job to be re-dispatched");
  let st_a =
    List.find (fun st -> st.Balancer.s_socket = socket_a) (Balancer.stats b)
  in
  check Alcotest.bool "dead daemon ejected from the rotation" true
    (st_a.Balancer.s_ejections >= 1)

(* ---------- incremental sessions ---------- *)

module Session = Colib_session.Session

let sess_ok label = function
  | Ok v -> v
  | Error { Client.attempts; last } ->
    Alcotest.fail
      (Printf.sprintf "%s gave up after %d attempts: %s" label attempts
         (Client.failure_to_string last))

let sess_permanent label = function
  | Ok _ -> Alcotest.fail (label ^ ": expected a typed failure")
  | Error { Client.attempts; last } ->
    check Alcotest.int (label ^ ": permanent, no retry") 1 attempts;
    last

let test_session_frames_roundtrip () =
  List.iter
    (fun req ->
      match Frame.decode_request (Frame.encode_request req) with
      | Ok req' -> check Alcotest.bool "request roundtrips" true (req = req')
      | Error e -> Alcotest.fail (Frame.error_to_string e))
    [
      Frame.Sess_open
        {
          so_sid = "s1"; so_vertices = 8; so_colors = 8; so_edges = 28;
          so_lease = 60.0;
        };
      Frame.Sess_edit { se_sid = "s1"; se_seq = 3; se_op = "e 0 1" };
      Frame.Sess_query { sq_sid = "s1"; sq_seq = 4; sq_budget = 5.0 };
      Frame.Sess_close { sc_sid = "s1" };
    ];
  List.iter
    (fun resp ->
      match Frame.decode_response (Frame.encode_response resp) with
      | Ok resp' ->
        check Alcotest.bool "response roundtrips" true (resp = resp')
      | Error e -> Alcotest.fail (Frame.error_to_string e))
    [
      Frame.Sess_ok { sk_sid = "s1"; sk_seq = 3; sk_replayed = false };
      Frame.Sess_answer
        {
          sa_sid = "s1"; sa_seq = 4; sa_chi = 3; sa_coloring = [| 0; 1; 2 |];
          sa_certified = true; sa_incremental = true; sa_time = 0.01;
          sa_replayed = false;
        };
      Frame.Sess_expired { sx_sid = "s1" };
      Frame.Sess_evicted { sv_sid = "s1" };
    ]

let test_session_taxonomy () =
  (* the retry loop's contract: session reaping is permanent, load is not *)
  check Alcotest.bool "expired is permanent" false
    (Client.transient (Client.Session_expired "s"));
  check Alcotest.bool "evicted is permanent" false
    (Client.transient (Client.Session_evicted "s"));
  check Alcotest.bool "overloaded is transient" true
    (Client.transient (Client.Overloaded { queued = 1; capacity = 1 }));
  check Alcotest.bool "unavailable is transient" true
    (Client.transient (Client.Unavailable "disk"));
  check Alcotest.bool "rejected is permanent" false
    (Client.transient (Client.Rejected { job_id = "s"; reason = "" }))

let test_session_lifecycle () =
  let paths = fresh_paths "sess-life" in
  let socket, _, _ = paths in
  let pid = start_daemon (daemon_cfg paths) in
  Fun.protect ~finally:(fun () -> stop_daemon pid) @@ fun () ->
  let sid = "life-1" in
  let a =
    sess_ok "open"
      (Client.sess_open ~sleep:no_sleep ~socket ~sid ~vertices:4 ~colors:4
         ~edges:6 ())
  in
  check Alcotest.bool "fresh open" false a.Client.ack_replayed;
  check Alcotest.int "stream starts at 0" 0 a.Client.ack_seq;
  let edit seq e =
    sess_ok
      (Printf.sprintf "edit %d" seq)
      (Client.sess_edit ~sleep:no_sleep ~socket ~sid ~seq e)
  in
  for seq = 1 to 3 do
    ignore (edit seq Session.Add_vertex : Client.sess_ack)
  done;
  ignore (edit 4 (Session.Add_edge (0, 1)) : Client.sess_ack);
  ignore (edit 5 (Session.Add_edge (0, 2)) : Client.sess_ack);
  ignore (edit 6 (Session.Add_edge (1, 2)) : Client.sess_ack);
  let ans =
    sess_ok "query"
      (Client.sess_query ~sleep:no_sleep ~socket ~sid ~seq:7 ())
  in
  check Alcotest.int "triangle: chi 3" 3 ans.Frame.sa_chi;
  check Alcotest.bool "daemon certified" true ans.Frame.sa_certified;
  check Alcotest.bool "fresh answer" false ans.Frame.sa_replayed;
  (* a duplicate edit frame (client retry) is acknowledged, not re-applied *)
  let dup = edit 4 (Session.Add_edge (0, 1)) in
  check Alcotest.bool "duplicate edit replayed" true dup.Client.ack_replayed;
  (* a duplicate query re-delivers the cached answer *)
  let ans2 =
    sess_ok "dup query"
      (Client.sess_query ~sleep:no_sleep ~socket ~sid ~seq:7 ())
  in
  check Alcotest.bool "duplicate query replayed" true ans2.Frame.sa_replayed;
  check Alcotest.int "same chi re-delivered" 3 ans2.Frame.sa_chi;
  (* an idempotent reopen reports the stream position *)
  let re =
    sess_ok "reopen"
      (Client.sess_open ~sleep:no_sleep ~socket ~sid ~vertices:4 ~colors:4
         ~edges:6 ())
  in
  check Alcotest.bool "reopen replayed" true re.Client.ack_replayed;
  check Alcotest.int "reopen reports last seq" 7 re.Client.ack_seq;
  (* close, then the stream is gone — a plain Rejected, not expired *)
  ignore
    (sess_ok "close" (Client.sess_close ~sleep:no_sleep ~socket ~sid ())
      : Client.sess_ack);
  (match
     sess_permanent "edit after close"
       (Client.sess_edit ~sleep:no_sleep ~socket ~sid ~seq:8
          Session.Add_vertex)
   with
  | Client.Rejected { reason; _ } ->
    check Alcotest.bool "reason names the close" true
      (contains_substring reason "closed")
  | f -> Alcotest.fail ("expected Rejected, got " ^ Client.failure_to_string f));
  match Client.health ~timeout:5.0 ~socket () with
  | Ok h ->
    check Alcotest.int "no open sessions left" 0 h.Frame.h_sess_open;
    check Alcotest.bool "replays counted" true (h.Frame.h_sess_replayed >= 2)
  | Error f -> Alcotest.fail ("health: " ^ Client.failure_to_string f)

let test_session_kill9_recovery () =
  (* the acceptance gate: kill -9 mid-edit-burst, restart, and every open
     session is restored to its exact post-edit state — duplicate frames
     are answered from the journal, the sequence stays idempotent, and a
     re-query yields the right certified chi *)
  let paths = fresh_paths "sess-k9" in
  let socket, _, _ = paths in
  let cfg = daemon_cfg paths in
  let pid1 = start_daemon cfg in
  let sid = "k9-sess" in
  ignore
    (sess_ok "open"
       (Client.sess_open ~sleep:no_sleep ~socket ~sid ~vertices:4 ~colors:4
          ~edges:6 ())
      : Client.sess_ack);
  let edit seq e =
    sess_ok
      (Printf.sprintf "edit %d" seq)
      (Client.sess_edit ~sleep:no_sleep ~socket ~sid ~seq e)
  in
  for seq = 1 to 4 do
    ignore (edit seq Session.Add_vertex : Client.sess_ack)
  done;
  ignore (edit 5 (Session.Add_edge (0, 1)) : Client.sess_ack);
  ignore (edit 6 (Session.Add_edge (0, 2)) : Client.sess_ack);
  ignore (edit 7 (Session.Add_edge (1, 2)) : Client.sess_ack);
  let a1 =
    sess_ok "query" (Client.sess_query ~sleep:no_sleep ~socket ~sid ~seq:8 ())
  in
  check Alcotest.int "pre-crash chi" 3 a1.Frame.sa_chi;
  (* SIGKILL mid-burst: the daemon dies right after acking edit 9; the
     client never learns whether 9 was applied and must retry it *)
  ignore (edit 9 (Session.Add_edge (0, 3)) : Client.sess_ack);
  Unix.kill pid1 Sys.sigkill;
  ignore (Unix.waitpid [] pid1);
  let pid2 = start_daemon cfg in
  (* pid2 is deliberately SIGKILLed below; only pid3 needs a guard *)
  (* at-least-once delivery across the crash: re-send the possibly-lost
     edit and its predecessors; the journal answers, nothing re-applies *)
  List.iter
    (fun (seq, e) ->
      let a = edit seq e in
      check Alcotest.bool
        (Printf.sprintf "edit %d replayed after recovery" seq)
        true a.Client.ack_replayed)
    [ (7, Session.Add_edge (1, 2)); (9, Session.Add_edge (0, 3)) ];
  (* the stream continues exactly where it left off *)
  let re =
    sess_ok "reopen"
      (Client.sess_open ~sleep:no_sleep ~socket ~sid ~vertices:4 ~colors:4
         ~edges:6 ())
  in
  check Alcotest.int "recovered at seq 9" 9 re.Client.ack_seq;
  ignore (edit 10 (Session.Add_edge (1, 3)) : Client.sess_ack);
  ignore (edit 11 (Session.Add_edge (2, 3)) : Client.sess_ack);
  let a2 =
    sess_ok "post-recovery query"
      (Client.sess_query ~sleep:no_sleep ~socket ~sid ~seq:12 ())
  in
  check Alcotest.int "K4 after recovery: chi 4" 4 a2.Frame.sa_chi;
  check Alcotest.bool "recovered answer certified" true a2.Frame.sa_certified;
  (* second crash: this time with un-snapshotted suffix edits (the query
     above snapshotted at seq 12; edits 13-14 live only in the journal) *)
  ignore (edit 13 (Session.Remove_edge (0, 3)) : Client.sess_ack);
  ignore (edit 14 (Session.Remove_edge (1, 3)) : Client.sess_ack);
  Unix.kill pid2 Sys.sigkill;
  ignore (Unix.waitpid [] pid2);
  let pid3 = start_daemon cfg in
  Fun.protect ~finally:(fun () -> stop_daemon pid3) @@ fun () ->
  let a3 =
    sess_ok "second recovery query"
      (Client.sess_query ~sleep:no_sleep ~socket ~sid ~seq:15 ())
  in
  check Alcotest.int "edit-log suffix replayed: chi 3" 3 a3.Frame.sa_chi;
  check Alcotest.bool "still certified" true a3.Frame.sa_certified;
  (match Client.health ~timeout:5.0 ~socket () with
  | Ok h ->
    check Alcotest.bool "recovery counted" true (h.Frame.h_sess_recovered >= 1)
  | Error f -> Alcotest.fail ("health: " ^ Client.failure_to_string f));
  ignore
    (sess_ok "close" (Client.sess_close ~sleep:no_sleep ~socket ~sid ())
      : Client.sess_ack)

let test_session_expiry () =
  let paths = fresh_paths "sess-exp" in
  let socket, _, _ = paths in
  let pid = start_daemon (daemon_cfg ~session_lease:1.0 paths) in
  Fun.protect ~finally:(fun () -> stop_daemon pid) @@ fun () ->
  let sid = "exp-1" in
  ignore
    (sess_ok "open"
       (Client.sess_open ~sleep:no_sleep ~socket ~sid ~vertices:2 ~colors:2
          ~edges:1 ())
      : Client.sess_ack);
  ignore
    (sess_ok "edit"
       (Client.sess_edit ~sleep:no_sleep ~socket ~sid ~seq:1
          Session.Add_vertex)
      : Client.sess_ack);
  (* idle past the lease: the sweep reaps the session *)
  Unix.sleepf 1.8;
  (match
     sess_permanent "edit after expiry"
       (Client.sess_edit ~sleep:no_sleep ~socket ~sid ~seq:2
          Session.Add_vertex)
   with
  | Client.Session_expired _ -> ()
  | f ->
    Alcotest.fail ("expected Session_expired, got " ^ Client.failure_to_string f));
  (match Client.health ~timeout:5.0 ~socket () with
  | Ok h ->
    check Alcotest.bool "expiry counted" true (h.Frame.h_sess_expired >= 1)
  | Error f -> Alcotest.fail ("health: " ^ Client.failure_to_string f));
  (* the sid is reusable: a fresh open starts a fresh stream *)
  let a =
    sess_ok "reopen after expiry"
      (Client.sess_open ~sleep:no_sleep ~socket ~sid ~vertices:2 ~colors:2
         ~edges:1 ())
  in
  check Alcotest.bool "fresh stream" false a.Client.ack_replayed;
  check Alcotest.int "fresh seq" 0 a.Client.ack_seq

let test_session_eviction () =
  let paths = fresh_paths "sess-evict" in
  let socket, _, _ = paths in
  let pid = start_daemon (daemon_cfg ~max_sessions:1 paths) in
  Fun.protect ~finally:(fun () -> stop_daemon pid) @@ fun () ->
  let open_sid sid =
    sess_ok ("open " ^ sid)
      (Client.sess_open ~sleep:no_sleep ~socket ~sid ~vertices:2 ~colors:2
         ~edges:1 ())
  in
  ignore (open_sid "ev-1" : Client.sess_ack);
  (* the bound is 1: opening a second session LRU-evicts the first *)
  ignore (open_sid "ev-2" : Client.sess_ack);
  (match
     sess_permanent "edit after eviction"
       (Client.sess_edit ~sleep:no_sleep ~socket ~sid:"ev-1" ~seq:1
          Session.Add_vertex)
   with
  | Client.Session_evicted _ -> ()
  | f ->
    Alcotest.fail ("expected Session_evicted, got " ^ Client.failure_to_string f));
  match Client.health ~timeout:5.0 ~socket () with
  | Ok h ->
    check Alcotest.int "one session open" 1 h.Frame.h_sess_open;
    check Alcotest.bool "eviction counted" true (h.Frame.h_sess_evicted >= 1)
  | Error f -> Alcotest.fail ("health: " ^ Client.failure_to_string f)

let () =
  Alcotest.run "server"
    [
      ( "wire",
        [
          Alcotest.test_case "roundtrip" `Quick test_wire_roundtrip;
          Alcotest.test_case "rejects confusion" `Quick
            test_wire_rejects_confusion;
        ] );
      ( "journal-rotation",
        [
          Alcotest.test_case "bounded + resumable" `Quick
            test_journal_rotation;
          Alcotest.test_case "unkeyed records survive" `Quick
            test_journal_rotation_preserves_unkeyed;
          Alcotest.test_case "per-key retention classes" `Quick
            test_journal_rotation_retain;
        ] );
      ( "sigpipe",
        [
          Alcotest.test_case "half-closed pipe typed" `Quick
            test_half_closed_pipe_write;
          Alcotest.test_case "slow reader deadline" `Quick
            test_write_frame_slow_reader_deadline;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "end-to-end + idempotent redelivery" `Quick
            test_daemon_end_to_end;
          Alcotest.test_case "rejects malformed" `Quick
            test_daemon_rejects_malformed;
          Alcotest.test_case "sheds overload" `Quick
            test_daemon_sheds_overload;
          Alcotest.test_case "deadline zero" `Quick test_daemon_deadline_zero;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "net faults contained" `Quick
            test_daemon_survives_net_faults;
          Alcotest.test_case "slow-loris shed" `Quick
            test_daemon_sheds_slow_loris;
          Alcotest.test_case "kill -9 mid-job recovered" `Quick
            test_daemon_kill9_recovery;
        ] );
      ( "pool",
        [
          Alcotest.test_case "duplicate jobs coalesce: one solve, N replies"
            `Quick test_pool_coalescing;
          Alcotest.test_case "shed representative frees its duplicates"
            `Quick test_pool_coalescing_under_shedding;
          Alcotest.test_case "cache hit re-certified" `Quick
            test_pool_cache_hit;
          Alcotest.test_case "tampered cache entry rejected + re-solved"
            `Quick test_pool_cache_tamper;
          Alcotest.test_case "worker recycling keeps serving" `Quick
            test_pool_recycling;
          Alcotest.test_case "killed worker never loses the job" `Quick
            test_pool_worker_killed;
        ] );
      ( "resource",
        [
          Alcotest.test_case "degraded ladder + auto re-arm" `Quick
            test_daemon_degraded_recovers;
          Alcotest.test_case "fd exhaustion incident" `Quick
            test_daemon_fd_exhaustion;
        ] );
      ( "supervise",
        [
          Alcotest.test_case "restart after SIGKILL" `Quick
            test_supervise_restarts_sigkill;
          Alcotest.test_case "circuit breaker on crash loop" `Quick
            test_supervise_circuit_breaker;
        ] );
      ( "client",
        [
          Alcotest.test_case "backoff shape" `Quick test_client_backoff_shape;
          Alcotest.test_case "Unavailable after Accepted stays transient"
            `Quick test_client_unavailable_after_accepted;
        ] );
      ( "sessions",
        [
          Alcotest.test_case "session frames roundtrip" `Quick
            test_session_frames_roundtrip;
          Alcotest.test_case "retry taxonomy" `Quick test_session_taxonomy;
          Alcotest.test_case "session lifecycle + idempotent frames" `Quick
            test_session_lifecycle;
          Alcotest.test_case "session kill -9 recovery" `Quick
            test_session_kill9_recovery;
          Alcotest.test_case "session lease expiry" `Quick
            test_session_expiry;
          Alcotest.test_case "session LRU eviction" `Quick
            test_session_eviction;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "dead daemon ejected, job completes" `Quick
            test_balancer_ejects_dead_daemon;
          Alcotest.test_case "daemon SIGKILLed mid-solve, same certified chi"
            `Quick test_fleet_daemon_sigkill_mid_solve;
        ] );
    ]
