(* Tests for the certification layer and the chaos-driven degradation
   ladder: the certifier must accept every result the stack returns and
   reject seeded-bug mutants; under injected faults the flow must degrade
   to certified-sound answers with honest provenance, never to a false
   Optimal. *)

module Graph = Colib_graph.Graph
module Generators = Colib_graph.Generators
module Brute = Colib_graph.Brute
module Clique = Colib_graph.Clique
module Formula = Colib_sat.Formula
module Lit = Colib_sat.Lit
module Encoding = Colib_encode.Encoding
module Sbp = Colib_encode.Sbp
module Types = Colib_solver.Types
module Engine = Colib_solver.Engine
module Optimize = Colib_solver.Optimize
module Certify = Colib_check.Certify
module Chaos = Colib_check.Chaos
module Flow = Colib_core.Flow
module Exact = Colib_core.Exact_coloring

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let is_ok = function Ok () -> true | Error _ -> false

(* ---------- coloring certificates ---------- *)

let test_certify_coloring_accepts () =
  let g = Generators.petersen () in
  let col = Colib_graph.Dsatur.dsatur g in
  let k = Colib_graph.Dsatur.num_colors col in
  check Alcotest.bool "proper coloring accepted" true
    (is_ok (Certify.coloring g ~k ~claimed:k col))

let test_certify_coloring_rejects_mutants () =
  let g = Generators.petersen () in
  let col = Colib_graph.Dsatur.dsatur g in
  let k = Colib_graph.Dsatur.num_colors col in
  (* wrong length *)
  check Alcotest.bool "short coloring rejected" false
    (is_ok (Certify.coloring g ~k ~claimed:k (Array.sub col 0 5)));
  (* color outside [0, k) *)
  let m1 = Array.copy col in
  m1.(0) <- k;
  check Alcotest.bool "out-of-range color rejected" false
    (is_ok (Certify.coloring g ~k ~claimed:k m1));
  let m2 = Array.copy col in
  m2.(3) <- -1;
  check Alcotest.bool "negative color rejected" false
    (is_ok (Certify.coloring g ~k ~claimed:k m2));
  (* recolor a vertex with a neighbor's color *)
  let m3 = Array.copy col in
  let u, v =
    let e = ref (0, 0) in
    (try Graph.iter_edges (fun u v -> e := (u, v); raise Exit) g
     with Exit -> ());
    !e
  in
  m3.(u) <- m3.(v);
  check Alcotest.bool "improper edge rejected" false
    (is_ok (Certify.coloring g ~k ~claimed:k m3));
  (* claim fewer colors than used *)
  check Alcotest.bool "undercounted colors rejected" false
    (is_ok (Certify.coloring g ~k ~claimed:(k - 1) col))

let test_certify_bounds_and_clique () =
  check Alcotest.bool "ordered bounds" true
    (is_ok (Certify.bounds ~lower:3 ~upper:5));
  check Alcotest.bool "inverted bounds" false
    (is_ok (Certify.bounds ~lower:6 ~upper:5));
  let g = Generators.complete 5 in
  check Alcotest.bool "K5 clique" true
    (is_ok (Certify.clique g [| 0; 1; 2; 3; 4 |]));
  let p = Generators.petersen () in
  check Alcotest.bool "petersen has no 3-clique" false
    (is_ok (Certify.clique p [| 0; 1; 2 |]))

(* ---------- model certificates ---------- *)

let test_certify_model () =
  let g = Generators.queens ~rows:4 ~cols:4 in
  let enc = Encoding.encode g ~k:5 in
  let f = enc.Encoding.formula in
  match Optimize.solve_formula Types.Pbs2 f (Types.within_seconds 30.0) with
  | Optimize.Optimal (m, c) ->
    check Alcotest.bool "model accepted" true (is_ok (Certify.model f m));
    check Alcotest.bool "cost accepted" true
      (is_ok (Certify.model_cost f m ~claimed:c));
    check Alcotest.bool "wrong cost rejected" false
      (is_ok (Certify.model_cost f m ~claimed:(c - 1)));
    (* flipping assignments must eventually falsify some constraint *)
    let broke = ref false in
    Array.iteri
      (fun i _ ->
        if not !broke then begin
          let m' = Array.copy m in
          m'.(i) <- not m'.(i);
          if not (is_ok (Certify.model f m')) then broke := true
        end)
      m;
    check Alcotest.bool "some single-bit mutant rejected" true !broke
  | _ -> Alcotest.fail "queen4_4 at K=5 must be solvable"

(* ---------- SBP soundness against the brute-force oracle ---------- *)

let test_sbp_preserves_optimum () =
  List.iter
    (fun (name, g, k) ->
      List.iter
        (fun sbp ->
          match Certify.sbp_preserves_optimum ~timeout:30.0 g ~k sbp with
          | Ok () -> ()
          | Error f ->
            Alcotest.fail
              (Printf.sprintf "%s + %s: %s" name (Sbp.name sbp)
                 (Certify.failure_to_string f)))
        Sbp.all)
    [
      ("petersen", Generators.petersen (), 4);
      ("myciel3", Generators.mycielski 3, 5);
      ("C5", Generators.cycle 5, 3);
      ("crown4", Generators.crown 4, 3);
      (* infeasible side: chi(K5) = 5 > 4 must stay UNSAT under every SBP *)
      ("K5 capped", Generators.complete 5, 4);
    ]

(* ---------- full-stack agreement with brute force (satellite d) ---------- *)

let engines = [ Types.Pbs2; Types.Galena; Types.Pueblo; Types.Cplex; Types.Pbs1 ]

let stack_agrees name g =
  let chi = Brute.chromatic_number g in
  List.iter
    (fun engine ->
      List.iter
        (fun sbp ->
          List.iter
            (fun instance_dependent ->
              let label =
                Printf.sprintf "%s/%s/%s/isd=%b" name
                  (Types.engine_name engine) (Sbp.name sbp) instance_dependent
              in
              let cfg =
                Flow.config ~engine ~sbp ~instance_dependent ~timeout:30.0
                  ~k:(chi + 1) ()
              in
              let r = Flow.run g cfg in
              (match r.Flow.outcome with
              | Flow.Optimal c -> check Alcotest.int label chi c
              | _ -> Alcotest.fail (label ^ ": expected optimal"));
              (match r.Flow.certificate with
              | Some (Ok ()) -> ()
              | _ -> Alcotest.fail (label ^ ": certificate missing/failed"));
              match r.Flow.coloring with
              | Some col ->
                check Alcotest.bool (label ^ " certifier accepts") true
                  (is_ok (Certify.coloring g ~k:(chi + 1) ~claimed:chi col));
                if Array.length col > 0 && chi > 1 then begin
                  (* seeded bug: collapse everything to one color *)
                  let mutant = Array.make (Array.length col) 0 in
                  check Alcotest.bool (label ^ " certifier rejects mutant")
                    false
                    (is_ok
                       (Certify.coloring g ~k:(chi + 1) ~claimed:chi mutant))
                end
              | None -> Alcotest.fail (label ^ ": no coloring"))
            [ false; true ])
        Sbp.all)
    engines

let test_stack_agrees_fixed () =
  stack_agrees "crown3" (Generators.crown 3);
  stack_agrees "myciel3" (Generators.mycielski 3)

let prop_stack_agrees_random =
  QCheck.Test.make ~name:"all engines x SBPs x isd = brute force" ~count:6
    (QCheck.make
       ~print:(fun (n, m, s) -> Printf.sprintf "gnm(%d,%d,%d)" n m s)
       QCheck.Gen.(
         let* n = int_range 4 7 in
         let* m = int_range 3 (n * (n - 1) / 2) in
         let* s = int_range 0 9999 in
         return (n, m, s)))
    (fun (n, m, s) ->
      let g = Generators.gnm ~n ~m ~seed:s in
      stack_agrees (Printf.sprintf "gnm(%d,%d,%d)" n m s) g;
      true)

(* ---------- chaos: injected faults through the ladder ---------- *)

(* queen5_5: clique and DSATUR bounds meet at 5, so the DSATUR fallback can
   settle the instance instantly once it is allowed to run *)
let queen5_5 () = Generators.queens ~rows:5 ~cols:5

let test_chaos_primary_killed_fallback_proves () =
  let g = queen5_5 () in
  let chaos = Chaos.scripted ~kill:[ 0 ] in
  let cfg =
    Flow.config ~instance_dependent:false ~timeout:30.0
      ~instrument:(Chaos.instrument chaos) ~verify:true ~k:5 ()
  in
  let r = Flow.run g cfg in
  check Alcotest.bool "fallback proves optimum" true
    (r.Flow.outcome = Flow.Optimal 5);
  check (Alcotest.list Alcotest.int) "exactly tick 0 sabotaged" [ 0 ]
    (Chaos.fired chaos);
  (match r.Flow.provenance with
  | first :: rest ->
    check Alcotest.bool "primary reported cancelled" true
      (first.Flow.stop = Some Types.Cancelled);
    check Alcotest.bool "primary proved nothing" false first.Flow.proved;
    check Alcotest.bool "a later rung proved" true
      (List.exists (fun a -> a.Flow.proved) rest)
  | [] -> Alcotest.fail "empty provenance");
  match r.Flow.certificate with
  | Some (Ok ()) -> ()
  | _ -> Alcotest.fail "certificate must accept the fallback's coloring"

let test_chaos_two_stages_killed_degrades_to_heuristic () =
  (* myciel3: clique 2 < DSATUR 4, so no rung can prove anything for free —
     sabotaged rungs can only contribute their heuristic coloring *)
  let g = Generators.mycielski 3 in
  let chaos = Chaos.scripted ~kill:[ 0; 1 ] in
  let cfg =
    Flow.config ~instance_dependent:false ~timeout:30.0
      ~instrument:(Chaos.instrument chaos) ~verify:true ~k:4 ()
  in
  let r = Flow.run g cfg in
  (match r.Flow.outcome with
  | Flow.Best 4 -> ()
  | Flow.Optimal _ -> Alcotest.fail "no surviving stage can prove optimality"
  | _ -> Alcotest.fail "a surviving rung must contribute a coloring");
  check Alcotest.int "three rungs ran" 3 (List.length r.Flow.provenance);
  (match r.Flow.certificate with
  | Some (Ok ()) -> ()
  | _ -> Alcotest.fail "heuristic coloring must certify");
  match List.map (fun a -> a.Flow.stop) r.Flow.provenance with
  | [ Some Types.Cancelled; Some Types.Cancelled; None ] -> ()
  | _ -> Alcotest.fail "provenance must record both cancellations"

let test_chaos_all_killed_never_claims_optimal () =
  let g = Generators.mycielski 3 in
  let chaos = Chaos.always () in
  (* no heuristic rung either: the flow must admit it proved nothing *)
  let cfg =
    Flow.config ~instance_dependent:false ~timeout:30.0
      ~fallback:[ Flow.Fallback_dsatur ]
      ~instrument:(Chaos.instrument chaos) ~k:4 ()
  in
  let r = Flow.run g cfg in
  (match r.Flow.outcome with
  | Flow.Optimal _ | Flow.No_coloring ->
    Alcotest.fail "a fully sabotaged run cannot prove anything"
  | Flow.Timed_out | Flow.Best _ -> ());
  check Alcotest.int "both rungs were sabotaged" 2 (Chaos.ticks chaos)

let test_chaos_engine_fallback_chain () =
  (* kill the primary; an alternate engine rung finishes the proof *)
  let g = Generators.mycielski 3 in
  let chaos = Chaos.scripted ~kill:[ 0 ] in
  let cfg =
    Flow.config ~engine:Types.Pbs2 ~instance_dependent:false ~timeout:30.0
      ~fallback:[ Flow.Fallback_engine Types.Galena ]
      ~instrument:(Chaos.instrument chaos) ~verify:true ~k:5 ()
  in
  let r = Flow.run g cfg in
  check Alcotest.bool "alternate engine proves" true
    (r.Flow.outcome = Flow.Optimal 4);
  match r.Flow.provenance with
  | [ a; b ] ->
    check Alcotest.bool "primary cancelled" true
      (a.Flow.stop = Some Types.Cancelled && a.Flow.stage = Flow.Engine_stage Types.Pbs2);
    check Alcotest.bool "galena proved" true
      (b.Flow.proved && b.Flow.stage = Flow.Engine_stage Types.Galena)
  | _ -> Alcotest.fail "expected exactly two attempts"

let test_chaos_conflict_cap_provenance () =
  (* starve the primary of conflicts instead of cancelling it: provenance
     must name the conflict cap, and the DSATUR rung still settles the
     instance (chi(queen5_5) = 5 > k = 4 means No_coloring) *)
  let g = queen5_5 () in
  let starve b = { b with Types.max_conflicts = Some 1 } in
  let tick = ref 0 in
  let instrument b =
    incr tick;
    if !tick = 1 then starve b else b
  in
  let cfg =
    Flow.config ~instance_dependent:false ~timeout:30.0 ~instrument ~k:4 ()
  in
  let r = Flow.run g cfg in
  check Alcotest.bool "fallback proves infeasibility" true
    (r.Flow.outcome = Flow.No_coloring);
  match r.Flow.provenance with
  | first :: _ ->
    check Alcotest.bool "conflict cap recorded" true
      (first.Flow.stop = Some Types.Conflict_limit)
  | [] -> Alcotest.fail "empty provenance"

let test_chaos_exact_coloring_provenance () =
  (* the one-call API surfaces the ladder's provenance and bound sources *)
  let g = queen5_5 () in
  let chaos = Chaos.scripted ~kill:[ 0 ] in
  let a =
    Exact.chromatic_number ~instance_dependent:false ~timeout:30.0
      ~instrument:(Chaos.instrument chaos) g
  in
  check (Alcotest.option Alcotest.int) "chi" (Some 5) a.Exact.chromatic;
  check Alcotest.string "lower source" "clique" a.Exact.lower_source;
  (* queen5_5's bounds meet, so no search happens and the heuristic answers;
     use a gap instance for ladder provenance instead *)
  let g' = Generators.mycielski 4 in
  let chaos' = Chaos.scripted ~kill:[ 0 ] in
  let a' =
    Exact.chromatic_number ~instance_dependent:false ~timeout:30.0
      ~instrument:(Chaos.instrument chaos') g'
  in
  check (Alcotest.option Alcotest.int) "myciel4 chi" (Some 5)
    a'.Exact.chromatic;
  check Alcotest.bool "ladder attempts recorded" true
    (List.length a'.Exact.attempts >= 2);
  check Alcotest.string "upper came from the DSATUR rung" "DSATUR B&B"
    a'.Exact.upper_source

(* ---------- the CLI contract: solve-opb certification ---------- *)

let test_decode_certify_roundtrip () =
  (* decoded flow results pass the solution-level certificate too *)
  let g = Generators.mycielski 3 in
  let a = Exact.chromatic_number ~timeout:30.0 g in
  match a.Exact.chromatic with
  | Some chi ->
    check Alcotest.bool "solution certificate" true
      (is_ok
         (Certify.solution g ~lower:a.Exact.lower ~upper:a.Exact.upper
            ~chromatic:(Some chi) a.Exact.coloring))
  | None -> Alcotest.fail "myciel3 must be solved exactly"

(* ---------- proof traces & the independent RUP checker ---------- *)

module Proof = Colib_sat.Proof
module Rup = Colib_check.Rup

let is_error = function Error _ -> true | Ok _ -> false
let verifies f claim steps = not (is_error (Rup.check_claim f claim steps))

(* Four width-2 clauses with no root units: refuting this formula needs one
   genuine RUP step (learn [~a]; the contradiction then follows by unit
   propagation), so every mutation below has a deterministic verdict. *)
let refutable_formula () =
  let f = Formula.create () in
  let a = Lit.pos (Formula.fresh_var f)
  and b = Lit.pos (Formula.fresh_var f)
  and c = Lit.pos (Formula.fresh_var f) in
  Formula.add_clause f [ Lit.negate a; b ];
  Formula.add_clause f [ Lit.negate a; Lit.negate b ];
  Formula.add_clause f [ a; c ];
  Formula.add_clause f [ a; Lit.negate c ];
  (f, a, b)

let test_proof_hand_written_accepted () =
  let f, a, _ = refutable_formula () in
  check Alcotest.bool "valid hand-written proof verifies" true
    (verifies f Proof.Unsat_claim
       [ Proof.Learn [ Lit.negate a ]; Proof.Contradiction ])

let test_proof_dropped_step_rejected () =
  let f, _, _ = refutable_formula () in
  (* dropping the load-bearing learn step leaves a bare contradiction claim
     that unit propagation cannot reproduce *)
  check Alcotest.bool "dropped step rejected" true
    (is_error (Rup.check_claim f Proof.Unsat_claim [ Proof.Contradiction ]))

let test_proof_reordered_rejected () =
  let f, a, _ = refutable_formula () in
  check Alcotest.bool "reordered steps rejected" true
    (is_error
       (Rup.check_claim f Proof.Unsat_claim
          [ Proof.Contradiction; Proof.Learn [ Lit.negate a ] ]))

let test_proof_non_rup_clause_rejected () =
  (* a satisfiable formula: no clause the checker cannot derive may enter *)
  let f = Formula.create () in
  let a = Lit.pos (Formula.fresh_var f)
  and b = Lit.pos (Formula.fresh_var f) in
  Formula.add_clause f [ a; b ];
  match
    Rup.check_claim f Proof.Unsat_claim
      [ Proof.Learn [ a ]; Proof.Contradiction ]
  with
  | Error (Rup.Not_rup 0) -> ()
  | Error fl ->
    Alcotest.failf "expected Not_rup 0, got %s" (Rup.failure_to_string fl)
  | Ok _ -> Alcotest.fail "non-RUP learn step must be rejected"

let test_proof_deletion_mutants_rejected () =
  let f, a, b = refutable_formula () in
  (* deleting a clause the later RUP step still needs *)
  (match
     Rup.check_claim f Proof.Unsat_claim
       [
         Proof.Delete [ Lit.negate a; b ];
         Proof.Learn [ Lit.negate a ];
         Proof.Contradiction;
       ]
   with
  | Error (Rup.Not_rup 1) -> ()
  | Error fl ->
    Alcotest.failf "expected Not_rup 1, got %s" (Rup.failure_to_string fl)
  | Ok _ -> Alcotest.fail "deletion of a needed clause must break the proof");
  (* deleting a clause that was never in the database *)
  match
    Rup.check_claim f Proof.Unsat_claim
      [ Proof.Delete [ a; b ]; Proof.Contradiction ]
  with
  | Error (Rup.Unknown_deletion 0) -> ()
  | Error fl ->
    Alcotest.failf "expected Unknown_deletion 0, got %s"
      (Rup.failure_to_string fl)
  | Ok _ -> Alcotest.fail "unknown deletion must be rejected"

(* ---------- inprocessing proof steps and their mutants ---------- *)

(* A formula shaped like what the inprocessing ladder emits proof steps
   for: [~a|b] and [a|~b] entail the equivalence a <-> b (a [Substitute]
   step), while [p|x] and [~p|x] resolve on [p] to [x] (a [Learn]ed
   resolvent followed by an [Eliminate] marker whose witness is the
   positive side [p|x]). *)
let inproc_formula () =
  let f = Formula.create () in
  let a = Lit.pos (Formula.fresh_var f)
  and b = Lit.pos (Formula.fresh_var f)
  and p = Lit.pos (Formula.fresh_var f)
  and x = Lit.pos (Formula.fresh_var f) in
  Formula.add_clause f [ Lit.negate a; b ];
  Formula.add_clause f [ a; Lit.negate b ];
  Formula.add_clause f [ p; x ];
  Formula.add_clause f [ Lit.negate p; x ];
  (f, a, b, p, x)

let test_proof_substitute_mutants () =
  let f, a, b, _, _ = inproc_formula () in
  (* the entailed equivalence is accepted *)
  (match Rup.check f [ Proof.Substitute [ (a, b) ] ] with
  | Ok _ -> ()
  | Error fl ->
    Alcotest.failf "entailed substitution rejected: %s"
      (Rup.failure_to_string fl));
  (* tampered map: a <-> ~b is not entailed by this formula *)
  (match Rup.check f [ Proof.Substitute [ (a, Lit.negate b) ] ] with
  | Error (Rup.Bad_substitution (0, _)) -> ()
  | Error fl ->
    Alcotest.failf "expected Bad_substitution 0, got %s"
      (Rup.failure_to_string fl)
  | Ok _ -> Alcotest.fail "non-entailed substitution must be rejected");
  (* degenerate maps *)
  (match Rup.check f [ Proof.Substitute [] ] with
  | Error (Rup.Bad_substitution (0, _)) -> ()
  | _ -> Alcotest.fail "empty substitution must be rejected");
  match Rup.check f [ Proof.Substitute [ (a, Lit.negate a) ] ] with
  | Error (Rup.Bad_substitution (0, _)) -> ()
  | _ -> Alcotest.fail "self-variable substitution must be rejected"

let test_proof_eliminate_mutants () =
  let f, _, _, p, x = inproc_formula () in
  (* the honest trace: resolvent learned while both parents are live,
     then the structural elimination marker *)
  (match
     Rup.check f
       [ Proof.Learn [ x ]; Proof.Eliminate { pivot = p; witness = [ [ p; x ] ] } ]
   with
  | Ok _ -> ()
  | Error fl ->
    Alcotest.failf "honest elimination trace rejected: %s"
      (Rup.failure_to_string fl));
  let expect_bad_witness label steps =
    match Rup.check f steps with
    | Error (Rup.Bad_witness (1, _)) -> ()
    | Error fl ->
      Alcotest.failf "%s: expected Bad_witness 1, got %s" label
        (Rup.failure_to_string fl)
    | Ok _ -> Alcotest.failf "%s must be rejected" label
  in
  (* dropped witness *)
  expect_bad_witness "emptied witness"
    [ Proof.Learn [ x ]; Proof.Eliminate { pivot = p; witness = [] } ];
  (* witness clause missing its pivot ([x] is live — it was just learned —
     so only the pivot check can reject it) *)
  expect_bad_witness "pivot-free witness clause"
    [ Proof.Learn [ x ]; Proof.Eliminate { pivot = p; witness = [ [ x ] ] } ];
  (* witness naming a clause that is not live in the database *)
  expect_bad_witness "phantom witness clause"
    [
      Proof.Learn [ x ];
      Proof.Eliminate { pivot = p; witness = [ [ p; Lit.negate x ] ] };
    ]

let test_proof_inproc_deletion_mutant () =
  let f, _, _, p, x = inproc_formula () in
  (* deleting one parent before the resolvent is learned: the [Learn [x]]
     the elimination depends on is no longer RUP *)
  match
    Rup.check f
      [
        Proof.Delete [ p; x ];
        Proof.Learn [ x ];
        Proof.Eliminate { pivot = p; witness = [ [ Lit.negate p; x ] ] };
      ]
  with
  | Error (Rup.Not_rup 1) -> ()
  | Error fl ->
    Alcotest.failf "expected Not_rup 1, got %s" (Rup.failure_to_string fl)
  | Ok _ ->
    Alcotest.fail "deleting a resolvent parent must break the elimination"

(* ---------- BVE witness reconstruction (property) ---------- *)

module Simplify = Colib_sat.Simplify

(* Random clause lists with every variable unfrozen drive the simplifier
   into real eliminations and substitutions. The contract under test is
   {!Simplify.extend_model}: every model of what survives the run must
   extend, through the recorded witness stack, to a model of the original
   formula — checked by {!Certify.model} against an independently built
   copy. UNSAT verdicts are cross-checked against the full 2^n sweep. *)
let prop_extend_model =
  QCheck.Test.make ~name:"extend_model completes models of the original"
    ~count:300
    (QCheck.make
       ~print:(fun (nv, cls) ->
         Printf.sprintf "%d vars %s" nv
           (String.concat " "
              (List.map
                 (fun c ->
                   "[" ^ String.concat "," (List.map string_of_int c) ^ "]")
                 cls)))
       QCheck.Gen.(
         let* nv = int_range 3 7 in
         let* ncl = int_range 1 (3 * nv) in
         let* raw =
           list_repeat ncl
             (let* w = int_range 2 3 in
              list_repeat w (int_range 0 ((2 * nv) - 1)))
         in
         (* the engine hands the simplifier normalized clauses: sorted,
            duplicate-free, non-tautological, width >= 2 *)
         let cls =
           List.filter_map
             (fun c ->
               let c = List.sort_uniq compare c in
               if List.exists (fun l -> List.mem (l lxor 1) c) c then None
               else if List.length c < 2 then None
               else Some c)
             raw
         in
         return (nv, cls)))
    (fun (nv, cls) ->
      let f = Formula.create () in
      ignore (Formula.fresh_vars f nv);
      List.iter
        (fun c -> Formula.add_clause f (List.map Lit.of_index c))
        cls;
      let clauses =
        List.map
          (fun c ->
            {
              Simplify.sc_lits = Array.of_list c;
              sc_learnt = false;
              sc_act = 0.0;
              sc_pinned = false;
            })
          cls
      in
      let r =
        Simplify.run ~nvars:nv ~frozen:(Array.make nv false)
          ~assigned:(Array.make nv (-1))
          clauses
      in
      let sat_lit m l = if l land 1 = 0 then m.(l lsr 1) else not m.(l lsr 1) in
      let simplified_sat m =
        List.for_all (fun u -> sat_lit m u) r.Simplify.r_units
        && List.for_all
             (fun c -> Array.exists (sat_lit m) c.Simplify.sc_lits)
             r.Simplify.r_clauses
      in
      let orig_models = ref 0 in
      for mask = 0 to (1 lsl nv) - 1 do
        let m = Array.init nv (fun v -> (mask lsr v) land 1 = 1) in
        if is_ok (Certify.model f m) then incr orig_models;
        if (not r.Simplify.r_unsat) && simplified_sat m then begin
          (* the reconstruction under test *)
          Simplify.extend_model r.Simplify.r_elim m;
          match Certify.model f m with
          | Ok () -> ()
          | Error fl ->
            QCheck.Test.fail_reportf
              "extended model violates the original formula: %s"
              (Certify.failure_to_string fl)
        end
      done;
      if r.Simplify.r_unsat && !orig_models > 0 then
        QCheck.Test.fail_reportf
          "simplifier claims UNSAT but the original has %d models"
          !orig_models;
      (* completeness of the survivor set: a satisfiable original must
         leave at least one simplified model (otherwise the run silently
         lost solutions) *)
      if (not r.Simplify.r_unsat) && !orig_models > 0 then begin
        let found = ref false in
        for mask = 0 to (1 lsl nv) - 1 do
          let m = Array.init nv (fun v -> (mask lsr v) land 1 = 1) in
          if simplified_sat m then found := true
        done;
        if not !found then
          QCheck.Test.fail_reportf
            "satisfiable original but the simplified formula has no model"
      end;
      true)

(* engine-generated refutation: K4 is not 3-colorable *)
let engine_unsat_proof () =
  let enc = Encoding.encode (Generators.complete 4) ~k:3 in
  let f = enc.Encoding.formula in
  let p = Proof.create () in
  match
    Optimize.solve_formula ~proof:p Types.Pbs2 f (Types.within_seconds 30.0)
  with
  | Optimize.Unsatisfiable -> (f, Proof.steps p)
  | _ -> Alcotest.fail "K4 at k=3 must be unsatisfiable"

let test_engine_proof_roundtrip_and_mutants () =
  let f, steps = engine_unsat_proof () in
  check Alcotest.bool "engine refutation verifies" true
    (verifies f Proof.Unsat_claim steps);
  (* root unit propagation alone must not refute this instance — otherwise
     the mutations below would be vacuous *)
  (match Rup.check f [] with
  | Ok v -> check Alcotest.bool "instance needs real proof steps" false
              v.Rup.contradiction
  | Error _ -> Alcotest.fail "empty step list cannot fail");
  (* strip every learned clause: the bare contradiction is no longer RUP *)
  let no_learns =
    List.filter (function Proof.Learn _ -> false | _ -> true) steps
  in
  check Alcotest.bool "learn-free engine proof rejected" true
    (is_error (Rup.check_claim f Proof.Unsat_claim no_learns));
  (* an engine UNSAT proof exhibits no model *)
  check Alcotest.bool "optimality claim on a refutation rejected" true
    (is_error (Rup.check_claim f (Proof.Optimal_claim 3) steps))

let test_optimality_proof_and_claim_mutants () =
  (* C5 needs 3 colors; the encoding minimizes the colors-used count *)
  let enc = Encoding.encode (Generators.cycle 5) ~k:4 in
  let f = enc.Encoding.formula in
  let p = Proof.create () in
  (match
     Optimize.solve_formula ~proof:p Types.Galena f (Types.within_seconds 30.0)
   with
  | Optimize.Optimal (_, c) -> check Alcotest.int "C5 optimum" 3 c
  | _ -> Alcotest.fail "C5 at k=4 must be solved to optimality");
  let steps = Proof.steps p in
  check Alcotest.bool "optimality proof verifies" true
    (verifies f (Proof.Optimal_claim 3) steps);
  (* claiming a better optimum than the models prove *)
  (match Rup.check_claim f (Proof.Optimal_claim 2) steps with
  | Error (Rup.Cost_mismatch { claimed = 2; proved = Some 3 }) -> ()
  | Error fl ->
    Alcotest.failf "expected Cost_mismatch, got %s" (Rup.failure_to_string fl)
  | Ok _ -> Alcotest.fail "understated optimum must be rejected");
  (* claiming unsatisfiability of an instance the proof itself models *)
  match Rup.check_claim f Proof.Unsat_claim steps with
  | Error Rup.Unexpected_model -> ()
  | Error fl ->
    Alcotest.failf "expected Unexpected_model, got %s"
      (Rup.failure_to_string fl)
  | Ok _ -> Alcotest.fail "unsat claim over an improving model must be \
                           rejected"

let test_proof_file_roundtrip () =
  let f, steps = engine_unsat_proof () in
  let t = Proof.create () in
  List.iter (Proof.add t) steps;
  let path = Filename.temp_file "colib_proof" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Proof.write_file path ~formula:f ~claim:Proof.Unsat_claim t;
      let parsed = Proof.read_file path in
      match (parsed.Proof.p_formula, parsed.Proof.p_claim) with
      | Some f', Some claim ->
        check Alcotest.bool "parsed claim is unsat" true
          (claim = Proof.Unsat_claim);
        check Alcotest.bool "reparsed proof verifies against reparsed formula"
          true
          (verifies f' claim parsed.Proof.p_steps)
      | _ -> Alcotest.fail "roundtrip lost the formula or the claim")

let () =
  Alcotest.run "check"
    [
      ( "certify",
        [
          Alcotest.test_case "coloring accepted" `Quick
            test_certify_coloring_accepts;
          Alcotest.test_case "coloring mutants rejected" `Quick
            test_certify_coloring_rejects_mutants;
          Alcotest.test_case "bounds and cliques" `Quick
            test_certify_bounds_and_clique;
          Alcotest.test_case "model certificates" `Quick test_certify_model;
          Alcotest.test_case "solution roundtrip" `Quick
            test_decode_certify_roundtrip;
        ] );
      ( "sbp-oracle",
        [
          Alcotest.test_case "every SBP preserves the optimum" `Slow
            test_sbp_preserves_optimum;
          Alcotest.test_case "stack = brute on fixed graphs" `Slow
            test_stack_agrees_fixed;
          qtest prop_stack_agrees_random;
        ] );
      ( "proof",
        [
          Alcotest.test_case "hand-written proof accepted" `Quick
            test_proof_hand_written_accepted;
          Alcotest.test_case "dropped step rejected" `Quick
            test_proof_dropped_step_rejected;
          Alcotest.test_case "reordered steps rejected" `Quick
            test_proof_reordered_rejected;
          Alcotest.test_case "non-RUP clause rejected" `Quick
            test_proof_non_rup_clause_rejected;
          Alcotest.test_case "deletion mutants rejected" `Quick
            test_proof_deletion_mutants_rejected;
          Alcotest.test_case "substitute step mutants rejected" `Quick
            test_proof_substitute_mutants;
          Alcotest.test_case "eliminate step mutants rejected" `Quick
            test_proof_eliminate_mutants;
          Alcotest.test_case "inprocessing deletion mutant rejected" `Quick
            test_proof_inproc_deletion_mutant;
          qtest prop_extend_model;
          Alcotest.test_case "engine refutation roundtrip + mutants" `Quick
            test_engine_proof_roundtrip_and_mutants;
          Alcotest.test_case "optimality proof + claim mutants" `Quick
            test_optimality_proof_and_claim_mutants;
          Alcotest.test_case "proof file roundtrip" `Quick
            test_proof_file_roundtrip;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "primary killed, fallback proves" `Quick
            test_chaos_primary_killed_fallback_proves;
          Alcotest.test_case "two rungs killed, heuristic answers" `Quick
            test_chaos_two_stages_killed_degrades_to_heuristic;
          Alcotest.test_case "all rungs killed, never Optimal" `Quick
            test_chaos_all_killed_never_claims_optimal;
          Alcotest.test_case "engine fallback chain" `Quick
            test_chaos_engine_fallback_chain;
          Alcotest.test_case "conflict-cap provenance" `Quick
            test_chaos_conflict_cap_provenance;
          Alcotest.test_case "exact-coloring provenance" `Quick
            test_chaos_exact_coloring_provenance;
        ] );
    ]
