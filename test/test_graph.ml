(* Tests for the graph substrate: structure, DIMACS I/O, generators, bounds,
   and the reconstructed benchmark suite. *)

module Graph = Colib_graph.Graph
module Dimacs_col = Colib_graph.Dimacs_col
module Generators = Colib_graph.Generators
module Clique = Colib_graph.Clique
module Dsatur = Colib_graph.Dsatur
module Brute = Colib_graph.Brute
module Benchmarks = Colib_graph.Benchmarks
module Prng = Colib_graph.Prng

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ---------- core structure ---------- *)

let test_build_basic () =
  let g = Graph.of_edges 4 [ (0, 1); (1, 2); (1, 2) ] in
  check Alcotest.int "n" 4 (Graph.num_vertices g);
  check Alcotest.int "m merged" 2 (Graph.num_edges g);
  check Alcotest.bool "edge" true (Graph.mem_edge g 0 1);
  check Alcotest.bool "sym" true (Graph.mem_edge g 1 0);
  check Alcotest.bool "no edge" false (Graph.mem_edge g 0 2);
  check Alcotest.int "deg 1" 2 (Graph.degree g 1);
  check Alcotest.int "deg 3" 0 (Graph.degree g 3)

let test_self_loop_rejected () =
  let b = Graph.builder 3 in
  check Alcotest.bool "self loop" true
    (try
       Graph.add_edge b 1 1;
       false
     with Invalid_argument _ -> true);
  check Alcotest.bool "out of range" true
    (try
       Graph.add_edge b 0 7;
       false
     with Invalid_argument _ -> true)

let test_edges_sorted () =
  let g = Graph.of_edges 4 [ (2, 3); (0, 1); (1, 3) ] in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "sorted" [ (0, 1); (1, 3); (2, 3) ] (Graph.edges g)

let test_complement () =
  let g = Generators.path 4 in
  let c = Graph.complement g in
  check Alcotest.int "m + m' = C(n,2)" 6 (Graph.num_edges g + Graph.num_edges c);
  Graph.iter_edges
    (fun u v -> check Alcotest.bool "disjoint" false (Graph.mem_edge g u v))
    c

let test_induced () =
  let g = Generators.complete 5 in
  let sub = Graph.induced g [| 0; 2; 4 |] in
  check Alcotest.int "induced K3" 3 (Graph.num_edges sub);
  let p = Generators.path 5 in
  (* vertices 0 2 4 are pairwise non-adjacent on a path *)
  let sub2 = Graph.induced p [| 0; 2; 4 |] in
  check Alcotest.int "independent set" 0 (Graph.num_edges sub2)

let test_proper_coloring () =
  let g = Generators.cycle 4 in
  check Alcotest.bool "2-coloring ok" true
    (Graph.is_proper_coloring g [| 0; 1; 0; 1 |]);
  check Alcotest.bool "bad coloring" false
    (Graph.is_proper_coloring g [| 0; 0; 1; 1 |])

let test_density_and_degree () =
  let g = Generators.complete 5 in
  check (Alcotest.float 0.0001) "K5 density" 1.0 (Graph.density g);
  check Alcotest.int "K5 max degree" 4 (Graph.max_degree g);
  let p = Generators.path 4 in
  check (Alcotest.float 0.0001) "path density" 0.5 (Graph.density p);
  check Alcotest.int "vertex count via fold" 4
    (Graph.fold_vertices (fun acc _ -> acc + 1) 0 p)

let test_generator_determinism () =
  let a = Generators.gnm ~n:20 ~m:50 ~seed:9 in
  let b = Generators.gnm ~n:20 ~m:50 ~seed:9 in
  check Alcotest.bool "same seed, same graph" true (Graph.equal a b);
  let c = Generators.gnm ~n:20 ~m:50 ~seed:10 in
  check Alcotest.bool "different seed differs" false (Graph.equal a c);
  let r1 = Generators.split_register ~n:40 ~m:200 ~clique:8 ~seed:3 in
  let r2 = Generators.split_register ~n:40 ~m:200 ~clique:8 ~seed:3 in
  check Alcotest.bool "register model deterministic" true (Graph.equal r1 r2)

let test_interval_rejects_empty () =
  check Alcotest.bool "empty interval" true
    (try
       ignore (Generators.interval_conflicts [ (3, 3) ]);
       false
     with Invalid_argument _ -> true)

(* ---------- prng determinism ---------- *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done;
  let c = Prng.create 43 in
  let differs = ref false in
  for _ = 1 to 20 do
    if Prng.int a 1000 <> Prng.int c 1000 then differs := true
  done;
  check Alcotest.bool "different seeds differ" true !differs

(* ---------- dimacs ---------- *)

let test_dimacs_roundtrip () =
  let g = Generators.queens ~rows:4 ~cols:4 in
  let text = Dimacs_col.to_string ~comment:"queen4_4" g in
  let g' = Dimacs_col.parse text in
  check Alcotest.bool "roundtrip" true (Graph.equal g g')

let test_dimacs_duplicate_edges_merged () =
  let g = Dimacs_col.parse "p edge 3 4\ne 1 2\ne 2 1\ne 2 3\ne 2 3\n" in
  check Alcotest.int "merged" 2 (Graph.num_edges g)

let test_dimacs_malformed () =
  (* every malformed input surfaces as the one typed error, pinned to the
     1-based line that caused it *)
  List.iter
    (fun (text, bad_line) ->
      match Dimacs_col.parse_result text with
      | Ok _ -> Alcotest.fail ("accepted " ^ String.escaped text)
      | Error e ->
        check Alcotest.int
          ("line for " ^ String.escaped text)
          bad_line e.Dimacs_col.line;
        check Alcotest.bool "message nonempty" true
          (String.length e.Dimacs_col.message > 0))
    [
      ("e 1 2\n", 1);
      ("p edge x 1\n", 1);
      ("p edge 2 1\ne 1 5\n", 2);
      ("p edge 2 1\ne one 2\n", 2);
      ("p edge 2 1\ne 0 2\n", 2);
      ("p edge 2 1\ne -1 2\n", 2);
      ("p edge 2 1\np edge 2 1\n", 2);
      ("p edge -3 1\n", 1);
      ("hello\n", 1);
      ("", 1);
      ("c fine\nc still fine\nwat\n", 3);
    ];
  (* the raising variant throws the same typed exception, never Failure *)
  check Alcotest.bool "typed exception" true
    (try
       ignore (Dimacs_col.parse "e 1 2\n");
       false
     with Dimacs_col.Error { line = 1; _ } -> true)

let test_dimacs_selfloop_dropped () =
  let g = Dimacs_col.parse "p edge 3 2\ne 1 1\ne 1 2\n" in
  check Alcotest.int "self loop dropped" 1 (Graph.num_edges g)

(* ---------- exact generator constructions ---------- *)

let test_complete_sizes () =
  let g = Generators.complete 6 in
  check Alcotest.int "K6 edges" 15 (Graph.num_edges g);
  check Alcotest.int "chi" 6 (Brute.chromatic_number g)

let test_cycles () =
  check Alcotest.int "C5 chi" 3 (Brute.chromatic_number (Generators.cycle 5));
  check Alcotest.int "C6 chi" 2 (Brute.chromatic_number (Generators.cycle 6))

let test_wheel () =
  check Alcotest.int "even rim" 3 (Brute.chromatic_number (Generators.wheel 6));
  check Alcotest.int "odd rim" 4 (Brute.chromatic_number (Generators.wheel 5));
  check Alcotest.int "hub degree" 6 (Graph.degree (Generators.wheel 6) 6)

let test_crown () =
  let g = Generators.crown 4 in
  check Alcotest.int "V" 8 (Graph.num_vertices g);
  check Alcotest.int "E" 12 (Graph.num_edges g);
  check Alcotest.int "bipartite" 2 (Brute.chromatic_number g);
  check Alcotest.bool "matching removed" false (Graph.mem_edge g 0 4)

let test_kneser () =
  (* K(5,2) is the Petersen graph *)
  let k52 = Generators.kneser ~n:5 ~k:2 in
  check Alcotest.bool "K(5,2) = petersen" true
    (Graph.num_vertices k52 = 10
    && Graph.num_edges k52 = 15
    && Graph.max_degree k52 = 3);
  (* Lovász: chi(K(n,k)) = n - 2k + 2 *)
  check Alcotest.int "chi K(5,2)" 3 (Brute.chromatic_number k52);
  let k62 = Generators.kneser ~n:6 ~k:2 in
  check Alcotest.int "V K(6,2)" 15 (Graph.num_vertices k62);
  check Alcotest.int "chi K(6,2)" 4 (Brute.chromatic_number k62)

let test_petersen () =
  let g = Generators.petersen () in
  check Alcotest.int "V" 10 (Graph.num_vertices g);
  check Alcotest.int "E" 15 (Graph.num_edges g);
  check Alcotest.int "3-regular" 3 (Graph.max_degree g);
  check Alcotest.int "chi" 3 (Brute.chromatic_number g)

let test_queens_sizes () =
  (* (V, E) of the DIMACS queens instances (undirected edge counts) *)
  List.iter
    (fun (r, c, v, e) ->
      let g = Generators.queens ~rows:r ~cols:c in
      check Alcotest.int (Printf.sprintf "queen%d_%d V" r c) v
        (Graph.num_vertices g);
      check Alcotest.int (Printf.sprintf "queen%d_%d E" r c) e
        (Graph.num_edges g))
    [ (5, 5, 25, 160); (6, 6, 36, 290); (7, 7, 49, 476); (8, 12, 96, 1368) ]

let test_queens_chromatic_small () =
  check Alcotest.int "queen4_4 chi" 5
    (Brute.chromatic_number (Generators.queens ~rows:4 ~cols:4));
  check Alcotest.int "queen5_5 chi" 5
    (Brute.chromatic_number (Generators.queens ~rows:5 ~cols:5))

let test_mycielski () =
  List.iter
    (fun (k, v, e, chi) ->
      let g = Generators.mycielski k in
      check Alcotest.int (Printf.sprintf "myciel%d V" k) v (Graph.num_vertices g);
      check Alcotest.int (Printf.sprintf "myciel%d E" k) e (Graph.num_edges g);
      if v <= 25 then
        check Alcotest.int (Printf.sprintf "myciel%d chi" k) chi
          (Brute.chromatic_number g))
    [ (2, 5, 5, 3); (3, 11, 20, 4); (4, 23, 71, 5); (5, 47, 236, 6) ]

let test_mycielski_triangle_free () =
  (* Mycielski transformation preserves triangle-freeness *)
  let g = Generators.mycielski 4 in
  let ok = ref true in
  Graph.iter_edges
    (fun u v ->
      Array.iter
        (fun w -> if Graph.mem_edge g v w then ok := false)
        (Graph.neighbors g u))
    g;
  check Alcotest.bool "no triangles" true !ok

(* ---------- random models ---------- *)

let test_gnm_exact () =
  let g = Generators.gnm ~n:30 ~m:100 ~seed:7 in
  check Alcotest.int "edges exact" 100 (Graph.num_edges g);
  check Alcotest.bool "too many rejected" true
    (try
       ignore (Generators.gnm ~n:4 ~m:10 ~seed:1);
       false
     with Invalid_argument _ -> true)

let test_geometric_exact () =
  let g = Generators.geometric ~n:40 ~m:77 ~seed:9 in
  check Alcotest.int "edges exact" 77 (Graph.num_edges g)

let test_planted_degenerate () =
  let g = Generators.planted_degenerate ~n:60 ~m:300 ~clique:7 ~seed:3 in
  check Alcotest.int "V" 60 (Graph.num_vertices g);
  check Alcotest.int "E" 300 (Graph.num_edges g);
  (* the planted clique survives the relabeling *)
  check Alcotest.int "clique planted" 7
    (Array.length (Clique.max_clique g));
  (* chromatic number is exactly the planted clique size: the construction
     is (clique-1)-degenerate, so the smallest-last bound meets the clique *)
  check Alcotest.int "upper bound = clique" 7 (Dsatur.upper_bound g)

let test_split_register () =
  let g = Generators.split_register ~n:50 ~m:250 ~clique:9 ~seed:5 in
  check Alcotest.int "V" 50 (Graph.num_vertices g);
  check Alcotest.int "E" 250 (Graph.num_edges g);
  check Alcotest.int "clique planted" 9 (Array.length (Clique.max_clique g));
  (* bounded backward degree makes the smallest-last order optimal *)
  check Alcotest.int "upper bound = clique" 9 (Dsatur.upper_bound g);
  let big = Generators.split_register ~n:100 ~m:1200 ~clique:25 ~seed:6 in
  check Alcotest.int "big E" 1200 (Graph.num_edges big);
  check Alcotest.int "big chi" 25 (Dsatur.upper_bound big)

let test_frequency_assignment () =
  (* two adjacent regions needing 2 and 3 frequencies: K2 + K3 + complete
     bipartite = K5 *)
  let g =
    Generators.frequency_assignment ~demands:[| 2; 3 |] ~adjacent:[ (0, 1) ]
  in
  check Alcotest.int "V" 5 (Graph.num_vertices g);
  check Alcotest.int "E = K5" 10 (Graph.num_edges g);
  check Alcotest.int "chi" 5 (Brute.chromatic_number g)

let test_interval_conflicts () =
  let g =
    Generators.interval_conflicts [ (0, 10); (5, 15); (12, 20); (0, 3) ]
  in
  check Alcotest.bool "0-1 overlap" true (Graph.mem_edge g 0 1);
  check Alcotest.bool "1-2 overlap" true (Graph.mem_edge g 1 2);
  check Alcotest.bool "0-2 disjoint" false (Graph.mem_edge g 0 2);
  check Alcotest.bool "0-3 overlap" true (Graph.mem_edge g 0 3)

(* ---------- bounds ---------- *)

let test_clique_greedy () =
  let g = Generators.complete 8 in
  check Alcotest.int "K8 clique" 8 (Array.length (Clique.greedy g));
  let c = Clique.greedy (Generators.cycle 7) in
  check Alcotest.bool "C7 clique is clique" true
    (Clique.is_clique (Generators.cycle 7) c)

let test_max_clique_exact () =
  check Alcotest.int "petersen max clique" 2
    (Array.length (Clique.max_clique (Generators.petersen ())));
  check Alcotest.int "queen5_5 max clique" 5
    (Array.length (Clique.max_clique (Generators.queens ~rows:5 ~cols:5)));
  check Alcotest.int "myciel4 triangle-free" 2
    (Array.length (Clique.max_clique (Generators.mycielski 4)))

let test_dsatur_bipartite_optimal () =
  (* DSATUR is optimal on bipartite graphs (Brelaz 1979) *)
  for n = 2 to 6 do
    let g = Generators.complete_bipartite n (n + 1) in
    check Alcotest.int "bipartite 2 colors" 2
      (Dsatur.num_colors (Dsatur.dsatur g))
  done;
  check Alcotest.int "even cycle" 2
    (Dsatur.num_colors (Dsatur.dsatur (Generators.cycle 8)))

let test_dsatur_proper () =
  let g = Generators.queens ~rows:6 ~cols:6 in
  check Alcotest.bool "proper" true
    (Graph.is_proper_coloring g (Dsatur.dsatur g));
  check Alcotest.bool "wp proper" true
    (Graph.is_proper_coloring g (Dsatur.welsh_powell g));
  check Alcotest.bool "smallest-last proper" true
    (Graph.is_proper_coloring g (Dsatur.smallest_last g))

let test_smallest_last_degenerate_optimal () =
  (* on a tree (1-degenerate) smallest-last uses exactly 2 colors *)
  let tree = Graph.of_edges 7 [ (0, 1); (0, 2); (1, 3); (1, 4); (2, 5); (2, 6) ] in
  check Alcotest.int "tree 2 colors" 2
    (Dsatur.num_colors (Dsatur.smallest_last tree))

(* properties over random graphs *)
let graph_arb =
  QCheck.make
    ~print:(fun (n, m, seed) -> Printf.sprintf "gnm(%d,%d,%d)" n m seed)
    QCheck.Gen.(
      let* n = int_range 2 9 in
      let* m = int_range 0 (n * (n - 1) / 2) in
      let* seed = int_range 0 10000 in
      return (n, m, seed))

let prop_dsatur_sandwich =
  QCheck.Test.make ~name:"clique <= chi <= dsatur" ~count:60 graph_arb
    (fun (n, m, seed) ->
      let g = Generators.gnm ~n ~m ~seed in
      let lb = Array.length (Clique.max_clique g) in
      let chi = Brute.chromatic_number g in
      let ub = Dsatur.num_colors (Dsatur.dsatur g) in
      lb <= chi && chi <= ub)

let prop_colorings_proper =
  QCheck.Test.make ~name:"heuristic colorings are proper" ~count:60 graph_arb
    (fun (n, m, seed) ->
      let g = Generators.gnm ~n ~m ~seed in
      Graph.is_proper_coloring g (Dsatur.dsatur g)
      && Graph.is_proper_coloring g (Dsatur.welsh_powell g))

let prop_brute_monotone =
  QCheck.Test.make ~name:"k-colorability monotone in k" ~count:40 graph_arb
    (fun (n, m, seed) ->
      let g = Generators.gnm ~n ~m ~seed in
      let chi = Brute.chromatic_number g in
      Brute.k_colorable g (chi - 1) = None
      && Brute.k_colorable g chi <> None
      && Brute.k_colorable g (chi + 1) <> None)

let prop_dimacs_roundtrip =
  QCheck.Test.make ~name:"dimacs roundtrip random" ~count:40 graph_arb
    (fun (n, m, seed) ->
      let g = Generators.gnm ~n ~m ~seed in
      Graph.equal g (Dimacs_col.parse (Dimacs_col.to_string g)))

(* ---------- exact DSATUR branch & bound ---------- *)

module Exact_dsatur = Colib_graph.Exact_dsatur

let test_exact_dsatur_known () =
  List.iter
    (fun (name, g, chi) ->
      match Exact_dsatur.solve g with
      | Exact_dsatur.Exact (c, coloring) ->
        check Alcotest.int name chi c;
        check Alcotest.bool (name ^ " proper") true
          (Graph.is_proper_coloring g coloring);
        check Alcotest.int (name ^ " count") chi (Dsatur.num_colors coloring)
      | Exact_dsatur.Bounds _ -> Alcotest.fail (name ^ ": budget hit"))
    [
      ("myciel3", Generators.mycielski 3, 4);
      ("myciel4", Generators.mycielski 4, 5);
      ("petersen", Generators.petersen (), 3);
      ("queen5_5", Generators.queens ~rows:5 ~cols:5, 5);
      ("K6", Generators.complete 6, 6);
      ("wheel5", Generators.wheel 5, 4);
    ]

let test_exact_dsatur_budget () =
  (* a one-node budget must yield bounds, never a wrong exact answer *)
  let g = Generators.mycielski 5 in
  match Exact_dsatur.solve ~node_limit:1 g with
  | Exact_dsatur.Bounds (lb, ub, coloring, cut) ->
    check Alcotest.bool "bounds sandwich" true (lb <= 6 && 6 <= ub);
    check Alcotest.bool "cut reason" true (cut = Exact_dsatur.Nodes);
    check Alcotest.bool "bounds coloring proper" true
      (Graph.is_proper_coloring g coloring)
  | Exact_dsatur.Exact (c, _) ->
    (* acceptable only if the heuristic bounds already met *)
    check Alcotest.int "exact despite budget" 6 c

let test_exact_dsatur_deadline_now () =
  (* regression: the deadline check is [>=], so an already-due deadline
     (zero timeout) must cut the search at entry with a Time reason *)
  let g = Generators.mycielski 4 in
  match Exact_dsatur.solve ~deadline:(Colib_clock.Mclock.now ()) g with
  | Exact_dsatur.Bounds (lb, ub, coloring, cut) ->
    check Alcotest.bool "cut by time" true (cut = Exact_dsatur.Time);
    check Alcotest.bool "bounds sandwich" true (lb <= 5 && 5 <= ub);
    check Alcotest.bool "coloring proper" true
      (Graph.is_proper_coloring g coloring)
  | Exact_dsatur.Exact _ ->
    Alcotest.fail "expired deadline must not report an exact answer"

let prop_exact_dsatur_matches_brute =
  QCheck.Test.make ~name:"exact DSATUR = brute force" ~count:40 graph_arb
    (fun (n, m, seed) ->
      let g = Generators.gnm ~n ~m ~seed in
      Exact_dsatur.chromatic_number g = Some (Brute.chromatic_number g))

(* ---------- benchmark suite ---------- *)

let test_benchmark_inventory () =
  check Alcotest.int "20 instances" 20 (List.length Benchmarks.all);
  check Alcotest.int "4 queens" 4 (List.length Benchmarks.queens_family)

let test_benchmark_sizes () =
  (* every instance has the paper's vertex count; exact families also match
     the paper's (possibly doubled) edge counts *)
  List.iter
    (fun b ->
      let g = Lazy.force b.Benchmarks.graph in
      check Alcotest.int (b.Benchmarks.name ^ " V") b.Benchmarks.paper_vertices
        (Graph.num_vertices g);
      match b.Benchmarks.family with
      | Benchmarks.Queens ->
        check Alcotest.int (b.Benchmarks.name ^ " 2E") b.Benchmarks.paper_edges
          (2 * Graph.num_edges g)
      | Benchmarks.Mycielski ->
        check Alcotest.int (b.Benchmarks.name ^ " E") b.Benchmarks.paper_edges
          (Graph.num_edges g)
      | Benchmarks.Register ->
        check Alcotest.int (b.Benchmarks.name ^ " E") b.Benchmarks.paper_edges
          (Graph.num_edges g)
      | Benchmarks.Book | Benchmarks.Random | Benchmarks.Mileage
      | Benchmarks.Games ->
        check Alcotest.int (b.Benchmarks.name ^ " 2E") b.Benchmarks.paper_edges
          (2 * Graph.num_edges g))
    Benchmarks.all

let test_benchmark_planted_chromatic () =
  (* families with planted chromatic structure hit the paper's number *)
  List.iter
    (fun name ->
      let b = Benchmarks.find name in
      let g = Lazy.force b.Benchmarks.graph in
      match b.Benchmarks.paper_chromatic with
      | Some chi ->
        check Alcotest.int (name ^ " dsatur") chi
          (Dsatur.num_colors (Dsatur.dsatur g))
      | None -> ())
    [ "anna"; "david"; "huck"; "jean"; "games120" ]

let test_benchmark_find () =
  check Alcotest.bool "find" true
    ((Benchmarks.find "queen5_5").Benchmarks.family = Benchmarks.Queens);
  check Alcotest.bool "missing" true
    (try
       ignore (Benchmarks.find "nonexistent");
       false
     with Not_found -> true)

let () =
  Alcotest.run "graph"
    [
      ( "structure",
        [
          Alcotest.test_case "build" `Quick test_build_basic;
          Alcotest.test_case "self loops" `Quick test_self_loop_rejected;
          Alcotest.test_case "edges sorted" `Quick test_edges_sorted;
          Alcotest.test_case "complement" `Quick test_complement;
          Alcotest.test_case "induced" `Quick test_induced;
          Alcotest.test_case "proper coloring" `Quick test_proper_coloring;
          Alcotest.test_case "density/degree" `Quick test_density_and_degree;
          Alcotest.test_case "determinism" `Quick test_generator_determinism;
          Alcotest.test_case "empty interval" `Quick test_interval_rejects_empty;
          Alcotest.test_case "prng" `Quick test_prng_deterministic;
        ] );
      ( "dimacs",
        [
          Alcotest.test_case "roundtrip" `Quick test_dimacs_roundtrip;
          Alcotest.test_case "dup edges" `Quick test_dimacs_duplicate_edges_merged;
          Alcotest.test_case "malformed" `Quick test_dimacs_malformed;
          Alcotest.test_case "self loop" `Quick test_dimacs_selfloop_dropped;
        ] );
      ( "generators",
        [
          Alcotest.test_case "complete" `Quick test_complete_sizes;
          Alcotest.test_case "cycles" `Quick test_cycles;
          Alcotest.test_case "petersen" `Quick test_petersen;
          Alcotest.test_case "wheel" `Quick test_wheel;
          Alcotest.test_case "crown" `Quick test_crown;
          Alcotest.test_case "kneser" `Quick test_kneser;
          Alcotest.test_case "queens sizes" `Quick test_queens_sizes;
          Alcotest.test_case "queens chi" `Slow test_queens_chromatic_small;
          Alcotest.test_case "mycielski" `Quick test_mycielski;
          Alcotest.test_case "mycielski triangle-free" `Quick
            test_mycielski_triangle_free;
          Alcotest.test_case "gnm" `Quick test_gnm_exact;
          Alcotest.test_case "geometric" `Quick test_geometric_exact;
          Alcotest.test_case "planted degenerate" `Quick test_planted_degenerate;
          Alcotest.test_case "split register" `Quick test_split_register;
          Alcotest.test_case "frequency assignment" `Quick
            test_frequency_assignment;
          Alcotest.test_case "intervals" `Quick test_interval_conflicts;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "clique greedy" `Quick test_clique_greedy;
          Alcotest.test_case "max clique" `Quick test_max_clique_exact;
          Alcotest.test_case "dsatur bipartite" `Quick
            test_dsatur_bipartite_optimal;
          Alcotest.test_case "dsatur proper" `Quick test_dsatur_proper;
          Alcotest.test_case "smallest-last optimal on trees" `Quick
            test_smallest_last_degenerate_optimal;
          qtest prop_dsatur_sandwich;
          qtest prop_colorings_proper;
          qtest prop_brute_monotone;
          qtest prop_dimacs_roundtrip;
        ] );
      ( "exact dsatur",
        [
          Alcotest.test_case "known instances" `Quick test_exact_dsatur_known;
          Alcotest.test_case "budget" `Quick test_exact_dsatur_budget;
          Alcotest.test_case "deadline == now cuts at entry" `Quick
            test_exact_dsatur_deadline_now;
          qtest prop_exact_dsatur_matches_brute;
        ] );
      ( "benchmarks",
        [
          Alcotest.test_case "inventory" `Quick test_benchmark_inventory;
          Alcotest.test_case "sizes" `Quick test_benchmark_sizes;
          Alcotest.test_case "planted chromatic" `Quick
            test_benchmark_planted_chromatic;
          Alcotest.test_case "find" `Quick test_benchmark_find;
        ] );
    ]
