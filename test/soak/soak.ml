(* Randomized chaos soak for the coloring service (DESIGN.md §14, §17).

   One seeded PRNG drives an interleaved schedule of client load, daemon
   SIGKILLs (through the supervisors' pid files), fd-pressure bursts,
   client-side network faults, and — inside each daemon itself — a seeded
   syscall fault plan injecting ENOSPC/EIO on the durable-write path and
   EMFILE on open/accept, under a lowered RLIMIT_NOFILE. The topology is a
   TWO-daemon fleet, each under its own supervisor with its own journal
   and checkpoint dir; clients route through the balancer, so a kill
   landing on either daemon turns into an ejection plus a re-dispatch,
   never a lost job. Each daemon serves through its warm worker pool with
   aggressive recycling (every worker retires after 2 jobs) and a seeded
   worker-kill plan SIGKILLing pool workers mid-dispatch, with the result
   cache and request coalescing on — job seeds cycle so the load mixes
   fresh solves, cache hits, and coalesced duplicates. The schedule also
   interleaves in-process portfolio races whose workers emit FORGED
   clause-share frames (and are sometimes SIGKILLed mid-solve): the
   receivers' RUP admission gate must quarantine the forgeries and the
   race must still end parent-certified. Alongside the one-shot jobs, the
   schedule drives durable incremental SESSIONS: sticky per-daemon edit
   bursts with deliberately duplicated frames, chi queries, and — for a
   random minority — a short lease the worker then sleeps past, expecting
   the typed permanent expiry. Daemon kills landing mid-burst must never
   cost an edit (write-ahead journal + idempotent sequence numbers) nor
   forge an answer (every delivered chi is daemon-certified). The
   schedule is a pure function of --seed, so a failing run replays
   exactly.

   (The worker chaos is kill-only on purpose: a SIGSTOPped worker whose
   daemon is itself SIGKILLed by the schedule would have nobody left to
   resume or reap it, tripping the orphan invariant for a scenario the
   product code cannot observe.)

   Invariants checked at the end of the run (any violation exits 1 and
   leaves the work dir for forensics; a clean run prints SOAK OK):

   1. every submitted job produced exactly one client verdict — a result
      or a typed failure — and every result carrying a coloring was
      certified by the daemon;
   1c. every session ended definitively: clean close, expected typed
      expiry, or a typed permanent failure — never an uncertified answer,
      a duplicate frame applied twice, or a frame accepted past the lease;
   2. every job either daemon journaled reached a terminal state
      (done/failed/shed): accepted work is never silently lost, across any
      number of kills and disk-fault windows, on either member of the
      fleet;
   3. both journals replay: each final file parses and resolves a state
      for every key;
   4. no process from the soak's process group survives the shutdown — no
      orphan daemons, runners, or client workers;
   5. atomic-write staging debris is bounded: at most two *.tmp files in
      the whole work dir after shutdown. *)

module Generators = Colib_graph.Generators
module Dimacs_col = Colib_graph.Dimacs_col
module Chaos = Colib_check.Chaos
module Frame = Colib_portfolio.Frame
module Journal = Colib_portfolio.Journal
module P = Colib_portfolio.Portfolio
module Types = Colib_solver.Types
module Flow = Colib_core.Flow
module Server = Colib_server.Server
module Client = Colib_server.Client
module Balancer = Colib_server.Balancer
module Supervise = Colib_server.Supervise
module Fault = Colib_io.Fault
module Durable = Colib_io.Durable
module Mclock = Colib_clock.Mclock

let seed = ref 1
let duration = ref 20.0
let dir = ref ""

let args =
  [
    ("--seed", Arg.Set_int seed, "INT  schedule seed (default 1)");
    ( "--duration",
      Arg.Set_float duration,
      "SECONDS  soak length (default 20)" );
    ( "--dir",
      Arg.Set_string dir,
      "PATH  work dir (default: fresh under TMPDIR, removed on success)" );
  ]

let usage = "soak --seed N --duration S [--dir PATH]"

let rec mkdir_p p =
  if not (Sys.file_exists p) then begin
    mkdir_p (Filename.dirname p);
    try Unix.mkdir p 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let myciel3_text = Dimacs_col.to_string (Generators.mycielski 3)

(* the job seed cycles with the id, giving 4 distinct parameter digests:
   duplicates coalesce or hit the cache while fresh digests keep the
   solvers and the cache-store path busy *)
let job id =
  {
    Frame.job_id = id;
    dimacs = myciel3_text;
    j_k = None;
    deadline = 30.0;
    strategies = "dsatur";
    sbp = "";
    instance_dependent = false;
    j_seed = Hashtbl.hash id mod 4;
  }

(* ------------------------------------------------------------------ *)

type stats = {
  mutable submitted : int;
  mutable kills : int;
  mutable fd_bursts : int;
  mutable health_polls : int;
  mutable share_races : int;
  mutable sessions : int;
}

let violations = ref []
let violation fmt =
  Printf.ksprintf
    (fun s ->
      Printf.eprintf "soak: INVARIANT VIOLATED: %s\n%!" s;
      violations := s :: !violations)
    fmt

(* the per-life fault plan the daemon installs on every (re)start: a low
   seeded probability on every durable op — enough to open degraded
   windows regularly without making progress impossible *)
let daemon_fault_plan seed life =
  Fault.seeded ~seed:((seed * 1000) + life) ~p:0.02
    [ Fault.Enospc; Fault.Eio; Fault.Emfile ]

(* client worker: submits one job through the fleet balancer with patient
   retries and records exactly one verdict file. A separate process so the
   scheduler never blocks. *)
let spawn_worker ~sockets ~verdict_dir ~rng id =
  (* derive the worker's chaos before forking so the parent's PRNG state
     stays a pure function of the schedule *)
  let fault_roll = Random.State.int rng 100 in
  let chaos =
    if fault_roll < 10 then
      Some (Chaos.net_scripted [ (0, Chaos.Disconnect_mid_frame) ])
    else if fault_roll < 16 then
      Some (Chaos.net_scripted [ (0, Chaos.Net_garbage) ])
    else if fault_roll < 22 then
      Some (Chaos.net_scripted [ (0, Chaos.Net_truncated_frame) ])
    else None
  in
  match Unix.fork () with
  | 0 ->
    let b = Balancer.create ~eject_base:0.2 ~eject_cap:2.0 sockets in
    let verdict =
      match
        Balancer.submit ?chaos ~dispatches:12 ~retries:3 ~backoff:0.2
          ~backoff_cap:1.0 b (job id)
      with
      | Ok r ->
        Printf.sprintf "result|%s|%b|%b" r.Frame.r_outcome
          r.Frame.r_certified
          (r.Frame.r_coloring <> None)
      | Error { last; attempts } ->
        Printf.sprintf "typed|%s|%d" (Client.failure_to_string last) attempts
    in
    (try
       Durable.write_file_atomic ~fsync_parent:false
         ~path:(Filename.concat verdict_dir id)
         verdict
     with _ -> ());
    Unix._exit 0
  | pid -> pid

(* share-race worker: an in-process portfolio race between two sharing
   engines where spawn 0 emits forged clause-share frames (and spawn 1 is
   sometimes SIGKILLed mid-solve). The receivers' RUP admission gate must
   quarantine the forgeries: anything but a certified Optimal 4 on myciel3
   is a violation. *)
let spawn_share_race ~verdict_dir ~rng id =
  let kill_too = Random.State.int rng 100 < 40 in
  match Unix.fork () with
  | 0 ->
    let g = Generators.mycielski 3 in
    let chaos =
      Chaos.process_scripted
        ((0, Chaos.Forged_share)
        :: (if kill_too then [ (1, Chaos.Kill_mid_solve 0.02) ] else []))
    in
    let verdict =
      match
        P.solve ~instance_dependent:false ~timeout:30.0 ~chaos g ~k:4
          [ P.Engine_strategy Types.Pbs2; P.Engine_strategy Types.Galena ]
      with
      | r -> (
        match (r.P.outcome, r.P.certificate) with
        | Flow.Optimal 4, Some (Ok ()) -> "share|ok"
        | o, _ ->
          Printf.sprintf "share|bad|%s"
            (match o with
            | Flow.Optimal c -> Printf.sprintf "optimal %d uncertified" c
            | Flow.Best c -> Printf.sprintf "best %d" c
            | Flow.No_coloring -> "no-coloring"
            | Flow.Timed_out -> "timed-out"))
      | exception e -> "share|bad|exception " ^ Printexc.to_string e
    in
    (try
       Durable.write_file_atomic ~fsync_parent:false
         ~path:(Filename.concat verdict_dir id)
         verdict
     with _ -> ());
    Unix._exit 0
  | pid -> pid

(* session worker: drives one durable incremental session against ONE
   daemon (sessions are sticky, not balanced) through an edit burst with
   deliberate duplicate frames, a chi query, and either a clean close or
   — for short-lease workers — a sleep past the lease that must come back
   as a typed, permanent expiry. Daemon SIGKILLs land anywhere in this
   flow; the retry loops ride through them and the journal-backed session
   state must answer duplicates idempotently. Verdicts:
     sess|ok          — edits applied, duplicate acked replayed, query
                        certified, close clean
     sess|expired-ok  — short-lease worker got the typed expiry/eviction
     sess|typed|...   — a permanent typed failure mid-flow (eviction under
                        the session bound, expiry during daemon downtime)
                        or retry exhaustion while a daemon stayed dead
     sess|bad|...     — an invariant violation (uncertified answer, lost
                        idempotence, a frame accepted past the lease) *)
let spawn_session_worker ~sockets ~verdict_dir ~rng id =
  let socket = List.nth sockets (Random.State.int rng 2) in
  let wseed = Random.State.int rng 1_000_000 in
  let short_lease = Random.State.int rng 100 < 25 in
  match Unix.fork () with
  | 0 ->
    let rng = Random.State.make [| wseed |] in
    let exception Verdict of string in
    let fin v : unit = raise (Verdict v) in
    let typed g : unit =
      fin ("sess|typed|" ^ Client.failure_to_string g.Client.last)
    in
    let retries = 8 and backoff = 0.2 and backoff_cap = 1.0 in
    let n = 5 in
    let edit seq e =
      Client.sess_edit ~retries ~backoff ~backoff_cap ~socket ~sid:id ~seq e
    in
    let verdict =
      try
        (match
           Client.sess_open ~retries ~backoff ~backoff_cap ~socket ~sid:id
             ~vertices:n ~colors:n
             ~edges:(n * (n - 1) / 2)
             ~lease:(if short_lease then 1.0 else 0.0)
             ()
         with
        | Ok _ -> ()
        | Error g -> typed g);
        let seq = ref 0 in
        let next () = incr seq; !seq in
        for _ = 1 to n do
          match edit (next ()) Colib_session.Session.Add_vertex with
          | Ok _ -> ()
          | Error g -> typed g
        done;
        let last_edit = ref None in
        for _ = 1 to 6 do
          let u = Random.State.int rng n and v = Random.State.int rng n in
          if u <> v then begin
            let e = Colib_session.Session.Add_edge (min u v, max u v) in
            match edit (next ()) e with
            | Ok _ -> last_edit := Some (!seq, e)
            | Error g -> typed g
          end
        done;
        (* idempotence probe: re-send the last applied edit frame *)
        (match !last_edit with
        | None -> ()
        | Some (s, e) -> (
          match edit s e with
          | Ok a when a.Client.ack_replayed -> ()
          | Ok _ -> fin "sess|bad|duplicate edit not acked as replayed"
          | Error g -> typed g));
        (match
           Client.sess_query ~retries ~backoff ~backoff_cap ~socket ~sid:id
             ~seq:(next ()) ()
         with
        | Ok a ->
          if not a.Frame.sa_certified then
            fin
              (Printf.sprintf "sess|bad|uncertified answer chi=%d"
                 a.Frame.sa_chi)
        | Error g -> typed g);
        if short_lease then begin
          (* idle past the lease: the next frame MUST be a typed reap *)
          Unix.sleepf 1.6;
          match edit (next ()) Colib_session.Session.Add_vertex with
          | Error
              {
                Client.last =
                  Client.Session_expired _ | Client.Session_evicted _;
                _;
              } ->
            "sess|expired-ok"
          | Error g -> "sess|typed|" ^ Client.failure_to_string g.Client.last
          | Ok _ -> "sess|bad|edit accepted past the lease"
        end
        else begin
          (match
             Client.sess_close ~retries ~backoff ~backoff_cap ~socket
               ~sid:id ()
           with
          | Ok _ -> ()
          | Error g -> typed g);
          "sess|ok"
        end
      with
      | Verdict v -> v
      | e -> "sess|bad|exception " ^ Printexc.to_string e
    in
    (try
       Durable.write_file_atomic ~fsync_parent:false
         ~path:(Filename.concat verdict_dir id)
         verdict
     with _ -> ());
    Unix._exit 0
  | pid -> pid

let procs_in_group pg =
  Array.fold_left
    (fun acc entry ->
      match int_of_string_opt entry with
      | None -> acc
      | Some pid when pid = Unix.getpid () -> acc
      | Some pid -> (
        try
          let ic = open_in (Printf.sprintf "/proc/%d/stat" pid) in
          let line = input_line ic in
          close_in_noerr ic;
          match String.rindex_opt line ')' with
          | None -> acc
          | Some i -> (
            let rest =
              String.sub line (i + 2) (String.length line - i - 2)
            in
            match String.split_on_char ' ' rest with
            | _state :: _ppid :: pgrp :: _
              when int_of_string_opt pgrp = Some pg ->
              pid :: acc
            | _ -> acc)
        with _ -> acc))
    [] (Sys.readdir "/proc")

let rec count_tmp path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.fold_left
      (fun n e -> n + count_tmp (Filename.concat path e))
      0 (Sys.readdir path)
  | _ -> if Filename.check_suffix path ".tmp" then 1 else 0
  | exception Unix.Unix_error _ -> 0

let soak_main () =
  let seed = !seed and duration = !duration in
  let keep_dir = !dir <> "" in
  let dir =
    if keep_dir then !dir
    else
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "colib_soak_%d_%d" seed (Unix.getpid ()))
  in
  rm_rf dir;
  mkdir_p dir;
  let verdict_dir = Filename.concat dir "verdicts" in
  mkdir_p verdict_dir;
  (* the two-daemon fleet: each member has its own socket, journal,
     checkpoint dir, pid file, log, and supervisor *)
  let member i =
    let sub = Filename.concat dir (Printf.sprintf "d%d" i) in
    mkdir_p sub;
    ( Filename.concat sub "sock",
      Filename.concat sub "journal.jsonl",
      Filename.concat sub "ckpt",
      Filename.concat sub "daemon.pid",
      Filename.concat sub "daemon.log" )
  in
  let members = [ member 1; member 2 ] in
  let sockets = List.map (fun (s, _, _, _, _) -> s) members in
  let journals = List.map (fun (_, j, _, _, _) -> j) members in
  let pid_files = List.map (fun (_, _, _, p, _) -> p) members in
  (* the caller forked us into a fresh session, so our process group holds
     exactly this process and its descendants — the orphan scan is exact *)
  let pg = Unix.getpid () in
  let rng = Random.State.make [| seed |] in
  (* kill-only worker chaos (see the header note on SIGSTOP orphans),
     seeded off the schedule seed so it replays with the run *)
  let worker_kill_plan salt =
    let seeded = Chaos.worker_seeded ~seed:((seed * 7919) + salt) ~p:0.15 in
    fun idx ->
      match Chaos.worker_fault_for seeded idx with
      | Some _ -> Some Chaos.Worker_kill
      | None -> None
  in
  let sups =
    List.mapi
      (fun i (socket, journal_path, ckpt_dir, pid_file, log_path) ->
        let cfg =
          Server.config ~max_queue:8 ~max_running:2 ~io_timeout:2.0
            ~drain_grace:10.0 ~default_strategies:[ P.Dsatur_strategy ]
            ~pool_size:2 ~recycle_jobs:2 ~pool_faults:(worker_kill_plan i)
            ~peers:(List.filter (fun s -> s <> socket) sockets)
            ~socket ~journal_path ~ckpt_dir ()
        in
        let lives = ref 0 in
        match Unix.fork () with
        | 0 ->
          (* supervisor + daemon log to a file that survives as an
             artifact *)
          let logfd =
            Unix.openfile log_path
              [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
              0o644
          in
          Unix.dup2 logfd Unix.stderr;
          Unix.dup2 logfd Unix.stdout;
          Unix.close logfd;
          let scfg =
            Supervise.config ~backoff:0.05 ~backoff_cap:0.5
              ~max_restarts:1000 ~window:5.0 ~pid_file ~verbose:true ()
          in
          Unix._exit
            (Supervise.run scfg ~start:(fun () ->
                 incr lives;
                 ignore (Durable.set_rlimit_nofile 64 : bool);
                 Fault.install (daemon_fault_plan ((seed * 10) + i) !lives);
                 Server.run cfg))
        | pid -> pid)
      members
  in
  let stats =
    { submitted = 0; kills = 0; fd_bursts = 0; health_polls = 0;
      share_races = 0; sessions = 0 }
  in
  let workers = ref [] in
  let idle_fds = ref [] in
  let reap_workers ~block =
    workers :=
      List.filter
        (fun (pid, _) ->
          match Unix.waitpid (if block then [] else [ Unix.WNOHANG ]) pid with
          | 0, _ -> true
          | _, _ -> false
          | exception Unix.Unix_error (Unix.ECHILD, _, _) -> false
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> true)
        !workers
  in
  let close_idle () =
    List.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      !idle_fds;
    idle_fds := []
  in
  (* wait for every member's first life *)
  let ready_deadline = Mclock.now () +. 15.0 in
  let rec wait_ready socket =
    if Mclock.now () > ready_deadline then begin
      violation "daemon %s never came up" socket;
      List.iter
        (fun sup ->
          try Unix.kill sup Sys.sigkill with Unix.Unix_error _ -> ())
        sups;
      exit 1
    end
    else
      match Client.ping ~timeout:0.5 ~socket () with
      | Ok () -> ()
      | Error _ ->
        Unix.sleepf 0.05;
        wait_ready socket
  in
  List.iter wait_ready sockets;
  Printf.printf "soak: seed %d, %.0fs, dir %s\n%!" seed duration dir;
  (* ---------------- the schedule ---------------- *)
  let stop_at = Mclock.now () +. duration in
  while Mclock.now () < stop_at do
    reap_workers ~block:false;
    let roll = Random.State.int rng 100 in
    let pick_socket () = List.nth sockets (Random.State.int rng 2) in
    if roll < 50 then begin
      (* submit through the balancer, but keep the worker pool bounded *)
      if List.length !workers < 8 then begin
        let id = Printf.sprintf "soak-%d-%d" seed stats.submitted in
        let pid = spawn_worker ~sockets ~verdict_dir ~rng id in
        workers := (pid, id) :: !workers;
        stats.submitted <- stats.submitted + 1
      end
    end
    else if roll < 58 then begin
      (* SIGKILL either daemon mid-whatever; its supervisor heals it while
         the balancer routes around the hole *)
      let pid_file = List.nth pid_files (Random.State.int rng 2) in
      let dpid =
        match open_in pid_file with
        | ic ->
          let p =
            try int_of_string (String.trim (input_line ic)) with _ -> -1
          in
          close_in_noerr ic;
          p
        | exception Sys_error _ -> -1
      in
      if dpid > 0 then begin
        (try Unix.kill dpid Sys.sigkill with Unix.Unix_error _ -> ());
        stats.kills <- stats.kills + 1
      end
      else Printf.eprintf "soak: kill roll but pid file unreadable\n%!"
    end
    else if roll < 68 then begin
      (* fd-pressure burst: a pile of idle connections against one
         daemon's lowered RLIMIT_NOFILE *)
      if !idle_fds = [] then begin
        let socket = pick_socket () in
        for _ = 1 to 20 do
          match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
          | fd -> (
            try
              Unix.connect fd (Unix.ADDR_UNIX socket);
              idle_fds := fd :: !idle_fds
            with Unix.Unix_error _ -> Unix.close fd)
          | exception Unix.Unix_error _ -> ()
        done;
        stats.fd_bursts <- stats.fd_bursts + 1
      end
      else close_idle ()
    end
    else if roll < 75 then begin
      stats.health_polls <- stats.health_polls + 1;
      ignore (Client.health ~timeout:1.0 ~socket:(pick_socket ()) ()
               : (_, _) result)
    end
    else if roll < 82 then begin
      (* forged clause-share race (bounded alongside the client pool) *)
      if List.length !workers < 8 then begin
        let id = Printf.sprintf "share-%d-%d" seed stats.share_races in
        let pid = spawn_share_race ~verdict_dir ~rng id in
        workers := (pid, id) :: !workers;
        stats.share_races <- stats.share_races + 1
      end
    end
    else if roll < 92 then begin
      (* durable incremental session: edit burst + duplicates + query,
         riding through whatever kills and fault windows land meanwhile *)
      if List.length !workers < 8 then begin
        let id = Printf.sprintf "sess-%d-%d" seed stats.sessions in
        let pid = spawn_session_worker ~sockets ~verdict_dir ~rng id in
        workers := (pid, id) :: !workers;
        stats.sessions <- stats.sessions + 1
      end
    end;
    Unix.sleepf (0.02 +. (float_of_int (Random.State.int rng 100) /. 1000.0))
  done;
  close_idle ();
  (* ---------------- settle and shut down ---------------- *)
  (* every worker must come home: a stuck worker is itself a violation *)
  let worker_deadline = Mclock.now () +. 90.0 in
  let rec drain_workers () =
    reap_workers ~block:false;
    if !workers <> [] then begin
      if Mclock.now () > worker_deadline then begin
        List.iter
          (fun (pid, id) ->
            violation "client worker for %s hung" id;
            try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
          !workers;
        reap_workers ~block:true
      end
      else begin
        Unix.sleepf 0.1;
        drain_workers ()
      end
    end
  in
  drain_workers ();
  (* wait for each daemon to go quiescent so accepted work finishes before
     the drain; tolerate degraded windows by just polling *)
  let quiet_deadline = Mclock.now () +. 60.0 in
  let rec wait_quiet socket =
    if Mclock.now () > quiet_deadline then
      violation "daemon %s never went quiescent (queued+running stuck)"
        socket
    else
      match Client.health ~timeout:1.0 ~socket () with
      | Ok h when h.Frame.h_queued = 0 && h.Frame.h_running = 0 -> ()
      | _ ->
        Unix.sleepf 0.2;
        wait_quiet socket
  in
  List.iter wait_quiet sockets;
  List.iter
    (fun sup ->
      try Unix.kill sup Sys.sigterm with Unix.Unix_error _ -> ())
    sups;
  List.iter
    (fun sup ->
      match Unix.waitpid [] sup with
      | _, Unix.WEXITED 0 -> ()
      | _, Unix.WEXITED c -> violation "supervisor exited %d on drain" c
      | _, _ -> violation "supervisor died abnormally on drain"
      | exception Unix.Unix_error _ -> ())
    sups;
  (* ---------------- invariants ---------------- *)
  (* 1. exactly one verdict per submitted job; results are certified *)
  for i = 0 to stats.submitted - 1 do
    let id = Printf.sprintf "soak-%d-%d" seed i in
    match open_in (Filename.concat verdict_dir id) with
    | exception Sys_error _ -> violation "job %s has no verdict" id
    | ic -> (
      let v = try input_line ic with End_of_file -> "" in
      close_in_noerr ic;
      match String.split_on_char '|' v with
      | [ "result"; outcome; certified; has_coloring ] ->
        if has_coloring = "true" && certified <> "true" then
          violation "job %s delivered an uncertified coloring (%s)" id
            outcome
      | [ "typed"; _; _ ] -> ()
      | _ -> violation "job %s verdict unparseable: %s" id v)
  done;
  (* 1b. every forged-share race ended parent-certified *)
  for i = 0 to stats.share_races - 1 do
    let id = Printf.sprintf "share-%d-%d" seed i in
    match open_in (Filename.concat verdict_dir id) with
    | exception Sys_error _ -> violation "share race %s has no verdict" id
    | ic ->
      let v = try input_line ic with End_of_file -> "" in
      close_in_noerr ic;
      if v <> "share|ok" then
        violation "forged-share race %s not certified: %s" id v
  done;
  (* 1c. every session worker came to a definite end: clean, an expected
     lease expiry, or a typed permanent failure — never an uncertified
     answer, a lost idempotence ack, or a frame accepted past the lease *)
  for i = 0 to stats.sessions - 1 do
    let id = Printf.sprintf "sess-%d-%d" seed i in
    match open_in (Filename.concat verdict_dir id) with
    | exception Sys_error _ -> violation "session %s has no verdict" id
    | ic -> (
      let v = try input_line ic with End_of_file -> "" in
      close_in_noerr ic;
      match String.split_on_char '|' v with
      | "sess" :: ("ok" | "expired-ok") :: _ -> ()
      | [ "sess"; "typed"; _ ] -> ()
      | _ -> violation "session %s: %s" id v)
  done;
  (* 2 + 3. each member's journal replays and resolves a terminal state
     per job *)
  List.iter
    (fun journal_path ->
      match Journal.load journal_path with
      | exception e ->
        violation "journal %s does not replay: %s" journal_path
          (Printexc.to_string e)
      | j ->
        let seen = Hashtbl.create 64 in
        List.iter
          (fun r ->
            match List.assoc_opt "key" r with
            | Some k
              when not (String.length k >= 2 && String.sub k 0 2 = "__")
                   && not (Hashtbl.mem seen k) ->
              Hashtbl.add seen k ();
              let st =
                Option.bind (Journal.find j k) (List.assoc_opt "state")
              in
              (match st with
              | Some ("done" | "failed" | "shed") -> ()
              | st ->
                violation "job %s ended non-terminal: %s" k
                  (Option.value st ~default:"<none>"))
            | _ -> ())
          (Journal.records j);
        Printf.printf "soak: %s resolves %d jobs\n%!" journal_path
          (Hashtbl.length seen))
    journals;
  (* 4. no orphans from our process group *)
  let orphan_deadline = Mclock.now () +. 5.0 in
  let rec orphan_scan () =
    match procs_in_group pg with
    | [] -> ()
    | pids when Mclock.now () > orphan_deadline ->
      List.iter
        (fun pid ->
          violation "orphan process %d survived shutdown" pid;
          try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
        pids
    | _ ->
      Unix.sleepf 0.2;
      orphan_scan ()
  in
  orphan_scan ();
  (* 5. bounded staging debris *)
  let tmp = count_tmp dir in
  if tmp > 2 then violation "%d *.tmp staging files left behind" tmp;
  (* ---------------- verdict ---------------- *)
  Printf.printf
    "soak: %d submitted, %d daemon kills, %d fd bursts, %d health polls, \
     %d forged-share races, %d sessions\n\
     %!"
    stats.submitted stats.kills stats.fd_bursts stats.health_polls
    stats.share_races stats.sessions;
  if !violations = [] then begin
    Printf.printf "SOAK OK (seed %d)\n%!" seed;
    if not keep_dir then rm_rf dir;
    exit 0
  end
  else begin
    Printf.eprintf "SOAK FAILED (seed %d): %d violation(s); evidence in %s\n%!"
      seed
      (List.length !violations)
      dir;
    exit 1
  end

let () =
  Arg.parse args (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  (* run the soak in its own session: kills (the schedule's and the orphan
     sweep's) can then never reach the invoking shell, dune, or CI runner *)
  match Unix.fork () with
  | 0 ->
    ignore (Unix.setsid () : int);
    soak_main ()
  | pid -> (
    match snd (Unix.waitpid [] pid) with
    | Unix.WEXITED c -> exit c
    | _ -> exit 1
    | exception Unix.Unix_error _ -> exit 1)
