(* Supervision tests for the process-isolated portfolio: workers that
   segfault, hang, emit garbage, truncate frames, or exhaust memory must be
   contained and classified while a surviving configuration still delivers a
   parent-certified answer; the crash-safe journal must make interrupted
   sweeps resumable; and the whole race must stay reproducible via the
   per-worker seed stream. *)

module Generators = Colib_graph.Generators
module Types = Colib_solver.Types
module Certify = Colib_check.Certify
module Chaos = Colib_check.Chaos
module Flow = Colib_core.Flow
module Frame = Colib_portfolio.Frame
module Journal = Colib_portfolio.Journal
module P = Colib_portfolio.Portfolio

let check = Alcotest.check

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* myciel3: chi = 4, solved in milliseconds by every engine *)
let myciel3 () = Generators.mycielski 3

(* ---------- frame format ---------- *)

let decode_all s =
  let d = Frame.decoder () in
  Frame.feed d (Bytes.of_string s) (String.length s);
  Frame.state d

let test_frame_roundtrip () =
  let payload = "hello, worker" in
  (match decode_all (Frame.encode payload) with
  | Frame.Got p -> check Alcotest.string "payload" payload p
  | _ -> Alcotest.fail "roundtrip must decode");
  (* byte-at-a-time feeding must reach the same state *)
  let wire = Frame.encode payload in
  let d = Frame.decoder () in
  String.iter (fun c -> Frame.feed d (Bytes.make 1 c) 1) wire;
  match Frame.state d with
  | Frame.Got p -> check Alcotest.string "incremental payload" payload p
  | _ -> Alcotest.fail "incremental decode must succeed"

let test_frame_rejects_corruption () =
  let wire = Frame.encode "payload bytes" in
  (* flip one payload byte: checksum must catch it *)
  let b = Bytes.of_string wire in
  let last = Bytes.length b - 1 in
  Bytes.set b last (Char.chr (Char.code (Bytes.get b last) lxor 0xFF));
  (match decode_all (Bytes.to_string b) with
  | Frame.Failed Frame.Bad_checksum -> ()
  | _ -> Alcotest.fail "corrupt payload must fail the checksum");
  (* random leading bytes fail fast on the magic *)
  (match decode_all "garbage everywhere" with
  | Frame.Failed Frame.Bad_magic -> ()
  | _ -> Alcotest.fail "bad magic must be detected");
  (* a truncated frame stays Awaiting — EOF classification is the
     supervisor's job *)
  let half = String.sub wire 0 (String.length wire - 4) in
  match decode_all half with
  | Frame.Awaiting -> ()
  | _ -> Alcotest.fail "truncated frame must stay awaiting"

let test_frame_reset_preserves_surplus () =
  (* two frames can arrive in one read: after the first decodes, [reset]
     must keep the surplus bytes so the second frame is not lost *)
  let w1 = Frame.encode "first" and w2 = Frame.encode "second" in
  let both = w1 ^ w2 in
  let d = Frame.decoder () in
  Frame.feed d (Bytes.of_string both) (String.length both);
  (match Frame.state d with
  | Frame.Got p -> check Alcotest.string "first frame" "first" p
  | _ -> Alcotest.fail "first frame must decode");
  Frame.reset d;
  match Frame.state d with
  | Frame.Got p -> check Alcotest.string "second frame survives reset" "second" p
  | Frame.Awaiting -> Alcotest.fail "reset must not drop buffered surplus"
  | Frame.Failed _ -> Alcotest.fail "surplus must stay decodable"

let test_share_codec () =
  (* the clause-share payload is plain text, not Marshal: a forged or
     garbled payload decodes to None, never to an exception, because it
     crosses a trust boundary between workers *)
  let clauses = [ [ 1; -2; 3 ]; [ -4 ]; [ 5; 6 ] ] in
  (match Frame.decode_share (Frame.encode_share clauses) with
  | Some c -> check Alcotest.bool "roundtrip" true (c = clauses)
  | None -> Alcotest.fail "genuine share must decode");
  (match Frame.decode_share (Frame.encode_share []) with
  | Some [] -> ()
  | _ -> Alcotest.fail "empty share must roundtrip");
  List.iter
    (fun junk ->
      match Frame.decode_share junk with
      | None -> ()
      | Some _ -> Alcotest.fail ("junk must not decode: " ^ junk))
    [
      "";
      "not a share at all";
      "CSH1 1,2;3,x";
      "CSH1 1,,2";
      "CSH2 1,2";
      "CSH1 99999999999999999999999";
    ]

(* ---------- clean race ---------- *)

let test_portfolio_clean_race () =
  let g = myciel3 () in
  let r =
    P.solve ~instance_dependent:false ~timeout:30.0 g ~k:5
      [ P.Engine_strategy Types.Pbs2; P.Engine_strategy Types.Galena;
        P.Dsatur_strategy ]
  in
  check Alcotest.bool "optimal 4" true (r.P.outcome = Flow.Optimal 4);
  check Alcotest.bool "winner recorded" true (r.P.winner <> None);
  check Alcotest.bool "certificate accepted" true
    (match r.P.certificate with Some (Ok ()) -> true | _ -> false);
  (* every spawned worker is accounted for: finished or cancelled *)
  check Alcotest.bool "some attempt recorded" true (r.P.attempts <> []);
  List.iter
    (fun (a : P.attempt) ->
      match a.P.outcome with
      | P.Done _ | P.Cancelled -> ()
      | o -> Alcotest.fail ("unexpected outcome: " ^ P.outcome_to_string o))
    r.P.attempts

(* ---------- the acceptance scenario: segfault + hang + garbage ---------- *)

let test_portfolio_survives_process_faults () =
  let g = myciel3 () in
  let chaos =
    Chaos.process_scripted
      [ (0, Chaos.Segfault); (1, Chaos.Hang); (2, Chaos.Garbage) ]
  in
  (* one slot: each faulted worker must fully fail — and be classified —
     before the next config spawns, so the hang really dies by watchdog
     rather than being cancelled by an early winner *)
  let r =
    P.solve ~jobs:1 ~retries:0 ~grace:0.25 ~instance_dependent:false
      ~timeout:1.0 ~chaos g ~k:5
      [ P.Engine_strategy Types.Pbs2; P.Engine_strategy Types.Galena;
        P.Engine_strategy Types.Pueblo; P.Dsatur_strategy ]
  in
  (* the surviving config must still deliver a parent-certified result *)
  check Alcotest.bool "optimal 4 from the survivor" true
    (r.P.outcome = Flow.Optimal 4);
  check (Alcotest.option Alcotest.string) "dsatur won" (Some "DSATUR B&B")
    r.P.winner;
  check Alcotest.bool "certificate accepted" true
    (match r.P.certificate with Some (Ok ()) -> true | _ -> false);
  (* all three failures classified in the attempt provenance *)
  let has p = List.exists (fun (a : P.attempt) -> p a.P.outcome) r.P.attempts in
  check Alcotest.bool "segfault classified" true
    (has (function P.Crashed s -> s = Sys.sigsegv | _ -> false));
  check Alcotest.bool "hang killed by watchdog" true
    (has (function P.Timed_out -> true | _ -> false));
  check Alcotest.bool "garbage classified" true
    (has (function P.Garbled _ -> true | _ -> false))

let test_portfolio_truncated_frame_retries_rotated () =
  let g = myciel3 () in
  (* single slot, both round-0 spawns sabotaged: only a retry can win.
     The surviving spawn must be a round-1 item rotated off the pbs2
     failure — i.e. running Galena *)
  let chaos =
    Chaos.process_scripted [ (0, Chaos.Truncated_frame); (1, Chaos.Garbage) ]
  in
  let r =
    P.solve ~jobs:1 ~retries:1 ~backoff:0.01 ~instance_dependent:false
      ~timeout:30.0 ~chaos g ~k:5
      [ P.Engine_strategy Types.Pbs2; P.Engine_strategy Types.Galena ]
  in
  check Alcotest.bool "optimal 4 after retry" true
    (r.P.outcome = Flow.Optimal 4);
  match r.P.attempts with
  | [ first; second; third ] ->
    check Alcotest.bool "truncated frame garbled" true
      (match first.P.outcome with P.Garbled _ -> true | _ -> false);
    check Alcotest.bool "garbage garbled" true
      (match second.P.outcome with P.Garbled _ -> true | _ -> false);
    check Alcotest.int "first was round 0" 0 first.P.round;
    check Alcotest.int "second was round 0" 0 second.P.round;
    check Alcotest.int "winner was a retry" 1 third.P.round;
    (* rotation: the retry of the pbs2 failure ran the *other* config *)
    check Alcotest.string "rotated config" "Galena"
      (P.strategy_name third.P.strategy);
    check Alcotest.bool "retry proved" true
      (match third.P.outcome with
      | P.Done a -> a.P.a_outcome = Flow.Optimal 4
      | _ -> false)
  | l ->
    Alcotest.fail
      (Printf.sprintf "expected 3 attempts, got %d" (List.length l))

let test_portfolio_oom_classified () =
  let g = myciel3 () in
  let chaos = Chaos.process_scripted [ (0, Chaos.Alloc_bomb) ] in
  let r =
    P.solve ~jobs:1 ~retries:1 ~backoff:0.01 ~instance_dependent:false
      ~timeout:30.0 ~chaos g ~k:5
      [ P.Engine_strategy Types.Pbs2; P.Dsatur_strategy ]
  in
  check Alcotest.bool "optimal 4 after oom retry" true
    (r.P.outcome = Flow.Optimal 4);
  check Alcotest.bool "oom classified" true
    (List.exists (fun (a : P.attempt) -> a.P.outcome = P.Oom) r.P.attempts)

let test_portfolio_all_faulted_never_lies () =
  let g = myciel3 () in
  let chaos =
    Chaos.process_scripted
      [ (0, Chaos.Segfault); (1, Chaos.Garbage); (2, Chaos.Segfault);
        (3, Chaos.Garbage) ]
  in
  let r =
    P.solve ~jobs:2 ~retries:1 ~backoff:0.01 ~instance_dependent:false
      ~timeout:30.0 ~chaos g ~k:5
      [ P.Engine_strategy Types.Pbs2; P.Engine_strategy Types.Galena ]
  in
  (* four spawns (two originals + two retries), all sabotaged: the
     supervisor must admit defeat, never fabricate an answer *)
  check Alcotest.bool "no certified answer" true
    (r.P.outcome = Flow.Timed_out);
  check (Alcotest.option Alcotest.string) "no winner" None r.P.winner;
  check Alcotest.int "all four spawns classified" 4 (List.length r.P.attempts)

let test_portfolio_first_certified_wins_cancels_losers () =
  let g = myciel3 () in
  (* spawn 0 hangs with a watchdog far beyond the race: it can only leave
     the attempt list as Cancelled, proving the winner killed it *)
  let chaos = Chaos.process_scripted [ (0, Chaos.Hang) ] in
  let r =
    P.solve ~jobs:2 ~retries:0 ~grace:30.0 ~instance_dependent:false
      ~timeout:30.0 ~chaos g ~k:5
      [ P.Engine_strategy Types.Pbs2; P.Dsatur_strategy ]
  in
  check Alcotest.bool "optimal 4" true (r.P.outcome = Flow.Optimal 4);
  check (Alcotest.option Alcotest.string) "dsatur won" (Some "DSATUR B&B")
    r.P.winner;
  check Alcotest.bool "hung loser was cancelled" true
    (List.exists (fun (a : P.attempt) -> a.P.outcome = P.Cancelled) r.P.attempts);
  check Alcotest.bool "race ended promptly, not at the watchdog" true
    (r.P.total_time < 25.0)

let test_portfolio_infeasible_certified () =
  (* chi(K5) = 5 > k = 4: the race must prove infeasibility *)
  let g = Generators.complete 5 in
  let r =
    P.solve ~instance_dependent:false ~timeout:30.0 g ~k:4
      [ P.Engine_strategy Types.Pbs2; P.Dsatur_strategy ]
  in
  check Alcotest.bool "no coloring" true (r.P.outcome = Flow.No_coloring);
  check Alcotest.bool "no coloring returned" true (r.P.coloring = None)

let test_portfolio_mem_limit_smoke () =
  (* a generous rlimit must not disturb a normal run — exercises the
     setrlimit stub end to end *)
  let g = myciel3 () in
  let r =
    P.solve ~mem_limit_mb:4096 ~instance_dependent:false ~timeout:30.0 g ~k:5
      [ P.Engine_strategy Types.Pbs2 ]
  in
  check Alcotest.bool "optimal under rlimit" true
    (r.P.outcome = Flow.Optimal 4)

let test_portfolio_interrupt () =
  let g = myciel3 () in
  let polls = ref 0 in
  (* stop the race from the second supervisor poll onward: whatever was
     running must be reaped and recorded as Cancelled *)
  let should_stop () =
    incr polls;
    !polls > 1
  in
  let chaos = Chaos.process_scripted [ (0, Chaos.Hang) ] in
  let r =
    P.solve ~jobs:1 ~retries:0 ~grace:30.0 ~instance_dependent:false
      ~timeout:30.0 ~chaos ~should_stop g ~k:5
      [ P.Engine_strategy Types.Pbs2 ]
  in
  check Alcotest.bool "flagged interrupted" true r.P.interrupted;
  check Alcotest.bool "worker cancelled" true
    (List.exists (fun (a : P.attempt) -> a.P.outcome = P.Cancelled) r.P.attempts)

(* ---------- deterministic seeds ---------- *)

let test_worker_seeds_deterministic () =
  let s0 = P.worker_seed ~run_seed:42 ~index:0 in
  let s1 = P.worker_seed ~run_seed:42 ~index:1 in
  check Alcotest.int "stable across calls" s0
    (P.worker_seed ~run_seed:42 ~index:0);
  check Alcotest.bool "distinct per index" true (s0 <> s1);
  check Alcotest.bool "distinct per run seed" true
    (s0 <> P.worker_seed ~run_seed:43 ~index:0);
  check Alcotest.bool "non-negative" true (s0 >= 0 && s1 >= 0);
  (* the race records exactly the derived seeds *)
  let g = myciel3 () in
  let r =
    P.solve ~seed:42 ~instance_dependent:false ~timeout:30.0 g ~k:5
      [ P.Engine_strategy Types.Pbs2; P.Dsatur_strategy ]
  in
  List.iter
    (fun (a : P.attempt) ->
      check Alcotest.bool "attempt seed from the run stream" true
        (a.P.seed = s0 || a.P.seed = s1))
    r.P.attempts

(* ---------- supervised map ---------- *)

let test_map_isolates_crashes () =
  let seen = ref [] in
  let results =
    P.map ~jobs:3 ~watchdog:30.0
      ~on_result:(fun i r -> seen := (i, Result.is_ok r) :: !seen)
      (fun i ->
        if i = 1 then Unix.kill (Unix.getpid ()) Sys.sigsegv;
        if i = 3 then failwith "boom";
        i * 10)
      [ 0; 1; 2; 3 ]
  in
  check Alcotest.int "all items accounted" 4 (Array.length results);
  check Alcotest.bool "item 0 ok" true (results.(0) = Ok 0);
  check Alcotest.bool "item 2 ok" true (results.(2) = Ok 20);
  (match results.(1) with
  | Error m ->
    check Alcotest.bool "crash names the signal" true
      (contains_substring (String.lowercase_ascii m) "segv")
  | Ok _ -> Alcotest.fail "crashed item must be an error");
  (match results.(3) with
  | Error m ->
    check Alcotest.bool "exception message survives" true
      (contains_substring m "boom")
  | Ok _ -> Alcotest.fail "raising item must be an error");
  check Alcotest.int "on_result fired per item" 4 (List.length !seen)

(* ---------- journal ---------- *)

let tmp_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "colib_test_%s_%d.jsonl" name (Unix.getpid ()))

let test_journal_roundtrip () =
  let path = tmp_path "roundtrip" in
  let j = Journal.create path in
  Journal.append j
    [ ("key", "anna|sc|pbs2"); ("time", "1.25"); ("solved", "true") ];
  Journal.append j
    [ ("key", "anna|sc|galena"); ("time", "0.50"); ("solved", "false");
      ("note", "quote \" and \\ back\nslash") ];
  (* reload: both records visible, escaping intact *)
  let j' = Journal.load path in
  check Alcotest.int "two records" 2 (Journal.length j');
  check Alcotest.bool "key indexed" true (Journal.mem j' "anna|sc|pbs2");
  (match Journal.find j' "anna|sc|galena" with
  | Some r ->
    check (Alcotest.option Alcotest.string) "escaped field survives"
      (Some "quote \" and \\ back\nslash")
      (List.assoc_opt "note" r);
    check (Alcotest.option Alcotest.string) "time field" (Some "0.50")
      (List.assoc_opt "time" r)
  | None -> Alcotest.fail "second record must be found");
  Sys.remove path

let test_journal_resume_skips_completed () =
  let path = tmp_path "resume" in
  let j = Journal.create path in
  let cells = [ "c1"; "c2"; "c3"; "c4" ] in
  (* first run completes two cells, then "crashes" *)
  Journal.append j [ ("key", "c1"); ("time", "0.1") ];
  Journal.append j [ ("key", "c2"); ("time", "0.2") ];
  (* resumed run: only the unjournaled cells remain *)
  let j' = Journal.load path in
  let todo = List.filter (fun c -> not (Journal.mem j' c)) cells in
  check (Alcotest.list Alcotest.string) "resume skips completed cells"
    [ "c3"; "c4" ] todo;
  List.iter (fun c -> Journal.append j' [ ("key", c); ("time", "0.3") ]) todo;
  let j'' = Journal.load path in
  check Alcotest.int "all cells journaled" 4 (Journal.length j'');
  Sys.remove path

let test_journal_tolerates_garbage () =
  let path = tmp_path "garbage" in
  let j = Journal.create path in
  Journal.append j [ ("key", "good1") ];
  (* simulate a torn write from a non-atomic writer: trailing partial line *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"key\":\"torn";
  close_out oc;
  let j' = Journal.load path in
  check Alcotest.int "good record kept" 1 (Journal.length j');
  check Alcotest.bool "good key present" true (Journal.mem j' "good1");
  check Alcotest.bool "torn key absent" false (Journal.mem j' "torn");
  (* appending after a tolerant load re-commits a clean file *)
  Journal.append j' [ ("key", "good2") ];
  let j'' = Journal.load path in
  check Alcotest.int "clean after rewrite" 2 (Journal.length j'');
  Sys.remove path

let test_journal_durable_commit () =
  (* both writers go through the full tmp + fsync + rename + dir-fsync
     discipline: after either returns, the journal file is the committed
     version and no staging file lingers (the rename is the commit point) *)
  let path = tmp_path "durable" in
  let tmp = path ^ ".tmp" in
  (* a stale staging file from a writer killed pre-rename must not confuse
     either writer *)
  let oc = open_out tmp in
  output_string oc "{\"key\":\"stale-staging\"}\n";
  close_out oc;
  let j = Journal.create path in
  check Alcotest.bool "create commits the journal file" true
    (Sys.file_exists path);
  check Alcotest.bool "create leaves no staging file" false
    (Sys.file_exists tmp);
  check Alcotest.int "created empty despite stale staging" 0
    (Journal.length (Journal.load path));
  Journal.append j [ ("key", "c1"); ("solved", "true") ];
  check Alcotest.bool "append leaves no staging file" false
    (Sys.file_exists tmp);
  (* what append committed is what a fresh reader sees *)
  let j' = Journal.load path in
  check Alcotest.int "append committed one record" 1 (Journal.length j');
  check Alcotest.bool "record readable after commit" true (Journal.mem j' "c1");
  (* create over an existing journal is a durable truncation *)
  let j2 = Journal.create path in
  check Alcotest.int "create truncates the old journal" 0
    (Journal.length (Journal.load path));
  Journal.append j2 [ ("key", "c2") ];
  let j'' = Journal.load path in
  check Alcotest.int "fresh journal has only the new record" 1
    (Journal.length j'');
  check Alcotest.bool "old record gone" false (Journal.mem j'' "c1");
  check Alcotest.bool "new record present" true (Journal.mem j'' "c2");
  Sys.remove path

(* ---------- zero-timeout deadline edge (regression, satellite) ---------- *)

let test_zero_timeout_portfolio () =
  (* deadline == now must fire immediately in every worker; the race
     degrades honestly instead of spinning *)
  let g = Generators.mycielski 4 in
  let r =
    P.solve ~instance_dependent:false ~timeout:0.0 ~grace:5.0 g ~k:5
      [ P.Engine_strategy Types.Pbs2; P.Dsatur_strategy ]
  in
  check Alcotest.bool "no false optimal" true
    (match r.P.outcome with Flow.Optimal _ -> false | _ -> true)

let () =
  Alcotest.run "portfolio"
    [
      ( "frame",
        [
          Alcotest.test_case "roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "rejects corruption" `Quick
            test_frame_rejects_corruption;
          Alcotest.test_case "reset preserves surplus" `Quick
            test_frame_reset_preserves_surplus;
          Alcotest.test_case "share codec: text in, None on junk" `Quick
            test_share_codec;
        ] );
      ( "race",
        [
          Alcotest.test_case "clean race" `Quick test_portfolio_clean_race;
          Alcotest.test_case "segfault+hang+garbage survived" `Quick
            test_portfolio_survives_process_faults;
          Alcotest.test_case "truncated frame retried, rotated" `Quick
            test_portfolio_truncated_frame_retries_rotated;
          Alcotest.test_case "oom classified" `Quick
            test_portfolio_oom_classified;
          Alcotest.test_case "all faulted, never lies" `Quick
            test_portfolio_all_faulted_never_lies;
          Alcotest.test_case "first certified wins, losers cancelled" `Quick
            test_portfolio_first_certified_wins_cancels_losers;
          Alcotest.test_case "infeasibility proved" `Quick
            test_portfolio_infeasible_certified;
          Alcotest.test_case "rlimit smoke" `Quick
            test_portfolio_mem_limit_smoke;
          Alcotest.test_case "interrupt reaps workers" `Quick
            test_portfolio_interrupt;
          Alcotest.test_case "zero timeout degrades honestly" `Quick
            test_zero_timeout_portfolio;
        ] );
      ( "seeds",
        [
          Alcotest.test_case "deterministic worker seeds" `Quick
            test_worker_seeds_deterministic;
        ] );
      ( "map",
        [ Alcotest.test_case "crash isolation" `Quick test_map_isolates_crashes ] );
      ( "journal",
        [
          Alcotest.test_case "roundtrip" `Quick test_journal_roundtrip;
          Alcotest.test_case "resume skips completed" `Quick
            test_journal_resume_skips_completed;
          Alcotest.test_case "tolerates garbage" `Quick
            test_journal_tolerates_garbage;
          Alcotest.test_case "both writers commit durably" `Quick
            test_journal_durable_commit;
        ] );
    ]
