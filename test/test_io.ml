(* Durable-I/O and fault-injection tests: the scripted plan fires at exact
   op indices and is reproducible from its seed; an injected ENOSPC/EIO at
   any step of the atomic-write protocol leaves the previous file intact
   and no staging debris; the journal survives a disk-full append and heals
   its tail on the next write; the checkpoint emitter absorbs write
   failures, backs off, and re-arms; and the RLIMIT_NOFILE stub really
   lowers the fd ceiling (so the accept-pressure tests mean something). *)

module Fault = Colib_io.Fault
module Durable = Colib_io.Durable
module Chaos = Colib_check.Chaos
module Journal = Colib_portfolio.Journal
module Types = Colib_solver.Types
module Engine = Colib_solver.Engine
module Checkpoint = Colib_solver.Checkpoint

let check = Alcotest.check

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let tmp_dir name =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "colib_io_%s_%d" name (Unix.getpid ()))
  in
  rm_rf d;
  let rec mk p =
    if not (Sys.file_exists p) then begin
      mk (Filename.dirname p);
      try Unix.mkdir p 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  mk d;
  d

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let with_plan plan f =
  Fault.install plan;
  Fun.protect ~finally:Fault.clear f

(* ---------- the fault plan itself ---------- *)

(* write_file_atomic performs exactly open(0), write(1), fsync(2),
   rename(3); a scripted single-index plan must sabotage that op and only
   that op, and the atomic protocol must leave the old file untouched with
   no staging debris regardless of which step died. *)
let test_scripted_indices () =
  let dir = tmp_dir "scripted" in
  let path = Filename.concat dir "data" in
  Durable.write_file_atomic ~path "old";
  List.iter
    (fun (idx, kind, syscall) ->
      let plan = Fault.scripted [ (idx, kind) ] in
      with_plan plan (fun () ->
          match Durable.write_file_atomic ~path "new" with
          | () -> Alcotest.failf "op %d (%s) must fail" idx syscall
          | exception Unix.Unix_error (errno, fn, _) ->
            check Alcotest.string
              (Printf.sprintf "op %d raises from the right syscall" idx)
              syscall fn;
            check Alcotest.bool "errno matches the kind" true
              (errno = Fault.errno_of_kind kind));
      check Alcotest.int "exactly one fault fired" 1 (Fault.injected plan);
      check Alcotest.string "old file intact" "old" (read_file path);
      check Alcotest.bool "no staging debris" false
        (Sys.file_exists (path ^ ".tmp")))
    [
      (0, Fault.Emfile, "open");
      (1, Fault.Enospc, "write");
      (2, Fault.Eio, "fsync");
      (3, Fault.Enospc, "rename");
    ];
  (* with the plan cleared the same write goes through *)
  Durable.write_file_atomic ~path "new";
  check Alcotest.string "clean write succeeds after faults" "new"
    (read_file path);
  rm_rf dir

let test_kind_op_mapping () =
  (* an Enospc rule must not fire on open, nor an Emfile rule on write: the
     kind/op applicability matrix is what keeps specs meaningful *)
  let dir = tmp_dir "mapping" in
  let path = Filename.concat dir "data" in
  let plan = Fault.scripted [ (0, Fault.Enospc) ] in
  with_plan plan (fun () -> Durable.write_file_atomic ~path "x");
  check Alcotest.int "enospc does not fire on open" 0 (Fault.injected plan);
  check Alcotest.string "write landed" "x" (read_file path);
  rm_rf dir

let test_spec_parsing () =
  List.iter
    (fun spec ->
      match Fault.of_spec spec with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "spec %S must parse: %s" spec e)
    [ "enospc@12"; "eio@5-9"; "enospc@1.5-4s"; "eio~0.01@42";
      "enospc@0-3,eio@7"; "EMFILE@2" ];
  List.iter
    (fun spec ->
      match Fault.of_spec spec with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "spec %S must be rejected" spec)
    [ ""; "enospc"; "bogus@1"; "eio~x@42"; "eio~0.5@notaseed";
      "enospc@1.5s" ];
  (* behavioral check of a parsed spec: "eio@0" kills the first write *)
  match Fault.of_spec "eio@0" with
  | Error e -> Alcotest.fail e
  | Ok plan ->
    let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
    Fun.protect ~finally:(fun () -> Unix.close null) @@ fun () ->
    with_plan plan (fun () ->
        (match Durable.write_fully null "boom" with
        | () -> Alcotest.fail "first write must fail under eio@0"
        | exception Unix.Unix_error (Unix.EIO, _, _) -> ());
        Durable.write_fully null "fine")

let test_seeded_reproducible () =
  (* the same seed over the same op sequence fires the same faults — the
     property the randomized soak leans on to replay a failing run *)
  let run seed =
    let plan = Fault.seeded ~seed ~p:0.05 [ Fault.Eio ] in
    let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
    Fun.protect ~finally:(fun () -> Unix.close null) @@ fun () ->
    with_plan plan (fun () ->
        let fired = ref [] in
        for i = 0 to 299 do
          match Durable.write_fully null "x" with
          | () -> ()
          | exception Unix.Unix_error (Unix.EIO, _, _) -> fired := i :: !fired
        done;
        List.rev !fired)
  in
  let a = run 42 and b = run 42 and c = run 43 in
  check Alcotest.bool "seed 42 fired at least once" true (a <> []);
  check (Alcotest.list Alcotest.int) "same seed, same firing pattern" a b;
  check Alcotest.bool "different seed, different pattern" true (a <> c)

let test_window_plan () =
  (* an op-index ENOSPC window: every durable op inside it fails, the first
     op past it succeeds — the shape the degraded-daemon gate uses *)
  let dir = tmp_dir "window" in
  let path = Filename.concat dir "data" in
  Durable.write_file_atomic ~path "v0";
  let plan = Fault.windows [ (Fault.Enospc, 0, 7) ] in
  with_plan plan (fun () ->
      for _ = 1 to 2 do
        match Durable.write_file_atomic ~path "vX" with
        | () -> Alcotest.fail "writes inside the window must fail"
        | exception Unix.Unix_error (Unix.ENOSPC, _, _) -> ()
      done;
      (* ops so far: (open write)(open write) = indices 0..3; push the
         clock past the window with writes to /dev/null *)
      let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
      Fun.protect ~finally:(fun () -> Unix.close null) @@ fun () ->
      let rec drain () =
        if Fault.ops plan <= 7 then begin
          (try Durable.write_fully null "x"
           with Unix.Unix_error (Unix.ENOSPC, _, _) -> ());
          drain ()
        end
      in
      drain ();
      Durable.write_file_atomic ~path "v1");
  check Alcotest.string "write past the window recovers" "v1"
    (read_file path);
  check Alcotest.string "old file was intact throughout" "v1" (read_file path);
  rm_rf dir

let test_reap_tmp () =
  let dir = tmp_dir "reap" in
  let touch name =
    let oc = open_out (Filename.concat dir name) in
    close_out oc
  in
  touch "a.tmp";
  touch "b.tmp";
  touch "keep.dat";
  check Alcotest.int "reaps exactly the staging files" 2
    (Durable.reap_tmp dir);
  check Alcotest.bool "kept the real file" true
    (Sys.file_exists (Filename.concat dir "keep.dat"));
  check Alcotest.bool "tmp gone" false
    (Sys.file_exists (Filename.concat dir "a.tmp"));
  check Alcotest.int "second reap finds nothing" 0 (Durable.reap_tmp dir);
  check Alcotest.int "missing dir is zero, not an exception" 0
    (Durable.reap_tmp (Filename.concat dir "nope"));
  rm_rf dir

(* the age gate protects a live concurrent writer: a freshly staged
   *.tmp (e.g. the supervisor renaming its pid file while a restarted
   daemon sweeps the shared directory) must survive an aged reap *)
let test_reap_tmp_min_age () =
  let dir = tmp_dir "reap-age" in
  let touch name =
    let oc = open_out (Filename.concat dir name) in
    close_out oc
  in
  touch "inflight.tmp";
  check Alcotest.int "fresh staging file survives an aged reap" 0
    (Durable.reap_tmp ~min_age_s:60. dir);
  check Alcotest.bool "still present" true
    (Sys.file_exists (Filename.concat dir "inflight.tmp"));
  let old = Unix.gettimeofday () -. 120. in
  Unix.utimes (Filename.concat dir "inflight.tmp") old old;
  check Alcotest.int "the same file two minutes old is debris" 1
    (Durable.reap_tmp ~min_age_s:60. dir);
  rm_rf dir

(* ---------- journal under disk faults ---------- *)

let test_journal_enospc_append () =
  (* an append that dies with ENOSPC must not corrupt the journal: the
     failure propagates (the daemon's admission gate needs it), the
     already-committed records survive, and the next successful append
     seals any torn tail so a reload sees only whole records *)
  let dir = tmp_dir "journal" in
  let path = Filename.concat dir "j.jsonl" in
  let j = Journal.create ~rotate_bytes:1_000_000 path in
  Journal.append j [ ("key", "a"); ("state", "done") ];
  with_plan (Fault.windows [ (Fault.Enospc, 0, 99) ]) (fun () ->
      match Journal.append j [ ("key", "b"); ("state", "accepted") ] with
      | () -> Alcotest.fail "append under ENOSPC must raise"
      | exception Unix.Unix_error (Unix.ENOSPC, _, _) -> ());
  (* disk recovered: the journal object itself keeps working *)
  Journal.append j [ ("key", "c"); ("state", "done") ];
  let j' = Journal.load path in
  check
    (Alcotest.option Alcotest.string)
    "pre-fault record survives" (Some "done")
    (Option.bind (Journal.find j' "a") (List.assoc_opt "state"));
  check
    (Alcotest.option Alcotest.string)
    "post-recovery record committed" (Some "done")
    (Option.bind (Journal.find j' "c") (List.assoc_opt "state"));
  check Alcotest.bool "failed append left no phantom record" true
    (Journal.find j' "b" = None);
  check Alcotest.int "exactly the two committed records" 2
    (List.length (Journal.records j'));
  rm_rf dir

let test_journal_heals_torn_tail () =
  (* a real torn tail (crash mid-write, no trailing newline): the next
     append must seal it so the reload parses every whole record *)
  let dir = tmp_dir "torn" in
  let path = Filename.concat dir "j.jsonl" in
  let j = Journal.create ~rotate_bytes:1_000_000 path in
  Journal.append j [ ("key", "a"); ("state", "done") ];
  Journal.close j;
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"key\":\"torn";
  close_out oc;
  let j2 = Journal.load path in
  Journal.append j2 [ ("key", "b"); ("state", "done") ];
  let j3 = Journal.load path in
  check Alcotest.int "torn line skipped, whole records kept" 2
    (List.length (Journal.records j3));
  check Alcotest.bool "both real records present" true
    (Journal.find j3 "a" <> None && Journal.find j3 "b" <> None);
  rm_rf dir

(* ---------- checkpoint emitter under disk faults ---------- *)

let test_emitter_absorbs_faults () =
  let dir = tmp_dir "emitter" in
  let path = Filename.concat dir "snap.ckpt" in
  let sv = Engine.capture (Engine.create Types.Pbs2 8) in
  let em =
    Checkpoint.emitter ~label:"io-test" ~k:3 ~digest:"d" ~path ~interval:0.0
      ()
  in
  let snap () = Checkpoint.make em ~engine:sv ~incumbent:None ~proof:[] in
  with_plan (Fault.windows [ (Fault.Enospc, 0, 99) ]) (fun () ->
      (* a checkpoint is an optimization: the failure is absorbed, counted,
         and described — never raised into the solve *)
      Checkpoint.maybe_emit em snap);
  check Alcotest.int "no snapshot written" 0 (Checkpoint.writes em);
  check Alcotest.int "failure counted" 1 (Checkpoint.write_failures em);
  (match Checkpoint.last_error em with
  | Some msg ->
    check Alcotest.bool "failure names the syscall" true
      (contains_substring msg "write" || contains_substring msg "open")
  | None -> Alcotest.fail "failure must be recorded");
  check Alcotest.bool "no staging debris" false
    (Sys.file_exists (path ^ ".tmp"));
  (* the failure back-off pauses emission; once it elapses (base 1s) the
     emitter re-arms on the first clean write *)
  Checkpoint.maybe_emit em snap;
  check Alcotest.int "still backing off" 0 (Checkpoint.writes em);
  Unix.sleepf 1.1;
  Checkpoint.maybe_emit em snap;
  check Alcotest.int "re-armed after the disk recovered" 1
    (Checkpoint.writes em);
  check Alcotest.bool "error cleared by the clean write" true
    (Checkpoint.last_error em = None);
  check Alcotest.bool "snapshot readable" true
    (match Checkpoint.read path with Ok _ -> true | Error _ -> false);
  rm_rf dir

(* ---------- fd-limit stub ---------- *)

let test_rlimit_nofile () =
  (* forked so the lowered limit cannot starve the rest of the suite *)
  match Unix.fork () with
  | 0 ->
    let code =
      if not (Durable.set_rlimit_nofile 16) then 2
      else begin
        let opened = ref [] in
        let rec burn n =
          if n = 0 then 3 (* limit plainly not in force *)
          else
            match Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 with
            | fd ->
              opened := fd :: !opened;
              burn (n - 1)
            | exception Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE), _, _) ->
              0
        in
        let c = burn 64 in
        List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
          !opened;
        c
      end
    in
    Unix._exit code
  | pid -> (
    match snd (Unix.waitpid [] pid) with
    | Unix.WEXITED 0 -> ()
    | Unix.WEXITED 2 -> Alcotest.fail "set_rlimit_nofile reported failure"
    | Unix.WEXITED 3 -> Alcotest.fail "lowered limit did not bite"
    | _ -> Alcotest.fail "rlimit probe died unexpectedly")

(* ---------- chaos facade ---------- *)

let test_chaos_fs_facade () =
  (* the chaos module's fs_* delegates drive the same ambient plan, so a
     chaos test composes fault families without importing Colib_io *)
  let dir = tmp_dir "facade" in
  let path = Filename.concat dir "data" in
  Durable.write_file_atomic ~path "old";
  let plan = Chaos.fs_scripted [ (1, Chaos.Enospc) ] in
  Chaos.fs_install plan;
  Fun.protect ~finally:Chaos.fs_clear (fun () ->
      match Durable.write_file_atomic ~path "new" with
      | () -> Alcotest.fail "facade-installed plan must fire"
      | exception Unix.Unix_error (Unix.ENOSPC, _, _) -> ());
  check Alcotest.int "ops observed through the facade" 2 (Chaos.fs_ops plan);
  check Alcotest.int "fault counted through the facade" 1
    (Chaos.fs_injected plan);
  check Alcotest.string "naming for reports" "enospc"
    (Chaos.fs_fault_name Chaos.Enospc);
  check Alcotest.string "old file intact" "old" (read_file path);
  rm_rf dir

let () =
  Alcotest.run "io"
    [
      ( "fault-plan",
        [
          Alcotest.test_case "scripted indices" `Quick test_scripted_indices;
          Alcotest.test_case "kind/op mapping" `Quick test_kind_op_mapping;
          Alcotest.test_case "spec parsing" `Quick test_spec_parsing;
          Alcotest.test_case "seeded reproducible" `Quick
            test_seeded_reproducible;
          Alcotest.test_case "enospc window" `Quick test_window_plan;
        ] );
      ( "durable",
        [ Alcotest.test_case "reap tmp" `Quick test_reap_tmp;
          Alcotest.test_case "reap tmp age gate" `Quick
            test_reap_tmp_min_age ] );
      ( "journal",
        [
          Alcotest.test_case "enospc append contained" `Quick
            test_journal_enospc_append;
          Alcotest.test_case "torn tail healed" `Quick
            test_journal_heals_torn_tail;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "emitter absorbs faults" `Quick
            test_emitter_absorbs_faults;
        ] );
      ( "rlimit",
        [ Alcotest.test_case "nofile stub bites" `Quick test_rlimit_nofile ] );
      ( "chaos-facade",
        [ Alcotest.test_case "fs delegates" `Quick test_chaos_fs_facade ] );
    ]
