(* Distributed cube-and-conquer tests: the cube cover checker, the leased
   cube queue's crash semantics (expiry, exactly-once results, straggler
   splits), the engine's clause-import admission gate, and the chaos gates
   — SIGKILLed clause-sharing workers, SIGKILLed cube holders, and forged
   share frames must never change a certified verdict. *)

module Generators = Colib_graph.Generators
module Graph = Colib_graph.Graph
module Types = Colib_solver.Types
module Engine = Colib_solver.Engine
module Checkpoint = Colib_solver.Checkpoint
module Lit = Colib_sat.Lit
module Proof = Colib_sat.Proof
module Formula = Colib_sat.Formula
module Encoding = Colib_encode.Encoding
module Chaos = Colib_check.Chaos
module Journal = Colib_portfolio.Journal
module P = Colib_portfolio.Portfolio
module Flow = Colib_core.Flow
module Cube = Colib_distrib.Cube
module Lease = Colib_distrib.Lease
module Conquer = Colib_distrib.Conquer

let check = Alcotest.check

(* myciel3: chi = 4, triangle-free, 11 vertices — small enough that every
   cube solves in milliseconds, hard enough that k=3 needs real search *)
let myciel3 () = Generators.mycielski 3

let tmp_dir name =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "colib-distrib-%s-%d" name (Unix.getpid ()))
  in
  let rec rm p =
    if Sys.file_exists p then
      if Sys.is_directory p then begin
        Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
        Unix.rmdir p
      end
      else Sys.remove p
  in
  rm d;
  Unix.mkdir d 0o755;
  d

(* ---------- cube splitting and cover checking ---------- *)

let test_cube_split_shape () =
  let g = myciel3 () in
  let cubes = Cube.split g ~k:3 ~depth:2 in
  check Alcotest.int "k^depth cubes" 9 (List.length cubes);
  List.iter
    (fun c -> check Alcotest.int "depth assumptions each" 2 (List.length c))
    cubes;
  (* all cubes branch the same two vertices, in the same order *)
  let vs c = List.map fst c in
  let first = vs (List.hd cubes) in
  List.iter
    (fun c -> check (Alcotest.list Alcotest.int) "same split vertices" first (vs c))
    cubes

let test_cube_cover_positive () =
  let g = myciel3 () in
  let cubes = Cube.split g ~k:3 ~depth:2 in
  (match Cube.check_cover ~k:3 cubes with
  | Ok vs -> check Alcotest.int "two split vertices" 2 (List.length vs)
  | Error m -> Alcotest.fail ("cover must verify: " ^ m));
  (* a refined (uneven-depth) tree still covers *)
  let uneven =
    match cubes with
    | c0 :: rest -> (
      match Cube.refine g ~k:3 c0 with
      | Some children -> children @ rest
      | None -> Alcotest.fail "refine must find a vertex")
    | [] -> assert false
  in
  match Cube.check_cover ~k:3 uneven with
  | Ok _ -> ()
  | Error m -> Alcotest.fail ("refined cover must verify: " ^ m)

let test_cube_cover_negative () =
  let g = myciel3 () in
  let cubes = Cube.split g ~k:3 ~depth:2 in
  (* dropping any cube leaves a hole the checker must see *)
  (match Cube.check_cover ~k:3 (List.tl cubes) with
  | Ok _ -> Alcotest.fail "missing cube must fail the cover"
  | Error _ -> ());
  (* a cube with an out-of-range color is structurally invalid *)
  let forged = [ (0, 0); (0, 1); (0, 5) ] |> List.map (fun vc -> [ vc ]) in
  (match Cube.check_cover ~k:3 forged with
  | Ok _ -> Alcotest.fail "out-of-range color must fail"
  | Error _ -> ());
  (* duplicated colors on a branch do not compensate for a missing one *)
  let dup = [ [ (0, 0) ]; [ (0, 1) ]; [ (0, 1) ] ] in
  match Cube.check_cover ~k:3 dup with
  | Ok _ -> Alcotest.fail "duplicate color branch must fail"
  | Error _ -> ()

(* ---------- the lease queue ---------- *)

let mk_lease ?journal ?(lease_secs = 30.) cubes =
  Lease.create ?journal ~digest:"0123456789abcdef" ~lease_secs cubes

let test_lease_exactly_once () =
  let q = mk_lease [ [ (0, 0) ]; [ (0, 1) ] ] in
  let e1 =
    match Lease.lease q ~worker:1 with
    | Some e -> e
    | None -> Alcotest.fail "first lease"
  in
  check Alcotest.bool "first verdict accepted" true
    (Lease.complete q e1 Lease.V_unsat);
  check Alcotest.bool "duplicate verdict dropped" false
    (Lease.complete q e1 Lease.V_unsat);
  check Alcotest.int "one duplicate counted" 1 (Lease.dup_results q);
  check Alcotest.bool "queue not done yet" false (Lease.all_done q)

let test_lease_expiry_releases_cube () =
  (* a lease whose holder goes silent past the deadline returns to the
     pool; the zombie's later verdict is absorbed as a duplicate only if
     someone else already settled it *)
  let q = mk_lease ~lease_secs:0.05 [ [ (0, 0) ] ] in
  let e1 =
    match Lease.lease q ~worker:1 with
    | Some e -> e
    | None -> Alcotest.fail "lease"
  in
  check Alcotest.bool "nothing pending while leased" true
    (Lease.lease q ~worker:2 = None);
  Unix.sleepf 0.08;
  (match Lease.lease q ~worker:2 with
  | Some e2 ->
    check Alcotest.int "same cube re-leased" e1.Lease.id e2.Lease.id;
    check Alcotest.int "second attempt recorded" 2 e2.Lease.attempts
  | None -> Alcotest.fail "expired lease must be re-grantable");
  check Alcotest.int "expiry counted" 1 (Lease.expiries q);
  (* the re-lease holder settles it; the original holder is now a zombie *)
  check Alcotest.bool "new holder settles" true
    (Lease.complete q e1 Lease.V_unsat);
  check Alcotest.bool "zombie absorbed" false
    (Lease.complete q e1 Lease.V_unsat);
  check Alcotest.bool "all done" true (Lease.all_done q)

let test_lease_release_on_death () =
  let q = mk_lease [ [ (0, 0) ] ] in
  (match Lease.lease q ~worker:7 with
  | Some _ -> ()
  | None -> Alcotest.fail "lease");
  Lease.release q ~worker:7;
  check Alcotest.int "release counted" 1 (Lease.releases q);
  match Lease.lease q ~worker:8 with
  | Some _ -> ()
  | None -> Alcotest.fail "released cube must be re-grantable"

let test_lease_split_drops_zombie_results () =
  let g = myciel3 () in
  let q = mk_lease ~lease_secs:0.01 (Cube.split g ~k:3 ~depth:1) in
  let e =
    match Lease.lease q ~worker:0 with
    | Some e -> e
    | None -> Alcotest.fail "lease"
  in
  let children =
    match Cube.refine g ~k:3 e.Lease.cube with
    | Some cs -> cs
    | None -> Alcotest.fail "refine"
  in
  let kids = Lease.split q e children in
  check Alcotest.int "k children queued" 3 (List.length kids);
  check Alcotest.int "split counted" 1 (Lease.splits q);
  check Alcotest.bool "parent id gone from the queue" true
    (Lease.find q e.Lease.id = None);
  List.iter
    (fun kid -> check Alcotest.int "child depth bumped" 1 kid.Lease.depth)
    kids

let test_lease_journal_audit () =
  let dir = tmp_dir "lease-journal" in
  let path = Filename.concat dir "lease.jsonl" in
  let j = Journal.create path in
  let q = mk_lease ~journal:j [ [ (0, 0) ] ] in
  let e =
    match Lease.lease q ~worker:3 with
    | Some e -> e
    | None -> Alcotest.fail "lease"
  in
  ignore (Lease.complete q e Lease.V_unsat);
  let events =
    List.filter_map (fun r -> List.assoc_opt "event" r) (Journal.records j)
  in
  check
    (Alcotest.list Alcotest.string)
    "full audit trail"
    [ "queued"; "leased"; "done" ]
    events;
  (* keys carry the formula digest so fleets can share a journal *)
  match Journal.records j with
  | r :: _ ->
    check Alcotest.bool "key carries digest prefix" true
      (match List.assoc_opt "key" r with
      | Some k -> String.length k > 5 && String.sub k 0 5 = "cube-"
      | None -> false)
  | [] -> Alcotest.fail "journal must have records"

(* ---------- the engine's clause-import admission gate ---------- *)

let test_import_gate () =
  let g = myciel3 () in
  let enc = Encoding.encode g ~k:4 in
  let nvars = Formula.num_vars enc.Encoding.formula in
  let eng = Engine.create Types.Pbs2 nvars in
  Engine.add_formula eng enc.Encoding.formula;
  (* the at-least-one clause of a vertex is entailed by its PB equality
     row: assuming all four negations propagates into a conflict, so the
     gate re-derives and admits it *)
  let alo = List.init 4 (fun c -> Lit.pos enc.Encoding.x.(0).(c)) in
  (match Engine.import_clause eng alo with
  | Engine.Imported -> ()
  | Engine.Quarantined m | Engine.Import_rejected m ->
    Alcotest.fail ("entailed clause must import: " ^ m));
  check Alcotest.int "admission counted" 1 (Engine.stats eng).Types.shared_in;
  (* "vertex 0 is color 0" is consistent but NOT entailed: quarantined *)
  (match Engine.import_clause eng [ Lit.pos enc.Encoding.x.(0).(0) ] with
  | Engine.Quarantined _ -> ()
  | Engine.Imported -> Alcotest.fail "non-entailed clause must not import"
  | Engine.Import_rejected m -> Alcotest.fail ("should quarantine, not reject: " ^ m));
  check Alcotest.int "quarantine counted" 1
    (Engine.stats eng).Types.quarantined;
  (* malformed candidates never reach the RUP test *)
  (match Engine.import_clause eng [ Lit.pos (nvars + 3) ] with
  | Engine.Import_rejected _ -> ()
  | _ -> Alcotest.fail "out-of-range variable must be rejected");
  (match
     Engine.import_clause eng
       [ Lit.pos enc.Encoding.x.(0).(0); Lit.neg enc.Encoding.x.(0).(0) ]
   with
  | Engine.Import_rejected _ -> ()
  | _ -> Alcotest.fail "tautology must be rejected");
  let over_long = List.init (Engine.share_max_len + 1) (fun v -> Lit.pos v) in
  match Engine.import_clause eng over_long with
  | Engine.Import_rejected _ -> ()
  | _ -> Alcotest.fail "over-long clause must be rejected"

(* ---------- tree-proof replay ---------- *)

let unsat_tree g ~k =
  let d = Conquer.decide ~jobs:2 ~timeout:60.0 g ~k () in
  match d.Conquer.verdict with
  | Conquer.Not_colorable -> d
  | Conquer.Colorable _ -> Alcotest.fail "instance must be uncolorable"
  | Conquer.Undecided m -> Alcotest.fail ("must decide: " ^ m)

let test_replay_tree_rejects_holes_and_forgeries () =
  let g = myciel3 () in
  let d = unsat_tree g ~k:3 in
  (match Conquer.replay_tree g ~k:3 d.Conquer.proofs with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("genuine tree must replay: " ^ m));
  (* a missing leaf is a hole in the cover *)
  (match Conquer.replay_tree g ~k:3 (List.tl d.Conquer.proofs) with
  | Ok () -> Alcotest.fail "missing leaf must fail"
  | Error _ -> ());
  (* gutting the leaf traces breaks the derivation: some cube of a
     depth-2 split needs real conflict analysis, so an empty trace (or a
     bare Contradiction) cannot refute it by unit propagation alone *)
  let gutted = List.map (fun (c, _) -> (c, [])) d.Conquer.proofs in
  match Conquer.replay_tree g ~k:3 gutted with
  | Ok () -> Alcotest.fail "forged leaf trace must fail"
  | Error _ -> ()

(* ---------- end-to-end decisions ---------- *)

let test_decide_colorable () =
  let g = myciel3 () in
  let d = Conquer.decide ~jobs:2 ~timeout:60.0 g ~k:4 () in
  match d.Conquer.verdict with
  | Conquer.Colorable col ->
    check Alcotest.bool "proper" true (Graph.is_proper_coloring g col);
    check Alcotest.bool "within k" true (Graph.count_colors col <= 4)
  | _ -> Alcotest.fail "myciel3 is 4-colorable"

let test_decide_uncolorable_certified () =
  let g = myciel3 () in
  let d = unsat_tree g ~k:3 in
  check Alcotest.bool "proofs cover the final cubes" true
    (d.Conquer.proofs <> []);
  check Alcotest.int "no forged answers accepted" 0 d.Conquer.replay_failures

let test_chi_end_to_end () =
  let g = myciel3 () in
  let r = Conquer.chi ~jobs:2 ~timeout:120.0 g () in
  check (Alcotest.option Alcotest.int) "chi certified" (Some 4) r.Conquer.chi;
  check (Alcotest.option Alcotest.int) "3 proven infeasible" (Some 3)
    r.Conquer.certified_unsat_k;
  check Alcotest.bool "best is proper" true
    (Graph.is_proper_coloring g r.Conquer.best)

(* ---------- chaos gates ---------- *)

(* gate (b): SIGKILL a cube-holding worker mid-solve. Its lease is
   released (observed death) or expires; the cube is re-leased and the
   verdict — with its replayed tree proof — matches the clean run. *)
let test_chaos_sigkill_cube_holder () =
  let g = myciel3 () in
  let dir = tmp_dir "cube-ckpt" in
  let chaos =
    Chaos.process_scripted [ (0, Chaos.Kill_mid_solve 0.0) ]
  in
  let checkpoint =
    Checkpoint.config ~interval:0.0 ~resume:true ~dir ()
  in
  let d = Conquer.decide ~jobs:2 ~timeout:120.0 ~chaos ~checkpoint g ~k:3 () in
  (match d.Conquer.verdict with
  | Conquer.Not_colorable -> ()
  | Conquer.Colorable _ -> Alcotest.fail "killed worker must not flip SAT"
  | Conquer.Undecided m -> Alcotest.fail ("must still decide: " ^ m));
  check Alcotest.bool "the death was observed and the cube re-leased" true
    (d.Conquer.releases + d.Conquer.expiries >= 1);
  match Conquer.replay_tree g ~k:3 d.Conquer.proofs with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("tree proof must replay after the kill: " ^ m)

(* gate (a): a clause-sharing portfolio worker is SIGKILLed and another
   emits forged share frames; the race must still settle on the same
   certified chromatic number as a clean run. *)
let test_chaos_forged_share_and_kill_portfolio () =
  let g = myciel3 () in
  let strategies =
    [ P.Engine_strategy Types.Pbs2; P.Engine_strategy Types.Galena ]
  in
  let clean =
    P.solve ~instance_dependent:false ~timeout:60.0 ~seed:11 g ~k:4 strategies
  in
  let chaos =
    Chaos.process_scripted
      [ (0, Chaos.Forged_share); (1, Chaos.Kill_mid_solve 0.0) ]
  in
  let r =
    P.solve ~instance_dependent:false ~timeout:60.0 ~seed:11 ~chaos g ~k:4
      strategies
  in
  let colors = function
    | Flow.Optimal c -> Some c
    | _ -> None
  in
  check (Alcotest.option Alcotest.int) "clean run is optimal 4" (Some 4)
    (colors clean.P.outcome);
  check (Alcotest.option Alcotest.int) "chaos run settles identically"
    (colors clean.P.outcome) (colors r.P.outcome);
  match r.P.certificate with
  | Some (Ok ()) -> ()
  | _ -> Alcotest.fail "chaos run must deliver a certified coloring"

(* forged share frames alone, inside the cube race: quarantine absorbs
   them without changing the certified verdict *)
let test_chaos_forged_share_cube_race () =
  let g = myciel3 () in
  let chaos = Chaos.process_scripted [ (0, Chaos.Forged_share) ] in
  let d = Conquer.decide ~jobs:2 ~timeout:120.0 ~chaos g ~k:3 () in
  (match d.Conquer.verdict with
  | Conquer.Not_colorable -> ()
  | Conquer.Colorable _ -> Alcotest.fail "forged shares must not flip SAT"
  | Conquer.Undecided m -> Alcotest.fail ("must still decide: " ^ m));
  match Conquer.replay_tree g ~k:3 d.Conquer.proofs with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("tree proof must replay: " ^ m)

let () =
  Alcotest.run "distrib"
    [
      ( "cube",
        [
          Alcotest.test_case "split shape" `Quick test_cube_split_shape;
          Alcotest.test_case "cover accepts genuine trees" `Quick
            test_cube_cover_positive;
          Alcotest.test_case "cover rejects holes and forgeries" `Quick
            test_cube_cover_negative;
        ] );
      ( "lease",
        [
          Alcotest.test_case "exactly-once results" `Quick
            test_lease_exactly_once;
          Alcotest.test_case "expiry re-leases the cube" `Quick
            test_lease_expiry_releases_cube;
          Alcotest.test_case "release on observed death" `Quick
            test_lease_release_on_death;
          Alcotest.test_case "split retires the parent id" `Quick
            test_lease_split_drops_zombie_results;
          Alcotest.test_case "journal audit trail" `Quick
            test_lease_journal_audit;
        ] );
      ( "import-gate",
        [ Alcotest.test_case "admit/quarantine/reject" `Quick test_import_gate ]
      );
      ( "tree-proof",
        [
          Alcotest.test_case "rejects holes and forged leaves" `Quick
            test_replay_tree_rejects_holes_and_forgeries;
        ] );
      ( "decide",
        [
          Alcotest.test_case "colorable, parent-certified" `Quick
            test_decide_colorable;
          Alcotest.test_case "uncolorable, tree-certified" `Quick
            test_decide_uncolorable_certified;
          Alcotest.test_case "chi end-to-end" `Quick test_chi_end_to_end;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "SIGKILLed cube holder, same verdict" `Quick
            test_chaos_sigkill_cube_holder;
          Alcotest.test_case "forged shares + SIGKILL in the portfolio"
            `Quick test_chaos_forged_share_and_kill_portfolio;
          Alcotest.test_case "forged shares in the cube race" `Quick
            test_chaos_forged_share_cube_race;
        ] );
    ]
