(* Dynamic recoloring — incremental sessions over a changing graph
   (DESIGN.md §18).

   A wireless network assigns frequencies (colors) to access points;
   links (edges) appear as interference is measured and disappear as
   antennas are re-aimed. Re-solving from scratch after every change
   throws away everything the solver learned, so instead ONE session
   holds the solver across the whole edit stream: instance-dependent
   clauses are switched per query through assumptions, the paper's
   instance-independent SBPs are asserted once, learned clauses survive
   every edit, and each answer is certified with the refutations
   proof-logged.

   Run with:  dune exec examples/dynamic_recoloring.exe *)

module Session = Colib_session.Session

let apply sess ed =
  match Session.apply sess ed with
  | Ok () -> ()
  | Error e -> failwith ("edit rejected: " ^ e)

let query sess what =
  match Session.query sess with
  | Ok a ->
    assert a.Session.certified;
    Printf.printf "%-34s chi = %d  (%s, %d conflicts, %.3fs)\n" what
      a.Session.chi
      (if a.Session.incremental then "incremental" else "cold")
      a.Session.conflicts a.Session.time;
    a.Session.chi
  | Error e -> failwith ("query failed: " ^ e)

let () =
  (* capacity is declared up front: the variable universe never grows *)
  let sess =
    Session.create
      { Session.max_vertices = 8; max_colors = 8; max_edges = 28 }
  in

  (* five access points come online, pairwise interference measured *)
  for _ = 1 to 5 do
    apply sess Session.Add_vertex
  done;
  List.iter
    (fun (u, v) -> apply sess (Session.Add_edge (u, v)))
    [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0) ];
  let chi1 = query sess "5-AP ring:" in
  assert (chi1 = 3);

  (* a new link closes an odd cycle into a denser core *)
  List.iter
    (fun (u, v) -> apply sess (Session.Add_edge (u, v)))
    [ (0, 2); (0, 3) ];
  let chi2 = query sess "after two new links:" in
  assert (chi2 = 3);

  (* a sixth AP arrives, interfering with everything: forces a 4th color *)
  apply sess Session.Add_vertex;
  for v = 0 to 4 do
    apply sess (Session.Add_edge (v, 5))
  done;
  let chi3 = query sess "6th AP interferes with all:" in
  assert (chi3 = 4);

  (* re-aiming the antenna removes links — assumption flips, no
     un-elimination, and re-adding later would reuse the same clauses *)
  List.iter
    (fun (u, v) -> apply sess (Session.Remove_edge (u, v)))
    [ (1, 5); (3, 5); (0, 2); (0, 3) ];
  let chi4 = query sess "after re-aiming:" in
  assert (chi4 = 3);

  (* the whole session trace — every learned clause and failed core
     since creation — replays through the independent RUP checker *)
  (match Session.check_proof sess with
  | Ok steps -> Printf.printf "\nproof: %d steps replayed independently\n" steps
  | Error e -> failwith ("proof replay failed: " ^ e));
  Printf.printf "%d edits, final graph: %d vertices, %d edges\n"
    (Session.edits sess)
    (Session.num_vertices sess)
    (Session.num_edges sess)
