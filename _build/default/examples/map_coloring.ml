(* Map coloring — the classic AI constraint-satisfaction example the paper's
   introduction cites (planning, map coloring, scheduling).

   Color the map of the western United States so no two neighboring states
   share a color. The four color theorem guarantees 4 colors suffice for any
   planar map; the exact solver proves how many this particular map needs,
   and the symmetry machinery shows what the "colors are interchangeable"
   symmetry looks like on a real CSP.

   Run with:  dune exec examples/map_coloring.exe *)

module Graph = Colib_graph.Graph
module Exact = Colib_core.Exact_coloring
module Flow = Colib_core.Flow
module Sbp = Colib_encode.Sbp

let states =
  [| "WA"; "OR"; "CA"; "NV"; "ID"; "MT"; "WY"; "UT"; "CO"; "AZ"; "NM" |]

let borders =
  [
    ("WA", "OR"); ("WA", "ID");
    ("OR", "CA"); ("OR", "NV"); ("OR", "ID");
    ("CA", "NV"); ("CA", "AZ");
    ("NV", "ID"); ("NV", "UT"); ("NV", "AZ");
    ("ID", "MT"); ("ID", "WY"); ("ID", "UT");
    ("MT", "WY");
    ("WY", "UT"); ("WY", "CO");
    ("UT", "CO"); ("UT", "AZ");
    ("CO", "NM");
    ("AZ", "NM");
  ]

let index name =
  let rec go i = if states.(i) = name then i else go (i + 1) in
  go 0

let () =
  let n = Array.length states in
  let b = Graph.builder n in
  List.iter (fun (a, c) -> Graph.add_edge b (index a) (index c)) borders;
  let g = Graph.freeze b in
  Printf.printf "%d states, %d borders\n\n" n (Graph.num_edges g);

  let answer = Exact.chromatic_number ~timeout:30.0 g in
  (match answer.Exact.chromatic with
  | Some chi -> Printf.printf "colors needed (proven): %d\n\n" chi
  | None ->
    Printf.printf "colors needed: between %d and %d\n\n" answer.Exact.lower
      answer.Exact.upper);

  let palette = [| "red"; "green"; "blue"; "yellow" |] in
  Array.iteri
    (fun i name ->
      let c = answer.Exact.coloring.(i) in
      Printf.printf "  %s -> %s\n" name
        (if c < Array.length palette then palette.(c) else string_of_int c))
    states;

  (* the CSP symmetry story on this instance: with K=4, the reduction has
     exactly the 4! color permutations (the map itself is asymmetric) *)
  let si, _ = Flow.symmetry_stats g ~k:4 ~sbp:Sbp.No_sbp in
  Printf.printf
    "\nsymmetries of the 4-coloring reduction: %s (4! = 24 color\n\
     permutations x map automorphisms); after NU ordering: %s\n"
    (Colib_symmetry.Auto.order_string si.Flow.order_log10)
    (let si_nu, _ = Flow.symmetry_stats g ~k:4 ~sbp:Sbp.Nu in
     Colib_symmetry.Auto.order_string si_nu.Flow.order_log10);

  (* three colors are not enough: the decision version gives the proof *)
  match Exact.k_colorable ~timeout:10.0 g ~k:3 with
  | `No -> Printf.printf "\n3 colors proven insufficient (NV-UT-ID-WY-CO-AZ region)\n"
  | `Yes _ -> Printf.printf "\n3 colors suffice!?\n"
  | `Unknown -> Printf.printf "\n3-colorability undecided\n"
