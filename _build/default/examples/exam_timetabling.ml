(* Exam timetabling (the time-tabling/scheduling application of Section 2).

   Two exams conflict when some student takes both; conflicting exams cannot
   share a time slot. A proper coloring with K colors is a K-slot timetable,
   and the chromatic number is the minimum session count.

   Run with:  dune exec examples/exam_timetabling.exe *)

module Graph = Colib_graph.Graph
module Exact = Colib_core.Exact_coloring

let courses =
  [| "Algebra"; "Biology"; "Chemistry"; "Databases"; "English"; "French";
     "Geometry"; "History" |]

(* student enrollments *)
let students =
  [
    [ 0; 2; 6 ];       (* Algebra, Chemistry, Geometry *)
    [ 1; 2 ];          (* Biology, Chemistry *)
    [ 3; 4 ];          (* Databases, English *)
    [ 4; 5; 7 ];       (* English, French, History *)
    [ 0; 6 ];          (* Algebra, Geometry *)
    [ 2; 3 ];          (* Chemistry, Databases *)
    [ 5; 7 ];          (* French, History *)
    [ 1; 4 ];          (* Biology, English *)
    [ 0; 3 ];          (* Algebra, Databases *)
  ]

let () =
  let n = Array.length courses in
  let b = Graph.builder n in
  List.iter
    (fun enrolled ->
      List.iter
        (fun c1 ->
          List.iter
            (fun c2 -> if c1 < c2 then Graph.add_edge b c1 c2)
            enrolled)
        enrolled)
    students;
  let g = Graph.freeze b in
  Printf.printf "%d exams, %d pairwise conflicts from %d students\n\n"
    (Graph.num_vertices g) (Graph.num_edges g) (List.length students);

  let answer = Exact.chromatic_number ~timeout:30.0 g in
  let slots =
    match answer.Exact.chromatic with
    | Some chi ->
      Printf.printf "minimum number of exam slots (proven): %d\n\n" chi;
      chi
    | None ->
      Printf.printf "slots needed: between %d and %d\n\n" answer.Exact.lower
        answer.Exact.upper;
      answer.Exact.upper
  in
  for slot = 0 to slots - 1 do
    let in_slot =
      List.filteri (fun c _ -> answer.Exact.coloring.(c) = slot)
        (Array.to_list courses)
    in
    Printf.printf "  slot %d: %s\n" (slot + 1) (String.concat ", " in_slot)
  done;

  (* verify no student has two exams in one slot *)
  let ok =
    List.for_all
      (fun enrolled ->
        let slots_used = List.map (fun c -> answer.Exact.coloring.(c)) enrolled in
        List.length (List.sort_uniq Int.compare slots_used)
        = List.length enrolled)
      students
  in
  Printf.printf "\ntimetable %s\n"
    (if ok then "verified: no student clash" else "INVALID")
