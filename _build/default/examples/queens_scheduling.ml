(* The n-queens coloring family from the paper's appendix, as a scheduling
   story: coloring the queens graph with n colors partitions the board into
   n disjoint non-attacking queen placements (n rounds of a tournament where
   every cell's piece must be scheduled, with no two attacking pieces in the
   same round).

   This example reproduces the appendix's observation at small scale: the
   instance is hopeless for a plain reduction at a small budget and easy once
   symmetries are broken — and shows the symmetry numbers behind that.

   Run with:  dune exec examples/queens_scheduling.exe *)

module Graph = Colib_graph.Graph
module Generators = Colib_graph.Generators
module Flow = Colib_core.Flow
module Sbp = Colib_encode.Sbp
module Auto = Colib_symmetry.Auto

let n = 6

let () =
  let g = Generators.queens ~rows:n ~cols:n in
  Printf.printf "queens %dx%d graph: %d vertices, %d edges\n\n" n n
    (Graph.num_vertices g) (Graph.num_edges g);

  (* symmetry landscape of the reduction at K = n+1 *)
  let k = n + 1 in
  List.iter
    (fun sbp ->
      let si, st = Flow.symmetry_stats g ~k ~sbp in
      Printf.printf "  %-8s: %12s symmetries, %3d generators, %6d clauses\n"
        (Sbp.name sbp)
        (Auto.order_string si.Flow.order_log10)
        si.Flow.num_generators st.Colib_sat.Formula.cnf_clauses)
    Sbp.all;

  (* solve with and without symmetry breaking at the same small budget *)
  Printf.printf "\nsolving at K=%d with a 5-second budget:\n" k;
  List.iter
    (fun (label, sbp, isd) ->
      let cfg =
        Flow.config ~sbp ~instance_dependent:isd ~timeout:5.0 ~k ()
      in
      let r = Flow.run g cfg in
      Printf.printf "  %-28s -> %s (%.2fs, %d conflicts)\n" label
        (match r.Flow.outcome with
        | Flow.Optimal c -> Printf.sprintf "optimal: %d rounds" c
        | Flow.Best c -> Printf.sprintf "found %d rounds, unproven" c
        | Flow.No_coloring -> "infeasible"
        | Flow.Timed_out -> "timeout")
        r.Flow.solve_time r.Flow.solver.Colib_solver.Types.conflicts)
    [
      ("plain reduction", Sbp.No_sbp, false);
      ("NU predicates", Sbp.Nu, false);
      ("NU+SC predicates", Sbp.Nu_sc, false);
      ("SC + instance-dependent", Sbp.Sc, true);
    ];

  (* print one optimal schedule *)
  let cfg = Flow.config ~sbp:Sbp.Sc ~instance_dependent:true ~timeout:30.0 ~k () in
  let r = Flow.run g cfg in
  match r.Flow.coloring with
  | Some coloring ->
    Printf.printf "\nboard (cell -> round):\n";
    for row = 0 to n - 1 do
      Printf.printf "  ";
      for col = 0 to n - 1 do
        Printf.printf "%d " coloring.((row * n) + col)
      done;
      print_newline ()
    done
  | None -> Printf.printf "\nno schedule found\n"
