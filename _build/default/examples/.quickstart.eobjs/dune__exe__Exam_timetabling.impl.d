examples/exam_timetabling.ml: Array Colib_core Colib_graph Int List Printf String
