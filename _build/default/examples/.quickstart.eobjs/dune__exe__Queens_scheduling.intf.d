examples/queens_scheduling.mli:
