examples/register_allocation.ml: Array Colib_core Colib_encode Colib_graph List Printf
