examples/quickstart.ml: Array Colib_core Colib_graph List Printf
