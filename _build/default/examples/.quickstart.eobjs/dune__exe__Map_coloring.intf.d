examples/map_coloring.mli:
