examples/frequency_assignment.ml: Array Colib_core Colib_encode Colib_graph Colib_symmetry List Printf String
