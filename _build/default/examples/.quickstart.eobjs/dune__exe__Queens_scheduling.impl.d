examples/queens_scheduling.ml: Array Colib_core Colib_encode Colib_graph Colib_sat Colib_solver Colib_symmetry List Printf
