examples/exam_timetabling.mli:
