examples/quickstart.mli:
