examples/map_coloring.ml: Array Colib_core Colib_encode Colib_graph Colib_symmetry List Printf
