(* Register allocation via exact graph coloring (Chaitin et al. 1981, and the
   motivating application of the paper's introduction).

   Variables of a straight-line program have live ranges; two variables
   interfere when their ranges overlap, and interfering variables cannot
   share a register. Building the interference graph and coloring it with K
   colors is exactly assigning K registers. Embedded processors have few
   registers, so exact answers matter: a heuristic that uses one extra color
   forces a spill to memory.

   Run with:  dune exec examples/register_allocation.exe *)

module Graph = Colib_graph.Graph
module Generators = Colib_graph.Generators
module Exact = Colib_core.Exact_coloring
module Flow = Colib_core.Flow
module Sbp = Colib_encode.Sbp

(* A tiny three-address-code program; each instruction defines a temp. *)
let program =
  [|
    "t0 = load a";       (* t0 live 0..4 *)
    "t1 = load b";       (* t1 live 1..3 *)
    "t2 = t0 + t1";      (* t2 live 2..5 *)
    "t3 = t1 * 2";       (* t3 live 3..6 *)
    "t4 = t0 - t2";      (* t4 live 4..6 *)
    "t5 = t2 + 1";       (* t5 live 5..7 *)
    "t6 = t3 * t4";      (* t6 live 6..7 *)
    "t7 = t5 + t6";      (* t7 live 7..8 *)
  |]

(* live ranges (def position, last use) per temp, half-open intervals *)
let live_ranges =
  [ (0, 5); (1, 4); (2, 6); (3, 7); (4, 7); (5, 8); (6, 8); (7, 9) ]

let () =
  Printf.printf "program:\n";
  Array.iteri (fun i line -> Printf.printf "  %d: %s\n" i line) program;

  let g = Generators.interval_conflicts live_ranges in
  Printf.printf "\ninterference graph: %d temps, %d conflicts\n"
    (Graph.num_vertices g) (Graph.num_edges g);

  (* interval graphs are perfect: chi = max clique = max live temps at any
     point; the exact solver proves it *)
  let answer = Exact.chromatic_number ~timeout:30.0 g in
  let registers =
    match answer.Exact.chromatic with
    | Some chi -> chi
    | None -> answer.Exact.upper
  in
  Printf.printf "registers needed (exact): %d\n\n" registers;
  Printf.printf "allocation:\n";
  List.iteri
    (fun t (s, e) ->
      Printf.printf "  t%-2d live [%d, %d) -> r%d\n" t s e
        answer.Exact.coloring.(t))
    live_ranges;

  (* Can the program run on a 3-register machine? The decision version
     answers directly. *)
  (match Exact.k_colorable ~timeout:10.0 g ~k:3 with
  | `Yes _ -> Printf.printf "\nfits in 3 registers\n"
  | `No ->
    Printf.printf
      "\ndoes NOT fit in 3 registers: at least one temp must spill\n"
  | `Unknown -> Printf.printf "\nundecided\n");

  (* A bigger synthetic interference graph (the mulsol/zeroin shape from the
     DIMACS suite), solved through the full SBP flow. *)
  let big = Generators.split_register ~n:80 ~m:600 ~clique:12 ~seed:11 in
  let cfg =
    Flow.config ~sbp:Sbp.Nu_sc ~instance_dependent:false ~timeout:30.0 ~k:14 ()
  in
  let r = Flow.run big cfg in
  Printf.printf
    "\nsynthetic interference graph (80 temps, 600 conflicts): %s\n"
    (match r.Flow.outcome with
    | Flow.Optimal c -> Printf.sprintf "needs exactly %d registers" c
    | Flow.Best c -> Printf.sprintf "needs at most %d registers" c
    | Flow.No_coloring -> "needs more than 14 registers"
    | Flow.Timed_out -> "undecided in budget")
