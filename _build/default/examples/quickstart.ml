(* Quickstart: build a graph, compute its chromatic number exactly, and
   inspect the coloring.

   Run with:  dune exec examples/quickstart.exe *)

module Graph = Colib_graph.Graph
module Generators = Colib_graph.Generators
module Exact = Colib_core.Exact_coloring

let () =
  (* the Petersen graph: 10 vertices, 15 edges, chromatic number 3 *)
  let g = Generators.petersen () in
  Printf.printf "Petersen graph: %d vertices, %d edges\n"
    (Graph.num_vertices g) (Graph.num_edges g);

  (* one call: bounds + 0-1 ILP flow with symmetry breaking *)
  let answer = Exact.chromatic_number ~timeout:30.0 g in
  (match answer.Exact.chromatic with
  | Some chi -> Printf.printf "chromatic number: %d (proven optimal)\n" chi
  | None ->
    Printf.printf "bounds: %d <= chi <= %d (optimality not proven)\n"
      answer.Exact.lower answer.Exact.upper);
  Printf.printf "found in %.3fs\n\n" answer.Exact.time;

  Printf.printf "coloring:\n";
  Array.iteri
    (fun v c -> Printf.printf "  vertex %d -> color %d\n" v c)
    answer.Exact.coloring;

  (* sanity: the coloring is proper *)
  assert (Graph.is_proper_coloring g answer.Exact.coloring);

  (* the decision version: is it 2-colorable? *)
  (match Exact.k_colorable ~timeout:10.0 g ~k:2 with
  | `No -> Printf.printf "\nnot 2-colorable, as expected\n"
  | `Yes _ -> assert false
  | `Unknown -> Printf.printf "\n(2-colorability undecided in budget)\n");

  (* the same answer from the specialized implicit-enumeration colorer
     (Brélaz-style DSATUR branch & bound) — the algorithm family the paper
     contrasts its reduction-based flow against *)
  (match Colib_graph.Exact_dsatur.chromatic_number g with
  | Some chi -> Printf.printf "\nBrélaz branch & bound agrees: chi = %d\n" chi
  | None -> Printf.printf "\nBrélaz branch & bound: budget exhausted\n");

  (* a custom graph from an edge list: a wheel with an even rim (chi = 3) *)
  let wheel =
    Graph.of_edges 7
      ([ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (5, 0) ]
      @ List.init 6 (fun i -> (6, i)))
  in
  let a = Exact.chromatic_number ~timeout:30.0 wheel in
  Printf.printf "\nwheel W6: chromatic number = %s\n"
    (match a.Exact.chromatic with Some c -> string_of_int c | None -> "?")
