(* Radio frequency assignment (Section 2 of the paper).

   Each geographic region needs some number of frequencies; adjacent regions
   must not share any. The reduction plants a clique per region (its
   frequencies must be mutually distinct) and a complete bipartite graph
   between adjacent regions. The chromatic number is the total number of
   distinct frequencies the regulator must license.

   This reduction also introduces instance-independent symmetries beyond
   color permutations — the vertices inside one region's clique are
   interchangeable — which is why the paper's instance-dependent SBP flow
   still matters after the instance-independent predicates are added.

   Run with:  dune exec examples/frequency_assignment.exe *)

module Graph = Colib_graph.Graph
module Generators = Colib_graph.Generators
module Flow = Colib_core.Flow
module Sbp = Colib_encode.Sbp
module Exact = Colib_core.Exact_coloring

let region_names = [| "North"; "East"; "South"; "West"; "Center"; "Harbor" |]
let demands = [| 3; 2; 4; 2; 3; 1 |]

(* geographic adjacency *)
let adjacent = [ (0, 4); (1, 4); (2, 4); (3, 4); (0, 1); (2, 3); (2, 5) ]

let () =
  let g = Generators.frequency_assignment ~demands ~adjacent in
  Printf.printf "regions: %d, total demand: %d frequencies\n"
    (Array.length demands)
    (Array.fold_left ( + ) 0 demands);
  Printf.printf "conflict graph: %d vertices, %d edges\n\n"
    (Graph.num_vertices g) (Graph.num_edges g);

  let answer = Exact.chromatic_number ~timeout:30.0 g in
  (match answer.Exact.chromatic with
  | Some chi -> Printf.printf "minimum number of frequencies: %d\n\n" chi
  | None ->
    Printf.printf "frequencies needed: between %d and %d\n\n"
      answer.Exact.lower answer.Exact.upper);

  (* report the assignment per region *)
  let offset = ref 0 in
  Array.iteri
    (fun r name ->
      let freqs =
        List.init demands.(r) (fun i -> answer.Exact.coloring.(!offset + i))
      in
      offset := !offset + demands.(r);
      Printf.printf "  %-7s needs %d: frequencies %s\n" name demands.(r)
        (String.concat ", " (List.map string_of_int freqs)))
    region_names;

  (* demonstrate the symmetry angle: how large is the symmetry group of the
     reduction, and what survives the NU construction? *)
  let k = answer.Exact.upper + 1 in
  let si_none, _ = Flow.symmetry_stats g ~k ~sbp:Sbp.No_sbp in
  let si_nu, _ = Flow.symmetry_stats g ~k ~sbp:Sbp.Nu in
  Printf.printf
    "\nsymmetries of the 0-1 ILP reduction at K=%d: %s (no SBPs) -> %s (NU)\n"
    k
    (Colib_symmetry.Auto.order_string si_none.Flow.order_log10)
    (Colib_symmetry.Auto.order_string si_nu.Flow.order_log10);
  Printf.printf
    "the residue after NU is exactly the within-region interchangeability\n\
     that the paper's instance-dependent flow breaks automatically\n"
