let orbit degree gens x =
  let seen = Array.make degree false in
  seen.(x) <- true;
  let queue = Queue.create () in
  Queue.push x queue;
  let acc = ref [ x ] in
  while not (Queue.is_empty queue) do
    let y = Queue.pop queue in
    List.iter
      (fun g ->
        let z = Perm.image g y in
        if not seen.(z) then begin
          seen.(z) <- true;
          acc := z :: !acc;
          Queue.push z queue
        end)
      gens
  done;
  List.sort Int.compare !acc

let orbits degree gens =
  let seen = Array.make degree false in
  let acc = ref [] in
  for x = 0 to degree - 1 do
    if not seen.(x) then begin
      let o = orbit degree gens x in
      List.iter (fun y -> seen.(y) <- true) o;
      acc := o :: !acc
    end
  done;
  List.rev !acc

(* Deterministic Schreier–Sims, fixpoint formulation: maintain a base and a
   set of strong generators; repeatedly compute each level's orbit and
   transversal from the strong generators fixing the base prefix, sift every
   Schreier generator, and install non-trivial residues as new strong
   generators until no level produces one. Quadratic-ish but simple and
   correct; intended for small degree (see .mli). *)

type chain = {
  degree : int;
  mutable base : int array;
  mutable sgens : Perm.t list;
}

let first_moved p =
  let rec go j =
    if j >= Perm.degree p then -1
    else if Perm.image p j <> j then j
    else go (j + 1)
  in
  go 0

let fixes_prefix base k g =
  let rec go j = j >= k || (Perm.image g base.(j) = base.(j) && go (j + 1)) in
  go 0

let level_gens chain i = List.filter (fixes_prefix chain.base i) chain.sgens

(* orbit of base.(i) with coset representatives *)
let level_transversal chain i =
  let gens = level_gens chain i in
  let tr = Array.make chain.degree None in
  tr.(chain.base.(i)) <- Some (Perm.identity chain.degree);
  let queue = Queue.create () in
  Queue.push chain.base.(i) queue;
  while not (Queue.is_empty queue) do
    let y = Queue.pop queue in
    let rep = Option.get tr.(y) in
    List.iter
      (fun g ->
        let z = Perm.image g y in
        if tr.(z) = None then begin
          tr.(z) <- Some (Perm.compose g rep);
          Queue.push z queue
        end)
      gens
  done;
  (gens, tr)

let rec sift_chain chain i p =
  if Perm.is_identity p then None
  else if i >= Array.length chain.base then Some p
  else begin
    let _, tr = level_transversal chain i in
    let x = Perm.image p chain.base.(i) in
    match tr.(x) with
    | None -> Some p
    | Some rep -> sift_chain chain (i + 1) (Perm.compose (Perm.inverse rep) p)
  end

let add_sgen chain p =
  if fixes_prefix chain.base (Array.length chain.base) p then begin
    let moved = first_moved p in
    assert (moved >= 0);
    chain.base <- Array.append chain.base [| moved |]
  end;
  chain.sgens <- p :: chain.sgens

let build degree gens =
  let chain = { degree; base = [||]; sgens = [] } in
  List.iter
    (fun g -> if not (Perm.is_identity g) then add_sgen chain g)
    gens;
  let changed = ref true in
  let guard = ref 0 in
  while !changed do
    incr guard;
    if !guard > 10_000 then failwith "Group.build: no fixpoint";
    changed := false;
    let nlevels = Array.length chain.base in
    let i = ref 0 in
    while (not !changed) && !i < nlevels do
      let lgens, tr = level_transversal chain !i in
      (try
         Array.iteri
           (fun x rep_opt ->
             match rep_opt with
             | None -> ()
             | Some rep ->
               List.iter
                 (fun g ->
                   let z = Perm.image g x in
                   let rep_z = Option.get tr.(z) in
                   let s =
                     Perm.compose (Perm.inverse rep_z) (Perm.compose g rep)
                   in
                   if not (Perm.is_identity s) then
                     match sift_chain chain (!i + 1) s with
                     | None -> ()
                     | Some residue ->
                       add_sgen chain residue;
                       changed := true;
                       raise Exit)
                 lgens)
           tr
       with Exit -> ());
      incr i
    done
  done;
  chain

let order_log10 degree gens =
  let chain = build degree gens in
  let total = ref 0.0 in
  for i = 0 to Array.length chain.base - 1 do
    let _, tr = level_transversal chain i in
    let sz = Array.fold_left (fun n o -> if o = None then n else n + 1) 0 tr in
    total := !total +. log10 (float_of_int sz)
  done;
  !total

let order degree gens = 10.0 ** order_log10 degree gens

let mem degree gens p =
  if Perm.degree p <> degree then invalid_arg "Group.mem: degree mismatch";
  let chain = build degree gens in
  sift_chain chain 0 p = None
