(** Ordered partitions of vertices and equitable refinement.

    The individualization-refinement automorphism search works on ordered
    partitions of the vertex set. {!refine} drives a partition to its coarsest
    stable (equitable) refinement: every vertex in a cell has the same number
    of neighbors in every other cell. The refinement procedure is
    isomorphism-invariant — two isomorphic configurations refine to
    corresponding partitions — which is what makes leaf comparison in the
    search sound. *)

type t

val initial : Cgraph.t -> t
(** The unit partition split by vertex colors (cells ordered by color
    value), already refined to equitability. *)

val copy : t -> t
val size : t -> int
val num_cells : t -> int
val is_discrete : t -> bool

val cell_starts : t -> int list
(** Start indices of the cells, ascending. *)

val cell_contents : t -> int -> int list
(** [cell_contents p start] lists the vertices of the cell beginning at
    [start], in partition order. *)

val first_non_singleton : t -> int
(** Start index of the first cell with more than one element; -1 when
    discrete. *)

val elements : t -> int array
(** The vertex sequence (cells are contiguous). When the partition is
    discrete this is the labeling used for leaf comparison. Do not mutate. *)

val cell_of_vertex : t -> int -> int
(** Start index of the cell containing the vertex. *)

val individualize : t -> int -> unit
(** Split the vertex off as a singleton cell at the front of its current
    cell. Requires the cell to be non-singleton. *)

val refine : Cgraph.t -> t -> unit
(** Refine to equitability, using every cell as a splitter initially. *)

val refine_after : Cgraph.t -> t -> int -> unit
(** [refine_after g p start] refines an already-equitable partition after the
    individualization that created the (singleton) cell at [start]: only that
    cell seeds the splitter queue. *)
